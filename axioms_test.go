package pcc

// Tests for policy-published axiom schemas: the paper's workflow in
// which the prover "requires intervention from the programmer, mainly
// to learn new axioms about arithmetic", with the learned axioms
// "remembered" — here, by making them part of the published policy so
// the consumer's validator knows them too.

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/policy"
)

// borAlign is a sound axiom the core set lacks: OR-combining two
// m-aligned values stays m-aligned (for mask-shaped m).
func borAlign() *logic.Schema {
	a, b, m := logic.V("$a"), logic.V("$b"), logic.V("$m")
	zero := logic.C(0)
	return &logic.Schema{
		Name:   "bor_align",
		Params: []string{"$a", "$b", "$m"},
		Prems: []logic.Pred{
			logic.Eq(logic.And2(a, m), zero),
			logic.Eq(logic.And2(b, m), zero),
			logic.Eq(logic.And2(m, logic.Add(m, logic.C(1))), zero),
		},
		Concl:   logic.Eq(logic.And2(logic.Or2(a, b), m), zero),
		Comment: "a,b ≡ 0 mod (m+1), m=2^k−1 ⇒ a|b ≡ 0",
	}
}

// orOffsetSrc computes a load offset by OR-combining two aligned
// pieces — certifiable only with bor_align in the rule set.
const orOffsetSrc = `
        CLR    r0
        LDQ    r4, 0(r1)
        AND    r4, 32, r4
        BIS    r4, 8, r4       ; offset = (x & 32) | 8 — provably aligned only via bor_align
        CMPULT r4, r2, r5
        BEQ    r5, out
        ADDQ   r1, r4, r6
        LDQ    r0, 0(r6)
out:    RET
`

func borPolicy() *policy.Policy {
	base := policy.PacketFilter()
	return &policy.Policy{
		Name:       "packet-filter-bor/v1",
		Pre:        base.Pre,
		Post:       base.Post,
		Convention: base.Convention,
		Axioms:     []*logic.Schema{borAlign()},
	}
}

func TestPolicyAxiomEnablesCertification(t *testing.T) {
	// Without the published axiom, the alignment fact is out of reach.
	if _, err := Certify(orOffsetSrc, PacketFilterPolicy(), nil); err == nil {
		t.Fatal("or-combined offset certified without bor_align")
	}

	pol := borPolicy()
	if err := VetAxioms(pol.Axioms, 20000); err != nil {
		t.Fatalf("sound axiom failed vetting: %v", err)
	}
	cert, err := Certify(orOffsetSrc, pol, nil)
	if err != nil {
		t.Fatalf("certification with published axiom failed: %v", err)
	}

	// The proof validates against the SAME policy (whose signature
	// includes the axiom)...
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatalf("validation failed: %v", err)
	}
	if len(ext.Prog) != 9 {
		t.Fatalf("instructions = %d", len(ext.Prog))
	}

	// ...and is refused by a consumer publishing only the base rules:
	// the signature fingerprints differ.
	plain := PacketFilterPolicy()
	plain.Name = pol.Name // same name, different rule set
	_, _, err = Validate(cert.Binary, plain)
	if err == nil || !strings.Contains(err.Error(), "rule set") {
		t.Fatalf("rule-set mismatch not detected: %v", err)
	}
}

func TestVetAxiomsRejectsBadSchemas(t *testing.T) {
	a, b := logic.V("$a"), logic.V("$b")
	cases := []struct {
		name   string
		schema *logic.Schema
	}{
		{"clash with core", &logic.Schema{
			Name: "band_ub", Params: []string{"$a", "$b"},
			Concl: logic.Ule(a, b)}},
		{"unbound variable", &logic.Schema{
			Name: "oops", Params: []string{"$a"},
			Concl: logic.Ule(a, logic.V("$b"))}},
		{"bad parameter name", &logic.Schema{
			Name: "noprefix", Params: []string{"x"},
			Concl: logic.Ule(logic.V("x"), logic.V("x"))}},
		{"unsound", &logic.Schema{
			Name: "lies", Params: []string{"$a", "$b"},
			Concl: logic.Ult(a, b)}},
		{"empty name", &logic.Schema{Params: nil, Concl: logic.True}},
	}
	for _, c := range cases {
		if err := VetAxioms([]*logic.Schema{c.schema}, 20000); err == nil {
			t.Errorf("%s: vetting passed", c.name)
		}
	}
	// Duplicates across the list.
	ok := borAlign()
	if err := VetAxioms([]*logic.Schema{ok, ok}, 100); err == nil {
		t.Error("duplicate axiom passed vetting")
	}
}

func TestNonEvaluableAxiomVetsButIsFlaggedByConvention(t *testing.T) {
	// Schemas over rd/wr cannot be fuzzed; vetting admits them (the
	// consumer must justify them against its memory model) as long as
	// they are well-formed.
	rdPair := &logic.Schema{
		Name:   "rd_pair",
		Params: []string{"$e"},
		Prems:  []logic.Pred{logic.RdP(logic.V("$e"))},
		Concl:  logic.RdP(logic.V("$e")),
	}
	if err := VetAxioms([]*logic.Schema{rdPair}, 100); err != nil {
		t.Fatalf("well-formed rd schema rejected: %v", err)
	}
}
