package pcc_test

// The testing.B harness: one benchmark per table and figure of the
// paper's evaluation, backed by internal/bench (cmd/paperbench prints
// the same rows in the paper's format). Wall-clock numbers here are
// host times; the Figure 8/9 per-packet results inside internal/bench
// are modeled 175-MHz Alpha cycles (see DESIGN.md).

import (
	"fmt"
	pcc "repro"
	"testing"

	"repro/internal/alpha"
	"repro/internal/bench"
	"repro/internal/bpf"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/logic"
	"repro/internal/m3"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/sfi"
)

// BenchmarkFig8PerPacket measures per-packet execution of every filter
// under every approach (host wall-clock of the simulators; the modeled
// microseconds are reported as bench metrics).
func BenchmarkFig8PerPacket(b *testing.B) {
	pkts := bench.Trace(4096)
	for _, f := range filters.All {
		pccProg := filters.Prog(f)
		bpfProg := filters.BPFProg(f)
		sfiProg, err := sfi.Rewrite(pccProg)
		if err != nil {
			b.Fatal(err)
		}
		m3Prog, err := m3.Compile(m3.Prog(f, m3.View), m3.View)
		if err != nil {
			b.Fatal(err)
		}
		env := filters.Env{}
		envSFI := filters.Env{SFI: true}

		run := func(name string, fn func(p []byte) int64) {
			b.Run(fmt.Sprintf("%s/%s", name, f), func(b *testing.B) {
				var cycles, n int64
				for i := 0; i < b.N; i++ {
					p := pkts[i%len(pkts)]
					cycles += fn(p.Data)
					n++
				}
				b.ReportMetric(machine.Micros(cycles)/float64(n), "alpha-µs/pkt")
			})
		}
		run("PCC", func(p []byte) int64 {
			_, c, err := env.Exec(pccProg, p, machine.Unchecked)
			if err != nil {
				b.Fatal(err)
			}
			return c
		})
		run("SFI", func(p []byte) int64 {
			_, c, err := envSFI.Exec(sfiProg, p, machine.Unchecked)
			if err != nil {
				b.Fatal(err)
			}
			return c
		})
		run("M3-VIEW", func(p []byte) int64 {
			_, c, err := env.Exec(m3Prog, p, machine.Unchecked)
			if err != nil {
				b.Fatal(err)
			}
			return c
		})
		run("BPF", func(p []byte) int64 {
			_, c := bpf.RunCycles(bpfProg, p, &bpf.DefaultCost)
			return c
		})
	}
}

// BenchmarkTable1Validation measures the one-time validation cost of
// each filter's PCC binary (Table 1's "Validation Time" column).
func BenchmarkTable1Validation(b *testing.B) {
	pol := policy.PacketFilter()
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.String(), func(b *testing.B) {
			b.ReportMetric(float64(len(cert.Binary)), "binary-bytes")
			for i := 0; i < b.N; i++ {
				if _, _, err := pcc.Validate(cert.Binary, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7ResourceAccessLayout measures certification of the §2
// example and reports its Figure 7 section sizes.
func BenchmarkFig7ResourceAccessLayout(b *testing.B) {
	var layoutTotal int
	for i := 0; i < b.N; i++ {
		cert, err := bench.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		layoutTotal = cert.Layout.Total
	}
	b.ReportMetric(float64(layoutTotal), "binary-bytes")
}

// BenchmarkFig9Amortization reproduces the Figure 9 analysis end to
// end on a small calibration trace.
func BenchmarkFig9Amortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9(500, 50000)
		if err != nil {
			b.Fatal(err)
		}
		if res.CrossoverPackets[bench.BPF] <= 0 {
			b.Fatal("no BPF crossover")
		}
	}
}

// BenchmarkChecksum measures the §4 routine against its byte-order
// "standard C" baseline.
func BenchmarkChecksum(b *testing.B) {
	fast := alpha.MustAssemble(filters.SrcChecksum).Prog
	slow := alpha.MustAssemble(filters.SrcChecksumWord32).Prog
	pkts := bench.Trace(512)
	env := filters.Env{}
	for _, tc := range []struct {
		name string
		prog []alpha.Instr
	}{{"PCC64bit", fast}, {"C32bit", slow}} {
		b.Run(tc.name, func(b *testing.B) {
			var cycles, n int64
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				_, c, err := env.Exec(tc.prog, p.Data, machine.Unchecked)
				if err != nil {
					b.Fatal(err)
				}
				cycles += c
				n++
			}
			b.ReportMetric(machine.Micros(cycles)/float64(n), "alpha-µs/pkt")
		})
	}
}

// BenchmarkCertify measures producer-side certification (the paper:
// "about 5 to 10 seconds" with 1996 theorem-proving technology).
func BenchmarkCertify(b *testing.B) {
	pol := policy.PacketFilter()
	for _, f := range filters.All {
		src := filters.Source(f)
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pcc.Certify(src, pol, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertifyChecksumLoop measures certification of the looping
// routine, including invariant handling.
func BenchmarkCertifyChecksumLoop(b *testing.B) {
	pol := policy.PacketFilter()
	inv := map[string]logic.Pred{"loop": filters.ChecksumInvariant()}
	for i := 0; i < b.N; i++ {
		if _, err := pcc.Certify(filters.SrcChecksum, pol, inv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateResourceAccess isolates the §2.3 measurement ("it
// takes 1.4 milliseconds to validate the proof of the SP_r predicate"
// on the 175-MHz Alpha).
func BenchmarkValidateResourceAccess(b *testing.B) {
	pol := policy.ResourceAccess()
	cert, err := pcc.Certify(bench.ResourceAccessSrc, pol, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pcc.Validate(cert.Binary, pol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSFIPipeline measures the §3.1 alternative: rewrite + SFI
// load-time validation.
func BenchmarkSFIPipeline(b *testing.B) {
	prog := filters.Prog(filters.Filter4)
	for i := 0; i < b.N; i++ {
		rw, err := sfi.Rewrite(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := sfi.Validate(rw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBPFValidate measures BPF's "few microseconds" static check.
func BenchmarkBPFValidate(b *testing.B) {
	prog := filters.BPFProg(filters.Filter4)
	for i := 0; i < b.N; i++ {
		if err := bpf.Validate(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDispatch measures end-to-end kernel dispatch: one
// packet through four installed, validated filters (allocation
// included — the host-side cost of the simulation, not a paper
// number).
func BenchmarkKernelDispatch(b *testing.B) {
	k := kernel.New()
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.InstallFilter(f.String(), cert.Binary); err != nil {
			b.Fatal(err)
		}
	}
	pkts := bench.Trace(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DeliverPacket(pkts[i%len(pkts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWCET measures the install-time static cost analysis.
func BenchmarkWCET(b *testing.B) {
	prog := filters.Prog(filters.Filter3)
	for i := 0; i < b.N; i++ {
		if _, err := machine.DEC21064.MaxCost(prog); err != nil {
			b.Fatal(err)
		}
	}
}
