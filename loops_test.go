package pcc

// Tests for looping programs beyond the single checksum loop: nested
// loops with one invariant per backward-branch target, and tampering
// with the invariant table of a shipped binary.

import (
	"testing"

	"repro/internal/filters"
	"repro/internal/lf"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pccbin"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// nestedSrc: for each packet word (outer), add it into each of the two
// scratch words (inner) — pointless as a filter, rich as a VC test:
// two backward branches, two invariants, loads and stores in the
// inner body.
const nestedSrc = `
        CLR    r4              ; outer byte offset
        CMPULT r4, r2, r6
        BEQ    r6, done
outer:  ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)       ; packet word
        CLR    r5              ; inner byte offset
inner:  ADDQ   r3, r5, r7
        LDQ    r9, 0(r7)
        ADDQ   r9, r8, r9
        STQ    r9, 0(r7)       ; scratch[j] += packet[i]
        ADDQ   r5, 8, r5
        CMPULT r5, 16, r6
        BNE    r6, inner
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, outer
done:   CLR    r0
        RET
`

func nestedInvariants() map[string]logic.Pred {
	pktClause := logic.MustParsePred(
		"ALL i. (i < r2 /\\ (i & 7) = 0) => rd(r1 + i)")
	scratchClause := logic.MustParsePred(
		"ALL j. (j < 16 /\\ (j & 7) = 0) => wr(r3 + j)")
	outer := logic.Conj(
		pktClause, scratchClause,
		logic.MustParsePred("cmpult(r4, r2) <> 0"),
		logic.MustParsePred("(r4 & 7) = 0"),
	)
	inner := logic.Conj(
		pktClause, scratchClause,
		logic.MustParsePred("cmpult(r4, r2) <> 0"),
		logic.MustParsePred("(r4 & 7) = 0"),
		logic.MustParsePred("cmpult(r5, 16) <> 0"),
		logic.MustParsePred("(r5 & 7) = 0"),
	)
	return map[string]logic.Pred{"outer": outer, "inner": inner}
}

func TestNestedLoopsCertify(t *testing.T) {
	pol := PacketFilterPolicy()
	cert, err := Certify(nestedSrc, pol, nestedInvariants())
	if err != nil {
		t.Fatalf("nested loops failed to certify: %v", err)
	}
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}

	// Execute on the abstract machine and cross-check the scratch
	// contents against a direct computation.
	mem := machine.NewMemory()
	pkt := machine.NewRegion("packet", 0x10000, 64, false)
	var sum uint64
	for i := 0; i < 8; i++ {
		pkt.SetWord(i*8, uint64(i)*3+1)
		sum += uint64(i)*3 + 1
	}
	mem.MustAddRegion(pkt)
	scratch := machine.NewRegion("scratch", 0x20000, policy.ScratchLen, true)
	mem.MustAddRegion(scratch)
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = 0x10000
	s.R[policy.RegLen] = 64
	s.R[policy.RegScratch] = 0x20000
	if _, err := ext.RunChecked(s, 100000); err != nil {
		t.Fatal(err)
	}
	if scratch.Word(0) != sum || scratch.Word(8) != sum {
		t.Fatalf("scratch = {%d, %d}, want {%d, %d}",
			scratch.Word(0), scratch.Word(8), sum, sum)
	}
}

func TestNestedLoopsNeedBothInvariants(t *testing.T) {
	pol := PacketFilterPolicy()
	invs := nestedInvariants()
	for _, drop := range []string{"outer", "inner"} {
		partial := map[string]logic.Pred{}
		for k, v := range invs {
			if k != drop {
				partial[k] = v
			}
		}
		if _, err := Certify(nestedSrc, pol, partial); err == nil {
			t.Errorf("certified without the %q invariant", drop)
		}
	}
}

func TestWeakenedInvariantRejected(t *testing.T) {
	// Ship a binary whose invariant table was weakened after
	// certification: the consumer recomputes the VC from the shipped
	// table, so the proof no longer matches.
	pol := PacketFilterPolicy()
	cert, err := Certify(nestedSrc, pol, nestedInvariants())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := pccbin.Unmarshal(cert.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Invariants) != 2 {
		t.Fatalf("invariants = %d", len(bin.Invariants))
	}

	// Replace the first invariant with `true` — the classic "claim
	// nothing, prove nothing" weakening.
	bin.Invariants[0].Pred = lf.Konst{Name: lf.CTT}
	data, _, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(data, pol); err == nil {
		t.Fatal("weakened invariant accepted")
	}

	// Moving an invariant to a different pc must also fail (the
	// backward branch loses its cut point).
	bin2, err := pccbin.Unmarshal(cert.Binary)
	if err != nil {
		t.Fatal(err)
	}
	bin2.Invariants[0].PC++
	data2, _, err := bin2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(data2, pol); err == nil {
		t.Fatal("relocated invariant accepted")
	}
}

func TestCertifyAutoChecksumEndToEnd(t *testing.T) {
	// The looping checksum certifies WITHOUT a hand-written invariant,
	// validates, and computes correctly — fully automatic loop
	// certification for the counted-loop idiom.
	pol := PacketFilterPolicy()
	cert, err := CertifyAuto(filters.SrcChecksum, pol)
	if err != nil {
		t.Fatalf("automatic certification failed: %v", err)
	}
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}
	env := filters.Env{}
	for i, p := range pktgen.Generate(200, pktgen.Config{Seed: 5}) {
		s := env.NewState(p.Data)
		res, err := machine.Interp(ext.Prog, s, machine.Checked, nil, 1<<20)
		if err != nil {
			t.Fatalf("pkt %d: %v", i, err)
		}
		if uint16(res.Ret) != filters.RefChecksum(p.Data) {
			t.Fatalf("pkt %d: wrong checksum", i)
		}
	}
}

func TestCertifyAutoNestedLoops(t *testing.T) {
	if _, err := CertifyAuto(nestedSrc, PacketFilterPolicy()); err != nil {
		t.Fatalf("nested loops failed automatic certification: %v", err)
	}
}

func TestCertifyAutoRejectsUnboundedLoop(t *testing.T) {
	// A loop reading at an unguarded, unbounded offset must still be
	// rejected: inference guesses, certification decides.
	src := `
        CLR    r4
loop:   ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)
        ADDQ   r4, 8, r4
        BNE    r8, loop       ; data-driven, no bound on r4
        CLR    r0
        RET
	`
	if _, err := CertifyAuto(src, PacketFilterPolicy()); err == nil {
		t.Fatal("unbounded loop certified")
	}
}
