package machine

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/alpha"
)

// assertSameRun executes prog through the interpreter and the compiled
// backend from identical states and requires every observable to
// match: Result, error (including fault identity and Wild
// classification), register file, final PC, and memory contents.
func assertSameRun(t *testing.T, prog []alpha.Instr, mkState func() *State, mode Mode, cm *CostModel, fuel int) {
	t.Helper()
	c, err := Compile(prog, cm)
	if err != nil {
		t.Fatalf("Compile: %v\n%s", err, alpha.Program(prog))
	}
	si := mkState()
	resI, errI := Interp(prog, si, mode, cm, fuel)
	sc := mkState()
	resC, errC := c.Run(sc, mode, fuel)

	if (errI == nil) != (errC == nil) || (errI != nil && !reflect.DeepEqual(errI, errC)) {
		t.Fatalf("errors differ (mode %v, fuel %d): interp=%v compiled=%v\n%s",
			mode, fuel, errI, errC, alpha.Program(prog))
	}
	if resI != resC {
		t.Fatalf("results differ (mode %v, fuel %d): interp=%+v compiled=%+v\n%s",
			mode, fuel, resI, resC, alpha.Program(prog))
	}
	if si.R != sc.R {
		t.Fatalf("register files differ (mode %v, fuel %d)\n%s", mode, fuel, alpha.Program(prog))
	}
	if si.PC != sc.PC {
		t.Fatalf("final PCs differ (mode %v, fuel %d): interp=%d compiled=%d\n%s",
			mode, fuel, si.PC, sc.PC, alpha.Program(prog))
	}
	for _, name := range []string{"buf", "pkt", "scratch"} {
		ri, rc := si.Mem.Region(name), sc.Mem.Region(name)
		if ri == nil || rc == nil {
			continue
		}
		bi, bc := ri.Bytes(), rc.Bytes()
		for i := range bi {
			if bi[i] != bc[i] {
				t.Fatalf("region %q differs at byte %d (mode %v, fuel %d)\n%s",
					name, i, mode, fuel, alpha.Program(prog))
			}
		}
	}
}

func TestCompiledMatchesInterpConfined(t *testing.T) {
	r := rand.New(rand.NewSource(1996))
	for trial := 0; trial < 2000; trial++ {
		prog := randConfinedProgram(r)
		seed := r.Int63()
		mk := func() *State { return confinedState(rand.New(rand.NewSource(seed))) }
		assertSameRun(t, prog, mk, Checked, &DEC21064, 10000)
		assertSameRun(t, prog, mk, Unchecked, &DEC21064, 10000)
	}
}

// randWildProgram is randConfinedProgram without the confinement: base
// registers and displacements are arbitrary, so runs routinely fault
// with every MemFault kind — the fault-attribution parity diet.
func randWildProgram(r *rand.Rand) []alpha.Instr {
	prog := randConfinedProgram(r)
	for pc := range prog {
		switch prog[pc].Op {
		case alpha.LDQ, alpha.STQ:
			prog[pc].Rb = alpha.Reg(r.Intn(alpha.NumRegs))
			prog[pc].Disp = int16(r.Intn(1 << 12))
		}
	}
	return prog
}

func TestCompiledMatchesInterpOnFaults(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		prog := randWildProgram(r)
		seed := r.Int63()
		mk := func() *State { return confinedState(rand.New(rand.NewSource(seed))) }
		assertSameRun(t, prog, mk, Checked, &DEC21064, 10000)
		assertSameRun(t, prog, mk, Unchecked, &DEC21064, 10000)
	}
}

// TestCompiledFuelEdges sweeps the fuel budget through every value up
// to just past the full run length, pinning the exact ErrFuel point,
// the reported Steps/Cycles at exhaustion, and the PC left behind.
func TestCompiledFuelEdges(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		prog := randConfinedProgram(r)
		seed := r.Int63()
		mk := func() *State { return confinedState(rand.New(rand.NewSource(seed))) }

		s := mk()
		full, err := Interp(prog, s, Checked, &DEC21064, 10000)
		if err != nil {
			continue
		}
		for fuel := 0; fuel <= full.Steps+1; fuel++ {
			assertSameRun(t, prog, mk, Checked, &DEC21064, fuel)
		}
	}
}

func TestCompiledEmptyProgram(t *testing.T) {
	c, err := Compile(nil, &DEC21064)
	if err != nil {
		t.Fatalf("Compile(nil): %v", err)
	}
	s := &State{Mem: NewMemory()}
	s.R[0] = 77
	res, err := c.Run(s, Checked, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Falling off the end — even with zero fuel — is a return of r0,
	// retiring nothing, exactly as the interpreter treats PC == len.
	if res.Ret != 77 || res.Steps != 0 || res.Cycles != 0 || s.PC != 0 {
		t.Fatalf("empty program: got %+v, PC %d", res, s.PC)
	}
}

func TestCompiledBranchToEnd(t *testing.T) {
	// BR @1 on a 1-instruction program targets one past the end — the
	// VC generator's convention — and must return like a fall-off.
	prog := []alpha.Instr{{Op: alpha.BR, Target: 1}}
	mk := func() *State {
		s := &State{Mem: NewMemory()}
		s.R[0] = 5
		return s
	}
	assertSameRun(t, prog, mk, Checked, &DEC21064, 10)
	c, _ := Compile(prog, &DEC21064)
	s := mk()
	res, err := c.Run(s, Checked, 10)
	if err != nil || res.Ret != 5 || res.Steps != 1 || res.Cycles != int64(DEC21064.BranchTaken) {
		t.Fatalf("branch to end: res=%+v err=%v", res, err)
	}
	if s.PC != len(prog) {
		t.Fatalf("branch to end: PC=%d want %d", s.PC, len(prog))
	}
}

func TestCompiledZeroRegisterFolding(t *testing.T) {
	// r31 reads fold to zero, r31 conditions fold to constant jumps;
	// behavior must still match the interpreter instruction for
	// instruction.
	prog := []alpha.Instr{
		{Op: alpha.ADDQ, Ra: alpha.RegZero, Rb: 2, Rc: 0},    // r0 = r2
		{Op: alpha.BNE, Ra: alpha.RegZero, Target: 4},        // never taken
		{Op: alpha.BEQ, Ra: alpha.RegZero, Target: 4},        // always taken
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: -1},  // skipped
		{Op: alpha.ADDQ, Ra: 0, HasLit: true, Lit: 3, Rc: 0}, // r0 += 3
		{Op: alpha.SUBQ, Ra: 0, Rb: alpha.RegZero, Rc: 1},    // r1 = r0 - 0
		{Op: alpha.STQ, Ra: alpha.RegZero, Rb: 3, Disp: 0},   // store zero
		{Op: alpha.RET},
	}
	mk := func() *State {
		mem := NewMemory()
		mem.MustAddRegion(NewRegion("buf", 0x8000, 16, true))
		s := &State{Mem: mem}
		s.R[2] = 39
		s.R[3] = 0x8000
		return s
	}
	assertSameRun(t, prog, mk, Checked, &DEC21064, 100)
	c, _ := Compile(prog, &DEC21064)
	s := mk()
	res, err := c.Run(s, Checked, 100)
	if err != nil || res.Ret != 42 || s.R[1] != 42 {
		t.Fatalf("folding run: res=%+v err=%v r1=%d", res, err, s.R[1])
	}
}

func TestCompiledNilCostModel(t *testing.T) {
	prog := []alpha.Instr{
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: 9},
		{Op: alpha.RET},
	}
	mk := func() *State { return &State{Mem: NewMemory()} }
	assertSameRun(t, prog, mk, Checked, nil, 100)
	c, _ := Compile(prog, nil)
	res, err := c.Run(mk(), Checked, 100)
	if err != nil || res.Cycles != 0 || res.Ret != 9 {
		t.Fatalf("nil cost model: res=%+v err=%v", res, err)
	}
}

func TestCompiledMidPCEntry(t *testing.T) {
	prog := []alpha.Instr{
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: 1},
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: 2},
		{Op: alpha.RET},
	}
	c, err := Compile(prog, &DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	for pc := 0; pc <= len(prog); pc++ {
		si := &State{Mem: NewMemory(), PC: pc}
		sc := &State{Mem: NewMemory(), PC: pc}
		resI, errI := Interp(prog, si, Checked, &DEC21064, 100)
		resC, errC := c.Run(sc, Checked, 100)
		if resI != resC || (errI == nil) != (errC == nil) {
			t.Fatalf("entry pc %d: interp=%+v/%v compiled=%+v/%v", pc, resI, errI, resC, errC)
		}
	}
	// Out-of-range entry must surface the interpreter's pc-range error.
	s := &State{Mem: NewMemory(), PC: -1}
	if _, err := c.Run(s, Checked, 100); err == nil {
		t.Fatal("negative entry PC did not fault")
	}
}

func TestCompileRejectsMalformedPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog []alpha.Instr
	}{
		{"unknown op", []alpha.Instr{{Op: alpha.Op(200)}, {Op: alpha.RET}}},
		{"invalid op zero", []alpha.Instr{{Op: alpha.OpInvalid}, {Op: alpha.RET}}},
		{"r31 destination", []alpha.Instr{
			{Op: alpha.ADDQ, Ra: 0, Rb: 0, Rc: alpha.RegZero}, {Op: alpha.RET}}},
		{"register out of range", []alpha.Instr{
			{Op: alpha.ADDQ, Ra: 20, Rb: 0, Rc: 0}, {Op: alpha.RET}}},
		{"branch target out of range", []alpha.Instr{
			{Op: alpha.BR, Target: 5}, {Op: alpha.RET}}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.prog, &DEC21064); err == nil {
			t.Errorf("%s: Compile accepted\n%s", tc.name, alpha.Program(tc.prog))
		}
	}
}

func TestCompiledWritesMemory(t *testing.T) {
	noStore := []alpha.Instr{
		{Op: alpha.LDQ, Ra: 0, Rb: 1, Disp: 0},
		{Op: alpha.RET},
	}
	c, err := Compile(noStore, &DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	if c.WritesMemory() {
		t.Error("load-only program reported WritesMemory")
	}
	withStore := append([]alpha.Instr{
		{Op: alpha.STQ, Ra: 0, Rb: 3, Disp: 0},
	}, noStore...)
	c, err = Compile(withStore, &DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	if !c.WritesMemory() {
		t.Error("program with STQ did not report WritesMemory")
	}
}

func TestCompiledFuelSentinel(t *testing.T) {
	prog := []alpha.Instr{
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: 1},
		{Op: alpha.RET},
	}
	c, _ := Compile(prog, &DEC21064)
	_, err := c.Run(&State{Mem: NewMemory()}, Checked, 1)
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
}

func TestCompileBlockStructure(t *testing.T) {
	// Two blocks of straight-line code joined by a conditional, plus
	// the RET block and the virtual exit.
	prog := []alpha.Instr{
		{Op: alpha.LDA, Ra: 0, Rb: alpha.RegZero, Disp: 1}, // block 0
		{Op: alpha.BEQ, Ra: 0, Target: 4},
		{Op: alpha.ADDQ, Ra: 0, HasLit: true, Lit: 1, Rc: 0}, // block 1
		{Op: alpha.RET},
		{Op: alpha.RET}, // block 2 (branch target)
	}
	c, err := Compile(prog, &DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(prog) {
		t.Errorf("Len() = %d, want %d", c.Len(), len(prog))
	}
	// blocks: [0..1], [2..3], [4], exit
	if c.NumBlocks() != 4 {
		t.Errorf("NumBlocks() = %d, want 4", c.NumBlocks())
	}
	if len(c.Prog()) != len(prog) {
		t.Errorf("Prog() length = %d, want %d", len(c.Prog()), len(prog))
	}
}
