// Profiled-backend differential suite: RunProfiled must keep the
// compiled backend's exact execution semantics AND reproduce the
// interpreter's per-PC attribution — visits and cycles — once the
// block counters are expanded. Fuel edges and faults are the hard
// cases: attribution must stop at exactly the interpreter's cursor.
package machine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
)

// diffProfiled runs prog over one packet through the profiled
// interpreter and the profiled compiled backend and fails on any
// difference in Result, error, or per-PC attribution.
func diffProfiled(t *testing.T, label string, prog []alpha.Instr, c *machine.Compiled, pkt []byte, fuel int) {
	t.Helper()
	env := filters.Env{}

	si := env.NewState(pkt)
	pI := machine.NewProfile(len(prog))
	resI, errI := machine.InterpProfiled(prog, si, machine.Unchecked, &machine.DEC21064, fuel, pI)

	sc := env.NewState(pkt)
	bp := machine.NewBlockProfile(c)
	resC, errC := c.RunProfiled(sc, machine.Unchecked, fuel, bp)
	pC := machine.NewProfile(len(prog))
	bp.AddTo(pC)

	if (errI == nil) != (errC == nil) || (errI != nil && !reflect.DeepEqual(errI, errC)) {
		t.Fatalf("%s (fuel %d): errors diverge: interp=%v compiled=%v\n%s",
			label, fuel, errI, errC, alpha.Program(prog))
	}
	if resI != resC {
		t.Fatalf("%s (fuel %d): results diverge: interp=%+v compiled=%+v\n%s",
			label, fuel, resI, resC, alpha.Program(prog))
	}
	if si.R != sc.R {
		t.Fatalf("%s (fuel %d): register files diverge\n%s", label, fuel, alpha.Program(prog))
	}
	for pc := range prog {
		if pI.Visits[pc] != pC.Visits[pc] || pI.Cycles[pc] != pC.Cycles[pc] {
			t.Fatalf("%s (fuel %d): attribution diverges at pc %d: interp %dv/%dc, compiled %dv/%dc\n%s",
				label, fuel, pc, pI.Visits[pc], pI.Cycles[pc], pC.Visits[pc], pC.Cycles[pc],
				alpha.Program(prog))
		}
	}
}

func TestProfiledBackendPaperCorpus(t *testing.T) {
	trace := pktgen.Generate(1000, pktgen.Config{Seed: 1996})
	for name, prog := range paperPrograms(t) {
		c, err := machine.Compile(prog, &machine.DEC21064)
		if err != nil {
			t.Fatalf("%s: Compile: %v", name, err)
		}
		for _, p := range trace {
			diffProfiled(t, name, prog, c, p.Data, diffFuel)
		}
	}
}

func TestProfiledBackendGeneratedFilters(t *testing.T) {
	r := rand.New(rand.NewSource(2040))
	gen := pktgen.New(pktgen.Config{Seed: 11})
	for trial := 0; trial < 600; trial++ {
		prog := randFilterProgram(r)
		c, err := machine.Compile(prog, &machine.DEC21064)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v\n%s", trial, err, alpha.Program(prog))
		}
		for i := 0; i < 3; i++ {
			diffProfiled(t, "generated", prog, c, gen.Next().Data, diffFuel)
		}
	}
}

// TestProfiledBackendFuelEdges sweeps the fuel through every possible
// exhaustion point of a looping program (the checksum filter: backward
// branches, scratch stores, fused compare-and-branch blocks) and of
// fault-prone generated programs. The compiled slow path and the fail
// epilogue are exactly the paths this exercises.
func TestProfiledBackendFuelEdges(t *testing.T) {
	trace := pktgen.Generate(3, pktgen.Config{Seed: 3})
	progs := map[string][]alpha.Instr{
		"checksum": alpha.MustAssemble(filters.SrcChecksum).Prog,
		"filter1":  filters.Prog(filters.Filter1),
	}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 20; i++ {
		progs["gen"] = randFilterProgram(r)
		for name, prog := range progs {
			c, err := machine.Compile(prog, &machine.DEC21064)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range trace {
				env := filters.Env{}
				full, _ := machine.Interp(prog, env.NewState(p.Data), machine.Unchecked,
					&machine.DEC21064, diffFuel)
				for fuel := 0; fuel <= full.Steps+2; fuel++ {
					diffProfiled(t, name, prog, c, p.Data, fuel)
				}
			}
		}
	}
}

// TestBlockProfileAccumulate: a BlockProfile accumulated over several
// runs expands to the sum of the single-run profiles, Reset zeroes it,
// and For ties it to its Compiled.
func TestBlockProfileAccumulate(t *testing.T) {
	prog := filters.Prog(filters.Filter2)
	c, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	trace := pktgen.Generate(50, pktgen.Config{Seed: 9})

	bp := machine.NewBlockProfile(c)
	if !bp.For(c) || bp.For(c2) {
		t.Fatal("For must identify the exact Compiled the profile was built for")
	}
	want := machine.NewProfile(len(prog))
	for _, p := range trace {
		env := filters.Env{}
		if _, err := c.RunProfiled(env.NewState(p.Data), machine.Unchecked, diffFuel, bp); err != nil {
			t.Fatal(err)
		}
		one := machine.NewBlockProfile(c)
		env2 := filters.Env{}
		if _, err := c.RunProfiled(env2.NewState(p.Data), machine.Unchecked, diffFuel, one); err != nil {
			t.Fatal(err)
		}
		one.AddTo(want)
	}
	got := machine.NewProfile(len(prog))
	bp.AddTo(got)
	if !reflect.DeepEqual(got.Visits, want.Visits) || !reflect.DeepEqual(got.Cycles, want.Cycles) {
		t.Fatalf("accumulated profile diverges from per-run sum:\ngot  %v\nwant %v", got, want)
	}

	bp.Reset()
	empty := machine.NewProfile(len(prog))
	bp.AddTo(empty)
	if empty.TotalVisits() != 0 || empty.TotalCycles() != 0 {
		t.Fatalf("Reset left attribution behind: %v", empty)
	}
}

// TestCompiledRunNoAllocs pins the compile-time sink selection: the
// unprofiled Run instantiation must not allocate per run now that the
// block runner carries a profiling sink, and the profiled one must not
// allocate either once its BlockProfile exists (the batch dispatcher
// reuses one per slot).
func TestCompiledRunNoAllocs(t *testing.T) {
	prog := filters.Prog(filters.Filter1)
	c, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0].Data
	env := filters.Env{}
	s := env.NewState(pkt)
	regs := s.R

	allocs := testing.AllocsPerRun(200, func() {
		s.PC = 0
		s.R = regs
		if _, err := c.Run(s, machine.Unchecked, diffFuel); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Run allocates %.1f objects/op, want 0", allocs)
	}

	bp := machine.NewBlockProfile(c)
	allocs = testing.AllocsPerRun(200, func() {
		s.PC = 0
		s.R = regs
		if _, err := c.RunProfiled(s, machine.Unchecked, diffFuel, bp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RunProfiled allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkCompiledRun / BenchmarkCompiledRunProfiled pin the cost of
// the per-block profiling sink: the profiled run should cost within a
// few nanoseconds of the unprofiled one (one counter bump per retired
// block), which is what lets the kernel keep profiling on without
// rerouting dispatch to the interpreter.
func BenchmarkCompiledRun(b *testing.B) {
	c, err := machine.Compile(filters.Prog(filters.Filter1), &machine.DEC21064)
	if err != nil {
		b.Fatal(err)
	}
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0].Data
	env := filters.Env{}
	s := env.NewState(pkt)
	regs := s.R
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PC = 0
		s.R = regs
		if _, err := c.Run(s, machine.Unchecked, diffFuel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledRunProfiled(b *testing.B) {
	c, err := machine.Compile(filters.Prog(filters.Filter1), &machine.DEC21064)
	if err != nil {
		b.Fatal(err)
	}
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0].Data
	env := filters.Env{}
	s := env.NewState(pkt)
	regs := s.R
	bp := machine.NewBlockProfile(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PC = 0
		s.R = regs
		if _, err := c.RunProfiled(s, machine.Unchecked, diffFuel, bp); err != nil {
			b.Fatal(err)
		}
	}
}
