package machine_test

import (
	"reflect"
	"testing"

	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/machine"
)

// FuzzCompiledDispatch fuzzes (program, packet) pairs through both
// execution backends and fails on any observable divergence. The
// program arrives as genuine Alpha machine words — the same decoder
// surface a PCC binary's code section crosses — so the fuzzer explores
// the full encodable instruction space, not just what our generators
// think of. A modest fuel keeps adversarial backward-branch loops
// cheap while still covering the ErrFuel boundary.
func FuzzCompiledDispatch(f *testing.F) {
	for _, flt := range filters.All {
		code, err := alpha.Encode(filters.Prog(flt))
		if err != nil {
			f.Fatal(err)
		}
		pkt := make([]byte, 64)
		pkt[12], pkt[13] = 0x08, 0x00
		f.Add(code, pkt)
	}
	if code, err := alpha.Encode(alpha.MustAssemble(filters.SrcChecksum).Prog); err == nil {
		f.Add(code, make([]byte, 64))
	}

	f.Fuzz(func(t *testing.T, code, pkt []byte) {
		prog, err := alpha.Decode(code)
		if err != nil || len(prog) == 0 || len(prog) > 512 {
			t.Skip()
		}
		if len(pkt) > 4096 {
			pkt = pkt[:4096]
		}
		c, err := machine.Compile(prog, &machine.DEC21064)
		if err != nil {
			// Statically malformed: the install path never executes it
			// on either backend.
			t.Skip()
		}
		const fuel = 1 << 14
		env := filters.Env{}
		for _, mode := range []machine.Mode{machine.Checked, machine.Unchecked} {
			si := env.NewState(pkt)
			resI, errI := machine.Interp(prog, si, mode, &machine.DEC21064, fuel)
			sc := env.NewState(pkt)
			resC, errC := c.Run(sc, mode, fuel)

			if (errI == nil) != (errC == nil) || (errI != nil && !reflect.DeepEqual(errI, errC)) {
				t.Fatalf("mode %v: errors diverge: interp=%v compiled=%v\n%s",
					mode, errI, errC, alpha.Program(prog))
			}
			if resI != resC {
				t.Fatalf("mode %v: results diverge: interp=%+v compiled=%+v\n%s",
					mode, resI, resC, alpha.Program(prog))
			}
			if si.R != sc.R || si.PC != sc.PC {
				t.Fatalf("mode %v: machine state diverges\n%s", mode, alpha.Program(prog))
			}
			bi := si.Mem.Region("scratch").Bytes()
			bc := sc.Mem.Region("scratch").Bytes()
			for i := range bi {
				if bi[i] != bc[i] {
					t.Fatalf("mode %v: scratch diverges at byte %d\n%s",
						mode, i, alpha.Program(prog))
				}
			}
		}
	})
}
