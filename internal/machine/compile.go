// Install-time compilation of validated filters. The paper's whole
// argument is that every safety cost is paid once, before execution —
// so the dispatch loop should not pay an interpretation tax either.
// Compile translates a program of the Alpha subset into threaded code:
// basic blocks of pre-decoded micro-ops (operands resolved, r31
// folded, literals materialized, shift amounts pre-masked, cycle
// costs baked in from the active cost model) that chain by direct
// block index instead of a per-step fetch/decode switch. Common
// instruction shapes execute inline in the block runner — loads and
// stores against the state's last-hit region resolve without a
// function call — while the rare r31-reading shapes fall back to a
// pre-decoded closure.
//
// The compiled form is behaviorally identical to Interp — same
// verdict, same retired-step count, same cycle accounting, same
// faults at the same PCs, same visible memory effects — which the
// backend-differential tests (compile_differential_test.go and the
// kernel-level suite) pin across the paper corpus, machine-generated
// programs, and chaos-accepted mutants. The interpreter remains the
// reference oracle; compilation is a pure dispatch-speed backend
// selected at install time, after the proof check has succeeded.
// Profiling runs natively on both backends: RunProfiled counts
// retired basic blocks (see blockprofile.go) and expands them to the
// interpreter's exact per-PC attribution at flush time.
package machine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/alpha"
)

// opFunc executes one pre-decoded straight-line instruction: the
// fallback form for shapes rare enough not to deserve a micro-op kind.
// Only memory instructions can return a non-nil error (a *MemFault).
type opFunc func(s *State) error

// Micro-op kinds. Destination registers are never r31 (alpha.Validate
// rejects it), so u.ra/u.rc index the register file directly.
const (
	uCall  uint8 = iota // generic fallback: run u.fn
	uLDQ                // R[ra] = mem[R[rb]+imm]
	uLDQa               // R[ra] = mem[imm]          (base r31: absolute)
	uSTQ                // mem[R[rb]+imm] = R[ra]
	uLDA                // R[ra] = R[rb] + imm
	uLDAc               // R[ra] = imm               (base r31: constant)
	uADDQl              // R[rc] = R[ra] + imm       ...literal operate forms
	uSUBQl
	uMULQl
	uANDl
	uBISl
	uXORl
	uSLLl // imm pre-masked to 0..63
	uSRLl
	uCMPEQl
	uCMPULTl
	uCMPULEl
	uADDQ // R[rc] = R[ra] op R[rb]   ...register operate forms
	uSUBQ
	uMULQ
	uAND
	uBIS
	uXOR
	uSLL
	uSRL
	uCMPEQ
	uCMPULT
	uCMPULE
	// Fused kinds (fast-path only; the slow path always executes the
	// unfused op list so fuel can run out between the ops of a pair).
	uLDQ_SLLl // v = mem[R[rb]+imm]; R[ra] = v; R[rc] = v << imm2
	uLDQ_SRLl // v = mem[R[rb]+imm]; R[ra] = v; R[rc] = v >> imm2
	uLDQ_ANDl // v = mem[R[rb]+imm]; R[ra] = v; R[rc] = v & imm2
	uLDQ_EXTl // v = mem[R[rb]+imm]; R[ra] = v; R[rc] = v<<(imm2>>8) >> (imm2&63)
	uEXTl     // R[rc] = R[ra]<<imm >> imm2
	uSRL_ANDl // R[rc] = R[ra]>>imm & imm2
)

// uop is one pre-decoded straight-line instruction.
type uop struct {
	kind       uint8
	ra, rb, rc uint8
	imm        uint64
	fn         opFunc // uCall only
}

// fuop is one fast-path micro-op: possibly several consecutive
// instructions fused into a superinstruction (a load plus the field
// extraction applied to it, a shift-mask pair, a folded constant
// chain). Fusion is only sound when no observation point can fall
// inside the group; the fast path guarantees that, because it runs a
// block only when the whole block fits in the remaining fuel, and the
// only op in a group that can fault is its first (the memory access).
type fuop struct {
	kind       uint8
	ra, rb, rc uint8
	imm, imm2  uint64
	fn         opFunc // uCall only
	pc         int32  // pc of the group's faulting op, for attribution
	stepsAt    int32  // unfused ops retired before this group
	costAt     int64  // cycles accrued before this group (within block)
}

// Branch condition kinds (the terminator's test, on a non-r31
// register; r31 conditions are folded to fixed jumps at compile time).
const (
	condEQ uint8 = iota
	condNE
	condGE
	condLT
)

// blockKind classifies how a basic block transfers control after its
// straight-line body.
type blockKind uint8

const (
	// blockFall falls through to the next block without consuming an
	// instruction (the next PC is simply another block's leader).
	blockFall blockKind = iota
	// blockJump consumes one branch instruction with a fixed outcome:
	// BR, or a conditional branch whose condition is constant because
	// it tests r31.
	blockJump
	// blockCond consumes one conditional branch instruction and picks
	// between two successor blocks.
	blockCond
	// blockRet consumes a RET instruction and ends execution.
	blockRet
	// blockExit is the virtual block at PC == len(prog): falling off
	// the end (or branching to one past the end, which the VC
	// generator's convention allows) returns without retiring an
	// instruction.
	blockExit
)

// block is one compiled basic block: a straight-line body plus a
// terminator. Blocks are immutable after Compile and hold no
// execution state, so one Compiled program may run on any number of
// goroutines concurrently (each with its own *State).
type block struct {
	ops   []uop
	pcs   []int32 // pc per body op, for fault attribution and fuel exhaustion
	costs []int64 // cycle cost per body op (static for non-branch ops)

	// Fast-path form: the body peephole-fused into superinstructions,
	// with a trailing compare pulled out next to the terminator that
	// consumes it. fsteps is the retired-instruction count of the whole
	// block including its terminator; the fast path runs only when
	// steps+fsteps <= fuel, so it needs no per-op fuel checks and no
	// unfused intermediate states are observable.
	fops   []fuop
	cmp    uop // trailing compare (hasCmp), run between body and terminator
	hasCmp bool
	// condFromCmp: the terminator's condition register is exactly the
	// folded compare's destination, so the fast path branches on the
	// compare's value without reloading the register.
	condFromCmp bool
	fsteps      int

	kind     blockKind
	next     int // successor block: fall-through / condition-false
	taken    int // successor block when the condition holds (blockJump/blockCond)
	condKind uint8
	condRa   uint8
	termPC   int32 // pc of the terminator instruction
	// Terminator cycle costs: costTaken for the taken edge (and for
	// blockJump and blockRet, which have only one edge), costNot for a
	// conditional branch that falls through.
	costTaken int64
	costNot   int64

	// Specialized epilogue (ep): the overwhelmingly common block shape
	// in filter code is a conditional branch reading the compare
	// retired immediately before it. epCondCmp runs compare and branch
	// as one fused step over edge fields pre-normalized to the
	// compare's truth value (tTrue/cTrue when the compare holds),
	// absorbing the branch-sense flip at compile time. Every other
	// shape takes epGeneric, the unspecialized compare+terminator
	// path.
	ep     uint8
	tTrue  int
	tFalse int
	cTrue  int64
	cFalse int64
	// bodyCost is the cycle total of the whole body, so the fast path
	// charges one add per block; costs[] remains for fault attribution
	// (a faulting op's predecessors charged, the op itself not).
	bodyCost int64
}

// Compiled is a program translated to threaded code for one cost
// model. It is safe for concurrent use.
type Compiled struct {
	prog     []alpha.Instr
	cm       *CostModel
	blocks   []block
	hasStore bool
	liveIn   uint32
}

// Compile translates prog into threaded code under the given cost
// model (nil means cycles are not accounted, exactly as with Interp).
// It rejects statically malformed programs — invalid registers, r31
// destinations, out-of-range branch targets, unknown opcodes — the
// same programs the paper's loader (alpha.Validate) or the
// interpreter's illegal-instruction path would refuse. A validated
// PCC extension always compiles.
func Compile(prog []alpha.Instr, cm *CostModel) (*Compiled, error) {
	if err := alpha.Validate(prog); err != nil {
		return nil, fmt.Errorf("machine: compile: %w", err)
	}
	// alpha.Validate classifies unknown opcodes as operate-format, so
	// the opcode whitelist must be explicit: an unknown op is the
	// interpreter's illegal-instruction fault, which threaded code has
	// no runtime switch to catch.
	for pc, ins := range prog {
		if !knownOp(ins.Op) {
			return nil, fmt.Errorf("machine: compile: pc %d: illegal instruction %v", pc, ins.Op)
		}
	}

	c := &Compiled{prog: prog, cm: cm, liveIn: liveInRegs(prog)}
	for _, ins := range prog {
		if ins.Op == alpha.STQ {
			c.hasStore = true
			break
		}
	}

	// Block leaders: entry, every branch target, and every instruction
	// following a control transfer. len(prog) is the virtual exit.
	leader := make([]bool, len(prog)+1)
	leader[0] = true
	leader[len(prog)] = true
	for pc, ins := range prog {
		switch ins.Op.Class() {
		case alpha.ClassBranch:
			leader[ins.Target] = true
			leader[pc+1] = true
		case alpha.ClassRet:
			leader[pc+1] = true
		}
	}
	blockAt := make([]int, len(prog)+1) // leader pc -> block index
	nblocks := 0
	for pc := 0; pc <= len(prog); pc++ {
		if leader[pc] {
			blockAt[pc] = nblocks
			nblocks++
		}
	}

	c.blocks = make([]block, 0, nblocks)
	pc := 0
	for pc <= len(prog) {
		if pc == len(prog) {
			c.blocks = append(c.blocks, block{kind: blockExit})
			break
		}
		var b block
		terminated := false
		for pc < len(prog) {
			ins := prog[pc]
			cls := ins.Op.Class()
			if cls == alpha.ClassBranch || cls == alpha.ClassRet {
				b.termPC = int32(pc)
				switch {
				case ins.Op == alpha.RET:
					b.kind = blockRet
					b.costTaken = c.cost(ins, false)
				case ins.Op == alpha.BR:
					b.kind = blockJump
					b.taken = blockAt[ins.Target]
					b.costTaken = c.cost(ins, true)
				case ins.Ra == alpha.RegZero:
					// A condition on r31 is constant: BEQ/BGE always
					// taken, BNE/BLT never. Fold to a fixed jump with
					// the cycle cost the interpreter charges for that
					// outcome.
					b.kind = blockJump
					if ins.Op == alpha.BEQ || ins.Op == alpha.BGE {
						b.taken = blockAt[ins.Target]
						b.costTaken = c.cost(ins, true)
					} else {
						b.taken = blockAt[pc+1]
						b.costTaken = c.cost(ins, false)
					}
				default:
					b.kind = blockCond
					b.condKind = condOf(ins.Op)
					b.condRa = uint8(ins.Ra)
					b.taken = blockAt[ins.Target]
					b.next = blockAt[pc+1]
					b.costTaken = c.cost(ins, true)
					b.costNot = c.cost(ins, false)
				}
				pc++
				terminated = true
				break
			}
			u, err := compileStraight(ins)
			if err != nil {
				return nil, err
			}
			b.ops = append(b.ops, u)
			b.pcs = append(b.pcs, int32(pc))
			b.costs = append(b.costs, c.cost(ins, false))
			pc++
			if leader[pc] {
				break
			}
		}
		if !terminated {
			// Stopped at a leader (a branch target, or the virtual
			// exit): fall through without consuming an instruction.
			b.kind = blockFall
			b.next = blockAt[pc]
		}
		for _, cost := range b.costs {
			b.bodyCost += cost
		}
		b.buildFast()
		c.blocks = append(c.blocks, b)
	}
	return c, nil
}

// isCmp reports whether kind is one of the compare micro-ops.
func isCmp(kind uint8) bool {
	switch kind {
	case uCMPEQl, uCMPULTl, uCMPULEl, uCMPEQ, uCMPULT, uCMPULE:
		return true
	}
	return false
}

// foldLit applies a literal ALU op to a compile-time constant, for
// folding `LDA rd, c(r31)`-rooted chains. ok is false for kinds that
// are not pure same-register literal ALU.
func foldLit(kind uint8, v, imm uint64) (out uint64, ok bool) {
	switch kind {
	case uADDQl:
		return v + imm, true
	case uSUBQl:
		return v - imm, true
	case uMULQl:
		return v * imm, true
	case uANDl:
		return v & imm, true
	case uBISl:
		return v | imm, true
	case uXORl:
		return v ^ imm, true
	case uSLLl:
		return v << imm, true
	case uSRLl:
		return v >> imm, true
	}
	return 0, false
}

// buildFast derives the block's fast-path form from its unfused body:
// a trailing compare is pulled out beside the terminator (so a
// compare-and-branch or compare-and-return pair costs one dispatch,
// not two), constant-materialization chains rooted at an r31-based LDA
// fold to a single constant store, and the packet-filter idioms — a
// load feeding a shift/mask of its own result, a shift-left/shift-right
// field extraction, a shift-then-mask — fuse into superinstructions.
// Every fusion preserves the unfused semantics at every observation
// point the fast path can reach: group boundaries (where a memory op
// may fault) and block exit. The unfused ops remain the slow path's
// (and the fault/fuel accounting's) source of truth.
func (b *block) buildFast() {
	n := len(b.ops)
	if n > 0 && isCmp(b.ops[n-1].kind) {
		b.cmp = b.ops[n-1]
		b.hasCmp = true
		n--
	}
	costAt := int64(0)
	for i := 0; i < n; {
		u := &b.ops[i]
		f := fuop{kind: u.kind, ra: u.ra, rb: u.rb, rc: u.rc, imm: u.imm,
			fn: u.fn, pc: b.pcs[i], stepsAt: int32(i), costAt: costAt}
		j := i + 1
		switch u.kind {
		case uLDAc:
			// Constant chain: subsequent literal ALU ops that read and
			// write the same register fold into the constant itself
			// (the assembler materializes wide constants as
			// LDA/SLL/BIS triples).
			for j < n && b.ops[j].ra == f.ra && b.ops[j].rc == f.ra {
				v, ok := foldLit(b.ops[j].kind, f.imm, b.ops[j].imm)
				if !ok {
					break
				}
				f.imm = v
				j++
			}
		case uLDQ:
			// Load + literal shift/mask of the loaded value. Both
			// destinations are written in program order, so the pair
			// (and the extract triple) is exact even when the ALU
			// result lands back in the load's destination.
			if j < n && b.ops[j].ra == u.ra {
				switch b.ops[j].kind {
				case uSLLl:
					f.kind, f.rc, f.imm2 = uLDQ_SLLl, b.ops[j].rc, b.ops[j].imm
					j++
					if j < n && b.ops[j].kind == uSRLl &&
						b.ops[j].ra == f.rc && b.ops[j].rc == f.rc {
						// The full header-field extract:
						// LDQ; SLL k1; SRL k2 on one register chain.
						f.kind = uLDQ_EXTl
						f.imm2 = f.imm2<<8 | b.ops[j].imm
						j++
					}
				case uSRLl:
					f.kind, f.rc, f.imm2 = uLDQ_SRLl, b.ops[j].rc, b.ops[j].imm
					j++
				case uANDl:
					f.kind, f.rc, f.imm2 = uLDQ_ANDl, b.ops[j].rc, b.ops[j].imm
					j++
				}
			}
		case uSLLl:
			// Shift-left then shift-right on one register: a field
			// extract. Only fused when the intermediate lands in the
			// final register, so no intermediate value stays live.
			if j < n && b.ops[j].kind == uSRLl &&
				b.ops[j].ra == u.rc && b.ops[j].rc == u.rc {
				f.kind, f.imm2 = uEXTl, b.ops[j].imm
				j++
			}
		case uSRLl:
			if j < n && b.ops[j].kind == uANDl &&
				b.ops[j].ra == u.rc && b.ops[j].rc == u.rc {
				f.kind, f.imm2 = uSRL_ANDl, b.ops[j].imm
				j++
			}
		}
		for ; i < j; i++ {
			costAt += b.costs[i]
		}
		b.fops = append(b.fops, f)
	}
	b.fsteps = len(b.ops)
	switch b.kind {
	case blockJump, blockCond, blockRet:
		b.fsteps++
	}
	b.condFromCmp = b.hasCmp && b.kind == blockCond && b.condRa == b.cmp.rc &&
		(b.condKind == condEQ || b.condKind == condNE)
	b.ep = epGeneric
	if b.condFromCmp {
		b.ep = epCondCmp
		if b.condKind == condNE {
			b.tTrue, b.cTrue = b.taken, b.costTaken
			b.tFalse, b.cFalse = b.next, b.costNot
		} else {
			b.tTrue, b.cTrue = b.next, b.costNot
			b.tFalse, b.cFalse = b.taken, b.costTaken
		}
	}
}

// Epilogue specializations (block.ep).
const (
	epGeneric uint8 = iota
	epCondCmp
)

// condOf maps a conditional-branch opcode to its condition kind.
func condOf(op alpha.Op) uint8 {
	switch op {
	case alpha.BEQ:
		return condEQ
	case alpha.BNE:
		return condNE
	case alpha.BGE:
		return condGE
	case alpha.BLT:
		return condLT
	}
	panic(fmt.Sprintf("machine: condOf on %v", op))
}

// cost is the compile-time cycle cost of ins under the captured model.
func (c *Compiled) cost(ins alpha.Instr, taken bool) int64 {
	if c.cm == nil {
		return 0
	}
	return int64(c.cm.cost(ins, taken))
}

// Len returns the instruction count of the compiled program.
func (c *Compiled) Len() int { return len(c.prog) }

// NumBlocks returns the basic-block count (the virtual exit included).
func (c *Compiled) NumBlocks() int { return len(c.blocks) }

// Prog returns the program the micro-ops were compiled from.
func (c *Compiled) Prog() []alpha.Instr { return c.prog }

// WritesMemory reports whether the program contains any store. A
// compiled filter with no store provably cannot dirty scratch memory,
// which lets vectorized dispatch skip the between-runs scratch wipe.
func (c *Compiled) WritesMemory() bool { return c.hasStore }

// LiveInRegs returns the set of registers (as a bitmask, bit i for
// ri) whose initial values the program may observe: registers some
// execution path reads before writing. r31 is never included (it
// always reads zero), and a RET — or falling off the end — counts as
// a read of r0. A dispatcher only needs to initialize these registers
// between runs; every other register is provably written before any
// use, so stale values from a previous run cannot influence the
// result.
func (c *Compiled) LiveInRegs() uint32 { return c.liveIn }

// liveInRegs is a must-write dataflow analysis over the raw program.
// written[pc] is the set of registers written on EVERY path from
// entry to pc (meet = intersection, top = all). After the fixpoint, a
// final sweep collects reads not covered by the must-written set.
// Conservative in the right direction: join points only shrink the
// written set, so any register possibly read before a write lands in
// the result.
func liveInRegs(prog []alpha.Instr) uint32 {
	const allRegs = (1 << alpha.NumRegs) - 1
	n := len(prog)
	written := make([]uint32, n+1) // index n: the virtual fall-off exit
	for i := 1; i <= n; i++ {
		written[i] = allRegs
	}
	flow := func(pc int, apply func(succ int, out uint32)) (reads, writes uint32) {
		ins := prog[pc]
		switch ins.Op {
		case alpha.LDQ, alpha.LDA:
			reads = 1 << ins.Rb
			writes = 1 << ins.Ra
		case alpha.STQ:
			reads = 1<<ins.Ra | 1<<ins.Rb
		case alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT:
			reads = 1 << ins.Ra
		case alpha.BR, alpha.RET:
			// BR transfers unconditionally; RET reads r0, handled by
			// the caller (it has no successor).
		default: // operate ops
			reads = 1 << ins.Ra
			if !ins.HasLit {
				reads |= 1 << ins.Rb
			}
			writes = 1 << ins.Rc
		}
		if apply != nil {
			out := written[pc] | writes
			switch ins.Op {
			case alpha.BR:
				apply(ins.Target, out)
			case alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT:
				apply(ins.Target, out)
				apply(pc+1, out)
			case alpha.RET:
			default:
				apply(pc+1, out)
			}
		}
		return reads, writes
	}
	for changed := true; changed; {
		changed = false
		for pc := 0; pc < n; pc++ {
			if written[pc] == allRegs && pc != 0 {
				continue // not (yet) reachable
			}
			flow(pc, func(succ int, out uint32) {
				if nw := written[succ] & out; nw != written[succ] {
					written[succ] = nw
					changed = true
				}
			})
		}
	}
	var rbw uint32
	for pc := 0; pc < n; pc++ {
		if written[pc] == allRegs && pc != 0 {
			continue
		}
		reads, _ := flow(pc, nil)
		rbw |= reads &^ written[pc]
		if prog[pc].Op == alpha.RET {
			rbw |= 1 &^ written[pc]
		}
	}
	if written[n] != allRegs || n == 0 {
		rbw |= 1 &^ written[n]
	}
	return rbw &^ (1 << alpha.RegZero)
}

// exec1 executes one micro-op: the out-of-line form the fuel-bounded
// slow path uses, semantically identical to the inlined fast-path
// switch in Run (the fuel-edge and differential tests pin the two
// against the interpreter op by op).
func (b *block) exec1(s *State, i int) error {
	u := &b.ops[i]
	switch u.kind {
	case uLDQ:
		v, err := s.Mem.ReadQ(s.R[u.rb] + u.imm)
		if err != nil {
			return err
		}
		s.R[u.ra] = v
	case uLDQa:
		v, err := s.Mem.ReadQ(u.imm)
		if err != nil {
			return err
		}
		s.R[u.ra] = v
	case uSTQ:
		return s.Mem.WriteQ(s.R[u.rb]+u.imm, s.R[u.ra])
	case uLDA:
		s.R[u.ra] = s.R[u.rb] + u.imm
	case uLDAc:
		s.R[u.ra] = u.imm
	case uADDQl:
		s.R[u.rc] = s.R[u.ra] + u.imm
	case uSUBQl:
		s.R[u.rc] = s.R[u.ra] - u.imm
	case uMULQl:
		s.R[u.rc] = s.R[u.ra] * u.imm
	case uANDl:
		s.R[u.rc] = s.R[u.ra] & u.imm
	case uBISl:
		s.R[u.rc] = s.R[u.ra] | u.imm
	case uXORl:
		s.R[u.rc] = s.R[u.ra] ^ u.imm
	case uSLLl:
		s.R[u.rc] = s.R[u.ra] << u.imm
	case uSRLl:
		s.R[u.rc] = s.R[u.ra] >> u.imm
	case uCMPEQl:
		s.R[u.rc] = b2i(s.R[u.ra] == u.imm)
	case uCMPULTl:
		s.R[u.rc] = b2i(s.R[u.ra] < u.imm)
	case uCMPULEl:
		s.R[u.rc] = b2i(s.R[u.ra] <= u.imm)
	case uADDQ:
		s.R[u.rc] = s.R[u.ra] + s.R[u.rb]
	case uSUBQ:
		s.R[u.rc] = s.R[u.ra] - s.R[u.rb]
	case uMULQ:
		s.R[u.rc] = s.R[u.ra] * s.R[u.rb]
	case uAND:
		s.R[u.rc] = s.R[u.ra] & s.R[u.rb]
	case uBIS:
		s.R[u.rc] = s.R[u.ra] | s.R[u.rb]
	case uXOR:
		s.R[u.rc] = s.R[u.ra] ^ s.R[u.rb]
	case uSLL:
		s.R[u.rc] = s.R[u.ra] << (s.R[u.rb] & 63)
	case uSRL:
		s.R[u.rc] = s.R[u.ra] >> (s.R[u.rb] & 63)
	case uCMPEQ:
		s.R[u.rc] = b2i(s.R[u.ra] == s.R[u.rb])
	case uCMPULT:
		s.R[u.rc] = b2i(s.R[u.ra] < s.R[u.rb])
	case uCMPULE:
		s.R[u.rc] = b2i(s.R[u.ra] <= s.R[u.rb])
	default: // uCall
		return u.fn(s)
	}
	return nil
}

// Run executes the compiled program from s.PC until return, fault, or
// fuel exhaustion, with exactly the interpreter's observable behavior:
// Result fields, error identity and attribution, final register file,
// PC, and memory effects all match Interp(prog, s, mode, cm, fuel).
// mode only affects fault classification (Wild), as in the
// interpreter; the compiled code itself performs no safety checks —
// it exists because validation made them unnecessary.
func (c *Compiled) Run(s *State, mode Mode, fuel int) (Result, error) {
	if s.PC != 0 {
		// Entry at an arbitrary PC (a mid-program resume) is not a
		// dispatch path; the reference interpreter is the semantics.
		return Interp(c.prog, s, mode, c.cm, fuel)
	}
	return crun(c, s, mode, fuel, noSink{})
}

// RunProfiled is Run with per-block profile accumulation into bp,
// which must have been built for this Compiled (NewBlockProfile).
// Execution semantics are identical to Run; the attribution recorded
// in bp, once expanded by BlockProfile.AddTo, is identical to what
// InterpProfiled would have recorded for the same run — including
// partial attribution on faults and fuel exhaustion. The per-run cost
// over Run is one counter increment per retired basic block; the
// per-PC expansion is deferred to AddTo.
func (c *Compiled) RunProfiled(s *State, mode Mode, fuel int, bp *BlockProfile) (Result, error) {
	if !bp.For(c) {
		panic("machine: RunProfiled: BlockProfile built for a different Compiled")
	}
	if s.PC != 0 {
		return InterpProfiled(c.prog, s, mode, c.cm, fuel, bp.part)
	}
	return crun(c, s, mode, fuel, bp)
}

// crun is the shared block runner behind Run and RunProfiled. The
// sink is a compile-time instantiation choice: noSink for the
// unprofiled path (its empty inlined methods make profiling cost
// nothing when off, pinned by a benchmark and an AllocsPerRun test),
// *BlockProfile for the profiled one.
func crun[S blockSink](c *Compiled, s *State, mode Mode, fuel int, sink S) (Result, error) {
	// Steps and cycles live in locals so the hot loop touches no
	// struct fields; the Result is assembled once at each exit.
	var steps int
	var cycles int64
	// Fault epilogue state (see the fail label): set by a faulting
	// fused op before it jumps out of the hot loop, so the loop body
	// carries no per-op fault check.
	var fu *fuop
	var fault error
	var b *block
	blocks := c.blocks
	bi := 0
	for {
		b = &blocks[bi]
		if steps+b.fsteps > fuel {
			// Fuel could run out inside this block: take the unfused
			// slow path, which checks fuel before every retired
			// instruction exactly like the interpreter.
			nsteps, ncycles, nbi, res, done, err := crunSlow(c, s, b, mode, fuel, steps, cycles, sink)
			if done {
				return res, err
			}
			steps, cycles, bi = nsteps, ncycles, nbi
			continue
		}
		// Fast path: the whole block — body and terminator — fits in
		// the remaining fuel, so no per-op fuel compare is needed, the
		// body's cycle total is charged with one add, and fused
		// superinstructions are safe (no observation point can land
		// between their ops). Memory ops try the state's last-hit
		// region inline before the general lookup.
		fops := b.fops
		for i := range fops {
			u := &fops[i]
			switch u.kind {
			case uLDQ:
				addr := s.R[u.rb] + u.imm
				if r := s.Mem.last; addr%8 == 0 && r != nil && addr-r.Base < uint64(len(r.data)) {
					s.R[u.ra] = binary.LittleEndian.Uint64(r.data[addr-r.Base:])
				} else if v, err := s.Mem.ReadQ(addr); err == nil {
					s.R[u.ra] = v
				} else {
					fu, fault = u, err
					goto fail
				}
			case uLDQ_SLLl, uLDQ_SRLl, uLDQ_ANDl, uLDQ_EXTl:
				addr := s.R[u.rb] + u.imm
				var v uint64
				if r := s.Mem.last; addr%8 == 0 && r != nil && addr-r.Base < uint64(len(r.data)) {
					v = binary.LittleEndian.Uint64(r.data[addr-r.Base:])
				} else if w, err := s.Mem.ReadQ(addr); err == nil {
					v = w
				} else {
					fu, fault = u, err
					goto fail
				}
				s.R[u.ra] = v
				switch u.kind {
				case uLDQ_SLLl:
					s.R[u.rc] = v << u.imm2
				case uLDQ_SRLl:
					s.R[u.rc] = v >> u.imm2
				case uLDQ_ANDl:
					s.R[u.rc] = v & u.imm2
				default: // uLDQ_EXTl
					s.R[u.rc] = v << (u.imm2 >> 8) >> (u.imm2 & 63)
				}
			case uLDQa:
				if v, err := s.Mem.ReadQ(u.imm); err == nil {
					s.R[u.ra] = v
				} else {
					fu, fault = u, err
					goto fail
				}
			case uSTQ:
				addr := s.R[u.rb] + u.imm
				if r := s.Mem.last; addr%8 == 0 && r != nil && r.Writable && addr-r.Base < uint64(len(r.data)) {
					binary.LittleEndian.PutUint64(r.data[addr-r.Base:], s.R[u.ra])
				} else if err := s.Mem.WriteQ(addr, s.R[u.ra]); err != nil {
					fu, fault = u, err
					goto fail
				}
			case uLDA:
				s.R[u.ra] = s.R[u.rb] + u.imm
			case uLDAc:
				s.R[u.ra] = u.imm
			case uEXTl:
				s.R[u.rc] = s.R[u.ra] << u.imm >> u.imm2
			case uSRL_ANDl:
				s.R[u.rc] = s.R[u.ra] >> u.imm & u.imm2
			case uADDQl:
				s.R[u.rc] = s.R[u.ra] + u.imm
			case uSUBQl:
				s.R[u.rc] = s.R[u.ra] - u.imm
			case uMULQl:
				s.R[u.rc] = s.R[u.ra] * u.imm
			case uANDl:
				s.R[u.rc] = s.R[u.ra] & u.imm
			case uBISl:
				s.R[u.rc] = s.R[u.ra] | u.imm
			case uXORl:
				s.R[u.rc] = s.R[u.ra] ^ u.imm
			case uSLLl:
				s.R[u.rc] = s.R[u.ra] << u.imm
			case uSRLl:
				s.R[u.rc] = s.R[u.ra] >> u.imm
			case uCMPEQl:
				s.R[u.rc] = b2i(s.R[u.ra] == u.imm)
			case uCMPULTl:
				s.R[u.rc] = b2i(s.R[u.ra] < u.imm)
			case uCMPULEl:
				s.R[u.rc] = b2i(s.R[u.ra] <= u.imm)
			case uADDQ:
				s.R[u.rc] = s.R[u.ra] + s.R[u.rb]
			case uSUBQ:
				s.R[u.rc] = s.R[u.ra] - s.R[u.rb]
			case uMULQ:
				s.R[u.rc] = s.R[u.ra] * s.R[u.rb]
			case uAND:
				s.R[u.rc] = s.R[u.ra] & s.R[u.rb]
			case uBIS:
				s.R[u.rc] = s.R[u.ra] | s.R[u.rb]
			case uXOR:
				s.R[u.rc] = s.R[u.ra] ^ s.R[u.rb]
			case uSLL:
				s.R[u.rc] = s.R[u.ra] << (s.R[u.rb] & 63)
			case uSRL:
				s.R[u.rc] = s.R[u.ra] >> (s.R[u.rb] & 63)
			case uCMPEQ:
				s.R[u.rc] = b2i(s.R[u.ra] == s.R[u.rb])
			case uCMPULT:
				s.R[u.rc] = b2i(s.R[u.ra] < s.R[u.rb])
			case uCMPULE:
				s.R[u.rc] = b2i(s.R[u.ra] <= s.R[u.rb])
			default: // uCall
				if err := u.fn(s); err != nil {
					fu, fault = u, err
					goto fail
				}
			}
		}
		steps += len(b.ops)
		cycles += b.bodyCost
		// The whole block is now guaranteed to retire (terminators
		// cannot fault and the fuel check covered them), so each exit
		// below makes exactly one sink call attributing body and
		// terminator at once — condBlock for conditional blocks (the
		// edge rides along), fullBlock for everything else.
		if b.ep == epCondCmp {
			// Fused compare-and-branch: evaluate the compare once as a
			// bool, store its value to the condition register, and
			// pick the pre-normalized edge — no separate terminator
			// dispatch, no branch-sense flip.
			cm := &b.cmp
			var t bool
			switch cm.kind {
			case uCMPEQl:
				t = s.R[cm.ra] == cm.imm
			case uCMPULTl:
				t = s.R[cm.ra] < cm.imm
			case uCMPULEl:
				t = s.R[cm.ra] <= cm.imm
			case uCMPEQ:
				t = s.R[cm.ra] == s.R[cm.rb]
			case uCMPULT:
				t = s.R[cm.ra] < s.R[cm.rb]
			default: // uCMPULE
				t = s.R[cm.ra] <= s.R[cm.rb]
			}
			s.R[cm.rc] = b2i(t)
			steps++
			// The branch-taken edge in program terms: the edges were
			// pre-normalized to the compare's truth value, so recover
			// takenness from the branch sense (condNE takes on true).
			sink.condBlock(bi, t == (b.condKind == condNE))
			if t {
				cycles += b.cTrue
				bi = b.tTrue
			} else {
				cycles += b.cFalse
				bi = b.tFalse
			}
			continue
		}
		var cv uint64
		if b.hasCmp {
			cm := &b.cmp
			var v uint64
			switch cm.kind {
			case uCMPEQl:
				v = b2i(s.R[cm.ra] == cm.imm)
			case uCMPULTl:
				v = b2i(s.R[cm.ra] < cm.imm)
			case uCMPULEl:
				v = b2i(s.R[cm.ra] <= cm.imm)
			case uCMPEQ:
				v = b2i(s.R[cm.ra] == s.R[cm.rb])
			case uCMPULT:
				v = b2i(s.R[cm.ra] < s.R[cm.rb])
			default: // uCMPULE
				v = b2i(s.R[cm.ra] <= s.R[cm.rb])
			}
			s.R[cm.rc] = v
			cv = v
		}
		switch b.kind {
		case blockFall:
			sink.fullBlock(bi)
			bi = b.next
		case blockJump:
			steps++
			cycles += b.costTaken
			sink.fullBlock(bi)
			bi = b.taken
		case blockCond:
			steps++
			var take bool
			if b.condFromCmp {
				// The condition register was just written by the folded
				// compare: branch on its value directly.
				if b.condKind == condNE {
					take = cv != 0
				} else {
					take = cv == 0
				}
			} else {
				switch b.condKind {
				case condEQ:
					take = s.R[b.condRa] == 0
				case condNE:
					take = s.R[b.condRa] != 0
				case condGE:
					take = int64(s.R[b.condRa]) >= 0
				default: // condLT
					take = int64(s.R[b.condRa]) < 0
				}
			}
			sink.condBlock(bi, take)
			if take {
				cycles += b.costTaken
				bi = b.taken
			} else {
				cycles += b.costNot
				bi = b.next
			}
		case blockRet:
			steps++
			cycles += b.costTaken
			sink.fullBlock(bi)
			s.PC = int(b.termPC)
			return Result{Ret: s.R[0], Steps: steps, Cycles: cycles}, nil
		case blockExit:
			sink.fullBlock(bi)
			s.PC = len(c.prog)
			return Result{Ret: s.R[0], Steps: steps, Cycles: cycles}, nil
		}
	}
fail:
	// A fused op faulted. The faulting op is always the first of its
	// fusion group, so the pre-group step/cycle prefixes recorded at
	// compile time give the exact interpreter-visible cursor: the
	// faulting instruction retires (one step) but contributes no
	// cycles — and, like the interpreter's, gets no profile
	// attribution; only the ops retired before the group do.
	pc := int(fu.pc)
	s.PC = pc
	steps += int(fu.stepsAt) + 1
	cycles += fu.costAt
	sink.partial(bi, fu.stepsAt)
	return Result{Steps: steps, Cycles: cycles}, execFault(pc, c.prog[pc], fault, mode)
}

// crunSlow executes one block with the interpreter's per-instruction
// fuel discipline, over the unfused op list (fuel may run out between
// the ops of a fused pair, and the state at that point must match the
// interpreter's exactly). It returns either the updated execution
// cursor (done=false) or the program's final Result (done=true).
// Profile attribution here is per-op (sink.note), mirroring the
// interpreter: an op is noted only after it retires successfully, so
// a faulting op and a fuel-exhausted cursor attribute nothing.
func crunSlow[S blockSink](c *Compiled, s *State, b *block, mode Mode, fuel, steps int, cycles int64, sink S) (int, int64, int, Result, bool, error) {
	for i := range b.ops {
		if steps >= fuel {
			s.PC = int(b.pcs[i])
			return 0, 0, 0, Result{Steps: steps, Cycles: cycles}, true, ErrFuel
		}
		steps++
		if err := b.exec1(s, i); err != nil {
			pc := int(b.pcs[i])
			s.PC = pc
			return 0, 0, 0, Result{Steps: steps, Cycles: cycles}, true, execFault(pc, c.prog[pc], err, mode)
		}
		cycles += b.costs[i]
		sink.note(b.pcs[i], b.costs[i])
	}
	switch b.kind {
	case blockFall:
		return steps, cycles, b.next, Result{}, false, nil
	case blockJump:
		if steps >= fuel {
			s.PC = int(b.termPC)
			return 0, 0, 0, Result{Steps: steps, Cycles: cycles}, true, ErrFuel
		}
		steps++
		cycles += b.costTaken
		sink.note(b.termPC, b.costTaken)
		return steps, cycles, b.taken, Result{}, false, nil
	case blockCond:
		if steps >= fuel {
			s.PC = int(b.termPC)
			return 0, 0, 0, Result{Steps: steps, Cycles: cycles}, true, ErrFuel
		}
		steps++
		var take bool
		switch b.condKind {
		case condEQ:
			take = s.R[b.condRa] == 0
		case condNE:
			take = s.R[b.condRa] != 0
		case condGE:
			take = int64(s.R[b.condRa]) >= 0
		default: // condLT
			take = int64(s.R[b.condRa]) < 0
		}
		if take {
			cycles += b.costTaken
			sink.note(b.termPC, b.costTaken)
			return steps, cycles, b.taken, Result{}, false, nil
		}
		cycles += b.costNot
		sink.note(b.termPC, b.costNot)
		return steps, cycles, b.next, Result{}, false, nil
	case blockRet:
		if steps >= fuel {
			s.PC = int(b.termPC)
			return 0, 0, 0, Result{Steps: steps, Cycles: cycles}, true, ErrFuel
		}
		steps++
		cycles += b.costTaken
		sink.note(b.termPC, b.costTaken)
		s.PC = int(b.termPC)
		return 0, 0, 0, Result{Ret: s.R[0], Steps: steps, Cycles: cycles}, true, nil
	default: // blockExit
		s.PC = len(c.prog)
		return 0, 0, 0, Result{Ret: s.R[0], Steps: steps, Cycles: cycles}, true, nil
	}
}

// knownOp reports whether the interpreter has a transition rule for
// op.
func knownOp(op alpha.Op) bool {
	switch op {
	case alpha.LDQ, alpha.STQ, alpha.LDA,
		alpha.ADDQ, alpha.SUBQ, alpha.MULQ, alpha.AND, alpha.BIS, alpha.XOR,
		alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE,
		alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT, alpha.BR, alpha.RET:
		return true
	}
	return false
}

// compileStraight pre-decodes one non-control instruction into a
// micro-op. Common shapes get dedicated kinds (operands resolved to
// register-file indexes or constants, no HasLit test, no r31 mapping —
// Validate guarantees destinations are never r31, so direct R-file
// indexing is safe); the rare r31-reading shapes become uCall with a
// generic closure that mirrors the interpreter's Reg path.
func compileStraight(ins alpha.Instr) (uop, error) {
	switch ins.Op {
	case alpha.LDQ:
		disp := uint64(int64(ins.Disp))
		if ins.Rb == alpha.RegZero {
			return uop{kind: uLDQa, ra: uint8(ins.Ra), imm: disp}, nil
		}
		return uop{kind: uLDQ, ra: uint8(ins.Ra), rb: uint8(ins.Rb), imm: disp}, nil

	case alpha.STQ:
		disp := uint64(int64(ins.Disp))
		if ins.Rb == alpha.RegZero || ins.Ra == alpha.RegZero {
			ins := ins
			return uop{kind: uCall, fn: func(s *State) error {
				return s.Mem.WriteQ(s.Reg(ins.Rb)+disp, s.Reg(ins.Ra))
			}}, nil
		}
		return uop{kind: uSTQ, ra: uint8(ins.Ra), rb: uint8(ins.Rb), imm: disp}, nil

	case alpha.LDA:
		disp := uint64(int64(ins.Disp))
		if ins.Rb == alpha.RegZero {
			// The assembler's constant materialization: LDA rd, c(r31).
			return uop{kind: uLDAc, ra: uint8(ins.Ra), imm: disp}, nil
		}
		return uop{kind: uLDA, ra: uint8(ins.Ra), rb: uint8(ins.Rb), imm: disp}, nil

	case alpha.ADDQ, alpha.SUBQ, alpha.MULQ, alpha.AND, alpha.BIS, alpha.XOR,
		alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE:
		return compileOperate(ins), nil
	}
	return uop{}, fmt.Errorf("machine: compile: unexpected straight-line op %v", ins.Op)
}

// operateKinds maps an operate opcode to its (literal, register)
// micro-op kinds.
var operateKinds = map[alpha.Op][2]uint8{
	alpha.ADDQ:   {uADDQl, uADDQ},
	alpha.SUBQ:   {uSUBQl, uSUBQ},
	alpha.MULQ:   {uMULQl, uMULQ},
	alpha.AND:    {uANDl, uAND},
	alpha.BIS:    {uBISl, uBIS},
	alpha.XOR:    {uXORl, uXOR},
	alpha.SLL:    {uSLLl, uSLL},
	alpha.SRL:    {uSRLl, uSRL},
	alpha.CMPEQ:  {uCMPEQl, uCMPEQ},
	alpha.CMPULT: {uCMPULTl, uCMPULT},
	alpha.CMPULE: {uCMPULEl, uCMPULE},
}

// compileOperate builds the micro-op for an operate-format
// instruction.
func compileOperate(ins alpha.Instr) uop {
	if ins.Ra == alpha.RegZero && (ins.HasLit || ins.Rb == alpha.RegZero) {
		// All sources constant (the `BIS r31, 0, rd` clear idiom and
		// friends): the result is a compile-time constant store.
		var b uint64
		if ins.HasLit {
			b = uint64(ins.Lit)
		}
		return uop{kind: uLDAc, ra: uint8(ins.Rc), imm: aluOp(ins.Op, 0, b)}
	}
	if ins.Ra == alpha.RegZero || (!ins.HasLit && ins.Rb == alpha.RegZero) {
		// An r31 source is rare enough that a generic closure (still
		// pre-decoded to one instruction, one aluOp call) is fine.
		ins := ins
		return uop{kind: uCall, fn: func(s *State) error {
			a := s.Reg(ins.Ra)
			var b uint64
			if ins.HasLit {
				b = uint64(ins.Lit)
			} else {
				b = s.Reg(ins.Rb)
			}
			s.R[ins.Rc] = aluOp(ins.Op, a, b)
			return nil
		}}
	}
	kinds := operateKinds[ins.Op]
	if ins.HasLit {
		imm := uint64(ins.Lit)
		if ins.Op == alpha.SLL || ins.Op == alpha.SRL {
			imm &= 63 // pre-mask the shift amount, as the ALU would
		}
		return uop{kind: kinds[0], ra: uint8(ins.Ra), rc: uint8(ins.Rc), imm: imm}
	}
	return uop{kind: kinds[1], ra: uint8(ins.Ra), rb: uint8(ins.Rb), rc: uint8(ins.Rc)}
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
