package machine

import "repro/internal/alpha"

// CostModel assigns cycle costs to retired instructions. The default
// model approximates the in-order dual-issue DEC 21064 of the paper's
// 175-MHz Alpha 3000/600 testbed at the granularity the experiments
// need: loads pay Dcache latency, taken branches pay a bubble, and
// everything else single-issues. The model is calibrated so the PCC
// packet filters land near the paper's per-packet figures (see
// EXPERIMENTS.md for the calibration check).
type CostModel struct {
	ALU            int // operate instructions and LDA
	Load           int // LDQ
	Store          int // STQ
	BranchTaken    int // conditional or unconditional branch, taken
	BranchNotTaken int // conditional branch, not taken
	Ret            int // RET
}

// DEC21064 is the default cost model.
var DEC21064 = CostModel{
	ALU:            1,
	Load:           3,
	Store:          3,
	BranchTaken:    2,
	BranchNotTaken: 1,
	Ret:            2,
}

// ClockMHz is the clock rate of the paper's DEC Alpha 3000/600.
const ClockMHz = 175

// Micros converts a cycle count to microseconds on the modeled machine.
func Micros(cycles int64) float64 { return float64(cycles) / ClockMHz }

func (cm *CostModel) cost(ins alpha.Instr, taken bool) int {
	switch ins.Op {
	case alpha.LDQ:
		return cm.Load
	case alpha.STQ:
		return cm.Store
	case alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT, alpha.BR:
		if taken {
			return cm.BranchTaken
		}
		return cm.BranchNotTaken
	case alpha.RET:
		return cm.Ret
	default:
		return cm.ALU
	}
}

// StaticCost returns the cycle cost of a straight-line execution of
// prog assuming no branch is taken — a quick upper-bound helper used in
// tests and table generation.
func (cm *CostModel) StaticCost(prog []alpha.Instr) int64 {
	var total int64
	for _, ins := range prog {
		total += int64(cm.cost(ins, false))
	}
	return total
}
