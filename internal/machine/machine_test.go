package machine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alpha"
)

func run(t *testing.T, src string, setup func(*State)) (Result, error) {
	t.Helper()
	a, err := alpha.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := &State{Mem: NewMemory()}
	if setup != nil {
		setup(s)
	}
	return Interp(a.Prog, s, Checked, &DEC21064, 10000)
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"MOV 7, r0\nADDQ r0, 3, r0\nRET", 10},
		{"MOV 7, r0\nSUBQ r0, 9, r0\nRET", ^uint64(1)}, // -2
		{"MOV 0xf0, r0\nAND r0, 0x3c, r0\nRET", 0x30},
		{"MOV 0xf0, r0\nBIS r0, 0x0f, r0\nRET", 0xff},
		{"MOV 0xff, r0\nXOR r0, 0x0f, r0\nRET", 0xf0},
		{"MOV 1, r0\nSLL r0, 11, r0\nRET", 2048},
		{"MOV 128, r0\nSRL r0, 3, r0\nRET", 16},
		{"MOV 5, r0\nCMPEQ r0, 5, r0\nRET", 1},
		{"MOV 5, r0\nCMPEQ r0, 6, r0\nRET", 0},
		{"MOV 5, r0\nCMPULT r0, 6, r0\nRET", 1},
		{"MOV 6, r0\nCMPULE r0, 6, r0\nRET", 1},
		{"MOVI 2048, r0\nRET", 2048},
		{"MOVI -16, r0\nRET", ^uint64(15)},
		{"CLR r0\nRET", 0},
	}
	for _, c := range cases {
		res, err := run(t, c.src, nil)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%q: got %d, want %d", c.src, res.Ret, c.want)
		}
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"CLR r1\nCLR r0\nBEQ r1, yes\nRET\nyes: MOV 1, r0\nRET", 1},
		{"MOV 5, r1\nCLR r0\nBEQ r1, yes\nRET\nyes: MOV 1, r0\nRET", 0},
		{"MOV 5, r1\nCLR r0\nBNE r1, yes\nRET\nyes: MOV 1, r0\nRET", 1},
		{"MOVI -1, r1\nCLR r0\nBLT r1, yes\nRET\nyes: MOV 1, r0\nRET", 1},
		{"MOVI -1, r1\nCLR r0\nBGE r1, yes\nRET\nyes: MOV 1, r0\nRET", 0},
		{"CLR r1\nCLR r0\nBGE r1, yes\nRET\nyes: MOV 1, r0\nRET", 1},
		{"CLR r0\nBR yes\nMOV 9, r0\nyes: RET", 0},
	}
	for _, c := range cases {
		res, err := run(t, c.src, nil)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%q: got %d, want %d", c.src, res.Ret, c.want)
		}
	}
}

func TestZeroRegister(t *testing.T) {
	// r31 always reads as zero; writes are discarded by SetReg.
	s := &State{Mem: NewMemory()}
	s.SetReg(alpha.RegZero, 99)
	if s.Reg(alpha.RegZero) != 0 {
		t.Error("r31 not zero after write")
	}
}

func TestLoadStore(t *testing.T) {
	res, err := run(t, `
		LDQ  r1, 0(r0)     ; load word
		ADDQ r1, 1, r1
		STQ  r1, 8(r0)     ; store incremented
		LDQ  r0, 8(r0)     ; reload
		RET
	`, func(s *State) {
		r := NewRegion("buf", 0x1000, 16, true)
		r.SetWord(0, 41)
		s.Mem.MustAddRegion(r)
		s.R[0] = 0x1000
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("got %d, want 42", res.Ret)
	}
}

func TestNegativeDisplacement(t *testing.T) {
	res, err := run(t, "LDQ r0, -8(r1)\nRET", func(s *State) {
		r := NewRegion("buf", 0x1000, 16, false)
		r.SetWord(0, 7)
		s.Mem.MustAddRegion(r)
		s.R[1] = 0x1008
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 7 {
		t.Fatalf("got %d, want 7", res.Ret)
	}
}

func TestCheckedModeBlocks(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		setup func(*State)
		kind  FaultKind
	}{
		{
			"unmapped read", "LDQ r0, 0(r1)\nRET",
			func(s *State) { s.R[1] = 0xdead000 }, FaultUnmapped,
		},
		{
			"unaligned read", "LDQ r0, 4(r1)\nRET",
			func(s *State) {
				s.Mem.MustAddRegion(NewRegion("buf", 0x1000, 16, true))
				s.R[1] = 0x1000
			}, FaultUnaligned,
		},
		{
			"read-only write", "STQ r0, 0(r1)\nRET",
			func(s *State) {
				s.Mem.MustAddRegion(NewRegion("buf", 0x1000, 16, false))
				s.R[1] = 0x1000
			}, FaultReadOnly,
		},
	}
	for _, c := range cases {
		_, err := run(t, c.src, c.setup)
		var ee *ExecError
		if !errors.As(err, &ee) {
			t.Errorf("%s: got %v, want ExecError", c.name, err)
			continue
		}
		var mf *MemFault
		if !errors.As(err, &mf) || mf.Kind != c.kind {
			t.Errorf("%s: fault = %v, want %v", c.name, err, c.kind)
		}
		if ee.Wild {
			t.Errorf("%s: checked-mode fault marked wild", c.name)
		}
	}
}

func TestUncheckedModeWildAccess(t *testing.T) {
	a, err := alpha.Assemble("STQ r0, 0(r1)\nRET")
	if err != nil {
		t.Fatal(err)
	}
	s := &State{Mem: NewMemory()}
	s.R[1] = 0xbad0000
	_, err = Interp(a.Prog, s, Unchecked, nil, 100)
	var ee *ExecError
	if !errors.As(err, &ee) || !ee.Wild {
		t.Fatalf("expected wild-access fault, got %v", err)
	}
	if !strings.Contains(ee.Error(), "WILD") {
		t.Errorf("error message should flag wild access: %v", ee)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// An infinite loop must hit the step budget, not hang.
	a, err := alpha.Assemble("loop: BR loop")
	if err != nil {
		t.Fatal(err)
	}
	s := &State{Mem: NewMemory()}
	_, err = Interp(a.Prog, s, Checked, nil, 50)
	if err != ErrFuel {
		t.Fatalf("got %v, want ErrFuel", err)
	}
}

func TestFallOffEndIsReturn(t *testing.T) {
	a, err := alpha.Assemble("MOV 3, r0")
	if err != nil {
		t.Fatal(err)
	}
	s := &State{Mem: NewMemory()}
	res, err := Interp(a.Prog, s, Checked, nil, 10)
	if err != nil || res.Ret != 3 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestCycleAccounting(t *testing.T) {
	res, err := run(t, "LDQ r0, 0(r1)\nADDQ r0, 1, r0\nRET", func(s *State) {
		s.Mem.MustAddRegion(NewRegion("buf", 0x1000, 8, false))
		s.R[1] = 0x1000
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(DEC21064.Load + DEC21064.ALU + DEC21064.Ret)
	if res.Cycles != want {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
}

func TestTakenBranchCost(t *testing.T) {
	res, err := run(t, "CLR r1\nBEQ r1, out\nout: RET", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(DEC21064.ALU + DEC21064.BranchTaken + DEC21064.Ret)
	if res.Cycles != want {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(175); got != 1.0 {
		t.Fatalf("Micros(175) = %v, want 1.0", got)
	}
}

func TestStaticCost(t *testing.T) {
	a := alpha.MustAssemble("LDQ r0, 0(r1)\nADDQ r0, 1, r0\nBEQ r0, out\nout: RET")
	got := DEC21064.StaticCost(a.Prog)
	want := int64(DEC21064.Load + DEC21064.ALU + DEC21064.BranchNotTaken + DEC21064.Ret)
	if got != want {
		t.Fatalf("StaticCost = %d, want %d", got, want)
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	m := NewMemory()
	m.MustAddRegion(NewRegion("a", 0x1000, 64, false))
	if err := m.AddRegion(NewRegion("b", 0x1020, 64, false)); err == nil {
		t.Error("overlapping region accepted")
	}
	if err := m.AddRegion(NewRegion("c", 0x1040, 64, false)); err != nil {
		t.Errorf("adjacent region rejected: %v", err)
	}
}

func TestRegionPadding(t *testing.T) {
	r := NewRegion("pkt", 0x2000, 60, false)
	if r.Size() != 64 {
		t.Fatalf("size = %d, want 64 (padded)", r.Size())
	}
	r.SetBytes(make([]byte, 60))
	r.SetBytes([]byte{1, 2, 3})
	if r.Bytes()[0] != 1 || r.Bytes()[3] != 0 {
		t.Error("SetBytes did not reset trailing bytes")
	}
}

func TestRegionLookupByName(t *testing.T) {
	m := NewMemory()
	m.MustAddRegion(NewRegion("pkt", 0x2000, 64, false))
	if m.Region("pkt") == nil || m.Region("nope") != nil {
		t.Error("Region lookup broken")
	}
}

func TestUnalignedBaseRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned base accepted")
		}
	}()
	NewRegion("bad", 0x1004, 8, false)
}

func TestMULQExecution(t *testing.T) {
	res, err := run(t, "MOV 6, r0\nMULQ r0, 7, r0\nRET", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("6*7 = %d", res.Ret)
	}
}

func TestMaxCost(t *testing.T) {
	a := alpha.MustAssemble(`
        LDQ    r4, 0(r1)
        BEQ    r4, cheap
        LDQ    r5, 8(r1)   ; expensive path
        LDQ    r6, 16(r1)
cheap:  RET
	`)
	wcet, err := DEC21064.MaxCost(a.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Longest path: load + branch-not-taken + 2 loads + ret.
	want := int64(DEC21064.Load + DEC21064.BranchNotTaken + 2*DEC21064.Load + DEC21064.Ret)
	if wcet != want {
		t.Fatalf("MaxCost = %d, want %d", wcet, want)
	}

	// The bound is sound: no execution can exceed it.
	for _, first := range []uint64{0, 7} {
		s := &State{Mem: NewMemory()}
		r := NewRegion("pkt", 0x1000, 64, false)
		r.SetWord(0, first)
		s.Mem.MustAddRegion(r)
		s.R[1] = 0x1000
		res, err := Interp(a.Prog, s, Checked, &DEC21064, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > wcet {
			t.Fatalf("execution cost %d exceeds WCET %d", res.Cycles, wcet)
		}
	}
}

func TestMaxCostRejectsLoops(t *testing.T) {
	a := alpha.MustAssemble("loop: SUBQ r0, 1, r0\nBNE r0, loop\nRET")
	if _, err := DEC21064.MaxCost(a.Prog); err == nil {
		t.Fatal("looping program got a static bound")
	}
}

func TestMaxCostSoundOnRandomPrograms(t *testing.T) {
	// Property: for random loop-free programs, every execution's cycle
	// count is bounded by MaxCost.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		prog := randConfinedProgram(r)
		wcet, err := DEC21064.MaxCost(prog)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 4; run++ {
			s := confinedState(rand.New(rand.NewSource(r.Int63())))
			res, err := Interp(prog, s, Checked, &DEC21064, 10000)
			if err != nil {
				continue
			}
			if res.Cycles > wcet {
				t.Fatalf("trial %d: cost %d > WCET %d\n%s",
					trial, res.Cycles, wcet, alpha.Program(prog))
			}
		}
	}
}

func TestTracerObservesEveryInstruction(t *testing.T) {
	a := alpha.MustAssemble("MOV 1, r0\nADDQ r0, 2, r0\nRET")
	s := &State{Mem: NewMemory()}
	var pcs []int
	res, err := InterpTraced(a.Prog, s, Checked, nil, 100,
		func(pc int, ins alpha.Instr, st *State) { pcs = append(pcs, pc) })
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != res.Steps || len(pcs) != 3 {
		t.Fatalf("traced %d pcs, steps %d", len(pcs), res.Steps)
	}
	for i, pc := range pcs {
		if pc != i {
			t.Fatalf("trace out of order: %v", pcs)
		}
	}
}
