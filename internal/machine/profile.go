// Cycle-attribution profiler for simulated extension code. The
// paper's data-plane argument (Figure 8, Table 2) is a per-packet
// cycle count; a Profile breaks that count down to where it is spent —
// per PC and per basic block — so a filter's cost can be read beside
// its disassembly or rendered as a flamegraph (internal/pprofenc).
//
// A Profile is plain (non-atomic) storage: it belongs to exactly one
// execution at a time. Concurrent consumers (the kernel's per-filter
// accumulators) run each delivery into a private scratch Profile and
// merge the result atomically on their side — the interpreter's hot
// loop stays two plain adds per retired instruction.
package machine

import (
	"fmt"
	"strings"

	"repro/internal/alpha"
)

// Profile accumulates per-PC execution counts and simulated cycles for
// one program. The zero Profile is unusable; build one with NewProfile
// sized to the program it will observe.
type Profile struct {
	// Cycles[pc] is the simulated cycles retired at pc; Visits[pc] is
	// how many times pc retired an instruction.
	Cycles []int64
	Visits []int64
	// Runs counts completed executions merged into this profile.
	Runs int64
}

// NewProfile builds a profile for a program of n instructions.
func NewProfile(n int) *Profile {
	return &Profile{Cycles: make([]int64, n), Visits: make([]int64, n)}
}

// note implements profSink: attribute one retired instruction.
func (p *Profile) note(pc int, cycles int64) {
	if pc < len(p.Cycles) {
		p.Cycles[pc] += cycles
		p.Visits[pc]++
	}
}

// Reset zeroes the profile for reuse without reallocating.
func (p *Profile) Reset() {
	for i := range p.Cycles {
		p.Cycles[i] = 0
		p.Visits[i] = 0
	}
	p.Runs = 0
}

// Merge folds other into p (slices must be the same length).
func (p *Profile) Merge(other *Profile) {
	for i := range other.Cycles {
		p.Cycles[i] += other.Cycles[i]
		p.Visits[i] += other.Visits[i]
	}
	p.Runs += other.Runs
}

// TotalCycles sums the attributed cycles over all PCs.
func (p *Profile) TotalCycles() int64 {
	var total int64
	for _, c := range p.Cycles {
		total += c
	}
	return total
}

// TotalVisits sums the retired-instruction count over all PCs.
func (p *Profile) TotalVisits() int64 {
	var total int64
	for _, v := range p.Visits {
		total += v
	}
	return total
}

// Block is one basic block of a profiled program with its aggregated
// cost: instructions [Start, End), entered Visits times (the leader's
// visit count), costing Cycles simulated cycles in total.
type Block struct {
	Start, End int
	Cycles     int64
	Visits     int64
}

// BlockLeaders computes the basic-block leader set of a program: the
// entry PC, every branch target, and every instruction following a
// branch or RET.
func BlockLeaders(prog []alpha.Instr) []int {
	leader := make([]bool, len(prog)+1)
	if len(prog) > 0 {
		leader[0] = true
	}
	for pc, ins := range prog {
		switch ins.Op.Class() {
		case alpha.ClassBranch:
			if ins.Target >= 0 && ins.Target <= len(prog) {
				leader[ins.Target] = true
			}
			leader[pc+1] = true
		case alpha.ClassRet:
			leader[pc+1] = true
		}
	}
	var out []int
	for pc := 0; pc < len(prog); pc++ {
		if leader[pc] {
			out = append(out, pc)
		}
	}
	return out
}

// Blocks aggregates the profile over prog's basic blocks, in program
// order.
func (p *Profile) Blocks(prog []alpha.Instr) []Block {
	leaders := BlockLeaders(prog)
	blocks := make([]Block, 0, len(leaders))
	for i, start := range leaders {
		end := len(prog)
		if i+1 < len(leaders) {
			end = leaders[i+1]
		}
		b := Block{Start: start, End: end}
		if start < len(p.Visits) {
			b.Visits = p.Visits[start]
		}
		for pc := start; pc < end && pc < len(p.Cycles); pc++ {
			b.Cycles += p.Cycles[pc]
		}
		blocks = append(blocks, b)
	}
	return blocks
}

// AnnotatedListing renders prog as a disassembly listing with the
// profile's cycles and visit counts beside each instruction, and a
// per-basic-block summary — the "where did the packet's cycles go"
// view of a filter.
func (p *Profile) AnnotatedListing(prog []alpha.Instr) string {
	total := p.TotalCycles()
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %7s  %s\n", "cycles", "visits", "share", "instruction")
	b.WriteString(alpha.AnnotatedProgram(prog, func(pc int) string {
		var cyc, vis int64
		if pc < len(p.Cycles) {
			cyc, vis = p.Cycles[pc], p.Visits[pc]
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(cyc) / float64(total)
		}
		return fmt.Sprintf("%8d %10d %6.1f%%", cyc, vis, share)
	}))
	fmt.Fprintf(&b, "basic blocks (%d runs, %d cycles total):\n", p.Runs, total)
	for _, blk := range p.Blocks(prog) {
		share := 0.0
		if total > 0 {
			share = 100 * float64(blk.Cycles) / float64(total)
		}
		fmt.Fprintf(&b, "  pc %3d..%-3d %10d cycles %10d entries %6.1f%%\n",
			blk.Start, blk.End-1, blk.Cycles, blk.Visits, share)
	}
	return b.String()
}
