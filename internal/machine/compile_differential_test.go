// Backend-differential suite: the compiled backend must be
// observationally identical to the interpreter on every corpus we can
// get our hands on — the paper's four filters and the looping
// IP-checksum filter, machine-generated programs over generated
// traffic, and every chaos-harness mutant the validator accepts
// (byte-identical re-accepts and safe variants alike). The package is
// external (machine_test) because the corpora live in packages that
// themselves import machine.
package machine_test

import (
	"math/rand"
	"reflect"
	"testing"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/chaos"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

const diffFuel = 1 << 20

// diffOnPacket runs prog over one packet through both backends and
// fails on any observable difference: Result, error, registers, final
// PC, scratch memory.
func diffOnPacket(t *testing.T, label string, prog []alpha.Instr, c *machine.Compiled, pkt []byte, mode machine.Mode) {
	t.Helper()
	env := filters.Env{}
	si := env.NewState(pkt)
	resI, errI := machine.Interp(prog, si, mode, &machine.DEC21064, diffFuel)
	sc := env.NewState(pkt)
	resC, errC := c.Run(sc, mode, diffFuel)

	if (errI == nil) != (errC == nil) || (errI != nil && !reflect.DeepEqual(errI, errC)) {
		t.Fatalf("%s (mode %v): errors diverge: interp=%v compiled=%v\n%s",
			label, mode, errI, errC, alpha.Program(prog))
	}
	if resI != resC {
		t.Fatalf("%s (mode %v): results diverge: interp=%+v compiled=%+v\n%s",
			label, mode, resI, resC, alpha.Program(prog))
	}
	if si.R != sc.R {
		t.Fatalf("%s (mode %v): register files diverge\n%s", label, mode, alpha.Program(prog))
	}
	if si.PC != sc.PC {
		t.Fatalf("%s (mode %v): final PCs diverge: interp=%d compiled=%d",
			label, mode, si.PC, sc.PC)
	}
	bi := si.Mem.Region("scratch").Bytes()
	bc := sc.Mem.Region("scratch").Bytes()
	for i := range bi {
		if bi[i] != bc[i] {
			t.Fatalf("%s (mode %v): scratch memory diverges at byte %d", label, mode, i)
		}
	}
}

// paperPrograms is the full paper corpus: the four filters plus the
// looping IP-checksum filter (the only base exercising backward
// branches and scratch stores on real certified code).
func paperPrograms(t *testing.T) map[string][]alpha.Instr {
	t.Helper()
	progs := map[string][]alpha.Instr{}
	for _, f := range filters.All {
		progs[f.String()] = filters.Prog(f)
	}
	progs["checksum"] = alpha.MustAssemble(filters.SrcChecksum).Prog
	return progs
}

func TestBackendEquivalencePaperCorpus(t *testing.T) {
	trace := pktgen.Generate(2000, pktgen.Config{Seed: 1996})
	for name, prog := range paperPrograms(t) {
		c, err := machine.Compile(prog, &machine.DEC21064)
		if err != nil {
			t.Fatalf("%s: Compile: %v", name, err)
		}
		if c.Len() != len(prog) {
			t.Fatalf("%s: compiled length %d != %d", name, c.Len(), len(prog))
		}
		for _, p := range trace {
			diffOnPacket(t, name, prog, c, p.Data, machine.Unchecked)
		}
		// The checked abstract machine must agree too (spot-checked on
		// a slice of the trace; Unchecked above is the dispatch mode).
		for _, p := range trace[:200] {
			diffOnPacket(t, name, prog, c, p.Data, machine.Checked)
		}
	}
}

// randFilterProgram machine-generates a random packet-filter-shaped
// program: loads from the packet and scratch areas (mostly in-bounds,
// sometimes wild to exercise fault parity), scratch stores, ALU ops on
// the working registers, forward branches, and a final RET. Every
// program passes alpha.Validate, so every program must compile.
func randFilterProgram(r *rand.Rand) []alpha.Instr {
	var prog []alpha.Instr
	n := 3 + r.Intn(24)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			ins := alpha.Instr{Op: alpha.LDQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: policy.RegPacket, Disp: int16(8 * r.Intn(8))}
			if r.Intn(8) == 0 {
				ins.Disp = int16(r.Intn(1 << 14)) // wild: often unmapped/unaligned
			}
			prog = append(prog, ins)
		case 3:
			prog = append(prog, alpha.Instr{Op: alpha.LDQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: policy.RegScratch, Disp: int16(8 * r.Intn(policy.ScratchLen/8))})
		case 4:
			prog = append(prog, alpha.Instr{Op: alpha.STQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: policy.RegScratch, Disp: int16(8 * r.Intn(policy.ScratchLen/8))})
		case 5:
			prog = append(prog, alpha.Instr{Op: alpha.Op(int(alpha.BEQ) + r.Intn(4)),
				Ra: alpha.Reg(r.Intn(alpha.NumRegs)), Target: -1})
		case 6:
			prog = append(prog, alpha.Instr{Op: alpha.LDA, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: alpha.RegZero, Disp: int16(r.Intn(4096) - 2048)})
		default:
			ops := []alpha.Op{alpha.ADDQ, alpha.SUBQ, alpha.MULQ, alpha.AND, alpha.BIS,
				alpha.XOR, alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE}
			ins := alpha.Instr{Op: ops[r.Intn(len(ops))],
				Ra: alpha.Reg(r.Intn(alpha.NumRegs)), Rc: alpha.Reg(r.Intn(alpha.NumRegs))}
			if r.Intn(6) == 0 {
				ins.Ra = alpha.RegZero // exercise the zero-register fold
			}
			if r.Intn(2) == 0 {
				ins.HasLit = true
				ins.Lit = uint8(r.Intn(256))
			} else {
				ins.Rb = alpha.Reg(r.Intn(alpha.NumRegs))
				if r.Intn(6) == 0 {
					ins.Rb = alpha.RegZero
				}
			}
			prog = append(prog, ins)
		}
	}
	prog = append(prog, alpha.Instr{Op: alpha.RET})
	for pc := range prog {
		if prog[pc].Op.Class() == alpha.ClassBranch && prog[pc].Target == -1 {
			prog[pc].Target = pc + 1 + r.Intn(len(prog)-pc)
		}
	}
	return prog
}

func TestBackendEquivalenceGeneratedFilters(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	gen := pktgen.New(pktgen.Config{Seed: 7})
	for trial := 0; trial < 1500; trial++ {
		prog := randFilterProgram(r)
		c, err := machine.Compile(prog, &machine.DEC21064)
		if err != nil {
			t.Fatalf("trial %d: Compile rejected a Validate-clean program: %v\n%s",
				trial, err, alpha.Program(prog))
		}
		for i := 0; i < 4; i++ {
			pkt := gen.Next().Data
			diffOnPacket(t, "generated", prog, c, pkt, machine.Unchecked)
			diffOnPacket(t, "generated", prog, c, pkt, machine.Checked)
		}
	}
}

// TestBackendEquivalenceChaosAccepts feeds chaos-harness mutants
// through the validator and, for every accepted one (byte-identical
// re-accepts and SafeVariantAccepts both), requires backend agreement
// over generated traffic. The unmutated bases are always included so
// the corpus is never empty even on a run where every mutant is
// rejected.
func TestBackendEquivalenceChaosAccepts(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos mutant corpus is slow")
	}
	bases, err := chaos.PaperBases()
	if err != nil {
		t.Fatal(err)
	}
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 50_000

	type accepted struct {
		label string
		prog  []alpha.Instr
	}
	var corpus []accepted
	for _, b := range bases {
		ext, _, verr := pcc.ValidateCtx(t.Context(), b.Binary, b.Policy, &lim)
		if verr != nil {
			t.Fatalf("base %s failed validation: %v", b.Name, verr)
		}
		corpus = append(corpus, accepted{"base:" + b.Name, ext.Prog})
	}
	r := rand.New(rand.NewSource(1996))
	muts := chaos.Mutators()
	safeVariants := 0
	for trial := 0; trial < 400; trial++ {
		base := bases[r.Intn(len(bases))]
		m := muts[r.Intn(len(muts))]
		mutant := m.Fn(r, base)
		ext, _, verr := pcc.ValidateCtx(t.Context(), mutant, base.Policy, &lim)
		if verr != nil {
			continue // rejected mutants have no execution to compare
		}
		corpus = append(corpus, accepted{"mutant:" + m.Name + ":" + base.Name, ext.Prog})
		safeVariants++
	}
	t.Logf("chaos corpus: %d programs (%d accepted mutants)", len(corpus), safeVariants)

	trace := pktgen.Generate(300, pktgen.Config{Seed: 3})
	for _, a := range corpus {
		c, cerr := machine.Compile(a.prog, &machine.DEC21064)
		if cerr != nil {
			t.Fatalf("%s: validated program failed to compile: %v", a.label, cerr)
		}
		for _, p := range trace {
			diffOnPacket(t, a.label, a.prog, c, p.Data, machine.Unchecked)
		}
	}
}

// TestCompiledConcurrentRuns hammers one Compiled program from many
// goroutines with distinct states — the dispatch-path sharing model —
// and cross-checks each result against a private interpreter run.
// Meaningful under -race.
func TestCompiledConcurrentRuns(t *testing.T) {
	prog := filters.Prog(filters.Filter4)
	c, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			gen := pktgen.New(pktgen.Config{Seed: seed})
			env := filters.Env{}
			for i := 0; i < 500; i++ {
				pkt := gen.Next().Data
				sc := env.NewState(pkt)
				resC, errC := c.Run(sc, machine.Unchecked, diffFuel)
				si := env.NewState(pkt)
				resI, errI := machine.Interp(prog, si, machine.Unchecked, &machine.DEC21064, diffFuel)
				if resC != resI || (errC == nil) != (errI == nil) {
					done <- &mismatchError{resI, resC}
					return
				}
			}
			done <- nil
		}(uint64(g + 1))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchError struct{ interp, compiled machine.Result }

func (e *mismatchError) Error() string {
	return "concurrent run diverged between backends"
}
