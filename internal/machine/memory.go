// Package machine implements the abstract machine of Necula & Lee
// (OSDI '96, Figure 3): a state-transition function over eleven
// registers, a program counter, and a memory pseudo-register, with the
// rd/wr safety checks shown boxed in the paper. It doubles as the
// "real DEC Alpha" of the experiments: run in Unchecked mode the boxed
// checks are skipped, which is exactly how validated PCC binaries
// execute with zero run-time overhead. A calibrated cycle cost model
// (see cost.go) converts executions into DEC 3000/600 microseconds for
// the Figure 8/9 reproductions.
package machine

import (
	"encoding/binary"
	"fmt"
)

// Region is a contiguous span of memory the kernel has handed to an
// extension: a network packet, the scratch area, a table entry. Backing
// storage is rounded up to a multiple of 8 bytes (kernels allocate
// word-aligned buffers; this also matches the paper's 64-bit load +
// byte extraction idiom on packets of arbitrary byte length).
type Region struct {
	Name     string
	Base     uint64
	Writable bool
	data     []byte
}

// NewRegion creates a region at base covering the given bytes. The base
// must be 8-byte aligned.
func NewRegion(name string, base uint64, size int, writable bool) *Region {
	if base%8 != 0 {
		panic(fmt.Sprintf("machine: region %q base %#x not 8-byte aligned", name, base))
	}
	if size < 0 {
		panic("machine: negative region size")
	}
	padded := (size + 7) &^ 7
	return &Region{Name: name, Base: base, Writable: writable, data: make([]byte, padded)}
}

// Size returns the padded size of the region in bytes.
func (r *Region) Size() int { return len(r.data) }

// Resize sets the region's visible size to size bytes (padded up to a
// multiple of 8 like NewRegion), reusing the backing array when it is
// large enough — how a kernel recycles one packet buffer across
// deliveries instead of allocating per packet. Contents are
// unspecified after a resize; callers repopulate with SetBytes (which
// zeroes any tail).
func (r *Region) Resize(size int) {
	if size < 0 {
		panic("machine: negative region size")
	}
	padded := (size + 7) &^ 7
	if padded <= cap(r.data) {
		r.data = r.data[:padded]
		return
	}
	r.data = make([]byte, padded)
}

// Bytes exposes the region's backing storage (e.g. to copy in a packet).
func (r *Region) Bytes() []byte { return r.data }

// AliasBytes points the region at caller-owned backing storage without
// copying — zero-copy dispatch maps a read-only region directly onto a
// packet buffer. len(b) must be a multiple of 8 (an unaligned tail
// needs its own region with copied, padded backing); the caller
// promises b stays unmodified while aliased. The alias persists until
// the next AliasBytes (Resize may keep the aliased array, so callers
// that mix the two must re-alias owned storage first).
func (r *Region) AliasBytes(b []byte) {
	if len(b)%8 != 0 {
		// Constant message (no formatting): the inliner charges a bare
		// panic almost nothing, keeping AliasBytes inlinable into the
		// dispatch hot loops.
		panic("machine: AliasBytes length not a multiple of 8")
	}
	r.data = b
}

// Clear sets the region's visible size to zero (it matches no
// address) without touching the backing storage: Resize(0), minus the
// sizing logic, small enough to inline.
func (r *Region) Clear() { r.data = r.data[:0] }

// SetBytes copies b into the start of the region.
func (r *Region) SetBytes(b []byte) {
	if len(b) > len(r.data) {
		panic(fmt.Sprintf("machine: %d bytes exceed region %q size %d", len(b), r.Name, len(r.data)))
	}
	copy(r.data, b)
	for i := len(b); i < len(r.data); i++ {
		r.data[i] = 0
	}
}

func (r *Region) contains(addr uint64) bool {
	return addr >= r.Base && addr-r.Base < uint64(len(r.data))
}

// Word returns the 64-bit little-endian word at the given byte offset.
func (r *Region) Word(off int) uint64 {
	return binary.LittleEndian.Uint64(r.data[off:])
}

// SetWord stores a 64-bit little-endian word at the given byte offset.
func (r *Region) SetWord(off int, v uint64) {
	binary.LittleEndian.PutUint64(r.data[off:], v)
}

// Memory is the machine's memory: a set of non-overlapping regions.
// Like State, a Memory belongs to one goroutine at a time: lookups
// maintain a last-hit cache (extensions touch the packet region many
// times in a row, the scratch region occasionally), so even read-only
// sharing across goroutines would race.
type Memory struct {
	regions []*Region
	last    *Region // most recently hit region (single-goroutine cache)
}

// NewMemory creates an empty memory.
func NewMemory() *Memory { return &Memory{} }

// AddRegion installs a region, rejecting overlap with existing regions.
func (m *Memory) AddRegion(r *Region) error {
	for _, prev := range m.regions {
		if r.Base < prev.Base+uint64(len(prev.data)) && prev.Base < r.Base+uint64(len(r.data)) {
			return fmt.Errorf("machine: region %q overlaps %q", r.Name, prev.Name)
		}
	}
	m.regions = append(m.regions, r)
	return nil
}

// MustAddRegion is AddRegion that panics on error (for test fixtures).
func (m *Memory) MustAddRegion(r *Region) {
	if err := m.AddRegion(r); err != nil {
		panic(err)
	}
}

// Region returns the named region, or nil.
func (m *Memory) Region(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func (m *Memory) find(addr uint64) *Region {
	if r := m.last; r != nil && r.contains(addr) {
		return r
	}
	for _, r := range m.regions {
		if r.contains(addr) {
			m.last = r
			return r
		}
	}
	return nil
}

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds. In Checked mode (the abstract machine) any fault means
// the machine "blocks": there is no transition rule covering it. In
// Unchecked mode (the real CPU) an Unmapped or ReadOnly fault models a
// wild access into the kernel — the very thing PCC certification rules
// out — while Unaligned still traps, as on real Alpha hardware.
const (
	FaultUnaligned FaultKind = iota
	FaultUnmapped
	FaultReadOnly
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnaligned:
		return "unaligned access"
	case FaultUnmapped:
		return "unmapped address"
	case FaultReadOnly:
		return "write to read-only region"
	}
	return "unknown fault"
}

// MemFault reports a failed rd/wr safety check.
type MemFault struct {
	Kind  FaultKind
	Addr  uint64
	Write bool
}

// Error implements the error interface.
func (f *MemFault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("machine: %s at %#x: %s", op, f.Addr, f.Kind)
}

// ReadQ loads the 64-bit word at addr, enforcing the rd() check.
func (m *Memory) ReadQ(addr uint64) (uint64, error) {
	if addr%8 != 0 {
		return 0, &MemFault{FaultUnaligned, addr, false}
	}
	r := m.find(addr)
	if r == nil {
		return 0, &MemFault{FaultUnmapped, addr, false}
	}
	return r.Word(int(addr - r.Base)), nil
}

// WriteQ stores the 64-bit word at addr, enforcing the wr() check.
func (m *Memory) WriteQ(addr uint64, v uint64) error {
	if addr%8 != 0 {
		return &MemFault{FaultUnaligned, addr, true}
	}
	r := m.find(addr)
	if r == nil {
		return &MemFault{FaultUnmapped, addr, true}
	}
	if !r.Writable {
		return &MemFault{FaultReadOnly, addr, true}
	}
	r.SetWord(int(addr-r.Base), v)
	return nil
}
