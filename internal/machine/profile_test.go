package machine

import (
	"strings"
	"testing"

	"repro/internal/alpha"
)

// profProg assembles a small branchy program: r0 = 1 if the word at
// 0(r1) is nonzero, else 0, via a taken/not-taken split.
const profSrc = `
        LDQ    r4, 0(r1)
        BEQ    r4, zero
        LDA    r0, 1(r31)
        RET
zero:   CLR    r0
        RET
`

func assembleProf(t *testing.T) []alpha.Instr {
	t.Helper()
	asm, err := alpha.Assemble(profSrc)
	if err != nil {
		t.Fatal(err)
	}
	return asm.Prog
}

func profState(word uint64) *State {
	mem := NewMemory()
	r := NewRegion("data", 0x1000, 8, false)
	r.SetWord(0, word)
	mem.MustAddRegion(r)
	s := &State{Mem: mem}
	s.R[1] = 0x1000
	return s
}

// TestProfileMatchesInterp runs the same program profiled and
// unprofiled and requires identical results plus exact cycle
// attribution: the per-PC cycles must sum to the run's cycle total.
func TestProfileMatchesInterp(t *testing.T) {
	prog := assembleProf(t)
	for _, word := range []uint64{0, 7} {
		plain, err := Interp(prog, profState(word), Unchecked, &DEC21064, 1000)
		if err != nil {
			t.Fatal(err)
		}
		prof := NewProfile(len(prog))
		got, err := InterpProfiled(prog, profState(word), Unchecked, &DEC21064, 1000, prof)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain {
			t.Fatalf("word=%d: profiled result %+v, unprofiled %+v", word, got, plain)
		}
		if prof.TotalCycles() != plain.Cycles {
			t.Errorf("word=%d: attributed %d cycles, run reported %d",
				word, prof.TotalCycles(), plain.Cycles)
		}
		if prof.TotalVisits() != int64(plain.Steps) {
			t.Errorf("word=%d: attributed %d visits, run retired %d",
				word, prof.TotalVisits(), plain.Steps)
		}
	}
}

// TestProfilePerPC checks the attribution lands on the right PCs: the
// taken path must touch the taken-side instructions and not the
// fall-through side, and vice versa.
func TestProfilePerPC(t *testing.T) {
	prog := assembleProf(t)
	prof := NewProfile(len(prog))
	if _, err := InterpProfiled(prog, profState(7), Unchecked, &DEC21064, 1000, prof); err != nil {
		t.Fatal(err)
	}
	// Nonzero word: BEQ not taken, so pc 2..3 (LDA/RET) execute and
	// pc 4..5 (CLR/RET) do not.
	for _, pc := range []int{0, 1, 2, 3} {
		if prof.Visits[pc] != 1 {
			t.Errorf("pc %d: visits %d, want 1", pc, prof.Visits[pc])
		}
	}
	for _, pc := range []int{4, 5} {
		if prof.Visits[pc] != 0 {
			t.Errorf("pc %d: visits %d, want 0", pc, prof.Visits[pc])
		}
	}
	if prof.Cycles[0] != int64(DEC21064.Load) {
		t.Errorf("pc 0 (LDQ): %d cycles, want %d", prof.Cycles[0], DEC21064.Load)
	}
}

// TestProfileMergeAndBlocks exercises accumulation across runs and the
// basic-block rollup.
func TestProfileMergeAndBlocks(t *testing.T) {
	prog := assembleProf(t)
	acc := NewProfile(len(prog))
	var wantCycles int64
	for _, word := range []uint64{0, 1, 2, 0} {
		p := NewProfile(len(prog))
		res, err := InterpProfiled(prog, profState(word), Unchecked, &DEC21064, 1000, p)
		if err != nil {
			t.Fatal(err)
		}
		p.Runs = 1
		wantCycles += res.Cycles
		acc.Merge(p)
	}
	if acc.Runs != 4 {
		t.Errorf("merged runs %d, want 4", acc.Runs)
	}
	if acc.TotalCycles() != wantCycles {
		t.Errorf("merged cycles %d, want %d", acc.TotalCycles(), wantCycles)
	}
	blocks := acc.Blocks(prog)
	// Leaders: 0 (entry), 2 (after BEQ), 4 (branch target / after RET).
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(blocks), blocks)
	}
	if blocks[0].Start != 0 || blocks[0].End != 2 {
		t.Errorf("block 0 spans %d..%d, want 0..2", blocks[0].Start, blocks[0].End)
	}
	if blocks[0].Visits != 4 {
		t.Errorf("entry block visited %d times, want 4", blocks[0].Visits)
	}
	if blocks[1].Visits != 2 || blocks[2].Visits != 2 {
		t.Errorf("split blocks visited %d/%d times, want 2/2",
			blocks[1].Visits, blocks[2].Visits)
	}
	var blockSum int64
	for _, b := range blocks {
		blockSum += b.Cycles
	}
	if blockSum != acc.TotalCycles() {
		t.Errorf("block cycles sum to %d, profile total %d", blockSum, acc.TotalCycles())
	}
	listing := acc.AnnotatedListing(prog)
	if !strings.Contains(listing, "basic blocks") || !strings.Contains(listing, "LDQ") {
		t.Errorf("annotated listing missing expected content:\n%s", listing)
	}
}

// TestUnprofiledInterpNoAllocs pins the compile-time selection: the
// plain Interp instantiation must not allocate per run even after the
// profiler was added to the loop.
func TestUnprofiledInterpNoAllocs(t *testing.T) {
	prog := assembleProf(t)
	s := profState(7)
	allocs := testing.AllocsPerRun(200, func() {
		s.PC = 0
		s.R[1] = 0x1000
		if _, err := Interp(prog, s, Unchecked, &DEC21064, 1000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Interp allocates %.1f objects/op, want 0", allocs)
	}
}
