package machine

import (
	"fmt"

	"repro/internal/alpha"
)

// Mode selects whether the boxed safety checks of Figure 3 are
// performed.
type Mode uint8

const (
	// Checked is the abstract machine: every load and store is subject
	// to the rd/wr checks, and a violation blocks execution.
	Checked Mode = iota
	// Unchecked is the "real DEC Alpha": no safety checks are
	// performed. (The simulator still refuses to corrupt its own host:
	// a wild access surfaces as a fault with Wild set, modeling the
	// kernel crash an uncertified extension could cause.)
	Unchecked
)

// State is the machine state (Σ, pc) of the paper: the register file
// and the memory pseudo-register.
type State struct {
	R   [alpha.NumRegs]uint64
	Mem *Memory
	PC  int
}

// Reg reads a register, mapping r31 to zero.
func (s *State) Reg(r alpha.Reg) uint64 {
	if r == alpha.RegZero {
		return 0
	}
	return s.R[r]
}

// SetReg writes a register, discarding writes to r31.
func (s *State) SetReg(r alpha.Reg, v uint64) {
	if r == alpha.RegZero {
		return
	}
	s.R[r] = v
}

// Result summarizes a completed execution.
type Result struct {
	// Ret is the value of r0 at RET (the return value under the
	// paper's calling convention).
	Ret uint64
	// Steps is the number of instructions retired.
	Steps int
	// Cycles is the simulated cycle count under the active cost model.
	Cycles int64
}

// ExecError describes a blocked or faulted execution.
type ExecError struct {
	PC   int
	Ins  alpha.Instr
	Err  error
	Wild bool // true when an Unchecked-mode run performed a wild access
}

// Error implements the error interface.
func (e *ExecError) Error() string {
	kind := "abstract machine blocked"
	if e.Wild {
		kind = "WILD ACCESS (kernel corruption)"
	}
	return fmt.Sprintf("machine: pc %d (%s): %s: %v", e.PC, e.Ins, kind, e.Err)
}

// Unwrap returns the underlying fault.
func (e *ExecError) Unwrap() error { return e.Err }

// ErrFuel is returned when an execution exceeds its step budget (which,
// for the loop-free programs of §3, can only mean a malformed program).
var ErrFuel = fmt.Errorf("machine: step budget exhausted")

// Tracer observes each instruction before it retires. The state may
// be inspected but must not be mutated.
type Tracer func(pc int, ins alpha.Instr, s *State)

// Interp executes prog from the given state until RET, running off the
// end of the program (treated as return, as the VC generator's
// "target one past the end" convention allows), a fault, or fuel
// exhaustion. The cost model cm may be nil, in which case cycles are
// not accounted.
func Interp(prog []alpha.Instr, s *State, mode Mode, cm *CostModel, fuel int) (Result, error) {
	return interp(prog, s, mode, cm, fuel, nil, noProfile{})
}

// InterpTraced is Interp with a per-instruction observer, used by the
// loader's -trace mode and by debugging tools.
func InterpTraced(prog []alpha.Instr, s *State, mode Mode, cm *CostModel, fuel int, trace Tracer) (Result, error) {
	return interp(prog, s, mode, cm, fuel, trace, noProfile{})
}

// InterpProfiled is Interp with per-PC cycle and visit attribution into
// prof (which must have been built for a program at least as long as
// prog; see NewProfile). The profiled interpreter is a separate
// compile-time instantiation of the same loop, so the unprofiled
// Interp path carries no profiler branch, pointer test, or allocation.
func InterpProfiled(prog []alpha.Instr, s *State, mode Mode, cm *CostModel, fuel int, prof *Profile) (Result, error) {
	return interp(prog, s, mode, cm, fuel, nil, prof)
}

// profSink receives per-retired-instruction attribution. It is a type
// parameter of interp, not an interface field, so the selection between
// the no-op sink and a live *Profile happens at compile time: interp
// is instantiated once with noProfile (whose note inlines to nothing —
// the Interp/InterpTraced path) and once with *Profile (the
// InterpProfiled path).
type profSink interface {
	note(pc int, cycles int64)
}

// noProfile is the zero-cost sink the unprofiled instantiation uses.
type noProfile struct{}

func (noProfile) note(int, int64) {}

func interp[P profSink](prog []alpha.Instr, s *State, mode Mode, cm *CostModel, fuel int, trace Tracer, prof P) (Result, error) {
	var res Result
	for {
		if s.PC == len(prog) {
			// Fell off the end: treated as a return.
			res.Ret = s.R[0]
			return res, nil
		}
		if s.PC < 0 || s.PC > len(prog) {
			return res, &ExecError{s.PC, alpha.Instr{}, fmt.Errorf("pc out of range"), false}
		}
		if res.Steps >= fuel {
			return res, ErrFuel
		}
		ins := prog[s.PC]
		if trace != nil {
			trace(s.PC, ins, s)
		}
		res.Steps++
		taken := false

		switch ins.Op {
		case alpha.LDQ:
			addr := s.Reg(ins.Rb) + uint64(int64(ins.Disp))
			v, err := s.Mem.ReadQ(addr)
			if err != nil {
				return res, execFault(s.PC, ins, err, mode)
			}
			s.SetReg(ins.Ra, v)
		case alpha.STQ:
			addr := s.Reg(ins.Rb) + uint64(int64(ins.Disp))
			if err := s.Mem.WriteQ(addr, s.Reg(ins.Ra)); err != nil {
				return res, execFault(s.PC, ins, err, mode)
			}
		case alpha.LDA:
			s.SetReg(ins.Ra, s.Reg(ins.Rb)+uint64(int64(ins.Disp)))
		case alpha.ADDQ, alpha.SUBQ, alpha.MULQ, alpha.AND, alpha.BIS, alpha.XOR,
			alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE:
			a := s.Reg(ins.Ra)
			var b uint64
			if ins.HasLit {
				b = uint64(ins.Lit)
			} else {
				b = s.Reg(ins.Rb)
			}
			s.SetReg(ins.Rc, aluOp(ins.Op, a, b))
		case alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT, alpha.BR:
			v := s.Reg(ins.Ra)
			switch ins.Op {
			case alpha.BEQ:
				taken = v == 0
			case alpha.BNE:
				taken = v != 0
			case alpha.BGE:
				taken = int64(v) >= 0
			case alpha.BLT:
				taken = int64(v) < 0
			case alpha.BR:
				taken = true
			}
		case alpha.RET:
			var c int64
			if cm != nil {
				c = int64(cm.Ret)
			}
			res.Cycles += c
			prof.note(s.PC, c)
			res.Ret = s.R[0]
			return res, nil
		default:
			return res, &ExecError{s.PC, ins, fmt.Errorf("illegal instruction"), false}
		}

		var c int64
		if cm != nil {
			c = int64(cm.cost(ins, taken))
		}
		res.Cycles += c
		prof.note(s.PC, c)
		if taken {
			s.PC = ins.Target
		} else {
			s.PC++
		}
	}
}

func execFault(pc int, ins alpha.Instr, err error, mode Mode) error {
	wild := false
	if mode == Unchecked {
		if mf, ok := err.(*MemFault); ok && mf.Kind != FaultUnaligned {
			wild = true
		}
	}
	return &ExecError{pc, ins, err, wild}
}

func aluOp(op alpha.Op, a, b uint64) uint64 {
	switch op {
	case alpha.ADDQ:
		return a + b
	case alpha.SUBQ:
		return a - b
	case alpha.MULQ:
		return a * b
	case alpha.AND:
		return a & b
	case alpha.BIS:
		return a | b
	case alpha.XOR:
		return a ^ b
	case alpha.SLL:
		return a << (b & 63)
	case alpha.SRL:
		return a >> (b & 63)
	case alpha.CMPEQ:
		if a == b {
			return 1
		}
		return 0
	case alpha.CMPULT:
		if a < b {
			return 1
		}
		return 0
	case alpha.CMPULE:
		if a <= b {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("machine: aluOp on %v", op))
}
