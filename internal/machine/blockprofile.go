// Per-basic-block profiling for the compiled backend. The interpreter
// profiles by noting every retired instruction (machine.Profile); that
// per-op discipline would forfeit the compiled backend's speed, so the
// threaded-code runner instead counts whole blocks: one increment per
// retired block, one per taken conditional edge, and per-op attribution
// only on the rare slow path (fuel-bounded runs, faults). The counters
// expand to exactly the interpreter's per-PC profile at flush time,
// because every block's per-PC costs were fixed at compile time.
package machine

// blockSink receives execution attribution from the compiled runner.
// It is a type parameter of crun/crunSlow so the unprofiled
// instantiation (noSink) compiles to the exact pre-profiling code:
// empty inlined methods, no branches, no writes. The profiled
// instantiation pays one dictionary call per retired block — which is
// why the conditional-block case is a single fused method instead of
// a completion call plus an edge call.
type blockSink interface {
	// fullBlock: the block at index bi retired completely on the fast
	// path — whole body plus terminator, if any (non-cond blocks).
	fullBlock(bi int)
	// condBlock: the blockCond at bi retired completely and picked its
	// edge; taken reports the program-order branch-taken edge (not the
	// fall-through).
	condBlock(bi int, taken bool)
	// note: one op retired on the slow path (body op or terminator),
	// already in per-PC terms.
	note(pc int32, cost int64)
	// partial: the block at bi faulted inside a fused group on the
	// fast path after retiring its first n unfused body ops.
	partial(bi int, n int32)
}

// noSink is the zero-cost instantiation used by Run.
type noSink struct{}

func (noSink) fullBlock(int)       {}
func (noSink) condBlock(int, bool) {}
func (noSink) note(int32, int64)   {}
func (noSink) partial(int, int32)  {}

// BlockProfile accumulates compiled-backend execution counts for one
// Compiled program. It is NOT safe for concurrent use (one runner at a
// time); callers pool them per dispatch slot and merge into shared
// atomic accumulators at batch flush. The representation is two flat
// arenas indexed by block id plus a per-PC overflow profile for
// slow-path and fault attribution.
type BlockProfile struct {
	c       *Compiled
	entries []int64  // fast-path completions per block
	taken   []int64  // taken-edge count per blockCond (subset of entries)
	part    *Profile // exact per-PC attribution from slow paths and faults
}

// NewBlockProfile returns an empty profile sized for c.
func NewBlockProfile(c *Compiled) *BlockProfile {
	return &BlockProfile{
		c:       c,
		entries: make([]int64, len(c.blocks)),
		taken:   make([]int64, len(c.blocks)),
		part:    NewProfile(len(c.prog)),
	}
}

// For reports whether bp was built for exactly this Compiled — pooled
// profiles must be discarded when the installed compiled form is
// swapped (SetBackend retrofits), since block ids are meaningless
// across compiles.
func (bp *BlockProfile) For(c *Compiled) bool { return bp != nil && bp.c == c }

// Reset zeroes all counters, keeping the arenas.
func (bp *BlockProfile) Reset() {
	for i := range bp.entries {
		bp.entries[i] = 0
		bp.taken[i] = 0
	}
	bp.part.Reset()
}

// blockSink implementation: the profiled instantiation of crun.

func (bp *BlockProfile) fullBlock(bi int) { bp.entries[bi]++ }

func (bp *BlockProfile) condBlock(bi int, taken bool) {
	bp.entries[bi]++
	if taken {
		bp.taken[bi]++
	}
}

func (bp *BlockProfile) note(pc int32, cost int64) { bp.part.note(int(pc), cost) }

func (bp *BlockProfile) partial(bi int, n int32) {
	b := &bp.c.blocks[bi]
	for i := 0; i < int(n); i++ {
		bp.part.note(int(b.pcs[i]), b.costs[i])
	}
}

// AddTo expands the block counters to per-PC visit/cycle attribution
// and adds them (plus the slow-path overflow) into p, which must be at
// least as long as the compiled program. The expansion inverts the
// fast path's accounting exactly: each completed block contributes one
// visit per body PC at its static cost, and its terminator's cost by
// edge — so the merged profile is indistinguishable from the
// interpreter's for the same runs. Runs are not tracked here; the
// caller owns run counting.
func (bp *BlockProfile) AddTo(p *Profile) {
	for bi := range bp.c.blocks {
		e := bp.entries[bi]
		if e == 0 {
			continue
		}
		b := &bp.c.blocks[bi]
		for i, pc := range b.pcs {
			p.Visits[pc] += e
			p.Cycles[pc] += e * b.costs[i]
		}
		switch b.kind {
		case blockJump, blockRet:
			p.Visits[b.termPC] += e
			p.Cycles[b.termPC] += e * b.costTaken
		case blockCond:
			t := bp.taken[bi]
			p.Visits[b.termPC] += e
			p.Cycles[b.termPC] += t*b.costTaken + (e-t)*b.costNot
		}
	}
	for pc, v := range bp.part.Visits {
		if v != 0 {
			p.Visits[pc] += v
			p.Cycles[pc] += bp.part.Cycles[pc]
		}
	}
}
