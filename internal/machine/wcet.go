package machine

import (
	"fmt"

	"repro/internal/alpha"
)

// MaxCost computes the worst-case execution cost of a loop-free
// program in cycles under the cost model: the longest path through the
// control-flow DAG. Programs whose backward branches make the CFG
// cyclic have no static bound and return an error.
//
// This realizes the §2.1 remark that policies can cover "control over
// resource usage": the BPF-style forward-branch restriction gives
// termination, and this analysis turns it into a concrete per-packet
// cycle budget a kernel can enforce at install time (see
// internal/kernel).
func (cm *CostModel) MaxCost(prog []alpha.Instr) (int64, error) {
	// worst[pc] is the maximal cost from pc to exit; computed backward
	// (every branch goes forward, so successors are already resolved).
	worst := make([]int64, len(prog)+1)
	for pc := len(prog) - 1; pc >= 0; pc-- {
		ins := prog[pc]
		switch ins.Op.Class() {
		case alpha.ClassBranch:
			if ins.Target <= pc {
				return 0, fmt.Errorf("machine: pc %d: backward branch; no static cost bound", pc)
			}
			taken := int64(cm.BranchTaken) + worst[ins.Target]
			cost := taken
			if ins.Op != alpha.BR {
				if nt := int64(cm.BranchNotTaken) + worst[pc+1]; nt > cost {
					cost = nt
				}
			}
			worst[pc] = cost
		case alpha.ClassRet:
			worst[pc] = int64(cm.Ret)
		default:
			worst[pc] = int64(cm.cost(ins, false)) + worst[pc+1]
		}
	}
	return worst[0], nil
}
