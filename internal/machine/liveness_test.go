package machine

import (
	"testing"

	"repro/internal/alpha"
)

// liveIn assembles src and returns the compiled liveness mask.
func liveIn(t *testing.T, src string) uint32 {
	t.Helper()
	a := alpha.MustAssemble(src)
	c, err := Compile(a.Prog, &DEC21064)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c.LiveInRegs()
}

func TestLiveInRegs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint32
	}{
		{
			// r4 is read (as a load base) before anything writes it.
			name: "read before write",
			src: `
				LDQ r1, 0(r4)
				RET
			`,
			want: 1<<4 | 1<<0, // r4, plus r0 read by RET
		},
		{
			// r1 is written before the read, so only r0 (RET) is live-in.
			name: "write kills read",
			src: `
				ADDQ r31, 7, r1
				ADDQ r1, 1, r2
				RET
			`,
			want: 1 << 0,
		},
		{
			// The read of r1 happens on only one path, but liveness is
			// may-read: it must still be in the mask. r2 feeds the
			// branch itself.
			name: "read on one branch",
			src: `
				BEQ r2, skip
				ADDQ r1, 1, r0
				RET
			skip:
				ADDQ r31, 0, r0
				RET
			`,
			want: 1<<1 | 1<<2,
		},
		{
			// r0 written on every path before RET: RET's read is dead.
			name: "ret covered by writes",
			src: `
				ADDQ r31, 1, r0
				RET
			`,
			want: 0,
		},
		{
			// r31 reads never count (it is architecturally zero).
			name: "rzero exempt",
			src: `
				ADDQ r31, r31, r0
				RET
			`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := liveIn(t, tc.src); got != tc.want {
				t.Errorf("LiveInRegs = %#b, want %#b", got, tc.want)
			}
		})
	}
}

// TestLiveInRegsEmptyProgram: a program that falls off the end
// immediately returns r0, which nothing wrote.
func TestLiveInRegsEmptyProgram(t *testing.T) {
	c, err := Compile(nil, &DEC21064)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.LiveInRegs(); got != 1<<0 {
		t.Errorf("LiveInRegs = %#b, want %#b", got, uint32(1))
	}
}
