package machine

import (
	"math/rand"
	"testing"

	"repro/internal/alpha"
)

// Differential property: for programs whose memory accesses stay
// inside mapped regions, Checked and Unchecked executions are
// indistinguishable — the abstract machine's safety checks change
// nothing but the blocked cases. This is the operational face of the
// paper's "we can safely execute it on a real DEC Alpha and get the
// same behavior as on our abstract machine".

func randConfinedProgram(r *rand.Rand) []alpha.Instr {
	var prog []alpha.Instr
	n := 2 + r.Intn(20)
	for i := 0; i < n; i++ {
		switch r.Intn(7) {
		case 0:
			prog = append(prog, alpha.Instr{
				Op: alpha.LDQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: 1, Disp: int16(8 * r.Intn(16)),
			})
		case 1:
			prog = append(prog, alpha.Instr{
				Op: alpha.STQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rb: 1, Disp: int16(8 * r.Intn(16)),
			})
		case 2:
			prog = append(prog, alpha.Instr{
				Op: alpha.BEQ, Ra: alpha.Reg(r.Intn(alpha.NumRegs)), Target: -1,
			})
		case 3:
			prog = append(prog, alpha.Instr{
				Op: alpha.LDA, Ra: alpha.Reg(r.Intn(4) + 4),
				Rb: alpha.RegZero, Disp: int16(r.Intn(4096) - 2048),
			})
		default:
			ops := []alpha.Op{alpha.ADDQ, alpha.SUBQ, alpha.AND, alpha.BIS,
				alpha.XOR, alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE}
			ins := alpha.Instr{
				Op: ops[r.Intn(len(ops))], Ra: alpha.Reg(r.Intn(alpha.NumRegs)),
				Rc: alpha.Reg(r.Intn(alpha.NumRegs)),
			}
			if r.Intn(2) == 0 {
				ins.HasLit = true
				ins.Lit = uint8(r.Intn(256))
			} else {
				ins.Rb = alpha.Reg(r.Intn(alpha.NumRegs))
			}
			prog = append(prog, ins)
		}
	}
	prog = append(prog, alpha.Instr{Op: alpha.RET})
	for pc := range prog {
		if prog[pc].Op == alpha.BEQ && prog[pc].Target == -1 {
			prog[pc].Target = pc + 1 + r.Intn(len(prog)-pc-1)
		}
	}
	return prog
}

func confinedState(r *rand.Rand) *State {
	mem := NewMemory()
	region := NewRegion("buf", 0x8000, 16*8, true)
	for i := 0; i < 16; i++ {
		region.SetWord(i*8, r.Uint64())
	}
	mem.MustAddRegion(region)
	s := &State{Mem: mem}
	for i := range s.R {
		s.R[i] = r.Uint64()
	}
	s.R[1] = 0x8000 // base register used by the generated loads/stores
	return s
}

func TestCheckedUncheckedAgreeOnConfinedPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		prog := randConfinedProgram(r)
		seed := r.Int63()

		s1 := confinedState(rand.New(rand.NewSource(seed)))
		res1, err1 := Interp(prog, s1, Checked, &DEC21064, 10000)
		s2 := confinedState(rand.New(rand.NewSource(seed)))
		res2, err2 := Interp(prog, s2, Unchecked, &DEC21064, 10000)

		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: modes disagree on success: %v vs %v\n%s",
				trial, err1, err2, alpha.Program(prog))
		}
		if err1 != nil {
			continue
		}
		if res1 != res2 {
			t.Fatalf("trial %d: results differ: %+v vs %+v", trial, res1, res2)
		}
		if s1.R != s2.R {
			t.Fatalf("trial %d: register files differ", trial)
		}
		b1 := s1.Mem.Region("buf").Bytes()
		b2 := s2.Mem.Region("buf").Bytes()
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("trial %d: memory differs at %d", trial, i)
			}
		}
	}
}

func TestInterpreterDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for trial := 0; trial < 500; trial++ {
		prog := randConfinedProgram(r)
		seed := r.Int63()
		s1 := confinedState(rand.New(rand.NewSource(seed)))
		s2 := confinedState(rand.New(rand.NewSource(seed)))
		r1, e1 := Interp(prog, s1, Checked, &DEC21064, 10000)
		r2, e2 := Interp(prog, s2, Checked, &DEC21064, 10000)
		if r1 != r2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("trial %d: nondeterministic execution", trial)
		}
	}
}
