package pktgen

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Generate(1000, Config{Seed: 5})
	b := Generate(1000, Config{Seed: 5})
	for i := range a {
		if string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("packet %d differs across runs", i)
		}
	}
	c := Generate(1000, Config{Seed: 6})
	same := 0
	for i := range a {
		if string(a[i].Data) == string(c[i].Data) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFrameInvariants(t *testing.T) {
	for i, p := range Generate(20000, Config{Seed: 7}) {
		if p.Len() < MinFrame {
			t.Fatalf("packet %d: %d bytes < minimum %d", i, p.Len(), MinFrame)
		}
		if p.Len() > MaxFrame {
			t.Fatalf("packet %d: %d bytes > MTU frame %d", i, p.Len(), MaxFrame)
		}
	}
}

func TestTrafficMix(t *testing.T) {
	const n = 50000
	pkts := Generate(n, Config{Seed: 9})
	var ip, arp, tcp, options int
	for _, p := range pkts {
		et := binary.BigEndian.Uint16(p.Data[12:])
		switch et {
		case EtherTypeIP:
			ip++
			if p.Data[23] == ProtoTCP {
				tcp++
			}
			if p.Data[14]&0x0f > 5 {
				options++
			}
			if p.Data[14]>>4 != 4 {
				t.Fatal("IPv4 packet without version 4")
			}
		case EtherTypeARP:
			arp++
		}
	}
	frac := func(x int) float64 { return float64(x) / n }
	if f := frac(ip); f < 0.75 || f > 0.85 {
		t.Errorf("IP fraction %.2f outside [0.75, 0.85]", f)
	}
	if f := frac(arp); f < 0.05 || f > 0.12 {
		t.Errorf("ARP fraction %.2f outside [0.05, 0.12]", f)
	}
	if f := float64(tcp) / float64(ip); f < 0.6 || f > 0.8 {
		t.Errorf("TCP fraction of IP %.2f outside [0.6, 0.8]", f)
	}
	if options == 0 {
		t.Error("no packets with IP options: Filter 4's variable path untested")
	}
}

func TestNetworksAppear(t *testing.T) {
	pkts := Generate(20000, Config{Seed: 11})
	seenA, seenPair := false, false
	for _, p := range pkts {
		if binary.BigEndian.Uint16(p.Data[12:]) != EtherTypeIP {
			continue
		}
		src := [3]byte{p.Data[26], p.Data[27], p.Data[28]}
		dst := [3]byte{p.Data[30], p.Data[31], p.Data[32]}
		if src == NetCMU {
			seenA = true
		}
		if (src == NetCMU && dst == NetRemote) || (src == NetRemote && dst == NetCMU) {
			seenPair = true
		}
	}
	if !seenA || !seenPair {
		t.Errorf("trace does not exercise Filters 2/3: seenA=%v seenPair=%v", seenA, seenPair)
	}
}

func TestTCPPortsIncludeFilterPort(t *testing.T) {
	pkts := Generate(20000, Config{Seed: 13})
	hits := 0
	for _, p := range pkts {
		if binary.BigEndian.Uint16(p.Data[12:]) != EtherTypeIP || p.Data[23] != ProtoTCP {
			continue
		}
		ihl := int(p.Data[14] & 0x0f)
		off := EthHeaderLen + 4*ihl + 2
		if off+2 <= p.Len() && binary.BigEndian.Uint16(p.Data[off:]) == FilterPort {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no TCP packets to the filter port; Filter 4 accepts nothing")
	}
}

func TestARPLayout(t *testing.T) {
	g := New(Config{Seed: 15})
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if binary.BigEndian.Uint16(p.Data[12:]) != EtherTypeARP {
			continue
		}
		if binary.BigEndian.Uint16(p.Data[16:]) != 0x0800 {
			t.Fatal("ARP ptype not IPv4")
		}
		if p.Data[18] != 6 || p.Data[19] != 4 {
			t.Fatal("ARP hlen/plen wrong")
		}
		return
	}
	t.Fatal("no ARP packet in 1000")
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.IPPerMille == 0 || c.TCPPerMille == 0 || c.ARPPerMille == 0 || c.OptionsPerMille == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	pkts := Generate(500, Config{Seed: 17})
	var buf bytes.Buffer
	if err := WritePcap(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pkts) {
		t.Fatalf("got %d packets, want %d", len(back), len(pkts))
	}
	for i := range pkts {
		if string(back[i].Data) != string(pkts[i].Data) {
			t.Fatalf("packet %d changed", i)
		}
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 24), // zero magic
	}
	for i, data := range cases {
		if _, err := ReadPcap(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	if err := WritePcap(&buf, Generate(1, Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadPcap(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated capture accepted")
	}
}

func TestPcapPadsShortFrames(t *testing.T) {
	// External captures may contain runts; the reader pads them to the
	// kernel's minimum so the packet-filter precondition holds.
	var buf bytes.Buffer
	short := Packet{Data: make([]byte, 20)}
	short.Data[12] = 0x08
	if err := WritePcap(&buf, []Packet{short}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Len() != MinFrame {
		t.Fatalf("len = %d, want %d", back[0].Len(), MinFrame)
	}
	if back[0].Data[12] != 0x08 {
		t.Fatal("payload lost in padding")
	}
}
