// Package pktgen generates the synthetic Ethernet trace that stands in
// for the paper's 200,000-packet capture from a busy Carnegie Mellon
// network (see DESIGN.md, "Substitutions"). The generator is seeded
// and deterministic, so every number in EXPERIMENTS.md reproduces
// exactly. The traffic mix is modeled on mid-90s campus Ethernet:
// mostly IPv4 (dominated by TCP), some ARP, and a residue of other
// ethertypes.
package pktgen

import "encoding/binary"

// Ethernet and IP constants used by the filters.
const (
	EtherTypeIP  = 0x0800
	EtherTypeARP = 0x0806
	ProtoTCP     = 6
	ProtoUDP     = 17

	// EthHeaderLen is the length of an Ethernet header.
	EthHeaderLen = 14
	// MinFrame is the minimum Ethernet frame length the kernel
	// guarantees (the packet-filter precondition's 64).
	MinFrame = 64
	// MaxFrame is the Ethernet MTU frame length.
	MaxFrame = 1518
)

// Packet is one captured frame.
type Packet struct {
	Data []byte
}

// Len returns the frame length in bytes.
func (p Packet) Len() int { return len(p.Data) }

// Config controls the traffic mix (per-mille proportions; the rest is
// "other" ethertypes).
type Config struct {
	Seed uint64
	// IPPerMille is the share of IPv4 frames (default 800).
	IPPerMille int
	// ARPPerMille is the share of ARP frames (default 80).
	ARPPerMille int
	// TCPPerMille is the share of TCP within IPv4 (default 700).
	TCPPerMille int
	// OptionsPerMille is the share of IPv4 packets carrying IP options
	// (IHL > 5), which exercise Filter 4's variable header offset
	// (default 50).
	OptionsPerMille int
}

func (c *Config) defaults() {
	if c.IPPerMille == 0 {
		c.IPPerMille = 800
	}
	if c.ARPPerMille == 0 {
		c.ARPPerMille = 80
	}
	if c.TCPPerMille == 0 {
		c.TCPPerMille = 700
	}
	if c.OptionsPerMille == 0 {
		c.OptionsPerMille = 50
	}
}

// Networks used by the generator; Filters 2 and 3 match on these.
var (
	// NetCMU is the "local" /24 network: 128.2.42.0.
	NetCMU = [3]byte{128, 2, 42}
	// NetRemote is the "remote" /24 network: 192.12.33.0.
	NetRemote = [3]byte{192, 12, 33}
	// NetOther is an unrelated network seen in background traffic.
	NetOther = [3]byte{10, 1, 7}
)

// Ports seen in the trace; Filter 4 matches FilterPort.
const (
	FilterPort = 80 // the TCP destination port Filter 4 accepts
)

var commonPorts = []uint16{80, 23, 25, 119, 513, 6000}

// rng is a small deterministic generator (splitmix64), so traces do
// not depend on Go's math/rand evolution.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generator produces packets one at a time.
type Generator struct {
	cfg Config
	r   rng
}

// New creates a generator with the given configuration.
func New(cfg Config) *Generator {
	cfg.defaults()
	return &Generator{cfg: cfg, r: rng{cfg.Seed ^ 0x5ca1ab1e}}
}

// Generate produces a full trace of n packets.
func Generate(n int, cfg Config) []Packet {
	g := New(cfg)
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Next returns the next packet of the trace.
func (g *Generator) Next() Packet {
	roll := g.r.intn(1000)
	switch {
	case roll < g.cfg.IPPerMille:
		return g.ipPacket()
	case roll < g.cfg.IPPerMille+g.cfg.ARPPerMille:
		return g.arpPacket()
	default:
		return g.otherPacket()
	}
}

func (g *Generator) frame(n int) []byte {
	if n < MinFrame {
		n = MinFrame
	}
	b := make([]byte, n)
	for i := 0; i < 12; i++ {
		b[i] = byte(g.r.next()) // random MACs
	}
	return b
}

func (g *Generator) pickNet() [3]byte {
	switch g.r.intn(3) {
	case 0:
		return NetCMU
	case 1:
		return NetRemote
	default:
		return NetOther
	}
}

func (g *Generator) ipPacket() Packet {
	size := MinFrame + g.r.intn(MaxFrame-MinFrame)
	b := g.frame(size)
	binary.BigEndian.PutUint16(b[12:], EtherTypeIP)

	ihl := 5
	if g.r.intn(1000) < g.cfg.OptionsPerMille {
		ihl = 6 + g.r.intn(10) // 6..15, exercising Filter 4's offset math
	}
	b[14] = 0x40 | byte(ihl) // version 4, IHL
	binary.BigEndian.PutUint16(b[16:], uint16(size-EthHeaderLen))
	b[22] = 64 // TTL
	proto := byte(ProtoUDP)
	isTCP := g.r.intn(1000) < g.cfg.TCPPerMille
	if isTCP {
		proto = ProtoTCP
	} else if g.r.intn(4) == 0 {
		proto = byte(1 + g.r.intn(100)) // other IP protocols
	}
	b[23] = proto

	src := g.pickNet()
	dst := g.pickNet()
	copy(b[26:], src[:])
	b[29] = byte(g.r.next())
	copy(b[30:], dst[:])
	b[33] = byte(g.r.next())

	tcpOff := EthHeaderLen + 4*ihl
	if proto == ProtoTCP && tcpOff+4 <= len(b) {
		binary.BigEndian.PutUint16(b[tcpOff:], uint16(1024+g.r.intn(60000)))
		dstPort := commonPorts[g.r.intn(len(commonPorts))]
		binary.BigEndian.PutUint16(b[tcpOff+2:], dstPort)
	}
	return Packet{Data: b}
}

func (g *Generator) arpPacket() Packet {
	b := g.frame(MinFrame)
	binary.BigEndian.PutUint16(b[12:], EtherTypeARP)
	binary.BigEndian.PutUint16(b[14:], 1)      // htype ethernet
	binary.BigEndian.PutUint16(b[16:], 0x0800) // ptype IPv4
	b[18], b[19] = 6, 4
	binary.BigEndian.PutUint16(b[20:], uint16(1+g.r.intn(2))) // op
	src := g.pickNet()
	dst := g.pickNet()
	copy(b[28:], src[:]) // sender IP
	b[31] = byte(g.r.next())
	copy(b[38:], dst[:]) // target IP
	b[41] = byte(g.r.next())
	return Packet{Data: b}
}

func (g *Generator) otherPacket() Packet {
	b := g.frame(MinFrame + g.r.intn(200))
	ethertypes := []uint16{0x0806 + 1, 0x6003 /* DECnet */, 0x809B /* AppleTalk */, 0x8137 /* IPX */}
	binary.BigEndian.PutUint16(b[12:], ethertypes[g.r.intn(len(ethertypes))])
	for i := EthHeaderLen; i < len(b); i++ {
		b[i] = byte(g.r.next())
	}
	return Packet{Data: b}
}
