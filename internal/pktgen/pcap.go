package pktgen

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Classic libpcap container support, so synthetic traces can be
// inspected with tcpdump/wireshark and external captures can be
// replayed through the filters.

const (
	pcapMagic   = 0xa1b2c3d4
	pcapVMajor  = 2
	pcapVMinor  = 4
	pcapEthLink = 1
	pcapSnapLen = 65535
)

// WritePcap writes packets as a little-endian pcap capture with
// microsecond timestamps spaced at the paper's observed average rate
// of ~1000 packets per second.
func WritePcap(w io.Writer, pkts []Packet) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVMinor)
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapEthLink)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, p := range pkts {
		var rec [16]byte
		usec := uint64(i) * 1000 // ~1000 packets/s
		binary.LittleEndian.PutUint32(rec[0:], uint32(usec/1e6))
		binary.LittleEndian.PutUint32(rec[4:], uint32(usec%1e6))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(p.Data)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(p.Data)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(p.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap parses a little-endian pcap capture produced by WritePcap
// or any Ethernet capture tool; frames shorter than the Ethernet
// minimum are padded (as the kernel's receive path does).
func ReadPcap(r io.Reader) ([]Packet, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pktgen: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("pktgen: not a little-endian pcap file")
	}
	if link := binary.LittleEndian.Uint32(hdr[20:]); link != pcapEthLink {
		return nil, fmt.Errorf("pktgen: link type %d is not Ethernet", link)
	}
	var out []Packet
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("pktgen: pcap record: %w", err)
		}
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("pktgen: absurd packet length %d", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pktgen: pcap packet body: %w", err)
		}
		if len(data) < MinFrame {
			padded := make([]byte, MinFrame)
			copy(padded, data)
			data = padded
		}
		out = append(out, Packet{Data: data})
	}
}
