package lf

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// Property tests over randomly generated predicates and terms.

var fuzzVars = []string{"r0", "r1", "r2", "r3"}

func fuzzExpr(r *rand.Rand, depth int) logic.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return logic.C(r.Uint64() >> uint(r.Intn(56)))
		}
		return logic.V(fuzzVars[r.Intn(len(fuzzVars))])
	}
	if r.Intn(10) == 0 {
		return logic.SelE(logic.V("rm"), fuzzExpr(r, depth-1))
	}
	ops := []logic.BinOp{logic.OpAdd, logic.OpSub, logic.OpMul, logic.OpAnd,
		logic.OpOr, logic.OpXor, logic.OpShl, logic.OpShr,
		logic.OpCmpEq, logic.OpCmpUlt, logic.OpCmpUle, logic.OpCmpSlt}
	return logic.Bin{Op: ops[r.Intn(len(ops))], L: fuzzExpr(r, depth-1), R: fuzzExpr(r, depth-1)}
}

func fuzzPred(r *rand.Rand, depth int) logic.Pred {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return logic.True
		case 1:
			return logic.False
		case 2:
			return logic.RdP(fuzzExpr(r, 2))
		case 3:
			return logic.WrP(fuzzExpr(r, 2))
		default:
			ops := []logic.CmpOp{logic.CmpEq, logic.CmpNe, logic.CmpUlt,
				logic.CmpUle, logic.CmpSlt, logic.CmpSle}
			return logic.Cmp{Op: ops[r.Intn(len(ops))], L: fuzzExpr(r, 2), R: fuzzExpr(r, 2)}
		}
	}
	switch r.Intn(4) {
	case 0:
		return logic.And{L: fuzzPred(r, depth-1), R: fuzzPred(r, depth-1)}
	case 1:
		return logic.Or{L: fuzzPred(r, depth-1), R: fuzzPred(r, depth-1)}
	case 2:
		return logic.Imp{L: fuzzPred(r, depth-1), R: fuzzPred(r, depth-1)}
	default:
		return logic.Forall{Var: "x", Body: fuzzPred(r, depth-1)}
	}
}

// TestFuzzEncodedPredsTypecheck: every encodable predicate's LF image
// must have type `pred` under the published signature — the encoder
// never produces ill-typed syntax.
func TestFuzzEncodedPredsTypecheck(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 1000; trial++ {
		p := fuzzPred(r, 4)
		term, err := EncodeStatePred(p)
		if err != nil {
			t.Fatalf("encode %s: %v", p, err)
		}
		ty, err := c.Infer(term)
		if err != nil {
			t.Fatalf("encoded %s does not typecheck: %v", p, err)
		}
		if !Equal(Normalize(ty), Konst{CPred}) {
			t.Fatalf("encoded %s has type %s", p, ty)
		}
	}
}

// TestFuzzEncodeDecodeStatePred: decode ∘ encode is the identity up to
// α-renaming.
func TestFuzzEncodeDecodeStatePred(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	for trial := 0; trial < 1000; trial++ {
		p := fuzzPred(r, 4)
		term, err := EncodeStatePred(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodePred(term)
		if err != nil {
			t.Fatalf("decode of %s failed: %v", p, err)
		}
		if !logic.AlphaEqual(p, back) {
			t.Fatalf("round trip changed predicate:\n  in:  %s\n  out: %s", p, back)
		}
	}
}

// TestNormalizeIdempotent over encoded predicates (which contain no
// redexes) and over β-redex-bearing terms built around them.
func TestNormalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	for trial := 0; trial < 500; trial++ {
		p := fuzzPred(r, 3)
		term, err := EncodeStatePred(p)
		if err != nil {
			t.Fatal(err)
		}
		// Wrap in a redex: (λx:exp. forall (λy:exp. <term>)) (cst 1).
		redex := App{
			Lam{Konst{CExp}, App{Konst{CForall}, Lam{Konst{CExp}, shiftFree(term, 2)}}},
			App{Konst{CCst}, Lit{1}},
		}
		n1 := Normalize(redex)
		n2 := Normalize(n1)
		if !Equal(n1, n2) {
			t.Fatalf("Normalize not idempotent on %s", redex)
		}
	}
}

// shiftFree shifts the free de Bruijn indexes of t (encoded state
// predicates have none, so this is the identity; kept for clarity).
func shiftFree(t Term, d int) Term { return shift(t, d, 0) }

// TestCheckerStepsBounded: LF checking of encoded predicates is linear
// enough that the step counter stays proportional to the term size
// (the paper: "typechecking is decidable and described by a few simple
// rules").
func TestCheckerStepsBounded(t *testing.T) {
	sig := NewSignature()
	r := rand.New(rand.NewSource(58))
	for trial := 0; trial < 200; trial++ {
		p := fuzzPred(r, 4)
		term, err := EncodeStatePred(p)
		if err != nil {
			t.Fatal(err)
		}
		c := NewChecker(sig)
		if _, err := c.Infer(term); err != nil {
			t.Fatal(err)
		}
		if c.Steps > 4*Size(term)+16 {
			t.Fatalf("checker took %d steps for a %d-node term", c.Steps, Size(term))
		}
	}
}

// TestWrongSignatureRejectsProofs: a consumer publishing a signature
// without some axiom must reject proofs that use it.
func TestWrongSignatureRejectsProofs(t *testing.T) {
	full := NewSignature()
	// Build a stripped signature lacking the arithmetic axioms.
	stripped := &Signature{types: map[string]Term{}}
	for _, name := range full.Names() {
		if name == "lt_le_trans" || name == "band_ub" {
			continue
		}
		ty, _ := full.Lookup(name)
		stripped.declare(name, ty)
	}
	term := Apply(Konst{"band_ub"},
		App{Konst{CCst}, Lit{1}}, App{Konst{CCst}, Lit{7}})
	if _, err := NewChecker(full).Infer(term); err != nil {
		t.Fatalf("full signature rejected axiom use: %v", err)
	}
	if _, err := NewChecker(stripped).Infer(term); err == nil {
		t.Fatal("stripped signature accepted a missing axiom")
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 1500; trial++ {
		p := fuzzPred(r, 4)
		term, err := EncodeStatePred(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseTerm(term.String())
		if err != nil {
			t.Fatalf("parse of %s failed: %v", term, err)
		}
		if !Equal(back, term) {
			t.Fatalf("round trip changed term:\n in:  %s\n out: %s", term, back)
		}
	}
}

func TestParseTermStructures(t *testing.T) {
	cases := []Term{
		SType,
		SKind,
		Konst{"exp"},
		Bound{3},
		Lit{18446744073709551615},
		Pi{Konst{"pred"}, SType},
		Lam{Konst{"exp"}, Bound{0}},
		App{Lam{Konst{"exp"}, Bound{0}}, App{Konst{"cst"}, Lit{7}}},
		Pi{Pi{Konst{"exp"}, Konst{"pred"}},
			Pi{Pi{Konst{"exp"}, App{Konst{"pf"}, App{Bound{1}, Bound{0}}}},
				App{Konst{"pf"}, App{Konst{"forall"}, Bound{1}}}}},
	}
	for _, tm := range cases {
		back, err := ParseTerm(tm.String())
		if err != nil {
			t.Fatalf("%s: %v", tm, err)
		}
		if !Equal(back, tm) {
			t.Fatalf("round trip changed %s to %s", tm, back)
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, src := range []string{
		"", "(", "()", "(f", "#x", "([exp] )", "({pred} )", "f)", "(f g) extra",
	} {
		if _, err := ParseTerm(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
}

func TestParseProofTermRoundTrip(t *testing.T) {
	// A real proof term survives the textual round trip and still
	// validates.
	sig := NewSignature()
	tm := Apply(Konst{CAndI}, Konst{CTT}, Konst{CTT}, Konst{CTrueI}, Konst{CTrueI})
	back, err := ParseTerm(tm.String())
	if err != nil {
		t.Fatal(err)
	}
	want := App{Konst{CPf}, Apply(Konst{CAnd}, Konst{CTT}, Konst{CTT})}
	if err := NewChecker(sig).Check(back, want); err != nil {
		t.Fatal(err)
	}
}
