package lf

import "testing"

// FuzzLFParse is the native fuzz target for the textual LF term parser
// — the concrete syntax pccdump emits and the published signature is
// rendered in. The parser must never panic on arbitrary input (it is
// depth-bounded, not recursion-trusting), and anything it accepts must
// survive a print/re-parse round trip unchanged, i.e. the printer and
// the parser agree on one grammar. Seed corpus: testdata/fuzz/FuzzLFParse.
func FuzzLFParse(f *testing.F) {
	for _, seed := range []string{
		"tt",
		"(andi tt tt truei truei)",
		"({exp} (pf (forall ([exp] #0))))",
		"([exp] (and #0 #0))",
		"18446744073709551615",
		"type",
		"kind",
		"#2",
		"(",
		"([exp] )",
		"(f g) extra",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tm, err := ParseTerm(src)
		if err != nil {
			return
		}
		back, err := ParseTerm(tm.String())
		if err != nil {
			t.Fatalf("printed form of accepted term does not re-parse: %v\n  src: %q\n  printed: %s", err, src, tm)
		}
		if !Equal(back, tm) {
			t.Fatalf("print/parse round trip changed the term:\n  in:  %s\n  out: %s", tm, back)
		}
	})
}
