package lf

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/prover"
)

// varResolver maps a free logic variable name to an LF term, given the
// current binder depth.
type varResolver func(name string, depth int) (Term, error)

// encodeExprWith encodes a logic expression at the given binder depth.
func encodeExprWith(e logic.Expr, resolve varResolver, depth int) (Term, error) {
	switch e := e.(type) {
	case logic.Const:
		return App{Konst{CCst}, Lit{e.Val}}, nil
	case logic.Var:
		return resolve(e.Name, depth)
	case logic.Bin:
		l, err := encodeExprWith(e.L, resolve, depth)
		if err != nil {
			return nil, err
		}
		r, err := encodeExprWith(e.R, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{BinOpConst(e.Op)}, l, r), nil
	case logic.Sel:
		m, err := encodeExprWith(e.Mem, resolve, depth)
		if err != nil {
			return nil, err
		}
		a, err := encodeExprWith(e.Addr, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CSel}, m, a), nil
	case logic.Upd:
		m, err := encodeExprWith(e.Mem, resolve, depth)
		if err != nil {
			return nil, err
		}
		a, err := encodeExprWith(e.Addr, resolve, depth)
		if err != nil {
			return nil, err
		}
		v, err := encodeExprWith(e.Val, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CUpd}, m, a, v), nil
	}
	return nil, fmt.Errorf("lf: cannot encode expression %T", e)
}

// encodePredWith encodes a logic predicate at the given binder depth.
func encodePredWith(p logic.Pred, resolve varResolver, depth int) Term {
	t, err := encodePredWithErr(p, resolve, depth)
	if err != nil {
		panic(err) // signature building uses known-closed predicates
	}
	return t
}

func encodePredWithErr(p logic.Pred, resolve varResolver, depth int) (Term, error) {
	switch p := p.(type) {
	case logic.TruePred:
		return Konst{CTT}, nil
	case logic.FalsePred:
		return Konst{CFF}, nil
	case logic.Cmp:
		l, err := encodeExprWith(p.L, resolve, depth)
		if err != nil {
			return nil, err
		}
		r, err := encodeExprWith(p.R, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CmpOpConst(p.Op)}, l, r), nil
	case logic.Rd:
		a, err := encodeExprWith(p.Addr, resolve, depth)
		if err != nil {
			return nil, err
		}
		return App{Konst{CRd}, a}, nil
	case logic.Wr:
		a, err := encodeExprWith(p.Addr, resolve, depth)
		if err != nil {
			return nil, err
		}
		return App{Konst{CWr}, a}, nil
	case logic.And:
		return encodeBinPred(CAnd, p.L, p.R, resolve, depth)
	case logic.Or:
		return encodeBinPred(COr, p.L, p.R, resolve, depth)
	case logic.Imp:
		return encodeBinPred(CImp, p.L, p.R, resolve, depth)
	case logic.Forall:
		inner := bindVar(resolve, p.Var, depth)
		body, err := encodePredWithErr(p.Body, inner, depth+1)
		if err != nil {
			return nil, err
		}
		return App{Konst{CForall}, Lam{Konst{CExp}, body}}, nil
	}
	return nil, fmt.Errorf("lf: cannot encode predicate %T", p)
}

func encodeBinPred(c string, l, r logic.Pred, resolve varResolver, depth int) (Term, error) {
	lt, err := encodePredWithErr(l, resolve, depth)
	if err != nil {
		return nil, err
	}
	rt, err := encodePredWithErr(r, resolve, depth)
	if err != nil {
		return nil, err
	}
	return Apply(Konst{c}, lt, rt), nil
}

// bindVar extends a resolver with a variable bound at binder level
// `level` (the depth at which the binder was introduced).
func bindVar(resolve varResolver, name string, level int) varResolver {
	return func(n string, depth int) (Term, error) {
		if n == name {
			return Bound{depth - level - 1}, nil
		}
		return resolve(n, depth)
	}
}

func closedResolver(name string, depth int) (Term, error) {
	return nil, fmt.Errorf("lf: free variable %q in closed encoding", name)
}

// EncodePred encodes a closed predicate (e.g. a safety predicate).
func EncodePred(p logic.Pred) (Term, error) {
	return encodePredWithErr(p, closedResolver, 0)
}

var stateVarSet = func() map[string]bool {
	m := map[string]bool{}
	for _, v := range StateVars {
		m[v] = true
	}
	return m
}()

// stateResolver maps machine-state variables to their signature
// constants; any other free variable is an error.
func stateResolver(name string, depth int) (Term, error) {
	if stateVarSet[name] {
		return Konst{"reg_" + name}, nil
	}
	return nil, fmt.Errorf("lf: free variable %q in state predicate", name)
}

// EncodeStatePred encodes a predicate over the machine state (free in
// r0..r10 and rm), as loop invariants are.
func EncodeStatePred(p logic.Pred) (Term, error) {
	return encodePredWithErr(p, stateResolver, 0)
}

// encoder carries the state of proof encoding: the hypothesis context
// for predicate inference, the axiom set, and the variable resolver
// for LF binders.
type encoder struct {
	hyps  map[string]logic.Pred
	extra map[string]*prover.Schema
}

// EncodeProof encodes a closed natural-deduction proof into an LF
// object whose type is pf(goal) for the predicate the proof proves.
func EncodeProof(p prover.Proof) (Term, error) { return EncodeProofWith(p, nil) }

// EncodeProofWith is EncodeProof for proofs that use policy-published
// axiom schemas.
func EncodeProofWith(p prover.Proof, extra map[string]*prover.Schema) (Term, error) {
	enc := &encoder{hyps: map[string]logic.Pred{}, extra: extra}
	return enc.proof(p, closedResolver, 0)
}

func (enc *encoder) pred(p logic.Pred, resolve varResolver, depth int) (Term, error) {
	return encodePredWithErr(p, resolve, depth)
}

// typeOf infers the predicate proved by a sub-proof under the current
// hypothesis context.
func (enc *encoder) typeOf(p prover.Proof) (logic.Pred, error) {
	return prover.InferWithAxioms(p, enc.hyps, enc.extra)
}

func (enc *encoder) proof(p prover.Proof, resolve varResolver, depth int) (Term, error) {
	switch p := p.(type) {
	case prover.Hyp:
		return resolve("hyp$"+p.Name, depth)

	case prover.TrueI:
		return Konst{CTrueI}, nil

	case prover.AndI:
		a, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		b, err := enc.typeOf(p.Q)
		if err != nil {
			return nil, err
		}
		return enc.rule2(CAndI, a, b, p.P, p.Q, resolve, depth)

	case prover.AndEL:
		q, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		and, ok := q.(logic.And)
		if !ok {
			return nil, fmt.Errorf("lf: and_el over non-conjunction")
		}
		return enc.rule1(CAndEL, and.L, and.R, p.P, resolve, depth)

	case prover.AndER:
		q, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		and, ok := q.(logic.And)
		if !ok {
			return nil, fmt.Errorf("lf: and_er over non-conjunction")
		}
		return enc.rule1(CAndER, and.L, and.R, p.P, resolve, depth)

	case prover.ImpI:
		aT, err := enc.pred(p.Ante, resolve, depth)
		if err != nil {
			return nil, err
		}
		enc.hyps[p.Name] = p.Ante
		inner := bindVar(resolve, "hyp$"+p.Name, depth)
		body, err := enc.proof(p.Body, inner, depth+1)
		delete(enc.hyps, p.Name)
		if err != nil {
			return nil, err
		}
		bPred, err := func() (logic.Pred, error) {
			enc.hyps[p.Name] = p.Ante
			defer delete(enc.hyps, p.Name)
			return enc.typeOf(p.Body)
		}()
		if err != nil {
			return nil, err
		}
		bT, err := enc.pred(bPred, resolve, depth)
		if err != nil {
			return nil, err
		}
		hypTy := App{Konst{CPf}, aT}
		return Apply(Konst{CImpI}, aT, bT, Lam{hypTy, body}), nil

	case prover.ImpE:
		q, err := enc.typeOf(p.PQ)
		if err != nil {
			return nil, err
		}
		imp, ok := q.(logic.Imp)
		if !ok {
			return nil, fmt.Errorf("lf: imp_e over non-implication")
		}
		return enc.rule2(CImpE, imp.L, imp.R, p.PQ, p.P, resolve, depth)

	case prover.AllI:
		bodyPred, err := enc.typeOf(p.Body)
		if err != nil {
			return nil, err
		}
		fBody, err := enc.pred(bodyPred, bindVar(resolve, p.Var, depth), depth+1)
		if err != nil {
			return nil, err
		}
		f := Lam{Konst{CExp}, fBody}
		body, err := enc.proof(p.Body, bindVar(resolve, p.Var, depth), depth+1)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CAllI}, f, Lam{Konst{CExp}, body}), nil

	case prover.AllE:
		q, err := enc.typeOf(p.All)
		if err != nil {
			return nil, err
		}
		fa, ok := q.(logic.Forall)
		if !ok {
			return nil, fmt.Errorf("lf: all_e over non-universal")
		}
		fBody, err := enc.pred(fa.Body, bindVar(resolve, fa.Var, depth), depth+1)
		if err != nil {
			return nil, err
		}
		f := Lam{Konst{CExp}, fBody}
		e, err := encodeExprWith(p.Inst, resolve, depth)
		if err != nil {
			return nil, err
		}
		all, err := enc.proof(p.All, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CAllE}, f, e, all), nil

	case prover.OrIL:
		lPred, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		lT, err := enc.pred(lPred, resolve, depth)
		if err != nil {
			return nil, err
		}
		rT, err := enc.pred(p.Right, resolve, depth)
		if err != nil {
			return nil, err
		}
		inner, err := enc.proof(p.P, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{COrIL}, lT, rT, inner), nil

	case prover.OrIR:
		rPred, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		lT, err := enc.pred(p.Left, resolve, depth)
		if err != nil {
			return nil, err
		}
		rT, err := enc.pred(rPred, resolve, depth)
		if err != nil {
			return nil, err
		}
		inner, err := enc.proof(p.P, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{COrIR}, lT, rT, inner), nil

	case prover.OrE:
		dPred, err := enc.typeOf(p.Disj)
		if err != nil {
			return nil, err
		}
		or, ok := dPred.(logic.Or)
		if !ok {
			return nil, fmt.Errorf("lf: or_e over non-disjunction")
		}
		branchPred := func(h logic.Pred, body prover.Proof) (logic.Pred, error) {
			enc.hyps[p.Name] = h
			defer delete(enc.hyps, p.Name)
			return prover.InferWithAxioms(body, enc.hyps, enc.extra)
		}
		rPred, err := branchPred(or.L, p.Left)
		if err != nil {
			return nil, err
		}
		lT, err := enc.pred(or.L, resolve, depth)
		if err != nil {
			return nil, err
		}
		rT, err := enc.pred(or.R, resolve, depth)
		if err != nil {
			return nil, err
		}
		goalT, err := enc.pred(rPred, resolve, depth)
		if err != nil {
			return nil, err
		}
		dT, err := enc.proof(p.Disj, resolve, depth)
		if err != nil {
			return nil, err
		}
		branchTerm := func(h logic.Pred, hT Term, body prover.Proof) (Term, error) {
			enc.hyps[p.Name] = h
			defer delete(enc.hyps, p.Name)
			inner := bindVar(resolve, "hyp$"+p.Name, depth)
			b, err := enc.proof(body, inner, depth+1)
			if err != nil {
				return nil, err
			}
			return Lam{App{Konst{CPf}, hT}, b}, nil
		}
		lBranch, err := branchTerm(or.L, lT, p.Left)
		if err != nil {
			return nil, err
		}
		rBranch, err := branchTerm(or.R, rT, p.Right)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{COrE}, lT, rT, goalT, dT, lBranch, rBranch), nil

	case prover.FalseE:
		gT, err := enc.pred(p.Goal, resolve, depth)
		if err != nil {
			return nil, err
		}
		inner, err := enc.proof(p.P, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CFalseE}, gT, inner), nil

	case prover.Ground:
		g, err := enc.pred(p.Goal, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CGArith}, g, App{Konst{CGr}, g}), nil

	case prover.Conv:
		fromPred, err := enc.typeOf(p.P)
		if err != nil {
			return nil, err
		}
		from, err := enc.pred(fromPred, resolve, depth)
		if err != nil {
			return nil, err
		}
		to, err := enc.pred(p.To, resolve, depth)
		if err != nil {
			return nil, err
		}
		inner, err := enc.proof(p.P, resolve, depth)
		if err != nil {
			return nil, err
		}
		return Apply(Konst{CConvP}, from, to,
			Apply(Konst{CNrm}, from, to), inner), nil

	case prover.Axiom:
		sc, ok := prover.LookupAxiom(p.Name, enc.extra)
		if !ok {
			return nil, fmt.Errorf("lf: unknown axiom %q", p.Name)
		}
		if len(p.Args) != len(sc.Params) || len(p.Prems) != len(sc.Prems) {
			return nil, fmt.Errorf("lf: axiom %q arity mismatch", p.Name)
		}
		out := Term(Konst{p.Name})
		for _, a := range p.Args {
			e, err := encodeExprWith(a, resolve, depth)
			if err != nil {
				return nil, err
			}
			out = App{out, e}
		}
		for _, prem := range p.Prems {
			q, err := enc.proof(prem, resolve, depth)
			if err != nil {
				return nil, err
			}
			out = App{out, q}
		}
		return out, nil
	}
	return nil, fmt.Errorf("lf: cannot encode proof node %T", p)
}

// rule1 emits c A B q for a rule with two predicate parameters and one
// proof argument.
func (enc *encoder) rule1(c string, a, b logic.Pred, q prover.Proof,
	resolve varResolver, depth int) (Term, error) {
	aT, err := enc.pred(a, resolve, depth)
	if err != nil {
		return nil, err
	}
	bT, err := enc.pred(b, resolve, depth)
	if err != nil {
		return nil, err
	}
	qT, err := enc.proof(q, resolve, depth)
	if err != nil {
		return nil, err
	}
	return Apply(Konst{c}, aT, bT, qT), nil
}

// rule2 emits c A B q1 q2 for a rule with two predicate parameters and
// two proof arguments.
func (enc *encoder) rule2(c string, a, b logic.Pred, q1, q2 prover.Proof,
	resolve varResolver, depth int) (Term, error) {
	aT, err := enc.pred(a, resolve, depth)
	if err != nil {
		return nil, err
	}
	bT, err := enc.pred(b, resolve, depth)
	if err != nil {
		return nil, err
	}
	q1T, err := enc.proof(q1, resolve, depth)
	if err != nil {
		return nil, err
	}
	q2T, err := enc.proof(q2, resolve, depth)
	if err != nil {
		return nil, err
	}
	return Apply(Konst{c}, aT, bT, q1T, q2T), nil
}
