package lf

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTerm reads the concrete syntax produced by Term.String, so LF
// objects — proofs included — can be exchanged in text as well as in
// the binary encoding:
//
//	term ::= name | #N | NUMBER
//	       | '(' term term+ ')'          application spine
//	       | '(' '[' term ']' term ')'   abstraction [A] M
//	       | '(' '{' term '}' term ')'   product {A} B
//	       | 'type' | 'kind'
//
// ParseTerm(t.String()) reproduces t exactly (a property the tests
// enforce).
func ParseTerm(src string) (Term, error) {
	p := &termParser{src: src}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return t, nil
}

type termParser struct {
	src   string
	pos   int
	depth int
}

// maxParseDepth bounds parser recursion: textual LF input is as
// untrusted as the binary encoding, and a long run of '(' would
// otherwise exhaust the stack. Matches the binary decoder's default
// term-depth budget.
const maxParseDepth = 4096

func (p *termParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("lf: parse at %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *termParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *termParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *termParser) term() (Term, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf("term deeper than %d levels", maxParseDepth)
	}
	p.ws()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.ws()
		switch p.peek() {
		case '[':
			p.pos++
			a, err := p.term()
			if err != nil {
				return nil, err
			}
			if !p.expect(']') {
				return nil, p.errf("expected ']'")
			}
			m, err := p.term()
			if err != nil {
				return nil, err
			}
			if !p.expect(')') {
				return nil, p.errf("expected ')'")
			}
			return Lam{a, m}, nil
		case '{':
			p.pos++
			a, err := p.term()
			if err != nil {
				return nil, err
			}
			if !p.expect('}') {
				return nil, p.errf("expected '}'")
			}
			b, err := p.term()
			if err != nil {
				return nil, err
			}
			if !p.expect(')') {
				return nil, p.errf("expected ')'")
			}
			return Pi{a, b}, nil
		default:
			head, err := p.term()
			if err != nil {
				return nil, err
			}
			args := 0
			for {
				p.ws()
				if p.peek() == ')' {
					p.pos++
					if args == 0 {
						return nil, p.errf("empty application")
					}
					return head, nil
				}
				if p.peek() == 0 {
					return nil, p.errf("unclosed '('")
				}
				arg, err := p.term()
				if err != nil {
					return nil, err
				}
				head = App{head, arg}
				args++
			}
		}
	case c == '#':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil {
			return nil, p.errf("bad de Bruijn index")
		}
		return Bound{n}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseUint(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, p.errf("bad literal")
		}
		return Lit{v}, nil
	default:
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, p.errf("expected term, found %q", string(c))
		}
		name := p.src[start:p.pos]
		switch name {
		case "type":
			return SType, nil
		case "kind":
			return SKind, nil
		}
		return Konst{name}, nil
	}
}

func (p *termParser) expect(c byte) bool {
	p.ws()
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || strings.IndexByte("'$^!", c) >= 0
}
