// Package lf implements the Edinburgh Logical Framework core used to
// represent and validate safety proofs, following §2.3 of Necula & Lee:
// predicates and proofs are encoded as LF objects over a published
// signature, and "proof validation amounts to typechecking".
//
// The implementation is a standard dependently-typed λ-calculus with
// Π-types, de Bruijn representation, β-normalization, and a
// bidirectional-style checker, extended — as documented in DESIGN.md —
// with two small primitives that stand in for the paper's "predicate
// calculus extended with two's-complement integer arithmetic":
//
//   - 64-bit literals of the primitive type `word`;
//   - the decidable judgments `ground p` (p is closed and evaluates to
//     true) and `norm_eq p q` (p and q have the same normal form under
//     the trusted normalizer), inhabited by the primitive constants
//     `gr` and `nrm` whose applications are verified by evaluation
//     during typechecking.
package lf

import (
	"fmt"
	"strings"
)

// Term is an LF term. A single syntactic category covers objects,
// families, and kinds; the checker keeps the levels straight.
type Term interface {
	isTerm()
	String() string
}

// Sort is a classifier: the kind `type` or the superkind classifying
// kinds.
type Sort uint8

// The two sorts.
const (
	SType Sort = iota // the kind "type"
	SKind             // classifies kinds; never written by encoders
)

// Konst references a signature constant by name.
type Konst struct{ Name string }

// Bound is a de Bruijn variable (0 = innermost binder).
type Bound struct{ Idx int }

// Pi is the dependent product Πx:A. B (B lives under the binder).
type Pi struct{ A, B Term }

// Lam is the annotated abstraction λx:A. M.
type Lam struct{ A, M Term }

// App is application.
type App struct{ F, X Term }

// Lit is a 64-bit literal of the primitive type `word`.
type Lit struct{ V uint64 }

func (Sort) isTerm()  {}
func (Konst) isTerm() {}
func (Bound) isTerm() {}
func (Pi) isTerm()    {}
func (Lam) isTerm()   {}
func (App) isTerm()   {}
func (Lit) isTerm()   {}

func (s Sort) String() string {
	if s == SType {
		return "type"
	}
	return "kind"
}
func (k Konst) String() string { return k.Name }
func (b Bound) String() string { return fmt.Sprintf("#%d", b.Idx) }
func (p Pi) String() string    { return fmt.Sprintf("({%s} %s)", p.A, p.B) }
func (l Lam) String() string   { return fmt.Sprintf("([%s] %s)", l.A, l.M) }
func (l Lit) String() string   { return fmt.Sprintf("%d", l.V) }

func (a App) String() string {
	head, args := Spine(a)
	parts := make([]string, 0, len(args)+1)
	parts = append(parts, head.String())
	for _, x := range args {
		parts = append(parts, x.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Spine decomposes nested applications into a head and argument list.
func Spine(t Term) (head Term, args []Term) {
	for {
		a, ok := t.(App)
		if !ok {
			return t, args
		}
		args = append([]Term{a.X}, args...)
		t = a.F
	}
}

// Apply folds a head and arguments back into nested applications.
func Apply(head Term, args ...Term) Term {
	t := head
	for _, a := range args {
		t = App{t, a}
	}
	return t
}

// shift adds d to every de Bruijn index ≥ cutoff in t.
func shift(t Term, d, cutoff int) Term {
	switch t := t.(type) {
	case Sort, Konst, Lit:
		return t
	case Bound:
		if t.Idx >= cutoff {
			return Bound{t.Idx + d}
		}
		return t
	case Pi:
		return Pi{shift(t.A, d, cutoff), shift(t.B, d, cutoff+1)}
	case Lam:
		return Lam{shift(t.A, d, cutoff), shift(t.M, d, cutoff+1)}
	case App:
		return App{shift(t.F, d, cutoff), shift(t.X, d, cutoff)}
	}
	panic(fmt.Sprintf("lf: unknown term %T", t))
}

// substIdx replaces Bound{j} in t with s (itself shifted appropriately)
// and renumbers the indexes above j.
func substIdx(t Term, j int, s Term) Term {
	switch t := t.(type) {
	case Sort, Konst, Lit:
		return t
	case Bound:
		switch {
		case t.Idx == j:
			return shift(s, j, 0)
		case t.Idx > j:
			return Bound{t.Idx - 1}
		default:
			return t
		}
	case Pi:
		return Pi{substIdx(t.A, j, s), substIdx(t.B, j+1, s)}
	case Lam:
		return Lam{substIdx(t.A, j, s), substIdx(t.M, j+1, s)}
	case App:
		return App{substIdx(t.F, j, s), substIdx(t.X, j, s)}
	}
	panic(fmt.Sprintf("lf: unknown term %T", t))
}

// Instantiate β-reduces a binder body with the given argument.
func Instantiate(body Term, arg Term) Term { return substIdx(body, 0, arg) }

// Normalize fully β-normalizes t (normal order). LF terms arising from
// PCC proofs are small, so naive normalization is adequate and easy to
// trust — the paper's criterion for the validator.
func Normalize(t Term) Term {
	switch t := t.(type) {
	case Sort, Konst, Bound, Lit:
		return t
	case Pi:
		return Pi{Normalize(t.A), Normalize(t.B)}
	case Lam:
		return Lam{Normalize(t.A), Normalize(t.M)}
	case App:
		f := Normalize(t.F)
		x := Normalize(t.X)
		if lam, ok := f.(Lam); ok {
			return Normalize(Instantiate(lam.M, x))
		}
		return App{f, x}
	}
	panic(fmt.Sprintf("lf: unknown term %T", t))
}

// Equal reports syntactic equality (α-equality is free under de
// Bruijn). Callers normalize first for β-equality.
func Equal(a, b Term) bool {
	switch a := a.(type) {
	case Sort:
		b, ok := b.(Sort)
		return ok && a == b
	case Konst:
		b, ok := b.(Konst)
		return ok && a.Name == b.Name
	case Bound:
		b, ok := b.(Bound)
		return ok && a.Idx == b.Idx
	case Lit:
		b, ok := b.(Lit)
		return ok && a.V == b.V
	case Pi:
		b, ok := b.(Pi)
		return ok && Equal(a.A, b.A) && Equal(a.B, b.B)
	case Lam:
		b, ok := b.(Lam)
		return ok && Equal(a.A, b.A) && Equal(a.M, b.M)
	case App:
		b, ok := b.(App)
		return ok && Equal(a.F, b.F) && Equal(a.X, b.X)
	}
	panic(fmt.Sprintf("lf: unknown term %T", a))
}

// Size returns the number of nodes in t. The walk follows the term's
// tree shape: on a hash-consed DAG the count is the expanded tree
// size, which can be exponential in the number of distinct nodes —
// never call Size on an untrusted term; use SizeBounded.
func Size(t Term) int {
	switch t := t.(type) {
	case Sort, Konst, Bound, Lit:
		return 1
	case Pi:
		return 1 + Size(t.A) + Size(t.B)
	case Lam:
		return 1 + Size(t.A) + Size(t.M)
	case App:
		return 1 + Size(t.F) + Size(t.X)
	}
	panic(fmt.Sprintf("lf: unknown term %T", t))
}

// SizeBounded returns the number of nodes in t, counting at most max
// (max <= 0 means unbounded, i.e. plain Size). Decoded proof terms are
// hash-consed DAGs from untrusted producers, and DAGs expand to trees
// under traversal: a few dozen wire nodes can encode a tree of 2^60
// nodes, so an unbounded walk is an exponential-time bomb. Consumers
// recording size as a statistic cap the walk and accept the floor
// value.
func SizeBounded(t Term, max int) int {
	n := 0
	var walk func(Term)
	walk = func(t Term) {
		if max > 0 && n >= max {
			return
		}
		n++
		switch t := t.(type) {
		case Pi:
			walk(t.A)
			walk(t.B)
		case Lam:
			walk(t.A)
			walk(t.M)
		case App:
			walk(t.F)
			walk(t.X)
		}
	}
	walk(t)
	return n
}
