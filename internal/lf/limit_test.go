package lf

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// deepAppSpine builds an n-deep left-leaning application spine
// iteratively (the hostile producer's trick: recursion-free to build,
// recursion-heavy to traverse).
func deepAppSpine(n int) Term {
	t := Term(Konst{CTT})
	for i := 0; i < n; i++ {
		t = App{F: t, X: Konst{CTT}}
	}
	return t
}

// TestCheckerDepthLimit: a 1M-deep term must come back as a typed
// limit error, not a stack exhaustion. This is the regression test for
// converting the checker's deepest recursion to an explicit depth
// budget.
func TestCheckerDepthLimit(t *testing.T) {
	deep := deepAppSpine(1_000_000)
	c := NewChecker(NewSignature())
	c.MaxDepth = 10_000
	_, err := c.Infer(deep)
	if err == nil {
		t.Fatal("1M-deep term typechecked")
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Axis != "term_depth" {
		t.Fatalf("want term_depth LimitError, got %v", err)
	}
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("limit error does not match ErrLimit: %v", err)
	}
}

// TestCheckerDepthLimitDoesNotRejectRealProofs: the depth budget must
// be invisible to legitimate proofs.
func TestCheckerDepthLimitDoesNotRejectRealProofs(t *testing.T) {
	sig := NewSignature()
	tm := Apply(Konst{CAndI}, Konst{CTT}, Konst{CTT}, Konst{CTrueI}, Konst{CTrueI})
	want := App{Konst{CPf}, Apply(Konst{CAnd}, Konst{CTT}, Konst{CTT})}
	c := NewChecker(sig)
	c.MaxDepth = 4096
	c.MaxSteps = 1 << 20
	if err := c.Check(tm, want); err != nil {
		t.Fatalf("budgeted checker rejected a real proof: %v", err)
	}
}

// TestCheckerStepFuel: exhausting MaxSteps yields a typed limit error.
func TestCheckerStepFuel(t *testing.T) {
	deep := deepAppSpine(5000)
	c := NewChecker(NewSignature())
	c.MaxSteps = 100
	_, err := c.Infer(deep)
	var le *LimitError
	if !errors.As(err, &le) || le.Axis != "check_steps" {
		t.Fatalf("want check_steps LimitError, got %v", err)
	}
}

// TestCheckerInterrupt: a cancelled context threaded through Interrupt
// aborts a check in flight with a limit error wrapping the cause.
func TestCheckerInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	deep := deepAppSpine(100_000)
	c := NewChecker(NewSignature())
	c.Interrupt = ctx.Err
	_, err := c.Infer(deep)
	if err == nil {
		t.Fatal("interrupted check succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt cause not preserved: %v", err)
	}
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("interrupt not classified as a limit: %v", err)
	}
}

// TestParseTermDepthLimit: the textual parser rejects deep nesting
// instead of recursing into it.
func TestParseTermDepthLimit(t *testing.T) {
	src := strings.Repeat("(", 100_000) + "tt" + strings.Repeat(" tt)", 100_000)
	if _, err := ParseTerm(src); err == nil {
		t.Fatal("100k-deep source parsed")
	} else if !strings.Contains(err.Error(), "deeper than") {
		t.Fatalf("want depth error, got %v", err)
	}
}

// TestSizeBounded: a hash-consed DAG expands to an exponential tree
// under traversal; the bounded walk must stop at the cap in time
// proportional to the cap, not the tree. (Unbounded Size on this term
// would walk 2^61-1 nodes.)
func TestSizeBounded(t *testing.T) {
	leaf := Term(Konst{Name: "x"})
	d := leaf
	for i := 0; i < 60; i++ {
		d = App{F: d, X: d} // each level doubles the tree
	}
	if got := SizeBounded(d, 1000); got != 1000 {
		t.Fatalf("SizeBounded(bomb, 1000) = %d, want the cap", got)
	}
	// Small trees are counted exactly, and max <= 0 means unbounded.
	small := App{F: App{F: leaf, X: leaf}, X: leaf}
	if got, want := SizeBounded(small, 1<<20), Size(small); got != want {
		t.Fatalf("SizeBounded(small) = %d, want %d", got, want)
	}
	if got, want := SizeBounded(small, 0), Size(small); got != want {
		t.Fatalf("SizeBounded(small, 0) = %d, want %d", got, want)
	}
}
