package lf

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/logic"
)

// ErrLimit is the sentinel all checker resource-budget errors match
// via errors.Is. A limit error means the checker refused to spend more
// resources on the term, not that the term was proven ill-typed — the
// distinction a consumer's reject-reason accounting relies on.
var ErrLimit = errors.New("lf: resource limit exceeded")

// LimitError reports an exhausted checker budget (depth, step fuel, or
// an interrupt such as a deadline).
type LimitError struct {
	// Axis is "term_depth", "check_steps", or "interrupt".
	Axis string
	// Max is the configured budget (0 for interrupts).
	Max int
	// Err carries the interrupt cause, when Axis is "interrupt".
	Err error
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("lf: check interrupted: %v", e.Err)
	}
	return fmt.Sprintf("lf: %s limit exceeded (max %d)", e.Axis, e.Max)
}

// Is makes errors.Is(err, ErrLimit) match.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// Unwrap exposes the interrupt cause.
func (e *LimitError) Unwrap() error { return e.Err }

// TypeError reports an LF typechecking failure — i.e., an invalid
// safety proof. Subterm, when set, renders the first (innermost)
// subterm the checker rejected, so a consumer's audit log can record
// forensically *where* in the proof the failure happened, not just
// that it did.
type TypeError struct {
	Msg     string
	Subterm string
}

// Error implements the error interface.
func (e *TypeError) Error() string { return "lf: " + e.Msg }

func typeErr(format string, args ...interface{}) error {
	return &TypeError{Msg: fmt.Sprintf(format, args...)}
}

// subtermRenderLimit bounds the rendered failing subterm: enough to
// locate the failure, short enough for one log record.
const subtermRenderLimit = 256

// typeErrAt is typeErr carrying the failing subterm. Errors propagate
// outward unchanged through the recursion, so the recorded subterm is
// the innermost point of failure.
func typeErrAt(at Term, format string, args ...interface{}) error {
	s := fmt.Sprint(at)
	if len(s) > subtermRenderLimit {
		s = s[:subtermRenderLimit] + "..."
	}
	return &TypeError{Msg: fmt.Sprintf(format, args...), Subterm: s}
}

// Checker validates LF objects against the published signature. It is
// the trusted validator of §2.3: small, simple, and independent of the
// prover.
type Checker struct {
	Sig *Signature
	// Steps counts inference steps, reported for the validation-cost
	// experiments.
	Steps int
	// MaxSteps, when positive, is the checker's step fuel: checking
	// aborts with a LimitError once Steps exceeds it. Proof terms
	// arrive DAG-encoded and expand to trees during checking, so a
	// small binary can demand exponential checking work — fuel, not
	// input size, is what bounds the checker against such bombs.
	MaxSteps int
	// MaxDepth, when positive, bounds the checker's recursion depth
	// over the term. A hostile deeply nested term then yields a
	// LimitError instead of exhausting the goroutine stack.
	MaxDepth int
	// Interrupt, when non-nil, is polled every interruptStride steps;
	// a non-nil return aborts checking with a LimitError wrapping it.
	// Consumers use it to thread context cancellation into a check
	// already in flight.
	Interrupt func() error
	// depth is the current infer recursion depth.
	depth int
}

// interruptStride is how many inference steps pass between Interrupt
// polls: frequent enough that a deadline stops a runaway check within
// microseconds, rare enough to stay off the per-step fast path.
const interruptStride = 1024

// NewChecker returns a checker over the given signature.
func NewChecker(sig *Signature) *Checker { return &Checker{Sig: sig} }

// Check verifies that term has the given type (both closed). It
// implements "proof validation amounts to typechecking".
func (c *Checker) Check(term, want Term) error {
	got, err := c.infer(term, nil)
	if err != nil {
		return err
	}
	if !Equal(Normalize(got), Normalize(want)) {
		return typeErrAt(term, "type mismatch:\n  inferred %s\n  expected %s", got, want)
	}
	return nil
}

// Infer returns the type of a closed term.
func (c *Checker) Infer(term Term) (Term, error) { return c.infer(term, nil) }

// infer computes the type/kind of t under the de Bruijn environment
// env (env[0] is the innermost binder's type, already shifted to its
// own binder's depth: lookup shifts by idx+1).
func (c *Checker) infer(t Term, env []Term) (Term, error) {
	c.Steps++
	if c.MaxSteps > 0 && c.Steps > c.MaxSteps {
		return nil, &LimitError{Axis: "check_steps", Max: c.MaxSteps}
	}
	if c.Interrupt != nil && c.Steps%interruptStride == 0 {
		if err := c.Interrupt(); err != nil {
			return nil, &LimitError{Axis: "interrupt", Err: err}
		}
	}
	c.depth++
	defer func() { c.depth-- }()
	if c.MaxDepth > 0 && c.depth > c.MaxDepth {
		return nil, &LimitError{Axis: "term_depth", Max: c.MaxDepth}
	}
	switch t := t.(type) {
	case Sort:
		if t == SType {
			return SKind, nil
		}
		return nil, typeErrAt(t, "the sort 'kind' has no classifier")
	case Konst:
		ty, ok := c.Sig.Lookup(t.Name)
		if !ok {
			return nil, typeErrAt(t, "unknown constant %q", t.Name)
		}
		return ty, nil
	case Bound:
		if t.Idx < 0 || t.Idx >= len(env) {
			return nil, typeErrAt(t, "unbound variable #%d", t.Idx)
		}
		return shift(env[t.Idx], t.Idx+1, 0), nil
	case Lit:
		return Konst{CWord}, nil
	case Pi:
		if err := c.checkIsType(t.A, env); err != nil {
			return nil, err
		}
		s, err := c.infer(t.B, push(env, t.A))
		if err != nil {
			return nil, err
		}
		srt, ok := Normalize(s).(Sort)
		if !ok {
			return nil, typeErrAt(t.B, "Pi body is not a type or kind: %s", t.B)
		}
		return srt, nil
	case Lam:
		if err := c.checkIsType(t.A, env); err != nil {
			return nil, err
		}
		b, err := c.infer(t.M, push(env, t.A))
		if err != nil {
			return nil, err
		}
		return Pi{t.A, b}, nil
	case App:
		fTy, err := c.infer(t.F, env)
		if err != nil {
			return nil, err
		}
		pi, ok := Normalize(fTy).(Pi)
		if !ok {
			return nil, typeErrAt(t, "application of non-function: %s : %s", t.F, fTy)
		}
		aTy, err := c.infer(t.X, env)
		if err != nil {
			return nil, err
		}
		if !Equal(Normalize(aTy), Normalize(pi.A)) {
			return nil, typeErrAt(t.X, "argument type mismatch:\n  got %s\n  want %s", aTy, pi.A)
		}
		if err := c.checkPrimitive(t); err != nil {
			return nil, err
		}
		return Instantiate(pi.B, t.X), nil
	}
	return nil, typeErr("unknown term %T", t)
}

// checkIsType verifies that A is a well-formed type (family of kind
// `type`) or kind.
func (c *Checker) checkIsType(a Term, env []Term) error {
	s, err := c.infer(a, env)
	if err != nil {
		return err
	}
	if srt, ok := Normalize(s).(Sort); ok && (srt == SType || srt == SKind) {
		return nil
	}
	return typeErrAt(a, "not a type: %s", a)
}

func push(env []Term, a Term) []Term {
	out := make([]Term, 0, len(env)+1)
	out = append(out, a)
	return append(out, env...)
}

// checkPrimitive enforces the side conditions of the primitive
// judgments: a fully applied `gr P` requires P to be closed and to
// evaluate to true; a fully applied `nrm P Q` requires P and Q to share
// a normal form under the trusted normalizer.
func (c *Checker) checkPrimitive(app App) error {
	head, args := Spine(app)
	k, ok := head.(Konst)
	if !ok {
		return nil
	}
	switch {
	case k.Name == CGr && len(args) == 1:
		p, err := DecodePred(args[0])
		if err != nil {
			return typeErrAt(app, "gr: %v", err)
		}
		v, ground := logic.EvalPred(p, map[string]uint64{})
		if !ground {
			return typeErrAt(app, "gr applied to non-ground predicate %s", p)
		}
		if !v {
			return typeErrAt(app, "gr applied to false predicate %s", p)
		}
	case k.Name == CNrm && len(args) == 2:
		p, err := DecodePred(args[0])
		if err != nil {
			return typeErrAt(app, "nrm: %v", err)
		}
		q, err := DecodePred(args[1])
		if err != nil {
			return typeErr("nrm: %v", err)
		}
		if !logic.AlphaEqual(logic.NormPred(p), logic.NormPred(q)) {
			return typeErrAt(app, "nrm applied to non-convertible predicates:\n  %s\n  %s", p, q)
		}
	}
	return nil
}

// DecodePred converts an (object-level) LF predicate back to its logic
// representation. Bound variables are named positionally, so decoded
// predicates compare correctly under AlphaEqual.
func DecodePred(t Term) (logic.Pred, error) { return decodePred(Normalize(t), 0) }

// DecodeExpr converts an LF expression term back to logic form.
func DecodeExpr(t Term) (logic.Expr, error) { return decodeExpr(Normalize(t), 0) }

var binOpByConst = func() map[string]logic.BinOp {
	m := map[string]logic.BinOp{}
	for _, op := range binOps {
		m[BinOpConst(op)] = op
	}
	return m
}()

var cmpOpByConst = func() map[string]logic.CmpOp {
	m := map[string]logic.CmpOp{}
	for _, op := range cmpOps {
		m[CmpOpConst(op)] = op
	}
	return m
}()

// levelName names a decoded variable by binder level. Negative levels
// denote binders outside the decoded term (possible in the side
// conditions of nrm, which may occur under hypothesis λs); they get
// stable names so that the two operands of nrm decode consistently.
func levelName(level int) string {
	if level < 0 {
		return fmt.Sprintf("!^%d", -level)
	}
	return fmt.Sprintf("!%d", level)
}

func decodeExpr(t Term, depth int) (logic.Expr, error) {
	if b, ok := t.(Bound); ok {
		return logic.V(levelName(depth - b.Idx - 1)), nil
	}
	if k, ok := t.(Konst); ok {
		if name, isReg := strings.CutPrefix(k.Name, "reg_"); isReg && stateVarSet[name] {
			return logic.V(name), nil
		}
	}
	head, args := Spine(t)
	k, ok := head.(Konst)
	if !ok {
		return nil, fmt.Errorf("lf: decode: bad expression head %s", head)
	}
	sub := func(i int) (logic.Expr, error) { return decodeExpr(args[i], depth) }
	switch {
	case k.Name == CCst && len(args) == 1:
		lit, ok := args[0].(Lit)
		if !ok {
			return nil, fmt.Errorf("lf: decode: cst of non-literal")
		}
		return logic.C(lit.V), nil
	case k.Name == CSel && len(args) == 2:
		m, err := sub(0)
		if err != nil {
			return nil, err
		}
		a, err := sub(1)
		if err != nil {
			return nil, err
		}
		return logic.SelE(m, a), nil
	case k.Name == CUpd && len(args) == 3:
		m, err := sub(0)
		if err != nil {
			return nil, err
		}
		a, err := sub(1)
		if err != nil {
			return nil, err
		}
		v, err := sub(2)
		if err != nil {
			return nil, err
		}
		return logic.UpdE(m, a, v), nil
	}
	if op, isBin := binOpByConst[k.Name]; isBin && len(args) == 2 {
		l, err := sub(0)
		if err != nil {
			return nil, err
		}
		r, err := sub(1)
		if err != nil {
			return nil, err
		}
		return logic.Bin{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("lf: decode: unknown expression form %s", t)
}

func decodePred(t Term, depth int) (logic.Pred, error) {
	head, args := Spine(t)
	k, ok := head.(Konst)
	if !ok {
		return nil, fmt.Errorf("lf: decode: bad predicate head %s", head)
	}
	switch {
	case k.Name == CTT && len(args) == 0:
		return logic.True, nil
	case k.Name == CFF && len(args) == 0:
		return logic.False, nil
	case (k.Name == CRd || k.Name == CWr) && len(args) == 1:
		a, err := decodeExpr(args[0], depth)
		if err != nil {
			return nil, err
		}
		if k.Name == CRd {
			return logic.RdP(a), nil
		}
		return logic.WrP(a), nil
	case (k.Name == CAnd || k.Name == COr || k.Name == CImp) && len(args) == 2:
		l, err := decodePred(args[0], depth)
		if err != nil {
			return nil, err
		}
		r, err := decodePred(args[1], depth)
		if err != nil {
			return nil, err
		}
		switch k.Name {
		case CAnd:
			return logic.And{L: l, R: r}, nil
		case COr:
			return logic.Or{L: l, R: r}, nil
		default:
			return logic.Imp{L: l, R: r}, nil
		}
	case k.Name == CForall && len(args) == 1:
		lam, ok := args[0].(Lam)
		if !ok {
			return nil, fmt.Errorf("lf: decode: forall of non-abstraction")
		}
		body, err := decodePred(lam.M, depth+1)
		if err != nil {
			return nil, err
		}
		return logic.Forall{Var: levelName(depth), Body: body}, nil
	}
	if op, isCmp := cmpOpByConst[k.Name]; isCmp && len(args) == 2 {
		l, err := decodeExpr(args[0], depth)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(args[1], depth)
		if err != nil {
			return nil, err
		}
		return logic.Cmp{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("lf: decode: unknown predicate form %s", t)
}

// ValidateProof is the consumer's validation entry point: it checks
// that proofTerm is a valid LF proof of the safety predicate sp.
func ValidateProof(sig *Signature, proofTerm Term, sp logic.Pred) error {
	spT, err := EncodePred(sp)
	if err != nil {
		return err
	}
	return NewChecker(sig).Check(proofTerm, App{Konst{CPf}, spT})
}
