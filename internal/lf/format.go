package lf

import (
	"fmt"
	"strings"

	"repro/internal/prover"
)

// FormatSignature renders the published signature in a λProlog-style
// concrete syntax, one declaration per line — the form in which a code
// consumer "defines and publicizes" its proof-formation rules. The
// axiom schemas carry their documentation comments.
func FormatSignature(s *Signature) string {
	var b strings.Builder
	b.WriteString("%% PCC object logic and proof rules (published signature)\n")
	for _, name := range s.Names() {
		ty, _ := s.Lookup(name)
		if sc, ok := prover.Axioms[name]; ok && sc.Comment != "" {
			fmt.Fprintf(&b, "%% %s\n", sc.Comment)
		}
		fmt.Fprintf(&b, "%-16s : %s.\n", name, formatTy(ty, 0))
	}
	return b.String()
}

// formatTy renders a type with named binders (x0, x1, …) instead of de
// Bruijn indexes, for readability.
func formatTy(t Term, depth int) string {
	switch t := t.(type) {
	case Sort:
		return t.String()
	case Konst:
		return t.Name
	case Bound:
		return fmt.Sprintf("x%d", depth-t.Idx-1)
	case Lit:
		return fmt.Sprintf("%d", t.V)
	case Pi:
		// Non-dependent products print as arrows.
		if !mentionsBound0(t.B) {
			return fmt.Sprintf("%s -> %s", formatTyAtom(t.A, depth), formatTy(shiftDown(t.B), depth))
		}
		return fmt.Sprintf("{x%d:%s} %s", depth, formatTy(t.A, depth), formatTy(t.B, depth+1))
	case Lam:
		return fmt.Sprintf("[x%d:%s] %s", depth, formatTy(t.A, depth), formatTy(t.M, depth+1))
	case App:
		head, args := Spine(t)
		parts := []string{formatTyAtom(head, depth)}
		for _, a := range args {
			parts = append(parts, formatTyAtom(a, depth))
		}
		return strings.Join(parts, " ")
	}
	return "?"
}

func formatTyAtom(t Term, depth int) string {
	switch t.(type) {
	case App, Pi, Lam:
		return "(" + formatTy(t, depth) + ")"
	}
	return formatTy(t, depth)
}

func mentionsBound0(t Term) bool {
	switch t := t.(type) {
	case Bound:
		return t.Idx == 0
	case Pi:
		return mentionsBound0Shifted(t.A, 0) || mentionsBound0Shifted(t.B, 1)
	case Lam:
		return mentionsBound0Shifted(t.A, 0) || mentionsBound0Shifted(t.M, 1)
	case App:
		return mentionsBound0(t.F) || mentionsBound0(t.X)
	}
	return false
}

func mentionsBound0Shifted(t Term, extra int) bool {
	return mentionsIdx(t, extra)
}

func mentionsIdx(t Term, idx int) bool {
	switch t := t.(type) {
	case Bound:
		return t.Idx == idx
	case Pi:
		return mentionsIdx(t.A, idx) || mentionsIdx(t.B, idx+1)
	case Lam:
		return mentionsIdx(t.A, idx) || mentionsIdx(t.M, idx+1)
	case App:
		return mentionsIdx(t.F, idx) || mentionsIdx(t.X, idx)
	}
	return false
}

// shiftDown removes one unused binder level (only valid when Bound{0}
// does not occur, which the arrow case guarantees).
func shiftDown(t Term) Term { return substIdx(t, 0, Konst{"_"}) }
