package lf

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/logic"
	"repro/internal/prover"
)

// Signature is the published LF signature: the object logic's syntax
// and proof rules. It is part of the safety policy; producer and
// consumer must agree on it.
type Signature struct {
	types map[string]Term // constant name -> type (or kind)
	order []string        // deterministic ordering for the binary codec
}

// Digest returns a SHA-256 digest of the signature's content: the
// constants, their order, and their types, length-framed so distinct
// signatures never share a serialization. Safety-relevant identity —
// the proof-cache key in internal/kernel keys on it via pcc.Keyer —
// must use this full digest.
func (s *Signature) Digest() [sha256.Size]byte {
	h := sha256.New()
	writeStr := func(str string) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(len(str)))
		h.Write(buf[:])
		io.WriteString(h, str)
	}
	for _, name := range s.order {
		writeStr(name)
		writeStr(s.types[name].String())
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// Fingerprint returns the first 64 bits of Digest. Producer and
// consumer embed and check it in PCC binaries, so a rule-set mismatch
// (say, a consumer that dropped an axiom) is detected with a precise
// error before any type checking. It is a diagnostic only: validation
// re-checks the whole proof against the consumer's own signature, so
// nothing safety-relevant rests on this 64-bit value.
func (s *Signature) Fingerprint() uint64 {
	d := s.Digest()
	return binary.LittleEndian.Uint64(d[:8])
}

// Lookup returns the type of a signature constant.
func (s *Signature) Lookup(name string) (Term, bool) {
	t, ok := s.types[name]
	return t, ok
}

// Names returns the constant names in deterministic order.
func (s *Signature) Names() []string { return s.order }

func (s *Signature) declare(name string, ty Term) {
	if _, dup := s.types[name]; dup {
		panic(fmt.Sprintf("lf: duplicate signature constant %q", name))
	}
	s.types[name] = ty
	s.order = append(s.order, name)
}

// Names of the core signature constants.
const (
	CWord   = "word"
	CExp    = "exp"
	CPred   = "pred"
	CPf     = "pf"
	CGround = "ground"
	CNormEq = "norm_eq"
	CCst    = "cst"
	CSel    = "sel"
	CUpd    = "upd"
	CTT     = "tt"
	CFF     = "ff"
	CAnd    = "and"
	COr     = "or"
	CImp    = "imp"
	CForall = "forall"
	CRd     = "rd"
	CWr     = "wr"
	CTrueI  = "truei"
	CAndI   = "andi"
	CAndEL  = "andel"
	CAndER  = "ander"
	CImpI   = "impi"
	CImpE   = "impe"
	CAllI   = "foralli"
	CAllE   = "foralle"
	COrIL   = "ori1"
	COrIR   = "ori2"
	COrE    = "ore"
	CFalseE = "falsee"
	CGr     = "gr" // primitive: ground p, checked by evaluation
	CGArith = "garith"
	CNrm    = "nrm" // primitive: norm_eq p q, checked by the normalizer
	CConvP  = "convp"
)

// BinOpConst returns the signature constant name of a binary
// expression operator.
func BinOpConst(op logic.BinOp) string {
	switch op {
	case logic.OpAdd:
		return "e_add"
	case logic.OpSub:
		return "e_sub"
	case logic.OpMul:
		return "e_mul"
	case logic.OpAnd:
		return "e_and"
	case logic.OpOr:
		return "e_or"
	case logic.OpXor:
		return "e_xor"
	case logic.OpShl:
		return "e_shl"
	case logic.OpShr:
		return "e_shr"
	case logic.OpCmpEq:
		return "e_cmpeq"
	case logic.OpCmpUlt:
		return "e_cmpult"
	case logic.OpCmpUle:
		return "e_cmpule"
	case logic.OpCmpSlt:
		return "e_cmpslt"
	}
	panic(fmt.Sprintf("lf: unknown binop %v", op))
}

// CmpOpConst returns the signature constant name of an atomic
// comparison predicate.
func CmpOpConst(op logic.CmpOp) string {
	switch op {
	case logic.CmpEq:
		return "p_eq"
	case logic.CmpNe:
		return "p_ne"
	case logic.CmpUlt:
		return "p_ult"
	case logic.CmpUle:
		return "p_ule"
	case logic.CmpSlt:
		return "p_slt"
	case logic.CmpSle:
		return "p_sle"
	}
	panic(fmt.Sprintf("lf: unknown cmpop %v", op))
}

var binOps = []logic.BinOp{
	logic.OpAdd, logic.OpSub, logic.OpMul, logic.OpAnd, logic.OpOr, logic.OpXor,
	logic.OpShl, logic.OpShr, logic.OpCmpEq, logic.OpCmpUlt, logic.OpCmpUle, logic.OpCmpSlt,
}

var cmpOps = []logic.CmpOp{
	logic.CmpEq, logic.CmpNe, logic.CmpUlt, logic.CmpUle, logic.CmpSlt, logic.CmpSle,
}

// StateVars lists the machine-state variable names that may occur free
// in loop invariants: the paper's r0..r10 and rm.
var StateVars = []string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "rm",
}

// NewSignature builds the standard published signature: syntax, core
// natural-deduction rules, the two primitive judgments, and one
// constant per axiom schema in prover.Axioms.
func NewSignature() *Signature { return NewSignatureWith(nil) }

// NewSignatureWith additionally declares policy-published axiom
// schemas (in sorted order, after the base set), so proofs built with
// ProveWith validate and the signature fingerprint covers the policy's
// whole rule set.
func NewSignatureWith(extra map[string]*prover.Schema) *Signature {
	s := &Signature{types: map[string]Term{}}

	exp := Konst{CExp}
	pred := Konst{CPred}
	pf := func(p Term) Term { return App{Konst{CPf}, p} }

	// Syntax.
	s.declare(CWord, SType)
	s.declare(CExp, SType)
	s.declare(CPred, SType)
	s.declare(CPf, Pi{pred, SType})
	s.declare(CGround, Pi{pred, SType})
	s.declare(CNormEq, Pi{pred, Pi{pred, SType}})

	s.declare(CCst, Pi{Konst{CWord}, exp})
	// Machine-state constants: used by loop-invariant predicates, which
	// are open over the registers (r0..r10) and the memory
	// pseudo-register rm.
	for _, r := range StateVars {
		s.declare("reg_"+r, exp)
	}
	for _, op := range binOps {
		s.declare(BinOpConst(op), Pi{exp, Pi{exp, exp}})
	}
	s.declare(CSel, Pi{exp, Pi{exp, exp}})
	s.declare(CUpd, Pi{exp, Pi{exp, Pi{exp, exp}}})

	s.declare(CTT, pred)
	s.declare(CFF, pred)
	s.declare(CAnd, Pi{pred, Pi{pred, pred}})
	s.declare(COr, Pi{pred, Pi{pred, pred}})
	s.declare(CImp, Pi{pred, Pi{pred, pred}})
	for _, op := range cmpOps {
		s.declare(CmpOpConst(op), Pi{exp, Pi{exp, pred}})
	}
	s.declare(CRd, Pi{exp, pred})
	s.declare(CWr, Pi{exp, pred})
	s.declare(CForall, Pi{Pi{exp, pred}, pred})

	// Core rules. In the comments, #n is the de Bruijn index.
	s.declare(CTrueI, pf(Konst{CTT}))
	// andi : {p:pred}{q:pred} pf p -> pf q -> pf (and p q)
	s.declare(CAndI, Pi{pred, Pi{pred,
		Pi{pf(Bound{1}), Pi{pf(Bound{1}),
			pf(Apply(Konst{CAnd}, Bound{3}, Bound{2}))}}}})
	// andel : {p}{q} pf (and p q) -> pf p
	s.declare(CAndEL, Pi{pred, Pi{pred,
		Pi{pf(Apply(Konst{CAnd}, Bound{1}, Bound{0})), pf(Bound{2})}}})
	s.declare(CAndER, Pi{pred, Pi{pred,
		Pi{pf(Apply(Konst{CAnd}, Bound{1}, Bound{0})), pf(Bound{1})}}})
	// impi : {p}{q} (pf p -> pf q) -> pf (imp p q)
	s.declare(CImpI, Pi{pred, Pi{pred,
		Pi{Pi{pf(Bound{1}), pf(Bound{1})},
			pf(Apply(Konst{CImp}, Bound{2}, Bound{1}))}}})
	// impe : {p}{q} pf (imp p q) -> pf p -> pf q
	s.declare(CImpE, Pi{pred, Pi{pred,
		Pi{pf(Apply(Konst{CImp}, Bound{1}, Bound{0})),
			Pi{pf(Bound{2}), pf(Bound{2})}}}})
	// foralli : {f:exp->pred} ({x:exp} pf (f x)) -> pf (forall f)
	s.declare(CAllI, Pi{Pi{exp, pred},
		Pi{Pi{exp, pf(App{Bound{1}, Bound{0}})},
			pf(App{Konst{CForall}, Bound{1}})}})
	// foralle : {f:exp->pred} {e:exp} pf (forall f) -> pf (f e)
	s.declare(CAllE, Pi{Pi{exp, pred}, Pi{exp,
		Pi{pf(App{Konst{CForall}, Bound{1}}),
			pf(App{Bound{2}, Bound{1}})}}})

	// Disjunction and absurdity.
	// ori1 : {p}{q} pf p -> pf (or p q)
	s.declare(COrIL, Pi{pred, Pi{pred,
		Pi{pf(Bound{1}), pf(Apply(Konst{COr}, Bound{2}, Bound{1}))}}})
	// ori2 : {p}{q} pf q -> pf (or p q)
	s.declare(COrIR, Pi{pred, Pi{pred,
		Pi{pf(Bound{0}), pf(Apply(Konst{COr}, Bound{2}, Bound{1}))}}})
	// ore : {p}{q}{r} pf (or p q) -> (pf p -> pf r) -> (pf q -> pf r) -> pf r
	s.declare(COrE, Pi{pred, Pi{pred, Pi{pred,
		Pi{pf(Apply(Konst{COr}, Bound{2}, Bound{1})),
			Pi{Pi{pf(Bound{3}), pf(Bound{2})},
				Pi{Pi{pf(Bound{3}), pf(Bound{3})},
					pf(Bound{3})}}}}}})
	// falsee : {p} pf ff -> pf p
	s.declare(CFalseE, Pi{pred, Pi{pf(Konst{CFF}), pf(Bound{1})}})

	// Primitive decidable judgments and their consumers.
	s.declare(CGr, Pi{pred, App{Konst{CGround}, Bound{0}}})
	s.declare(CGArith, Pi{pred, Pi{App{Konst{CGround}, Bound{0}}, pf(Bound{1})}})
	s.declare(CNrm, Pi{pred, Pi{pred,
		Apply(Konst{CNormEq}, Bound{1}, Bound{0})}})
	s.declare(CConvP, Pi{pred, Pi{pred,
		Pi{Apply(Konst{CNormEq}, Bound{1}, Bound{0}),
			Pi{pf(Bound{2}), pf(Bound{2})}}}})

	// Axiom schemas, in deterministic order.
	names := make([]string, 0, len(prover.Axioms))
	for name := range prover.Axioms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.declare(name, axiomType(prover.Axioms[name]))
	}
	extraNames := make([]string, 0, len(extra))
	for name := range extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		s.declare(name, axiomType(extra[name]))
	}
	return s
}

// axiomType builds Πx1:exp…Πxn:exp. pf prem1 → … → pf concl for an
// axiom schema.
func axiomType(sc *prover.Schema) Term {
	// Parameter name -> de Bruijn level (0 = first parameter).
	levels := map[string]int{}
	for i, p := range sc.Params {
		levels[p] = i
	}
	nParams := len(sc.Params)
	nPrems := len(sc.Prems)

	// Total binders above the conclusion: nParams + nPrems.
	concl := App{Konst{CPf}, encPredAt(sc.Concl, levels, nParams+nPrems)}
	body := Term(concl)
	for i := nPrems - 1; i >= 0; i-- {
		prem := App{Konst{CPf}, encPredAt(sc.Prems[i], levels, nParams+i)}
		body = Pi{prem, body}
	}
	for i := 0; i < nParams; i++ {
		body = Pi{Konst{CExp}, body}
	}
	return body
}

// encPredAt encodes a logic predicate whose free variables are schema
// parameters bound at the given levels, viewed from a term at depth.
func encPredAt(p logic.Pred, levels map[string]int, depth int) Term {
	return encodePredWith(p, func(name string, d int) (Term, error) {
		lvl, ok := levels[name]
		if !ok {
			return nil, fmt.Errorf("lf: unbound schema parameter %q", name)
		}
		return Bound{d - lvl - 1}, nil
	}, depth)
}
