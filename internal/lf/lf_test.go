package lf

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

func TestSignatureWellFormed(t *testing.T) {
	// Every constant's classifier must itself typecheck (to `type` or
	// `kind`), with earlier constants in scope.
	sig := NewSignature()
	c := NewChecker(sig)
	for _, name := range sig.Names() {
		ty, _ := sig.Lookup(name)
		if err := c.checkIsType(ty, nil); err != nil {
			t.Errorf("constant %q has ill-formed type: %v", name, err)
		}
	}
	if len(sig.Names()) < 40 {
		t.Errorf("signature suspiciously small: %d constants", len(sig.Names()))
	}
}

func TestBetaNormalization(t *testing.T) {
	// (λx:exp. x) (cst 5) → cst 5
	id := Lam{Konst{CExp}, Bound{0}}
	five := App{Konst{CCst}, Lit{5}}
	got := Normalize(App{id, five})
	if !Equal(got, five) {
		t.Fatalf("normalize = %s", got)
	}
}

func TestShiftSubstProperties(t *testing.T) {
	// Instantiate(λ-body x) with closed arg leaves no dangling indexes.
	body := Apply(Konst{"e_add"}, Bound{0}, Bound{0})
	arg := App{Konst{CCst}, Lit{7}}
	got := Instantiate(body, arg)
	want := Apply(Konst{"e_add"}, arg, arg)
	if !Equal(got, want) {
		t.Fatalf("instantiate = %s, want %s", got, want)
	}
}

func TestEncodeDecodePredRoundTrip(t *testing.T) {
	pols := []logic.Pred{
		policy.PacketFilter().Pre,
		policy.ResourceAccess().Pre,
		policy.SFISegment().Pre,
		logic.True,
		logic.All("i", logic.Implies(
			logic.Ult(logic.V("i"), logic.C(10)),
			logic.RdP(logic.Add(logic.V("i"), logic.C(8))))),
	}
	for _, p := range pols {
		// Close over any free register variables first.
		closed := logic.AllOf(logic.SortedFreeVars(p), p)
		enc, err := EncodePred(closed)
		if err != nil {
			t.Fatalf("encode %s: %v", closed, err)
		}
		dec, err := DecodePred(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !logic.AlphaEqual(closed, dec) {
			t.Fatalf("round trip changed predicate:\n  in:  %s\n  out: %s", closed, dec)
		}
	}
}

func TestEncodedPredHasTypePred(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	closed := logic.AllOf(logic.SortedFreeVars(policy.PacketFilter().Pre), policy.PacketFilter().Pre)
	enc, err := EncodePred(closed)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := c.Infer(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Normalize(ty), Konst{CPred}) {
		t.Fatalf("encoded predicate has type %s", ty)
	}
}

// certifyLF runs the producer pipeline and validates through LF.
func certifyLF(t *testing.T, src string, pol *policy.Policy) (Term, logic.Pred) {
	t.Helper()
	a, err := alpha.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := prover.Prove(res.SP)
	if err != nil {
		t.Fatal(err)
	}
	term, err := EncodeProof(proof)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProof(NewSignature(), term, res.SP); err != nil {
		t.Fatalf("LF validation failed: %v", err)
	}
	return term, res.SP
}

func TestValidateResourceAccessProof(t *testing.T) {
	certifyLF(t, `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, policy.ResourceAccess())
}

func TestValidatePacketFilterStyleProof(t *testing.T) {
	certifyLF(t, `
        LDQ    r4, 8(r1)
        SRL    r4, 46, r4
        AND    r4, 60, r4
        ADDQ   r4, 16, r4
        AND    r4, 0xF8, r5
        CMPULT r5, r2, r6
        BEQ    r6, reject
        ADDQ   r1, r5, r7
        LDQ    r8, 0(r7)
        MOV    1, r0
        RET
reject: CLR   r0
        RET
	`, policy.PacketFilter())
}

func TestValidationRejectsWrongPredicate(t *testing.T) {
	term, _ := certifyLF(t, `
        LDQ  r4, 0(r1)
        CLR  r0
        RET
	`, policy.PacketFilter())
	// The same proof must not validate against a different program's
	// safety predicate (tamper-detection, §2.3).
	a := alpha.MustAssemble(`
        LDQ  r4, 0(r1)
        LDQ  r5, 8(r1)
        CLR  r0
        RET
	`)
	pol := policy.PacketFilter()
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProof(NewSignature(), term, res.SP); err == nil {
		t.Fatal("proof for a different program accepted")
	}
}

func TestGroundPrimitiveRejectsFalse(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	bad, err := EncodePred(logic.Ult(logic.C(9), logic.C(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(App{Konst{CGr}, bad}); err == nil {
		t.Fatal("gr accepted a false ground predicate")
	}
	good, err := EncodePred(logic.Ult(logic.C(3), logic.C(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(App{Konst{CGr}, good}); err != nil {
		t.Fatalf("gr rejected a true ground predicate: %v", err)
	}
	open, err := EncodePred(logic.All("i", logic.Eq(logic.V("i"), logic.V("i"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(App{Konst{CGr}, open}); err == nil {
		t.Fatal("gr accepted a quantified predicate")
	}
}

func TestNrmPrimitiveChecksConvertibility(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	mk := func(p logic.Pred) Term {
		enc, err := EncodePred(p)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	// (3+4 = 7) ~ true: convertible.
	a := mk(logic.Eq(logic.Add(logic.C(3), logic.C(4)), logic.C(7)))
	b := mk(logic.True)
	if _, err := c.Infer(Apply(Konst{CNrm}, a, b)); err != nil {
		t.Fatalf("nrm rejected convertible predicates: %v", err)
	}
	// (3+4 = 8) ~ true: not convertible.
	bad := mk(logic.Eq(logic.Add(logic.C(3), logic.C(4)), logic.C(8)))
	if _, err := c.Infer(Apply(Konst{CNrm}, bad, b)); err == nil {
		t.Fatal("nrm accepted non-convertible predicates")
	}
}

func TestCheckerRejectsIllTyped(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	cases := []Term{
		Konst{"nonexistent"},
		Bound{0},
		App{Konst{CTrueI}, Konst{CTT}},            // applying a non-function
		App{Konst{CRd}, Konst{CTT}},               // rd of a pred, not an exp
		App{Konst{CPf}, App{Konst{CCst}, Lit{1}}}, // pf of an exp
		Apply(Konst{CAndI}, Konst{CTT}, Konst{CTT}, Konst{CTrueI}, Konst{CFF}),
	}
	for i, tm := range cases {
		if _, err := c.Infer(tm); err == nil {
			t.Errorf("case %d: ill-typed term accepted: %s", i, tm)
		}
	}
}

func TestCheckerAcceptsCoreRules(t *testing.T) {
	sig := NewSignature()
	c := NewChecker(sig)
	// andi tt tt truei truei : pf (and tt tt)
	tm := Apply(Konst{CAndI}, Konst{CTT}, Konst{CTT}, Konst{CTrueI}, Konst{CTrueI})
	want := App{Konst{CPf}, Apply(Konst{CAnd}, Konst{CTT}, Konst{CTT})}
	if err := c.Check(tm, want); err != nil {
		t.Fatal(err)
	}
	// impi tt tt (λh. h) : pf (imp tt tt)
	imp := Apply(Konst{CImpI}, Konst{CTT}, Konst{CTT},
		Lam{App{Konst{CPf}, Konst{CTT}}, Bound{0}})
	wantImp := App{Konst{CPf}, Apply(Konst{CImp}, Konst{CTT}, Konst{CTT})}
	if err := c.Check(imp, wantImp); err != nil {
		t.Fatal(err)
	}
}

func TestProofTermTamperingDetected(t *testing.T) {
	term, sp := certifyLF(t, `
        LDQ  r4, 0(r1)
        LDQ  r5, 8(r1)
        CLR  r0
        RET
	`, policy.PacketFilter())
	sig := NewSignature()

	mutants := mutateTerm(term)
	if len(mutants) < 10 {
		t.Fatalf("expected more mutants, got %d", len(mutants))
	}
	rejected := 0
	for _, m := range mutants {
		if err := ValidateProof(sig, m, sp); err != nil {
			rejected++
		}
	}
	// Most single-node mutations must be rejected. (A few may be
	// harmless — e.g. renaming an unused hypothesis type — which the
	// paper explicitly allows: "tampering can go undetected only if the
	// adulterated code is still guaranteed to respect the policy".)
	if rejected < len(mutants)*9/10 {
		t.Fatalf("only %d/%d mutants rejected", rejected, len(mutants))
	}
}

// mutateTerm produces single-node mutations of an LF term.
func mutateTerm(t Term) []Term {
	var out []Term
	var walk func(t Term, rebuild func(Term) Term)
	walk = func(t Term, rebuild func(Term) Term) {
		switch t := t.(type) {
		case Lit:
			out = append(out, rebuild(Lit{t.V + 1}))
		case Bound:
			out = append(out, rebuild(Bound{t.Idx + 1}))
		case Konst:
			repl := "e_add"
			if t.Name == "e_add" {
				repl = "e_sub"
			}
			out = append(out, rebuild(Konst{repl}))
		case App:
			walk(t.F, func(n Term) Term { return rebuild(App{n, t.X}) })
			walk(t.X, func(n Term) Term { return rebuild(App{t.F, n}) })
		case Lam:
			walk(t.M, func(n Term) Term { return rebuild(Lam{t.A, n}) })
		case Pi:
			walk(t.B, func(n Term) Term { return rebuild(Pi{t.A, n}) })
		}
	}
	walk(t, func(n Term) Term { return n })
	if len(out) > 300 {
		// Sample evenly; checking thousands of mutants is slow.
		sampled := make([]Term, 0, 300)
		for i := 0; i < len(out); i += len(out) / 300 {
			sampled = append(sampled, out[i])
		}
		out = sampled
	}
	return out
}

func TestTermStringAndSize(t *testing.T) {
	tm := Apply(Konst{CAndI}, Konst{CTT}, Konst{CTT}, Konst{CTrueI}, Konst{CTrueI})
	s := tm.String()
	if !strings.Contains(s, "andi") || !strings.Contains(s, "truei") {
		t.Errorf("bad rendering: %s", s)
	}
	if Size(tm) != 9 {
		t.Errorf("Size = %d, want 9", Size(tm))
	}
}

func TestProofSizeRatio(t *testing.T) {
	// §2.3: "the proof about 3 times larger than the code". Check the
	// LF proof term is nontrivially sized for a small filter.
	term, _ := certifyLF(t, `
        LDQ  r4, 0(r1)
        CLR  r0
        RET
	`, policy.PacketFilter())
	if Size(term) < 50 {
		t.Errorf("proof term suspiciously small: %d nodes", Size(term))
	}
}

func TestFormatSignature(t *testing.T) {
	out := FormatSignature(NewSignature())
	for _, frag := range []string{
		"pf", "forall", "andi", "impi",
		"lt_le_trans", "-> ", "{x0:pred}",
		"a<b ∧ b≤c ⇒ a<c", // the axiom's published comment
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("signature listing missing %q", frag)
		}
	}
	if len(strings.Split(out, "\n")) < 50 {
		t.Errorf("signature listing suspiciously short:\n%s", out)
	}
}

func TestOrProofValidatesThroughLF(t *testing.T) {
	// A disjunctive policy exercised end to end: precondition offers
	// wr(r0) ∨ wr(r0+8); the claim rd(r0) ∨ rd(r0+8) follows by case
	// analysis (wr implies rd). The proof must survive LF encoding and
	// validation.
	r0 := logic.V("r0")
	goal := logic.All("r0", logic.Implies(
		logic.Or{L: logic.WrP(r0), R: logic.WrP(logic.Add(r0, logic.C(8)))},
		logic.Or{L: logic.RdP(r0), R: logic.RdP(logic.Add(r0, logic.C(8)))},
	))
	proof, err := prover.Prove(goal)
	if err != nil {
		t.Fatal(err)
	}
	term, err := EncodeProof(proof)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProof(NewSignature(), term, goal); err != nil {
		t.Fatalf("LF validation of or-proof failed: %v", err)
	}
}

func TestFalseEProofValidatesThroughLF(t *testing.T) {
	goal := logic.All("r0", logic.Implies(logic.False, logic.WrP(logic.V("r0"))))
	proof, err := prover.Prove(goal)
	if err != nil {
		t.Fatal(err)
	}
	term, err := EncodeProof(proof)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProof(NewSignature(), term, goal); err != nil {
		t.Fatalf("LF validation of false_e proof failed: %v", err)
	}
}
