// Package core documents where the paper's primary contribution lives.
//
// Proof-carrying code is not one algorithm but a contract between four
// mechanisms, and this repository keeps each in its own package rather
// than a monolith:
//
//   - internal/vcgen   — the Floyd-style verification-condition
//     generator (Figure 4), the heart of the consumer's trusted base;
//   - internal/prover  — the producer's automatic theorem prover and
//     the published axiom schemas;
//   - internal/lf      — the LF representation and the typechecking
//     validator ("proof validation amounts to typechecking", §2.3);
//   - internal/pccbin  — the PCC binary format of Figure 7.
//
// The package pcc at the repository root composes them into the
// Figure 1 lifecycle (Certify / Validate / Run) and is the public API.
package core
