// Package vcgen implements the Floyd-style verification-condition
// generator of Necula & Lee (OSDI '96, Figure 4). Given a program in
// the Alpha subset, a precondition, a postcondition, and a table of
// loop invariants for backward-branch targets (the paper's §4
// convention), it computes the safety predicate
//
//	SP(Π, Pre, Post) = ∀r0…∀r10.∀rm. (Pre ⇒ VC₀) ∧ ⋀_c (Inv_c ⇒ VC_c)
//
// whose provability guarantees (Safety Theorem 2.1) that execution on
// the abstract machine never blocks on an rd/wr check and, on
// termination, satisfies Post.
//
// The generator normalizes every predicate it produces with the trusted
// normalizer of internal/logic; both producer and consumer run this
// same code, so proofs match the consumer's VC syntactically.
package vcgen

import (
	"fmt"
	"sort"

	"repro/internal/alpha"
	"repro/internal/logic"
)

// RegVar returns the logic variable naming register r; the zero
// register is the constant 0.
func RegVar(r alpha.Reg) logic.Expr {
	if r == alpha.RegZero {
		return logic.C(0)
	}
	return logic.V(fmt.Sprintf("r%d", r))
}

// MemVar is the logic variable naming the memory pseudo-register.
var MemVar = logic.V("rm")

// RegNames lists the quantified machine-state variables of a safety
// predicate: r0..r10 and rm, in the paper's order.
func RegNames() []string {
	names := make([]string, 0, alpha.NumRegs+1)
	for i := 0; i < alpha.NumRegs; i++ {
		names = append(names, fmt.Sprintf("r%d", i))
	}
	return append(names, "rm")
}

// Obligation is one conjunct of the safety predicate: the verification
// condition of an acyclic fragment, to be established from its
// assumption (the precondition for the entry fragment, a loop invariant
// otherwise).
type Obligation struct {
	// PC is the fragment's entry instruction index (0 for the program
	// entry).
	PC int
	// Assume is Pre or the invariant at PC.
	Assume logic.Pred
	// VC is the fragment's verification condition.
	VC logic.Pred
}

// Result carries the generated safety predicate and its parts.
type Result struct {
	// SP is the closed safety predicate.
	SP logic.Pred
	// Obligations are the per-fragment implications, in PC order
	// (entry first).
	Obligations []Obligation
	// VCs holds the per-instruction verification conditions, VCs[pc]
	// being the Figure 4 predicate of instruction pc (VCs[len(prog)]
	// covers falling off the end). Exposed for inspection tools.
	VCs []logic.Pred
}

// Gen computes the safety predicate of prog under (pre, post) with the
// given invariant table (instruction index of each backward-branch
// target ↦ invariant). It fails if a backward branch targets a point
// with no invariant, mirroring the paper's requirement that the PCC
// binary carry an invariant for every loop.
func Gen(prog []alpha.Instr, pre, post logic.Pred, invariants map[int]logic.Pred) (*Result, error) {
	if err := alpha.Validate(prog); err != nil {
		return nil, err
	}
	for pc := range invariants {
		if pc < 0 || pc >= len(prog) {
			return nil, fmt.Errorf("vcgen: invariant at pc %d outside program", pc)
		}
	}

	// vc[pc] is the Figure 4 verification condition of instruction pc;
	// vc[len(prog)] covers falling off the end (treated as RET).
	vc := make([]logic.Pred, len(prog)+1)
	vc[len(prog)] = logic.NormPred(post)

	// refVC is the predicate a *predecessor* uses for control reaching
	// pc: the invariant if pc is a cut point, the computed VC
	// otherwise.
	refVC := func(from, to int) (logic.Pred, error) {
		if inv, ok := invariants[to]; ok {
			return logic.NormPred(inv), nil
		}
		if to <= from {
			return nil, fmt.Errorf(
				"vcgen: pc %d: backward branch to %d without a loop invariant", from, to)
		}
		return vc[to], nil
	}

	for pc := len(prog) - 1; pc >= 0; pc-- {
		p, err := instrVC(prog[pc], pc, vc, refVC, post)
		if err != nil {
			return nil, err
		}
		vc[pc] = logic.NormPred(p)
	}

	res := &Result{VCs: vc}
	res.Obligations = append(res.Obligations, Obligation{
		PC:     0,
		Assume: logic.NormPred(pre),
		VC:     vc[0],
	})
	cuts := make([]int, 0, len(invariants))
	for pc := range invariants {
		cuts = append(cuts, pc)
	}
	sort.Ints(cuts)
	for _, pc := range cuts {
		res.Obligations = append(res.Obligations, Obligation{
			PC:     pc,
			Assume: logic.NormPred(invariants[pc]),
			VC:     vc[pc],
		})
	}

	conjuncts := make([]logic.Pred, len(res.Obligations))
	for i, ob := range res.Obligations {
		conjuncts[i] = logic.Implies(ob.Assume, ob.VC)
	}
	sp := logic.AllOf(RegNames(), logic.Conj(conjuncts...))
	res.SP = logic.NormPred(sp)
	return res, nil
}

// instrVC implements the per-instruction rules of Figure 4 (extended to
// the full subset).
func instrVC(ins alpha.Instr, pc int, vc []logic.Pred,
	refVC func(from, to int) (logic.Pred, error), post logic.Pred) (logic.Pred, error) {

	next := vc[pc+1]
	regName := func(r alpha.Reg) (string, error) {
		if r == alpha.RegZero {
			return "", fmt.Errorf("vcgen: pc %d: write to r31", pc)
		}
		return fmt.Sprintf("r%d", r), nil
	}

	switch ins.Op {
	case alpha.LDQ:
		addr := logic.Add(RegVar(ins.Rb), logic.CI(int64(ins.Disp)))
		rd, err := regName(ins.Ra)
		if err != nil {
			return nil, err
		}
		return logic.And{
			L: logic.RdP(addr),
			R: logic.Subst(next, rd, logic.SelE(MemVar, addr)),
		}, nil

	case alpha.STQ:
		addr := logic.Add(RegVar(ins.Rb), logic.CI(int64(ins.Disp)))
		return logic.And{
			L: logic.WrP(addr),
			R: logic.Subst(next, "rm", logic.UpdE(MemVar, addr, RegVar(ins.Ra))),
		}, nil

	case alpha.LDA:
		rd, err := regName(ins.Ra)
		if err != nil {
			return nil, err
		}
		val := logic.Add(RegVar(ins.Rb), logic.CI(int64(ins.Disp)))
		return logic.Subst(next, rd, val), nil

	case alpha.ADDQ, alpha.SUBQ, alpha.MULQ, alpha.AND, alpha.BIS, alpha.XOR,
		alpha.SLL, alpha.SRL, alpha.CMPEQ, alpha.CMPULT, alpha.CMPULE:
		rd, err := regName(ins.Rc)
		if err != nil {
			return nil, err
		}
		var opnd logic.Expr
		if ins.HasLit {
			opnd = logic.C(uint64(ins.Lit))
		} else {
			opnd = RegVar(ins.Rb)
		}
		val := logic.Bin{Op: aluBinOp(ins.Op), L: RegVar(ins.Ra), R: opnd}
		return logic.Subst(next, rd, val), nil

	case alpha.BEQ, alpha.BNE, alpha.BGE, alpha.BLT:
		taken, notTaken := branchConds(ins)
		target, err := refVC(pc, ins.Target)
		if err != nil {
			return nil, err
		}
		return logic.And{
			L: logic.Implies(taken, target),
			R: logic.Implies(notTaken, next),
		}, nil

	case alpha.BR:
		return refVC(pc, ins.Target)

	case alpha.RET:
		return logic.NormPred(post), nil
	}
	return nil, fmt.Errorf("vcgen: pc %d: unsupported op %v", pc, ins.Op)
}

func aluBinOp(op alpha.Op) logic.BinOp {
	switch op {
	case alpha.ADDQ:
		return logic.OpAdd
	case alpha.SUBQ:
		return logic.OpSub
	case alpha.MULQ:
		return logic.OpMul
	case alpha.AND:
		return logic.OpAnd
	case alpha.BIS:
		return logic.OpOr
	case alpha.XOR:
		return logic.OpXor
	case alpha.SLL:
		return logic.OpShl
	case alpha.SRL:
		return logic.OpShr
	case alpha.CMPEQ:
		return logic.OpCmpEq
	case alpha.CMPULT:
		return logic.OpCmpUlt
	case alpha.CMPULE:
		return logic.OpCmpUle
	}
	panic(fmt.Sprintf("vcgen: not an ALU op: %v", op))
}

// branchConds returns the taken and not-taken conditions of a
// conditional branch. Signedness is expressed over the unsigned order:
// ra ≥s 0 ⇔ ra <u 2^63.
func branchConds(ins alpha.Instr) (taken, notTaken logic.Pred) {
	ra := RegVar(ins.Ra)
	signBit := logic.C(1 << 63)
	switch ins.Op {
	case alpha.BEQ:
		return logic.Eq(ra, logic.C(0)), logic.Ne(ra, logic.C(0))
	case alpha.BNE:
		return logic.Ne(ra, logic.C(0)), logic.Eq(ra, logic.C(0))
	case alpha.BGE:
		return logic.Ult(ra, signBit), logic.Ule(signBit, ra)
	case alpha.BLT:
		return logic.Ule(signBit, ra), logic.Ult(ra, signBit)
	}
	panic(fmt.Sprintf("vcgen: not a conditional branch: %v", ins.Op))
}
