package vcgen

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/logic"
	"repro/internal/policy"
)

const resourceSrc = `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
`

func TestFigure5VC(t *testing.T) {
	a := alpha.MustAssemble(resourceSrc)
	pol := policy.ResourceAccess()
	res, err := Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obligations) != 1 {
		t.Fatalf("obligations = %d, want 1", len(res.Obligations))
	}
	// The paper's SP_r (§2.2), after trivial simplifications:
	//   ∀r0.∀rm. Pre_r ⇒ rd(r0⊕8) ∧ rd(r0) ∧ (sel(rm,r0)≠0 ⇒ wr(r0⊕8))
	// (our VC lists rd(r0⊕8) first because instruction 1 loads the
	// data word before instruction 2 loads the tag).
	vc := res.Obligations[0].VC
	r0 := logic.V("r0")
	want := logic.NormPred(logic.Conj(
		logic.RdP(logic.Add(r0, logic.C(8))),
		logic.RdP(r0),
		logic.Implies(
			logic.Ne(logic.SelE(logic.V("rm"), r0), logic.C(0)),
			logic.WrP(logic.Add(r0, logic.C(8))),
		),
	))
	if !logic.PredEqual(vc, want) {
		t.Fatalf("VC0 =\n  %s\nwant\n  %s", vc, want)
	}
	// SP must be closed.
	if fv := logic.SortedFreeVars(res.SP); len(fv) != 0 {
		t.Fatalf("SP has free variables %v", fv)
	}
}

func TestRegisterReuseAndScheduling(t *testing.T) {
	// §2.2 highlights that the speculative load in line 2, the reuse of
	// r0, and addressing through r1 must not change the (normalized)
	// safety predicate. A naive un-scheduled variant must yield an
	// alpha-equivalent SP.
	naive := alpha.MustAssemble(`
        LDQ   r2, 0(r0)      ; tag
        ADDQ  r0, 8, r1      ; address of data
        LDQ   r3, 0(r1)      ; data
        ADDQ  r3, 1, r3
        BEQ   r2, L1
        STQ   r3, 0(r1)
L1:     RET
	`)
	sched := alpha.MustAssemble(resourceSrc)
	pol := policy.ResourceAccess()
	a, err := Gen(naive.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gen(sched.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The obligations differ in conjunct order (the naive version reads
	// the tag first), so compare the *sets* of atomic requirements via
	// string rendering of each conjunct.
	set := func(p logic.Pred) map[string]bool {
		out := map[string]bool{}
		imp := p.(logic.Imp)
		for _, c := range logic.Conjuncts(imp.R) {
			out[c.String()] = true
		}
		return out
	}
	sa := set(stripForalls(a.SP))
	sb := set(stripForalls(b.SP))
	if len(sa) != len(sb) {
		t.Fatalf("different requirement counts: %v vs %v", sa, sb)
	}
	for k := range sa {
		if !sb[k] {
			t.Errorf("scheduled version missing %q", k)
		}
	}
}

func stripForalls(p logic.Pred) logic.Pred {
	for {
		fa, ok := p.(logic.Forall)
		if !ok {
			return p
		}
		p = fa.Body
	}
}

func TestBranchVC(t *testing.T) {
	// BEQ splits the VC into taken/not-taken implications (Figure 4).
	a := alpha.MustAssemble(`
        BEQ  r0, L1
        LDQ  r1, 0(r2)
L1:     RET
	`)
	res, err := Gen(a.Prog, logic.True, logic.True, nil)
	if err != nil {
		t.Fatal(err)
	}
	vc := res.Obligations[0].VC
	want := logic.NormPred(logic.Implies(
		logic.Ne(logic.V("r0"), logic.C(0)),
		logic.RdP(logic.V("r2")),
	))
	if !logic.PredEqual(vc, want) {
		t.Fatalf("VC = %s, want %s", vc, want)
	}
}

func TestSignedBranchVC(t *testing.T) {
	a := alpha.MustAssemble(`
        BGE  r0, L1
        RET
L1:     LDQ  r1, 0(r2)
        RET
	`)
	res, err := Gen(a.Prog, logic.True, logic.True, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Obligations[0].VC.String()
	if !strings.Contains(s, "rd(r2)") {
		t.Fatalf("VC lost the guarded load: %s", s)
	}
	// The taken condition must be r0 <u 2^63.
	if !strings.Contains(s, "9223372036854775808") && !strings.Contains(s, "0x8000000000000000") {
		t.Fatalf("VC lacks sign-bit condition: %s", s)
	}
}

func TestBackwardBranchNeedsInvariant(t *testing.T) {
	src := `
loop:   SUBQ r0, 1, r0
        BNE  r0, loop
        RET
	`
	a := alpha.MustAssemble(src)
	if _, err := Gen(a.Prog, logic.True, logic.True, nil); err == nil {
		t.Fatal("backward branch accepted without invariant")
	}
	inv := map[int]logic.Pred{0: logic.True}
	res, err := Gen(a.Prog, logic.True, logic.True, inv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obligations) != 2 {
		t.Fatalf("obligations = %d, want 2 (entry + loop head)", len(res.Obligations))
	}
}

func TestLoopInvariantVC(t *testing.T) {
	// A loop reading successive packet words: the invariant must imply
	// the in-loop rd() check. Registers: r1 packet, r2 len, r4 offset.
	src := `
loop:   LDQ   r5, 0(r6)      ; read word at r6 = r1 + r4
        ADDQ  r4, 8, r4
        ADDQ  r6, 8, r6
        CMPULT r4, r2, r7
        BNE   r7, check
        RET
check:  BR    loop
	`
	a := alpha.MustAssemble(src)
	inv := logic.Conj(
		logic.Ult(logic.V("r4"), logic.V("r2")),
		logic.Eq(logic.V("r6"), logic.Add(logic.V("r1"), logic.V("r4"))),
	)
	res, err := Gen(a.Prog, inv, logic.True, map[int]logic.Pred{0: inv})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obligations) != 2 {
		t.Fatalf("obligations = %d", len(res.Obligations))
	}
	// Both obligations assume the invariant here (entry Pre == Inv).
	for _, ob := range res.Obligations {
		if !strings.Contains(ob.VC.String(), "rd(") {
			t.Errorf("obligation at pc %d lost the rd check: %s", ob.PC, ob.VC)
		}
	}
}

func TestPostconditionAtRet(t *testing.T) {
	a := alpha.MustAssemble("MOV 1, r0\nRET")
	post := logic.Eq(logic.V("r0"), logic.C(1))
	res, err := Gen(a.Prog, logic.True, post, nil)
	if err != nil {
		t.Fatal(err)
	}
	// VC0 = (1 = 1) which normalizes to true, so SP = true.
	if !logic.PredEqual(res.SP, logic.True) {
		t.Fatalf("SP = %s, want true", res.SP)
	}

	post2 := logic.Eq(logic.V("r0"), logic.C(2))
	res2, err := Gen(a.Prog, logic.True, post2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !logic.PredEqual(res2.SP, logic.False) {
		t.Fatalf("SP = %s, want false", res2.SP)
	}
}

func TestFallThroughEndUsesPost(t *testing.T) {
	a := alpha.MustAssemble("ADDQ r0, 1, r0")
	post := logic.Eq(logic.V("r0"), logic.C(5))
	res, err := Gen(a.Prog, logic.Eq(logic.V("r0"), logic.C(4)), post, nil)
	if err != nil {
		t.Fatal(err)
	}
	// VC0 = (r0 ⊕ 1 = 5); obligation r0=4 ⇒ r0⊕1=5.
	want := logic.NormPred(logic.Eq(logic.Add(logic.V("r0"), logic.C(1)), logic.C(5)))
	if !logic.PredEqual(res.Obligations[0].VC, want) {
		t.Fatalf("VC = %s, want %s", res.Obligations[0].VC, want)
	}
}

func TestCmpResultInVC(t *testing.T) {
	a := alpha.MustAssemble(`
        CMPULT r4, r2, r5
        BEQ    r5, out
        LDQ    r0, 0(r4)
out:    RET
	`)
	res, err := Gen(a.Prog, logic.True, logic.True, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Obligations[0].VC.String()
	if !strings.Contains(s, "cmpult(r4, r2)") {
		t.Fatalf("VC lost compare expression: %s", s)
	}
}

func TestRejectsWriteToR31(t *testing.T) {
	prog := []alpha.Instr{
		{Op: alpha.ADDQ, Ra: 0, HasLit: true, Lit: 1, Rc: alpha.RegZero},
		{Op: alpha.RET},
	}
	if _, err := Gen(prog, logic.True, logic.True, nil); err == nil {
		t.Fatal("write to r31 accepted")
	}
}

func TestInvariantOutsideProgramRejected(t *testing.T) {
	a := alpha.MustAssemble("RET")
	_, err := Gen(a.Prog, logic.True, logic.True, map[int]logic.Pred{5: logic.True})
	if err == nil {
		t.Fatal("out-of-range invariant accepted")
	}
}

func TestStoreSubstitutesMemory(t *testing.T) {
	// After STQ, a subsequent load's value must be sel(upd(...)).
	a := alpha.MustAssemble(`
        STQ  r1, 0(r3)
        LDQ  r0, 0(r3)
        RET
	`)
	post := logic.Eq(logic.V("r0"), logic.V("r1"))
	res, err := Gen(a.Prog, logic.WrP(logic.V("r3")), post, nil)
	if err != nil {
		t.Fatal(err)
	}
	// sel(upd(rm,r3,r1), r3) normalizes to r1, so the post obligation
	// collapses and only wr/rd checks remain.
	vc := res.Obligations[0].VC
	for _, c := range logic.Conjuncts(vc) {
		if strings.Contains(c.String(), "sel") {
			t.Fatalf("store/load pair not folded: %s", vc)
		}
	}
}

func TestPacketFilterPolicyVCMentionsReads(t *testing.T) {
	a := alpha.MustAssemble(`
        LDQ  r4, 8(r1)
        RET
	`)
	pol := policy.PacketFilter()
	res, err := Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SP.String(), "rd((r1 + 8))") {
		t.Fatalf("SP missing packet read obligation:\n%s", logic.Pretty(res.SP))
	}
}

func TestVCsFieldExposed(t *testing.T) {
	a := alpha.MustAssemble(resourceSrc)
	pol := policy.ResourceAccess()
	res, err := Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VCs) != len(a.Prog)+1 {
		t.Fatalf("VCs length %d, want %d", len(res.VCs), len(a.Prog)+1)
	}
	// The final slot is the postcondition; the STQ's is the wr check.
	if !logic.PredEqual(res.VCs[len(a.Prog)], logic.True) {
		t.Errorf("end VC = %s", res.VCs[len(a.Prog)])
	}
	if !logic.PredEqual(res.VCs[5], logic.WrP(logic.V("r1"))) {
		t.Errorf("VC[5] = %s, want wr(r1)", res.VCs[5])
	}
	if !logic.PredEqual(res.VCs[0], res.Obligations[0].VC) {
		t.Errorf("VC[0] disagrees with the entry obligation")
	}
}
