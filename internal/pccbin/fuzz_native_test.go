package pccbin

import (
	"testing"

	"repro/internal/lf"
)

// Native fuzz target for the untrusted-input parser: Unmarshal must
// never panic, and anything it accepts must re-marshal and re-parse to
// an equal binary.
func FuzzUnmarshal(f *testing.F) {
	b := &Binary{
		PolicyName: "packet-filter/v1",
		Code:       []byte{1, 2, 3, 4},
		Proof: lf.Apply(lf.Konst{Name: lf.CAndI},
			lf.Konst{Name: lf.CTT}, lf.Konst{Name: lf.CTT},
			lf.Konst{Name: lf.CTrueI}, lf.Konst{Name: lf.CTrueI}),
	}
	data, _, err := b.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("PCC1"))
	f.Add([]byte{})
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, in []byte) {
		bin, err := Unmarshal(in)
		if err != nil {
			return
		}
		out, _, err := bin.Marshal()
		if err != nil {
			t.Fatalf("accepted binary does not re-marshal: %v", err)
		}
		again, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshaled binary does not parse: %v", err)
		}
		if again.PolicyName != bin.PolicyName || len(again.Code) != len(bin.Code) {
			t.Fatal("re-marshal changed the binary")
		}
	})
}
