package pccbin

import (
	"math/rand"
	"testing"

	"repro/internal/lf"
	"repro/internal/logic"
)

// Property tests for the binary codec over randomly generated LF terms
// (obtained by encoding random predicates, which exercises every tag
// except the sorts).

var rtVars = []string{"r0", "r1", "r2", "rm"}

func randExpr(r *rand.Rand, depth int) logic.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return logic.C(r.Uint64() >> uint(r.Intn(60)))
		}
		return logic.V(rtVars[r.Intn(len(rtVars)-1)]) // not rm in word position
	}
	switch r.Intn(8) {
	case 0:
		return logic.SelE(logic.V("rm"), randExpr(r, depth-1))
	case 1:
		return logic.SelE(
			logic.UpdE(logic.V("rm"), randExpr(r, depth-1), randExpr(r, depth-1)),
			randExpr(r, depth-1))
	default:
		ops := []logic.BinOp{logic.OpAdd, logic.OpSub, logic.OpAnd, logic.OpOr,
			logic.OpXor, logic.OpShl, logic.OpShr, logic.OpCmpEq, logic.OpCmpUlt}
		return logic.Bin{Op: ops[r.Intn(len(ops))], L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	}
}

func randPred(r *rand.Rand, depth int) logic.Pred {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			return logic.True
		case 1:
			return logic.RdP(randExpr(r, 2))
		case 2:
			return logic.WrP(randExpr(r, 2))
		default:
			ops := []logic.CmpOp{logic.CmpEq, logic.CmpNe, logic.CmpUlt, logic.CmpUle}
			return logic.Cmp{Op: ops[r.Intn(len(ops))], L: randExpr(r, 2), R: randExpr(r, 2)}
		}
	}
	switch r.Intn(4) {
	case 0:
		return logic.And{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	case 1:
		return logic.Or{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	case 2:
		return logic.Imp{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	default:
		return logic.Forall{Var: "i", Body: randPred(r, depth-1)}
	}
}

func TestRandomTermRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 1500; trial++ {
		p := randPred(r, 4)
		term, err := lf.EncodeStatePred(p)
		if err != nil {
			t.Fatalf("encode %s: %v", p, err)
		}
		inv, err := lf.EncodeStatePred(randPred(r, 3))
		if err != nil {
			t.Fatal(err)
		}
		b := &Binary{
			PolicyName: "fuzz/v1",
			Code:       []byte{1, 2, 3, 4},
			Invariants: []Invariant{{PC: 0, Pred: inv}},
			Proof:      term,
		}
		data, layout, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if layout.Total != len(data) {
			t.Fatalf("layout total mismatch")
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !lf.Equal(got.Proof, term) {
			t.Fatalf("proof changed:\n in:  %s\n out: %s", term, got.Proof)
		}
		if !lf.Equal(got.Invariants[0].Pred, inv) {
			t.Fatalf("invariant changed")
		}
	}
}

func TestSharingShrinksRepeatedSubterms(t *testing.T) {
	// A term with massive repetition must compress dramatically.
	leaf, err := lf.EncodeStatePred(logic.RdP(logic.Add(logic.V("r1"), logic.C(123456))))
	if err != nil {
		t.Fatal(err)
	}
	big := leaf
	for i := 0; i < 10; i++ {
		big = lf.App{F: lf.App{F: lf.Konst{Name: lf.CAnd}, X: big}, X: big}
	}
	b := &Binary{PolicyName: "x", Proof: big}
	data, layout, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tree := TreeEncodedSize(big)
	if layout.ProofLen*100 > tree {
		t.Fatalf("sharing too weak: DAG %d vs tree %d bytes", layout.ProofLen, tree)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !lf.Equal(got.Proof, big) {
		t.Fatal("round trip changed the shared term")
	}
}

func TestRefCannotPointForward(t *testing.T) {
	// Hand-craft a binary whose proof is a bare forward reference.
	b := &Binary{PolicyName: "x", Proof: lf.Konst{Name: lf.CTT}}
	data, lay, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The proof section is the last byte run: tagKonst + symbol 0.
	// Replace with tagRef + index 5 (beyond anything decoded).
	mut := append([]byte(nil), data[:lay.ProofOff]...)
	mut = append(mut, tagRef, 5)
	if _, err := Unmarshal(mut); err == nil {
		t.Fatal("forward/out-of-range reference accepted")
	}
}
