// Package pccbin implements the PCC binary format of §2.3 and Figure 7:
// a native-code section holding genuine Alpha machine code "ready to be
// mapped into memory and executed", a relocation section (the symbol
// table used to reconstruct the LF representation at the consumer
// site), and a proof section holding the binary encoding of the LF
// proof term. Binaries for looping programs additionally carry the §4
// invariant table mapping each backward-branch target to its loop
// invariant.
package pccbin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/lf"
	"repro/internal/logic"
)

// ErrLimit is the sentinel all decode resource-budget rejections match
// via errors.Is: the input blew a configured parsing budget (term
// nodes or nesting depth), as opposed to being structurally malformed.
var ErrLimit = errors.New("pccbin: resource limit exceeded")

// LimitError is a typed decode-budget rejection.
type LimitError struct {
	// Axis is "term_nodes" or "term_depth".
	Axis string
	// Max is the exhausted budget.
	Max int
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("pccbin: %s limit exceeded (max %d)", e.Axis, e.Max)
}

// Is makes errors.Is(err, ErrLimit) match.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// Limits bounds the term decoder. Zero fields fall back to the
// package defaults (maxTermNodes, maxTermDepth).
type Limits struct {
	// MaxTermNodes bounds total decoded LF nodes across the invariant
	// table and the proof.
	MaxTermNodes int
	// MaxTermDepth bounds term nesting while decoding.
	MaxTermDepth int
}

// Magic identifies PCC binaries.
var Magic = [4]byte{'P', 'C', 'C', '1'}

// Invariant is one entry of the loop-invariant table: the instruction
// index of a backward-branch target and its invariant, stored in the
// same LF encoding as the proof.
type Invariant struct {
	PC   int
	Pred lf.Term
}

// Binary is a parsed PCC binary.
type Binary struct {
	// PolicyName names the safety policy the proof certifies; the
	// consumer refuses binaries for policies it did not publish.
	PolicyName string
	// SigHash fingerprints the LF signature (proof rules) the proof
	// was built against; the consumer refuses binaries whose rule set
	// differs from its own published one.
	SigHash uint64
	// Code is the native Alpha machine code (little-endian words).
	Code []byte
	// Invariants is the loop-invariant table (empty for the loop-free
	// programs of §3).
	Invariants []Invariant
	// Symbols is the relocation section: the signature constants
	// referenced by the proof, in first-use order.
	Symbols []string
	// Proof is the LF proof term of the program's safety predicate.
	Proof lf.Term
	// ProofBytes is the encoded size of the proof section, recorded by
	// Unmarshal so a consumer can enforce a certificate-size budget
	// (certificate size is the checking cost an attacker can most
	// directly inflate). Not meaningful on producer-built Binaries
	// until they round-trip through Marshal/Unmarshal.
	ProofBytes int
}

// Layout reports the byte layout of a marshaled binary, mirroring
// Figure 7 of the paper.
type Layout struct {
	CodeOff, CodeLen   int
	InvOff, InvLen     int
	RelocOff, RelocLen int
	ProofOff, ProofLen int
	Total              int
}

// String renders the layout in the style of Figure 7.
func (l Layout) String() string {
	return fmt.Sprintf(
		"native code [%d,%d) | relocation [%d,%d) | invariants [%d,%d) | proof [%d,%d) | total %d bytes",
		l.CodeOff, l.CodeOff+l.CodeLen,
		l.RelocOff, l.RelocOff+l.RelocLen,
		l.InvOff, l.InvOff+l.InvLen,
		l.ProofOff, l.ProofOff+l.ProofLen, l.Total)
}

// term encoding tags. Proof terms are serialized as hash-consed DAGs:
// every serialized node receives an index in post-order, and later
// occurrences of a structurally identical subterm are emitted as a
// tagRef back-reference. Safety predicates repeat heavily inside
// proofs (every introduction rule carries its predicate arguments), so
// sharing shrinks the proof section by an order of magnitude — one of
// the §2.3 "optimizations in the representation of the proofs".
const (
	tagKonst = iota
	tagBound
	tagLit
	tagApp
	tagLam
	tagPi
	tagSortType
	tagSortKind
	tagRef
)

// collectSymbols gathers signature constants in deterministic
// first-use order across the proof and invariant predicates.
func collectSymbols(b *Binary) []string {
	seen := map[string]bool{}
	var order []string
	var walk func(t lf.Term)
	walk = func(t lf.Term) {
		switch t := t.(type) {
		case lf.Konst:
			if !seen[t.Name] {
				seen[t.Name] = true
				order = append(order, t.Name)
			}
		case lf.App:
			walk(t.F)
			walk(t.X)
		case lf.Lam:
			walk(t.A)
			walk(t.M)
		case lf.Pi:
			walk(t.A)
			walk(t.B)
		}
	}
	for _, inv := range b.Invariants {
		walk(inv.Pred)
	}
	walk(b.Proof)
	return order
}

func writeUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// termWriter serializes terms with hash-consing. The `seen` map relies
// on lf.Term values being comparable structs, so lookup is structural
// equality. Indexes are assigned in post-order (children before
// parents), matching the reader.
type termWriter struct {
	buf  *bytes.Buffer
	sym  map[string]int
	seen map[lf.Term]int
}

func (w *termWriter) write(t lf.Term) error {
	if idx, ok := w.seen[t]; ok {
		w.buf.WriteByte(tagRef)
		writeUvarint(w.buf, uint64(idx))
		return nil
	}
	switch t := t.(type) {
	case lf.Konst:
		idx, ok := w.sym[t.Name]
		if !ok {
			return fmt.Errorf("pccbin: symbol %q missing from table", t.Name)
		}
		w.buf.WriteByte(tagKonst)
		writeUvarint(w.buf, uint64(idx))
	case lf.Bound:
		w.buf.WriteByte(tagBound)
		writeUvarint(w.buf, uint64(t.Idx))
	case lf.Lit:
		w.buf.WriteByte(tagLit)
		writeUvarint(w.buf, t.V)
	case lf.App:
		w.buf.WriteByte(tagApp)
		if err := w.write(t.F); err != nil {
			return err
		}
		if err := w.write(t.X); err != nil {
			return err
		}
	case lf.Lam:
		w.buf.WriteByte(tagLam)
		if err := w.write(t.A); err != nil {
			return err
		}
		if err := w.write(t.M); err != nil {
			return err
		}
	case lf.Pi:
		w.buf.WriteByte(tagPi)
		if err := w.write(t.A); err != nil {
			return err
		}
		if err := w.write(t.B); err != nil {
			return err
		}
	case lf.Sort:
		if t == lf.SType {
			w.buf.WriteByte(tagSortType)
		} else {
			w.buf.WriteByte(tagSortKind)
		}
	default:
		return fmt.Errorf("pccbin: cannot encode term %T", t)
	}
	w.seen[t] = len(w.seen)
	return nil
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) u8() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("pccbin: truncated binary")
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("pccbin: bad varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("pccbin: truncated section at offset %d", r.pos)
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

const maxTermNodes = 1 << 22 // parser bomb guard

// maxTermDepth bounds recursion while parsing proof terms. Legitimate
// proofs nest a few hundred levels at most (quantifier prefix + proof
// tree height); a malicious producer could otherwise craft a
// right-leaning spine that overflows the consumer's stack — the
// parser, like the rest of the consumer, must be robust against
// adversarial binaries.
const maxTermDepth = 4096

// termReader mirrors termWriter: it assigns post-order indexes to the
// terms it decodes and resolves back-references against them.
type termReader struct {
	r        *reader
	syms     []string
	table    []lf.Term
	budget   int
	maxNodes int
	maxDepth int
	depth    int
}

func (tr *termReader) read() (lf.Term, error) {
	tr.budget--
	if tr.budget < 0 {
		return nil, &LimitError{Axis: "term_nodes", Max: tr.maxNodes}
	}
	tr.depth++
	defer func() { tr.depth-- }()
	if tr.depth > tr.maxDepth {
		return nil, &LimitError{Axis: "term_depth", Max: tr.maxDepth}
	}
	tag, err := tr.r.u8()
	if err != nil {
		return nil, err
	}
	if tag == tagRef {
		idx, err := tr.r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= uint64(len(tr.table)) {
			return nil, fmt.Errorf("pccbin: forward term reference %d", idx)
		}
		return tr.table[idx], nil
	}
	var t lf.Term
	switch tag {
	case tagKonst:
		idx, err := tr.r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= uint64(len(tr.syms)) {
			return nil, fmt.Errorf("pccbin: symbol index %d out of range", idx)
		}
		t = lf.Konst{Name: tr.syms[idx]}
	case tagBound:
		idx, err := tr.r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx > 1<<20 {
			return nil, fmt.Errorf("pccbin: absurd de Bruijn index %d", idx)
		}
		t = lf.Bound{Idx: int(idx)}
	case tagLit:
		v, err := tr.r.uvarint()
		if err != nil {
			return nil, err
		}
		t = lf.Lit{V: v}
	case tagApp, tagLam, tagPi:
		a, err := tr.read()
		if err != nil {
			return nil, err
		}
		b, err := tr.read()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagApp:
			t = lf.App{F: a, X: b}
		case tagLam:
			t = lf.Lam{A: a, M: b}
		default:
			t = lf.Pi{A: a, B: b}
		}
	case tagSortType:
		t = lf.SType
	case tagSortKind:
		t = lf.SKind
	default:
		return nil, fmt.Errorf("pccbin: unknown term tag %d", tag)
	}
	tr.table = append(tr.table, t)
	return t, nil
}

// TreeEncodedSize returns the number of bytes the term would occupy
// without DAG sharing — the naive tree encoding. Used by the ablation
// benchmarks to quantify what hash-consing buys (§2.3: "we have
// implemented several optimizations in the representation of the
// proofs").
func TreeEncodedSize(t lf.Term) int {
	var uv = func(v uint64) int {
		n := 1
		for v >= 0x80 {
			v >>= 7
			n++
		}
		return n
	}
	switch t := t.(type) {
	case lf.Konst:
		return 1 + uv(64) // tag + typical symbol index width
	case lf.Bound:
		return 1 + uv(uint64(t.Idx))
	case lf.Lit:
		return 1 + uv(t.V)
	case lf.App:
		return 1 + TreeEncodedSize(t.F) + TreeEncodedSize(t.X)
	case lf.Lam:
		return 1 + TreeEncodedSize(t.A) + TreeEncodedSize(t.M)
	case lf.Pi:
		return 1 + TreeEncodedSize(t.A) + TreeEncodedSize(t.B)
	case lf.Sort:
		return 1
	}
	return 0
}

// Marshal serializes the binary and reports its Figure 7 layout. The
// symbol table is (re)computed from the proof and invariants.
func (b *Binary) Marshal() ([]byte, Layout, error) {
	b.Symbols = collectSymbols(b)
	sym := make(map[string]int, len(b.Symbols))
	for i, s := range b.Symbols {
		sym[s] = i
	}

	var w bytes.Buffer
	var lay Layout
	w.Write(Magic[:])
	writeUvarint(&w, uint64(len(b.PolicyName)))
	w.WriteString(b.PolicyName)
	writeUvarint(&w, b.SigHash)

	lay.CodeOff = w.Len()
	writeUvarint(&w, uint64(len(b.Code)))
	w.Write(b.Code)
	lay.CodeLen = w.Len() - lay.CodeOff

	lay.RelocOff = w.Len()
	writeUvarint(&w, uint64(len(b.Symbols)))
	for _, s := range b.Symbols {
		writeUvarint(&w, uint64(len(s)))
		w.WriteString(s)
	}
	lay.RelocLen = w.Len() - lay.RelocOff

	tw := &termWriter{buf: &w, sym: sym, seen: map[lf.Term]int{}}

	lay.InvOff = w.Len()
	invs := append([]Invariant(nil), b.Invariants...)
	sort.Slice(invs, func(i, j int) bool { return invs[i].PC < invs[j].PC })
	writeUvarint(&w, uint64(len(invs)))
	for _, inv := range invs {
		writeUvarint(&w, uint64(inv.PC))
		if err := tw.write(inv.Pred); err != nil {
			return nil, Layout{}, err
		}
	}
	lay.InvLen = w.Len() - lay.InvOff

	lay.ProofOff = w.Len()
	if err := tw.write(b.Proof); err != nil {
		return nil, Layout{}, err
	}
	lay.ProofLen = w.Len() - lay.ProofOff
	lay.Total = w.Len()
	return w.Bytes(), lay, nil
}

// Unmarshal parses a PCC binary under the default decode limits. It
// is deliberately paranoid: PCC binaries come from untrusted
// producers.
func Unmarshal(data []byte) (*Binary, error) {
	return UnmarshalWithLimits(data, Limits{})
}

// UnmarshalWithLimits parses a PCC binary with caller-supplied decode
// budgets (zero fields use the package defaults). Budget violations
// are typed LimitErrors matching ErrLimit, so a consumer can count
// them separately from structural malformation.
func UnmarshalWithLimits(data []byte, lim Limits) (*Binary, error) {
	if lim.MaxTermNodes <= 0 {
		lim.MaxTermNodes = maxTermNodes
	}
	if lim.MaxTermDepth <= 0 {
		lim.MaxTermDepth = maxTermDepth
	}
	r := &reader{buf: data}
	magic, err := r.bytes(4)
	if err != nil || !bytes.Equal(magic, Magic[:]) {
		return nil, fmt.Errorf("pccbin: bad magic")
	}
	b := &Binary{}

	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	name, err := r.bytes(int(n))
	if err != nil {
		return nil, err
	}
	b.PolicyName = string(name)

	b.SigHash, err = r.uvarint()
	if err != nil {
		return nil, err
	}

	n, err = r.uvarint()
	if err != nil {
		return nil, err
	}
	code, err := r.bytes(int(n))
	if err != nil {
		return nil, err
	}
	b.Code = append([]byte(nil), code...)

	nSym, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nSym > 1<<16 {
		return nil, fmt.Errorf("pccbin: absurd symbol count %d", nSym)
	}
	for i := uint64(0); i < nSym; i++ {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if l > 256 {
			return nil, fmt.Errorf("pccbin: absurd symbol length %d", l)
		}
		s, err := r.bytes(int(l))
		if err != nil {
			return nil, err
		}
		b.Symbols = append(b.Symbols, string(s))
	}

	nInv, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nInv > 1<<16 {
		return nil, fmt.Errorf("pccbin: absurd invariant count %d", nInv)
	}
	tr := &termReader{
		r: r, syms: b.Symbols,
		budget:   lim.MaxTermNodes,
		maxNodes: lim.MaxTermNodes,
		maxDepth: lim.MaxTermDepth,
	}
	for i := uint64(0); i < nInv; i++ {
		pc, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if pc > uint64(len(b.Code)/4) {
			return nil, fmt.Errorf("pccbin: invariant pc %d beyond code", pc)
		}
		pred, err := tr.read()
		if err != nil {
			return nil, err
		}
		b.Invariants = append(b.Invariants, Invariant{PC: int(pc), Pred: pred})
	}

	proofStart := r.pos
	proof, err := tr.read()
	if err != nil {
		return nil, err
	}
	b.Proof = proof
	b.ProofBytes = r.pos - proofStart
	if r.pos != len(data) {
		return nil, fmt.Errorf("pccbin: %d trailing bytes", len(data)-r.pos)
	}
	return b, nil
}

// DecodeInvariants converts the invariant table to the map form the VC
// generator consumes.
func (b *Binary) DecodeInvariants() (map[int]logic.Pred, error) {
	if len(b.Invariants) == 0 {
		return nil, nil
	}
	out := make(map[int]logic.Pred, len(b.Invariants))
	for _, inv := range b.Invariants {
		p, err := lf.DecodePred(inv.Pred)
		if err != nil {
			return nil, fmt.Errorf("pccbin: invariant at pc %d: %w", inv.PC, err)
		}
		out[inv.PC] = p
	}
	return out, nil
}
