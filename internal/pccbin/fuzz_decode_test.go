package pccbin

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/lf"
)

// fuzzDecodeLimits are deliberately tight so hand-crafted resource
// bombs in the input die fast and the fuzzer spends its budget on the
// parser, not the bombs.
var fuzzDecodeLimits = Limits{MaxTermNodes: 1 << 16, MaxTermDepth: 256}

// fuzzSeedBinary builds a binary exercising every wire section: policy
// name, code, a two-entry invariant table, a symbol table, and a
// DAG-shared proof.
func fuzzSeedBinary() *Binary {
	andTT := lf.Apply(lf.Konst{Name: lf.CAnd}, lf.Konst{Name: lf.CTT}, lf.Konst{Name: lf.CTT})
	return &Binary{
		PolicyName: "packet-filter/v1",
		SigHash:    0xDEADBEEF,
		Code:       []byte{0x0c, 0x21, 0x7f, 0x20, 0x01, 0x80, 0xfa, 0x6b},
		Invariants: []Invariant{
			{PC: 2, Pred: andTT},
			{PC: 5, Pred: lf.Konst{Name: lf.CTT}},
		},
		Proof: lf.Apply(lf.Konst{Name: lf.CAndI},
			lf.Konst{Name: lf.CTT}, lf.Konst{Name: lf.CTT},
			lf.Konst{Name: lf.CTrueI}, lf.Konst{Name: lf.CTrueI}),
	}
}

// FuzzDecodeBinary is the native fuzz target for the full
// untrusted-input decode path under resource limits: whatever bytes
// arrive, UnmarshalWithLimits must return a verdict (never panic),
// limit rejections must carry their typed LimitError detail, and
// anything accepted must decode its invariant table cleanly or reject
// it with a typed error, then survive a marshal/re-parse round trip
// unchanged. Seed corpus: testdata/fuzz/FuzzDecodeBinary.
func FuzzDecodeBinary(f *testing.F) {
	data, _, err := fuzzSeedBinary().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	flip := append([]byte(nil), data...)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)
	f.Add([]byte("PCC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		bin, err := UnmarshalWithLimits(in, fuzzDecodeLimits)
		if err != nil {
			var le *LimitError
			if errors.Is(err, ErrLimit) && !errors.As(err, &le) {
				t.Fatalf("limit rejection without LimitError detail: %v", err)
			}
			return
		}
		// Invariant terms that decode as wire data may still not be
		// state predicates; that is a clean rejection — the call only
		// must not panic (the harness fence would catch it as a crash).
		if preds, err := bin.DecodeInvariants(); err == nil && len(preds) != len(bin.Invariants) {
			// Duplicate PCs collapse in the map; anything else is a bug.
			seen := map[int]bool{}
			for _, inv := range bin.Invariants {
				seen[inv.PC] = true
			}
			if len(preds) != len(seen) {
				t.Fatalf("DecodeInvariants dropped entries: %d preds from %d invariants", len(preds), len(bin.Invariants))
			}
		}
		out, _, err := bin.Marshal()
		if err != nil {
			t.Fatalf("accepted binary does not re-marshal: %v", err)
		}
		again, err := UnmarshalWithLimits(out, fuzzDecodeLimits)
		if err != nil {
			t.Fatalf("re-marshaled binary does not re-parse: %v", err)
		}
		if again.PolicyName != bin.PolicyName || again.SigHash != bin.SigHash ||
			!bytes.Equal(again.Code, bin.Code) ||
			len(again.Invariants) != len(bin.Invariants) ||
			!lf.Equal(again.Proof, bin.Proof) {
			t.Fatal("marshal/re-parse round trip changed the binary")
		}
	})
}
