package pccbin

import (
	"testing"

	"repro/internal/lf"
	"repro/internal/logic"
)

func sampleBinary(t *testing.T) *Binary {
	t.Helper()
	proof := lf.Apply(lf.Konst{Name: lf.CAndI},
		lf.Konst{Name: lf.CTT}, lf.Konst{Name: lf.CTT},
		lf.Konst{Name: lf.CTrueI}, lf.Konst{Name: lf.CTrueI})
	inv, err := lf.EncodePred(logic.All("i", logic.Implies(
		logic.Ult(logic.V("i"), logic.C(64)),
		logic.RdP(logic.V("i")))))
	if err != nil {
		t.Fatal(err)
	}
	return &Binary{
		PolicyName: "packet-filter/v1",
		Code:       []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Invariants: []Invariant{{PC: 1, Pred: inv}},
		Proof:      proof,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	b := sampleBinary(t)
	data, layout, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if layout.Total != len(data) {
		t.Fatalf("layout total %d != len %d", layout.Total, len(data))
	}
	if layout.CodeLen == 0 || layout.RelocLen == 0 || layout.ProofLen == 0 {
		t.Fatalf("degenerate layout: %s", layout)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.PolicyName != b.PolicyName {
		t.Errorf("policy %q", got.PolicyName)
	}
	if string(got.Code) != string(b.Code) {
		t.Errorf("code mismatch")
	}
	if !lf.Equal(got.Proof, b.Proof) {
		t.Errorf("proof mismatch: %s vs %s", got.Proof, b.Proof)
	}
	if len(got.Invariants) != 1 || got.Invariants[0].PC != 1 {
		t.Fatalf("invariants mismatch: %+v", got.Invariants)
	}
	if !lf.Equal(got.Invariants[0].Pred, b.Invariants[0].Pred) {
		t.Errorf("invariant pred mismatch")
	}
}

func TestDecodeInvariants(t *testing.T) {
	b := sampleBinary(t)
	m, err := b.DecodeInvariants()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m[1]
	if !ok {
		t.Fatal("missing invariant")
	}
	want := logic.All("x", logic.Implies(
		logic.Ult(logic.V("x"), logic.C(64)),
		logic.RdP(logic.V("x"))))
	if !logic.AlphaEqual(p, want) {
		t.Fatalf("decoded invariant %s", p)
	}
	empty := &Binary{}
	if m, err := empty.DecodeInvariants(); err != nil || m != nil {
		t.Fatal("empty invariant table mishandled")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := sampleBinary(t)
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Header corruption.
	for _, mut := range [][]byte{
		nil,
		{},
		[]byte("XXXX"),
		data[:3],
		data[:len(data)-1],
		append(append([]byte(nil), data...), 0),
	} {
		if _, err := Unmarshal(mut); err == nil {
			t.Errorf("corrupt binary accepted (len %d)", len(mut))
		}
	}
}

func TestUnmarshalFuzzsBytes(t *testing.T) {
	// Single-byte mutations must never panic; they either parse into a
	// different (to-be-revalidated) binary or fail cleanly.
	b := sampleBinary(t)
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for _, delta := range []byte{1, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation at byte %d: %v", i, r)
					}
				}()
				_, _ = Unmarshal(mut)
			}()
		}
	}
}

func TestSymbolTableDeterministic(t *testing.T) {
	b := sampleBinary(t)
	d1, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatal("marshaling is not deterministic")
	}
}

func TestLayoutString(t *testing.T) {
	b := sampleBinary(t)
	_, layout, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if layout.String() == "" {
		t.Fatal("empty layout string")
	}
}

func TestRejectsUnknownSymbolInProof(t *testing.T) {
	b := sampleBinary(t)
	data, _, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// An out-of-range symbol index must be rejected at parse time; here
	// we simulate by re-marshaling with a truncated symbol table.
	got.Proof = lf.Konst{Name: "zzz_not_in_sig"}
	data2, _, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Parsing succeeds (the name is in the table), but downstream LF
	// checking will reject it; here just confirm parse round-trip.
	if _, err := Unmarshal(data2); err != nil {
		t.Fatal(err)
	}
}

func TestDeepTermBombRejected(t *testing.T) {
	// A malicious producer can hand-craft a right-leaning App spine far
	// deeper than any legitimate proof; the depth guard must reject it
	// before it threatens the consumer's stack. The bomb is spliced in
	// as raw bytes — a real attacker does not use our encoder.
	base := &Binary{PolicyName: "bomb", Proof: lf.Konst{Name: lf.CTT}}
	data, lay, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bomb := append([]byte(nil), data[:lay.ProofOff]...)
	for i := 0; i < 1_000_000; i++ {
		bomb = append(bomb, tagApp, tagKonst, 0)
	}
	bomb = append(bomb, tagKonst, 0)
	if _, err := Unmarshal(bomb); err == nil {
		t.Fatal("term bomb accepted")
	}

	// A legitimately deep proof (hundreds of levels) still parses.
	ok := lf.Term(lf.Konst{Name: lf.CTT})
	for i := 0; i < 500; i++ {
		ok = lf.App{F: lf.Konst{Name: lf.CPf}, X: ok}
	}
	b2 := &Binary{PolicyName: "fine", Proof: ok}
	data2, _, err := b2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data2); err != nil {
		t.Fatalf("legitimate depth rejected: %v", err)
	}
}
