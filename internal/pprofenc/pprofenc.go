// Package pprofenc writes pprof-compatible profiles (the gzipped
// profile.proto format that `go tool pprof` consumes) without any
// protobuf dependency: the subset of the message the profiler needs —
// string table, value types, functions, locations with line info, and
// samples — is encoded by hand with the standard varint/length-
// delimited wire format.
//
// The kernel uses it to export cycle profiles of *simulated* Alpha
// filter code: each program counter of a filter becomes a Location
// whose Function carries the disassembled instruction, so
// `go tool pprof -top` ranks instructions by simulated cycles and the
// flamegraph view nests them under the filter they belong to.
package pprofenc

import (
	"compress/gzip"
	"fmt"
	"io"
)

// Frame is one entry of a sample's symbolic stack, leaf first.
type Frame struct {
	// Function is the frame's display name (pprof aggregates by it).
	Function string
	// File and Line locate the frame in its "source" — for simulated
	// code, the filter name and instruction index.
	File string
	Line int64
}

// Builder accumulates samples and writes a profile. Not safe for
// concurrent use.
type Builder struct {
	strings map[string]int64
	strs    []string

	// sampleTypes are {type, unit} pairs, e.g. {"cycles", "count"}.
	sampleTypes [][2]string

	funcs   map[Frame]uint64 // keyed by (Function, File) with Line=0
	funcTab []frameFunc
	locs    map[Frame]uint64
	locTab  []frameLoc

	samples []sample

	// PeriodType/Period, optional profile-wide metadata.
	PeriodType [2]string
	Period     int64
	// Comments are free-form strings attached to the profile.
	Comments []string
}

type frameFunc struct {
	name, file int64
}

type frameLoc struct {
	funcID uint64
	line   int64
}

type sample struct {
	locIDs []uint64
	values []int64
}

// NewBuilder starts a profile with the given sample value types (at
// least one, e.g. {"cycles", "count"}).
func NewBuilder(sampleTypes ...[2]string) *Builder {
	b := &Builder{
		strings:     map[string]int64{"": 0},
		strs:        []string{""},
		sampleTypes: sampleTypes,
		funcs:       map[Frame]uint64{},
		locs:        map[Frame]uint64{},
	}
	return b
}

func (b *Builder) str(s string) int64 {
	if id, ok := b.strings[s]; ok {
		return id
	}
	id := int64(len(b.strs))
	b.strings[s] = id
	b.strs = append(b.strs, s)
	return id
}

func (b *Builder) funcID(f Frame) uint64 {
	key := Frame{Function: f.Function, File: f.File}
	if id, ok := b.funcs[key]; ok {
		return id
	}
	b.funcTab = append(b.funcTab, frameFunc{name: b.str(f.Function), file: b.str(f.File)})
	id := uint64(len(b.funcTab)) // IDs are 1-based
	b.funcs[key] = id
	return id
}

func (b *Builder) locID(f Frame) uint64 {
	if id, ok := b.locs[f]; ok {
		return id
	}
	b.locTab = append(b.locTab, frameLoc{funcID: b.funcID(f), line: f.Line})
	id := uint64(len(b.locTab)) // IDs are 1-based
	b.locs[f] = id
	return id
}

// AddSample appends one sample: a symbolic stack (leaf first) with one
// value per sample type. Frames and values are interned/copied, so the
// caller may reuse its slices.
func (b *Builder) AddSample(stack []Frame, values []int64) error {
	if len(values) != len(b.sampleTypes) {
		return fmt.Errorf("pprofenc: sample has %d values, profile declares %d types",
			len(values), len(b.sampleTypes))
	}
	s := sample{locIDs: make([]uint64, len(stack)), values: append([]int64(nil), values...)}
	for i, f := range stack {
		s.locIDs[i] = b.locID(f)
	}
	b.samples = append(b.samples, s)
	return nil
}

// --- protobuf wire encoding ------------------------------------------

// msg is a protobuf message under construction.
type msg struct{ buf []byte }

func (m *msg) varint(v uint64) {
	for v >= 0x80 {
		m.buf = append(m.buf, byte(v)|0x80)
		v >>= 7
	}
	m.buf = append(m.buf, byte(v))
}

// tag emits a field key. wire type 0 = varint, 2 = length-delimited.
func (m *msg) tag(field int, wire int) { m.varint(uint64(field)<<3 | uint64(wire)) }

func (m *msg) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	m.tag(field, 0)
	m.varint(uint64(v))
}

func (m *msg) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	m.tag(field, 0)
	m.varint(v)
}

func (m *msg) bytesField(field int, b []byte) {
	m.tag(field, 2)
	m.varint(uint64(len(b)))
	m.buf = append(m.buf, b...)
}

func (m *msg) stringField(field int, s string) { m.bytesField(field, []byte(s)) }

// packedInts emits repeated integers in packed encoding (proto3
// default for repeated scalars).
func (m *msg) packedInts(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner msg
	for _, v := range vals {
		inner.varint(v)
	}
	m.bytesField(field, inner.buf)
}

func (m *msg) packedInt64s(field int, vals []int64) {
	u := make([]uint64, len(vals))
	for i, v := range vals {
		u[i] = uint64(v)
	}
	m.packedInts(field, u)
}

// valueType encodes a ValueType message: type (field 1) and unit
// (field 2), both string-table indexes.
func valueType(typ, unit int64) []byte {
	var m msg
	m.int64Field(1, typ)
	m.int64Field(2, unit)
	return m.buf
}

// Write encodes the profile, gzips it (pprof expects gzip), and
// writes it to w.
func (b *Builder) Write(w io.Writer) error {
	var p msg

	// sample_type (field 1).
	for _, st := range b.sampleTypes {
		p.bytesField(1, valueType(b.str(st[0]), b.str(st[1])))
	}
	// sample (field 2).
	for _, s := range b.samples {
		var m msg
		m.packedInts(1, s.locIDs)
		m.packedInt64s(2, s.values)
		p.bytesField(2, m.buf)
	}
	// location (field 4).
	for i, l := range b.locTab {
		var line msg
		line.uint64Field(1, l.funcID)
		line.int64Field(2, l.line)
		var m msg
		m.uint64Field(1, uint64(i+1)) // id
		m.bytesField(4, line.buf)
		p.bytesField(4, m.buf)
	}
	// function (field 5).
	for i, f := range b.funcTab {
		var m msg
		m.uint64Field(1, uint64(i+1)) // id
		m.int64Field(2, f.name)
		m.int64Field(3, f.name) // system_name
		m.int64Field(4, f.file)
		p.bytesField(5, m.buf)
	}
	// Comments must be interned before the string table is emitted.
	var comments []int64
	for _, c := range b.Comments {
		comments = append(comments, b.str(c))
	}
	var periodType []byte
	if b.PeriodType != ([2]string{}) {
		periodType = valueType(b.str(b.PeriodType[0]), b.str(b.PeriodType[1]))
	}
	// string_table (field 6).
	for _, s := range b.strs {
		p.stringField(6, s)
	}
	// period_type (field 11) and period (field 12).
	if periodType != nil {
		p.bytesField(11, periodType)
	}
	p.int64Field(12, b.Period)
	// comment (field 13).
	for _, c := range comments {
		p.int64Field(13, c)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.buf); err != nil {
		return err
	}
	return gz.Close()
}
