package pprofenc

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func buildTestProfile(t *testing.T) *Builder {
	t.Helper()
	b := NewBuilder([2]string{"visits", "count"}, [2]string{"cycles", "count"})
	b.PeriodType = [2]string{"cycles", "count"}
	b.Period = 1
	b.Comments = append(b.Comments, "simulated DEC 21064 cycles")
	root := Frame{Function: "Filter 1", File: "Filter 1"}
	for pc, ins := range []string{"LDQ r4, 8(r1)", "SLL r4, 16, r4", "RET"} {
		leaf := Frame{
			Function: fmt.Sprintf("pc%d: %s", pc, ins),
			File:     "Filter 1",
			Line:     int64(pc + 1),
		}
		if err := b.AddSample([]Frame{leaf, root}, []int64{100, int64(100 * (pc + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// decodeTop is a tiny wire-format reader for the outer Profile
// message: enough to pull out the string table and count samples,
// locations, and functions, so the encoding is checked without
// shelling out.
func decodeTop(t *testing.T, raw []byte) (strs []string, samples, locs, funcs int) {
	t.Helper()
	for len(raw) > 0 {
		var key uint64
		var n int
		key, n = uvarint(raw)
		if n <= 0 {
			t.Fatal("bad varint in profile")
		}
		raw = raw[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			_, n = uvarint(raw)
			raw = raw[n:]
		case 2:
			l, n := uvarint(raw)
			raw = raw[n:]
			body := raw[:l]
			raw = raw[l:]
			switch field {
			case 2:
				samples++
			case 4:
				locs++
			case 5:
				funcs++
			case 6:
				strs = append(strs, string(body))
			}
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	return
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func TestEncodeDecode(t *testing.T) {
	b := buildTestProfile(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	strs, samples, locs, funcs := decodeTop(t, raw)
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with the empty string, got %q", strs)
	}
	if samples != 3 {
		t.Errorf("encoded %d samples, want 3", samples)
	}
	if locs != 4 { // 3 leaves + 1 shared root
		t.Errorf("encoded %d locations, want 4", locs)
	}
	if funcs != 4 {
		t.Errorf("encoded %d functions, want 4", funcs)
	}
	joined := strings.Join(strs, "\n")
	for _, want := range []string{"cycles", "visits", "Filter 1", "pc0: LDQ r4, 8(r1)", "simulated DEC 21064 cycles"} {
		if !strings.Contains(joined, want) {
			t.Errorf("string table missing %q", want)
		}
	}
}

// TestGoToolPprofTop is the compatibility gate: `go tool pprof -top`
// must read the profile and attribute every sampled cycle to the
// simulated PCs (the ISSUE's >= 95%% acceptance bar; exact attribution
// gives 100%%).
func TestGoToolPprofTop(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	b := buildTestProfile(t)
	path := filepath.Join(t.TempDir(), "filters.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("go", "tool", "pprof", "-top", "-sample_index=cycles", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof failed: %v\n%s", err, out)
	}
	// Flat cycle counts: 100 + 200 + 300 = 600, all on pc frames.
	var flatOnPCs int64
	re := regexp.MustCompile(`^\s*(\d+)\s`)
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "pc") {
			continue
		}
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, _ := strconv.ParseInt(m[1], 10, 64)
		flatOnPCs += v
	}
	if flatOnPCs < 570 { // >= 95% of 600
		t.Errorf("pprof -top attributes %d of 600 cycles to filter PCs (want >= 570)\n%s",
			flatOnPCs, out)
	}
}
