package alpha

import (
	"encoding/binary"
	"fmt"
)

// This file encodes programs to and from genuine Alpha AXP machine
// words (Sites, "Alpha Architecture Reference Manual"), so that the
// native-code section of a PCC binary contains real Alpha code "ready
// to be mapped into memory and executed" (§2.3). The decoder accepts
// exactly the subset of Figure 2; a consumer confronted with any other
// instruction rejects the binary before VC generation.

// Major opcodes.
const (
	opcLDA  = 0x08
	opcLDQ  = 0x29
	opcSTQ  = 0x2D
	opcINTA = 0x10 // integer arithmetic operate group
	opcINTL = 0x11 // integer logical operate group
	opcINTS = 0x12 // integer shift operate group
	opcINTM = 0x13 // integer multiply operate group
	opcJSR  = 0x1A // jump group (RET lives here)
	opcBR   = 0x30
	opcBEQ  = 0x39
	opcBLT  = 0x3A
	opcBNE  = 0x3D
	opcBGE  = 0x3E
)

// Operate-group function codes.
const (
	fnADDQ   = 0x20
	fnSUBQ   = 0x29
	fnCMPEQ  = 0x2D
	fnCMPULT = 0x1D
	fnCMPULE = 0x3D
	fnAND    = 0x00
	fnBIS    = 0x20
	fnXOR    = 0x40
	fnSLL    = 0x39
	fnSRL    = 0x34
	fnMULQ   = 0x20
)

// EncRET is the canonical encoding of RET R31, (R26), 1.
const EncRET uint32 = uint32(opcJSR)<<26 | 31<<21 | 26<<16 | 2<<14 | 1

type operateEnc struct {
	opc uint32
	fn  uint32
}

var operateEncs = map[Op]operateEnc{
	ADDQ: {opcINTA, fnADDQ}, SUBQ: {opcINTA, fnSUBQ},
	CMPEQ: {opcINTA, fnCMPEQ}, CMPULT: {opcINTA, fnCMPULT}, CMPULE: {opcINTA, fnCMPULE},
	MULQ: {opcINTM, fnMULQ},
	AND:  {opcINTL, fnAND}, BIS: {opcINTL, fnBIS}, XOR: {opcINTL, fnXOR},
	SLL: {opcINTS, fnSLL}, SRL: {opcINTS, fnSRL},
}

var branchOpcs = map[Op]uint32{
	BR: opcBR, BEQ: opcBEQ, BNE: opcBNE, BLT: opcBLT, BGE: opcBGE,
}

var memOpcs = map[Op]uint32{LDA: opcLDA, LDQ: opcLDQ, STQ: opcSTQ}

// EncodeInstr encodes one instruction at address index pc (needed for
// branch displacements, which are pc-relative).
func EncodeInstr(ins Instr, pc int) (uint32, error) {
	switch ins.Op.Class() {
	case ClassMem:
		opc := memOpcs[ins.Op]
		return opc<<26 | uint32(ins.Ra)<<21 | uint32(ins.Rb)<<16 |
			uint32(uint16(ins.Disp)), nil
	case ClassOperate:
		enc, ok := operateEncs[ins.Op]
		if !ok {
			return 0, fmt.Errorf("alpha: cannot encode %v", ins.Op)
		}
		w := enc.opc<<26 | uint32(ins.Ra)<<21 | enc.fn<<5 | uint32(ins.Rc)
		if ins.HasLit {
			w |= uint32(ins.Lit)<<13 | 1<<12
		} else {
			w |= uint32(ins.Rb) << 16
		}
		return w, nil
	case ClassBranch:
		disp := ins.Target - (pc + 1)
		if disp < -(1<<20) || disp >= 1<<20 {
			return 0, fmt.Errorf("alpha: branch displacement %d out of range", disp)
		}
		ra := uint32(ins.Ra)
		if ins.Op == BR {
			ra = 31 // BR writes the return address; r31 discards it
		}
		return branchOpcs[ins.Op]<<26 | ra<<21 | uint32(disp)&0x1FFFFF, nil
	case ClassRet:
		return EncRET, nil
	}
	return 0, fmt.Errorf("alpha: cannot encode %v", ins.Op)
}

// Encode encodes a whole program into little-endian machine words (the
// Alpha is little-endian).
func Encode(prog []Instr) ([]byte, error) {
	out := make([]byte, 4*len(prog))
	for pc, ins := range prog {
		w, err := EncodeInstr(ins, pc)
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
		binary.LittleEndian.PutUint32(out[4*pc:], w)
	}
	return out, nil
}

// DecodeInstr decodes the machine word at index pc. It fails on any
// instruction outside the PCC subset.
func DecodeInstr(w uint32, pc int) (Instr, error) {
	opc := w >> 26
	ra := Reg(w >> 21 & 31)
	switch opc {
	case opcLDA, opcLDQ, opcSTQ:
		rb := Reg(w >> 16 & 31)
		disp := int16(uint16(w))
		var op Op
		switch opc {
		case opcLDA:
			op = LDA
		case opcLDQ:
			op = LDQ
		default:
			op = STQ
		}
		return Instr{Op: op, Ra: ra, Rb: rb, Disp: disp}, nil

	case opcINTA, opcINTL, opcINTS, opcINTM:
		fn := w >> 5 & 0x7F
		var op Op
		for candidate, enc := range operateEncs {
			if enc.opc == opc && enc.fn == fn {
				op = candidate
				break
			}
		}
		if op == OpInvalid {
			return Instr{}, fmt.Errorf("alpha: pc %d: unknown operate function %#x/%#x", pc, opc, fn)
		}
		ins := Instr{Op: op, Ra: ra, Rc: Reg(w & 31)}
		if w>>12&1 == 1 {
			ins.HasLit = true
			ins.Lit = uint8(w >> 13)
		} else {
			if w>>13&7 != 0 {
				return Instr{}, fmt.Errorf("alpha: pc %d: SBZ bits set", pc)
			}
			ins.Rb = Reg(w >> 16 & 31)
		}
		return ins, nil

	case opcBR, opcBEQ, opcBNE, opcBLT, opcBGE:
		var op Op
		switch opc {
		case opcBR:
			op = BR
		case opcBEQ:
			op = BEQ
		case opcBNE:
			op = BNE
		case opcBLT:
			op = BLT
		default:
			op = BGE
		}
		disp := int32(w<<11) >> 11 // sign-extend 21 bits
		ins := Instr{Op: op, Ra: ra, Target: pc + 1 + int(disp)}
		if op == BR {
			if ra != 31 {
				return Instr{}, fmt.Errorf("alpha: pc %d: BR must discard its return address (ra=r31)", pc)
			}
			ins.Ra = 0
		}
		return ins, nil

	case opcJSR:
		if w == EncRET {
			return Instr{Op: RET}, nil
		}
		return Instr{}, fmt.Errorf("alpha: pc %d: unsupported jump encoding %#x", pc, w)
	}
	return Instr{}, fmt.Errorf("alpha: pc %d: unsupported opcode %#x", pc, opc)
}

// Decode decodes a little-endian machine-code section into a program.
func Decode(code []byte) ([]Instr, error) {
	if len(code)%4 != 0 {
		return nil, fmt.Errorf("alpha: code length %d not a multiple of 4", len(code))
	}
	prog := make([]Instr, len(code)/4)
	for pc := range prog {
		w := binary.LittleEndian.Uint32(code[4*pc:])
		ins, err := DecodeInstr(w, pc)
		if err != nil {
			return nil, err
		}
		prog[pc] = ins
	}
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}
