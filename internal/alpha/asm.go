package alpha

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the prototype assembler's front end: a two-pass
// assembler for a textual syntax close to DEC's, with labels, comments
// (';', '#', or '%' to end of line), and a few convenience pseudo-ops:
//
//	MOV  src, rd        ->  BIS r31, src, rd
//	CLR  rd             ->  BIS r31, 0, rd
//	MOVI imm16, rd      ->  LDA rd, imm16(r31)
//
// Operate-format instructions accept a register or an 8-bit literal as
// their second operand, exactly as the hardware does.

// AsmError describes an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *AsmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assembled is the result of assembling a source file.
type Assembled struct {
	Prog   []Instr
	Labels map[string]int // label name -> instruction index
}

// Assemble translates assembly source into an instruction vector.
func Assemble(src string) (*Assembled, error) {
	type pending struct {
		line  int
		pc    int
		label string
	}
	a := &Assembled{Labels: map[string]int{}}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at the start of the line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, &AsmError{lineNo + 1, fmt.Sprintf("bad label %q", label)}
			}
			if _, dup := a.Labels[label]; dup {
				return nil, &AsmError{lineNo + 1, fmt.Sprintf("duplicate label %q", label)}
			}
			a.Labels[label] = len(a.Prog)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		ins, targetLabel, err := parseInstr(line)
		if err != nil {
			return nil, &AsmError{lineNo + 1, err.Error()}
		}
		if targetLabel != "" {
			fixups = append(fixups, pending{lineNo + 1, len(a.Prog), targetLabel})
		}
		a.Prog = append(a.Prog, ins)
	}

	for _, f := range fixups {
		target, ok := a.Labels[f.label]
		if !ok {
			return nil, &AsmError{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		a.Prog[f.pc].Target = target
	}
	if err := Validate(a.Prog); err != nil {
		return nil, err
	}
	return a, nil
}

// MustAssemble is Assemble for statically known-good sources (the
// shipped filters); it panics on error.
func MustAssemble(src string) *Assembled {
	a, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return a
}

func stripComment(line string) string {
	for _, sep := range []string{";", "#", "%"} {
		if i := strings.Index(line, sep); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var mnemonics = map[string]Op{
	"LDQ": LDQ, "STQ": STQ, "LDA": LDA,
	"ADDQ": ADDQ, "SUBQ": SUBQ, "MULQ": MULQ, "AND": AND, "BIS": BIS, "OR": BIS, "XOR": XOR,
	"SLL": SLL, "SRL": SRL,
	"CMPEQ": CMPEQ, "CMPULT": CMPULT, "CMPULE": CMPULE,
	"BEQ": BEQ, "BNE": BNE, "BGE": BGE, "BLT": BLT, "BR": BR,
	"RET": RET,
}

func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToUpper(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)

	switch mnemonic {
	case "MOV":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("MOV needs 2 operands, got %d", len(args))
		}
		ins := Instr{Op: BIS, Ra: RegZero}
		if err := parseOperand(args[0], &ins); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		ins.Rc = rd
		return ins, "", nil
	case "CLR":
		if len(args) != 1 {
			return Instr{}, "", fmt.Errorf("CLR needs 1 operand")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: BIS, Ra: RegZero, HasLit: true, Lit: 0, Rc: rd}, "", nil
	case "MOVI":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("MOVI needs 2 operands")
		}
		imm, err := parseInt(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		if imm < -32768 || imm > 32767 {
			return Instr{}, "", fmt.Errorf("MOVI immediate %d out of 16-bit range", imm)
		}
		rd, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: LDA, Ra: rd, Rb: RegZero, Disp: int16(imm)}, "", nil
	}

	op, ok := mnemonics[mnemonic]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	switch op.Class() {
	case ClassMem:
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("%s needs 2 operands", op)
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		disp, rb, err := parseMemOperand(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Ra: ra, Rb: rb, Disp: disp}, "", nil

	case ClassOperate:
		if len(args) != 3 {
			return Instr{}, "", fmt.Errorf("%s needs 3 operands", op)
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		ins := Instr{Op: op, Ra: ra}
		if err := parseOperand(args[1], &ins); err != nil {
			return Instr{}, "", err
		}
		rc, err := parseReg(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		ins.Rc = rc
		return ins, "", nil

	case ClassBranch:
		want := 2
		if op == BR {
			want = 1
		}
		if len(args) != want {
			return Instr{}, "", fmt.Errorf("%s needs %d operand(s)", op, want)
		}
		ins := Instr{Op: op}
		label := args[0]
		if op != BR {
			ra, err := parseReg(args[0])
			if err != nil {
				return Instr{}, "", err
			}
			ins.Ra = ra
			label = args[1]
		}
		// "@N" targets an absolute instruction index, the syntax the
		// disassembler emits — making disassembly re-assemblable.
		if abs, ok := strings.CutPrefix(label, "@"); ok {
			n, err := strconv.Atoi(abs)
			if err != nil || n < 0 {
				return Instr{}, "", fmt.Errorf("bad absolute target %q", label)
			}
			ins.Target = n
			return ins, "", nil
		}
		if !isIdent(label) {
			return Instr{}, "", fmt.Errorf("bad branch target %q", label)
		}
		return ins, label, nil

	default: // RET
		if len(args) != 0 {
			return Instr{}, "", fmt.Errorf("RET takes no operands")
		}
		return Instr{Op: RET}, "", nil
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	ls := strings.ToLower(s)
	if ls == "zero" || ls == "r31" {
		return RegZero, nil
	}
	if !strings.HasPrefix(ls, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	r := Reg(n)
	if !r.Valid() {
		return 0, fmt.Errorf("register %q out of range (r0-r%d, r31)", s, NumRegs-1)
	}
	return r, nil
}

// parseOperand parses the second operand of an operate instruction:
// a register or an 8-bit literal.
func parseOperand(s string, ins *Instr) error {
	if r, err := parseReg(s); err == nil {
		ins.Rb = r
		return nil
	}
	v, err := parseInt(s)
	if err != nil {
		return fmt.Errorf("expected register or literal, got %q", s)
	}
	if v < 0 || v > 255 {
		return fmt.Errorf("literal %d out of 8-bit range", v)
	}
	ins.HasLit = true
	ins.Lit = uint8(v)
	return nil
}

// parseMemOperand parses "disp(rb)".
func parseMemOperand(s string) (int16, Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected disp(reg), got %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	disp := int64(0)
	if dispStr != "" {
		var err error
		disp, err = parseInt(dispStr)
		if err != nil {
			return 0, 0, err
		}
	}
	if disp < -32768 || disp > 32767 {
		return 0, 0, fmt.Errorf("displacement %d out of 16-bit range", disp)
	}
	rb, err := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return int16(disp), rb, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}
