package alpha

import (
	"math/rand"
	"strings"
	"testing"
)

// resourceSrc is the Figure 5 program of the paper.
const resourceSrc = `
        ADDQ  r0, 8, r1     % Address of data in r1
        LDQ   r0, 8(r0)     % Data in r0
        LDQ   r2, -8(r1)    % Tag in r2
        ADDQ  r0, 1, r0     % Increment data
        BEQ   r2, L1        % Skip if tag == 0
        STQ   r0, 0(r1)     % Write back data
L1:     RET                 % Done
`

func TestAssembleFigure5(t *testing.T) {
	a, err := Assemble(resourceSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Prog) != 7 {
		t.Fatalf("got %d instructions, want 7", len(a.Prog))
	}
	if a.Labels["L1"] != 6 {
		t.Fatalf("L1 = %d, want 6", a.Labels["L1"])
	}
	want := []Op{ADDQ, LDQ, LDQ, ADDQ, BEQ, STQ, RET}
	for i, op := range want {
		if a.Prog[i].Op != op {
			t.Errorf("instr %d: op %v, want %v", i, a.Prog[i].Op, op)
		}
	}
	if a.Prog[2].Disp != -8 {
		t.Errorf("LDQ disp = %d, want -8", a.Prog[2].Disp)
	}
	if a.Prog[4].Target != 6 {
		t.Errorf("BEQ target = %d, want 6", a.Prog[4].Target)
	}
}

func TestAssembleComments(t *testing.T) {
	for _, src := range []string{
		"RET ; semicolon",
		"RET # hash",
		"RET % percent",
	} {
		a, err := Assemble(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(a.Prog) != 1 || a.Prog[0].Op != RET {
			t.Errorf("%q: wrong program", src)
		}
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	a, err := Assemble(`
		MOV   r1, r2
		MOV   7, r3
		CLR   r4
		MOVI  2048, r5
		RET
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Prog
	if p[0].Op != BIS || p[0].Ra != RegZero || p[0].Rb != 1 || p[0].Rc != 2 {
		t.Errorf("MOV r1,r2 = %v", p[0])
	}
	if p[1].Op != BIS || !p[1].HasLit || p[1].Lit != 7 || p[1].Rc != 3 {
		t.Errorf("MOV 7,r3 = %v", p[1])
	}
	if p[2].Op != BIS || !p[2].HasLit || p[2].Lit != 0 || p[2].Rc != 4 {
		t.Errorf("CLR r4 = %v", p[2])
	}
	if p[3].Op != LDA || p[3].Ra != 5 || p[3].Rb != RegZero || p[3].Disp != 2048 {
		t.Errorf("MOVI 2048,r5 = %v", p[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"FOO r0, r1, r2", "unknown mnemonic"},
		{"ADDQ r0, r1", "3 operands"},
		{"ADDQ r0, 999, r1", "8-bit range"},
		{"ADDQ r0, r1, r31", "not writable"},
		{"ADDQ r0, r1, r11", "out of range"},
		{"BEQ r0, nowhere\nRET", "undefined label"},
		{"L: RET\nL: RET", "duplicate label"},
		{"LDQ r0, 8", "disp(reg)"},
		{"LDQ r0, 40000(r1)", "16-bit range"},
		{"MOVI 70000, r1", "16-bit range"},
		{"BEQ r0, 5more", "bad branch target"},
		{"1bad: RET", "bad label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestValidateBranchRange(t *testing.T) {
	prog := []Instr{{Op: BEQ, Ra: 0, Target: 5}}
	if err := Validate(prog); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	prog[0].Target = 1 // one past the end is allowed (fallthrough exit)
	if err := Validate(prog); err != nil {
		t.Errorf("target just past end rejected: %v", err)
	}
}

func TestEncodeDecodeFigure5(t *testing.T) {
	a := MustAssemble(resourceSrc)
	code, err := Encode(a.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4*len(a.Prog) {
		t.Fatalf("code size %d", len(code))
	}
	back, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(a.Prog) {
		t.Fatalf("decoded %d instrs", len(back))
	}
	for i := range back {
		if back[i] != a.Prog[i] {
			t.Errorf("instr %d: decode mismatch %v vs %v", i, back[i], a.Prog[i])
		}
	}
}

func TestDecodeRejectsUnknown(t *testing.T) {
	// CALL_PAL 0 (opcode 0) is outside the subset.
	if _, err := Decode([]byte{0, 0, 0, 0}); err == nil {
		t.Error("unknown opcode accepted")
	}
	// A jump that is not the canonical RET.
	bad := EncRET ^ 1
	code := []byte{byte(bad), byte(bad >> 8), byte(bad >> 16), byte(bad >> 24)}
	if _, err := Decode(code); err == nil {
		t.Error("non-canonical jump accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated code accepted")
	}
}

func TestDecodeRejectsForeignRegisters(t *testing.T) {
	// LDQ r16, 0(r0): register 16 is outside the paper's subset.
	w := uint32(opcLDQ)<<26 | 16<<21
	code := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	if _, err := Decode(code); err == nil {
		t.Error("foreign register accepted")
	}
}

// randInstr generates a random valid instruction for round-trip testing.
func randInstr(r *rand.Rand, progLen, pc int) Instr {
	reg := func() Reg {
		if r.Intn(8) == 0 {
			return RegZero
		}
		return Reg(r.Intn(NumRegs))
	}
	wreg := func() Reg { return Reg(r.Intn(NumRegs)) }
	ops := []Op{LDQ, STQ, LDA, ADDQ, SUBQ, AND, BIS, XOR, SLL, SRL,
		CMPEQ, CMPULT, CMPULE, BEQ, BNE, BGE, BLT, BR, RET}
	op := ops[r.Intn(len(ops))]
	switch op.Class() {
	case ClassMem:
		ra := wreg()
		if op == STQ {
			ra = reg()
		}
		return Instr{Op: op, Ra: ra, Rb: reg(), Disp: int16(r.Intn(1<<16) - 1<<15)}
	case ClassOperate:
		ins := Instr{Op: op, Ra: reg(), Rc: wreg()}
		if r.Intn(2) == 0 {
			ins.HasLit = true
			ins.Lit = uint8(r.Intn(256))
		} else {
			ins.Rb = reg()
		}
		return ins
	case ClassBranch:
		ins := Instr{Op: op, Target: r.Intn(progLen + 1)}
		if op != BR {
			ins.Ra = reg()
		}
		return ins
	default:
		return Instr{Op: RET}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(40)
		prog := make([]Instr, n)
		for pc := range prog {
			prog[pc] = randInstr(r, n, pc)
		}
		code, err := Encode(prog)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := Decode(code)
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, Program(prog))
		}
		for pc := range prog {
			if back[pc] != prog[pc] {
				t.Fatalf("trial %d pc %d: %v != %v", trial, pc, back[pc], prog[pc])
			}
		}
	}
}

func TestInstrString(t *testing.T) {
	a := MustAssemble(resourceSrc)
	s := Program(a.Prog)
	for _, frag := range []string{"ADDQ", "LDQ", "-8(r1)", "BEQ", "@6", "RET"} {
		if !strings.Contains(s, frag) {
			t.Errorf("program listing missing %q:\n%s", frag, s)
		}
	}
}

func TestRegString(t *testing.T) {
	if RegZero.String() != "r31" || Reg(3).String() != "r3" {
		t.Error("Reg.String wrong")
	}
	if Reg(11).Valid() || Reg(30).Valid() {
		t.Error("invalid registers accepted")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("BOGUS")
}

func TestListingReassembles(t *testing.T) {
	// Assemble(Listing(p)) must reproduce p exactly — disassembler
	// output is valid assembler input.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(30)
		prog := make([]Instr, n)
		for pc := range prog {
			prog[pc] = randInstr(r, n, pc)
		}
		src := Listing(prog)
		back, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: listing does not re-assemble: %v\n%s", trial, err, src)
		}
		if len(back.Prog) != len(prog) {
			t.Fatalf("trial %d: length changed", trial)
		}
		for pc := range prog {
			if back.Prog[pc] != prog[pc] {
				t.Fatalf("trial %d pc %d: %v != %v\n%s", trial, pc, back.Prog[pc], prog[pc], src)
			}
		}
	}
}

func TestAbsoluteBranchTargets(t *testing.T) {
	a, err := Assemble("BEQ r0, @2\nRET\nRET")
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog[0].Target != 2 {
		t.Fatalf("target = %d", a.Prog[0].Target)
	}
	if _, err := Assemble("BEQ r0, @-1"); err == nil {
		t.Fatal("negative absolute target accepted")
	}
	if _, err := Assemble("BR @99"); err == nil {
		t.Fatal("out-of-range absolute target accepted")
	}
}

func TestMULQ(t *testing.T) {
	a, err := Assemble("MULQ r0, 7, r1\nMULQ r1, r2, r3\nRET")
	if err != nil {
		t.Fatal(err)
	}
	code, err := Encode(a.Prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != a.Prog[i] {
			t.Fatalf("instr %d round trip: %v != %v", i, back[i], a.Prog[i])
		}
	}
}
