// Package alpha implements the DEC Alpha subset of Necula & Lee (OSDI
// '96, Figure 2): the integer operate instructions ADDQ, SUBQ, AND, BIS,
// XOR, SLL, SRL, the compare instructions CMPEQ, CMPULT, CMPULE, the
// quadword memory instructions LDQ, STQ (and LDA for constant
// materialization), the conditional branches BEQ, BNE, BGE, BLT, the
// unconditional BR, and RET.
//
// As in the paper, programs may use only the eleven temporary and
// caller-save registers, renamed r0 through r10, so they are trivially
// safe with respect to the reserved and callee-save registers. We
// additionally expose the architectural zero register r31 (readable,
// always zero, never writable), which the real Alpha provides and which
// the assembler uses to materialize constants with LDA.
//
// The package contains the instruction representation, a two-pass
// assembler for a textual syntax, and an encoder/decoder to and from
// genuine Alpha AXP machine words (the native-code section of a PCC
// binary holds real Alpha machine code).
package alpha

import "fmt"

// Reg is an Alpha integer register number. Valid values are 0 through
// NumRegs-1 (the paper's r0..r10) and RegZero (the architectural r31).
type Reg uint8

// NumRegs is the number of writable registers available to PCC
// programs (the paper's r0 through r10).
const NumRegs = 11

// RegZero is the architectural zero register r31: reads yield 0 and
// writes are discarded. The assembler forbids it as a destination.
const RegZero Reg = 31

// Valid reports whether r names a register PCC programs may mention.
func (r Reg) Valid() bool { return r < NumRegs || r == RegZero }

// String returns the assembly spelling of the register.
func (r Reg) String() string {
	if r == RegZero {
		return "r31"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op identifies an instruction of the subset.
type Op uint8

// The instruction set. The comment gives the paper's Figure 2 grouping.
const (
	OpInvalid Op = iota

	// Memory format.
	LDQ // LDQ rd, disp(rs): rd := sel(mem, rs ⊕ disp)
	STQ // STQ rs, disp(rd): mem := upd(mem, rd ⊕ disp, rs)
	LDA // LDA rd, disp(rs): rd := rs ⊕ sext(disp)  (no memory access)

	// Operate format ("al" in Figure 2), rc := ra OP (rb | literal).
	ADDQ
	SUBQ
	MULQ
	AND
	BIS // the Alpha's OR
	XOR
	SLL
	SRL
	CMPEQ  // rc := 1 if ra = op, else 0
	CMPULT // rc := 1 if ra <u op, else 0
	CMPULE // rc := 1 if ra ≤u op, else 0

	// Branch format ("br" in Figure 2).
	BEQ // taken iff ra = 0
	BNE // taken iff ra ≠ 0
	BGE // taken iff ra ≥s 0
	BLT // taken iff ra <s 0
	BR  // unconditional

	// Return.
	RET
)

var opNames = [...]string{
	OpInvalid: "<invalid>",
	LDQ:       "LDQ", STQ: "STQ", LDA: "LDA",
	ADDQ: "ADDQ", SUBQ: "SUBQ", MULQ: "MULQ", AND: "AND", BIS: "BIS", XOR: "XOR",
	SLL: "SLL", SRL: "SRL",
	CMPEQ: "CMPEQ", CMPULT: "CMPULT", CMPULE: "CMPULE",
	BEQ: "BEQ", BNE: "BNE", BGE: "BGE", BLT: "BLT", BR: "BR",
	RET: "RET",
}

// String returns the assembly mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class describes an instruction's format.
type Class uint8

// Instruction format classes.
const (
	ClassMem     Class = iota // LDQ, STQ, LDA
	ClassOperate              // ADDQ .. CMPULE
	ClassBranch               // BEQ .. BR
	ClassRet                  // RET
)

// Class returns op's format class.
func (op Op) Class() Class {
	switch op {
	case LDQ, STQ, LDA:
		return ClassMem
	case BEQ, BNE, BGE, BLT, BR:
		return ClassBranch
	case RET:
		return ClassRet
	default:
		return ClassOperate
	}
}

// Instr is a single decoded instruction. Fields are used according to
// the op's class:
//
//   - ClassMem: Ra is the data register (destination for LDQ/LDA,
//     source for STQ), Rb the base register, Disp the signed 16-bit
//     byte displacement.
//   - ClassOperate: Ra is the first source; the second operand is
//     register Rb or, when HasLit is set, the 8-bit literal Lit;
//     Rc is the destination.
//   - ClassBranch: Ra is the tested register (ignored for BR) and
//     Target is the absolute instruction index of the branch target.
//   - ClassRet: no operands.
type Instr struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	HasLit bool
	Lit    uint8
	Disp   int16
	Target int
}

// String renders the instruction in assembler syntax (branch targets as
// absolute instruction indexes).
func (i Instr) String() string {
	switch i.Op.Class() {
	case ClassMem:
		return fmt.Sprintf("%-6s %s, %d(%s)", i.Op, i.Ra, i.Disp, i.Rb)
	case ClassOperate:
		if i.HasLit {
			return fmt.Sprintf("%-6s %s, %d, %s", i.Op, i.Ra, i.Lit, i.Rc)
		}
		return fmt.Sprintf("%-6s %s, %s, %s", i.Op, i.Ra, i.Rb, i.Rc)
	case ClassBranch:
		if i.Op == BR {
			return fmt.Sprintf("%-6s @%d", i.Op, i.Target)
		}
		return fmt.Sprintf("%-6s %s, @%d", i.Op, i.Ra, i.Target)
	default:
		return "RET"
	}
}

// Validate checks the static well-formedness rules the paper's loader
// applies before VC generation: register numbers in range, r31 never
// written, branch targets inside the program. (Forward-only branching
// is not checked here — the VC generator enforces it, allowing backward
// branches exactly at invariant points.)
func Validate(prog []Instr) error {
	for pc, ins := range prog {
		bad := func(r Reg, roleWrite bool) error {
			if !r.Valid() {
				return fmt.Errorf("alpha: pc %d (%s): invalid register %d", pc, ins, r)
			}
			if roleWrite && r == RegZero {
				return fmt.Errorf("alpha: pc %d (%s): r31 is not writable", pc, ins)
			}
			return nil
		}
		switch ins.Op.Class() {
		case ClassMem:
			writeRa := ins.Op == LDQ || ins.Op == LDA
			if err := bad(ins.Ra, writeRa); err != nil {
				return err
			}
			if err := bad(ins.Rb, false); err != nil {
				return err
			}
		case ClassOperate:
			if err := bad(ins.Ra, false); err != nil {
				return err
			}
			if !ins.HasLit {
				if err := bad(ins.Rb, false); err != nil {
					return err
				}
			}
			if err := bad(ins.Rc, true); err != nil {
				return err
			}
		case ClassBranch:
			if ins.Op != BR {
				if err := bad(ins.Ra, false); err != nil {
					return err
				}
			}
			if ins.Target < 0 || ins.Target > len(prog) {
				return fmt.Errorf("alpha: pc %d (%s): branch target %d out of range",
					pc, ins, ins.Target)
			}
		case ClassRet:
			// no operands
		default:
			return fmt.Errorf("alpha: pc %d: unknown op %v", pc, ins.Op)
		}
	}
	return nil
}

// Program pretty-prints a whole program with instruction indexes.
func Program(prog []Instr) string {
	out := ""
	for pc, ins := range prog {
		out += fmt.Sprintf("%3d: %s\n", pc, ins)
	}
	return out
}

// AnnotatedProgram pretty-prints a whole program with instruction
// indexes, prefixing each line with annot(pc) — the hook the cycle
// profiler uses to put per-instruction costs beside the disassembly.
func AnnotatedProgram(prog []Instr, annot func(pc int) string) string {
	out := ""
	for pc, ins := range prog {
		out += fmt.Sprintf("%s  %3d: %s\n", annot(pc), pc, ins)
	}
	return out
}

// Listing renders a program as re-assemblable source: one instruction
// per line, branch targets in the absolute "@N" form the assembler
// accepts. Assemble(Listing(p)) reproduces p exactly.
func Listing(prog []Instr) string {
	out := ""
	for _, ins := range prog {
		out += ins.String() + "\n"
	}
	return out
}
