// Audit ring: a fixed-capacity lock-free ring of the most recent
// structured audit records, captured via a slog.Handler that tees into
// the ring while forwarding to the configured sink (a JSON file,
// stderr). The audit log is the durable stream; the ring is the
// queryable recent history the /debug/timeline endpoint joins against
// spans and flight events on the shared correlation EventID — without
// re-parsing log files.
package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sort"
	"sync/atomic"
)

// AuditRecord is one captured audit decision, flattened for joining:
// Kind is the record's "event" attribute (install, negotiate, config,
// quarantine, evict, uninstall), Owner its "owner", Event its
// "event_id" correlation EventID; everything else lands in Attrs as
// rendered strings.
type AuditRecord struct {
	Seq           uint64            `json:"seq"`
	TimeUnixNanos int64             `json:"time_unix_ns"`
	Level         string            `json:"level"`
	Msg           string            `json:"msg"`
	Kind          string            `json:"kind,omitempty"`
	Owner         string            `json:"owner,omitempty"`
	Event         uint64            `json:"event,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// DefaultAuditRingCapacity is the ring size used when capacity <= 0.
const DefaultAuditRingCapacity = 1024

// AuditRing is the record ring. Appends are lock-free (one atomic
// counter claims a slot, one atomic pointer store publishes); when
// full, the oldest records are overwritten. A nil *AuditRing is a
// valid no-op sink.
type AuditRing struct {
	slots []atomic.Pointer[AuditRecord]
	next  atomic.Uint64
}

// NewAuditRing builds a ring holding up to capacity records.
func NewAuditRing(capacity int) *AuditRing {
	if capacity <= 0 {
		capacity = DefaultAuditRingCapacity
	}
	return &AuditRing{slots: make([]atomic.Pointer[AuditRecord], capacity)}
}

// add appends one record, overwriting the oldest when full.
func (r *AuditRing) add(rec *AuditRecord) {
	if r == nil {
		return
	}
	rec.Seq = r.next.Add(1) - 1
	r.slots[rec.Seq%uint64(len(r.slots))].Store(rec)
}

// Appended returns the total number of records ever captured.
func (r *AuditRing) Appended() int64 {
	if r == nil {
		return 0
	}
	return int64(r.next.Load())
}

// Records snapshots the ring's current contents, oldest first (same
// per-slot-atomic contract as the span and flight rings).
func (r *AuditRing) Records() []AuditRecord {
	if r == nil {
		return nil
	}
	out := make([]AuditRecord, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL writes the ring's records as JSON-lines, oldest first.
func (r *AuditRing) WriteJSONL(w io.Writer) error {
	for _, rec := range r.Records() {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadAuditJSONL decodes a JSON-lines audit-ring export (the inverse
// of WriteJSONL); blank lines are skipped.
func ReadAuditJSONL(rd io.Reader) ([]AuditRecord, error) {
	var out []AuditRecord
	dec := json.NewDecoder(rd)
	for dec.More() {
		var rec AuditRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Handler returns a slog.Handler that captures every record into the
// ring and then forwards to next (nil next = capture only). Wire it
// between the kernel's audit logger and its durable sink.
func (r *AuditRing) Handler(next slog.Handler) slog.Handler {
	return &auditHandler{ring: r, next: next}
}

// auditHandler tees slog records into an AuditRing. WithAttrs state is
// carried so logger.With(...).Info(...) records keep their attributes.
type auditHandler struct {
	ring   *AuditRing
	next   slog.Handler
	prefix []slog.Attr // attrs accumulated via WithAttrs, group-qualified
	groups []string    // open groups from WithGroup
}

func (h *auditHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	if h.next != nil {
		return h.next.Enabled(ctx, lvl)
	}
	return lvl >= slog.LevelInfo
}

func (h *auditHandler) Handle(ctx context.Context, rec slog.Record) error {
	ar := &AuditRecord{
		TimeUnixNanos: rec.Time.UnixNano(),
		Level:         rec.Level.String(),
		Msg:           rec.Message,
		Attrs:         map[string]string{},
	}
	for _, a := range h.prefix {
		flattenAttr(ar, "", a)
	}
	prefix := ""
	for _, g := range h.groups {
		prefix += g + "."
	}
	rec.Attrs(func(a slog.Attr) bool {
		flattenAttr(ar, prefix, a)
		return true
	})
	h.ring.add(ar)
	if h.next != nil {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

// flattenAttr folds one attr into the record, recursing into groups
// and hoisting the well-known join keys.
func flattenAttr(ar *AuditRecord, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			flattenAttr(ar, p, ga)
		}
		return
	}
	key := prefix + a.Key
	switch key {
	case "event":
		ar.Kind = v.String()
	case "owner":
		ar.Owner = v.String()
	case "event_id":
		if v.Kind() == slog.KindUint64 {
			ar.Event = v.Uint64()
		} else if v.Kind() == slog.KindInt64 {
			ar.Event = uint64(v.Int64())
		}
	default:
		ar.Attrs[key] = v.String()
	}
}

func (h *auditHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := &auditHandler{ring: h.ring, groups: h.groups}
	prefix := ""
	for _, g := range h.groups {
		prefix += g + "."
	}
	nh.prefix = append(append([]slog.Attr{}, h.prefix...), qualify(prefix, attrs)...)
	if h.next != nil {
		nh.next = h.next.WithAttrs(attrs)
	}
	return nh
}

// qualify rewrites attrs under the current group prefix so the
// flattened keys match what Handle produces for inline attrs.
func qualify(prefix string, attrs []slog.Attr) []slog.Attr {
	if prefix == "" {
		return attrs
	}
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

func (h *auditHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := &auditHandler{ring: h.ring, prefix: h.prefix}
	nh.groups = append(append([]string{}, h.groups...), name)
	if h.next != nil {
		nh.next = h.next.WithGroup(name)
	}
	return nh
}
