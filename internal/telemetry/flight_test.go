package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingAndJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", f.Cap())
	}
	for i := 0; i < 6; i++ {
		f.Record(FlightConfigChange, "owner", "detail")
	}
	if f.Appended() != 6 || f.Dropped() != 2 {
		t.Fatalf("appended/dropped = %d/%d, want 6/2", f.Appended(), f.Dropped())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+2) {
			t.Fatalf("event %d: seq %d, want %d (oldest-first after wrap)", i, e.Seq, i+2)
		}
		if e.Kind != FlightConfigChange || e.Owner != "owner" {
			t.Fatalf("event %d: %+v", i, e)
		}
		if e.TimeUnixNanos <= 0 || time.Since(time.Unix(0, e.TimeUnixNanos)) > time.Minute {
			t.Fatalf("event %d: implausible timestamp %d", i, e.TimeUnixNanos)
		}
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Capacity int           `json:"capacity"`
		Appended int64         `json:"appended"`
		Dropped  int64         `json:"dropped"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output not JSON: %v\n%s", err, buf.String())
	}
	if snap.Capacity != 4 || snap.Appended != 6 || snap.Dropped != 2 || len(snap.Events) != 4 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestFlightRecorderNilAndEmpty(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightMemoryFault, "x", "y") // must not panic
	if f.Appended() != 0 || f.Dropped() != 0 || f.Cap() != 0 || f.Events() != nil {
		t.Fatal("nil recorder must be a silent no-op")
	}
	var buf bytes.Buffer
	if err := NewFlightRecorder(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"events": []`) {
		t.Fatalf("empty ring must serialize events as [], got %s", buf.String())
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightFuelExhausted, "o", "d")
				f.Events()
			}
		}()
	}
	wg.Wait()
	if f.Appended() != 4000 {
		t.Fatalf("appended %d, want 4000", f.Appended())
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(1e-6, 1e-3)
	want := []float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3}
	if len(b) != len(want) {
		t.Fatalf("LogBounds(1e-6, 1e-3) = %v, want %v", b, want)
	}
	for i := range b {
		if b[i] < want[i]*0.999 || b[i] > want[i]*1.001 {
			t.Fatalf("bound %d = %g, want %g", i, b[i], want[i])
		}
	}
	d := DispatchLatencyBounds
	if d[0] >= 1e-7 {
		t.Fatalf("dispatch bounds must start sub-100ns: %v", d[0])
	}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("dispatch bounds not ascending at %d: %v", i, d)
		}
	}
}

// TestDispatchStageSubMicroBuckets: the dispatch stages must resolve a
// ~200 ns observation into a sub-µs bucket (not the first default
// bucket), while explicit Options.Buckets still override every stage.
func TestDispatchStageSubMicroBuckets(t *testing.T) {
	r := New()
	h := r.StageHistogram(StageDispatch)
	h.Observe(200 * time.Nanosecond)
	counts := h.BucketCounts()
	bounds := h.Bounds()
	for i, c := range counts {
		if c == 1 {
			if i >= len(bounds) || bounds[i] >= 1e-6 {
				t.Fatalf("200ns landed at bucket %d (le %v), want a sub-µs bucket", i, bounds)
			}
			break
		}
	}
	if got := r.StageHistogram(StageVCGen).Bounds(); &got[0] != &DefaultLatencyBounds[0] {
		t.Fatal("non-dispatch stages must keep DefaultLatencyBounds")
	}
	custom := NewWith(Options{Buckets: []float64{1, 2}})
	if got := custom.StageHistogram(StageDispatchBatch).Bounds(); len(got) != 2 {
		t.Fatalf("explicit Buckets must win for dispatch stages too, got %v", got)
	}
}

// TestLabeledHistogramExposition: registration, identity on re-lookup,
// label escaping, and the cumulative bucket/sum/count exposition
// contract for labeled histogram families.
func TestLabeledHistogramExposition(t *testing.T) {
	r := New()
	h := r.LabeledHistogram("pcc_filter_run_seconds", "filter", `ow"ner`, []float64{1e-6, 1e-3})
	if h2 := r.LabeledHistogram("pcc_filter_run_seconds", "filter", `ow"ner`, nil); h2 != h {
		t.Fatal("re-lookup must return the registered histogram")
	}
	h.Observe(1 * time.Microsecond)  // first bucket
	h.Observe(10 * time.Microsecond) // second bucket
	h.Observe(time.Second)           // +Inf
	r.LabeledHistogram("pcc_filter_run_seconds", "filter", "other", nil).Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"# TYPE pcc_filter_run_seconds histogram",
		`pcc_filter_run_seconds_bucket{filter="ow\"ner",le="1e-06"} 1`,
		`pcc_filter_run_seconds_bucket{filter="ow\"ner",le="0.001"} 2`,
		`pcc_filter_run_seconds_bucket{filter="ow\"ner",le="+Inf"} 3`,
		`pcc_filter_run_seconds_count{filter="ow\"ner"} 3`,
		`pcc_filter_run_seconds_bucket{filter="other",le="0.001"} 1`,
		`pcc_filter_run_seconds_count{filter="other"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q:\n%s", want, page)
		}
	}

	snap := r.Snapshot(false)
	fam := snap.LabeledHistograms["pcc_filter_run_seconds"]
	if fam == nil || fam[`ow"ner`].Count != 3 || fam["other"].Count != 1 {
		t.Fatalf("snapshot labeled histograms wrong: %+v", snap.LabeledHistograms)
	}

	var nilRec *Recorder
	if nilRec.LabeledHistogram("f", "k", "v", nil) != nil {
		t.Fatal("nil recorder must hand out nil histograms")
	}
}

// TestFlightSnapshotInvariantUnderWrap is the satellite-2 hardening
// test: WriteJSON/Snapshot racing concurrent appends across many full
// ring wraps, asserting at every snapshot that
//
//	appended == len(events) + dropped
//
// holds exactly, that event Seqs are unique and ascending, and that
// every event is fully formed (no torn slot reads). Run under -race.
func TestFlightSnapshotInvariantUnderWrap(t *testing.T) {
	const capacity = 8 // tiny ring: thousands of wraps per run
	f := NewFlightRecorder(capacity)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.RecordEvent(FlightFuelExhausted, "owner", "detail", uint64(g*1_000_000+i+1))
			}
		}(g)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	snapshots := 0
	for time.Now().Before(deadline) {
		snap := f.Snapshot()
		snapshots++
		if snap.Appended != int64(len(snap.Events))+snap.Dropped {
			t.Fatalf("snapshot %d: appended %d != events %d + dropped %d",
				snapshots, snap.Appended, len(snap.Events), snap.Dropped)
		}
		if snap.Capacity != capacity || len(snap.Events) > capacity {
			t.Fatalf("snapshot %d: %d events in a %d ring", snapshots, len(snap.Events), snap.Capacity)
		}
		for i, e := range snap.Events {
			if i > 0 && e.Seq <= snap.Events[i-1].Seq {
				t.Fatalf("snapshot %d: Seq not strictly ascending at %d: %d then %d",
					snapshots, i, snap.Events[i-1].Seq, e.Seq)
			}
			if int64(e.Seq) >= snap.Appended {
				t.Fatalf("snapshot %d: event Seq %d beyond appended %d", snapshots, e.Seq, snap.Appended)
			}
			if e.Kind != FlightFuelExhausted || e.Owner != "owner" || e.Event == 0 || e.TimeUnixNanos == 0 {
				t.Fatalf("snapshot %d: torn event %+v", snapshots, e)
			}
		}
		// WriteJSON is the same snapshot through the encoder; it must
		// stay well-formed mid-wrap too.
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON under churn: %v", err)
		}
		var back FlightSnapshot
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("WriteJSON emitted invalid JSON under churn: %v", err)
		}
		if back.Appended != int64(len(back.Events))+back.Dropped {
			t.Fatalf("decoded snapshot breaks the invariant: %+v", back)
		}
	}
	close(stop)
	wg.Wait()
	if f.Dropped() == 0 {
		t.Fatal("test never wrapped the ring; invariant not exercised")
	}
}
