// Metric primitives: monotonic counters, gauges, and fixed-bucket
// latency histograms. Everything on the observation path is a single
// atomic operation — no locks, no allocation — so instrumented code
// stays race-clean and cheap enough to leave on under load. All
// methods tolerate a nil receiver and do nothing, which is how the
// kernel's "no recorder configured" path stays zero-cost without
// branching at every call site.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers must keep counters monotonic; deltas are not
// checked).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down (e.g. installed filters).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the histogram bucket upper bounds in
// seconds: a 1-2-5 ladder from 1 µs to 10 s, wide enough for a cache
// hit (~µs) and a cold multi-ms proof check on the same axis. An
// implicit +Inf bucket catches the rest.
var DefaultLatencyBounds = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	0.1, 0.2, 0.5,
	1, 2, 5, 10,
}

// LogBounds builds a log-scale 1-2-5 bucket ladder covering [lo, hi]
// (seconds): every value m*10^e with m in {1, 2, 5} that falls inside
// the range, ascending. The implicit +Inf bucket catches the rest, so
// hi only bounds the resolution, not the observable range.
func LogBounds(lo, hi float64) []float64 {
	var out []float64
	const eps = 1e-9
	for e := math.Floor(math.Log10(lo)); ; e++ {
		base := math.Pow(10, e)
		for _, m := range [3]float64{1, 2, 5} {
			v := m * base
			if v < lo*(1-eps) {
				continue
			}
			if v > hi*(1+eps) {
				return out
			}
			out = append(out, v)
		}
	}
}

// DispatchLatencyBounds is the dispatch-stage ladder: compiled filter
// runs retire in ~100 ns, far below DefaultLatencyBounds' 1 µs floor,
// so the dispatch and per-filter histograms resolve from 50 ns up to
// 50 ms (a whole stuck batch still lands in a finite bucket).
var DispatchLatencyBounds = LogBounds(50e-9, 0.05)

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds plus a binary search over the (immutable) bounds; counts
// and the running sum are exact, quantiles are bucket-interpolated
// estimates.
type Histogram struct {
	bounds   []float64 // ascending upper bounds, seconds; +Inf implicit
	buckets  []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds (seconds); nil means DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// Binary search for the first bound >= s.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Bounds returns the bucket upper bounds (seconds, +Inf implicit).
// Callers must not modify the returned slice.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts snapshots the per-bucket counts (last entry is the
// +Inf bucket). The snapshot is per-bucket atomic, not cross-bucket
// consistent; under concurrent observation the buckets may momentarily
// sum to less than a Count() taken afterwards.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation inside the bucket where the rank falls. Returns 0 for
// an empty histogram; observations beyond the last bound report the
// last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		} else if frac >= 1 {
			return upper
		}
		return lower + frac*(upper-lower)
	}
	return h.bounds[len(h.bounds)-1]
}
