// Metric primitives: monotonic counters, gauges, and fixed-bucket
// latency histograms. Everything on the observation path is a single
// atomic operation — no locks, no allocation — so instrumented code
// stays race-clean and cheap enough to leave on under load. All
// methods tolerate a nil receiver and do nothing, which is how the
// kernel's "no recorder configured" path stays zero-cost without
// branching at every call site.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. When built by a
// Recorder with Options.Window set it also feeds a sliding window, so
// the exposition can report a recent rate next to the cumulative
// total.
type Counter struct {
	n   atomic.Int64
	win *Window
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers must keep counters monotonic; deltas are not
// checked).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
	if c.win != nil {
		c.win.add(time.Now().UnixNano(), -1, n, 0)
	}
}

// Window returns the counter's sliding window (nil when windows are
// off).
func (c *Counter) Window() *Window {
	if c == nil {
		return nil
	}
	return c.win
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down (e.g. installed filters).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the histogram bucket upper bounds in
// seconds: a 1-2-5 ladder from 1 µs to 10 s, wide enough for a cache
// hit (~µs) and a cold multi-ms proof check on the same axis. An
// implicit +Inf bucket catches the rest.
var DefaultLatencyBounds = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	0.1, 0.2, 0.5,
	1, 2, 5, 10,
}

// LogBounds builds a log-scale 1-2-5 bucket ladder covering [lo, hi]
// (seconds): every value m*10^e with m in {1, 2, 5} that falls inside
// the range, ascending. The implicit +Inf bucket catches the rest, so
// hi only bounds the resolution, not the observable range.
func LogBounds(lo, hi float64) []float64 {
	var out []float64
	const eps = 1e-9
	for e := math.Floor(math.Log10(lo)); ; e++ {
		base := math.Pow(10, e)
		for _, m := range [3]float64{1, 2, 5} {
			v := m * base
			if v < lo*(1-eps) {
				continue
			}
			if v > hi*(1+eps) {
				return out
			}
			out = append(out, v)
		}
	}
}

// DispatchLatencyBounds is the dispatch-stage ladder: compiled filter
// runs retire in ~100 ns, far below DefaultLatencyBounds' 1 µs floor,
// so the dispatch and per-filter histograms resolve from 50 ns up to
// 50 ms (a whole stuck batch still lands in a finite bucket).
var DispatchLatencyBounds = LogBounds(50e-9, 0.05)

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds plus a binary search over the (immutable) bounds; counts
// and the running sum are exact, quantiles are bucket-interpolated
// estimates.
//
// Each bucket also retains an exemplar: the correlation EventID of the
// most recent observation that landed in it (via ObserveEID), linking
// a fat tail bucket directly to the span tree, audit record, and
// flight-recorder events of the operation that produced it.
//
// A histogram built by NewValueHistogram measures raw units (bytes,
// nodes) instead of seconds: bounds are raw units and the sum is the
// raw total.
type Histogram struct {
	bounds    []float64 // ascending upper bounds, seconds (or raw units); +Inf implicit
	buckets   []atomic.Int64
	exemplars []atomic.Uint64 // last EventID seen per bucket; 0 = none
	count     atomic.Int64
	sum       atomic.Int64 // nanoseconds, or raw units in value mode
	raw       bool
	win       *Window
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds (seconds); nil means DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewValueHistogram builds a histogram over raw units (proof bytes, VC
// nodes): bounds are in those units and Sum accounting is the raw
// total, not nanoseconds. Feed it with ObserveValue.
func NewValueHistogram(bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	h.raw = true
	return h
}

// bucketFor returns the index of the first bound >= v (binary search;
// len(bounds) = the +Inf bucket).
func (h *Histogram) bucketFor(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// observe is the single sink: v in bound units, sum in accounting
// units (nanos or raw), eid the correlation EventID (0 = none).
func (h *Histogram) observe(v float64, sum int64, eid uint64) {
	h.observeAt(0, v, sum, eid)
}

// observeAt is observe with the wall clock already read: now is
// UnixNanos for window attribution, or 0 to read the clock here (and
// only when a window is attached — the cumulative path never pays for
// it). Hot loops that already hold a time.Time pass it down so the
// windowed path costs no extra clock read.
func (h *Histogram) observeAt(now int64, v float64, sum int64, eid uint64) {
	b := h.bucketFor(v)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(sum)
	if eid != 0 {
		h.exemplars[b].Store(eid)
	}
	if h.win != nil {
		if now == 0 {
			now = time.Now().UnixNano()
		}
		h.win.add(now, b, 1, sum)
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.observe(d.Seconds(), d.Nanoseconds(), 0)
}

// ObserveEID records one duration tagged with the correlation EventID
// that produced it; the landed bucket retains eid as its exemplar.
func (h *Histogram) ObserveEID(d time.Duration, eid uint64) {
	if h == nil {
		return
	}
	h.observe(d.Seconds(), d.Nanoseconds(), eid)
}

// ObserveSinceEID records the elapsed time since t0 with a correlation
// EventID exemplar, reusing t0's already-read wall clock for window
// attribution. The per-observation hot path in a windowed recorder
// then pays zero extra clock reads over the unwindowed one: windows
// are second-granularity, and a dispatch run lasts microseconds, so
// stamping the observation at its start instead of its end never moves
// it by more than one interval edge.
func (h *Histogram) ObserveSinceEID(t0 time.Time, eid uint64) {
	if h == nil {
		return
	}
	d := time.Since(t0)
	h.observeAt(t0.UnixNano(), d.Seconds(), d.Nanoseconds(), eid)
}

// ObserveValue records one raw-unit observation (value histograms).
func (h *Histogram) ObserveValue(v float64) {
	if h == nil {
		return
	}
	h.observe(v, int64(v), 0)
}

// ObserveValueEID is ObserveValue with a correlation EventID exemplar.
func (h *Histogram) ObserveValueEID(v float64, eid uint64) {
	if h == nil {
		return
	}
	h.observe(v, int64(v), eid)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations (zero for value
// histograms; use SumValue there).
func (h *Histogram) Sum() time.Duration {
	if h == nil || h.raw {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// SumValue returns the histogram's total in exposition units: seconds
// for latency histograms, raw units for value histograms.
func (h *Histogram) SumValue() float64 {
	if h == nil {
		return 0
	}
	if h.raw {
		return float64(h.sum.Load())
	}
	return float64(h.sum.Load()) / 1e9
}

// Raw reports whether this is a value (raw-unit) histogram.
func (h *Histogram) Raw() bool { return h != nil && h.raw }

// Bounds returns the bucket upper bounds (seconds, +Inf implicit).
// Callers must not modify the returned slice.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Exemplars snapshots the per-bucket exemplar EventIDs (parallel to
// BucketCounts; 0 = no correlated observation landed there yet).
func (h *Histogram) Exemplars() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Window returns the histogram's sliding window (nil when windows are
// off).
func (h *Histogram) Window() *Window {
	if h == nil {
		return nil
	}
	return h.win
}

// WindowStat aggregates the sliding window: recent rate plus windowed
// p50/p99 from the merged per-interval bucket counts. Returns zeroes
// when windows are off.
func (h *Histogram) WindowStat() (st WindowStat, p50, p99 float64) {
	if h == nil || h.win == nil {
		return WindowStat{}, 0, 0
	}
	st, merged := h.win.stat(time.Now().UnixNano(), len(h.buckets))
	p50 = quantileFromCounts(h.bounds, merged, 0.50)
	p99 = quantileFromCounts(h.bounds, merged, 0.99)
	return st, p50, p99
}

// BucketCounts snapshots the per-bucket counts (last entry is the
// +Inf bucket). The snapshot is per-bucket atomic, not cross-bucket
// consistent; under concurrent observation the buckets may momentarily
// sum to less than a Count() taken afterwards.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds (raw units
// for value histograms) by linear interpolation inside the bucket
// where the rank falls. Returns 0 for an empty histogram; observations
// beyond the last bound report the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileFromCounts(h.bounds, h.BucketCounts(), q)
}

// quantileFromCounts is the interpolation core shared by the
// cumulative histogram and the sliding window's merged buckets.
func quantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // +Inf bucket: clamp
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		} else if frac >= 1 {
			return upper
		}
		return lower + frac*(upper-lower)
	}
	return bounds[len(bounds)-1]
}
