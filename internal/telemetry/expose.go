// Exposition: a Prometheus-style text page and a JSON snapshot over
// everything a Recorder holds. Reads take the registration lock only
// long enough to list the instruments; the values themselves are
// atomic snapshots, so scraping never stalls the pipeline.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// HistogramSnapshot is one histogram in a Snapshot. SumSeconds holds
// raw units (bytes, nodes) when Raw is true. The Window* fields are
// present only on recorders built with Options.Window: rate and
// quantiles over roughly the last window span instead of
// since-process-start.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	Raw        bool          `json:"raw,omitempty"`
	P50        float64       `json:"p50"`
	P90        float64       `json:"p90"`
	P99        float64       `json:"p99"`
	WindowRate float64       `json:"window_rate,omitempty"`
	WindowP50  float64       `json:"window_p50,omitempty"`
	WindowP99  float64       `json:"window_p99,omitempty"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative-style histogram bucket (Le in seconds;
// the +Inf bucket has Le = 0 and Inf = true). Exemplar is the
// correlation EventID of the most recent observation that landed in
// this bucket (0 = none): the handle that joins a fat bucket back to
// its span tree, audit record, and flight events via /debug/timeline.
type BucketCount struct {
	Le       float64 `json:"le,omitempty"`
	Inf      bool    `json:"inf,omitempty"`
	Count    int64   `json:"count"`
	Exemplar uint64  `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time JSON-friendly view of a Recorder.
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Labeled maps family -> label value -> count for labeled counter
	// families (the label key is part of the family's registration).
	Labeled map[string]map[string]int64 `json:"labeled,omitempty"`
	// LabeledHistograms maps family -> label value -> histogram for
	// labeled histogram families (e.g. per-filter dispatch latency).
	LabeledHistograms map[string]map[string]HistogramSnapshot `json:"labeled_histograms,omitempty"`
	// LabeledGauges maps family -> label value -> value for labeled
	// gauge families (e.g. per-filter breaker state).
	LabeledGauges map[string]map[string]int64 `json:"labeled_gauges,omitempty"`
	// Rates maps counter name -> events/sec over the sliding window;
	// LabeledRates is the same per label value. Present only on
	// recorders built with Options.Window.
	Rates         map[string]float64            `json:"rates,omitempty"`
	LabeledRates  map[string]map[string]float64 `json:"labeled_rates,omitempty"`
	TraceAppended int64                         `json:"trace_appended"`
	TraceDropped  int64                         `json:"trace_dropped"`
}

func snapHistogram(h *Histogram, withBuckets bool) HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.Count(),
		SumSeconds: h.SumValue(),
		Raw:        h.Raw(),
		P50:        h.Quantile(0.50),
		P90:        h.Quantile(0.90),
		P99:        h.Quantile(0.99),
	}
	if h.win != nil {
		st, p50, p99 := h.WindowStat()
		s.WindowRate = st.Rate
		s.WindowP50 = p50
		s.WindowP99 = p99
	}
	if withBuckets {
		counts := h.BucketCounts()
		ex := h.Exemplars()
		var cum int64
		for i, c := range counts {
			cum += c
			b := BucketCount{Count: cum, Exemplar: ex[i]}
			if i < len(h.bounds) {
				b.Le = h.bounds[i]
			} else {
				b.Inf = true
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// histogramSet lists every histogram with a stable, sorted name set:
// the built-in stage histograms plus any dynamically registered ones.
func (r *Recorder) histogramSet() map[string]*Histogram {
	out := make(map[string]*Histogram, len(r.stageHists)+len(r.hists))
	for stage, h := range r.stageHists {
		out["pcc_stage_"+stage+"_seconds"] = h
	}
	r.mu.RLock()
	for name, h := range r.hists {
		out[name] = h
	}
	r.mu.RUnlock()
	return out
}

// Snapshot captures the recorder's current state. Individual values
// are read atomically; the snapshot as a whole is not a consistent
// cut while the pipeline is running (same contract as kernel.Stats).
func (r *Recorder) Snapshot(withBuckets bool) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      map[string]int64{},
		Gauges:        map[string]int64{},
		Histograms:    map[string]HistogramSnapshot{},
		TraceAppended: r.trace.Appended(),
		TraceDropped:  r.trace.Dropped(),
	}
	windowed := r.winOpts != nil
	if windowed {
		s.Rates = map[string]float64{}
		s.LabeledRates = map[string]map[string]float64{}
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
		if windowed {
			s.Rates[name] = c.Window().Stat().Rate
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	if len(r.labeled) > 0 {
		s.Labeled = map[string]map[string]int64{}
		for fam, lf := range r.labeled {
			vals := make(map[string]int64, len(lf.vals))
			var rates map[string]float64
			if windowed {
				rates = make(map[string]float64, len(lf.vals))
			}
			for v, c := range lf.vals {
				vals[v] = c.Value()
				if windowed {
					rates[v] = c.Window().Stat().Rate
				}
			}
			s.Labeled[fam] = vals
			if windowed {
				s.LabeledRates[fam] = rates
			}
		}
	}
	if len(r.labeledHists) > 0 {
		s.LabeledHistograms = map[string]map[string]HistogramSnapshot{}
		for fam, lf := range r.labeledHists {
			vals := make(map[string]HistogramSnapshot, len(lf.vals))
			for v, h := range lf.vals {
				vals[v] = snapHistogram(h, withBuckets)
			}
			s.LabeledHistograms[fam] = vals
		}
	}
	if len(r.labeledGauges) > 0 {
		s.LabeledGauges = map[string]map[string]int64{}
		for fam, lf := range r.labeledGauges {
			vals := make(map[string]int64, len(lf.vals))
			for v, g := range lf.vals {
				vals[v] = g.Value()
			}
			s.LabeledGauges[fam] = vals
		}
	}
	r.mu.RUnlock()
	for name, h := range r.histogramSet() {
		s.Histograms[name] = snapHistogram(h, withBuckets)
	}
	return s
}

// WriteJSON writes the snapshot (with buckets) as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(true))
}

// fmtFloat renders a float the way Prometheus text format expects.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus writes a Prometheus-style text exposition page:
// every counter and gauge as a single sample, every histogram as
// cumulative _bucket{le=...} samples plus _sum and _count, and the
// tracer's own accounting as pcc_trace_events_total /
// pcc_trace_dropped_total. Metric families are sorted by name so the
// page is diff-stable.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type line struct{ name, text string }
	var lines []line

	r.mu.RLock()
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, c.Value())})
	}
	for name, g := range r.gauges {
		lines = append(lines, line{name, fmt.Sprintf("# TYPE %s gauge\n%s %d\n", name, name, g.Value())})
	}
	for fam, lf := range r.labeled {
		vals := make([]string, 0, len(lf.vals))
		for v := range lf.vals {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		text := fmt.Sprintf("# TYPE %s counter\n", fam)
		for _, v := range vals {
			// Label values are untrusted (filter owner names); escape
			// them so the page stays parseable.
			text += fmt.Sprintf("%s{%s=\"%s\"} %d\n", fam, lf.key, EscapeLabelValue(v), lf.vals[v].Value())
		}
		lines = append(lines, line{fam, text})
	}
	for fam, lf := range r.labeledGauges {
		vals := make([]string, 0, len(lf.vals))
		for v := range lf.vals {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		text := fmt.Sprintf("# TYPE %s gauge\n", fam)
		for _, v := range vals {
			// Label values are untrusted (filter owner names); escape
			// them so the page stays parseable.
			text += fmt.Sprintf("%s{%s=\"%s\"} %d\n", fam, lf.key, EscapeLabelValue(v), lf.vals[v].Value())
		}
		lines = append(lines, line{fam, text})
	}
	for fam, lf := range r.labeledHists {
		vals := make([]string, 0, len(lf.vals))
		for v := range lf.vals {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		text := fmt.Sprintf("# TYPE %s histogram\n", fam)
		for _, v := range vals {
			h := lf.vals[v]
			ev := EscapeLabelValue(v)
			counts := h.BucketCounts()
			var cum int64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				text += fmt.Sprintf("%s_bucket{%s=\"%s\",le=%q} %d\n", fam, lf.key, ev, le, cum)
			}
			text += fmt.Sprintf("%s_sum{%s=\"%s\"} %s\n", fam, lf.key, ev, fmtFloat(h.SumValue()))
			text += fmt.Sprintf("%s_count{%s=\"%s\"} %d\n", fam, lf.key, ev, cum)
		}
		lines = append(lines, line{fam, text})
	}
	r.mu.RUnlock()

	lines = append(lines,
		line{"pcc_trace_events_total", fmt.Sprintf("# TYPE pcc_trace_events_total counter\npcc_trace_events_total %d\n", r.trace.Appended())},
		line{"pcc_trace_dropped_total", fmt.Sprintf("# TYPE pcc_trace_dropped_total counter\npcc_trace_dropped_total %d\n", r.trace.Dropped())},
	)

	for name, h := range r.histogramSet() {
		text := fmt.Sprintf("# TYPE %s histogram\n", name)
		counts := h.BucketCounts()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = fmtFloat(h.bounds[i])
			}
			text += fmt.Sprintf("%s_bucket{le=%q} %d\n", name, le, cum)
		}
		text += fmt.Sprintf("%s_sum %s\n", name, fmtFloat(h.SumValue()))
		text += fmt.Sprintf("%s_count %d\n", name, cum)
		lines = append(lines, line{name, text})
	}

	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
