package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"sync"
	"testing"
)

// TestAuditRingHandler: records logged through the tee handler land in
// the ring with the join keys hoisted (event → Kind, owner → Owner,
// event_id → Event) and everything else flattened into Attrs, while
// still forwarding to the next handler.
func TestAuditRingHandler(t *testing.T) {
	ring := NewAuditRing(8)
	var fwd bytes.Buffer
	log := slog.New(ring.Handler(slog.NewJSONHandler(&fwd, nil)))
	log.Info("pcc install",
		slog.String("event", "install"),
		slog.String("owner", "alice"),
		slog.Uint64("event_id", 42),
		slog.String("policy", "packet-filter/v1"),
	)
	recs := ring.Records()
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != "install" || r.Owner != "alice" || r.Event != 42 {
		t.Fatalf("join keys not hoisted: %+v", r)
	}
	if r.Attrs["policy"] != "packet-filter/v1" {
		t.Fatalf("plain attrs must flatten: %+v", r.Attrs)
	}
	if r.Msg != "pcc install" || r.Level != "INFO" || r.TimeUnixNanos == 0 {
		t.Fatalf("record envelope wrong: %+v", r)
	}
	if !bytes.Contains(fwd.Bytes(), []byte(`"owner":"alice"`)) {
		t.Fatalf("tee must forward to the next handler: %s", fwd.String())
	}
}

// TestAuditRingWithAttrsAndGroups: logger.With attributes (the
// per-tenant tag) and groups survive into the captured record.
func TestAuditRingWithAttrsAndGroups(t *testing.T) {
	ring := NewAuditRing(8)
	log := slog.New(ring.Handler(nil)).With("tenant", "a")
	log.WithGroup("lf").Info("m", slog.Int("steps", 7), slog.Uint64("event_id", 3))
	recs := ring.Records()
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Attrs["tenant"] != "a" {
		t.Fatalf("With attrs must be captured: %+v", r.Attrs)
	}
	if r.Attrs["lf.steps"] != "7" {
		t.Fatalf("group-qualified attrs must flatten with a prefix: %+v", r.Attrs)
	}
	if r.Event != 0 {
		// event_id inside a group is lf.event_id, not the join key.
		t.Fatalf("grouped event_id must not hoist: %+v", r)
	}
	if r.Attrs["lf.event_id"] != "3" {
		t.Fatalf("grouped event_id must stay an attr: %+v", r.Attrs)
	}
}

// TestAuditRingWrapAndJSONL: ring overwrite accounting and the
// JSONL round trip.
func TestAuditRingWrapAndJSONL(t *testing.T) {
	ring := NewAuditRing(4)
	log := slog.New(ring.Handler(nil))
	for i := 0; i < 6; i++ {
		log.Info("m", slog.Uint64("event_id", uint64(i+1)))
	}
	if ring.Appended() != 6 {
		t.Fatalf("appended = %d, want 6", ring.Appended())
	}
	recs := ring.Records()
	if len(recs) != 4 || recs[0].Seq != 2 || recs[3].Seq != 5 {
		t.Fatalf("wrap must keep the newest 4: %+v", recs)
	}
	var buf bytes.Buffer
	if err := ring.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAuditJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || back[0].Event != 3 || back[3].Event != 6 {
		t.Fatalf("JSONL round trip lost records: %+v", back)
	}
}

// TestAuditRingNil: a nil ring is a silent no-op sink.
func TestAuditRingNil(t *testing.T) {
	var ring *AuditRing
	ring.add(&AuditRecord{})
	if ring.Appended() != 0 || ring.Records() != nil {
		t.Fatal("nil ring must be inert")
	}
	if err := ring.WriteJSONL(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestAuditRingConcurrent: racing writers against a snapshotting
// reader under -race; Seq stays strictly increasing in every snapshot.
func TestAuditRingConcurrent(t *testing.T) {
	ring := NewAuditRing(32)
	log := slog.New(ring.Handler(nil))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				log.Info("m", slog.Uint64("event_id", uint64(i)))
				recs := ring.Records()
				for j := 1; j < len(recs); j++ {
					if recs[j].Seq <= recs[j-1].Seq {
						panic("audit ring snapshot out of order")
					}
				}
			}
		}()
	}
	wg.Wait()
	if ring.Appended() != 2400 {
		t.Fatalf("appended = %d, want 2400", ring.Appended())
	}
}
