package telemetry

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestLabeledCounterExposition: labeled families expose one sample
// per label value, sorted, under a single TYPE header.
func TestLabeledCounterExposition(t *testing.T) {
	r := New()
	r.LabeledCounter("pcc_filter_accepts_total", "filter", "b").Add(2)
	r.LabeledCounter("pcc_filter_accepts_total", "filter", "a").Add(7)
	if got := r.LabeledCounter("pcc_filter_accepts_total", "filter", "a").Value(); got != 7 {
		t.Fatalf("counter identity lost across lookups: %d", got)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	ia := strings.Index(page, `pcc_filter_accepts_total{filter="a"} 7`)
	ib := strings.Index(page, `pcc_filter_accepts_total{filter="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("labeled samples missing or unsorted:\n%s", page)
	}
	if strings.Count(page, "# TYPE pcc_filter_accepts_total counter") != 1 {
		t.Fatalf("family must have exactly one TYPE header:\n%s", page)
	}

	snap := r.Snapshot(false)
	if snap.Labeled["pcc_filter_accepts_total"]["a"] != 7 {
		t.Fatalf("snapshot missing labeled counters: %+v", snap.Labeled)
	}
}

// TestLabelEscaping: filter names carrying quotes, backslashes, and
// newlines — all installable owner strings — must still produce valid
// Prometheus text: every sample on one line, label values correctly
// escaped.
func TestLabelEscaping(t *testing.T) {
	r := New()
	hostile := []string{
		`quote"name`,
		`back\slash`,
		"new\nline",
		"all\\three\"at\nonce",
	}
	for _, name := range hostile {
		r.LabeledCounter("pcc_filter_cycles_total", "filter", name).Add(5)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	for _, want := range []string{
		`pcc_filter_cycles_total{filter="quote\"name"} 5`,
		`pcc_filter_cycles_total{filter="back\\slash"} 5`,
		`pcc_filter_cycles_total{filter="new\nline"} 5`,
		`pcc_filter_cycles_total{filter="all\\three\"at\nonce"} 5`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing escaped sample %q:\n%s", want, page)
		}
	}

	// Every line on the page must be a comment or a well-formed
	// sample; a raw newline or quote in a label value would break
	// this.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="(\\.|[^"\\])*"\})? -?[0-9.eE+-]+(Inf)?$`)
	for _, ln := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !sample.MatchString(ln) {
			t.Errorf("invalid exposition line %q", ln)
		}
	}
}

// TestLabeledGaugeExposition: labeled gauge families (breaker state)
// expose one sample per label value under a gauge TYPE header, land in
// the JSON snapshot, survive hostile label values, and keep gauge
// identity across lookups (Set, not accumulate).
func TestLabeledGaugeExposition(t *testing.T) {
	r := New()
	r.LabeledGauge("pcc_breaker_state", "filter", "b").Set(1)
	r.LabeledGauge("pcc_breaker_state", "filter", "a").Set(2)
	r.LabeledGauge("pcc_breaker_state", "filter", "a").Set(0)
	hostile := `evil"}` + "\nfake_metric 1"
	r.LabeledGauge("pcc_breaker_state", "filter", hostile).Set(1)
	if got := r.LabeledGauge("pcc_breaker_state", "filter", "a").Value(); got != 0 {
		t.Fatalf("gauge identity lost across lookups: %d", got)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`pcc_breaker_state{filter="a"} 0`,
		`pcc_breaker_state{filter="b"} 1`,
		`pcc_breaker_state{filter="evil\"}\nfake_metric 1"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q:\n%s", want, page)
		}
	}
	if strings.Count(page, "# TYPE pcc_breaker_state gauge") != 1 {
		t.Fatalf("family must have exactly one TYPE header:\n%s", page)
	}
	// The hostile owner must not have smuggled a fresh metric line onto
	// the page: "fake_metric" may appear only inside a quoted label.
	for _, ln := range strings.Split(page, "\n") {
		if strings.HasPrefix(ln, "fake_metric") {
			t.Fatalf("hostile label value escaped into a metric line: %q", ln)
		}
	}

	snap := r.Snapshot(false)
	if snap.LabeledGauges["pcc_breaker_state"]["b"] != 1 {
		t.Fatalf("snapshot missing labeled gauges: %+v", snap.LabeledGauges)
	}

	var nr *Recorder
	g := nr.LabeledGauge("f", "k", "v")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil recorder produced a live gauge")
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		"plain":     "plain",
		`a\b`:       `a\\b`,
		`a"b`:       `a\"b`,
		"a\nb":      `a\nb`,
		"\\\"\n":    `\\\"\n`,
		"Filter 1":  "Filter 1",
		"tab\tsafe": "tab\tsafe", // tabs are legal in label values
	} {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLabeledCounterNilRecorder: the nil-recorder path must stay a
// no-op.
func TestLabeledCounterNilRecorder(t *testing.T) {
	var r *Recorder
	c := r.LabeledCounter("f", "k", "v")
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil recorder produced a live counter")
	}
}

// TestHistogramEdgeBuckets: an observation exactly on a bucket
// boundary must land in that bucket (le is an inclusive upper bound),
// and an observation above the top bound must land only in +Inf.
func TestHistogramEdgeBuckets(t *testing.T) {
	h := NewHistogram([]float64{1e-6, 1e-3, 1}) // 1µs, 1ms, 1s; +Inf implicit

	h.Observe(time.Microsecond) // exactly the first bound
	counts := h.BucketCounts()
	if counts[0] != 1 {
		t.Fatalf("boundary observation missed its bucket: %v", counts)
	}

	h.Observe(time.Millisecond) // exactly the second bound
	h.Observe(time.Second)      // exactly the top finite bound
	counts = h.BucketCounts()
	if counts[1] != 1 || counts[2] != 1 || counts[3] != 0 {
		t.Fatalf("boundary observations misbucketed: %v", counts)
	}

	h.Observe(5 * time.Second) // above every finite bound
	counts = h.BucketCounts()
	if counts[3] != 1 {
		t.Fatalf("above-top observation not in +Inf: %v", counts)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}

	// The exposition's cumulative buckets must agree: le="1" covers
	// everything but the +Inf overflow.
	r := New()
	r.mu.Lock()
	r.hists["pcc_edge_seconds"] = h
	r.mu.Unlock()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`pcc_edge_seconds_bucket{le="1e-06"} 1`,
		`pcc_edge_seconds_bucket{le="0.001"} 2`,
		`pcc_edge_seconds_bucket{le="1"} 3`,
		`pcc_edge_seconds_bucket{le="+Inf"} 4`,
		`pcc_edge_seconds_count 4`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q:\n%s", want, page)
		}
	}
}
