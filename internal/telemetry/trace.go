// Span tracer: a fixed-capacity ring of completed spans, appended
// lock-free (one atomic counter claims a slot, one atomic pointer
// store publishes the event) so the dispatch path never queues behind
// a reader. When the ring wraps, the oldest events are overwritten and
// counted as dropped — telemetry degrades by forgetting history, never
// by blocking the kernel.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Event is one completed span. Times are nanoseconds since the
// recorder was created (a monotonic, export-friendly origin).
type Event struct {
	// ID identifies the span; Parent links a child stage to its
	// enclosing span (0 = root).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Event is the kernel-level correlation EventID shared with the
	// audit record and any flight-recorder events produced by the same
	// operation (0 = uncorrelated). Span IDs are per-recorder and
	// per-span; EventIDs are per-kernel and per-operation, so one
	// install or dispatch batch yields one EventID across many spans.
	Event uint64 `json:"event,omitempty"`
	// Stage is the pipeline stage name (see Stages).
	Stage string `json:"stage"`
	// Detail is free-form context: the owner of an install, the name
	// of a negotiated policy, a cache-probe verdict.
	Detail string `json:"detail,omitempty"`
	// StartNanos/DurNanos locate the span on the recorder's clock.
	StartNanos int64 `json:"start_ns"`
	DurNanos   int64 `json:"dur_ns"`
	// Err is the failure, if the stage failed.
	Err string `json:"err,omitempty"`
}

// Trace is the ring buffer of completed spans.
type Trace struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64 // total events ever appended
}

// DefaultTraceCapacity is the ring size of recorders built with New.
const DefaultTraceCapacity = 4096

// newTrace builds a ring holding up to capacity events.
func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{slots: make([]atomic.Pointer[Event], capacity)}
}

// add appends one completed event, overwriting the oldest when full.
func (t *Trace) add(e *Event) {
	seq := t.next.Add(1) - 1
	t.slots[seq%uint64(len(t.slots))].Store(e)
}

// Appended returns the total number of events ever appended.
func (t *Trace) Appended() int64 { return int64(t.next.Load()) }

// Dropped returns how many events have been overwritten by ring wrap.
func (t *Trace) Dropped() int64 {
	n := int64(t.next.Load()) - int64(len(t.slots))
	if n < 0 {
		return 0
	}
	return n
}

// Events snapshots the ring's current contents, oldest first. Each
// slot is read atomically; a concurrent append may replace a slot
// mid-snapshot, so the result is a consistent set of real events but
// not a point-in-time cut.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		if e := t.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteJSONL writes the ring's events as JSON-lines, oldest first.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSON-lines trace export (the inverse of
// WriteJSONL); blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
