package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	r.StageHistogram(StageVCGen).Observe(time.Second)
	sp := r.StartSpan(StageValidate, "owner")
	sp.Child(StageParse).End(nil)
	sp.End(errors.New("boom"))
	if id := r.RecordSpan(StageWCET, "", 0, 0, time.Now(), time.Millisecond, nil); id != 0 {
		t.Errorf("nil RecordSpan id = %d, want 0", id)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(true); s.TraceAppended != 0 {
		t.Errorf("nil snapshot: %+v", s)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 50; i++ {
		h.Observe(500 * time.Microsecond) // first bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(5 * time.Millisecond) // second bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 50*500*time.Microsecond + 40*5*time.Millisecond + 10*50*time.Millisecond
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 = %g, want within first bucket (0, 0.001]", p50)
	}
	if p90 := h.Quantile(0.90); p90 <= 0.001 || p90 > 0.01 {
		t.Errorf("p90 = %g, want within second bucket (0.001, 0.01]", p90)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %g, want within third bucket (0.01, 0.1]", p99)
	}
	// Beyond the last bound: clamped to the last finite bound.
	h2 := NewHistogram([]float64{0.001})
	h2.Observe(time.Second)
	if q := h2.Quantile(0.5); q != 0.001 {
		t.Errorf("overflow quantile = %g, want clamp to 0.001", q)
	}
	if h3 := NewHistogram(nil); h3.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestSpanTreeAndStageHistograms(t *testing.T) {
	r := New()
	root := r.StartSpan(StageValidate, "alice")
	child := root.Child(StageVCGen)
	child.End(nil)
	root.End(nil)
	r.RecordSpan(StageWCET, "alice", root.ID(), 0, time.Now(), 3*time.Millisecond, nil)

	events := r.Trace().Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	byStage := map[string]Event{}
	for _, e := range events {
		byStage[e.Stage] = e
	}
	if byStage[StageVCGen].Parent != byStage[StageValidate].ID {
		t.Errorf("vcgen parent = %d, want %d", byStage[StageVCGen].Parent, byStage[StageValidate].ID)
	}
	if byStage[StageWCET].Parent != byStage[StageValidate].ID {
		t.Errorf("wcet parent = %d, want %d", byStage[StageWCET].Parent, byStage[StageValidate].ID)
	}
	if byStage[StageWCET].DurNanos != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("wcet dur = %d", byStage[StageWCET].DurNanos)
	}
	for _, stage := range []string{StageValidate, StageVCGen, StageWCET} {
		if n := r.StageHistogram(stage).Count(); n != 1 {
			t.Errorf("stage %s histogram count = %d, want 1", stage, n)
		}
	}
}

func TestSpanErrorRecorded(t *testing.T) {
	r := New()
	sp := r.StartSpan(StageValidate, "mallory")
	sp.End(errors.New("proof validation failed"))
	events := r.Trace().Events()
	if len(events) != 1 || events[0].Err != "proof validation failed" {
		t.Fatalf("events = %+v", events)
	}
}

func TestTraceRingWrapAndDropAccounting(t *testing.T) {
	r := NewWith(Options{TraceCapacity: 8})
	for i := 0; i < 20; i++ {
		r.RecordSpan(StageDispatch, "", 0, 0, time.Now(), time.Microsecond, nil)
	}
	tr := r.Trace()
	if tr.Appended() != 20 {
		t.Errorf("appended = %d, want 20", tr.Appended())
	}
	if tr.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("ring holds %d, want 8", len(events))
	}
	// The ring keeps the newest events (IDs 13..20).
	for i, e := range events {
		if want := uint64(13 + i); e.ID != want {
			t.Errorf("event[%d].ID = %d, want %d", i, e.ID, want)
		}
	}
	if int64(len(events))+tr.Dropped() != tr.Appended() {
		t.Error("ring + dropped != appended")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewWith(Options{TraceCapacity: 64})
	root := r.StartSpan(StageValidate, "bob")
	root.Child(StageParse).End(nil)
	root.End(errors.New("rejected"))
	r.StartSpan(StageDispatch, "").End(nil)

	var buf bytes.Buffer
	if err := r.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("jsonl lines = %d, want 3:\n%s", lines, buf.String())
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Trace().Events()
	if len(decoded) != len(orig) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(orig))
	}
	for i := range orig {
		if decoded[i] != orig[i] {
			t.Errorf("round-trip mismatch at %d:\n got %+v\nwant %+v", i, decoded[i], orig[i])
		}
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line should error")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("pcc_install_installed_total").Add(3)
	r.Counter("pcc_install_rejected_total").Add(1)
	r.Gauge("pcc_filters_installed").Set(2)
	r.StartSpan(StageVCGen, "").End(nil)
	r.StartSpan(StageDispatch, "").End(nil)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"# TYPE pcc_install_installed_total counter",
		"pcc_install_installed_total 3",
		"pcc_install_rejected_total 1",
		"# TYPE pcc_filters_installed gauge",
		"pcc_filters_installed 2",
		"# TYPE pcc_stage_vcgen_seconds histogram",
		`pcc_stage_vcgen_seconds_bucket{le="+Inf"} 1`,
		"pcc_stage_vcgen_seconds_count 1",
		"pcc_stage_dispatch_seconds_count 1",
		"pcc_trace_events_total 2",
		"pcc_trace_dropped_total 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q\n%s", want, page)
		}
	}
	// Deterministic ordering: two scrapes render identically.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if page != buf2.String() {
		t.Error("exposition page is not deterministic")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := New()
	r.Counter("pcc_cache_hits_total").Add(9)
	r.StartSpan(StageLFCheck, "").End(nil)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot(true)
	if s.Counters["pcc_cache_hits_total"] != 9 {
		t.Errorf("snapshot counters: %+v", s.Counters)
	}
	hs, ok := s.Histograms["pcc_stage_lfcheck_seconds"]
	if !ok || hs.Count != 1 || len(hs.Buckets) != len(DefaultLatencyBounds)+1 {
		t.Errorf("snapshot histogram: %+v", hs)
	}
	if !strings.Contains(buf.String(), "pcc_cache_hits_total") {
		t.Errorf("json missing counter:\n%s", buf.String())
	}
}

// TestConcurrentRecording hammers one recorder from many goroutines
// (spans, counters, scrapes, trace reads) — the lock-free claims must
// hold under -race, and no event may be lost beyond ring drops.
func TestConcurrentRecording(t *testing.T) {
	r := NewWith(Options{TraceCapacity: 128})
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := r.StartSpan(StageValidate, fmt.Sprintf("w%d", w))
				sp.Child(StageVCGen).End(nil)
				sp.End(nil)
				r.Counter("pcc_install_installed_total").Inc()
				if i%32 == 0 {
					r.Trace().Events()
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	wantSpans := int64(workers * iters * 2)
	if got := r.Trace().Appended(); got != wantSpans {
		t.Errorf("appended = %d, want %d", got, wantSpans)
	}
	var histTotal int64
	for _, stage := range Stages {
		histTotal += r.StageHistogram(stage).Count()
	}
	if histTotal != wantSpans {
		t.Errorf("histogram totals = %d, want %d (one observation per span)", histTotal, wantSpans)
	}
	if got := r.Counter("pcc_install_installed_total").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if int64(len(r.Trace().Events()))+r.Trace().Dropped() != r.Trace().Appended() {
		t.Error("ring + dropped != appended")
	}
}
