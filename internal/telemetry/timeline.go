// Timeline: the correlated view over the three rings. Spans (the span
// tracer), audit records (the audit ring), and flight-recorder events
// all carry the same kernel-level EventID, so one query — "everything
// about event 12345", "everything owner alice did in the last 5s" —
// joins the where-did-the-microseconds-go, why-was-it-decided, and
// what-went-wrong streams into one merged, time-sorted document. This
// is what /debug/timeline serves.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// TimelineQuery filters a timeline. Zero values mean "no constraint".
type TimelineQuery struct {
	// Event selects a single correlation EventID across all three
	// streams (the primary join key).
	Event uint64
	// Owner matches span details, audit owners, and flight owners.
	Owner string
	// Stage restricts spans to one pipeline stage (audit and flight
	// entries are unaffected unless Kind also filters them).
	Stage string
	// Kind restricts audit records (install, negotiate, config, ...)
	// and flight events (fuel_exhausted, quarantine, ...) to one kind.
	Kind string
	// SinceUnixNanos drops anything older than the given wall time.
	SinceUnixNanos int64
}

// TimelineSpan is a span event with its wall-clock start attached
// (trace events are recorder-relative; the timeline is absolute).
type TimelineSpan struct {
	Event
	TimeUnixNanos int64 `json:"time_unix_ns"`
}

// Timeline is the joined document: the three streams, each
// time-sorted, sharing correlation EventIDs.
type Timeline struct {
	// Tenant is set by multi-tenant servers so a saved document
	// self-identifies.
	Tenant string         `json:"tenant,omitempty"`
	Spans  []TimelineSpan `json:"spans"`
	Audit  []AuditRecord  `json:"audit"`
	Flight []FlightEvent  `json:"flight"`
}

// BuildTimeline snapshots the three rings (any of which may be nil)
// and returns the records matching q, each stream sorted by wall time.
func BuildTimeline(rec *Recorder, ar *AuditRing, fr *FlightRecorder, q TimelineQuery) Timeline {
	tl := Timeline{Spans: []TimelineSpan{}, Audit: []AuditRecord{}, Flight: []FlightEvent{}}
	if tr := rec.Trace(); tr != nil {
		origin := rec.StartTime().UnixNano()
		for _, e := range tr.Events() {
			ts := origin + e.StartNanos
			if q.Event != 0 && e.Event != q.Event {
				continue
			}
			if q.Owner != "" && e.Detail != q.Owner {
				continue
			}
			if q.Stage != "" && e.Stage != q.Stage {
				continue
			}
			if q.SinceUnixNanos != 0 && ts < q.SinceUnixNanos {
				continue
			}
			tl.Spans = append(tl.Spans, TimelineSpan{Event: e, TimeUnixNanos: ts})
		}
		sort.Slice(tl.Spans, func(i, j int) bool {
			a, b := tl.Spans[i], tl.Spans[j]
			if a.TimeUnixNanos != b.TimeUnixNanos {
				return a.TimeUnixNanos < b.TimeUnixNanos
			}
			return a.ID < b.ID
		})
	}
	for _, r := range ar.Records() {
		if q.Event != 0 && r.Event != q.Event {
			continue
		}
		if q.Owner != "" && r.Owner != q.Owner {
			continue
		}
		if q.Kind != "" && r.Kind != q.Kind {
			continue
		}
		if q.SinceUnixNanos != 0 && r.TimeUnixNanos < q.SinceUnixNanos {
			continue
		}
		tl.Audit = append(tl.Audit, r)
	}
	for _, e := range fr.Snapshot().Events {
		if q.Event != 0 && e.Event != q.Event {
			continue
		}
		if q.Owner != "" && e.Owner != q.Owner {
			continue
		}
		if q.Kind != "" && e.Kind != q.Kind {
			continue
		}
		if q.SinceUnixNanos != 0 && e.TimeUnixNanos < q.SinceUnixNanos {
			continue
		}
		tl.Flight = append(tl.Flight, e)
	}
	return tl
}

// WriteJSON writes the timeline as one indented JSON document.
func (tl Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}
