package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestWindowRotation drives a window with synthetic clocks: same-epoch
// adds accumulate, a new epoch rotates the slot, and observations from
// an interval the ring already rotated past are dropped from the
// window (never double-counted).
func TestWindowRotation(t *testing.T) {
	w := newWindow(WindowOptions{Interval: time.Second, Slots: 3}, 0)
	w.created = 0
	sec := int64(time.Second)

	w.add(1*sec, -1, 2, 10)
	w.add(1*sec+sec/2, -1, 3, 20)
	st, _ := w.stat(1*sec+sec/2, 0)
	if st.Count != 5 || st.Sum != 30 {
		t.Fatalf("same-epoch adds: count/sum = %d/%d, want 5/30", st.Count, st.Sum)
	}

	// Epoch 4 reuses epoch 1's slot (3-slot ring): rotation zeroes it.
	w.add(4*sec, -1, 7, 70)
	st, _ = w.stat(4*sec, 0)
	if st.Count != 7 || st.Sum != 70 {
		t.Fatalf("after rotation: count/sum = %d/%d, want 7/70", st.Count, st.Sum)
	}

	// A straggler from the rotated-past epoch must be dropped.
	w.add(1*sec, -1, 100, 1000)
	st, _ = w.stat(4*sec, 0)
	if st.Count != 7 {
		t.Fatalf("straggler must be dropped from the window, count = %d", st.Count)
	}

	// stat excludes slots older than the window span.
	w.add(2*sec, -1, 4, 0) // live at now=4s (window covers epochs 2..4)
	st, _ = w.stat(4*sec, 0)
	if st.Count != 11 {
		t.Fatalf("in-window epoch must count: %d, want 11", st.Count)
	}
	st, _ = w.stat(7*sec, 0) // window now 5..7: everything aged out
	if st.Count != 0 {
		t.Fatalf("aged-out epochs must not count: %d, want 0", st.Count)
	}
}

// TestWindowRate checks the covered-span clamp: a window younger than
// its full span reports Count over its age, not over the full span.
func TestWindowRate(t *testing.T) {
	w := newWindow(WindowOptions{Interval: time.Second, Slots: 60}, 0)
	w.created = 0
	sec := int64(time.Second)
	w.add(1*sec, -1, 10, 0)
	st, _ := w.stat(2*sec, 0)
	if st.Seconds != 2 {
		t.Fatalf("young window must clamp span to its age: %v s", st.Seconds)
	}
	if st.Rate != 5 {
		t.Fatalf("rate = %v, want 5/s", st.Rate)
	}
	// Past one full span the denominator pins at Interval*Slots.
	st, _ = w.stat(1000*sec, 0)
	if st.Seconds != 60 {
		t.Fatalf("old window must cover Interval*Slots: %v s", st.Seconds)
	}
}

// TestWindowedRecorder exercises the integrated path: a recorder built
// with Options.Window reports rates and windowed quantiles in its
// snapshot, and attaches windows to dynamically registered and labeled
// instruments.
func TestWindowedRecorder(t *testing.T) {
	r := NewWith(Options{Window: &WindowOptions{Interval: time.Second, Slots: 5}})
	r.Counter("pcc_packets_total").Add(50)
	r.LabeledCounter("pcc_rejects_total", "reason", "limit").Add(3)
	h := r.Histogram("h")
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Microsecond)
	}

	snap := r.Snapshot(false)
	if snap.Rates == nil || snap.Rates["pcc_packets_total"] <= 0 {
		t.Fatalf("windowed snapshot must report counter rates: %+v", snap.Rates)
	}
	if snap.LabeledRates["pcc_rejects_total"]["limit"] <= 0 {
		t.Fatalf("windowed snapshot must report labeled rates: %+v", snap.LabeledRates)
	}
	hs := snap.Histograms["h"]
	if hs.WindowRate <= 0 {
		t.Fatalf("windowed histogram must report a rate: %+v", hs)
	}
	if hs.WindowP50 < 2e-6 || hs.WindowP50 > 5e-6 {
		t.Fatalf("windowed p50 = %v, want ~3µs", hs.WindowP50)
	}
	if hs.WindowP99 < 2e-6 || hs.WindowP99 > 5e-6 {
		t.Fatalf("windowed p99 = %v, want ~3µs", hs.WindowP99)
	}

	// Unwindowed recorders must not grow the new snapshot sections.
	plain := New().Snapshot(false)
	if plain.Rates != nil || plain.LabeledRates != nil {
		t.Fatal("unwindowed snapshot must omit rates")
	}
	if plain.Histograms["pcc_stage_validate_seconds"].WindowRate != 0 {
		t.Fatal("unwindowed histograms must not report window stats")
	}
}

// TestWindowConcurrent hammers one window from many goroutines across
// epochs while a reader snapshots, under -race. The invariant is
// weaker than the cumulative one (boundary attribution is
// best-effort): counts never exceed what was added and stat never
// panics or returns negatives.
func TestWindowConcurrent(t *testing.T) {
	w := newWindow(WindowOptions{Interval: time.Millisecond, Slots: 4}, 3)
	const gs, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, merged := w.stat(time.Now().UnixNano(), 3)
			if st.Count < 0 || st.Sum < 0 || st.Rate < 0 {
				panic("negative window stat")
			}
			var bsum int64
			for _, c := range merged {
				bsum += c
			}
			_ = bsum
		}
	}()
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.add(time.Now().UnixNano(), i%3, 1, int64(i))
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	st, _ := w.stat(time.Now().UnixNano(), 3)
	if st.Count > gs*per {
		t.Fatalf("window over-counted: %d > %d", st.Count, gs*per)
	}
}

// TestValueHistogram: raw-unit mode keeps the sum in raw units, zeroes
// Sum() (duration view), and flags itself in the snapshot.
func TestValueHistogram(t *testing.T) {
	r := New()
	h := r.ValueHistogram("pcc_proof_bytes", LogBounds(8, 1<<20))
	if h2 := r.ValueHistogram("pcc_proof_bytes", nil); h2 != h {
		t.Fatal("re-lookup must return the registered value histogram")
	}
	h.ObserveValue(100)
	h.ObserveValueEID(900, 42)
	if !h.Raw() {
		t.Fatal("value histogram must report Raw")
	}
	if h.Sum() != 0 {
		t.Fatalf("duration Sum on a value histogram must be 0, got %v", h.Sum())
	}
	if h.SumValue() != 1000 {
		t.Fatalf("SumValue = %v, want 1000 raw units", h.SumValue())
	}
	if q := h.Quantile(0.5); q < 100 || q > 1000 {
		t.Fatalf("raw quantile = %v, want within [100, 1000]", q)
	}
	snap := r.Snapshot(true)
	hs := snap.Histograms["pcc_proof_bytes"]
	if !hs.Raw || hs.SumSeconds != 1000 {
		t.Fatalf("snapshot must carry raw mode and raw sum: %+v", hs)
	}
}

// TestExemplars: ObserveEID retains the most recent EventID per
// bucket, exposed through Exemplars and the bucketed snapshot.
func TestExemplars(t *testing.T) {
	h := NewHistogram([]float64{1e-6, 1e-3})
	h.ObserveEID(500*time.Nanosecond, 7) // bucket 0
	h.ObserveEID(2*time.Second, 9)       // +Inf bucket
	h.ObserveEID(600*time.Nanosecond, 8) // bucket 0 again: newest wins
	h.Observe(700 * time.Nanosecond)     // eid 0 must not clobber
	ex := h.Exemplars()
	if len(ex) != 3 || ex[0] != 8 || ex[1] != 0 || ex[2] != 9 {
		t.Fatalf("exemplars = %v, want [8 0 9]", ex)
	}

	r := New()
	r.Histogram("h").ObserveEID(500*time.Nanosecond, 1234)
	snap := r.Snapshot(true)
	var found bool
	for _, b := range snap.Histograms["h"].Buckets {
		if b.Exemplar == 1234 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot buckets must expose the exemplar: %+v", snap.Histograms["h"].Buckets)
	}
}

// TestSpanEventPropagation: StartSpanEvent threads the EventID through
// children and RecordSpan into the trace events.
func TestSpanEventPropagation(t *testing.T) {
	r := New()
	s := r.StartSpanEvent(StageValidate, "owner", 99)
	c := s.Child(StageParse)
	if c.Event() != 99 {
		t.Fatalf("child event = %d, want inherited 99", c.Event())
	}
	c.End(nil)
	s.End(nil)
	r.RecordSpan(StageWCET, "owner", s.ID(), 99, time.Now(), time.Microsecond, nil)
	for _, e := range r.Trace().Events() {
		if e.Event != 99 {
			t.Fatalf("trace event %+v lost the correlation EventID", e)
		}
	}
}
