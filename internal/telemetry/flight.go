// Dispatch flight recorder: a fixed-capacity lock-free ring of the
// last N anomalies the kernel saw — fuel exhaustion, memory faults,
// oversize-packet fallbacks, backend fallbacks, quarantine trips, and
// security/performance-posture config changes. The span tracer answers
// "where did the microseconds go"; the flight recorder answers "what
// went wrong just before the page" with filter/owner identity and wall
// timestamps, cheap enough to leave on in production (anomalies are
// rare; the happy path never touches it).
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Flight-event kinds. Detail carries the specifics (error text, old
// and new config values, sizes).
const (
	// FlightFuelExhausted: a filter ran out of dispatch fuel (runaway
	// loop caught by the budget, not by a check — there are none).
	FlightFuelExhausted = "fuel_exhausted"
	// FlightMemoryFault: a filter faulted on a memory access at
	// dispatch time (only possible for unvalidated test filters or a
	// broken proof checker; always worth a look).
	FlightMemoryFault = "memory_fault"
	// FlightDispatchFault: any other dispatch-time execution fault.
	FlightDispatchFault = "dispatch_fault"
	// FlightOversizePacket: a packet exceeded the pooled arena and took
	// the allocating fallback path.
	FlightOversizePacket = "oversize_fallback"
	// FlightBackendFallback: the kernel's backend is compiled but a
	// filter had no compiled form, so it dispatched interpreted.
	FlightBackendFallback = "backend_fallback"
	// FlightQuarantine: an owner tripped the rejection threshold and
	// entered install embargo.
	FlightQuarantine = "quarantine"
	// FlightConfigChange: SetBackend/SetProfiling/SetLimits/
	// SetQuarantine changed the kernel's posture.
	FlightConfigChange = "config_change"
	// FlightBreakerOpen: a filter's fault circuit breaker tripped — the
	// compiled form was demoted to the interpreter pending backoff.
	FlightBreakerOpen = "breaker_open"
	// FlightBreakerHalfOpen: an open breaker's backoff elapsed and the
	// filter was re-promoted to its compiled form on probation.
	FlightBreakerHalfOpen = "breaker_halfopen"
	// FlightBreakerClose: a half-open breaker survived its probation
	// dispatches fault-free and closed.
	FlightBreakerClose = "breaker_close"
	// FlightRecoverySkip: boot-time recovery skipped a journal record —
	// corrupt framing, out-of-order splice, or a blob the validation
	// pipeline rejected (disk is an untrusted producer).
	FlightRecoverySkip = "recovery_skip"
)

// FlightEvent is one recorded anomaly.
type FlightEvent struct {
	// Seq is the event's global sequence number (monotonic from 0);
	// gaps at the low end mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// TimeUnixNanos is the wall-clock timestamp.
	TimeUnixNanos int64 `json:"time_unix_ns"`
	// Kind is one of the Flight* constants.
	Kind string `json:"kind"`
	// Owner is the filter/owner identity, when the anomaly has one.
	Owner string `json:"owner,omitempty"`
	// Detail is free-form specifics.
	Detail string `json:"detail,omitempty"`
	// Event is the kernel-level correlation EventID shared with the
	// span tree and audit record of the operation that hit the anomaly
	// (0 = uncorrelated).
	Event uint64 `json:"event,omitempty"`
}

// DefaultFlightCapacity is the ring size used when capacity <= 0.
const DefaultFlightCapacity = 256

// FlightRecorder is the anomaly ring. Appends are lock-free (one
// atomic counter claims a slot, one atomic pointer store publishes),
// so recording from the dispatch path never blocks; when full, the
// oldest events are overwritten. A nil *FlightRecorder is a valid
// no-op sink.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	next  atomic.Uint64
}

// NewFlightRecorder builds a ring holding up to capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], capacity)}
}

// Record appends one anomaly, stamped now.
func (f *FlightRecorder) Record(kind, owner, detail string) {
	f.RecordEvent(kind, owner, detail, 0)
}

// RecordEvent appends one anomaly correlated with the kernel EventID
// event (0 = uncorrelated), stamped now.
func (f *FlightRecorder) RecordEvent(kind, owner, detail string, event uint64) {
	if f == nil {
		return
	}
	e := &FlightEvent{
		TimeUnixNanos: time.Now().UnixNano(),
		Kind:          kind,
		Owner:         owner,
		Detail:        detail,
		Event:         event,
	}
	e.Seq = f.next.Add(1) - 1
	f.slots[e.Seq%uint64(len(f.slots))].Store(e)
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Appended returns the total number of events ever recorded.
func (f *FlightRecorder) Appended() int64 {
	if f == nil {
		return 0
	}
	return int64(f.next.Load())
}

// Dropped returns how many events have been overwritten by ring wrap.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	n := f.Appended() - int64(len(f.slots))
	if n < 0 {
		return 0
	}
	return n
}

// Events snapshots the ring's current contents, oldest first. Each
// slot is read atomically; a concurrent append may replace a slot
// mid-snapshot, so the result is a consistent set of real events but
// not a point-in-time cut.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	// Seq order == record order; slots wrap, so sort by Seq.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// FlightSnapshot is the JSON document WriteJSON emits (and the serve
// endpoint exposes). The accounting invariant
//
//	Appended == len(Events) + Dropped
//
// holds exactly at every snapshot, even while appends race: Dropped
// counts both ring-overwritten events and slots claimed by an
// in-flight append but not yet published.
type FlightSnapshot struct {
	Capacity int           `json:"capacity"`
	Appended int64         `json:"appended"`
	Dropped  int64         `json:"dropped"`
	Events   []FlightEvent `json:"events"`
}

// Snapshot captures a consistent view of the ring. The append counter
// is read once, first; only events sequenced strictly below that read
// are included, and Dropped is defined as the difference — so the
// Appended == len(Events) + Dropped invariant holds by construction
// regardless of concurrent appends, and every included Seq is unique
// (distinct slots hold distinct residues mod capacity).
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	snap := FlightSnapshot{Capacity: f.Cap(), Events: []FlightEvent{}}
	if f == nil {
		return snap
	}
	a := int64(f.next.Load())
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil && int64(e.Seq) < a {
			snap.Events = append(snap.Events, *e)
		}
	}
	// Seq order == record order; slots wrap, so sort by Seq.
	sort.Slice(snap.Events, func(i, j int) bool {
		return snap.Events[i].Seq < snap.Events[j].Seq
	})
	snap.Appended = a
	snap.Dropped = a - int64(len(snap.Events))
	return snap
}

// WriteJSON writes the ring state as one indented JSON document:
// {"capacity", "appended", "dropped", "events": [...oldest first]}.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}
