// Package telemetry is the observability layer of the PCC kernel: a
// span tracer over the install/dispatch pipeline, plus counters,
// gauges, and latency histograms with a Prometheus-style text
// exposition and a JSON snapshot. The paper's argument is a cost
// breakdown — one-time validation amortized against zero-check
// dispatch — and this package is how the running system exhibits that
// breakdown stage by stage: where an install's microseconds went
// (parse vs. VC generation vs. LF proof checking vs. WCET analysis),
// whether the proof cache absorbed it, and what dispatch latency the
// extensions see.
//
// Everything on the recording path is lock-free (atomics only) and
// every entry point tolerates a nil *Recorder, so instrumented code
// needs no "is telemetry on?" branches and the disabled path costs a
// nil check.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stage names. Spans and stage histograms
// (pcc_stage_<name>_seconds) use these; the taxonomy is documented in
// docs/OBSERVABILITY.md.
const (
	// StageNegotiate is a §4 policy negotiation at the kernel boundary.
	StageNegotiate = "negotiate"
	// StageValidate is a whole install-time validation attempt (cache
	// probe included); parent of the child stages below.
	StageValidate = "validate"
	// StageCacheProbe is the proof-cache lookup within a validation.
	StageCacheProbe = "cacheprobe"
	// StageParse is PCC binary unmarshaling + native code decoding.
	StageParse = "parse"
	// StageVCGen is safety-predicate (verification condition)
	// generation from the decoded code.
	StageVCGen = "vcgen"
	// StageLFSig is LF signature construction and the rule-set
	// fingerprint comparison.
	StageLFSig = "lfsig"
	// StageLFCheck is LF typechecking of the enclosed proof.
	StageLFCheck = "lfcheck"
	// StageWCET is the static worst-case cycle-bound analysis.
	StageWCET = "wcet"
	// StageCommit is the short serialized install-commit section.
	StageCommit = "commit"
	// StageDispatch is one DeliverPacket pass over installed filters.
	StageDispatch = "dispatch"
	// StageDispatchBatch is one DeliverPackets pass: a whole packet
	// vector through every installed filter under a single span.
	StageDispatchBatch = "dispatch_batch"
	// StageConfig is an operator posture change (SetBackend,
	// SetProfiling, SetLimits, SetQuarantine). Config changes emit a
	// span so their correlation EventID exists in all three streams —
	// span ring, audit log, flight recorder.
	StageConfig = "config"
	// StageRecover is one boot-time store recovery pass: snapshot +
	// journal replay with every blob re-run through the full validation
	// pipeline. Individual records emit validate spans; the recover span
	// brackets the whole pass.
	StageRecover = "recover"
)

// Stages lists every built-in pipeline stage, in pipeline order.
var Stages = []string{
	StageNegotiate, StageValidate, StageCacheProbe, StageParse,
	StageVCGen, StageLFSig, StageLFCheck, StageWCET, StageCommit,
	StageDispatch, StageDispatchBatch, StageConfig, StageRecover,
}

// Options configures a Recorder.
type Options struct {
	// TraceCapacity is the span ring size; <= 0 means
	// DefaultTraceCapacity.
	TraceCapacity int
	// Buckets are the stage-histogram bucket bounds in seconds; nil
	// means DefaultLatencyBounds.
	Buckets []float64
	// Window, when non-nil, attaches a sliding window (see window.go)
	// to every counter and histogram the recorder builds, enabling
	// recent rates and windowed quantiles in the snapshot. Nil (the
	// default) keeps the cumulative-only behavior and its cost profile.
	Window *WindowOptions
}

// Recorder is the telemetry sink: one per kernel (or benchmark run).
// The zero value is not usable; build one with New or NewWith. A nil
// *Recorder is a valid no-op sink.
type Recorder struct {
	start time.Time
	trace *Trace
	ids   atomic.Uint64

	// stageHists maps each built-in stage to its latency histogram.
	// Built once in NewWith and immutable after, so the span path
	// reads it without a lock.
	stageHists map[string]*Histogram
	bounds     []float64
	winOpts    *WindowOptions

	// Dynamically registered metrics (Counter/Gauge/Histogram lookups
	// by name). The lock guards registration only; the returned
	// instruments are lock-free. Callers on hot paths cache the
	// pointers.
	mu            sync.RWMutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	hists         map[string]*Histogram
	labeled       map[string]*labeledFamily
	labeledHists  map[string]*labeledHistFamily
	labeledGauges map[string]*labeledGaugeFamily
}

// New builds a Recorder with default options.
func New() *Recorder { return NewWith(Options{}) }

// NewWith builds a Recorder with the given options.
func NewWith(o Options) *Recorder {
	r := &Recorder{
		start:        time.Now(),
		trace:        newTrace(o.TraceCapacity),
		stageHists:   make(map[string]*Histogram, len(Stages)),
		bounds:       o.Buckets,
		winOpts:      o.Window,
		counters:      map[string]*Counter{},
		gauges:        map[string]*Gauge{},
		hists:         map[string]*Histogram{},
		labeled:       map[string]*labeledFamily{},
		labeledHists:  map[string]*labeledHistFamily{},
		labeledGauges: map[string]*labeledGaugeFamily{},
	}
	for _, s := range Stages {
		b := o.Buckets
		if b == nil && (s == StageDispatch || s == StageDispatchBatch) {
			// Dispatch retires in nanoseconds, not microseconds: without
			// sub-µs buckets every observation lands in the first bucket
			// and the quantiles are fiction. Explicit Buckets still win
			// for all stages.
			b = DispatchLatencyBounds
		}
		r.stageHists[s] = r.newHist(b)
	}
	return r
}

// newHist builds a latency histogram, attaching a sliding window when
// the recorder was configured with one.
func (r *Recorder) newHist(bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	if r.winOpts != nil {
		h.win = newWindow(*r.winOpts, len(h.buckets))
	}
	return h
}

// newCounter builds a counter, attaching a sliding window when the
// recorder was configured with one.
func (r *Recorder) newCounter() *Counter {
	c := &Counter{}
	if r.winOpts != nil {
		c.win = newWindow(*r.winOpts, 0)
	}
	return c
}

// Trace returns the span ring (nil for a nil recorder).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a valid no-op counter) for a nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = r.newCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use
// with the recorder's bucket bounds. Stage histograms are pre-named
// pcc_stage_<stage>_seconds; use StageHistogram for those.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = r.newHist(r.bounds)
		r.hists[name] = h
	}
	return h
}

// ValueHistogram returns the named raw-unit histogram (proof bytes, VC
// nodes — bounds in those units, sum the raw total), registering it on
// first use with the given bounds. The first registration fixes the
// bounds; later calls reuse the instrument. Returns nil (a valid no-op
// histogram) for a nil recorder.
func (r *Recorder) ValueHistogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewValueHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// StageHistogram returns the latency histogram for a built-in pipeline
// stage (nil for unknown stages or a nil recorder).
func (r *Recorder) StageHistogram(stage string) *Histogram {
	if r == nil {
		return nil
	}
	return r.stageHists[stage]
}

// Span is an in-progress stage measurement. The zero Span (from a nil
// recorder) is valid: Child returns another zero Span and End does
// nothing, so instrumented code never branches on "is telemetry on".
type Span struct {
	rec    *Recorder
	stage  string
	detail string
	parent uint64
	id     uint64
	event  uint64
	start  time.Time
}

// StartSpan opens a root span for a pipeline stage. detail is
// free-form context (e.g. the installing owner).
func (r *Recorder) StartSpan(stage, detail string) Span {
	return r.StartSpanEvent(stage, detail, 0)
}

// StartSpanEvent opens a root span carrying the kernel-level
// correlation EventID event (0 = uncorrelated); children inherit it.
func (r *Recorder) StartSpanEvent(stage, detail string, event uint64) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, stage: stage, detail: detail, id: r.ids.Add(1), event: event, start: time.Now()}
}

// Child opens a sub-span of s for a nested stage; it inherits s's
// correlation EventID.
func (s Span) Child(stage string) Span {
	if s.rec == nil {
		return Span{}
	}
	return Span{rec: s.rec, stage: stage, detail: s.detail, parent: s.id, id: s.rec.ids.Add(1), event: s.event, start: time.Now()}
}

// ID returns the span's identifier (0 for a no-op span).
func (s Span) ID() uint64 { return s.id }

// Event returns the span's correlation EventID (0 for a no-op or
// uncorrelated span).
func (s Span) Event() uint64 { return s.event }

// End completes the span: it appends one trace event and observes the
// stage's latency histogram. err, when non-nil, is recorded on the
// event.
func (s Span) End(err error) {
	if s.rec == nil {
		return
	}
	s.rec.finish(s, time.Since(s.start), err)
}

// RecordSpan records an externally measured span — a stage whose
// duration was clocked by code that does not hold a Recorder (e.g.
// pcc.Validate's stage breakdown) — and returns its span ID. parent
// may be 0 for a root span; event is the correlation EventID (0 =
// uncorrelated).
func (r *Recorder) RecordSpan(stage, detail string, parent, event uint64, start time.Time, dur time.Duration, err error) uint64 {
	if r == nil {
		return 0
	}
	id := r.ids.Add(1)
	r.finish(Span{rec: r, stage: stage, detail: detail, parent: parent, id: id, event: event, start: start}, dur, err)
	return id
}

// finish is the single sink for completed spans: exactly one trace
// append plus one stage-histogram observation, so "sum of stage
// histogram counts == trace.Appended()" is an invariant the tests
// assert.
func (r *Recorder) finish(s Span, dur time.Duration, err error) {
	e := &Event{
		ID:         s.id,
		Parent:     s.parent,
		Event:      s.event,
		Stage:      s.stage,
		Detail:     s.detail,
		StartNanos: s.start.Sub(r.start).Nanoseconds(),
		DurNanos:   dur.Nanoseconds(),
	}
	if err != nil {
		e.Err = err.Error()
	}
	r.trace.add(e)
	if h := r.stageHists[s.stage]; h != nil {
		h.ObserveEID(dur, s.event)
	} else {
		r.Histogram("pcc_stage_"+s.stage+"_seconds").ObserveEID(dur, s.event)
	}
}

// StartTime returns the recorder's creation time — the wall-clock
// origin of every event's StartNanos (zero time for a nil recorder).
func (r *Recorder) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}
