package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
	"time"
)

// timelineFixture builds the three rings with two correlated
// operations: event 10 (owner alice: span + audit + flight) and event
// 20 (owner bob: span + audit).
func timelineFixture() (*Recorder, *AuditRing, *FlightRecorder) {
	rec := New()
	rec.StartSpanEvent(StageValidate, "alice", 10).End(nil)
	rec.StartSpanEvent(StageCommit, "alice", 10).End(nil)
	rec.StartSpanEvent(StageValidate, "bob", 20).End(nil)

	ring := NewAuditRing(0)
	log := slog.New(ring.Handler(nil))
	log.Info("pcc install", slog.String("event", "install"), slog.String("owner", "alice"), slog.Uint64("event_id", 10))
	log.Info("pcc install", slog.String("event", "install"), slog.String("owner", "bob"), slog.Uint64("event_id", 20))

	fr := NewFlightRecorder(0)
	fr.RecordEvent(FlightQuarantine, "alice", "strikes=3", 10)
	return rec, ring, fr
}

// TestTimelineJoinByEvent: one EventID pulls its records from all
// three streams and nothing else.
func TestTimelineJoinByEvent(t *testing.T) {
	rec, ring, fr := timelineFixture()
	tl := BuildTimeline(rec, ring, fr, TimelineQuery{Event: 10})
	if len(tl.Spans) != 2 || len(tl.Audit) != 1 || len(tl.Flight) != 1 {
		t.Fatalf("join on 10: %d spans / %d audit / %d flight, want 2/1/1",
			len(tl.Spans), len(tl.Audit), len(tl.Flight))
	}
	for _, s := range tl.Spans {
		if s.Event.Event != 10 || s.Detail != "alice" {
			t.Fatalf("span leaked into the join: %+v", s)
		}
	}
	if tl.Audit[0].Event != 10 || tl.Flight[0].Event != 10 {
		t.Fatalf("audit/flight not keyed by 10: %+v %+v", tl.Audit[0], tl.Flight[0])
	}
	// Spans carry wall-clock time derived from the recorder origin.
	now := time.Now().UnixNano()
	for _, s := range tl.Spans {
		if s.TimeUnixNanos <= 0 || now-s.TimeUnixNanos > int64(time.Minute) {
			t.Fatalf("span wall time implausible: %d", s.TimeUnixNanos)
		}
	}
}

// TestTimelineFilters: owner, stage, kind, and since each narrow
// their stream.
func TestTimelineFilters(t *testing.T) {
	rec, ring, fr := timelineFixture()

	tl := BuildTimeline(rec, ring, fr, TimelineQuery{Owner: "bob"})
	if len(tl.Spans) != 1 || len(tl.Audit) != 1 || len(tl.Flight) != 0 {
		t.Fatalf("owner=bob: %d/%d/%d, want 1/1/0", len(tl.Spans), len(tl.Audit), len(tl.Flight))
	}

	tl = BuildTimeline(rec, ring, fr, TimelineQuery{Stage: StageCommit})
	if len(tl.Spans) != 1 || tl.Spans[0].Stage != StageCommit {
		t.Fatalf("stage filter: %+v", tl.Spans)
	}

	tl = BuildTimeline(rec, ring, fr, TimelineQuery{Kind: FlightQuarantine})
	if len(tl.Flight) != 1 || len(tl.Audit) != 0 {
		t.Fatalf("kind filter: %d flight / %d audit, want 1/0", len(tl.Flight), len(tl.Audit))
	}

	tl = BuildTimeline(rec, ring, fr, TimelineQuery{SinceUnixNanos: time.Now().Add(time.Hour).UnixNano()})
	if len(tl.Spans)+len(tl.Audit)+len(tl.Flight) != 0 {
		t.Fatalf("future since must exclude everything: %+v", tl)
	}
}

// TestTimelineNilRings: any combination of nil sources yields an
// empty (not nil) document, and WriteJSON emits arrays.
func TestTimelineNilRings(t *testing.T) {
	tl := BuildTimeline(nil, nil, nil, TimelineQuery{})
	if tl.Spans == nil || tl.Audit == nil || tl.Flight == nil {
		t.Fatal("empty timeline must keep non-nil streams")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("timeline JSON round trip: %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"spans": []`)) {
		t.Fatalf("streams must serialize as [], got %s", buf.String())
	}
}
