// Labeled counter families: one metric family fanned out over the
// values of a single label (e.g. pcc_filter_accepts_total{filter=...}
// keyed by the installing owner). Filter owners are untrusted strings
// — a user can install a filter named `evil"}\n` — so the exposition
// path escapes label values per the Prometheus text-format rules
// instead of trusting them into the page.
package telemetry

import "strings"

// labeledFamily is one counter family keyed by the values of a single
// label.
type labeledFamily struct {
	key  string // the label key, e.g. "filter"
	vals map[string]*Counter
}

// LabeledCounter returns the counter for one (family, labelValue)
// pair, registering the family (with its label key) and the value's
// counter on first use. The first registration fixes the family's
// label key; later calls reuse it. Returns nil (a valid no-op
// counter) for a nil recorder.
func (r *Recorder) LabeledCounter(family, labelKey, labelValue string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	lf := r.labeled[family]
	var c *Counter
	if lf != nil {
		c = lf.vals[labelValue]
	}
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lf = r.labeled[family]
	if lf == nil {
		lf = &labeledFamily{key: labelKey, vals: map[string]*Counter{}}
		r.labeled[family] = lf
	}
	if c = lf.vals[labelValue]; c == nil {
		c = r.newCounter()
		lf.vals[labelValue] = c
	}
	return c
}

// labeledHistFamily is one histogram family keyed by the values of a
// single label (e.g. pcc_filter_run_seconds{filter=...}).
type labeledHistFamily struct {
	key    string
	bounds []float64 // fixed at family registration
	vals   map[string]*Histogram
}

// LabeledHistogram returns the histogram for one (family, labelValue)
// pair, registering the family on first use. bounds (nil means the
// recorder's default) is fixed by the first registration so every
// member of a family exposes the same buckets; later calls reuse it.
// Returns nil (a valid no-op histogram) for a nil recorder. Hot paths
// must cache the returned pointer — the lookup takes the registration
// lock.
func (r *Recorder) LabeledHistogram(family, labelKey, labelValue string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	lf := r.labeledHists[family]
	var h *Histogram
	if lf != nil {
		h = lf.vals[labelValue]
	}
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lf = r.labeledHists[family]
	if lf == nil {
		if bounds == nil {
			bounds = r.bounds
		}
		lf = &labeledHistFamily{key: labelKey, bounds: bounds, vals: map[string]*Histogram{}}
		r.labeledHists[family] = lf
	}
	if h = lf.vals[labelValue]; h == nil {
		h = r.newHist(lf.bounds)
		lf.vals[labelValue] = h
	}
	return h
}

// labeledGaugeFamily is one gauge family keyed by the values of a
// single label (e.g. pcc_breaker_state{filter=...}).
type labeledGaugeFamily struct {
	key  string
	vals map[string]*Gauge
}

// LabeledGauge returns the gauge for one (family, labelValue) pair,
// registering the family (with its label key) and the value's gauge on
// first use. The first registration fixes the family's label key.
// Returns nil (a valid no-op gauge) for a nil recorder. Hot paths must
// cache the returned pointer — the lookup takes the registration lock.
func (r *Recorder) LabeledGauge(family, labelKey, labelValue string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	lf := r.labeledGauges[family]
	var g *Gauge
	if lf != nil {
		g = lf.vals[labelValue]
	}
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lf = r.labeledGauges[family]
	if lf == nil {
		lf = &labeledGaugeFamily{key: labelKey, vals: map[string]*Gauge{}}
		r.labeledGauges[family] = lf
	}
	if g = lf.vals[labelValue]; g == nil {
		g = &Gauge{}
		lf.vals[labelValue] = g
	}
	return g
}

// labelEscaper implements the Prometheus text exposition escaping for
// label values: backslash, double quote, and line feed.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue renders an arbitrary string as a valid Prometheus
// label value (the caller supplies the surrounding quotes).
func EscapeLabelValue(s string) string { return labelEscaper.Replace(s) }
