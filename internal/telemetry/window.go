// Sliding-window layer: a ring of fixed wall-clock interval buckets
// behind atomics, attached to counters and histograms when a Recorder
// is built with Options.Window. Cumulative instruments answer "how
// much ever"; the window answers "how much lately" — installs/s,
// packets/s, windowed p50/p99 — without a background goroutine:
// rotation happens inline on the first observation that lands in a new
// interval, via an epoch CAS.
//
// Contract (same spirit as the rest of the package):
//   - off means free: a nil *Window costs one nil check per
//     observation and nothing else;
//   - lock-free: observation is a handful of atomic adds; rotation is
//     a bounded CAS loop; readers never block writers;
//   - cumulative stays exact: the parent Counter/Histogram is updated
//     unconditionally. Window attribution is best-effort at interval
//     boundaries — an observation racing a rotation may be dropped
//     from the window (never double-counted), so windowed rates are
//     estimates while cumulative totals remain exact.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Default window geometry: 60 one-second buckets, i.e. rates and
// windowed quantiles over roughly the last minute.
const (
	DefaultWindowInterval = time.Second
	DefaultWindowSlots    = 60
)

// WindowOptions configures the sliding window attached to a Recorder's
// instruments.
type WindowOptions struct {
	// Interval is the width of one bucket; <= 0 means
	// DefaultWindowInterval.
	Interval time.Duration
	// Slots is the number of buckets in the ring; <= 0 means
	// DefaultWindowSlots. The window spans Interval*Slots.
	Slots int
}

func (o WindowOptions) interval() int64 {
	if o.Interval <= 0 {
		return int64(DefaultWindowInterval)
	}
	return int64(o.Interval)
}

func (o WindowOptions) slots() int {
	if o.Slots <= 0 {
		return DefaultWindowSlots
	}
	return o.Slots
}

// winSlot is one interval bucket. epoch holds the wall-clock epoch
// (UnixNanos / interval) the slot currently accumulates; 0 means
// never used, -1 means a rotation is zeroing it. Counter windows use
// count/sum; histogram windows feed only the per-bound buckets — the
// read side derives the count by summing them, so the hot observation
// path pays one atomic add instead of three.
type winSlot struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // counter windows only: nanoseconds or raw units
	buckets []atomic.Int64
}

// Window is the sliding-window ring. A nil *Window is a valid no-op.
type Window struct {
	interval int64 // nanos per slot
	created  int64 // UnixNanos at construction, bounds the covered span
	slots    []winSlot
}

// newWindow builds a window; nb > 0 gives each slot nb per-bound
// bucket counters (histogram windows), nb == 0 a count/sum-only window
// (counter windows).
func newWindow(o WindowOptions, nb int) *Window {
	w := &Window{
		interval: o.interval(),
		created:  time.Now().UnixNano(),
		slots:    make([]winSlot, o.slots()),
	}
	if nb > 0 {
		for i := range w.slots {
			w.slots[i].buckets = make([]atomic.Int64, nb)
		}
	}
	return w
}

// add records n events summing to sum (nanos or raw units) in the
// bucket index bucket (-1 for counter windows) at wall time now.
func (w *Window) add(now int64, bucket int, n, sum int64) {
	if w == nil {
		return
	}
	epoch := now / w.interval
	s := &w.slots[uint64(epoch)%uint64(len(w.slots))]
	for try := 0; try < 8; try++ {
		e := s.epoch.Load()
		switch {
		case e == epoch:
			if bucket >= 0 {
				if bucket < len(s.buckets) {
					s.buckets[bucket].Add(n)
				}
			} else {
				s.count.Add(n)
				s.sum.Add(sum)
			}
			return
		case e > epoch:
			// The ring already rotated past this observation's
			// interval: drop the window attribution (cumulative
			// accounting in the parent instrument stays exact).
			return
		case e == -1:
			// A rotation is zeroing this slot; retry until published.
			continue
		default:
			if s.epoch.CompareAndSwap(e, -1) {
				s.count.Store(0)
				s.sum.Store(0)
				for i := range s.buckets {
					s.buckets[i].Store(0)
				}
				s.epoch.Store(epoch)
			}
		}
	}
}

// WindowStat is a read-side summary of the window at one instant.
type WindowStat struct {
	// Count and Sum aggregate the live slots (roughly the last
	// Interval*Slots of wall time). Histogram windows derive Count
	// from the merged per-bound buckets and report Sum as 0 (the hot
	// path does not maintain a windowed sum).
	Count int64
	Sum   int64
	// Seconds is the wall-clock span the window covers (capped by the
	// window's age, so early rates aren't diluted by empty history).
	Seconds float64
	// Rate is Count/Seconds.
	Rate float64
}

// stat aggregates the live slots at wall time now. When bounds is
// non-nil the merged per-bucket counts are returned too (for windowed
// quantiles); otherwise mergedBuckets is nil.
func (w *Window) stat(now int64, nb int) (st WindowStat, mergedBuckets []int64) {
	if w == nil {
		return WindowStat{}, nil
	}
	epoch := now / w.interval
	oldest := epoch - int64(len(w.slots)) + 1
	if nb > 0 {
		mergedBuckets = make([]int64, nb)
	}
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < oldest || e > epoch || e <= 0 {
			continue
		}
		if nb > 0 {
			for j := range mergedBuckets {
				if j < len(s.buckets) {
					mergedBuckets[j] += s.buckets[j].Load()
				}
			}
		} else {
			st.Count += s.count.Load()
			st.Sum += s.sum.Load()
		}
	}
	for _, c := range mergedBuckets {
		st.Count += c
	}
	span := now - w.created
	if max := int64(len(w.slots)) * w.interval; span > max {
		span = max
	}
	if span < w.interval {
		// Avoid wild rates in the first fraction of an interval.
		span = w.interval
	}
	st.Seconds = float64(span) / 1e9
	st.Rate = float64(st.Count) / st.Seconds
	return st, mergedBuckets
}

// Stat returns the window's current aggregate (counter view: no
// bucket merge).
func (w *Window) Stat() WindowStat {
	st, _ := w.stat(time.Now().UnixNano(), 0)
	return st
}
