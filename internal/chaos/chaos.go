// Package chaos is a fault-injection harness for the PCC validation
// path. It takes known-good certified binaries ("bases"), derives
// adversarial mutants from them — random corruption, structural
// surgery on the proof, and hand-crafted resource bombs — and feeds
// each mutant to a validation target, checking the two invariants the
// whole architecture stands on:
//
//  1. No escaped panics: whatever bytes arrive, validation returns a
//     verdict. A crash in the consumer is a kernel crash.
//  2. No unsound accepts: a mutant may validate only if it is
//     byte-identical to a certified base, or is itself a provably safe
//     program. Random corruption occasionally lands on the latter —
//     e.g. a bit-flip in a constant the safety predicate never
//     mentions yields a different filter whose recomputed VC the
//     original proof still proves. The harness distinguishes the two
//     by testing the Safety Theorem directly: every non-identical
//     accept is re-derived with the reference validator and executed
//     on the fully checked abstract machine over random packets, where
//     any unsafe access faults. A disagreement or a fault is an
//     unsound accept — the soundness half of the paper's Safety
//     Theorem, tested from the adversary's side.
//
// The harness is deterministic per seed, so a violating trial can be
// replayed exactly. It backs the chaos invariant tests
// (chaos_test.go, internal/kernel) and `pccload -chaos`.
package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/lf"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pccbin"
	"repro/internal/policy"
)

// Base is one certified binary mutants are derived from.
type Base struct {
	Name   string
	Binary []byte
	Policy *policy.Policy
}

// PaperBases certifies the harness's standard corpus: the four paper
// filters and the looping IP-checksum filter (the invariant-table code
// path).
func PaperBases() ([]Base, error) {
	pol := policy.PacketFilter()
	var bases []Base
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			return nil, fmt.Errorf("chaos: certifying %v: %w", f, err)
		}
		bases = append(bases, Base{Name: f.String(), Binary: cert.Binary, Policy: pol})
	}
	cert, err := pcc.Certify(filters.SrcChecksum, pol,
		map[string]logic.Pred{"loop": filters.ChecksumInvariant()})
	if err != nil {
		return nil, fmt.Errorf("chaos: certifying checksum: %w", err)
	}
	return append(bases, Base{Name: "checksum", Binary: cert.Binary, Policy: pol}), nil
}

// Mutator derives one adversarial mutant from a base binary.
type Mutator struct {
	Name string
	Fn   func(rng *rand.Rand, base Base) []byte
}

// Mutators returns the full mutator set: random corruption (bitflip,
// truncate, swap), proof surgery (graft), and resource bombs
// (depthbomb, dagbomb).
func Mutators() []Mutator {
	return []Mutator{
		{"bitflip", bitflip},
		{"truncate", truncate},
		{"swap", sectionSwap},
		{"graft", graft},
		{"depthbomb", depthBomb},
		{"dagbomb", dagBomb},
	}
}

// bitflip flips 1–8 random bits anywhere in the binary.
func bitflip(rng *rand.Rand, base Base) []byte {
	m := append([]byte(nil), base.Binary...)
	for n := 1 + rng.Intn(8); n > 0; n-- {
		i := rng.Intn(len(m))
		m[i] ^= 1 << rng.Intn(8)
	}
	return m
}

// truncate drops at least one trailing byte.
func truncate(rng *rand.Rand, base Base) []byte {
	keep := rng.Intn(len(base.Binary)) // 0 .. len-1
	return append([]byte(nil), base.Binary[:keep]...)
}

// sectionSwap exchanges two equally sized ranges, shuffling content
// across section boundaries without changing the length.
func sectionSwap(rng *rand.Rand, base Base) []byte {
	m := append([]byte(nil), base.Binary...)
	if len(m) < 4 {
		return m
	}
	l := 1 + rng.Intn(min(32, len(m)/2))
	a := rng.Intn(len(m) - 2*l + 1)
	b := a + l + rng.Intn(len(m)-a-2*l+1)
	tmp := append([]byte(nil), m[a:a+l]...)
	copy(m[a:a+l], m[b:b+l])
	copy(m[b:b+l], tmp)
	return m
}

// graft performs structural surgery on the proof: the binary is
// re-marshaled with its proof replaced by one of its own subterms, by
// an invariant predicate, or by the trivial proof constant. The result
// is a well-formed binary whose proof no longer proves the recomputed
// safety predicate — the "plausible forgery" class, which dies in the
// LF checker rather than the decoder.
func graft(rng *rand.Rand, base Base) []byte {
	bin, err := pccbin.Unmarshal(base.Binary)
	if err != nil {
		return bitflip(rng, base)
	}
	switch rng.Intn(3) {
	case 0: // graft a random subterm of the proof over the proof
		subs := subterms(bin.Proof, 4096)
		if len(subs) == 0 {
			return bitflip(rng, base)
		}
		bin.Proof = subs[rng.Intn(len(subs))]
	case 1: // graft an invariant predicate (or tt) over the proof
		if len(bin.Invariants) > 0 {
			bin.Proof = bin.Invariants[rng.Intn(len(bin.Invariants))].Pred
		} else {
			bin.Proof = lf.Konst{Name: lf.CTrueI}
		}
	default: // the lazy forger: claim truth proves everything
		bin.Proof = lf.Konst{Name: lf.CTrueI}
	}
	out, _, err := bin.Marshal()
	if err != nil {
		return bitflip(rng, base)
	}
	return out
}

// subterms collects up to max strict subterms of t (the root itself is
// excluded — grafting the root would reproduce the original binary).
func subterms(t lf.Term, max int) []lf.Term {
	var out []lf.Term
	var walk func(t lf.Term, root bool)
	walk = func(t lf.Term, root bool) {
		if len(out) >= max {
			return
		}
		if !root {
			out = append(out, t)
		}
		switch t := t.(type) {
		case lf.App:
			walk(t.F, false)
			walk(t.X, false)
		case lf.Lam:
			walk(t.A, false)
			walk(t.M, false)
		case lf.Pi:
			walk(t.A, false)
			walk(t.B, false)
		}
	}
	walk(t, true)
	return out
}

// Wire-format constants, mirroring internal/pccbin's unexported term
// tags (TestBombEncoding cross-checks them against a real decode, so
// drift fails loudly).
const (
	tagKonst    = 0
	tagApp      = 3
	tagLam      = 4
	tagPi       = 5
	tagSortType = 6
	tagRef      = 8
)

// header rebuilds the binary prefix up to (and excluding) the symbol
// table: magic, policy name, rule-set fingerprint, and the base's own
// native code — everything a bomb needs to reach its target stage.
func header(b *pccbin.Binary) []byte {
	out := []byte{'P', 'C', 'C', '1'}
	out = binary.AppendUvarint(out, uint64(len(b.PolicyName)))
	out = append(out, b.PolicyName...)
	out = binary.AppendUvarint(out, b.SigHash)
	out = binary.AppendUvarint(out, uint64(len(b.Code)))
	out = append(out, b.Code...)
	return out
}

// depthBomb hand-crafts a proof section nesting tens of thousands of
// levels deep: [Lam type [Lam type ... type]]. A recursive decoder
// without an explicit depth budget dies of stack exhaustion here; ours
// must return a typed term_depth rejection. The bytes are built by
// hand because the producer-side Marshal (correctly) cannot build such
// a term without overflowing its own stack.
func depthBomb(rng *rand.Rand, base Base) []byte {
	bin, err := pccbin.Unmarshal(base.Binary)
	if err != nil {
		return bitflip(rng, base)
	}
	out := header(bin)
	out = binary.AppendUvarint(out, 0) // no symbols
	out = binary.AppendUvarint(out, 0) // no invariants
	levels := 1<<14 + rng.Intn(1<<15)
	for i := 0; i < levels; i++ {
		out = append(out, tagLam, tagSortType)
	}
	return append(out, tagSortType)
}

// dagBomb builds the conjunction tower: P₀ = tt, Pᵢ₊₁ = and(Pᵢ, Pᵢ),
// with the perfectly valid proof Qᵢ₊₁ = andi Pᵢ Pᵢ Qᵢ Qᵢ. DAG-encoded,
// the whole thing is a few hundred bytes and decodes within every
// size and depth budget — but the checker's traversal expands the
// sharing, so verifying Q₆₀ costs ~2⁶⁰ inference steps, and the type
// mismatch against the real safety predicate only surfaces at the very
// end. Byte-size limits cannot stop this class; only step fuel does.
func dagBomb(rng *rand.Rand, base Base) []byte {
	bin, err := pccbin.Unmarshal(base.Binary)
	if err != nil {
		return bitflip(rng, base)
	}
	out := header(bin)
	syms := []string{lf.CAnd, lf.CAndI, lf.CTT, lf.CTrueI}
	out = binary.AppendUvarint(out, uint64(len(syms)))
	for _, s := range syms {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = binary.AppendUvarint(out, 0) // no invariants

	konst := func(sym int) *bombNode { return &bombNode{tag: tagKonst, sym: sym, idx: -1} }
	app := func(f, x *bombNode) *bombNode { return &bombNode{tag: tagApp, a: f, b: x, idx: -1} }
	and, andi := konst(0), konst(1)
	p, q := konst(2), konst(3) // P₀ = tt, Q₀ = truei
	levels := 40 + rng.Intn(25)
	for i := 0; i < levels; i++ {
		p, q = app(app(and, p), p), app(app(app(app(andi, p), p), q), q)
	}
	w := &bombWriter{buf: out}
	w.emit(q)
	return w.buf
}

// bombNode is a node of a hand-built proof DAG; emit serializes it in
// the decoder's expected order, back-referencing shared nodes.
type bombNode struct {
	tag  byte
	a, b *bombNode
	sym  int
	idx  int
}

type bombWriter struct {
	buf  []byte
	next int
}

func (w *bombWriter) emit(n *bombNode) {
	if n.idx >= 0 {
		w.buf = append(w.buf, tagRef)
		w.buf = binary.AppendUvarint(w.buf, uint64(n.idx))
		return
	}
	w.buf = append(w.buf, n.tag)
	switch n.tag {
	case tagKonst:
		w.buf = binary.AppendUvarint(w.buf, uint64(n.sym))
	case tagApp, tagLam, tagPi:
		w.emit(n.a)
		w.emit(n.b)
	}
	// The decoder assigns table indexes in completion (post-)order.
	n.idx = w.next
	w.next++
}

// Target submits one mutant to the system under test, returning
// whether it was accepted. The harness fences the call, so a panicking
// target is a violation, not a crash.
type Target func(mutant []byte, base Base) (accepted bool, err error)

// ValidateTarget exercises the pcc validation path directly under the
// given limits (nil = DefaultLimits).
func ValidateTarget(lim *pcc.Limits) Target {
	return func(mutant []byte, base Base) (bool, error) {
		_, _, err := pcc.ValidateCtx(context.Background(), mutant, base.Policy, lim)
		return err == nil, err
	}
}

// Config parameterizes one harness run.
type Config struct {
	// Seed fixes the mutation stream; identical configs replay
	// identically.
	Seed int64
	// Trials is the number of mutants to generate and submit.
	Trials int
	// Mutators restricts the mutator set (nil = all).
	Mutators []Mutator
}

// Violation is one broken invariant: an escaped panic or an accepted
// non-identical mutant.
type Violation struct {
	Trial   int
	Base    string
	Mutator string
	Detail  string
}

// Report summarizes a harness run.
type Report struct {
	Trials int
	// ByMutator counts trials per mutator class.
	ByMutator map[string]int
	// Rejects counts rejections by pcc.RejectReason class.
	Rejects map[string]int
	// IdenticalAccepts counts mutants that were byte-identical to
	// their base and validated — the common legitimate accept.
	IdenticalAccepts int
	// SafeVariantAccepts counts accepted mutants that differ from
	// their base but were independently re-certified and survived
	// checked execution — different programs that are nonetheless
	// provably safe (see vetAccept). Rare, but sound.
	SafeVariantAccepts int
	// Violations lists every broken invariant (empty on a sound run).
	Violations []Violation
}

// Ok reports whether the run upheld both invariants.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-screen summary.
func (r Report) String() string {
	s := fmt.Sprintf("chaos: %d trials, %d identical accepts, %d safe variants, %d violations\n",
		r.Trials, r.IdenticalAccepts, r.SafeVariantAccepts, len(r.Violations))
	var names []string
	for n := range r.ByMutator {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s += fmt.Sprintf("  mutator %-10s %6d trials\n", n, r.ByMutator[n])
	}
	names = names[:0]
	for n := range r.Rejects {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s += fmt.Sprintf("  reject  %-10s %6d\n", n, r.Rejects[n])
	}
	for _, v := range r.Violations {
		s += fmt.Sprintf("  VIOLATION trial %d (%s/%s): %s\n", v.Trial, v.Base, v.Mutator, v.Detail)
	}
	return s
}

// Run generates cfg.Trials mutants from the bases and submits each to
// the target, fenced. It never panics; every invariant breach lands in
// the report.
func Run(bases []Base, target Target, cfg Config) Report {
	rng := rand.New(rand.NewSource(cfg.Seed))
	muts := cfg.Mutators
	if len(muts) == 0 {
		muts = Mutators()
	}
	rep := Report{
		Trials:    cfg.Trials,
		ByMutator: map[string]int{},
		Rejects:   map[string]int{},
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		base := bases[rng.Intn(len(bases))]
		m := muts[rng.Intn(len(muts))]
		rep.ByMutator[m.Name]++
		mutant := m.Fn(rng, base)
		func() {
			defer func() {
				if r := recover(); r != nil {
					rep.Violations = append(rep.Violations, Violation{
						Trial: trial, Base: base.Name, Mutator: m.Name,
						Detail: fmt.Sprintf("escaped panic: %v", r),
					})
				}
			}()
			accepted, err := target(mutant, base)
			switch {
			case accepted && bytes.Equal(mutant, base.Binary):
				rep.IdenticalAccepts++
			case accepted:
				if verr := vetAccept(rng, mutant, base); verr != nil {
					rep.Violations = append(rep.Violations, Violation{
						Trial: trial, Base: base.Name, Mutator: m.Name,
						Detail: fmt.Sprintf("UNSOUND ACCEPT: %v", verr),
					})
				} else {
					rep.SafeVariantAccepts++
				}
			default:
				rep.Rejects[pcc.RejectReason(err)]++
			}
		}()
	}
	return rep
}

// vetAccept adjudicates an accepted mutant that is not byte-identical
// to its base. PCC's Safety Theorem promises safety, not byte
// identity: a mutation can land on a different program whose
// recomputed VC the original proof still proves (observed in practice
// as a bit-flip in an LDA immediate the safety predicate never
// mentions — a behaviorally different but equally safe filter). The
// harness therefore re-derives the verdict with the reference
// validator and then tests the theorem empirically, executing the
// accepted extension on the fully checked abstract machine over random
// packets, where any out-of-bounds or misaligned access faults. A
// reference disagreement or a checked-execution fault is a genuine
// soundness violation; a clean bill is a safe variant.
func vetAccept(rng *rand.Rand, mutant []byte, base Base) error {
	ext, _, err := pcc.ValidateCtx(context.Background(), mutant, base.Policy, nil)
	if err != nil {
		return fmt.Errorf("target accepted a mutant the reference validator rejects: %w", err)
	}
	const packetBase, scratchBase = 0x10000, 0x20000
	for probe := 0; probe < 8; probe++ {
		plen := 8 * (1 + rng.Intn(32)) // 8..256 bytes, word-aligned
		pkt := machine.NewRegion("packet", packetBase, plen, false)
		rng.Read(pkt.Bytes())
		mem := machine.NewMemory()
		mem.MustAddRegion(pkt)
		mem.MustAddRegion(machine.NewRegion("scratch", scratchBase, policy.ScratchLen, true))
		s := &machine.State{Mem: mem}
		s.R[policy.RegPacket] = packetBase
		s.R[policy.RegLen] = uint64(plen)
		s.R[policy.RegScratch] = scratchBase
		if _, err := ext.RunChecked(s, 1<<20); err != nil {
			return fmt.Errorf("checked execution faulted on probe %d: %w", probe, err)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
