// Store chaos: fault injection for the durability journal and its
// verified recovery. The validation-path harness (chaos.go) attacks
// the kernel through the front door — hostile binaries submitted for
// install. This file attacks through the floor: journals that were
// written correctly and then damaged at rest (torn tails, truncation,
// header cuts and magic bit rot, payload bit rot, CRC-consistent proof
// tampering, duplicated and reordered frames) or cut mid-append by a
// crash. The invariants recovery must uphold against every such
// journal:
//
//  1. No unsound accept: a recovered kernel holds only extensions that
//     prove safe NOW. A mutated record either fails recovery or — when
//     the mutation lands on bytes the proof never depended on — yields
//     a program the reference validator independently re-certifies and
//     checked execution cannot fault (the same adjudication vetAccept
//     applies on the validation path).
//  2. No lost acked durable install: every record the damaged journal
//     still frames intact, with its original bytes, restores. Damage
//     to one record never takes down its neighbors.
//  3. Recovery always terminates with a report: skips are data, not
//     errors; Recover returns non-nil only for environmental failure.
//
// Deterministic per seed, like the validation harness. Backs the store
// chaos tests (store_chaos_test.go) and `pccload -chaos-store`.
package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	pcc "repro"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/store"
)

// StoreMutator damages a store directory in place. Fn returns a
// one-line description of what it did (for violation replay).
type StoreMutator struct {
	Name string
	Fn   func(rng *rand.Rand, dir string) (string, error)
}

// StoreMutators returns the full store-mutation repertoire.
func StoreMutators() []StoreMutator {
	return []StoreMutator{
		{"torn_tail", tornTail},
		{"truncate", truncateJournal},
		{"head_cut", headCut},
		{"magic_flip", magicFlip},
		{"crc_flip", crcFlip},
		{"proof_flip", proofFlip},
		{"duplicate", duplicateFrame},
		{"reorder", reorderFrames},
	}
}

// journalBytes loads the raw journal image and its frame map.
func journalBytes(dir string) ([]byte, []store.Frame, error) {
	data, err := os.ReadFile(filepath.Join(dir, store.JournalName))
	if err != nil {
		return nil, nil, err
	}
	frames, _, err := store.ScanJournal(data)
	return data, frames, err
}

func writeJournal(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, store.JournalName), data, 0o644)
}

// tornTail appends garbage after the last frame: either raw noise or a
// plausible frame header promising bytes that never made it to disk —
// the two shapes a crash mid-append leaves.
func tornTail(rng *rand.Rand, dir string) (string, error) {
	data, _, err := journalBytes(dir)
	if err != nil {
		return "", err
	}
	var tail []byte
	if rng.Intn(2) == 0 {
		tail = make([]byte, 1+rng.Intn(32))
		rng.Read(tail)
	} else {
		tail = make([]byte, 8+rng.Intn(16))
		binary.LittleEndian.PutUint32(tail[0:4], uint32(64+rng.Intn(4096)))
	}
	return fmt.Sprintf("appended %d garbage bytes", len(tail)),
		writeJournal(dir, append(data, tail...))
}

// truncateJournal cuts the file at a uniformly random offset past the
// magic — mid-frame, mid-header, or exactly on a boundary.
func truncateJournal(rng *rand.Rand, dir string) (string, error) {
	data, _, err := journalBytes(dir)
	if err != nil {
		return "", err
	}
	if len(data) <= 8 {
		return "empty journal", nil
	}
	cut := 8 + rng.Intn(len(data)-8)
	return fmt.Sprintf("truncated at %d/%d", cut, len(data)),
		writeJournal(dir, data[:cut])
}

// headCut truncates the file strictly inside the 8-byte magic — the
// on-disk state a crash during the very first header write leaves.
// Every record is gone with the header; recovery must reset to an
// empty store rather than brick on (or manufacture) a corrupt magic.
func headCut(rng *rand.Rand, dir string) (string, error) {
	data, _, err := journalBytes(dir)
	if err != nil {
		return "", err
	}
	cut := rng.Intn(8)
	if cut > len(data) {
		cut = len(data)
	}
	return fmt.Sprintf("cut header at %d/%d", cut, len(data)),
		writeJournal(dir, data[:cut])
}

// magicFlip flips one bit inside the 8-byte magic, leaving every frame
// intact: header-only rot must not cost a single acked record — the
// frames' checksums vouch for alignment and Open repairs the header.
func magicFlip(rng *rand.Rand, dir string) (string, error) {
	data, _, err := journalBytes(dir)
	if err != nil {
		return "", err
	}
	if len(data) < 8 {
		return "short journal", nil
	}
	off := rng.Intn(8)
	data[off] ^= 1 << rng.Intn(8)
	return fmt.Sprintf("flipped magic bit at %d", off), writeJournal(dir, data)
}

// crcFlip flips one payload bit WITHOUT fixing the checksum: classic
// at-rest bit rot the framing layer must classify.
func crcFlip(rng *rand.Rand, dir string) (string, error) {
	data, frames, err := journalBytes(dir)
	if err != nil || len(frames) == 0 {
		return "no frames", err
	}
	fr := frames[rng.Intn(len(frames))]
	off := fr.PayloadOff + rng.Intn(fr.End-fr.PayloadOff)
	data[off] ^= 1 << rng.Intn(8)
	return fmt.Sprintf("flipped bit at %d (frame %d..%d)", off, fr.Off, fr.End),
		writeJournal(dir, data)
}

// proofFlip flips one bit inside a record's binary and FORGES the
// checksum — the framing layer vouches for the corruption, so only the
// proof checker stands between the rotten record and the kernel.
func proofFlip(rng *rand.Rand, dir string) (string, error) {
	_, frames, err := journalBytes(dir)
	if err != nil || len(frames) == 0 {
		return "no frames", err
	}
	idx := rng.Intn(len(frames))
	at := rng.Intn(256)
	owner, err := store.TamperBinaryByte(dir, idx, at)
	if err != nil {
		// The record at idx may be too small or not an install; that
		// trial degenerates to a no-op, which is fine.
		return fmt.Sprintf("tamper declined: %v", err), nil
	}
	return fmt.Sprintf("flipped proof bit of %q (record %d, %d from end)", owner, idx, at), nil
}

// duplicateFrame re-appends a copy of an existing frame: a replayed
// sequence number the ordering check must kill.
func duplicateFrame(rng *rand.Rand, dir string) (string, error) {
	data, frames, err := journalBytes(dir)
	if err != nil || len(frames) == 0 {
		return "no frames", err
	}
	fr := frames[rng.Intn(len(frames))]
	dup := append([]byte(nil), data[fr.Off:fr.End]...)
	return fmt.Sprintf("duplicated frame %d..%d", fr.Off, fr.End),
		writeJournal(dir, append(data, dup...))
}

// reorderFrames swaps two adjacent frames on disk, making the second's
// sequence number arrive before the first's.
func reorderFrames(rng *rand.Rand, dir string) (string, error) {
	data, frames, err := journalBytes(dir)
	if err != nil || len(frames) < 2 {
		return "too few frames", err
	}
	i := rng.Intn(len(frames) - 1)
	a, b := frames[i], frames[i+1]
	out := append([]byte(nil), data[:a.Off]...)
	out = append(out, data[b.Off:b.End]...)
	out = append(out, data[a.Off:a.End]...)
	out = append(out, data[b.End:]...)
	return fmt.Sprintf("swapped frames %d and %d", i, i+1),
		writeJournal(dir, out)
}

// StoreConfig parameterizes a store-chaos run.
type StoreConfig struct {
	// Seed fixes the journal contents and mutation stream.
	Seed int64
	// Trials is the number of damaged journals to recover.
	Trials int
	// Records is the number of installs journaled per trial (default 5).
	Records int
	// Mutators restricts the set (nil = all).
	Mutators []StoreMutator
}

// StoreViolation is one broken recovery invariant.
type StoreViolation struct {
	Trial   int
	Mutator string
	Detail  string
}

// StoreReport summarizes a store-chaos run.
type StoreReport struct {
	Trials    int
	ByMutator map[string]int
	// Restored and Skipped total the per-trial recovery outcomes.
	Restored int
	Skipped  int
	// SafeVariantAccepts counts restored binaries that differ from
	// their acked bytes but survived reference re-validation and
	// checked execution — mutations the proof provably never depended
	// on.
	SafeVariantAccepts int
	Violations         []StoreViolation
}

// Ok reports whether every invariant held.
func (r StoreReport) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-screen summary.
func (r StoreReport) String() string {
	s := fmt.Sprintf("store chaos: %d trials, %d restored, %d skipped, %d safe variants, %d violations\n",
		r.Trials, r.Restored, r.Skipped, r.SafeVariantAccepts, len(r.Violations))
	for _, m := range StoreMutators() {
		if n := r.ByMutator[m.Name]; n > 0 {
			s += fmt.Sprintf("  mutator %-10s %6d trials\n", m.Name, n)
		}
	}
	for _, v := range r.Violations {
		s += fmt.Sprintf("  VIOLATION trial %d (%s): %s\n", v.Trial, v.Mutator, v.Detail)
	}
	return s
}

// foldLive replays a (possibly damaged) directory and folds the
// decodable records to the live install set, last-wins — the framing
// layer's ground truth of what the journal still holds.
func foldLive(dir string) map[string][]byte {
	recs, _ := store.ReplayDir(dir)
	live := map[string][]byte{}
	for _, r := range recs {
		switch r.Kind {
		case store.KindInstall:
			live[r.Owner] = r.Binary
		case store.KindUninstall:
			delete(live, r.Owner)
		}
	}
	return live
}

// StoreRun journals cfg.Records installs per trial, damages the
// journal with one randomly chosen mutator, recovers a fresh kernel
// from the wreckage, and checks the three invariants. The scratch
// directories live under scratch (one subdirectory per trial, removed
// on success).
func StoreRun(bases []Base, scratch string, cfg StoreConfig) StoreReport {
	rng := rand.New(rand.NewSource(cfg.Seed))
	muts := cfg.Mutators
	if len(muts) == 0 {
		muts = StoreMutators()
	}
	nrec := cfg.Records
	if nrec <= 0 {
		nrec = 5
	}
	rep := StoreReport{Trials: cfg.Trials, ByMutator: map[string]int{}}
	fail := func(trial int, mut, format string, args ...any) {
		rep.Violations = append(rep.Violations, StoreViolation{
			Trial: trial, Mutator: mut, Detail: fmt.Sprintf(format, args...),
		})
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		m := muts[rng.Intn(len(muts))]
		rep.ByMutator[m.Name]++
		dir := filepath.Join(scratch, fmt.Sprintf("t%06d", trial))
		acked, err := seedJournal(rng, dir, bases, nrec)
		if err != nil {
			fail(trial, m.Name, "seed journal: %v", err)
			continue
		}
		detail, err := m.Fn(rng, dir)
		if err != nil {
			fail(trial, m.Name, "mutator: %v", err)
			continue
		}
		if verr := verifyRecovery(rng, dir, bases, acked, &rep); verr != nil {
			fail(trial, m.Name, "%s: %v", detail, verr)
			continue
		}
		os.RemoveAll(dir)
	}
	return rep
}

// seedJournal writes nrec acked installs (random bases, the last few
// owners reused so last-wins folding is exercised) and returns the
// acked live set.
func seedJournal(rng *rand.Rand, dir string, bases []Base, nrec int) (map[string][]byte, error) {
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	acked := map[string][]byte{}
	for i := 0; i < nrec; i++ {
		// A small owner space forces overwrites: the journal carries
		// superseded records recovery must fold away.
		owner := fmt.Sprintf("o-%d", rng.Intn(nrec*3/4+1))
		bin := bases[rng.Intn(len(bases))].Binary
		if _, err := s.Append(store.KindInstall, owner, bin); err != nil {
			return nil, err
		}
		acked[owner] = bin
	}
	return acked, nil
}

// verifyRecovery recovers a fresh kernel from dir and checks the
// invariants against the acked set and the post-damage framing truth.
func verifyRecovery(rng *rand.Rand, dir string, bases []Base, acked map[string][]byte, rep *StoreReport) error {
	// Framing truth AFTER damage, BEFORE Open (Open heals torn tails).
	surviving := foldLive(dir)

	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		return fmt.Errorf("re-open after damage: %w", err)
	}
	defer s.Close()
	k := kernel.New()
	krep, err := k.Recover(context.Background(), s)
	if err != nil {
		return fmt.Errorf("Recover returned environmental error: %w", err)
	}
	rep.Restored += krep.Restored
	rep.Skipped += len(krep.Skipped)

	restored := map[string]bool{}
	for _, o := range k.Owners() {
		restored[o] = true
	}
	// Invariant 1: nothing restores that the journal doesn't frame, and
	// every restored binary must be either byte-identical to some
	// certified base (damage can legitimately resurrect a superseded
	// install — e.g. truncation cutting off the overwrite) or
	// independently provably safe.
	pol := policy.PacketFilter()
	for o := range restored {
		bin, framed := surviving[o]
		if !framed {
			return fmt.Errorf("owner %q restored but the damaged journal has no live record for it", o)
		}
		if isBaseBinary(bases, bin) {
			continue
		}
		if verr := vetStoreAccept(rng, bin, pol); verr != nil {
			return fmt.Errorf("UNSOUND ACCEPT of %q: %v", o, verr)
		}
		rep.SafeVariantAccepts++
	}
	// Invariant 2: every live record the damaged journal still frames
	// with its original acked bytes must restore.
	for o, bin := range surviving {
		if bytes.Equal(bin, acked[o]) && !restored[o] {
			return fmt.Errorf("acked install %q survived the damage intact but was not restored", o)
		}
	}
	return nil
}

// isBaseBinary reports whether bin is byte-identical to one of the
// certified bases — the trivially sound accept.
func isBaseBinary(bases []Base, bin []byte) bool {
	for _, b := range bases {
		if bytes.Equal(b.Binary, bin) {
			return true
		}
	}
	return false
}

// vetStoreAccept adjudicates a restored binary that matches no
// certified base: re-derive the verdict with the reference validator,
// then execute it on the fully checked abstract machine over random
// packets that MEET the policy precondition (≥ 64 bytes — the Safety
// Theorem promises nothing below it), where any unsafe access faults.
func vetStoreAccept(rng *rand.Rand, bin []byte, pol *policy.Policy) error {
	ext, _, err := pcc.ValidateCtx(context.Background(), bin, pol, nil)
	if err != nil {
		return fmt.Errorf("recovery accepted a binary the reference validator rejects: %w", err)
	}
	const packetBase, scratchBase = 0x10000, 0x20000
	for probe := 0; probe < 8; probe++ {
		plen := 8 * (8 + rng.Intn(25)) // 64..256 bytes, word-aligned
		pkt := machine.NewRegion("packet", packetBase, plen, false)
		rng.Read(pkt.Bytes())
		mem := machine.NewMemory()
		mem.MustAddRegion(pkt)
		mem.MustAddRegion(machine.NewRegion("scratch", scratchBase, policy.ScratchLen, true))
		s := &machine.State{Mem: mem}
		s.R[policy.RegPacket] = packetBase
		s.R[policy.RegLen] = uint64(plen)
		s.R[policy.RegScratch] = scratchBase
		if _, err := ext.RunChecked(s, 1<<20); err != nil {
			return fmt.Errorf("checked execution faulted on probe %d: %w", probe, err)
		}
	}
	return nil
}

// StoreKillSweep is the kill-during-commit harness: one journal of
// nrec installs, then for each of cuts crash points (every frame
// boundary plus random mid-frame offsets) the journal prefix is copied
// into a fresh directory and recovered. The crash-consistency
// statement: recovery restores exactly the acked installs whose
// records are fully on disk at the cut — a partially written record
// vanishes, it never mangles the prefix.
func StoreKillSweep(bases []Base, scratch string, nrec, cuts int, seed int64) StoreReport {
	rng := rand.New(rand.NewSource(seed))
	rep := StoreReport{ByMutator: map[string]int{"kill_sweep": 0}}
	src := filepath.Join(scratch, "full")
	if _, err := seedJournal(rng, src, bases, nrec); err != nil {
		rep.Violations = append(rep.Violations, StoreViolation{Mutator: "kill_sweep",
			Detail: fmt.Sprintf("seed journal: %v", err)})
		return rep
	}
	data, frames, err := journalBytes(src)
	if err != nil {
		rep.Violations = append(rep.Violations, StoreViolation{Mutator: "kill_sweep",
			Detail: fmt.Sprintf("scan journal: %v", err)})
		return rep
	}
	// Crash points: inside the 8-byte header (a kill during the very
	// first write — nothing must survive, but the store must boot),
	// every frame boundary (the clean cuts), and random offsets inside
	// frames (the dirty ones).
	offsets := []int{0, 4, 8}
	for _, fr := range frames {
		offsets = append(offsets, fr.End)
	}
	for len(offsets) < cuts && len(data) > 9 {
		offsets = append(offsets, 9+rng.Intn(len(data)-9))
	}
	for trial, cut := range offsets {
		rep.Trials++
		rep.ByMutator["kill_sweep"]++
		dir := filepath.Join(scratch, fmt.Sprintf("cut%06d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			rep.Violations = append(rep.Violations, StoreViolation{Trial: trial, Mutator: "kill_sweep",
				Detail: err.Error()})
			continue
		}
		if err := writeJournal(dir, data[:cut]); err != nil {
			rep.Violations = append(rep.Violations, StoreViolation{Trial: trial, Mutator: "kill_sweep",
				Detail: err.Error()})
			continue
		}
		// The expected survivors: records whose frames end at or before
		// the cut, folded last-wins.
		want := map[string]bool{}
		fold := map[string]bool{}
		for _, fr := range frames {
			if fr.End > cut {
				break
			}
			if rec, err := store.DecodePayload(fr.Payload); err == nil {
				switch rec.Kind {
				case store.KindInstall:
					fold[rec.Owner] = true
				case store.KindUninstall:
					delete(fold, rec.Owner)
				}
			}
		}
		for o := range fold {
			want[o] = true
		}
		s, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			rep.Violations = append(rep.Violations, StoreViolation{Trial: trial, Mutator: "kill_sweep",
				Detail: fmt.Sprintf("open at cut %d: %v", cut, err)})
			continue
		}
		k := kernel.New()
		krep, err := k.Recover(context.Background(), s)
		if err != nil {
			s.Close()
			rep.Violations = append(rep.Violations, StoreViolation{Trial: trial, Mutator: "kill_sweep",
				Detail: fmt.Sprintf("recover at cut %d: %v", cut, err)})
			continue
		}
		rep.Restored += krep.Restored
		rep.Skipped += len(krep.Skipped)
		got := map[string]bool{}
		for _, o := range k.Owners() {
			got[o] = true
		}
		if len(got) != len(want) || !sameSet(got, want) {
			rep.Violations = append(rep.Violations, StoreViolation{Trial: trial, Mutator: "kill_sweep",
				Detail: fmt.Sprintf("cut %d: restored %v, want %v", cut, keys(got), keys(want))})
			continue
		}
		s.Close()
		os.RemoveAll(dir)
	}
	return rep
}

func sameSet(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return len(a) == len(b)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
