package chaos

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestStoreChaosInvariants runs the mutator harness at test scale (the
// ≥2,000-journal run lives in scripts/verify.sh via pccload): every
// damaged journal recovers without an unsound accept or a lost intact
// install, and the run terminates.
func TestStoreChaosInvariants(t *testing.T) {
	bases, err := PaperBases()
	if err != nil {
		t.Fatal(err)
	}
	trials := 48
	if testing.Short() {
		trials = 12
	}
	rep := StoreRun(bases, t.TempDir(), StoreConfig{Seed: 1, Trials: trials})
	if !rep.Ok() {
		t.Fatal(rep.String())
	}
	if rep.Trials != trials {
		t.Fatalf("ran %d trials, want %d", rep.Trials, trials)
	}
	if rep.Restored == 0 {
		t.Fatal("no trial restored anything — the harness is not exercising recovery")
	}
	// Every mutator class must have run at this trial count.
	for _, m := range StoreMutators() {
		if rep.ByMutator[m.Name] == 0 {
			t.Fatalf("mutator %s never ran: %v", m.Name, rep.ByMutator)
		}
	}
}

// TestStoreChaosEachMutator pins each mutator individually, so a
// regression names the broken class instead of a lumped run.
func TestStoreChaosEachMutator(t *testing.T) {
	bases, err := PaperBases()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range StoreMutators() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rep := StoreRun(bases, t.TempDir(), StoreConfig{
				Seed: 7, Trials: 6, Mutators: []StoreMutator{m},
			})
			if !rep.Ok() {
				t.Fatal(rep.String())
			}
		})
	}
}

// TestStoreKillSweep cuts one journal at every frame boundary and a
// spread of mid-frame offsets: recovery after each simulated
// kill-during-commit restores exactly the fully-written prefix.
func TestStoreKillSweep(t *testing.T) {
	bases, err := PaperBases()
	if err != nil {
		t.Fatal(err)
	}
	cuts := 24
	if testing.Short() {
		cuts = 10
	}
	rep := StoreKillSweep(bases, t.TempDir(), 6, cuts, 3)
	if !rep.Ok() {
		t.Fatal(rep.String())
	}
	if rep.Trials < 7 { // 6 frame boundaries + the magic-only cut
		t.Fatalf("sweep ran only %d cuts", rep.Trials)
	}
}

// TestStoreMutatorsDamage sanity-checks that each mutator actually
// changes the journal bytes (a silently no-op mutator would hollow out
// the harness).
func TestStoreMutatorsDamage(t *testing.T) {
	bases, err := PaperBases()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, m := range StoreMutators() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := seedJournal(rng, dir, bases, 4); err != nil {
				t.Fatal(err)
			}
			before, _, err := journalBytes(dir)
			if err != nil {
				t.Fatal(err)
			}
			detail, err := m.Fn(rng, dir)
			if err != nil {
				t.Fatal(err)
			}
			after, _, _ := journalBytes(dir)
			if string(before) == string(after) && !strings.Contains(detail, "declined") {
				t.Fatalf("mutator left the journal untouched (%s)", detail)
			}
			// The store must still open over the wreckage.
			s, err := store.Open(dir, store.Options{NoSync: true})
			if err != nil {
				t.Fatalf("Open over %s damage: %v", m.Name, err)
			}
			s.Close()
		})
	}
}
