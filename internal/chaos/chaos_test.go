package chaos

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	pcc "repro"
	"repro/internal/kernel"
	"repro/internal/pccbin"
)

// testLimits are the budgets the invariant tests validate under:
// defaults except for much tighter step fuel — every legitimate base
// checks in ≤ ~10k steps, while a dag bomb would otherwise burn the
// default 16M steps per trial and slow the suite to a crawl.
func testLimits() *pcc.Limits {
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 12_000
	return &lim
}

// sharedBases certifies the corpus once per test binary.
var sharedBases = sync.OnceValues(PaperBases)

// TestChaosInvariant is the acceptance-criteria test: 10,000 mutated
// binaries across every mutator class, fixed seed, against both the
// pcc validation path and a live kernel — zero escaped panics, zero
// accepts of non-byte-identical blobs. Sharded into parallel subtests
// so the run also exercises the validation path concurrently (the
// -race configuration of scripts/verify.sh runs this).
func TestChaosInvariant(t *testing.T) {
	bases, err := sharedBases()
	if err != nil {
		t.Fatal(err)
	}
	const shards, trialsPerShard = 8, 1250 // 10,000 total
	lim := testLimits()
	for shard := 0; shard < shards; shard++ {
		shard := shard
		target := ValidateTarget(lim)
		name := "pcc"
		if shard >= shards/2 {
			// Kernel-level shards: mutants go through the full install
			// pipeline (cache probe, audit-less commit, accounting).
			k := kernel.New()
			k.SetLimits(*lim)
			target = func(mutant []byte, base Base) (bool, error) {
				err := k.InstallFilterCtx(context.Background(), "chaos", mutant)
				return err == nil, err
			}
			name = "kernel"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := Run(bases, target, Config{Seed: 0xC0FFEE + int64(shard), Trials: trialsPerShard})
			if !rep.Ok() {
				t.Fatalf("invariants violated:\n%s", rep)
			}
			for _, m := range Mutators() {
				if rep.ByMutator[m.Name] == 0 {
					t.Fatalf("mutator %q never ran:\n%s", m.Name, rep)
				}
			}
			if rep.Rejects["limit"] == 0 {
				t.Fatalf("no limit-classed rejections — bombs not reaching their budgets:\n%s", rep)
			}
			if rep.Rejects["proof"] == 0 {
				t.Fatalf("no proof-classed rejections — corruption not reaching the checker:\n%s", rep)
			}
			if n := len(rep.Violations); n != 0 {
				t.Fatalf("%d violations:\n%s", n, rep)
			}
			// Safe variants (different-but-provably-safe programs hit
			// by random corruption) exist but are rare — a flood here
			// would mean the vetting oracle is too permissive.
			if rep.SafeVariantAccepts > 5 {
				t.Fatalf("%d safe-variant accepts — oracle too lax:\n%s", rep.SafeVariantAccepts, rep)
			}
		})
	}
}

// TestChaosDeterministic: identical configs replay identically, so a
// violating seed can be handed around as a reproducer.
func TestChaosDeterministic(t *testing.T) {
	bases, err := sharedBases()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 42, Trials: 200}
	a := Run(bases, ValidateTarget(testLimits()), cfg)
	b := Run(bases, ValidateTarget(testLimits()), cfg)
	if a.IdenticalAccepts != b.IdenticalAccepts ||
		a.SafeVariantAccepts != b.SafeVariantAccepts ||
		len(a.Violations) != len(b.Violations) {
		t.Fatalf("non-deterministic runs:\n%s\nvs\n%s", a, b)
	}
	for name, n := range a.ByMutator {
		if b.ByMutator[name] != n {
			t.Fatalf("mutator schedule diverged at %q: %d vs %d", name, n, b.ByMutator[name])
		}
	}
	for reason, n := range a.Rejects {
		if b.Rejects[reason] != n {
			t.Fatalf("reject classes diverged at %q: %d vs %d", reason, n, b.Rejects[reason])
		}
	}
}

// TestBombEncoding cross-checks the hand-written wire-format constants
// against the real decoder: the depth bomb must be rejected
// specifically as a term_depth budget violation (proving the bytes
// really nest), and the dag bomb must decode cleanly (proving it is a
// well-formed DAG) yet die in the checker on step fuel (proving the
// sharing expands).
func TestBombEncoding(t *testing.T) {
	bases, err := sharedBases()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	base := bases[0]

	bomb := depthBomb(rng, base)
	_, err = pccbin.Unmarshal(bomb)
	var le *pccbin.LimitError
	if !errors.As(err, &le) || le.Axis != "term_depth" {
		t.Fatalf("depth bomb not rejected on depth: %v", err)
	}

	dag := dagBomb(rng, base)
	if _, err := pccbin.Unmarshal(dag); err != nil {
		t.Fatalf("dag bomb does not decode: %v", err)
	}
	_, _, err = pcc.ValidateCtx(context.Background(), dag, base.Policy, testLimits())
	var rle *pcc.ResourceLimitError
	if !errors.As(err, &rle) || rle.Axis != "check_steps" {
		t.Fatalf("dag bomb not killed by step fuel: %v", err)
	}
	// Sanity: the bomb is small on the wire — the whole point is that
	// byte-size budgets cannot catch it.
	if len(dag) > 4096 {
		t.Fatalf("dag bomb unexpectedly large: %d bytes", len(dag))
	}
}

// TestPaperBasesValidate: the corpus itself is sound — every base
// validates under the test budgets (so a rejected mutant is rejected
// for its mutation, not its base).
func TestPaperBasesValidate(t *testing.T) {
	bases, err := sharedBases()
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 5 {
		t.Fatalf("want 5 bases, got %d", len(bases))
	}
	for _, b := range bases {
		if _, _, err := pcc.ValidateCtx(context.Background(), b.Binary, b.Policy, testLimits()); err != nil {
			t.Fatalf("base %s does not validate: %v", b.Name, err)
		}
	}
}
