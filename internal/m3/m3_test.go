package m3

import (
	"testing"

	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

func TestCompileAllFilters(t *testing.T) {
	for _, f := range filters.All {
		for _, d := range []Dialect{Plain, View} {
			prog, err := Compile(Prog(f, d), d)
			if err != nil {
				t.Fatalf("%v dialect %d: %v", f, d, err)
			}
			if len(prog) < 10 {
				t.Errorf("%v dialect %d: suspiciously small (%d instrs)", f, d, len(prog))
			}
		}
	}
}

func TestM3FiltersEquivalent(t *testing.T) {
	pkts := pktgen.Generate(10000, pktgen.Config{Seed: 21})
	env := filters.Env{}
	for _, f := range filters.All {
		for _, d := range []Dialect{Plain, View} {
			prog, err := Compile(Prog(f, d), d)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pkts {
				want := filters.Reference(f, p.Data)
				got, _, err := env.Exec(prog, p.Data, machine.Checked)
				if err != nil {
					t.Fatalf("%v dialect %d pkt %d: %v", f, d, i, err)
				}
				if (got != 0) != want {
					t.Fatalf("%v dialect %d pkt %d (len %d): got %d want %v",
						f, d, i, p.Len(), got, want)
				}
			}
		}
	}
}

func TestViewFasterThanPlain(t *testing.T) {
	// §3.1: "We measured a 20% improvement in the Modula-3 packet
	// filter performance when using VIEW."
	pkts := pktgen.Generate(3000, pktgen.Config{Seed: 23})
	env := filters.Env{}
	var plainTotal, viewTotal int64
	for _, f := range filters.All {
		pp, err := Compile(Prog(f, Plain), Plain)
		if err != nil {
			t.Fatal(err)
		}
		vp, err := Compile(Prog(f, View), View)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			_, c1, err := env.Exec(pp, p.Data, machine.Checked)
			if err != nil {
				t.Fatal(err)
			}
			_, c2, err := env.Exec(vp, p.Data, machine.Checked)
			if err != nil {
				t.Fatal(err)
			}
			plainTotal += c1
			viewTotal += c2
		}
	}
	if viewTotal >= plainTotal {
		t.Errorf("VIEW (%d cycles) not faster than plain (%d cycles)", viewTotal, plainTotal)
	}
	improvement := 1 - float64(viewTotal)/float64(plainTotal)
	if improvement < 0.05 || improvement > 0.60 {
		t.Errorf("VIEW improvement = %.0f%%, expected roughly the paper's 20%%", improvement*100)
	}
}

// TestM3OutputCertifies is the §6 "certifying compiler" experiment:
// because the emitted code carries its own bounds checks, it certifies
// under the packet-filter PCC policy with the standard prover — no
// extra run-time checks needed.
func TestM3OutputCertifies(t *testing.T) {
	pol := policy.PacketFilter()
	for _, f := range filters.All {
		for _, d := range []Dialect{Plain, View} {
			prog, err := Compile(Prog(f, d), d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
			if err != nil {
				t.Fatalf("%v dialect %d: %v", f, d, err)
			}
			proof, err := prover.Prove(res.SP)
			if err != nil {
				t.Fatalf("%v dialect %d: certification failed: %v", f, d, err)
			}
			if err := prover.Check(proof, res.SP); err != nil {
				t.Fatalf("%v dialect %d: %v", f, d, err)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		f    *Func
		d    Dialect
	}{
		{"byte in view", &Func{Body: []Stmt{Ret{ByteAt{Lit(0)}}}}, View},
		{"word in plain", &Func{Body: []Stmt{Ret{WordAt{Lit(0)}}}}, Plain},
		{"huge constant", &Func{Body: []Stmt{Ret{Lit(1 << 40)}}}, Plain},
		{"too deep", &Func{Body: []Stmt{Ret{
			// Wide literals cannot use the 8-bit operand form, so each
			// nesting level consumes a stack register.
			Bin{Add, Lit(1000), Bin{Add, Lit(1000), Bin{Add, Lit(1000),
				Bin{Add, Lit(1000), Lit(1000)}}}},
		}}}, Plain},
	}
	for _, c := range cases {
		if _, err := Compile(c.f, c.d); err == nil {
			t.Errorf("%s: compile succeeded unexpectedly", c.name)
		}
	}
}

func TestFailedBoundsCheckRejects(t *testing.T) {
	// A filter reading beyond any packet must reject every packet
	// (the raise handler path), not fault.
	f := &Func{Body: []Stmt{Ret{ByteAt{Lit(100000)}}}}
	prog, err := Compile(f, Plain)
	if err != nil {
		t.Fatal(err)
	}
	env := filters.Env{}
	pkt := make([]byte, 64)
	got, _, err := env.Exec(prog, pkt, machine.Checked)
	if err != nil {
		t.Fatalf("bounds-check failure faulted: %v", err)
	}
	if got != 0 {
		t.Fatalf("out-of-range read accepted the packet: %d", got)
	}
}

func TestPrologueUsesScratchAsFrame(t *testing.T) {
	// The compiled code must save/restore its frame in the scratch
	// area and leave the packet untouched.
	prog, err := Compile(Prog(filters.Filter1, View), View)
	if err != nil {
		t.Fatal(err)
	}
	env := filters.Env{}
	s := env.NewState(make([]byte, 64))
	if _, err := machine.Interp(prog, s, machine.Checked, nil, 10000); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEliminationPreservesBehaviour(t *testing.T) {
	pkts := pktgen.Generate(5000, pktgen.Config{Seed: 31})
	env := filters.Env{}
	for _, f := range filters.All {
		for _, d := range []Dialect{Plain, View} {
			naive, err := Compile(Prog(f, d), d)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := CompileOptimized(Prog(f, d), d)
			if err != nil {
				t.Fatal(err)
			}
			if len(opt) >= len(naive) && f == filters.Filter3 {
				t.Errorf("%v dialect %d: check elimination removed nothing (%d vs %d instrs)",
					f, d, len(opt), len(naive))
			}
			var naiveCycles, optCycles int64
			for i, p := range pkts {
				w, c1, err := env.Exec(naive, p.Data, machine.Checked)
				if err != nil {
					t.Fatal(err)
				}
				g, c2, err := env.Exec(opt, p.Data, machine.Checked)
				if err != nil {
					t.Fatalf("%v dialect %d pkt %d: optimized faulted: %v", f, d, i, err)
				}
				if (g != 0) != (w != 0) {
					t.Fatalf("%v dialect %d pkt %d: optimized disagrees", f, d, i)
				}
				naiveCycles += c1
				optCycles += c2
			}
			if optCycles > naiveCycles {
				t.Errorf("%v dialect %d: optimization made it slower", f, d)
			}
		}
	}
}

func TestCheckEliminationOutputCertifies(t *testing.T) {
	// The elided checks are justified by dominating hypotheses, so the
	// optimized code still certifies — no run-time check is needed
	// where the VC already knows the bound.
	pol := policy.PacketFilter()
	for _, f := range filters.All {
		for _, d := range []Dialect{Plain, View} {
			prog, err := CompileOptimized(Prog(f, d), d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
			if err != nil {
				t.Fatal(err)
			}
			proof, err := prover.Prove(res.SP)
			if err != nil {
				t.Fatalf("%v dialect %d: optimized output failed to certify: %v", f, d, err)
			}
			if err := prover.Check(proof, res.SP); err != nil {
				t.Fatal(err)
			}
		}
	}
}
