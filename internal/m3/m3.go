// Package m3 implements the safe-language baseline of §3.1: a small
// type-safe packet-filter language in the spirit of the Modula-3
// subset the SPIN kernel accepts, and a compiler that emits Alpha
// code with the run-time checks the language's safety semantics
// mandate. Two dialects are supported, mirroring the paper's
// experiment:
//
//   - Plain: packet fields are loaded a byte at a time and every byte
//     access carries a bounds check ("in plain Modula-3 the packet
//     fields must be loaded a byte at a time, and a safety bounds
//     check is performed for each such operation");
//   - View: the packet is VIEWed as an array of aligned 64-bit words,
//     allowing fewer memory operations, still with one subrange check
//     per access.
//
// The critical fact that packets are at least 64 bytes long "cannot be
// communicated to the compiler through the Modula-3 type system"
// (§3.1), so the compiler cannot eliminate any of these checks — that
// is the baseline's handicap, reproduced here by construction.
//
// As a §6 bonus ("we have already experimented with a toy compiler of
// this sort"), the emitted code is a *certifying compiler* output: the
// bounds checks double as proof obligations, so compiled filters
// certify under the PCC packet-filter policy with the standard prover
// (see the tests).
package m3

import (
	"fmt"

	"repro/internal/alpha"
	"repro/internal/policy"
)

// Op is a binary operator of the filter language.
type Op uint8

// Operators. Comparisons yield 0 or 1.
const (
	Add Op = iota
	Sub
	Mul
	BAnd
	BOr
	BXor
	Shl
	Shr
	CmpEq
	CmpUlt
)

// Expr is an expression of the filter language.
type Expr interface{ isExpr() }

// Lit is an unsigned constant.
type Lit uint64

// Len is the packet length in bytes.
type Len struct{}

// ByteAt loads packet[Off] with a bounds check (Plain dialect).
type ByteAt struct{ Off Expr }

// WordAt loads the Idx-th aligned 64-bit word of the packet VIEW with
// a subrange check (View dialect). The view covers ⌈len/8⌉ words (the
// kernel's receive buffers are word-padded).
type WordAt struct{ Idx Expr }

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
}

func (Lit) isExpr()    {}
func (Len) isExpr()    {}
func (ByteAt) isExpr() {}
func (WordAt) isExpr() {}
func (Bin) isExpr()    {}

// Stmt is a statement of the filter language.
type Stmt interface{ isStmt() }

// If branches on Cond ≠ 0.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Ret returns the filter's verdict (non-zero accepts).
type Ret struct{ E Expr }

func (If) isStmt()  {}
func (Ret) isStmt() {}

// Func is a filter program. Control falling off the end rejects.
type Func struct{ Body []Stmt }

// Dialect selects the access style.
type Dialect uint8

// The two dialects of the experiment.
const (
	Plain Dialect = iota // byte-at-a-time accesses
	View                 // 64-bit VIEW accesses
)

// compiler state.
type compiler struct {
	dialect     Dialect
	elideChecks bool
	checked     map[string]bool // dominating bounds checks (by offset key)
	out         []alpha.Instr
	fixups      []fixup
	labels      map[string]int
	err         error
}

type fixup struct {
	pc    int
	label string
}

// Expression evaluation uses a fixed register stack, as a simple
// non-optimizing safe-language compiler would.
var stackRegs = []alpha.Reg{4, 5, 6, 0}

const (
	regPacket  = alpha.Reg(policy.RegPacket)
	regLen     = alpha.Reg(policy.RegLen)
	regScratch = alpha.Reg(policy.RegScratch)
)

// Compile translates a filter to Alpha code under the packet-filter
// calling convention. The emitted code brackets the body with the
// frame save/restore sequence of the Modula-3 calling convention
// (modeled by spilling two registers to the scratch area) and routes
// every failed bounds check to a block that rejects the packet, as
// the kernel's RAISE handler does.
func Compile(f *Func, dialect Dialect) ([]alpha.Instr, error) {
	return compile(f, dialect, false)
}

// CompileOptimized is Compile with the redundant-bounds-check
// elimination a better Modula-3 compiler would perform: a check for a
// syntactically identical offset that dominates the current access is
// not re-emitted. The paper notes the DEC SRC compiler "tries to
// eliminate some of these checks statically but is not very
// successful" — the ablation benchmarks quantify how far this pass
// closes the gap to PCC (it cannot close it: the length lower bound is
// not expressible in the type system, so first accesses stay checked).
func CompileOptimized(f *Func, dialect Dialect) ([]alpha.Instr, error) {
	return compile(f, dialect, true)
}

func compile(f *Func, dialect Dialect, elide bool) ([]alpha.Instr, error) {
	c := &compiler{
		dialect:     dialect,
		elideChecks: elide,
		checked:     map[string]bool{},
		labels:      map[string]int{},
	}

	// Prologue: frame save.
	c.emit(alpha.Instr{Op: alpha.STQ, Ra: 4, Rb: regScratch, Disp: 0})
	c.emit(alpha.Instr{Op: alpha.STQ, Ra: 5, Rb: regScratch, Disp: 8})

	for _, s := range f.Body {
		c.stmt(s)
	}
	// Falling off the end rejects.
	c.emit(alpha.Instr{Op: alpha.BIS, Ra: alpha.RegZero, HasLit: true, Lit: 0, Rc: 0})
	c.branch(alpha.Instr{Op: alpha.BR}, "m3$epilogue")

	// Bounds-check failure: the runtime raises; the kernel's handler
	// rejects the packet.
	c.label("m3$fail")
	c.emit(alpha.Instr{Op: alpha.BIS, Ra: alpha.RegZero, HasLit: true, Lit: 0, Rc: 0})

	// Epilogue: frame restore.
	c.label("m3$epilogue")
	c.emit(alpha.Instr{Op: alpha.LDQ, Ra: 4, Rb: regScratch, Disp: 0})
	c.emit(alpha.Instr{Op: alpha.LDQ, Ra: 5, Rb: regScratch, Disp: 8})
	c.emit(alpha.Instr{Op: alpha.RET})

	if c.err != nil {
		return nil, c.err
	}
	for _, fx := range c.fixups {
		target, ok := c.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("m3: unresolved label %q", fx.label)
		}
		c.out[fx.pc].Target = target
	}
	if err := alpha.Validate(c.out); err != nil {
		return nil, fmt.Errorf("m3: emitted invalid code: %w", err)
	}
	return c.out, nil
}

func (c *compiler) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf("m3: "+format, args...)
	}
}

func (c *compiler) emit(ins alpha.Instr) { c.out = append(c.out, ins) }

func (c *compiler) branch(ins alpha.Instr, label string) {
	c.fixups = append(c.fixups, fixup{len(c.out), label})
	c.emit(ins)
}

func (c *compiler) label(name string) {
	if _, dup := c.labels[name]; dup {
		c.fail("duplicate label %q", name)
		return
	}
	c.labels[name] = len(c.out)
}

var labelSeq int

func (c *compiler) fresh(prefix string) string {
	labelSeq++
	return fmt.Sprintf("%s$%d", prefix, labelSeq)
}

func (c *compiler) stmt(s Stmt) {
	switch s := s.(type) {
	case Ret:
		c.eval(s.E, 0)
		if stackRegs[0] != 0 {
			c.emit(alpha.Instr{Op: alpha.BIS, Ra: alpha.RegZero, Rb: stackRegs[0], Rc: 0})
		}
		c.branch(alpha.Instr{Op: alpha.BR}, "m3$epilogue")
	case If:
		elseL := c.fresh("else")
		endL := c.fresh("end")
		c.eval(s.Cond, 0)
		// Checks emitted while evaluating the condition dominate both
		// branches; checks inside one branch do not dominate the other
		// or the join.
		dominating := c.snapshotChecked()
		c.branch(alpha.Instr{Op: alpha.BEQ, Ra: stackRegs[0]}, elseL)
		for _, t := range s.Then {
			c.stmt(t)
		}
		c.branch(alpha.Instr{Op: alpha.BR}, endL)
		c.label(elseL)
		c.restoreChecked(dominating)
		for _, e := range s.Else {
			c.stmt(e)
		}
		c.label(endL)
		c.restoreChecked(dominating)
	default:
		c.fail("unknown statement %T", s)
	}
}

// eval generates code leaving the value of e in stackRegs[sp].
func (c *compiler) eval(e Expr, sp int) {
	if sp >= len(stackRegs) {
		c.fail("expression too deep (needs more than %d registers)", len(stackRegs))
		return
	}
	dst := stackRegs[sp]
	switch e := e.(type) {
	case Lit:
		c.materialize(uint64(e), dst)
	case Len:
		c.emit(alpha.Instr{Op: alpha.BIS, Ra: alpha.RegZero, Rb: regLen, Rc: dst})
	case Bin:
		c.eval(e.L, sp)
		// Small constant right operands use the literal form, as any
		// compiler would.
		if lit, ok := e.R.(Lit); ok && lit <= 255 {
			c.emit(alpha.Instr{Op: binOp(e.Op, c), Ra: dst, HasLit: true, Lit: uint8(lit), Rc: dst})
			return
		}
		if sp+1 >= len(stackRegs) {
			c.fail("expression too deep (needs more than %d registers)", len(stackRegs))
			return
		}
		c.eval(e.R, sp+1)
		c.emit(alpha.Instr{Op: binOp(e.Op, c), Ra: dst, Rb: stackRegs[sp+1], Rc: dst})
	case ByteAt:
		if c.dialect != Plain {
			c.fail("ByteAt in View dialect (use WordAt)")
			return
		}
		c.byteAt(e.Off, sp)
	case WordAt:
		if c.dialect != View {
			c.fail("WordAt in Plain dialect (use ByteAt)")
			return
		}
		c.wordAt(e.Idx, sp)
	default:
		c.fail("unknown expression %T", e)
	}
}

// snapshotChecked copies the dominating-check set.
func (c *compiler) snapshotChecked() map[string]bool {
	out := make(map[string]bool, len(c.checked))
	for k := range c.checked {
		out[k] = true
	}
	return out
}

func (c *compiler) restoreChecked(save map[string]bool) {
	c.checked = make(map[string]bool, len(save))
	for k := range save {
		c.checked[k] = true
	}
}

// checkOnce reports whether the bounds check for this access key may
// be skipped, recording it otherwise. Offset expressions read only the
// immutable packet, so a dominating identical check stays valid.
func (c *compiler) checkOnce(kind string, off Expr) bool {
	if !c.elideChecks {
		return false
	}
	key := fmt.Sprintf("%s|%#v", kind, off)
	if c.checked[key] {
		return true
	}
	c.checked[key] = true
	return false
}

// byteAt emits: check Off < len; load the containing aligned word;
// extract the byte. (On a real Alpha the load+extract pair is
// LDQ_U/EXTBL; our subset spells it with shifts at equal cost.)
func (c *compiler) byteAt(off Expr, sp int) {
	if sp+1 >= len(stackRegs) {
		c.fail("byte access too deep")
		return
	}
	dst := stackRegs[sp]
	t1 := stackRegs[sp+1]
	c.eval(off, sp)
	// Bounds check: off < len, else raise.
	if !c.checkOnce("byte", off) {
		c.emit(alpha.Instr{Op: alpha.CMPULT, Ra: dst, Rb: regLen, Rc: t1})
		c.branch(alpha.Instr{Op: alpha.BEQ, Ra: t1}, "m3$fail")
	}
	// Aligned word address.
	c.emit(alpha.Instr{Op: alpha.SRL, Ra: dst, HasLit: true, Lit: 3, Rc: t1})
	c.emit(alpha.Instr{Op: alpha.SLL, Ra: t1, HasLit: true, Lit: 3, Rc: t1})
	c.emit(alpha.Instr{Op: alpha.ADDQ, Ra: regPacket, Rb: t1, Rc: t1})
	c.emit(alpha.Instr{Op: alpha.LDQ, Ra: t1, Rb: t1, Disp: 0})
	// Byte extraction: (word >> 8*(off&7)) & 0xff.
	c.emit(alpha.Instr{Op: alpha.AND, Ra: dst, HasLit: true, Lit: 7, Rc: dst})
	c.emit(alpha.Instr{Op: alpha.SLL, Ra: dst, HasLit: true, Lit: 3, Rc: dst})
	c.emit(alpha.Instr{Op: alpha.SRL, Ra: t1, Rb: dst, Rc: dst})
	c.emit(alpha.Instr{Op: alpha.AND, Ra: dst, HasLit: true, Lit: 0xff, Rc: dst})
}

// wordAt emits: check Idx < ⌈len/8⌉; load word Idx of the VIEW.
func (c *compiler) wordAt(idx Expr, sp int) {
	if sp+1 >= len(stackRegs) {
		c.fail("word access too deep")
		return
	}
	dst := stackRegs[sp]
	t1 := stackRegs[sp+1]
	c.eval(idx, sp)
	// NUMBER(view) = (len+7) >> 3.
	if !c.checkOnce("word", idx) {
		c.emit(alpha.Instr{Op: alpha.LDA, Ra: t1, Rb: regLen, Disp: 7})
		c.emit(alpha.Instr{Op: alpha.SRL, Ra: t1, HasLit: true, Lit: 3, Rc: t1})
		c.emit(alpha.Instr{Op: alpha.CMPULT, Ra: dst, Rb: t1, Rc: t1})
		c.branch(alpha.Instr{Op: alpha.BEQ, Ra: t1}, "m3$fail")
	}
	c.emit(alpha.Instr{Op: alpha.SLL, Ra: dst, HasLit: true, Lit: 3, Rc: dst})
	c.emit(alpha.Instr{Op: alpha.ADDQ, Ra: regPacket, Rb: dst, Rc: dst})
	c.emit(alpha.Instr{Op: alpha.LDQ, Ra: dst, Rb: dst, Disp: 0})
}

// materialize loads an arbitrary constant up to 24 bits (enough for
// network prefixes and ports).
func (c *compiler) materialize(v uint64, dst alpha.Reg) {
	switch {
	case v <= 255:
		c.emit(alpha.Instr{Op: alpha.BIS, Ra: alpha.RegZero, HasLit: true, Lit: uint8(v), Rc: dst})
	case v < 1<<15:
		c.emit(alpha.Instr{Op: alpha.LDA, Ra: dst, Rb: alpha.RegZero, Disp: int16(v)})
	case v < 1<<31:
		c.emit(alpha.Instr{Op: alpha.LDA, Ra: dst, Rb: alpha.RegZero, Disp: int16(v >> 16)})
		c.emit(alpha.Instr{Op: alpha.SLL, Ra: dst, HasLit: true, Lit: 8, Rc: dst})
		if mid := uint8(v >> 8); mid != 0 {
			c.emit(alpha.Instr{Op: alpha.BIS, Ra: dst, HasLit: true, Lit: mid, Rc: dst})
		}
		c.emit(alpha.Instr{Op: alpha.SLL, Ra: dst, HasLit: true, Lit: 8, Rc: dst})
		if low := uint8(v); low != 0 {
			c.emit(alpha.Instr{Op: alpha.BIS, Ra: dst, HasLit: true, Lit: low, Rc: dst})
		}
	default:
		c.fail("constant %#x too large to materialize", v)
	}
}

func binOp(op Op, c *compiler) alpha.Op {
	switch op {
	case Add:
		return alpha.ADDQ
	case Sub:
		return alpha.SUBQ
	case Mul:
		return alpha.MULQ
	case BAnd:
		return alpha.AND
	case BOr:
		return alpha.BIS
	case BXor:
		return alpha.XOR
	case Shl:
		return alpha.SLL
	case Shr:
		return alpha.SRL
	case CmpEq:
		return alpha.CMPEQ
	case CmpUlt:
		return alpha.CMPULT
	}
	c.fail("unknown operator %d", op)
	return alpha.ADDQ
}
