package m3

import "repro/internal/filters"

// The four packet filters written in the safe language, once per
// dialect — exactly the §3.1 experiment: "we wrote the four packet
// filters in the safe subset of Modula-3 and compiled them with ...
// the VIEW operation".

// Big-endian field values used by the plain dialect.
const (
	ipBE       = 0x0800
	arpBE      = 0x0806
	netABE     = uint64(128)<<16 | 2<<8 | 42
	netBBE     = uint64(192)<<16 | 12<<8 | 33
	tcpProto   = 6
	filterPort = 80
)

// Little-endian (wire-order word) field values used by the VIEW
// dialect, matching the layout of aligned 64-bit loads.
const (
	ipLE   = 0x0008
	arpLE  = 0x0608
	netALE = uint64(0x2A0280)
	netBLE = uint64(0x210CC0)
	portLE = 0x5000
)

func lit(v uint64) Expr   { return Lit(v) }
func b(off Expr) Expr     { return ByteAt{off} }
func w(idx uint64) Expr   { return WordAt{Lit(idx)} }
func add(l, r Expr) Expr  { return Bin{Add, l, r} }
func band(l, r Expr) Expr { return Bin{BAnd, l, r} }
func bor(l, r Expr) Expr  { return Bin{BOr, l, r} }
func shl(l, r Expr) Expr  { return Bin{Shl, l, r} }
func shr(l, r Expr) Expr  { return Bin{Shr, l, r} }
func eq(l, r Expr) Expr   { return Bin{CmpEq, l, r} }

// --- plain dialect helpers --------------------------------------------

// be16p loads a big-endian 16-bit field byte by byte.
func be16p(off uint64) Expr {
	return bor(shl(b(lit(off)), lit(8)), b(lit(off+1)))
}

// net24p loads a 24-bit network prefix byte by byte (big-endian).
func net24p(off Expr) Expr {
	return bor(bor(shl(b(off), lit(16)), shl(b(add(off, lit(1))), lit(8))), b(add(off, lit(2))))
}

// --- view dialect helpers ---------------------------------------------

// low16 masks an expression to its low 16 bits without needing a wide
// literal.
func low16(e Expr) Expr { return shr(shl(e, lit(48)), lit(48)) }

// le16v extracts the 16-bit field at constant byte offset off from the
// word view (value in wire/LE order).
func le16v(off uint64) Expr {
	return low16(shr(w(off/8), lit((off%8)*8)))
}

// srcNetV is the IP source /24 prefix (bytes 26..28) from word 3.
func srcNetV() Expr { return shr(shl(w(3), lit(24)), lit(40)) }

// dstNetV is the IP destination /24 prefix (bytes 30..32), which
// straddles words 3 and 4.
func dstNetV() Expr {
	return bor(shr(w(3), lit(48)), shl(band(w(4), lit(255)), lit(16)))
}

// arpSndV is the ARP sender /24 prefix (bytes 28..30) from word 3.
func arpSndV() Expr { return shr(shl(w(3), lit(8)), lit(40)) }

// arpTgtV is the ARP target /24 prefix (bytes 38..40), straddling
// words 4 and 5.
func arpTgtV() Expr {
	return bor(shr(w(4), lit(48)), shl(band(w(5), lit(255)), lit(16)))
}

// pairCheck accepts when (src=a ∧ dst=b) ∨ (src=b ∧ dst=a), with each
// operand expression re-evaluated per use, as a non-optimizing
// compiler leaves it.
func pairCheck(src, dst func() Expr, a, b uint64) []Stmt {
	return []Stmt{
		If{Cond: eq(src(), lit(a)),
			Then: []Stmt{Ret{eq(dst(), lit(b))}},
			Else: []Stmt{
				If{Cond: eq(src(), lit(b)),
					Then: []Stmt{Ret{eq(dst(), lit(a))}},
					Else: []Stmt{Ret{lit(0)}},
				},
			}},
	}
}

// Prog returns the filter in the given dialect.
func Prog(f filters.Filter, d Dialect) *Func {
	if d == Plain {
		return plainProg(f)
	}
	return viewProg(f)
}

func plainProg(f filters.Filter) *Func {
	switch f {
	case filters.Filter1:
		return &Func{Body: []Stmt{Ret{eq(be16p(12), lit(ipBE))}}}
	case filters.Filter2:
		return &Func{Body: []Stmt{
			If{Cond: eq(be16p(12), lit(ipBE)),
				Then: []Stmt{Ret{eq(net24p(lit(26)), lit(netABE))}},
				Else: []Stmt{Ret{lit(0)}}},
		}}
	case filters.Filter3:
		ipSrc := func() Expr { return net24p(lit(26)) }
		ipDst := func() Expr { return net24p(lit(30)) }
		arpSnd := func() Expr { return net24p(lit(28)) }
		arpTgt := func() Expr { return net24p(lit(38)) }
		return &Func{Body: []Stmt{
			If{Cond: eq(be16p(12), lit(ipBE)),
				Then: pairCheck(ipSrc, ipDst, netABE, netBBE),
				Else: []Stmt{
					If{Cond: eq(be16p(12), lit(arpBE)),
						Then: pairCheck(arpSnd, arpTgt, netABE, netBBE),
						Else: []Stmt{Ret{lit(0)}}},
				}},
		}}
	case filters.Filter4:
		// Destination-port offset, recomputed where used.
		portOff := func() Expr {
			return add(shl(band(b(lit(14)), lit(15)), lit(2)), lit(16))
		}
		port := bor(shl(b(portOff()), lit(8)), b(add(portOff(), lit(1))))
		return &Func{Body: []Stmt{
			If{Cond: eq(be16p(12), lit(ipBE)),
				Then: []Stmt{
					If{Cond: eq(b(lit(23)), lit(tcpProto)),
						Then: []Stmt{Ret{eq(port, lit(filterPort))}},
						Else: []Stmt{Ret{lit(0)}}},
				},
				Else: []Stmt{Ret{lit(0)}}},
		}}
	}
	panic("m3: unknown filter")
}

func viewProg(f filters.Filter) *Func {
	switch f {
	case filters.Filter1:
		return &Func{Body: []Stmt{Ret{eq(le16v(12), lit(ipLE))}}}
	case filters.Filter2:
		return &Func{Body: []Stmt{
			If{Cond: eq(le16v(12), lit(ipLE)),
				Then: []Stmt{Ret{eq(srcNetV(), lit(netALE))}},
				Else: []Stmt{Ret{lit(0)}}},
		}}
	case filters.Filter3:
		return &Func{Body: []Stmt{
			If{Cond: eq(le16v(12), lit(ipLE)),
				Then: pairCheck(srcNetV, dstNetV, netALE, netBLE),
				Else: []Stmt{
					If{Cond: eq(le16v(12), lit(arpLE)),
						Then: pairCheck(arpSndV, arpTgtV, netALE, netBLE),
						Else: []Stmt{Ret{lit(0)}}},
				}},
		}}
	case filters.Filter4:
		// t = 4*IHL + 16, recomputed per use; the port is extracted
		// from word t>>3 at bit offset 8*(t&7).
		t := func() Expr {
			return add(shl(band(shr(w(1), lit(48)), lit(15)), lit(2)), lit(16))
		}
		port := low16(shr(WordAt{shr(t(), lit(3))}, shl(band(t(), lit(7)), lit(3))))
		return &Func{Body: []Stmt{
			If{Cond: eq(le16v(12), lit(ipLE)),
				Then: []Stmt{
					If{Cond: eq(shr(w(2), lit(56)), lit(tcpProto)),
						Then: []Stmt{Ret{eq(port, lit(portLE))}},
						Else: []Stmt{Ret{lit(0)}}},
				},
				Else: []Stmt{Ret{lit(0)}}},
		}}
	}
	panic("m3: unknown filter")
}
