// Unit tests for the journal framing and crash-consistency contract:
// round trips, torn-tail tolerance, checksum classification, duplicate
// and reorder rejection, crash-safe compaction, and the Close/Append
// ordering guarantee.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Append(KindInstall, "alice", []byte("binary-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindInstall, "bob", []byte("binary-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindUninstall, "alice", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindRetrofit, "backend", []byte("compiled")); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || len(rep.Skipped) != 0 || rep.TornTail != nil {
		t.Fatalf("replay: %d records, %d skips, torn=%v", len(recs), len(rep.Skipped), rep.TornTail)
	}
	want := []Record{
		{KindInstall, 1, "alice", []byte("binary-a")},
		{KindInstall, 2, "bob", []byte("binary-b")},
		{KindUninstall, 3, "alice", nil},
		{KindRetrofit, 4, "backend", []byte("compiled")},
	}
	for i, w := range want {
		g := recs[i]
		if g.Kind != w.Kind || g.Seq != w.Seq || g.Owner != w.Owner || !bytes.Equal(g.Binary, w.Binary) {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

// TestReopenContinuesSequence reopens a store and checks appends
// continue the sequence instead of reusing numbers (reuse would make
// replay's duplicate detection drop real records).
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := s.Append(KindInstall, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	seq, err := s2.Append(KindInstall, "b", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("reopened append got seq %d, want 2", seq)
	}
}

// TestTornTail simulates a crash mid-append: a journal ending in a
// partial frame must replay everything before the tear, report it, and
// accept appends after reopen.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("aaaa"))
	s.Append(KindInstall, "b", []byte("bbbb"))
	s.Close()

	jpath := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(jpath)
	full := len(data)
	// Append half of another frame.
	frame := FrameRecord(Record{Kind: KindInstall, Seq: 3, Owner: "c", Binary: []byte("cccc")})
	if err := os.WriteFile(jpath, append(data, frame[:len(frame)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, rep := ReplayDir(dir)
	if len(recs) != 2 {
		t.Fatalf("replay after tear: %d records, want 2", len(recs))
	}
	if rep.TornTail == nil {
		t.Fatal("torn tail not reported")
	}

	// Reopen truncates the tear; the file is frame-aligned again and
	// appends take the next unused seq.
	s2 := openT(t, dir)
	st, _ := os.Stat(jpath)
	if st.Size() != int64(full) {
		t.Fatalf("reopen left %d bytes, want %d", st.Size(), full)
	}
	seq, err := s2.Append(KindInstall, "c", []byte("cccc"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-tear append got seq %d, want 3", seq)
	}
}

// TestCorruptRecordSkipped flips a payload byte WITHOUT fixing the
// checksum: replay must classify the frame as corrupt, skip it, and
// keep the records around it.
func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("aaaa"))
	s.Append(KindInstall, "b", []byte("bbbb"))
	s.Append(KindInstall, "c", []byte("cccc"))
	s.Close()

	jpath := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(jpath)
	frames, _, err := ScanJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	data[frames[1].PayloadOff+3] ^= 0xFF
	os.WriteFile(jpath, data, 0o644)

	recs, rep := ReplayDir(dir)
	if len(recs) != 2 || recs[0].Owner != "a" || recs[1].Owner != "c" {
		t.Fatalf("replay around corruption: %+v", recs)
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skips: %v", rep.Skipped)
	}
	var ce *CorruptRecordError
	if !errors.As(rep.Skipped[0], &ce) {
		t.Fatalf("skip is %T, want *CorruptRecordError", rep.Skipped[0])
	}
}

// TestDuplicateAndReorderSkipped splices a copied frame and a swapped
// pair into the journal; strict sequence ordering must drop the
// duplicate and the displaced earlier record.
func TestDuplicateAndReorderSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("aaaa"))
	s.Append(KindInstall, "b", []byte("bbbb"))
	s.Close()

	jpath := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(jpath)
	frames, _, _ := ScanJournal(data)
	dup := append([]byte(nil), data[frames[0].Off:frames[0].End]...)
	os.WriteFile(jpath, append(data, dup...), 0o644)

	recs, rep := ReplayDir(dir)
	if len(recs) != 2 {
		t.Fatalf("replay with duplicate: %d records, want 2", len(recs))
	}
	var oe *OutOfOrderError
	if len(rep.Skipped) != 1 || !errors.As(rep.Skipped[0], &oe) {
		t.Fatalf("skips: %v", rep.Skipped)
	}

	// Swap the two frames: seq 2 then seq 1 — the displaced seq-1 frame
	// is dropped, seq 2 survives.
	swapped := append([]byte(nil), data[:frames[0].Off]...)
	swapped = append(swapped, data[frames[1].Off:frames[1].End]...)
	swapped = append(swapped, data[frames[0].Off:frames[0].End]...)
	os.WriteFile(jpath, swapped, 0o644)
	recs, rep = ReplayDir(dir)
	if len(recs) != 1 || recs[0].Owner != "b" {
		t.Fatalf("replay with reorder: %+v", recs)
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skips: %v", rep.Skipped)
	}
}

// TestCompaction folds installs/uninstalls into a snapshot and checks
// the replayed state is unchanged, including after more appends.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("a1"))
	s.Append(KindInstall, "b", []byte("b1"))
	s.Append(KindInstall, "a", []byte("a2")) // supersedes a1
	s.Append(KindUninstall, "b", nil)
	s.Append(KindRetrofit, "backend", []byte("compiled"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotRecords != 2 || rep.JournalRecords != 0 {
		t.Fatalf("post-compact replay: %+v", rep)
	}
	if len(recs) != 2 || recs[0].Owner != "a" || string(recs[0].Binary) != "a2" ||
		recs[1].Owner != "backend" {
		t.Fatalf("compacted state: %+v", recs)
	}
	// New appends after compaction continue the sequence and replay on
	// top of the snapshot.
	if _, err := s.Append(KindInstall, "c", []byte("c1")); err != nil {
		t.Fatal(err)
	}
	recs, _, _ = s.Replay()
	if len(recs) != 3 || recs[2].Owner != "c" {
		t.Fatalf("replay after post-compact append: %+v", recs)
	}
}

// TestCrashBetweenSnapshotAndTruncate models the one crash window
// inside Compact: snapshot renamed, journal not yet truncated. The
// stale journal frames (seq <= BaseSeq) must be deduped, not replayed
// twice.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("a1"))
	s.Append(KindInstall, "b", []byte("b1"))
	s.Close()
	jpath := filepath.Join(dir, JournalName)
	preCompact, _ := os.ReadFile(jpath)

	s2 := openT(t, dir)
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	// "Crash": the old journal contents come back.
	os.WriteFile(jpath, preCompact, 0o644)

	recs, rep := ReplayDir(dir)
	if len(recs) != 2 {
		t.Fatalf("replay after simulated crash: %+v", recs)
	}
	if rep.Stale != 2 {
		t.Fatalf("stale count %d, want 2", rep.Stale)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("skips: %v", rep.Skipped)
	}
}

// TestCloseOrdering pins the shutdown guarantee: Append after Close
// fails with ErrClosed (so the caller cannot ack it), and everything
// appended before Close replays.
func TestCloseOrdering(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindInstall, "a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(KindInstall, "b", []byte("bbbb")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	recs, _ := ReplayDir(dir)
	if len(recs) != 1 || recs[0].Owner != "a" {
		t.Fatalf("replay: %+v", recs)
	}
}

// TestAutoCompact checks the CompactEvery threshold folds the journal
// in the background of Append.
func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Append(KindInstall, "a", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("auto-compact did not write a snapshot: %v", err)
	}
	recs, rep, _ := s.Replay()
	if len(recs) != 1 || recs[0].Binary[0] != 3 {
		t.Fatalf("state after auto-compact: %+v (report %+v)", recs, rep)
	}
}

// TestTamperBinaryByte checks the fault-injection helper produces a
// journal that still frames cleanly (checksum forged) but whose
// binary differs by exactly one bit.
func TestTamperBinaryByte(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	orig := []byte("the proof bytes live at the end")
	s.Append(KindInstall, "victim", orig)
	s.Close()

	owner, err := TamperBinaryByte(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "victim" {
		t.Fatalf("tampered owner %q", owner)
	}
	recs, rep := ReplayDir(dir)
	if len(rep.Skipped) != 0 {
		t.Fatalf("tampered frame did not pass framing: %v", rep.Skipped)
	}
	if len(recs) != 1 {
		t.Fatalf("records: %+v", recs)
	}
	if bytes.Equal(recs[0].Binary, orig) {
		t.Fatal("binary unchanged")
	}
	diff := 0
	for i := range orig {
		diff += popcount(orig[i] ^ recs[0].Binary[i])
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestOpenHealsPartialHeader: a crash during the very first header
// write leaves a file shorter than the magic. Open must reset it to a
// real header — NOT extend it with zero bytes into a corrupt magic
// that fails every later Open — and the store must work normally from
// there.
func TestOpenHealsPartialHeader(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, JournalName)
	if err := os.WriteFile(jpath, journalMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir)
	data, _ := os.ReadFile(jpath)
	if len(data) != len(journalMagic) || [8]byte(data[:8]) != journalMagic {
		t.Fatalf("header not healed: % x", data)
	}
	if _, err := s.Append(KindInstall, "a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	recs, rep, err := s2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Owner != "a" || len(rep.Skipped) != 0 {
		t.Fatalf("replay after heal: %+v (report %+v)", recs, rep)
	}
}

// TestOpenRepairsRottenMagic: a bit flip inside the 8-byte header must
// not cost a single acked record — frames still start at byte 8 and
// their checksums vouch for alignment, so Open rewrites the header in
// place and everything replays. The read-only ReplayDir view must
// agree (salvaging the frames, reporting the header as a skip).
func TestOpenRepairsRottenMagic(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("aaaa"))
	s.Append(KindInstall, "b", []byte("bbbb"))
	s.Close()
	jpath := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(jpath)
	data[2] ^= 0x40
	os.WriteFile(jpath, data, 0o644)

	// Read-only salvage, before any Open heals the file on disk.
	recs, rep := ReplayDir(dir)
	if len(recs) != 2 || recs[0].Owner != "a" || recs[1].Owner != "b" {
		t.Fatalf("ReplayDir salvage: %+v", recs)
	}
	if len(rep.Skipped) != 1 {
		t.Fatalf("skips: %v", rep.Skipped)
	}

	s2 := openT(t, dir)
	healed, _ := os.ReadFile(jpath)
	if [8]byte(healed[:8]) != journalMagic {
		t.Fatalf("header not repaired: % x", healed[:8])
	}
	recs2, rep2, err := s2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 2 || len(rep2.Skipped) != 0 {
		t.Fatalf("replay after repair: %+v (report %+v)", recs2, rep2)
	}
	if seq, err := s2.Append(KindInstall, "c", []byte("cccc")); err != nil || seq != 3 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
}

// TestOpenResetsForeignJournal: wrong magic and nothing decodable
// behind it — there is no acked state to lose, so Open preserves the
// bytes aside and starts a fresh journal rather than failing every
// boot forever.
func TestOpenResetsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, JournalName)
	garbage := append([]byte("NOTMAGIC"), bytes.Repeat([]byte{0xA5}, 40)...)
	if err := os.WriteFile(jpath, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir)
	if _, err := s.Append(KindInstall, "a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Owner != "a" {
		t.Fatalf("replay after reset: %+v (report %+v)", recs, rep)
	}
	if side, rerr := os.ReadFile(jpath + ".bad"); rerr != nil || !bytes.Equal(side, garbage) {
		t.Fatalf("damaged journal not preserved aside: %v", rerr)
	}
}

// TestScanJournalBadMagic: a journal with a foreign header is rejected
// outright rather than scanned for frames.
func TestScanJournalBadMagic(t *testing.T) {
	data := append([]byte("NOTMAGIC"), FrameRecord(Record{Kind: KindInstall, Seq: 1, Owner: "a"})...)
	if _, _, err := ScanJournal(data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestAbsurdLengthIsTear: a frame declaring a multi-gigabyte length
// stops the scan (torn) instead of allocating.
func TestAbsurdLengthIsTear(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Append(KindInstall, "a", []byte("aaaa"))
	s.Close()
	jpath := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(jpath)
	bad := make([]byte, 8)
	binary.LittleEndian.PutUint32(bad[0:4], 0xFFFFFFF0)
	os.WriteFile(jpath, append(data, bad...), 0o644)
	recs, rep := ReplayDir(dir)
	if len(recs) != 1 || rep.TornTail == nil {
		t.Fatalf("recs=%d torn=%v", len(recs), rep.TornTail)
	}
}
