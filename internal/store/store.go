// Package store is the kernel's crash-consistent filter store: an
// append-only, checksummed write-ahead journal of install/uninstall/
// retrofit records, periodically compacted into a snapshot file.
//
// The durability contract mirrors the paper's trust argument. The
// journal makes an install *durable* — Append returns only after the
// record is framed, written, and fsynced, so a kernel that acks an
// install after Append can never lose it to a crash — but it does NOT
// make the record *trusted*. Disk is an untrusted producer exactly
// like the network peer that shipped the binary in the first place: on
// recovery every blob replayed from here goes back through the full
// validation pipeline (parse, VCGen, LF proof check), and a bit-rotted
// or tampered proof dies in the checker, not in a checksum comparison.
// The CRCs below exist to classify corruption (and to keep a torn tail
// from desynchronizing the frame stream), never to vouch for content.
//
// On-disk layout, one directory per kernel:
//
//	journal.pccj   8-byte magic, then frames
//	snapshot.pccs  8-byte magic, 8-byte little-endian BaseSeq, then frames
//
// Each frame is [uint32 length][uint32 CRC32-Castagnoli][payload],
// both little-endian, where payload is:
//
//	version byte (1) | kind byte | seq uvarint |
//	owner length uvarint | owner bytes |
//	binary length uvarint | binary bytes
//
// Sequence numbers are assigned monotonically by Append and enforced
// strictly increasing on replay, so a duplicated or reordered frame
// (hostile splice, partial copy) is skipped with a typed error rather
// than replayed twice. A snapshot's BaseSeq records the highest
// sequence folded into it; journal frames at or below BaseSeq are
// stale leftovers of a crash between snapshot rename and journal
// truncation and are skipped the same way.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Kind classifies one journal record.
type Kind byte

const (
	// KindInstall records a validated filter install: owner + the exact
	// PCC binary (code and proof) that was accepted.
	KindInstall Kind = 1
	// KindUninstall records a filter removal; the binary field is empty.
	KindUninstall Kind = 2
	// KindRetrofit records a kernel-wide configuration retrofit (today:
	// the execution backend); owner names the setting, binary its value.
	KindRetrofit Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindInstall:
		return "install"
	case KindUninstall:
		return "uninstall"
	case KindRetrofit:
		return "retrofit"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Record is one journal entry.
type Record struct {
	Kind   Kind
	Seq    uint64
	Owner  string
	Binary []byte
}

// File names inside a store directory.
const (
	JournalName  = "journal.pccj"
	SnapshotName = "snapshot.pccs"
)

var (
	journalMagic  = [8]byte{'P', 'C', 'C', 'J', 'R', 'N', 'L', '1'}
	snapshotMagic = [8]byte{'P', 'C', 'C', 'S', 'N', 'A', 'P', '1'}
)

const (
	recordVersion = 1
	frameHeader   = 8 // uint32 length + uint32 CRC
	// maxRecordBytes bounds a single frame so a corrupt length field
	// cannot make replay attempt a multi-gigabyte allocation.
	maxRecordBytes = 64 << 20
)

// castagnoli is the CRC32-C table shared by framing and tooling.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the frame checksum over a payload (CRC32-Castagnoli).
// Exported for fault-injection tooling that must forge frames which
// pass framing and die in validation instead.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// ErrClosed reports an operation on a closed store. An Append that
// fails with ErrClosed was never made durable: the caller must not ack
// the install.
var ErrClosed = errors.New("store: closed")

// CorruptRecordError reports a frame whose checksum or payload
// encoding failed; replay skips the frame and continues at the next.
type CorruptRecordError struct {
	File   string
	Offset int64
	Reason string
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("store: corrupt record in %s at offset %d: %s", e.File, e.Offset, e.Reason)
}

// TornTailError reports an incomplete final frame — the expected
// remnant of a crash mid-append. Everything before it replays; nothing
// after it is trusted to be frame-aligned.
type TornTailError struct {
	File   string
	Offset int64
}

func (e *TornTailError) Error() string {
	return fmt.Sprintf("store: torn tail in %s at offset %d", e.File, e.Offset)
}

// OutOfOrderError reports a frame whose sequence number does not
// strictly increase — a duplicated or reordered record; replay skips
// it.
type OutOfOrderError struct {
	File   string
	Offset int64
	Seq    uint64
	After  uint64
}

func (e *OutOfOrderError) Error() string {
	return fmt.Sprintf("store: out-of-order record in %s at offset %d: seq %d after %d",
		e.File, e.Offset, e.Seq, e.After)
}

// Options tunes a store.
type Options struct {
	// NoSync skips the fsync on every Append and Compact. Only for
	// benchmarks and tests that simulate crashes by byte surgery; a
	// production kernel must keep syncing on, or an acked install can
	// die with the page cache.
	NoSync bool
	// CompactEvery triggers automatic compaction once the journal holds
	// that many records beyond the snapshot; 0 means never (callers
	// compact explicitly).
	CompactEvery int
}

// Store is an open filter store. All methods are safe for concurrent
// use; Append and Close serialize on one mutex, which is what gives
// the shutdown ordering its guarantee — a Close cannot interleave with
// an Append, so every Append that returned nil before Close was fully
// framed and synced.
type Store struct {
	mu      sync.Mutex
	dir     string
	opt     Options
	journal *os.File
	nextSeq uint64
	// live counts journal records past the snapshot, for CompactEvery.
	live   int
	closed bool
}

// Open opens (creating if necessary) the store in dir. A torn final
// frame in the journal — the signature of a crash mid-append — is
// truncated away so new appends extend a frame-aligned file; interior
// corruption is left in place for Replay to classify. The 8-byte
// header gets the same tolerance as any frame: a file cut inside the
// magic (a crash during the very first write) or a header-only bit
// flip is healed — rewritten in place when decodable frames follow,
// reset to a bare magic when nothing decodable remains — never a
// permanent boot failure.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	jpath := filepath.Join(dir, JournalName)
	f, err := os.OpenFile(jpath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat journal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(journalMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: init journal: %w", err)
		}
		if !opt.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: init journal: %w", err)
			}
		}
	}
	// Establish the next sequence number and the append position from
	// what is actually on disk: the snapshot's base plus every decodable
	// journal frame, corrupt or stale ones included (their seqs still
	// reserve the number space).
	base, snapRecs, _ := readSnapshot(dir)
	maxSeq := base
	for _, r := range snapRecs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read journal: %w", err)
	}
	var frames []Frame
	var torn bool
	switch {
	case len(data) < len(journalMagic):
		// A crash during the very first header write left a short file.
		// Truncating UP to the magic length would extend it with zero
		// bytes — a corrupt header that fails every later Open — and a
		// partial magic cannot be hiding any frames, so reset to a bare,
		// freshly written header instead.
		if err := resetJournalHeader(f, dir, nil, opt); err != nil {
			f.Close()
			return nil, err
		}
	case [8]byte(data[:8]) != journalMagic:
		// The header itself rotted. Frames still start at byte 8
		// regardless of what the magic says, so if checksummed,
		// decodable records follow, only the header is damaged: repair
		// it in place and keep every acked record — the skip-and-continue
		// policy applied to the journal's own header. A file with a
		// foreign header AND nothing decodable behind it holds no acked
		// state to lose; preserve it aside and start fresh.
		if fr, tr, ok := salvageFrames(data); ok {
			if _, err := f.WriteAt(journalMagic[:], 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: repair journal header: %w", err)
			}
			if !opt.NoSync {
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, fmt.Errorf("store: repair journal header: %w", err)
				}
			}
			frames, torn = fr, tr
		} else if err := resetJournalHeader(f, dir, data, opt); err != nil {
			f.Close()
			return nil, err
		}
	default:
		frames, torn = scanFrames(data, len(journalMagic))
	}
	live := 0
	end := int64(len(journalMagic))
	for _, fr := range frames {
		end = int64(fr.End)
		if rec, err := DecodePayload(fr.Payload); err == nil {
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
			if rec.Seq > base {
				live++
			}
		}
	}
	if torn {
		// Drop the torn tail so the next append starts at a frame
		// boundary instead of extending garbage.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek journal: %w", err)
	}
	s.journal = f
	s.nextSeq = maxSeq + 1
	s.live = live
	return s, nil
}

// resetJournalHeader rewrites the journal as a bare magic header. Runs
// only when the header region is damaged and no decodable frame
// follows, so no acked record is lost. A non-empty prior image is
// preserved as journal.pccj.bad for forensics (best-effort — the side
// copy is diagnostics, not durability).
func resetJournalHeader(f *os.File, dir string, data []byte, opt Options) error {
	if len(data) > 0 {
		_ = os.WriteFile(filepath.Join(dir, JournalName+".bad"), data, 0o644)
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset journal header: %w", err)
	}
	if _, err := f.WriteAt(journalMagic[:], 0); err != nil {
		return fmt.Errorf("store: reset journal header: %w", err)
	}
	if !opt.NoSync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: reset journal header: %w", err)
		}
	}
	return nil
}

// salvageFrames scans frames past a damaged journal header. ok reports
// whether at least one checksummed, decodable record was found — the
// evidence that the bytes really are our journal with a rotted magic
// (frame alignment after the fixed-width header does not depend on the
// header's content) rather than some unrelated file.
func salvageFrames(data []byte) (frames []Frame, torn bool, ok bool) {
	if len(data) < len(journalMagic) {
		return nil, false, false
	}
	frames, torn = scanFrames(data, len(journalMagic))
	for _, fr := range frames {
		if !fr.CRCOK {
			continue
		}
		if _, err := DecodePayload(fr.Payload); err == nil {
			return frames, torn, true
		}
	}
	return nil, false, false
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Append frames, writes, and fsyncs one record, assigning its sequence
// number. It returns only after the record is durable (unless the
// store was opened NoSync); a nil error is the caller's license to ack
// the operation. A CompactEvery threshold may fold the journal into
// the snapshot on the way out; compaction failure is not an append
// failure (the record is already durable).
func (s *Store) Append(kind Kind, owner string, binary []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	seq := s.nextSeq
	rec := Record{Kind: kind, Seq: seq, Owner: owner, Binary: binary}
	if _, err := s.journal.Write(FrameRecord(rec)); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	if !s.opt.NoSync {
		if err := s.journal.Sync(); err != nil {
			return 0, fmt.Errorf("store: append sync: %w", err)
		}
	}
	s.nextSeq++
	s.live++
	if s.opt.CompactEvery > 0 && s.live >= s.opt.CompactEvery {
		s.compactLocked() // best-effort; the append above is already durable
	}
	return seq, nil
}

// Compact folds the snapshot and journal into a fresh snapshot holding
// only the live state (last install per owner not later uninstalled,
// last retrofit per setting) and truncates the journal. Crash-safe:
// the snapshot is written to a temp file, synced, and renamed before
// the journal is touched, and BaseSeq dedupe makes a journal that
// survives a crash after the rename harmless.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	recs, rep := replayDir(s.dir)
	_ = rep // corruption is skipped here exactly as recovery would skip it
	liveRecs := foldLive(recs)
	var base uint64
	for _, r := range recs {
		if r.Seq > base {
			base = r.Seq
		}
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	tmpName := tmp.Name()
	var buf []byte
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, base)
	for _, r := range liveRecs {
		buf = append(buf, FrameRecord(r)...)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: compact write: %w", err)
	}
	if !s.opt.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return fmt.Errorf("store: compact sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, SnapshotName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	if !s.opt.NoSync {
		if d, err := os.Open(s.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	// The snapshot is durable; the journal's records are now stale
	// (seq <= BaseSeq). Truncate back to the bare magic.
	if err := s.journal.Truncate(int64(len(journalMagic))); err != nil {
		return fmt.Errorf("store: compact truncate: %w", err)
	}
	if _, err := s.journal.Seek(0, 2); err != nil {
		return fmt.Errorf("store: compact seek: %w", err)
	}
	if !s.opt.NoSync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	s.live = 0
	return nil
}

// foldLive reduces a replayed record stream to the state a recovery
// would re-install: the last install per owner not followed by an
// uninstall, plus the last retrofit per setting, ordered by sequence.
func foldLive(recs []Record) []Record {
	installs := map[string]Record{}
	retrofits := map[string]Record{}
	for _, r := range recs {
		switch r.Kind {
		case KindInstall:
			installs[r.Owner] = r
		case KindUninstall:
			delete(installs, r.Owner)
		case KindRetrofit:
			retrofits[r.Owner] = r
		}
	}
	out := make([]Record, 0, len(installs)+len(retrofits))
	for _, r := range installs {
		out = append(out, r)
	}
	for _, r := range retrofits {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ReplayReport classifies what Replay skipped. Every skip carries its
// typed error so recovery can audit each one individually.
type ReplayReport struct {
	// SnapshotRecords and JournalRecords count the frames decoded and
	// delivered from each file.
	SnapshotRecords int
	JournalRecords  int
	// Skipped holds one typed error (*CorruptRecordError,
	// *OutOfOrderError) per skipped frame, in file order.
	Skipped []error
	// TornTail is non-nil when a file ended mid-frame; replay of that
	// file stopped there.
	TornTail *TornTailError
	// Stale counts journal frames at or below the snapshot's BaseSeq —
	// the benign leftovers of a crash between snapshot rename and
	// journal truncation.
	Stale int
}

// Replay reads the snapshot (if any) then the journal, returning every
// decodable record in sequence order along with a report of what was
// skipped and why. Replay never fails on content: corruption is
// classified and skipped, and the caller re-validates every returned
// binary anyway.
func (s *Store) Replay() ([]Record, *ReplayReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	recs, rep := replayDir(s.dir)
	return recs, rep, nil
}

// ReplayDir replays a store directory without opening it for appends —
// the read-only view recovery tooling and fault-injection harnesses
// use.
func ReplayDir(dir string) ([]Record, *ReplayReport) { return replayDir(dir) }

func replayDir(dir string) ([]Record, *ReplayReport) {
	rep := &ReplayReport{}
	var out []Record
	base, snapRecs, snapRep := readSnapshot(dir)
	rep.SnapshotRecords = len(snapRecs)
	rep.Skipped = append(rep.Skipped, snapRep.Skipped...)
	if snapRep.TornTail != nil {
		rep.TornTail = snapRep.TornTail
	}
	out = append(out, snapRecs...)

	data, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		return out, rep
	}
	frames, torn, err := ScanJournal(data)
	if err != nil {
		// Damaged header. Open repairs it (or resets an unrecognizable
		// file); mirror its salvage here so the read-only view agrees:
		// checksummed, decodable frames after the header still replay,
		// and the header damage itself is reported as a skip.
		rep.Skipped = append(rep.Skipped,
			&CorruptRecordError{File: JournalName, Offset: 0, Reason: err.Error()})
		fr, tr, ok := salvageFrames(data)
		if !ok {
			return out, rep
		}
		frames, torn = fr, tr
	}
	last := base
	for _, r := range snapRecs {
		if r.Seq > last {
			last = r.Seq
		}
	}
	for _, fr := range frames {
		if !fr.CRCOK {
			rep.Skipped = append(rep.Skipped,
				&CorruptRecordError{File: JournalName, Offset: int64(fr.Off), Reason: "checksum mismatch"})
			continue
		}
		rec, err := DecodePayload(fr.Payload)
		if err != nil {
			rep.Skipped = append(rep.Skipped,
				&CorruptRecordError{File: JournalName, Offset: int64(fr.Off), Reason: err.Error()})
			continue
		}
		if rec.Seq <= base {
			rep.Stale++
			continue
		}
		if rec.Seq <= last {
			rep.Skipped = append(rep.Skipped,
				&OutOfOrderError{File: JournalName, Offset: int64(fr.Off), Seq: rec.Seq, After: last})
			continue
		}
		last = rec.Seq
		rep.JournalRecords++
		out = append(out, rec)
	}
	if torn {
		off := int64(len(journalMagic))
		if n := len(frames); n > 0 {
			off = int64(frames[n-1].End)
		}
		rep.TornTail = &TornTailError{File: JournalName, Offset: off}
	}
	return out, rep
}

// readSnapshot decodes the snapshot file; a missing or unreadable
// snapshot is an empty base (the journal alone is authoritative).
func readSnapshot(dir string) (base uint64, recs []Record, rep ReplayReport) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotName))
	if err != nil {
		return 0, nil, rep
	}
	if len(data) < len(snapshotMagic)+8 || [8]byte(data[:8]) != snapshotMagic {
		rep.Skipped = append(rep.Skipped,
			&CorruptRecordError{File: SnapshotName, Offset: 0, Reason: "bad magic or truncated header"})
		return 0, nil, rep
	}
	base = binary.LittleEndian.Uint64(data[8:16])
	frames, torn := scanFrames(data, 16)
	var last uint64
	for _, fr := range frames {
		if !fr.CRCOK {
			rep.Skipped = append(rep.Skipped,
				&CorruptRecordError{File: SnapshotName, Offset: int64(fr.Off), Reason: "checksum mismatch"})
			continue
		}
		rec, err := DecodePayload(fr.Payload)
		if err != nil {
			rep.Skipped = append(rep.Skipped,
				&CorruptRecordError{File: SnapshotName, Offset: int64(fr.Off), Reason: err.Error()})
			continue
		}
		if rec.Seq <= last {
			rep.Skipped = append(rep.Skipped,
				&OutOfOrderError{File: SnapshotName, Offset: int64(fr.Off), Seq: rec.Seq, After: last})
			continue
		}
		last = rec.Seq
		recs = append(recs, rec)
	}
	if torn {
		off := int64(16)
		if n := len(frames); n > 0 {
			off = int64(frames[n-1].End)
		}
		rep.TornTail = &TornTailError{File: SnapshotName, Offset: off}
	}
	return base, recs, rep
}

// Close fsyncs and closes the journal. Because Close and Append share
// the store mutex, Close serializes strictly after every in-flight
// Append: an install acked before Close began is on disk, and an
// Append arriving after Close fails with ErrClosed (so it is never
// acked).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var serr error
	if !s.opt.NoSync {
		serr = s.journal.Sync()
	}
	cerr := s.journal.Close()
	if serr != nil {
		return fmt.Errorf("store: close sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: close: %w", cerr)
	}
	return nil
}

// --- framing -------------------------------------------------------

// EncodePayload encodes one record's frame payload.
func EncodePayload(r Record) []byte {
	buf := make([]byte, 0, 2+binary.MaxVarintLen64*3+len(r.Owner)+len(r.Binary))
	buf = append(buf, recordVersion, byte(r.Kind))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(r.Owner)))
	buf = append(buf, r.Owner...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Binary)))
	buf = append(buf, r.Binary...)
	return buf
}

// DecodePayload decodes a frame payload back into a record.
func DecodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 2 {
		return r, errors.New("short payload")
	}
	if p[0] != recordVersion {
		return r, fmt.Errorf("unknown record version %d", p[0])
	}
	r.Kind = Kind(p[1])
	if r.Kind != KindInstall && r.Kind != KindUninstall && r.Kind != KindRetrofit {
		return r, fmt.Errorf("unknown record kind %d", p[1])
	}
	p = p[2:]
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return r, errors.New("bad seq varint")
	}
	r.Seq = seq
	p = p[n:]
	olen, n := binary.Uvarint(p)
	if n <= 0 || olen > uint64(len(p)-n) {
		return r, errors.New("bad owner length")
	}
	p = p[n:]
	r.Owner = string(p[:olen])
	p = p[olen:]
	blen, n := binary.Uvarint(p)
	if n <= 0 || blen != uint64(len(p)-n) {
		return r, errors.New("bad binary length")
	}
	r.Binary = append([]byte(nil), p[n:]...)
	return r, nil
}

// FrameRecord encodes one record as a complete frame (header +
// payload), ready to append to a journal.
func FrameRecord(r Record) []byte {
	payload := EncodePayload(r)
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], Checksum(payload))
	return append(buf, payload...)
}

// Frame locates one frame inside a raw journal or snapshot image:
// byte offsets of the frame and its payload view, plus the checksum
// verdict. Exported for the fault-injection harness, which mutates
// journals at the byte level.
type Frame struct {
	Off        int // frame start (length field)
	PayloadOff int
	End        int // one past the frame's last byte
	Payload    []byte
	CRCOK      bool
}

// ScanJournal parses a raw journal image (including its magic header)
// into frames. torn reports an incomplete final frame. An image whose
// magic is wrong fails — nothing after an unrecognized header can be
// trusted to be frame-aligned.
func ScanJournal(data []byte) (frames []Frame, torn bool, err error) {
	if len(data) < len(journalMagic) {
		return nil, true, nil
	}
	if [8]byte(data[:8]) != journalMagic {
		return nil, false, errors.New("store: bad journal magic")
	}
	frames, torn = scanFrames(data, len(journalMagic))
	return frames, torn, nil
}

// scanFrames walks frames from off to the end of data. It stops (torn)
// at a frame whose header or payload runs past the buffer or whose
// declared length is implausible — beyond that point frame alignment
// is unrecoverable.
func scanFrames(data []byte, off int) (frames []Frame, torn bool) {
	for off < len(data) {
		if len(data)-off < frameHeader {
			return frames, true
		}
		ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if ln <= 0 || ln > maxRecordBytes || off+frameHeader+ln > len(data) {
			return frames, true
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeader : off+frameHeader+ln]
		frames = append(frames, Frame{
			Off:        off,
			PayloadOff: off + frameHeader,
			End:        off + frameHeader + ln,
			Payload:    payload,
			CRCOK:      Checksum(payload) == want,
		})
		off += frameHeader + ln
	}
	return frames, false
}

// TamperBinaryByte flips one bit of the stored binary inside the
// index-th decodable journal frame and recomputes the frame checksum,
// then rewrites the journal in place. The result passes framing — the
// corruption is only detectable by re-validating the proof, which is
// the point: it models a hostile or bit-rotted disk whose controller
// happily re-frames what it serves. at is an offset from the END of
// the binary (0 = last byte, deep in the proof section of a PCC
// binary). Returns the owner whose record was tampered.
func TamperBinaryByte(dir string, index, at int) (string, error) {
	jpath := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		return "", fmt.Errorf("store: tamper: %w", err)
	}
	frames, _, err := ScanJournal(data)
	if err != nil {
		return "", err
	}
	seen := 0
	for _, fr := range frames {
		if !fr.CRCOK {
			continue
		}
		rec, derr := DecodePayload(fr.Payload)
		if derr != nil || rec.Kind != KindInstall || len(rec.Binary) == 0 {
			continue
		}
		if seen != index {
			seen++
			continue
		}
		// The binary occupies the payload's tail; flip a bit at `at`
		// bytes from its end, then forge the checksum over the mutated
		// payload.
		if at < 0 || at >= len(rec.Binary) {
			at = 0
		}
		pos := fr.End - 1 - at
		data[pos] ^= 0x01
		binary.LittleEndian.PutUint32(data[fr.Off+4:fr.Off+8], Checksum(data[fr.PayloadOff:fr.End]))
		if err := os.WriteFile(jpath, data, 0o644); err != nil {
			return "", fmt.Errorf("store: tamper: %w", err)
		}
		return rec.Owner, nil
	}
	return "", fmt.Errorf("store: tamper: no install record at index %d", index)
}
