package filters

import (
	"testing"

	"repro/internal/alpha"
	"repro/internal/bpf"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

func trace(n int) []pktgen.Packet {
	return pktgen.Generate(n, pktgen.Config{Seed: 7})
}

func TestFiltersAssemble(t *testing.T) {
	counts := map[Filter]int{}
	for _, f := range All {
		prog := Prog(f)
		counts[f] = len(prog)
		if err := alpha.Validate(prog); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
	// The paper's counts are 8/15/47/28; ours differ slightly (our
	// assembler has no scheduling constraints) but must stay in the
	// same ballpark and strictly increase F1 -> F3.
	if counts[Filter1] > 10 || counts[Filter2] > 20 || counts[Filter3] > 55 || counts[Filter4] > 35 {
		t.Errorf("instruction counts out of ballpark: %v", counts)
	}
	if !(counts[Filter1] < counts[Filter2] && counts[Filter2] < counts[Filter4]) {
		t.Errorf("unexpected size ordering: %v", counts)
	}
}

func TestBPFProgramsValidate(t *testing.T) {
	for _, f := range All {
		if err := bpf.Validate(BPFProg(f)); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

// TestTrivariantEquivalence is the workhorse: on a 20k-packet trace,
// the PCC Alpha code, the BPF program, and the Go reference must agree
// packet-for-packet for every filter.
func TestTrivariantEquivalence(t *testing.T) {
	pkts := trace(20000)
	env := Env{}
	for _, f := range All {
		prog := Prog(f)
		bprog := BPFProg(f)
		accepts := 0
		for i, p := range pkts {
			want := Reference(f, p.Data)
			ret, _, err := env.Exec(prog, p.Data, machine.Checked)
			if err != nil {
				t.Fatalf("%v pkt %d: %v", f, i, err)
			}
			if (ret != 0) != want {
				t.Fatalf("%v pkt %d (len %d): PCC=%d want %v", f, i, p.Len(), ret, want)
			}
			if got := bpf.Run(bprog, p.Data) != 0; got != want {
				t.Fatalf("%v pkt %d: BPF=%v want %v", f, i, got, want)
			}
			if want {
				accepts++
			}
		}
		if accepts == 0 {
			t.Errorf("%v: filter never accepted on the trace (degenerate workload)", f)
		}
		if accepts == len(pkts) {
			t.Errorf("%v: filter accepted everything", f)
		}
	}
}

func TestFiltersCertify(t *testing.T) {
	pol := policy.PacketFilter()
	for _, f := range All {
		res, err := vcgen.Gen(Prog(f), pol.Pre, pol.Post, nil)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		proof, err := prover.Prove(res.SP)
		if err != nil {
			t.Fatalf("%v: certification failed: %v", f, err)
		}
		if err := prover.Check(proof, res.SP); err != nil {
			t.Fatalf("%v: proof does not check: %v", f, err)
		}
	}
}

func TestFilter4VariableIHL(t *testing.T) {
	// Packets with IP options move the TCP port; both variants must
	// track it.
	pkts := pktgen.Generate(30000, pktgen.Config{Seed: 9, OptionsPerMille: 500})
	env := Env{}
	prog := Prog(Filter4)
	optionAccepts := 0
	for i, p := range pkts {
		want := Reference(Filter4, p.Data)
		ret, _, err := env.Exec(prog, p.Data, machine.Checked)
		if err != nil {
			t.Fatalf("pkt %d: %v", i, err)
		}
		if (ret != 0) != want {
			t.Fatalf("pkt %d: PCC=%d want %v (ihl=%d len=%d)",
				i, ret, want, p.Data[14]&15, p.Len())
		}
		if want && p.Data[14]&15 > 5 {
			optionAccepts++
		}
	}
	if optionAccepts == 0 {
		t.Error("no accepted packets with IP options; variable-IHL path untested")
	}
}

func TestChecksumMatchesReference(t *testing.T) {
	a := alpha.MustAssemble(SrcChecksum)
	env := Env{}
	pkts := trace(500)
	for i, p := range pkts {
		ret, _, err := env.Exec(a.Prog, p.Data, machine.Checked)
		if err != nil {
			t.Fatalf("pkt %d: %v", i, err)
		}
		if uint16(ret) != RefChecksum(p.Data) {
			t.Fatalf("pkt %d: checksum %#x, want %#x", i, ret, RefChecksum(p.Data))
		}
	}
}

func TestChecksumWord32MatchesOptimized(t *testing.T) {
	fast := alpha.MustAssemble(SrcChecksum)
	slow := alpha.MustAssemble(SrcChecksumWord32)
	env := Env{}
	var fastCycles, slowCycles int64
	for i, p := range trace(300) {
		rf, cf, err := env.Exec(fast.Prog, p.Data, machine.Checked)
		if err != nil {
			t.Fatal(err)
		}
		rs, cs, err := env.Exec(slow.Prog, p.Data, machine.Checked)
		if err != nil {
			t.Fatal(err)
		}
		if rf != rs {
			t.Fatalf("pkt %d: optimized %#x vs word32 %#x", i, rf, rs)
		}
		fastCycles += cf
		slowCycles += cs
	}
	// §4: the optimized routine beats the standard C version "by a
	// factor of two".
	ratio := float64(slowCycles) / float64(fastCycles)
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("word32/optimized cycle ratio = %.2f, expected ~2x", ratio)
	}
}

func TestChecksumCertifies(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		inv  logic.Pred
	}{
		{"optimized", SrcChecksum, ChecksumInvariant()},
		{"word32", SrcChecksumWord32, ChecksumWord32Invariant()},
	} {
		a := alpha.MustAssemble(tc.src)
		pol := policy.PacketFilter()
		loopPC := a.Labels["loop"]
		res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post,
			map[int]logic.Pred{loopPC: tc.inv})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		proof, err := prover.Prove(res.SP)
		if err != nil {
			t.Fatalf("%s: certification failed: %v\nSP:\n%s", tc.name, err, logic.Pretty(res.SP))
		}
		if err := prover.Check(proof, res.SP); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

func TestChecksumLoopShape(t *testing.T) {
	// The paper's core loop is 8 instructions; ours must match.
	a := alpha.MustAssemble(SrcChecksum)
	loop, fold := a.Labels["loop"], a.Labels["fold"]
	if fold-loop != 8 {
		t.Errorf("core loop is %d instructions, want 8", fold-loop)
	}
}

func TestRefChecksumProperties(t *testing.T) {
	// One's-complement sum is invariant under word permutation.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	orig := RefChecksum(buf)
	perm := make([]byte, 64)
	copy(perm, buf[32:])
	copy(perm[32:], buf[:32])
	if RefChecksum(perm) != orig {
		t.Error("checksum not permutation-invariant over words")
	}
	if RefChecksum(nil) != 0 {
		t.Error("empty checksum not 0")
	}
}

func TestReferenceRejectsShortPackets(t *testing.T) {
	for _, f := range All {
		if Reference(f, []byte{1, 2, 3}) {
			t.Errorf("%v accepted a 3-byte packet", f)
		}
	}
}

func TestSourceAccessors(t *testing.T) {
	for _, f := range All {
		if Source(f) == "" {
			t.Errorf("%v: empty source", f)
		}
		if Invariants(f) != nil {
			t.Errorf("%v: unexpected invariants", f)
		}
		if f.String() == "" {
			t.Errorf("%v: empty name", f)
		}
	}
}
