package filters

import (
	"repro/internal/alpha"
	"repro/internal/machine"
	"repro/internal/policy"
)

// Kernel memory layout used by the experiments. The packet buffer sits
// on a 2048-byte boundary (the §3.1 SFI concession) and the scratch
// memory on its own segment.
const (
	PacketBase  = 0x10000
	ScratchBase = 0x20000
)

// Env describes how a filter execution environment is built.
type Env struct {
	// SFI sizes the packet and scratch regions as full 2048-byte
	// segments, the accessibility model of the SFI experiment.
	SFI bool
}

// NewState builds a machine state satisfying the packet-filter
// precondition for the given packet.
func (e Env) NewState(pkt []byte) *machine.State {
	mem := machine.NewMemory()
	pktSize := len(pkt)
	scratchSize := policy.ScratchLen
	if e.SFI {
		pktSize = policy.SFISegmentSize
		scratchSize = policy.SFISegmentSize
	}
	pr := machine.NewRegion("packet", PacketBase, pktSize, false)
	pr.SetBytes(pkt)
	mem.MustAddRegion(pr)
	mem.MustAddRegion(machine.NewRegion("scratch", ScratchBase, scratchSize, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = PacketBase
	s.R[policy.RegLen] = uint64(len(pkt))
	s.R[policy.RegScratch] = ScratchBase
	return s
}

// Exec runs a filter program over one packet, returning its accept
// value and the simulated cycle count.
func (e Env) Exec(prog []alpha.Instr, pkt []byte, mode machine.Mode) (uint64, int64, error) {
	s := e.NewState(pkt)
	res, err := machine.Interp(prog, s, mode, &machine.DEC21064, 1<<20)
	if err != nil {
		return 0, res.Cycles, err
	}
	return res.Ret, res.Cycles, nil
}
