// Package filters contains the paper's evaluation workloads: the four
// network packet filters of §3 in hand-tuned Alpha-subset assembly
// (with the paper's own optimizations: 64-bit loads plus byte
// extraction, and Filter 4's ((p[8]>>46)&60)+16 TCP-offset trick), the
// same filters as classic BPF programs, portable Go reference
// implementations used as oracles, and the §4 IP-checksum loop with
// its invariant.
//
// Register conventions (policy.PacketFilter): r1 packet, r2 length,
// r3 scratch, result in r0. The PCC filters use only r0 and r3..r6 as
// temporaries so that the SFI rewriter (internal/sfi) can reserve
// r7..r10 for its sandbox registers.
package filters

import (
	"encoding/binary"

	"repro/internal/alpha"
	"repro/internal/logic"
	"repro/internal/pktgen"
)

// Filter identifies one of the paper's four packet filters.
type Filter int

// The four filters of §3.
const (
	// Filter1 accepts all IP packets (one 16-bit compare).
	Filter1 Filter = 1
	// Filter2 accepts IP packets originating from network 128.2.42/24
	// (a 24-bit compare on top of Filter 1).
	Filter2 Filter = 2
	// Filter3 accepts IP or ARP packets exchanged between networks
	// 128.2.42/24 and 192.12.33/24 (different header layouts).
	Filter3 Filter = 3
	// Filter4 accepts TCP packets with destination port 80 (the
	// data-dependent header offset).
	Filter4 Filter = 4
)

// All lists the four filters in order.
var All = []Filter{Filter1, Filter2, Filter3, Filter4}

func (f Filter) String() string {
	return [...]string{"", "Filter 1", "Filter 2", "Filter 3", "Filter 4"}[f]
}

// The two /24 networks used by Filters 2 and 3, as little-endian
// 24-bit values of the wire bytes (low byte = first octet).
//
//	netA = 128.2.42  -> 0x2A0280
//	netB = 192.12.33 -> 0x210CC0
const (
	netALE = uint32(0x2A0280)
	netBLE = uint32(0x210CC0)
)

// SrcFilter1 is Filter 1: accept all IP packets. The ethertype lives
// at bytes 12..13 of the frame, i.e. bits 32..47 of the 64-bit word at
// offset 8; IP (0x0800 big-endian) reads as 0x0008 little-endian.
const SrcFilter1 = `
        LDQ    r4, 8(r1)       ; bytes 8..15
        SLL    r4, 16, r4
        SRL    r4, 48, r4      ; ethertype (LE)
        CMPEQ  r4, 8, r0       ; IP?
        RET
`

// SrcFilter2 is Filter 2: accept IP packets from net 128.2.42/24. The
// source IP occupies bytes 26..29; its /24 prefix is bits 16..39 of
// the word at offset 24.
const SrcFilter2 = `
        CLR    r0
        LDQ    r4, 8(r1)
        SLL    r4, 16, r4
        SRL    r4, 48, r4      ; ethertype
        CMPEQ  r4, 8, r4
        BEQ    r4, out         ; not IP
        LDQ    r4, 24(r1)
        SLL    r4, 24, r4
        SRL    r4, 40, r4      ; source net (24-bit, LE)
        MOVI   0x2A02, r5
        SLL    r5, 8, r5
        BIS    r5, 0x80, r5    ; 128.2.42 as LE 24-bit value
        CMPEQ  r4, r5, r0
out:    RET
`

// SrcFilter3 is Filter 3: accept IP or ARP packets exchanged (either
// direction) between nets 128.2.42/24 and 192.12.33/24. IP carries the
// addresses at offsets 26/30; ARP at 28/38 — the "extra complexity ...
// because of different header layout" the paper describes. The IP
// destination net and the ARP target net straddle 64-bit words.
const SrcFilter3 = `
        CLR    r0
        LDQ    r4, 8(r1)
        SLL    r4, 16, r4
        SRL    r4, 48, r4      ; ethertype (LE)
        MOVI   0x2A02, r6
        SLL    r6, 8, r6
        BIS    r6, 0x80, r6    ; A = 128.2.42
        MOVI   0x210C, r3
        SLL    r3, 8, r3
        BIS    r3, 0xC0, r3    ; B = 192.12.33
        CMPEQ  r4, 8, r5
        BNE    r5, ip
        MOVI   0x0608, r5      ; ARP ethertype (LE)
        CMPEQ  r4, r5, r5
        BNE    r5, arp
        RET                    ; neither: reject
ip:     LDQ    r4, 24(r1)      ; src IP bytes 26..29, dst IP bytes 30..33
        SLL    r4, 24, r5
        SRL    r5, 40, r5      ; src net
        SRL    r4, 48, r4      ; dst net, low 16 bits (bytes 30,31)
        LDQ    r0, 32(r1)
        AND    r0, 255, r0     ; byte 32
        SLL    r0, 16, r0
        BIS    r4, r0, r4      ; dst net
        CMPEQ  r5, r6, r0      ; src = A?
        BEQ    r0, ip2
        CMPEQ  r4, r3, r0      ; and dst = B
        RET
ip2:    CMPEQ  r5, r3, r0      ; src = B?
        BEQ    r0, rej
        CMPEQ  r4, r6, r0      ; and dst = A
        RET
rej:    CLR    r0
        RET
arp:    LDQ    r4, 24(r1)      ; sender IP bytes 28..31
        SLL    r4, 8, r5
        SRL    r5, 40, r5      ; sender net
        LDQ    r4, 32(r1)      ; target IP bytes 38..41
        SRL    r4, 48, r4      ; bytes 38,39
        LDQ    r0, 40(r1)
        AND    r0, 255, r0     ; byte 40
        SLL    r0, 16, r0
        BIS    r4, r0, r4      ; target net
        CMPEQ  r5, r6, r0      ; sender = A?
        BEQ    r0, arp2
        CMPEQ  r4, r3, r0      ; and target = B
        RET
arp2:   CMPEQ  r5, r3, r0      ; sender = B?
        BEQ    r0, rej2
        CMPEQ  r4, r6, r0      ; and target = A
        RET
rej2:   CLR    r0
        RET
`

// SrcFilter4 is Filter 4: accept TCP packets with destination port 80.
// The port offset is computed from the IP header length with the
// paper's simplification ((p[8]_64 >> 46) & 60) + 16, bounds-checked
// against the packet length as part of the filter algorithm (exactly
// what BPF's semantics require), which also makes the data-dependent
// load certifiable.
const SrcFilter4 = `
        CLR    r0
        LDQ    r4, 8(r1)       ; bytes 8..15 (ethertype, IP ver/IHL)
        SLL    r4, 16, r5
        SRL    r5, 48, r5      ; ethertype
        CMPEQ  r5, 8, r5
        BEQ    r5, out         ; not IP
        LDQ    r5, 16(r1)      ; bytes 16..23 (protocol at byte 23)
        SRL    r5, 56, r5
        CMPEQ  r5, 6, r5
        BEQ    r5, out         ; not TCP
        SRL    r4, 46, r4
        AND    r4, 60, r4      ; 4*IHL = (p[8] >> 46) & 60
        ADDQ   r4, 16, r4      ; t = byte offset of TCP dst port
        AND    r4, 0xF8, r5    ; u = aligned word offset
        CMPULT r5, r2, r6
        BEQ    r6, out         ; beyond packet: reject
        ADDQ   r1, r5, r6
        LDQ    r6, 0(r6)       ; word containing the port
        AND    r4, 4, r4       ; t mod 8 (t is a multiple of 4)
        SLL    r4, 3, r4       ; bit offset
        SRL    r6, r4, r6
        SLL    r6, 48, r6
        SRL    r6, 48, r6      ; 16-bit port field (LE byte order)
        MOVI   0x5000, r5      ; port 80 on the wire reads as LE 0x5000
        CMPEQ  r6, r5, r0
out:    RET
`

// Source returns the PCC assembly of a filter.
func Source(f Filter) string {
	switch f {
	case Filter1:
		return SrcFilter1
	case Filter2:
		return SrcFilter2
	case Filter3:
		return SrcFilter3
	case Filter4:
		return SrcFilter4
	}
	panic("filters: unknown filter")
}

// Prog assembles the PCC version of a filter.
func Prog(f Filter) []alpha.Instr { return alpha.MustAssemble(Source(f)).Prog }

// Invariants returns the loop-invariant table of a filter (empty: the
// §3 filters are loop-free).
func Invariants(Filter) map[string]logic.Pred { return nil }

// --- Go reference implementations (oracles) ---------------------------

func be16(p []byte, off int) (uint16, bool) {
	if off < 0 || off+2 > len(p) {
		return 0, false
	}
	return binary.BigEndian.Uint16(p[off:]), true
}

func net24(p []byte, off int) (uint32, bool) {
	if off < 0 || off+3 > len(p) {
		return 0, false
	}
	// Big-endian prefix value for readability.
	return uint32(p[off])<<16 | uint32(p[off+1])<<8 | uint32(p[off+2]), true
}

// beNetA and beNetB are the big-endian views of the two networks.
const (
	beNetA = uint32(128)<<16 | 2<<8 | 42
	beNetB = uint32(192)<<16 | 12<<8 | 33
)

// Reference evaluates a filter on a packet with BPF semantics
// (out-of-range access rejects). It is the oracle the Alpha, BPF, SFI
// and M3 variants are all tested against.
func Reference(f Filter, p []byte) bool {
	et, ok := be16(p, 12)
	if !ok {
		return false
	}
	switch f {
	case Filter1:
		return et == pktgen.EtherTypeIP
	case Filter2:
		if et != pktgen.EtherTypeIP {
			return false
		}
		src, ok := net24(p, 26)
		return ok && src == beNetA
	case Filter3:
		var srcOff, dstOff int
		switch et {
		case pktgen.EtherTypeIP:
			srcOff, dstOff = 26, 30
		case pktgen.EtherTypeARP:
			srcOff, dstOff = 28, 38
		default:
			return false
		}
		src, ok1 := net24(p, srcOff)
		dst, ok2 := net24(p, dstOff)
		if !ok1 || !ok2 {
			return false
		}
		return (src == beNetA && dst == beNetB) || (src == beNetB && dst == beNetA)
	case Filter4:
		if et != pktgen.EtherTypeIP {
			return false
		}
		if len(p) < 24 || p[23] != pktgen.ProtoTCP {
			return false
		}
		ihl := int(p[14] & 0x0f)
		off := 14 + 4*ihl + 2
		port, ok := be16(p, off)
		return ok && port == pktgen.FilterPort
	}
	panic("filters: unknown filter")
}
