package filters

import (
	"encoding/binary"

	"repro/internal/logic"
)

// The §4 experiment: an IP-style one's-complement checksum routine,
// hand-coded with the paper's optimization — "computing the 16-bit IP
// checksum using 64-bit additions followed by a folding operation" —
// and certified with an explicit loop invariant carried in the PCC
// binary. The buffer arrives under the packet-filter calling
// convention (r1 = aligned base, r2 = length in bytes).

// SrcChecksum is the optimized routine. The core loop is 8
// instructions (the paper's is also 8).
const SrcChecksum = `
        CLR    r4              ; byte offset
        CLR    r5              ; 64-bit one's-complement accumulator
        CMPULT r4, r2, r6
        BEQ    r6, fold
loop:   ADDQ   r1, r4, r0
        LDQ    r6, 0(r0)       ; 64-bit load
        ADDQ   r5, r6, r0
        CMPULT r0, r5, r6      ; carry out of the 64-bit add?
        ADDQ   r0, r6, r5      ; end-around carry
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, loop
fold:   SRL    r5, 32, r6      ; fold 64 -> 32
        SLL    r5, 32, r5
        SRL    r5, 32, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6      ; fold 33 -> 16 (three times)
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r0      ; 16-bit folded sum in r0
        RET
`

// SrcChecksumWord32 is the "standard C version" baseline: the loop a
// 90s kernel in_cksum() compiles to, reading 32 bits per iteration
// (load the containing aligned word, extract the half). The paper
// reports its optimized routine beating the OSF/1 C version by 2x.
const SrcChecksumWord32 = `
        CLR    r4              ; byte offset (multiple of 4)
        CLR    r5              ; accumulator
        CMPULT r4, r2, r6
        BEQ    r6, fold
loop:   SRL    r4, 3, r6       ; aligned word containing the 32-bit half
        SLL    r6, 3, r6
        ADDQ   r1, r6, r0
        LDQ    r6, 0(r0)
        AND    r4, 4, r0       ; which half?
        SLL    r0, 3, r0
        SRL    r6, r0, r6
        SLL    r6, 32, r6      ; keep 32 bits
        SRL    r6, 32, r6
        ADDQ   r5, r6, r5      ; no carry possible before fold (64-bit acc)
        ADDQ   r4, 4, r4
        CMPULT r4, r2, r6
        BNE    r6, loop
fold:   SRL    r5, 32, r6
        SLL    r5, 32, r5
        SRL    r5, 32, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r5
        SRL    r5, 16, r6
        SLL    r5, 48, r5
        SRL    r5, 48, r5
        ADDQ   r5, r6, r0
        RET
`

// ChecksumInvariant is the loop invariant for SrcChecksum's `loop`
// label: the packet-read clause of the precondition (the part of Pre
// the loop body needs), the loop's progress condition as established
// by the guarding compare, and 8-byte alignment of the offset.
func ChecksumInvariant() logic.Pred {
	i := logic.V("i")
	return logic.Conj(
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(i, logic.V("r2")),
				logic.Eq(logic.And2(i, logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.V("r1"), i)),
		)),
		logic.Ne(logic.Bin{Op: logic.OpCmpUlt, L: logic.V("r4"), R: logic.V("r2")}, logic.C(0)),
		logic.Eq(logic.And2(logic.V("r4"), logic.C(7)), logic.C(0)),
	)
}

// ChecksumWord32Invariant is the invariant for the baseline version,
// whose offset advances by 4 and is re-aligned with a mask before each
// load (so only 4-byte alignment is invariant).
func ChecksumWord32Invariant() logic.Pred {
	i := logic.V("i")
	return logic.Conj(
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(i, logic.V("r2")),
				logic.Eq(logic.And2(i, logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.V("r1"), i)),
		)),
		logic.Ne(logic.Bin{Op: logic.OpCmpUlt, L: logic.V("r4"), R: logic.V("r2")}, logic.C(0)),
		logic.Eq(logic.And2(logic.V("r4"), logic.C(3)), logic.C(0)),
	)
}

// RefChecksum computes the same value as SrcChecksum in Go: 64-bit
// one's-complement accumulation over little-endian words (the buffer
// is padded to a multiple of 8 with zeros), folded to 16 bits.
func RefChecksum(buf []byte) uint16 {
	padded := make([]byte, (len(buf)+7)&^7)
	copy(padded, buf)
	var sum uint64
	for off := 0; off < len(padded); off += 8 {
		w := binary.LittleEndian.Uint64(padded[off:])
		s := sum + w
		var carry uint64
		if s < sum {
			carry = 1
		}
		sum = s + carry
	}
	sum = (sum & 0xffffffff) + sum>>32
	for i := 0; i < 3; i++ {
		sum = (sum & 0xffff) + sum>>16
	}
	return uint16(sum)
}
