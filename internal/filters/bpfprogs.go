package filters

import (
	"repro/internal/bpf"
	"repro/internal/pktgen"
)

// BPF versions of the four filters, written the way a tcpdump-style
// compiler emits them (big-endian field values, per-access bounds
// checks performed by the interpreter).

// beNetMask24 selects the /24 prefix of a big-endian IPv4 word.
const beNetMask24 = 0xffffff00

// BPFProg returns the BPF program for a filter.
func BPFProg(f Filter) []bpf.Insn {
	switch f {
	case Filter1:
		return []bpf.Insn{
			bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeABS, 12),
			bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.EtherTypeIP, 0, 1),
			bpf.Stmt(bpf.ClsRET|bpf.RetK, 0xffff),
			bpf.Stmt(bpf.ClsRET|bpf.RetK, 0),
		}
	case Filter2:
		return []bpf.Insn{
			bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeABS, 12),
			bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.EtherTypeIP, 0, 3),
			bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 26),
			bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetA<<8, 1, 0),
			bpf.Stmt(bpf.ClsRET|bpf.RetK, 0),
			bpf.Stmt(bpf.ClsRET|bpf.RetK, 0xffff),
		}
	case Filter3:
		// Layout:
		//  0: ldh [12]
		//  1: jeq IP  -> 2 else 12 (try ARP)
		//  2: ld  [26]; 3: and; 4: jeq A -> 5 else 8
		//  5: ld  [30]; 6: and; 7: jeq B -> accept else reject
		//  8: and==B? (A reloaded)  ... symmetric direction
		// 12: ARP path, same structure at offsets 28/38.
		const acc, rej = 23, 24
		j := func(target, pc int) uint8 { return uint8(target - pc - 1) }
		return []bpf.Insn{
			/* 0*/ bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeABS, 12),
			/* 1*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.EtherTypeIP, 0, j(12, 1)),
			// IP, forward direction: src ∈ A and dst ∈ B.
			/* 2*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 26),
			/* 3*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/* 4*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetA<<8, 0, j(8, 4)),
			/* 5*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 30),
			/* 6*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/* 7*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetB<<8, j(acc, 7), j(rej, 7)),
			// IP, reverse direction: src ∈ B and dst ∈ A.
			/* 8*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetB<<8, 0, j(rej, 8)),
			/* 9*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 30),
			/*10*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/*11*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetA<<8, j(acc, 11), j(rej, 11)),
			// ARP (sender/target at offsets 28/38).
			/*12*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.EtherTypeARP, 0, j(rej, 12)),
			/*13*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 28),
			/*14*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/*15*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetA<<8, 0, j(19, 15)),
			/*16*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 38),
			/*17*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/*18*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetB<<8, j(acc, 18), j(rej, 18)),
			/*19*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetB<<8, 0, j(rej, 19)),
			/*20*/ bpf.Stmt(bpf.ClsLD|bpf.SizeW|bpf.ModeABS, 38),
			/*21*/ bpf.Stmt(bpf.ClsALU|bpf.AluAnd|bpf.SrcK, beNetMask24),
			/*22*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, beNetA<<8, j(acc, 22), j(rej, 22)),
			/*23*/ bpf.Stmt(bpf.ClsRET|bpf.RetK, 0xffff),
			/*24*/ bpf.Stmt(bpf.ClsRET|bpf.RetK, 0),
		}
	case Filter4:
		return []bpf.Insn{
			/* 0*/ bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeABS, 12),
			/* 1*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.EtherTypeIP, 0, 8),
			/* 2*/ bpf.Stmt(bpf.ClsLD|bpf.SizeB|bpf.ModeABS, 23),
			/* 3*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.ProtoTCP, 0, 6),
			/* 4*/ bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeABS, 20),
			/* 5*/ bpf.Jump(bpf.ClsJMP|bpf.JmpSET|bpf.SrcK, 0x1fff, 4, 0), // fragment: reject
			/* 6*/ bpf.Stmt(bpf.ClsLDX|bpf.SizeB|bpf.ModeMSH, 14), // X = 4*IHL
			/* 7*/ bpf.Stmt(bpf.ClsLD|bpf.SizeH|bpf.ModeIND, 16), // dst port
			/* 8*/ bpf.Jump(bpf.ClsJMP|bpf.JmpJEQ|bpf.SrcK, pktgen.FilterPort, 0, 1),
			/* 9*/ bpf.Stmt(bpf.ClsRET|bpf.RetK, 0xffff),
			/*10*/ bpf.Stmt(bpf.ClsRET|bpf.RetK, 0),
		}
	}
	panic("filters: unknown filter")
}
