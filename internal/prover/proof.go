// Package prover implements the certification side of PCC: natural-
// deduction proof terms for the safety-predicate logic, the axiom
// schemas of the proof system ℒ (published as part of the safety
// policy), an independent proof checker used as a testing oracle, and
// the automatic theorem prover that certifies the paper's programs.
//
// The deliverable proofs are later *encoded into LF* (internal/lf) and
// validated by LF type checking, exactly as in §2.3; the checker here
// exists so the repository has two independent validators to test
// against each other.
package prover

import (
	"fmt"

	"repro/internal/logic"
)

// Proof is a natural-deduction proof term.
type Proof interface {
	isProof()
	// Size returns the number of proof nodes (used for Table 1's
	// proof-size accounting and growth tests).
	Size() int
}

// Hyp references a hypothesis in scope, introduced by ImpI.
type Hyp struct{ Name string }

// TrueI proves true.
type TrueI struct{}

// AndI proves P ∧ Q from proofs of P and Q.
type AndI struct{ P, Q Proof }

// AndEL extracts the left conjunct.
type AndEL struct{ P Proof }

// AndER extracts the right conjunct.
type AndER struct{ P Proof }

// ImpI proves A ⇒ B by deriving B under hypothesis Name : A.
type ImpI struct {
	Name string
	Ante logic.Pred
	Body Proof
}

// ImpE is modus ponens: from A ⇒ B and A, conclude B.
type ImpE struct{ PQ, P Proof }

// AllI proves ∀v. P by proving P for a fresh v.
type AllI struct {
	Var  string
	Body Proof
}

// AllE instantiates ∀v. P at the expression Inst.
type AllE struct {
	All  Proof
	Inst logic.Expr
}

// Ground proves a closed predicate by two's-complement evaluation —
// the paper's "predicate calculus extended with two's-complement
// integer arithmetic". The checker re-evaluates the predicate.
type Ground struct{ Goal logic.Pred }

// Conv re-types a proof of P as a proof of Q when P and Q have the same
// normal form under the trusted normalizer (see DESIGN.md); this is the
// proof-level face of the paper's built-in arithmetic simplification.
type Conv struct {
	To logic.Pred
	P  Proof
}

// OrIL proves P ∨ Q from a proof of P (the right disjunct is recorded
// for type inference).
type OrIL struct {
	Right logic.Pred
	P     Proof
}

// OrIR proves P ∨ Q from a proof of Q.
type OrIR struct {
	Left logic.Pred
	P    Proof
}

// OrE is case analysis: from P ∨ Q, a proof of R under hypothesis
// Name : P, and a proof of R under Name : Q, conclude R.
type OrE struct {
	Disj  Proof
	Name  string
	Left  Proof
	Right Proof
}

// FalseE is ex falso quodlibet: from a proof of false, conclude Goal.
type FalseE struct {
	Goal logic.Pred
	P    Proof
}

// Axiom instantiates a named axiom schema from the published rule set
// with the given parameter expressions and premise proofs.
type Axiom struct {
	Name  string
	Args  []logic.Expr
	Prems []Proof
}

func (Hyp) isProof()    {}
func (TrueI) isProof()  {}
func (AndI) isProof()   {}
func (AndEL) isProof()  {}
func (AndER) isProof()  {}
func (ImpI) isProof()   {}
func (ImpE) isProof()   {}
func (AllI) isProof()   {}
func (AllE) isProof()   {}
func (Ground) isProof() {}
func (Conv) isProof()   {}
func (OrIL) isProof()   {}
func (OrIR) isProof()   {}
func (OrE) isProof()    {}
func (FalseE) isProof() {}
func (Axiom) isProof()  {}

func (Hyp) Size() int      { return 1 }
func (TrueI) Size() int    { return 1 }
func (p AndI) Size() int   { return 1 + p.P.Size() + p.Q.Size() }
func (p AndEL) Size() int  { return 1 + p.P.Size() }
func (p AndER) Size() int  { return 1 + p.P.Size() }
func (p ImpI) Size() int   { return 1 + p.Body.Size() }
func (p ImpE) Size() int   { return 1 + p.PQ.Size() + p.P.Size() }
func (p AllI) Size() int   { return 1 + p.Body.Size() }
func (p AllE) Size() int   { return 1 + p.All.Size() }
func (Ground) Size() int   { return 1 }
func (p Conv) Size() int   { return 1 + p.P.Size() }
func (p OrIL) Size() int   { return 1 + p.P.Size() }
func (p OrIR) Size() int   { return 1 + p.P.Size() }
func (p OrE) Size() int    { return 1 + p.Disj.Size() + p.Left.Size() + p.Right.Size() }
func (p FalseE) Size() int { return 1 + p.P.Size() }
func (p Axiom) Size() int {
	n := 1
	for _, q := range p.Prems {
		n += q.Size()
	}
	return n
}

// Schema is an axiom schema of the proof system (see logic.Schema).
type Schema = logic.Schema

// Schema parameters use names no machine program can mention.
var (
	pa = logic.V("$a")
	pb = logic.V("$b")
	pc = logic.V("$c")
	pe = logic.V("$e")
	pm = logic.V("$m")
	pv = logic.V("$v")
)

// Axioms is the published rule set ℒ beyond the core natural-deduction
// rules: ordering, compare-instruction, bit-masking and memory axioms,
// each a theorem of 64-bit two's-complement arithmetic.
var Axioms = map[string]*Schema{}

func def(name string, params []string, prems []logic.Pred, concl logic.Pred, comment string) {
	Axioms[name] = &Schema{
		Name: name, Params: params, Prems: prems, Concl: concl, Comment: comment,
	}
}

func init() {
	ab := []string{"$a", "$b"}
	abc := []string{"$a", "$b", "$c"}

	def("lt_le_trans", abc,
		[]logic.Pred{logic.Ult(pa, pb), logic.Ule(pb, pc)},
		logic.Ult(pa, pc), "a<b ∧ b≤c ⇒ a<c")
	def("le_lt_trans", abc,
		[]logic.Pred{logic.Ule(pa, pb), logic.Ult(pb, pc)},
		logic.Ult(pa, pc), "a≤b ∧ b<c ⇒ a<c")
	def("le_trans", abc,
		[]logic.Pred{logic.Ule(pa, pb), logic.Ule(pb, pc)},
		logic.Ule(pa, pc), "a≤b ∧ b≤c ⇒ a≤c")
	def("lt_imp_le", ab,
		[]logic.Pred{logic.Ult(pa, pb)},
		logic.Ule(pa, pb), "a<b ⇒ a≤b")
	def("eq_sym", ab,
		[]logic.Pred{logic.Eq(pa, pb)},
		logic.Eq(pb, pa), "symmetry of =")
	def("ne_sym", ab,
		[]logic.Pred{logic.Ne(pa, pb)},
		logic.Ne(pb, pa), "symmetry of ≠")

	// The Alpha compare instructions, as expressions, related to the
	// predicates they decide.
	cmp := func(op logic.BinOp) logic.Expr { return logic.Bin{Op: op, L: pa, R: pb} }
	def("cmpeq_true", ab,
		[]logic.Pred{logic.Ne(cmp(logic.OpCmpEq), logic.C(0))},
		logic.Eq(pa, pb), "cmpeq(a,b)≠0 ⇒ a=b")
	def("cmpeq_false", ab,
		[]logic.Pred{logic.Eq(cmp(logic.OpCmpEq), logic.C(0))},
		logic.Ne(pa, pb), "cmpeq(a,b)=0 ⇒ a≠b")
	def("cmpult_true", ab,
		[]logic.Pred{logic.Ne(cmp(logic.OpCmpUlt), logic.C(0))},
		logic.Ult(pa, pb), "cmpult(a,b)≠0 ⇒ a<b")
	def("cmpult_false", ab,
		[]logic.Pred{logic.Eq(cmp(logic.OpCmpUlt), logic.C(0))},
		logic.Ule(pb, pa), "cmpult(a,b)=0 ⇒ b≤a")
	def("cmpule_true", ab,
		[]logic.Pred{logic.Ne(cmp(logic.OpCmpUle), logic.C(0))},
		logic.Ule(pa, pb), "cmpule(a,b)≠0 ⇒ a≤b")
	def("cmpule_false", ab,
		[]logic.Pred{logic.Eq(cmp(logic.OpCmpUle), logic.C(0))},
		logic.Ult(pb, pa), "cmpule(a,b)=0 ⇒ b<a")

	// Bit-masking bounds, the workhorses of the data-dependent offset
	// proof in Filter 4.
	def("band_ub", []string{"$e", "$c"}, nil,
		logic.Ule(logic.And2(pe, pc), pc), "e&c ≤ c")
	def("band_le_self", []string{"$e", "$c"}, nil,
		logic.Ule(logic.And2(pe, pc), pe), "e&c ≤ e")

	// Rounding down to a multiple of 2^c never increases a value.
	def("shr_shl_le", []string{"$e", "$c"}, nil,
		logic.Ule(logic.Shl(logic.Shr(pe, pc), pc), pe),
		"(e>>c)<<c ≤ e")

	// Non-wrapping subtraction bound.
	def("sub_le", []string{"$e", "$c"},
		[]logic.Pred{logic.Ule(pc, pe)},
		logic.Ule(logic.Sub(pe, pc), pe), "c≤e ⇒ e-c ≤ e")

	// Monotonic addition without overflow: e≤a ∧ a ≤ MAX-b ⇒ e+b ≤ a+b.
	def("add_le_mono", []string{"$e", "$a", "$b"},
		[]logic.Pred{
			logic.Ule(pe, pa),
			logic.Ule(pa, logic.Sub(logic.C(^uint64(0)), pb)),
		},
		logic.Ule(logic.Add(pe, pb), logic.Add(pa, pb)),
		"e≤a ∧ a≤MAX−b ⇒ e+b ≤ a+b")

	// Alignment propagation through sums: when m has the form 2^k−1
	// (expressed by the ground side condition m & (m+1) = 0), values
	// divisible by 2^k stay divisible under ⊕ and ⊖. These discharge
	// the "offset stays 8-byte aligned" obligations of loop bodies.
	zero := logic.C(0)
	alignPrems := func(l, r logic.Expr) []logic.Pred {
		return []logic.Pred{
			logic.Eq(logic.And2(l, pm), zero),
			logic.Eq(logic.And2(r, pm), zero),
			logic.Eq(logic.And2(pm, logic.Add(pm, logic.C(1))), zero),
		}
	}
	def("align_add", []string{"$a", "$b", "$m"},
		alignPrems(pa, pb),
		logic.Eq(logic.And2(logic.Add(pa, pb), pm), zero),
		"a,b ≡ 0 mod (m+1), m=2^k−1 ⇒ a⊕b ≡ 0")
	def("align_sub", []string{"$a", "$b", "$m"},
		alignPrems(pa, pb),
		logic.Eq(logic.And2(logic.Sub(pa, pb), pm), zero),
		"a,b ≡ 0 mod (m+1), m=2^k−1 ⇒ a⊖b ≡ 0")

	// Contradictory orderings: used by the ex-falso search when a case
	// split lands in an impossible branch.
	def("eq_ne_absurd", ab,
		[]logic.Pred{logic.Eq(pa, pb), logic.Ne(pa, pb)},
		logic.False, "a=b ∧ a≠b ⇒ false")
	def("lt_lt_absurd", ab,
		[]logic.Pred{logic.Ult(pa, pb), logic.Ult(pb, pa)},
		logic.False, "a<b ∧ b<a ⇒ false")

	// Writable implies readable: the paper defines wr(a) as "an aligned
	// location that can be safely read or written".
	def("wr_rd", []string{"$e"},
		[]logic.Pred{logic.WrP(pe)},
		logic.RdP(pe), "wr(e) ⇒ rd(e)")

	// Word-index bound: i < ⌈n/8⌉ ∧ n ≤ 2^63 ⇒ 8i < n. Discharges the
	// VIEW-style subrange checks a safe-language compiler emits.
	def("word_index_bound", []string{"$a", "$b"},
		[]logic.Pred{
			logic.Ult(pa, logic.Shr(logic.Add(pb, logic.C(7)), logic.C(3))),
			logic.Ule(pb, logic.C(1<<63)),
		},
		logic.Ult(logic.Shl(pa, logic.C(3)), pb),
		"i < (n+7)>>3 ∧ n ≤ 2^63 ⇒ i<<3 < n")

	// McCarthy memory axioms. sel_upd_eq is folded by the normalizer;
	// it is published anyway so hand-written proofs may use it.
	def("sel_upd_eq", []string{"$m", "$a", "$v"}, nil,
		logic.Eq(logic.SelE(logic.UpdE(pm, pa, pv), pa), pv),
		"sel(upd(m,a,v),a) = v")
	def("sel_upd_ne", []string{"$m", "$a", "$b", "$v"},
		[]logic.Pred{logic.Ne(pa, pb)},
		logic.Eq(logic.SelE(logic.UpdE(pm, pa, pv), pb), logic.SelE(pm, pb)),
		"a≠b ⇒ sel(upd(m,a,v),b) = sel(m,b)")
}

// CheckError reports a proof that fails to check.
type CheckError struct{ Msg string }

// Error implements the error interface.
func (e *CheckError) Error() string { return "prover: " + e.Msg }

func checkErr(format string, args ...interface{}) error {
	return &CheckError{fmt.Sprintf(format, args...)}
}

// Check verifies that proof establishes goal (up to normalization),
// using the base rule set. It is used in tests as an oracle
// independent of the LF checker.
func Check(proof Proof, goal logic.Pred) error { return CheckWith(proof, goal, nil) }

// CheckWith is Check with additional (policy-published) axiom schemas
// in scope.
func CheckWith(proof Proof, goal logic.Pred, extra map[string]*Schema) error {
	got, err := infer(proof, map[string]logic.Pred{}, extra)
	if err != nil {
		return err
	}
	if !normAlphaEq(got, goal) {
		return checkErr("proved %s, wanted %s", got, goal)
	}
	return nil
}

// LookupAxiom resolves an axiom name against the base rule set plus an
// optional extra set (extra wins on clash, which policy vetting
// forbids anyway).
func LookupAxiom(name string, extra map[string]*Schema) (*Schema, bool) {
	if extra != nil {
		if s, ok := extra[name]; ok {
			return s, true
		}
	}
	s, ok := Axioms[name]
	return s, ok
}

func normAlphaEq(a, b logic.Pred) bool {
	return logic.AlphaEqual(logic.NormPred(a), logic.NormPred(b))
}

// infer computes the predicate proved by a proof term under the
// hypothesis context and axiom set.
func infer(p Proof, ctx map[string]logic.Pred, extra map[string]*Schema) (logic.Pred, error) {
	switch p := p.(type) {
	case Hyp:
		h, ok := ctx[p.Name]
		if !ok {
			return nil, checkErr("unbound hypothesis %q", p.Name)
		}
		return h, nil
	case TrueI:
		return logic.True, nil
	case AndI:
		l, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		r, err := infer(p.Q, ctx, extra)
		if err != nil {
			return nil, err
		}
		return logic.And{L: l, R: r}, nil
	case AndEL:
		q, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		and, ok := q.(logic.And)
		if !ok {
			return nil, checkErr("and_el on non-conjunction %s", q)
		}
		return and.L, nil
	case AndER:
		q, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		and, ok := q.(logic.And)
		if !ok {
			return nil, checkErr("and_er on non-conjunction %s", q)
		}
		return and.R, nil
	case ImpI:
		if _, dup := ctx[p.Name]; dup {
			return nil, checkErr("hypothesis %q shadows an existing one", p.Name)
		}
		inner := make(map[string]logic.Pred, len(ctx)+1)
		for k, v := range ctx {
			inner[k] = v
		}
		inner[p.Name] = p.Ante
		body, err := infer(p.Body, inner, extra)
		if err != nil {
			return nil, err
		}
		return logic.Imp{L: p.Ante, R: body}, nil
	case ImpE:
		q, err := infer(p.PQ, ctx, extra)
		if err != nil {
			return nil, err
		}
		imp, ok := q.(logic.Imp)
		if !ok {
			return nil, checkErr("imp_e on non-implication %s", q)
		}
		arg, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		if !logic.PredEqual(arg, imp.L) {
			return nil, checkErr("imp_e argument %s does not match antecedent %s", arg, imp.L)
		}
		return imp.R, nil
	case AllI:
		// Eigenvariable condition: the bound variable must not occur
		// free in any hypothesis in scope.
		for name, h := range ctx {
			if logic.FreeVars(h)[p.Var] {
				return nil, checkErr("all_i violates freshness: %s free in hypothesis %q", p.Var, name)
			}
		}
		body, err := infer(p.Body, ctx, extra)
		if err != nil {
			return nil, err
		}
		return logic.Forall{Var: p.Var, Body: body}, nil
	case AllE:
		q, err := infer(p.All, ctx, extra)
		if err != nil {
			return nil, err
		}
		fa, ok := q.(logic.Forall)
		if !ok {
			return nil, checkErr("all_e on non-universal %s", q)
		}
		return logic.Subst(fa.Body, fa.Var, p.Inst), nil
	case Ground:
		v, ok := logic.EvalPred(p.Goal, map[string]uint64{})
		if !ok {
			return nil, checkErr("ground proof of non-ground predicate %s", p.Goal)
		}
		if !v {
			return nil, checkErr("ground predicate %s is false", p.Goal)
		}
		return p.Goal, nil
	case Conv:
		from, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		if !normAlphaEq(from, p.To) {
			return nil, checkErr("conv between non-convertible %s and %s", from, p.To)
		}
		return p.To, nil
	case OrIL:
		l, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		return logic.Or{L: l, R: p.Right}, nil
	case OrIR:
		r, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		return logic.Or{L: p.Left, R: r}, nil
	case OrE:
		d, err := infer(p.Disj, ctx, extra)
		if err != nil {
			return nil, err
		}
		or, ok := d.(logic.Or)
		if !ok {
			return nil, checkErr("or_e on non-disjunction %s", d)
		}
		if _, dup := ctx[p.Name]; dup {
			return nil, checkErr("hypothesis %q shadows an existing one", p.Name)
		}
		withHyp := func(h logic.Pred, body Proof) (logic.Pred, error) {
			inner := make(map[string]logic.Pred, len(ctx)+1)
			for k, v := range ctx {
				inner[k] = v
			}
			inner[p.Name] = h
			return infer(body, inner, extra)
		}
		l, err := withHyp(or.L, p.Left)
		if err != nil {
			return nil, err
		}
		r, err := withHyp(or.R, p.Right)
		if err != nil {
			return nil, err
		}
		if !logic.PredEqual(l, r) {
			return nil, checkErr("or_e branches prove different predicates: %s vs %s", l, r)
		}
		return l, nil
	case FalseE:
		q, err := infer(p.P, ctx, extra)
		if err != nil {
			return nil, err
		}
		if !logic.PredEqual(q, logic.False) {
			return nil, checkErr("false_e over non-false %s", q)
		}
		return p.Goal, nil
	case Axiom:
		s, ok := LookupAxiom(p.Name, extra)
		if !ok {
			return nil, checkErr("unknown axiom %q", p.Name)
		}
		if len(p.Args) != len(s.Params) {
			return nil, checkErr("axiom %q wants %d args, got %d", p.Name, len(s.Params), len(p.Args))
		}
		if len(p.Prems) != len(s.Prems) {
			return nil, checkErr("axiom %q wants %d premises, got %d", p.Name, len(s.Prems), len(p.Prems))
		}
		for i, want := range s.Prems {
			wantInst := s.Instantiate(want, p.Args)
			got, err := infer(p.Prems[i], ctx, extra)
			if err != nil {
				return nil, err
			}
			if !logic.PredEqual(got, wantInst) {
				return nil, checkErr("axiom %q premise %d: got %s, want %s", p.Name, i, got, wantInst)
			}
		}
		return s.Instantiate(s.Concl, p.Args), nil
	}
	return nil, checkErr("unknown proof node %T", p)
}

// Infer exposes type inference over closed proofs (used by the LF
// encoder and by tests).
func Infer(p Proof) (logic.Pred, error) { return infer(p, map[string]logic.Pred{}, nil) }

// InferWith is Infer under an explicit hypothesis context; the LF
// encoder uses it to annotate sub-proofs with their predicates.
func InferWith(p Proof, hyps map[string]logic.Pred) (logic.Pred, error) {
	return infer(p, hyps, nil)
}

// InferWithAxioms is InferWith with additional axiom schemas in scope.
func InferWithAxioms(p Proof, hyps map[string]logic.Pred, extra map[string]*Schema) (logic.Pred, error) {
	return infer(p, hyps, extra)
}
