package prover

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alpha"
	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/vcgen"
)

// Randomized completeness and soundness checks: programs built only
// from operations the packet-filter policy licenses must certify;
// programs with a single injected violation must not.

// safeProgram generates a random loop-free program whose loads hit
// aligned constant offsets below the guaranteed 64-byte minimum and
// whose stores hit the 16-byte scratch area.
func safeProgram(r *rand.Rand) []alpha.Instr {
	var prog []alpha.Instr
	n := 3 + r.Intn(12)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0: // packet load at a safe offset
			prog = append(prog, alpha.Instr{
				Op: alpha.LDQ, Ra: alpha.Reg(4 + r.Intn(4)),
				Rb: 1, Disp: int16(8 * r.Intn(8)),
			})
		case 1: // scratch store
			prog = append(prog, alpha.Instr{
				Op: alpha.STQ, Ra: alpha.Reg(4 + r.Intn(4)),
				Rb: 3, Disp: int16(8 * r.Intn(2)),
			})
		case 2: // compare
			prog = append(prog, alpha.Instr{
				Op: alpha.CMPULT, Ra: alpha.Reg(4 + r.Intn(4)),
				Rb: 2, Rc: alpha.Reg(4 + r.Intn(4)),
			})
		case 3: // forward branch
			// Target resolved below; placeholder lands at end.
			prog = append(prog, alpha.Instr{
				Op: alpha.BEQ, Ra: alpha.Reg(4 + r.Intn(4)), Target: -1,
			})
		default: // ALU
			ops := []alpha.Op{alpha.ADDQ, alpha.SUBQ, alpha.AND, alpha.BIS, alpha.XOR, alpha.SLL, alpha.SRL}
			prog = append(prog, alpha.Instr{
				Op: ops[r.Intn(len(ops))], Ra: alpha.Reg(4 + r.Intn(4)),
				HasLit: true, Lit: uint8(r.Intn(32)),
				Rc: alpha.Reg(4 + r.Intn(4)),
			})
		}
	}
	prog = append(prog, alpha.Instr{Op: alpha.RET})
	// Resolve branch placeholders to random strictly-forward targets.
	for pc := range prog {
		if prog[pc].Op == alpha.BEQ && prog[pc].Target == -1 {
			prog[pc].Target = pc + 1 + r.Intn(len(prog)-pc-1)
		}
	}
	return prog
}

func certifies(t *testing.T, prog []alpha.Instr) error {
	t.Helper()
	pol := policy.PacketFilter()
	res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
	if err != nil {
		return fmt.Errorf("vcgen: %w", err)
	}
	proof, err := Prove(res.SP)
	if err != nil {
		return err
	}
	if err := Check(proof, res.SP); err != nil {
		t.Fatalf("prover produced an invalid proof: %v\n%s", err, alpha.Program(prog))
	}
	return nil
}

func TestFuzzSafeProgramsCertify(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		prog := safeProgram(r)
		if err := certifies(t, prog); err != nil {
			t.Fatalf("trial %d: safe program failed to certify: %v\n%s",
				trial, err, alpha.Program(prog))
		}
	}
}

func TestFuzzInjectedViolationsRejected(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	kinds := []func(*rand.Rand) alpha.Instr{
		// Unaligned packet read.
		func(r *rand.Rand) alpha.Instr {
			return alpha.Instr{Op: alpha.LDQ, Ra: 4, Rb: 1, Disp: int16(8*r.Intn(8) + 1 + r.Intn(7))}
		},
		// Read beyond the guaranteed minimum length.
		func(r *rand.Rand) alpha.Instr {
			return alpha.Instr{Op: alpha.LDQ, Ra: 4, Rb: 1, Disp: int16(64 + 8*r.Intn(8))}
		},
		// Write into the packet.
		func(r *rand.Rand) alpha.Instr {
			return alpha.Instr{Op: alpha.STQ, Ra: 4, Rb: 1, Disp: int16(8 * r.Intn(4))}
		},
		// Scratch write out of bounds.
		func(r *rand.Rand) alpha.Instr {
			return alpha.Instr{Op: alpha.STQ, Ra: 4, Rb: 3, Disp: int16(16 + 8*r.Intn(8))}
		},
		// Load through an unconstrained register.
		func(r *rand.Rand) alpha.Instr {
			return alpha.Instr{Op: alpha.LDQ, Ra: 4, Rb: alpha.Reg(4 + r.Intn(4))}
		},
	}
	for trial := 0; trial < 200; trial++ {
		prog := safeProgram(r)
		bad := kinds[r.Intn(len(kinds))](r)
		// Insert before the final RET, after any branch targets are
		// resolved — shift targets pointing past the insertion point.
		pos := len(prog) - 1
		mut := append(append(append([]alpha.Instr(nil), prog[:pos]...), bad), prog[pos:]...)
		for pc := range mut {
			if mut[pc].Op.Class() == alpha.ClassBranch && mut[pc].Target >= pos {
				mut[pc].Target++
			}
		}
		if err := certifies(t, mut); err == nil {
			t.Fatalf("trial %d: violating program certified:\n%s",
				trial, alpha.Program(mut))
		}
	}
}

func TestFuzzGuardedDynamicLoads(t *testing.T) {
	// Programs computing a dynamic offset, masking it aligned, and
	// bounds-checking it must always certify, whatever junk feeds the
	// offset computation.
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 100; trial++ {
		shift := uint8(r.Intn(50))
		mask := uint8(8 * (1 + r.Intn(31))) // aligned mask ≤ 248
		src := fmt.Sprintf(`
        LDQ    r4, %d(r1)
        SRL    r4, %d, r4
        AND    r4, %d, r5
        CMPULT r5, r2, r6
        BEQ    r6, out
        ADDQ   r1, r5, r6
        LDQ    r0, 0(r6)
out:    RET
`, 8*r.Intn(8), shift, mask&0xF8)
		prog := alpha.MustAssemble(src).Prog
		if err := certifies(t, prog); err != nil {
			t.Fatalf("trial %d: guarded dynamic load failed: %v\n%s", trial, err, src)
		}
	}
}

func TestScaleLargeProgram(t *testing.T) {
	// Certification must scale well beyond the paper's 47-instruction
	// maximum for the tractable program shape: long straight-line code
	// with bounded branching. (Unbounded scaling is NOT expected — §4
	// notes proofs "can be exponentially large" for long sequences of
	// conditionals, because each forward branch duplicates the
	// remaining VC; the paper's remedy is inserting invariants "as a
	// way of controlling the growth". TestScaleBranchBlowupBounded
	// pins where that regime starts.)
	r := rand.New(rand.NewSource(4096))
	var prog []alpha.Instr
	branches := 0
	for len(prog) < 400 {
		switch r.Intn(5) {
		case 0:
			prog = append(prog, alpha.Instr{
				Op: alpha.LDQ, Ra: alpha.Reg(4 + r.Intn(4)),
				Rb: 1, Disp: int16(8 * r.Intn(8)),
			})
		case 1:
			prog = append(prog, alpha.Instr{
				Op: alpha.STQ, Ra: alpha.Reg(4 + r.Intn(4)),
				Rb: 3, Disp: int16(8 * r.Intn(2)),
			})
		case 2:
			if branches < 8 { // bounded: each branch doubles the VC
				prog = append(prog, alpha.Instr{
					Op: alpha.BEQ, Ra: alpha.Reg(4 + r.Intn(4)), Target: -1,
				})
				branches++
				continue
			}
			fallthrough
		default:
			// Literal-operand updates keep value expressions linear.
			ops := []alpha.Op{alpha.ADDQ, alpha.SUBQ, alpha.AND, alpha.BIS, alpha.XOR}
			reg := alpha.Reg(4 + r.Intn(4))
			prog = append(prog, alpha.Instr{
				Op: ops[r.Intn(len(ops))], Ra: reg,
				HasLit: true, Lit: uint8(r.Intn(64)), Rc: reg,
			})
		}
	}
	prog = append(prog, alpha.Instr{Op: alpha.RET})
	for pc := range prog {
		if prog[pc].Op == alpha.BEQ && prog[pc].Target == -1 {
			prog[pc].Target = pc + 1 + r.Intn(len(prog)-pc-1)
		}
	}

	pol := policy.PacketFilter()
	res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(res.SP)
	if err != nil {
		t.Fatalf("large program failed to certify: %v", err)
	}
	if err := Check(proof, res.SP); err != nil {
		t.Fatal(err)
	}
}

// TestScaleBranchBlowupBounded documents the §4 exponential regime:
// the VC size roughly doubles per unguarded forward branch. The test
// pins the growth factor so a regression that makes it worse (or a
// future fix that adds sharing) is noticed.
func TestScaleBranchBlowupBounded(t *testing.T) {
	pol := policy.PacketFilter()
	size := func(branches int) int {
		var prog []alpha.Instr
		for i := 0; i < branches; i++ {
			prog = append(prog,
				alpha.Instr{Op: alpha.LDQ, Ra: 4, Rb: 1, Disp: int16(8 * (i % 8))},
				alpha.Instr{Op: alpha.BEQ, Ra: 4, Target: len(prog) + 3},
				alpha.Instr{Op: alpha.ADDQ, Ra: 5, HasLit: true, Lit: 1, Rc: 5},
			)
		}
		prog = append(prog, alpha.Instr{Op: alpha.RET})
		res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
		if err != nil {
			t.Fatal(err)
		}
		return logic.PredSize(res.SP)
	}
	s4, s8 := size(4), size(8)
	if s8 < s4 {
		t.Fatalf("VC shrank with more branches: %d vs %d", s4, s8)
	}
	// Diamond-free forward branches over disjoint code double the VC:
	// expect roughly 2^4 growth from 4 to 8 branches, and reject
	// anything wildly super-exponential.
	ratio := float64(s8) / float64(s4)
	if ratio > 40 {
		t.Fatalf("VC growth ratio %f: worse than the documented 2x/branch", ratio)
	}
}
