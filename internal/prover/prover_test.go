package prover

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/vcgen"
)

// certify runs the full producer pipeline on a source program and
// checks the proof with the independent checker.
func certify(t *testing.T, src string, pol *policy.Policy, inv map[int]logic.Pred) Proof {
	t.Helper()
	a, err := alpha.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, inv)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(res.SP)
	if err != nil {
		t.Fatalf("prove failed: %v\nSP:\n%s", err, logic.Pretty(res.SP))
	}
	if err := Check(proof, res.SP); err != nil {
		t.Fatalf("proof does not check: %v", err)
	}
	return proof
}

func TestCertifyResourceAccess(t *testing.T) {
	proof := certify(t, `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, policy.ResourceAccess(), nil)
	if proof.Size() < 5 {
		t.Errorf("suspiciously small proof: %d nodes", proof.Size())
	}
}

func TestCertifyPacketReadConstantOffsets(t *testing.T) {
	// Reads at constant offsets 0, 8, 16 need instantiation of the
	// quantified precondition plus arithmetic 16 < r2 from 64 ≤ r2.
	certify(t, `
        LDQ  r4, 0(r1)
        LDQ  r5, 8(r1)
        LDQ  r6, 16(r1)
        CLR  r0
        RET
	`, policy.PacketFilter(), nil)
}

func TestCertifyScratchWrite(t *testing.T) {
	certify(t, `
        MOV  1, r4
        STQ  r4, 0(r3)
        STQ  r4, 8(r3)
        CLR  r0
        RET
	`, policy.PacketFilter(), nil)
}

func TestCertifyDataDependentOffset(t *testing.T) {
	// The Filter 4 pattern: a load at an offset computed from packet
	// contents, bounds-checked at run time as part of the algorithm.
	certify(t, `
        LDQ    r4, 8(r1)        ; word containing the IP header length
        SRL    r4, 46, r4
        AND    r4, 60, r4       ; (p[8] >> 46) & 60
        ADDQ   r4, 16, r4       ; byte offset of TCP header
        AND    r4, 0xF8, r5     ; aligned word offset (mask 248 keeps bits 3..7)
        CMPULT r5, r2, r6
        BEQ    r6, reject       ; offset beyond packet: reject
        ADDQ   r1, r5, r7
        LDQ    r8, 0(r7)        ; safe: r5 < r2, r5 aligned
        MOV    1, r0
        RET
reject: CLR   r0
        RET
	`, policy.PacketFilter(), nil)
}

func TestCertifyGuardedWriteViaTag(t *testing.T) {
	// Branch hypotheses: write only under the tag≠0 guard.
	certify(t, `
        LDQ   r1, 0(r0)
        BEQ   r1, skip
        LDQ   r2, 8(r0)
        ADDQ  r2, 1, r2
        STQ   r2, 8(r0)
skip:   RET
	`, policy.ResourceAccess(), nil)
}

func TestCertifyLoopWithInvariant(t *testing.T) {
	// A checksum-style loop over the packet: r4 is the byte offset,
	// r5 the accumulator. The invariant carries the parts of the
	// precondition the loop body needs, plus alignment of r4.
	src := `
        CLR    r4
        CLR    r5
        CMPULT r4, r2, r6
        BEQ    r6, done
loop:   ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)
        ADDQ   r5, r8, r5
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, loop
done:   MOV    r5, r0
        RET
	`
	a := alpha.MustAssemble(src)
	pol := policy.PacketFilter()
	loopPC := a.Labels["loop"]
	inv := logic.Conj(
		// The loop needs the packet-read clause and the bound on r2.
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(logic.V("i"), logic.V("r2")),
				logic.Eq(logic.And2(logic.V("i"), logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.V("r1"), logic.V("i"))),
		)),
		// Loop-variant facts.
		logic.Ne(logic.Bin{Op: logic.OpCmpUlt, L: logic.V("r4"), R: logic.V("r2")}, logic.C(0)),
		logic.Eq(logic.And2(logic.V("r4"), logic.C(7)), logic.C(0)),
		logic.Eq(logic.V("r7"), logic.Add(logic.V("r1"), logic.V("r4"))),
	)
	// r7 is assigned at the top of the loop body, so the invariant sits
	// at 'loop' where r7's equation is not yet needed... it is simpler
	// to state the invariant without r7 and let the VC substitute:
	inv = logic.Conj(
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(logic.V("i"), logic.V("r2")),
				logic.Eq(logic.And2(logic.V("i"), logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.V("r1"), logic.V("i"))),
		)),
		logic.Ne(logic.Bin{Op: logic.OpCmpUlt, L: logic.V("r4"), R: logic.V("r2")}, logic.C(0)),
		logic.Eq(logic.And2(logic.V("r4"), logic.C(7)), logic.C(0)),
	)
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, map[int]logic.Pred{loopPC: inv})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(res.SP)
	if err != nil {
		t.Fatalf("prove failed: %v\nSP:\n%s", err, logic.Pretty(res.SP))
	}
	if err := Check(proof, res.SP); err != nil {
		t.Fatalf("check failed: %v", err)
	}
}

func TestProveFailsOnUnsafeProgram(t *testing.T) {
	// Reading beyond the precondition's guarantees must not certify.
	a := alpha.MustAssemble(`
        LDQ  r1, 16(r0)      ; precondition only covers r0 and r0+8
        RET
	`)
	pol := policy.ResourceAccess()
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(res.SP); err == nil {
		t.Fatal("unsafe program certified")
	}
}

func TestProveFailsOnUncheckedDataOffset(t *testing.T) {
	// Filter 4's pattern *without* the bounds check must fail.
	a := alpha.MustAssemble(`
        LDQ    r4, 8(r1)
        SRL    r4, 46, r4
        AND    r4, 60, r4
        ADDQ   r4, 16, r4
        AND    r4, 0xF8, r5
        ADDQ   r1, r5, r7
        LDQ    r8, 0(r7)
        RET
	`)
	pol := policy.PacketFilter()
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(res.SP); err == nil {
		t.Fatal("missing bounds check certified")
	}
}

func TestProveFailsOnUnalignedScratchWrite(t *testing.T) {
	a := alpha.MustAssemble(`
        STQ  r4, 4(r3)
        RET
	`)
	pol := policy.PacketFilter()
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(res.SP); err == nil {
		t.Fatal("unaligned write certified")
	}
}

func TestProveFailsOnWriteToPacket(t *testing.T) {
	a := alpha.MustAssemble(`
        STQ  r4, 0(r1)
        RET
	`)
	pol := policy.PacketFilter()
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(res.SP); err == nil {
		t.Fatal("write to read-only packet certified")
	}
}

func TestCheckerRejectsBogusProofs(t *testing.T) {
	goal := logic.RdP(logic.V("r0"))
	cases := []Proof{
		TrueI{},
		Hyp{"nope"},
		Ground{Goal: goal},
		Conv{To: goal, P: TrueI{}},
		Axiom{Name: "no_such_axiom"},
		Axiom{Name: "lt_le_trans", Args: []logic.Expr{logic.C(1)}},
		AndEL{TrueI{}},
		ImpE{TrueI{}, TrueI{}},
		AllE{All: TrueI{}, Inst: logic.C(0)},
	}
	for i, p := range cases {
		if err := Check(p, goal); err == nil {
			t.Errorf("case %d: bogus proof accepted", i)
		}
	}
}

func TestCheckerGroundEvaluation(t *testing.T) {
	ok := Ground{Goal: logic.Ult(logic.C(8), logic.C(64))}
	if err := Check(ok, logic.Ult(logic.C(8), logic.C(64))); err != nil {
		t.Errorf("true ground fact rejected: %v", err)
	}
	bad := Ground{Goal: logic.Ult(logic.C(64), logic.C(8))}
	if err := Check(bad, logic.Ult(logic.C(64), logic.C(8))); err == nil {
		t.Error("false ground fact accepted")
	}
}

func TestCheckerEigenvariableCondition(t *testing.T) {
	// ⊢ rd(x) ⇒ ∀x. rd(x) must NOT check: x is free in the hypothesis.
	bad := ImpI{
		Name: "h",
		Ante: logic.RdP(logic.V("x")),
		Body: AllI{Var: "x", Body: Hyp{"h"}},
	}
	goal := logic.Implies(logic.RdP(logic.V("x")), logic.All("x", logic.RdP(logic.V("x"))))
	if err := Check(bad, goal); err == nil {
		t.Fatal("eigenvariable violation accepted")
	}
}

func TestAxiomSoundnessByEvaluation(t *testing.T) {
	// Every axiom schema must be valid in the 64-bit model: sample many
	// variable assignments and check premises ⇒ conclusion. Memory
	// axioms are excluded (sel/upd are not ground-evaluable).
	rng := newSplitMix(0xfeed)
	checked := 0
	for name, s := range Axioms {
		// Axioms over the uninterpreted rd/wr/sel/upd symbols are not
		// ground-evaluable; they are justified by the memory model
		// directly (and exercised by the machine tests).
		if !schemaEvaluable(s) {
			continue
		}
		checked++
		for trial := 0; trial < 20000; trial++ {
			env := map[string]uint64{}
			for _, p := range s.Params {
				switch rng.next() % 4 {
				case 0:
					env[p] = rng.next() % 16
				case 1:
					env[p] = ^uint64(0) - rng.next()%16
				default:
					env[p] = rng.next()
				}
			}
			premsHold := true
			for _, prem := range s.Prems {
				v, ok := logic.EvalPred(prem, env)
				if !ok {
					t.Fatalf("axiom %s: premise not evaluable", name)
				}
				if !v {
					premsHold = false
					break
				}
			}
			if !premsHold {
				continue
			}
			v, ok := logic.EvalPred(s.Concl, env)
			if !ok {
				t.Fatalf("axiom %s: conclusion not evaluable", name)
			}
			if !v {
				t.Fatalf("axiom %s UNSOUND at %v", name, env)
			}
		}
	}
	if checked < 15 {
		t.Errorf("only %d evaluable axioms fuzzed; expected most of the rule set", checked)
	}
}

// schemaEvaluable reports whether every premise and the conclusion of
// a schema are ground-evaluable predicates.
func schemaEvaluable(s *Schema) bool {
	env := map[string]uint64{}
	for _, p := range s.Params {
		env[p] = 1
	}
	if _, ok := logic.EvalPred(s.Concl, env); !ok {
		return false
	}
	for _, prem := range s.Prems {
		if _, ok := logic.EvalPred(prem, env); !ok {
			return false
		}
	}
	return true
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestProofSizeAccounting(t *testing.T) {
	p := AndI{TrueI{}, ImpI{Name: "h", Ante: logic.True, Body: Hyp{"h"}}}
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
}

func TestInferExposed(t *testing.T) {
	p := AndI{TrueI{}, TrueI{}}
	got, err := Infer(p)
	if err != nil {
		t.Fatal(err)
	}
	if !logic.PredEqual(got, logic.And{L: logic.True, R: logic.True}) {
		t.Fatalf("Infer = %s", got)
	}
}

func TestFormatFigure6Style(t *testing.T) {
	// The §2.2 proof, rendered as a Figure 6-style tree: it must show
	// the characteristic inferences — implication introduction of the
	// precondition, hypothesis use for the tag test, conjunction
	// introductions for the rd/wr obligations.
	proof := certify(t, `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, policy.ResourceAccess(), nil)
	out := Format(proof)
	for _, frag := range []string{"all_i", "imp_i", "and_i", "rd(r0)", "wr((r0 + 8))"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted proof missing %q:\n%s", frag, out)
		}
	}
}

func TestSimplifyPreservesValidity(t *testing.T) {
	pol := policy.PacketFilter()
	for _, src := range []string{
		"LDQ r4, 0(r1)\nLDQ r5, 8(r1)\nCLR r0\nRET",
		`
        LDQ    r4, 8(r1)
        SRL    r4, 46, r4
        AND    r4, 60, r4
        ADDQ   r4, 16, r4
        AND    r4, 0xF8, r5
        CMPULT r5, r2, r6
        BEQ    r6, out
        ADDQ   r1, r5, r6
        LDQ    r0, 0(r6)
out:    RET`,
	} {
		a := alpha.MustAssemble(src)
		res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, nil)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := Prove(res.SP)
		if err != nil {
			t.Fatal(err)
		}
		simp := Simplify(proof)
		if err := Check(simp, res.SP); err != nil {
			t.Fatalf("simplified proof no longer checks: %v", err)
		}
		if simp.Size() > proof.Size() {
			t.Errorf("Simplify grew the proof: %d -> %d", proof.Size(), simp.Size())
		}
	}
}

func TestSimplifyDropsIdentityConv(t *testing.T) {
	inner := Ground{Goal: logic.Ult(logic.C(1), logic.C(2))}
	p := Conv{To: logic.Ult(logic.C(1), logic.C(2)), P: inner}
	s := Simplify(p)
	if _, still := s.(Conv); still {
		t.Fatalf("identity conversion survived: %#v", s)
	}
	if err := Check(s, logic.Ult(logic.C(1), logic.C(2))); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyProjectsPairs(t *testing.T) {
	pair := AndI{TrueI{}, Ground{Goal: logic.Ult(logic.C(1), logic.C(2))}}
	if got := Simplify(AndEL{pair}); got != (TrueI{}) {
		t.Fatalf("and_el(and_i) not projected: %#v", got)
	}
	if got := Simplify(AndER{pair}); got != (Ground{Goal: logic.Ult(logic.C(1), logic.C(2))}) {
		t.Fatalf("and_er(and_i) not projected: %#v", got)
	}
}

func TestOrGoalsAndCaseSplit(t *testing.T) {
	r0 := logic.V("r0")
	addr8 := logic.Add(r0, logic.C(8))
	cases := []struct {
		name string
		goal logic.Pred
		ok   bool
	}{
		{
			"or intro left",
			logic.Implies(logic.RdP(r0), logic.Or{L: logic.RdP(r0), R: logic.WrP(r0)}),
			true,
		},
		{
			"or intro right",
			logic.Implies(logic.WrP(r0), logic.Or{L: logic.RdP(addr8), R: logic.WrP(r0)}),
			true,
		},
		{
			"case split with rd-from-wr",
			logic.Implies(
				logic.Or{L: logic.WrP(r0), R: logic.WrP(addr8)},
				logic.Or{L: logic.RdP(r0), R: logic.RdP(addr8)},
			),
			true,
		},
		{
			"case split both branches same atom",
			logic.Implies(
				logic.Or{L: logic.And{L: logic.RdP(r0), R: logic.WrP(addr8)},
					R: logic.And{L: logic.RdP(r0), R: logic.WrP(r0)}},
				logic.RdP(r0),
			),
			true,
		},
		{
			"unprovable disjunction",
			logic.Or{L: logic.RdP(r0), R: logic.WrP(r0)},
			false,
		},
		{
			"ex falso from false hypothesis",
			logic.Implies(logic.False, logic.WrP(r0)),
			true,
		},
		{
			"ex falso from contradictory branch",
			// 1 = 0 normalizes to false, so the hypothesis context is
			// absurd and anything follows.
			logic.Implies(logic.Eq(logic.C(1), logic.C(0)), logic.RdP(r0)),
			true,
		},
	}
	for _, c := range cases {
		goal := logic.AllOf(logic.SortedFreeVars(c.goal), c.goal)
		proof, err := Prove(goal)
		if c.ok && err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: proved unprovable goal", c.name)
			}
			continue
		}
		if err := Check(proof, goal); err != nil {
			t.Errorf("%s: proof does not check: %v", c.name, err)
		}
	}
}

func TestCheckerOrRules(t *testing.T) {
	rd := logic.RdP(logic.V("r0"))
	wr := logic.WrP(logic.V("r0"))
	or := logic.Or{L: rd, R: wr}

	// Well-formed case analysis.
	good := ImpI{Name: "d", Ante: or, Body: OrE{
		Disj: Hyp{"d"}, Name: "h",
		Left:  OrIL{Right: wr, P: Hyp{"h"}},
		Right: OrIR{Left: rd, P: Hyp{"h"}},
	}}
	if err := Check(good, logic.Implies(or, or)); err != nil {
		t.Fatalf("good or proof rejected: %v", err)
	}

	// Branches proving different predicates must be rejected.
	bad := ImpI{Name: "d", Ante: or, Body: OrE{
		Disj: Hyp{"d"}, Name: "h",
		Left:  Hyp{"h"}, // proves rd
		Right: Hyp{"h"}, // proves wr — mismatch
	}}
	if err := Check(bad, logic.Implies(or, rd)); err == nil {
		t.Fatal("mismatched or_e branches accepted")
	}

	// false_e must demand an actual proof of false.
	if err := Check(FalseE{Goal: rd, P: TrueI{}}, rd); err == nil {
		t.Fatal("false_e over true accepted")
	}
}
