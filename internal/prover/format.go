package prover

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Format renders a proof as an indented natural-deduction tree in the
// style of the paper's Figure 6: each node shows its rule and the
// predicate it concludes. It is used by pccasm -dump-proof and the
// documentation examples.
func Format(p Proof) string {
	var b strings.Builder
	formatNode(&b, p, map[string]logic.Pred{}, 0)
	return b.String()
}

func formatNode(b *strings.Builder, p Proof, ctx map[string]logic.Pred, depth int) {
	indent := strings.Repeat("  ", depth)
	concl, err := infer(p, ctx, nil)
	conclStr := "<ill-formed>"
	if err == nil {
		conclStr = concl.String()
	}
	switch p := p.(type) {
	case Hyp:
		fmt.Fprintf(b, "%s[%s] %s\n", indent, p.Name, conclStr)
	case TrueI:
		fmt.Fprintf(b, "%strue_i: %s\n", indent, conclStr)
	case AndI:
		fmt.Fprintf(b, "%sand_i: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
		formatNode(b, p.Q, ctx, depth+1)
	case AndEL:
		fmt.Fprintf(b, "%sand_el: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case AndER:
		fmt.Fprintf(b, "%sand_er: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case ImpI:
		fmt.Fprintf(b, "%simp_i [%s: %s]: %s\n", indent, p.Name, p.Ante, conclStr)
		inner := make(map[string]logic.Pred, len(ctx)+1)
		for k, v := range ctx {
			inner[k] = v
		}
		inner[p.Name] = p.Ante
		formatNode(b, p.Body, inner, depth+1)
	case ImpE:
		fmt.Fprintf(b, "%simp_e: %s\n", indent, conclStr)
		formatNode(b, p.PQ, ctx, depth+1)
		formatNode(b, p.P, ctx, depth+1)
	case AllI:
		fmt.Fprintf(b, "%sall_i %s: %s\n", indent, p.Var, conclStr)
		formatNode(b, p.Body, ctx, depth+1)
	case AllE:
		fmt.Fprintf(b, "%sall_e [%s]: %s\n", indent, p.Inst, conclStr)
		formatNode(b, p.All, ctx, depth+1)
	case Ground:
		fmt.Fprintf(b, "%sarith: %s\n", indent, conclStr)
	case Conv:
		fmt.Fprintf(b, "%sconv: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case OrIL:
		fmt.Fprintf(b, "%sor_il: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case OrIR:
		fmt.Fprintf(b, "%sor_ir: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case OrE:
		fmt.Fprintf(b, "%sor_e [%s]: %s\n", indent, p.Name, conclStr)
		formatNode(b, p.Disj, ctx, depth+1)
		if d, err := infer(p.Disj, ctx, nil); err == nil {
			if or, ok := d.(logic.Or); ok {
				inner := make(map[string]logic.Pred, len(ctx)+1)
				for k, v := range ctx {
					inner[k] = v
				}
				inner[p.Name] = or.L
				formatNode(b, p.Left, inner, depth+1)
				inner[p.Name] = or.R
				formatNode(b, p.Right, inner, depth+1)
			}
		}
	case FalseE:
		fmt.Fprintf(b, "%sfalse_e: %s\n", indent, conclStr)
		formatNode(b, p.P, ctx, depth+1)
	case Axiom:
		fmt.Fprintf(b, "%s%s: %s\n", indent, p.Name, conclStr)
		for _, prem := range p.Prems {
			formatNode(b, prem, ctx, depth+1)
		}
	default:
		fmt.Fprintf(b, "%s<unknown %T>\n", indent, p)
	}
}

// Simplify removes proof noise without changing what is proved:
// identity conversions (Conv to the predicate already proved), nested
// conversions, and projections of explicit pairs. The result checks
// against the same goal. This is a producer-side optimization — one of
// the §2.3 "optimizations in the representation of the proofs" — and
// the ablation benchmarks report what it saves.
func Simplify(p Proof) Proof { return simplify(p, map[string]logic.Pred{}) }

func simplify(p Proof, ctx map[string]logic.Pred) Proof {
	switch p := p.(type) {
	case Hyp, TrueI, Ground:
		return p
	case AndI:
		return AndI{simplify(p.P, ctx), simplify(p.Q, ctx)}
	case AndEL:
		inner := simplify(p.P, ctx)
		if pair, ok := inner.(AndI); ok {
			return pair.P
		}
		return AndEL{inner}
	case AndER:
		inner := simplify(p.P, ctx)
		if pair, ok := inner.(AndI); ok {
			return pair.Q
		}
		return AndER{inner}
	case ImpI:
		inner := make(map[string]logic.Pred, len(ctx)+1)
		for k, v := range ctx {
			inner[k] = v
		}
		inner[p.Name] = p.Ante
		return ImpI{p.Name, p.Ante, simplify(p.Body, inner)}
	case ImpE:
		return ImpE{simplify(p.PQ, ctx), simplify(p.P, ctx)}
	case AllI:
		return AllI{p.Var, simplify(p.Body, ctx)}
	case AllE:
		return AllE{simplify(p.All, ctx), p.Inst}
	case Conv:
		inner := simplify(p.P, ctx)
		// Collapse nested conversions: conv only needs the outermost
		// target.
		if c, ok := inner.(Conv); ok {
			inner = c.P
		}
		// Drop the conversion entirely when the inner proof already
		// proves the target predicate syntactically.
		if got, err := infer(inner, ctx, nil); err == nil && logic.PredEqual(got, p.To) {
			return inner
		}
		return Conv{p.To, inner}
	case OrIL:
		return OrIL{p.Right, simplify(p.P, ctx)}
	case OrIR:
		return OrIR{p.Left, simplify(p.P, ctx)}
	case OrE:
		d := simplify(p.Disj, ctx)
		dPred, err := infer(d, ctx, nil)
		if err != nil {
			return p
		}
		or, ok := dPred.(logic.Or)
		if !ok {
			return p
		}
		inner := make(map[string]logic.Pred, len(ctx)+1)
		for k, v := range ctx {
			inner[k] = v
		}
		inner[p.Name] = or.L
		l := simplify(p.Left, inner)
		inner[p.Name] = or.R
		r := simplify(p.Right, inner)
		return OrE{d, p.Name, l, r}
	case FalseE:
		return FalseE{p.Goal, simplify(p.P, ctx)}
	case Axiom:
		prems := make([]Proof, len(p.Prems))
		for i, q := range p.Prems {
			prems[i] = simplify(q, ctx)
		}
		return Axiom{p.Name, p.Args, prems}
	}
	return p
}
