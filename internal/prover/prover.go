package prover

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// This file implements the automatic theorem prover that certifies
// programs: a syntax-directed prover for the ∧/⇒/∀ skeleton of safety
// predicates with a depth-bounded search for the atomic leaves
// (hypothesis matching, instantiation of quantified preconditions, and
// chaining through the published ordering/masking axioms). It is the
// counterpart of the paper's "admittedly a toy" prover — and like the
// paper's, it certifies every shipped packet filter fully
// automatically, emitting checkable proof terms.

// rule is a hypothesis in clausal view: ∀vars. ante ⇒ concl, any part
// of which may be absent.
type rule struct {
	vars  []string
	ante  logic.Pred // nil when the hypothesis is unconditional
	concl logic.Pred
	proof Proof // proves the original (possibly quantified) hypothesis
}

type context struct {
	rules   []rule
	hypSeq  int
	inPath  map[string]bool // atomic goals on the current search path
	hypVars map[string]bool // free variables of all hypotheses (AllI freshness)
	split   map[int]bool    // disjunctive hypotheses already split on this path
	extra   map[string]*Schema
}

func newContext() *context {
	return &context{inPath: map[string]bool{}, hypVars: map[string]bool{}, split: map[int]bool{}}
}

func (c *context) clone() *context {
	out := &context{
		rules:   append([]rule(nil), c.rules...),
		hypSeq:  c.hypSeq,
		inPath:  c.inPath, // shared: path is global to the search
		hypVars: map[string]bool{},
		split:   map[int]bool{},
		extra:   c.extra,
	}
	for k := range c.hypVars {
		out.hypVars[k] = true
	}
	for k := range c.split {
		out.split[k] = true
	}
	return out
}

// addHyp decomposes a hypothesis into rules, pre-deriving the
// relational facts implied by Alpha compare-instruction results.
func (c *context) addHyp(p logic.Pred, proof Proof) {
	for v := range logic.FreeVars(p) {
		c.hypVars[v] = true
	}
	c.decompose(p, proof)
}

func (c *context) decompose(p logic.Pred, proof Proof) {
	switch p := p.(type) {
	case logic.TruePred:
		// nothing to learn
	case logic.And:
		c.decompose(p.L, AndEL{proof})
		c.decompose(p.R, AndER{proof})
	default:
		c.addRule(p, proof)
	}
}

func (c *context) addRule(p logic.Pred, proof Proof) {
	r := rule{proof: proof}
	body := p
	for {
		fa, ok := body.(logic.Forall)
		if !ok {
			break
		}
		r.vars = append(r.vars, fa.Var)
		body = fa.Body
	}
	if imp, ok := body.(logic.Imp); ok {
		r.ante = imp.L
		body = imp.R
	}
	r.concl = body
	c.rules = append(c.rules, r)

	// Derived facts: only for unconditional, unquantified comparisons.
	if len(r.vars) == 0 && r.ante == nil {
		c.deriveCmpFacts(r)
	}
}

// deriveCmpFacts turns facts about compare-instruction results into the
// relations they decide, and adds symmetric variants of (dis)equalities.
func (c *context) deriveCmpFacts(r rule) {
	cmp, ok := r.concl.(logic.Cmp)
	if !ok {
		return
	}
	zero := logic.Const{Val: 0}
	if rc, isC := cmp.R.(logic.Const); isC && rc.Val == 0 {
		if b, isB := cmp.L.(logic.Bin); isB {
			var axiom string
			switch {
			case b.Op == logic.OpCmpEq && cmp.Op == logic.CmpNe:
				axiom = "cmpeq_true"
			case b.Op == logic.OpCmpEq && cmp.Op == logic.CmpEq:
				axiom = "cmpeq_false"
			case b.Op == logic.OpCmpUlt && cmp.Op == logic.CmpNe:
				axiom = "cmpult_true"
			case b.Op == logic.OpCmpUlt && cmp.Op == logic.CmpEq:
				axiom = "cmpult_false"
			case b.Op == logic.OpCmpUle && cmp.Op == logic.CmpNe:
				axiom = "cmpule_true"
			case b.Op == logic.OpCmpUle && cmp.Op == logic.CmpEq:
				axiom = "cmpule_false"
			}
			if axiom != "" {
				proof := Axiom{Name: axiom, Args: []logic.Expr{b.L, b.R}, Prems: []Proof{r.proof}}
				concl := Axioms[axiom].Instantiate(Axioms[axiom].Concl, []logic.Expr{b.L, b.R})
				c.rules = append(c.rules, rule{concl: concl, proof: proof})
			}
		}
	}
	_ = zero
	switch cmp.Op {
	case logic.CmpEq:
		c.rules = append(c.rules, rule{
			concl: logic.Eq(cmp.R, cmp.L),
			proof: Axiom{Name: "eq_sym", Args: []logic.Expr{cmp.L, cmp.R}, Prems: []Proof{r.proof}},
		})
	case logic.CmpNe:
		c.rules = append(c.rules, rule{
			concl: logic.Ne(cmp.R, cmp.L),
			proof: Axiom{Name: "ne_sym", Args: []logic.Expr{cmp.L, cmp.R}, Prems: []Proof{r.proof}},
		})
	}
}

// ProveError reports a failed proof search with the sub-goal that got
// stuck — the point where the paper's workflow would ask the programmer
// for a new arithmetic axiom.
type ProveError struct {
	Goal logic.Pred
	Why  string
}

// Error implements the error interface.
func (e *ProveError) Error() string {
	return fmt.Sprintf("prover: cannot prove %s (%s)", e.Goal, e.Why)
}

const defaultDepth = 12

// Prove searches for a proof of the (closed) safety predicate goal
// using the base rule set. The returned proof checks against goal with
// Check and, after LF encoding, with the LF validator.
func Prove(goal logic.Pred) (Proof, error) { return ProveWith(goal, nil) }

// ProveWith is Prove with additional (policy-published) axiom schemas
// available: the paper's "user-provided axioms", carried by the policy
// so that the consumer's validator knows them too.
func ProveWith(goal logic.Pred, extra map[string]*Schema) (Proof, error) {
	ctx := newContext()
	ctx.extra = extra
	p, err := prove(logic.NormPred(goal), ctx, defaultDepth)
	if err != nil {
		return nil, err
	}
	if !logic.PredEqual(logic.NormPred(goal), goal) {
		p = Conv{To: goal, P: p}
	}
	return p, nil
}

// prove handles the connective skeleton. Invariant: on success,
// infer(proof) is PredEqual to goal.
func prove(goal logic.Pred, ctx *context, depth int) (Proof, error) {
	switch g := goal.(type) {
	case logic.TruePred:
		return TrueI{}, nil
	case logic.And:
		l, err := prove(g.L, ctx, depth)
		if err != nil {
			return nil, err
		}
		r, err := prove(g.R, ctx, depth)
		if err != nil {
			return nil, err
		}
		return AndI{l, r}, nil
	case logic.Imp:
		ctx.hypSeq++
		name := fmt.Sprintf("h%d", ctx.hypSeq)
		inner := ctx.clone()
		inner.addHyp(g.L, Hyp{name})
		body, err := prove(g.R, inner, depth)
		if err != nil {
			return nil, err
		}
		ctx.hypSeq = inner.hypSeq
		return ImpI{Name: name, Ante: g.L, Body: body}, nil
	case logic.Forall:
		if ctx.hypVars[g.Var] {
			return nil, &ProveError{goal, "quantified variable occurs free in a hypothesis"}
		}
		body, err := prove(g.Body, ctx, depth)
		if err != nil {
			return nil, err
		}
		return AllI{Var: g.Var, Body: body}, nil
	case logic.Or:
		// Try each introduction, then fall back to case analysis on a
		// disjunctive hypothesis.
		if l, err := prove(g.L, ctx, depth-1); err == nil {
			return OrIL{Right: g.R, P: l}, nil
		}
		if r, err := prove(g.R, ctx, depth-1); err == nil {
			return OrIR{Left: g.L, P: r}, nil
		}
		return caseSplit(goal, ctx, depth)
	case logic.FalsePred:
		if p, err := proveFalse(ctx); err == nil {
			return p, nil
		}
		return caseSplit(goal, ctx, depth)
	default:
		return proveAtom(goal, ctx, depth)
	}
}

// proveAtom handles Cmp, Rd and Wr goals.
func proveAtom(goal logic.Pred, ctx *context, depth int) (Proof, error) {
	if depth <= 0 {
		return nil, &ProveError{goal, "depth bound exceeded"}
	}

	// Normalize first; if that changes the goal, prove the normal form
	// and convert back. Ground truths (e.g. 0 ≤ e, (x&~7)&7 = 0)
	// normalize to true and are discharged here.
	if ng := logic.NormPred(goal); !logic.PredEqual(ng, goal) {
		p, err := prove(ng, ctx, depth)
		if err != nil {
			return nil, err
		}
		return Conv{To: goal, P: p}, nil
	}

	key := goal.String()
	if ctx.inPath[key] {
		return nil, &ProveError{goal, "cyclic sub-goal"}
	}
	ctx.inPath[key] = true
	defer delete(ctx.inPath, key)

	// Ground decision.
	if v, ok := logic.EvalPred(goal, map[string]uint64{}); ok {
		if v {
			return Ground{Goal: goal}, nil
		}
		return nil, &ProveError{goal, "ground predicate is false"}
	}

	// Direct facts.
	for _, r := range ctx.rules {
		if len(r.vars) == 0 && r.ante == nil && logic.PredEqual(r.concl, goal) {
			return r.proof, nil
		}
	}

	// Quantified / conditional hypotheses.
	if p, err := applyRules(goal, ctx, depth); err == nil {
		return p, nil
	}

	// Policy-published axiom schemas, applied by matching the goal
	// against each conclusion (base arithmetic axioms have dedicated
	// search strategies below; this generic step is what makes new
	// user axioms usable without touching the prover).
	if p, err := applyExtraAxioms(goal, ctx, depth); err == nil {
		return p, nil
	}

	// Arithmetic chaining.
	if cmp, ok := goal.(logic.Cmp); ok {
		if p, err := proveCmp(cmp, ctx, depth); err == nil {
			return p, nil
		}
	}

	// rd from wr: the paper's wr(a) subsumes readability.
	if rd, ok := goal.(logic.Rd); ok {
		if p, err := proveAtom(logic.WrP(rd.Addr), ctx, depth-1); err == nil {
			return Axiom{"wr_rd", []logic.Expr{rd.Addr}, []Proof{p}}, nil
		}
	}

	// Case analysis on a disjunctive hypothesis.
	if p, err := caseSplit(goal, ctx, depth); err == nil {
		return p, nil
	}

	// Ex falso: a contradictory context proves anything.
	if p, err := proveFalse(ctx); err == nil {
		return FalseE{Goal: goal, P: p}, nil
	}

	return nil, &ProveError{goal, "no applicable hypothesis or axiom"}
}

// proveFalse derives a contradiction from the context: an explicit
// false hypothesis (the normalizer produces one from unsatisfiable
// branch conditions) or a pair of contradictory ordering facts.
func proveFalse(ctx *context) (Proof, error) {
	var eqs, nes, lts []rule
	for _, r := range ctx.rules {
		if len(r.vars) != 0 || r.ante != nil {
			continue
		}
		if logic.PredEqual(r.concl, logic.False) {
			return r.proof, nil
		}
		if c, ok := r.concl.(logic.Cmp); ok {
			switch c.Op {
			case logic.CmpEq:
				eqs = append(eqs, r)
			case logic.CmpNe:
				nes = append(nes, r)
			case logic.CmpUlt:
				lts = append(lts, r)
			}
		}
	}
	for _, e := range eqs {
		ec := e.concl.(logic.Cmp)
		for _, n := range nes {
			nc := n.concl.(logic.Cmp)
			if logic.ExprEqual(ec.L, nc.L) && logic.ExprEqual(ec.R, nc.R) {
				return Axiom{"eq_ne_absurd", []logic.Expr{ec.L, ec.R},
					[]Proof{e.proof, n.proof}}, nil
			}
		}
	}
	for _, a := range lts {
		ac := a.concl.(logic.Cmp)
		for _, b := range lts {
			bc := b.concl.(logic.Cmp)
			if logic.ExprEqual(ac.L, bc.R) && logic.ExprEqual(ac.R, bc.L) {
				return Axiom{"lt_lt_absurd", []logic.Expr{ac.L, ac.R},
					[]Proof{a.proof, b.proof}}, nil
			}
		}
	}
	return nil, &ProveError{logic.False, "no contradiction in context"}
}

// caseSplit proves goal by case analysis on some disjunctive
// hypothesis in the context.
func caseSplit(goal logic.Pred, ctx *context, depth int) (Proof, error) {
	if depth <= 0 {
		return nil, &ProveError{goal, "depth bound exceeded"}
	}
	for i, r := range ctx.rules {
		if len(r.vars) != 0 || r.ante != nil {
			continue
		}
		or, ok := r.concl.(logic.Or)
		if !ok || ctx.split[i] {
			continue
		}
		ctx.hypSeq++
		name := fmt.Sprintf("h%d", ctx.hypSeq)
		branch := func(h logic.Pred) (Proof, error) {
			inner := ctx.clone()
			inner.split[i] = true
			// The goal legitimately recurs inside the branch with a
			// richer context; start a fresh cycle-guard path.
			// Termination holds because each disjunction splits at
			// most once per path.
			inner.inPath = map[string]bool{}
			inner.addHyp(h, Hyp{name})
			p, err := prove(goal, inner, depth-1)
			ctx.hypSeq = inner.hypSeq
			return p, err
		}
		l, err := branch(or.L)
		if err != nil {
			continue
		}
		rr, err := branch(or.R)
		if err != nil {
			continue
		}
		return OrE{Disj: r.proof, Name: name, Left: l, Right: rr}, nil
	}
	return nil, &ProveError{goal, "no disjunctive hypothesis to split"}
}

// applyExtraAxioms tries each policy-published schema whose conclusion
// matches the goal, proving the instantiated premises recursively.
func applyExtraAxioms(goal logic.Pred, ctx *context, depth int) (Proof, error) {
	names := make([]string, 0, len(ctx.extra))
	for name := range ctx.extra {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := ctx.extra[name]
		vars := varSet(sc.Params)
		bind := map[string]logic.Expr{}
		if !matchPred(sc.Concl, goal, vars, bind) {
			continue
		}
		args := make([]logic.Expr, len(sc.Params))
		ok := true
		for i, v := range sc.Params {
			e, bound := bind[v]
			if !bound {
				ok = false // parameter not inferable from the goal
				break
			}
			args[i] = e
		}
		if !ok {
			continue
		}
		prems := make([]Proof, len(sc.Prems))
		for i, prem := range sc.Prems {
			inst := sc.Instantiate(prem, args)
			p, err := proveExact(inst, ctx, depth-1)
			if err != nil {
				ok = false
				break
			}
			prems[i] = p
		}
		if !ok {
			continue
		}
		proof := Proof(Axiom{sc.Name, args, prems})
		concl := sc.Instantiate(sc.Concl, args)
		if !logic.PredEqual(concl, goal) {
			if !logic.AlphaEqual(logic.NormPred(concl), logic.NormPred(goal)) {
				continue
			}
			proof = Conv{To: goal, P: proof}
		}
		return proof, nil
	}
	return nil, &ProveError{goal, "no applicable policy axiom"}
}

// proveExact proves g exactly (converting back if normalization
// changes it), like proveCmp's sub helper but usable from any search.
func proveExact(g logic.Pred, ctx *context, depth int) (Proof, error) {
	ng := logic.NormPred(g)
	p, err := prove(ng, ctx, depth)
	if err != nil {
		return nil, err
	}
	if !logic.PredEqual(ng, g) {
		p = Conv{To: g, P: p}
	}
	return p, nil
}

// applyRules tries each quantified or conditional hypothesis whose
// conclusion matches the goal.
func applyRules(goal logic.Pred, ctx *context, depth int) (Proof, error) {
	for _, r := range ctx.rules {
		if len(r.vars) == 0 && r.ante == nil {
			continue
		}
		bind := map[string]logic.Expr{}
		if !matchPred(r.concl, goal, varSet(r.vars), bind) {
			continue
		}
		insts := make([]logic.Expr, len(r.vars))
		ok := true
		for i, v := range r.vars {
			e, bound := bind[v]
			if !bound {
				ok = false
				break
			}
			insts[i] = e
		}
		if !ok {
			continue
		}

		proof := r.proof
		for i, v := range r.vars {
			_ = v
			proof = AllE{All: proof, Inst: insts[i]}
		}
		conclInst := substSeq(r.concl, r.vars, insts)
		if r.ante != nil {
			anteInst := substSeq(r.ante, r.vars, insts)
			anteProof, err := prove(anteInst, ctx, depth-1)
			if err != nil {
				continue
			}
			proof = ImpE{PQ: proof, P: anteProof}
		}
		if !logic.PredEqual(conclInst, goal) {
			if !logic.AlphaEqual(logic.NormPred(conclInst), logic.NormPred(goal)) {
				continue
			}
			proof = Conv{To: goal, P: proof}
		}
		return proof, nil
	}
	return nil, &ProveError{goal, "no matching rule"}
}

func substSeq(p logic.Pred, vars []string, insts []logic.Expr) logic.Pred {
	for i, v := range vars {
		p = logic.Subst(p, v, insts[i])
	}
	return p
}

func varSet(vs []string) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// proveCmp chains ordering facts through the published axioms.
func proveCmp(goal logic.Cmp, ctx *context, depth int) (Proof, error) {
	facts := func(op logic.CmpOp) []rule {
		var out []rule
		for _, r := range ctx.rules {
			if len(r.vars) != 0 || r.ante != nil {
				continue
			}
			if c, ok := r.concl.(logic.Cmp); ok && c.Op == op {
				out = append(out, r)
			}
		}
		return out
	}
	// sub proves a constructed sub-goal exactly: it proves the normal
	// form and converts back if normalization changed the predicate.
	sub := func(g logic.Pred) (Proof, error) {
		ng := logic.NormPred(g)
		p, err := prove(ng, ctx, depth-1)
		if err != nil {
			return nil, err
		}
		if !logic.PredEqual(ng, g) {
			p = Conv{To: g, P: p}
		}
		return p, nil
	}

	switch goal.Op {
	case logic.CmpUlt:
		a, b := goal.L, goal.R
		// a < x ∧ x ≤ b.
		for _, f := range facts(logic.CmpUlt) {
			c := f.concl.(logic.Cmp)
			if logic.ExprEqual(c.L, a) {
				if rest, err := sub(logic.Ule(c.R, b)); err == nil {
					return Axiom{"lt_le_trans", []logic.Expr{a, c.R, b}, []Proof{f.proof, rest}}, nil
				}
			}
			if logic.ExprEqual(c.R, b) {
				if rest, err := sub(logic.Ule(a, c.L)); err == nil {
					return Axiom{"le_lt_trans", []logic.Expr{a, c.L, b}, []Proof{rest, f.proof}}, nil
				}
			}
		}
		// a ≤ x ∧ x < b, or a < x ∧ x ≤ b with the ≤ fact known.
		for _, f := range facts(logic.CmpUle) {
			c := f.concl.(logic.Cmp)
			if logic.ExprEqual(c.L, a) {
				if rest, err := sub(logic.Ult(c.R, b)); err == nil {
					return Axiom{"le_lt_trans", []logic.Expr{a, c.R, b}, []Proof{f.proof, rest}}, nil
				}
			}
			if logic.ExprEqual(c.R, b) {
				if rest, err := sub(logic.Ult(a, c.L)); err == nil {
					return Axiom{"lt_le_trans", []logic.Expr{a, c.L, b}, []Proof{rest, f.proof}}, nil
				}
			}
		}

		// (i << 3) < n from the VIEW-style subrange check
		// i < (n+7)>>3 (plus n ≤ 2^63 from the precondition).
		if shl, ok := a.(logic.Bin); ok && shl.Op == logic.OpShl {
			if c, isC := shl.R.(logic.Const); isC && c.Val == 3 {
				ceil := logic.NormExpr(logic.Shr(logic.Add(b, logic.C(7)), logic.C(3)))
				p1, err1 := sub(logic.Ult(shl.L, ceil))
				p2, err2 := sub(logic.Ule(b, logic.C(1<<63)))
				if err1 == nil && err2 == nil {
					proof := Axiom{"word_index_bound", []logic.Expr{shl.L, b}, []Proof{p1, p2}}
					// The axiom's premise is stated over the
					// unnormalized ceiling; reconcile via Conv.
					want := logic.Ult(shl.L, logic.Shr(logic.Add(b, logic.C(7)), logic.C(3)))
					if !logic.PredEqual(logic.Ult(shl.L, ceil), want) {
						proof.Prems[0] = Conv{To: want, P: p1}
					}
					return proof, nil
				}
			}
		}

		// (e & c) < b for constants c < b (the SFI segment bound):
		// band_ub then a ground strict step.
		if band, ok := a.(logic.Bin); ok && band.Op == logic.OpAnd {
			if mc, ok := band.R.(logic.Const); ok {
				if bc, ok := b.(logic.Const); ok && mc.Val < bc.Val {
					ub := Axiom{"band_ub", []logic.Expr{band.L, band.R}, nil}
					g, err := sub(logic.Ult(band.R, b))
					if err == nil {
						return Axiom{"le_lt_trans", []logic.Expr{a, band.R, b}, []Proof{ub, g}}, nil
					}
				}
			}
		}

	case logic.CmpUle:
		a, b := goal.L, goal.R
		// Masking bounds.
		if band, ok := a.(logic.Bin); ok && band.Op == logic.OpAnd {
			if logic.ExprEqual(band.R, b) {
				return Axiom{"band_ub", []logic.Expr{band.L, band.R}, nil}, nil
			}
			if logic.ExprEqual(band.L, b) {
				return Axiom{"band_le_self", []logic.Expr{band.L, band.R}, nil}, nil
			}
			// e&c ≤ c ≤ b.
			if rest, err := sub(logic.Ule(band.R, b)); err == nil {
				ub := Axiom{"band_ub", []logic.Expr{band.L, band.R}, nil}
				return Axiom{"le_trans", []logic.Expr{a, band.R, b}, []Proof{ub, rest}}, nil
			}
			// e&c ≤ e ≤ b.
			if rest, err := sub(logic.Ule(band.L, b)); err == nil {
				self := Axiom{"band_le_self", []logic.Expr{band.L, band.R}, nil}
				return Axiom{"le_trans", []logic.Expr{a, band.L, b}, []Proof{self, rest}}, nil
			}
		}
		// (e>>c)<<c ≤ e: rounding down to a multiple of 2^c.
		if shl, ok := a.(logic.Bin); ok && shl.Op == logic.OpShl {
			if shr, ok := shl.L.(logic.Bin); ok && shr.Op == logic.OpShr &&
				logic.ExprEqual(shr.R, shl.R) && logic.ExprEqual(shr.L, b) {
				return Axiom{"shr_shl_le", []logic.Expr{b, shl.R}, nil}, nil
			}
		}
		// e−c ≤ e given c ≤ e.
		if s, ok := a.(logic.Bin); ok && s.Op == logic.OpSub && logic.ExprEqual(s.L, b) {
			if rest, err := sub(logic.Ule(s.R, s.L)); err == nil {
				return Axiom{"sub_le", []logic.Expr{s.L, s.R}, []Proof{rest}}, nil
			}
		}
		// Transitivity through a known fact.
		for _, f := range facts(logic.CmpUle) {
			c := f.concl.(logic.Cmp)
			if logic.ExprEqual(c.R, b) && !logic.ExprEqual(c.L, a) {
				if rest, err := sub(logic.Ule(a, c.L)); err == nil {
					return Axiom{"le_trans", []logic.Expr{a, c.L, b}, []Proof{rest, f.proof}}, nil
				}
			}
			if logic.ExprEqual(c.L, a) && !logic.ExprEqual(c.R, b) {
				if rest, err := sub(logic.Ule(c.R, b)); err == nil {
					return Axiom{"le_trans", []logic.Expr{a, c.R, b}, []Proof{f.proof, rest}}, nil
				}
			}
		}
		// Weakening from strict order.
		if rest, err := sub(logic.Ult(a, b)); err == nil {
			return Axiom{"lt_imp_le", []logic.Expr{a, b}, []Proof{rest}}, nil
		}

	case logic.CmpEq:
		// Alignment goals: (S & m) = 0 for a sum S whose parts are
		// each aligned.
		if rc, ok := goal.R.(logic.Const); ok && rc.Val == 0 {
			if band, ok := goal.L.(logic.Bin); ok && band.Op == logic.OpAnd {
				if p, err := proveAligned(band.L, band.R, ctx, depth, sub); err == nil {
					return p, nil
				}
			}
		}
	}
	return nil, &ProveError{goal, "arithmetic search failed"}
}

// proveAligned proves (s & m) = 0 by structural descent over the sum s,
// combining the parts with the align_add/align_sub axioms.
func proveAligned(s, m logic.Expr, ctx *context, depth int,
	sub func(logic.Pred) (Proof, error)) (Proof, error) {
	if depth <= 0 {
		return nil, &ProveError{logic.Eq(logic.And2(s, m), logic.C(0)), "depth bound exceeded"}
	}
	if b, ok := s.(logic.Bin); ok && (b.Op == logic.OpAdd || b.Op == logic.OpSub) {
		l, err := proveAligned(b.L, m, ctx, depth-1, sub)
		if err != nil {
			return nil, err
		}
		r, err := proveAligned(b.R, m, ctx, depth-1, sub)
		if err != nil {
			return nil, err
		}
		side, err := sub(logic.Eq(logic.And2(m, logic.Add(m, logic.C(1))), logic.C(0)))
		if err != nil {
			return nil, err
		}
		name := "align_add"
		if b.Op == logic.OpSub {
			name = "align_sub"
		}
		return Axiom{name, []logic.Expr{b.L, b.R, m}, []Proof{l, r, side}}, nil
	}
	return sub(logic.Eq(logic.And2(s, m), logic.C(0)))
}

// matchPred matches a rule conclusion pattern (with pattern variables
// vars) against a goal, extending bind. Matching is one-way syntactic
// unification with one extra wrinkle: a pattern (e ⊕ v) also matches a
// goal equal to e by taking v := 0, because the normalizer erases the
// "+0" the instantiated hypothesis would carry.
func matchPred(pat, goal logic.Pred, vars map[string]bool, bind map[string]logic.Expr) bool {
	switch p := pat.(type) {
	case logic.Rd:
		g, ok := goal.(logic.Rd)
		return ok && matchExpr(p.Addr, g.Addr, vars, bind)
	case logic.Wr:
		g, ok := goal.(logic.Wr)
		return ok && matchExpr(p.Addr, g.Addr, vars, bind)
	case logic.Cmp:
		g, ok := goal.(logic.Cmp)
		return ok && p.Op == g.Op && matchExpr(p.L, g.L, vars, bind) &&
			matchExpr(p.R, g.R, vars, bind)
	case logic.And:
		g, ok := goal.(logic.And)
		return ok && matchPred(p.L, g.L, vars, bind) && matchPred(p.R, g.R, vars, bind)
	default:
		return logic.PredEqual(pat, goal)
	}
}

func matchExpr(pat, goal logic.Expr, vars map[string]bool, bind map[string]logic.Expr) bool {
	if v, ok := pat.(logic.Var); ok && vars[v.Name] {
		if prev, bound := bind[v.Name]; bound {
			return logic.ExprEqual(prev, goal)
		}
		bind[v.Name] = goal
		return true
	}
	switch p := pat.(type) {
	case logic.Const, logic.Var:
		return logic.ExprEqual(pat, goal)
	case logic.Bin:
		if p.Op == logic.OpAdd || p.Op == logic.OpSub {
			return matchSum(p, goal, vars, bind)
		}
		if g, ok := goal.(logic.Bin); ok && g.Op == p.Op {
			save := snapshot(bind)
			if matchExpr(p.L, g.L, vars, bind) && matchExpr(p.R, g.R, vars, bind) {
				return true
			}
			restore(bind, save)
		}
		return false
	case logic.Sel:
		g, ok := goal.(logic.Sel)
		return ok && matchExpr(p.Mem, g.Mem, vars, bind) && matchExpr(p.Addr, g.Addr, vars, bind)
	case logic.Upd:
		g, ok := goal.(logic.Upd)
		return ok && matchExpr(p.Mem, g.Mem, vars, bind) && matchExpr(p.Addr, g.Addr, vars, bind) &&
			matchExpr(p.Val, g.Val, vars, bind)
	}
	return false
}

// matchSum matches a pattern ⊕/⊖-sum against a goal expression
// associatively and commutatively. Concrete pattern terms must each
// appear in the goal sum with the same sign; a single unbound pattern
// variable absorbs whatever remains (possibly 0, possibly a constant
// offset, possibly a whole residual sum). Any heuristic over-reach is
// harmless: applyRules re-verifies the instantiated conclusion against
// the goal up to normalization before accepting the match.
func matchSum(pat logic.Expr, goal logic.Expr, vars map[string]bool, bind map[string]logic.Expr) bool {
	type term struct {
		e   logic.Expr
		neg bool
	}
	var flatten func(e logic.Expr, neg bool, terms *[]term, offset *uint64)
	flatten = func(e logic.Expr, neg bool, terms *[]term, offset *uint64) {
		switch e := e.(type) {
		case logic.Const:
			if neg {
				*offset -= e.Val
			} else {
				*offset += e.Val
			}
		case logic.Bin:
			switch e.Op {
			case logic.OpAdd:
				flatten(e.L, neg, terms, offset)
				flatten(e.R, neg, terms, offset)
				return
			case logic.OpSub:
				flatten(e.L, neg, terms, offset)
				flatten(e.R, !neg, terms, offset)
				return
			}
			*terms = append(*terms, term{e, neg})
		default:
			*terms = append(*terms, term{e, neg})
		}
	}

	var patTerms, goalTerms []term
	var patOff, goalOff uint64
	flatten(pat, false, &patTerms, &patOff)
	flatten(goal, false, &goalTerms, &goalOff)

	// Replace already-bound pattern variables by their bindings.
	var free []term // unbound pattern variables
	var concrete []term
	for _, t := range patTerms {
		if v, ok := t.e.(logic.Var); ok && vars[v.Name] {
			if b, bound := bind[v.Name]; bound {
				flatten(b, t.neg, &concrete, &patOff)
			} else {
				free = append(free, t)
			}
			continue
		}
		concrete = append(concrete, t)
	}
	if len(free) > 1 {
		return false
	}

	// Each concrete pattern term must match a goal term of equal sign.
	used := make([]bool, len(goalTerms))
	for _, ct := range concrete {
		found := false
		for gi, gt := range goalTerms {
			if used[gi] || gt.neg != ct.neg {
				continue
			}
			save := snapshot(bind)
			if matchExpr(ct.e, gt.e, vars, bind) {
				used[gi] = true
				found = true
				break
			}
			restore(bind, save)
		}
		if !found {
			return false
		}
	}

	// Whatever is left over goes to the free variable (or must be
	// nothing when the pattern has no free variable).
	residOff := goalOff - patOff
	var resid []term
	for gi, gt := range goalTerms {
		if !used[gi] {
			resid = append(resid, gt)
		}
	}
	if len(free) == 0 {
		return len(resid) == 0 && residOff == 0
	}
	fv := free[0]
	var expr logic.Expr
	for _, rt := range resid {
		neg := rt.neg != fv.neg // absorbed under the variable's own sign
		switch {
		case expr == nil && neg:
			expr = logic.Sub(logic.C(0), rt.e)
		case expr == nil:
			expr = rt.e
		case neg:
			expr = logic.Sub(expr, rt.e)
		default:
			expr = logic.Add(expr, rt.e)
		}
	}
	if fv.neg {
		residOff = -residOff
	}
	switch {
	case expr == nil:
		expr = logic.C(residOff)
	case residOff != 0:
		expr = logic.Add(expr, logic.C(residOff))
	}
	bind[fv.e.(logic.Var).Name] = logic.NormExpr(expr)
	return true
}

func snapshot(bind map[string]logic.Expr) map[string]logic.Expr {
	out := make(map[string]logic.Expr, len(bind))
	for k, v := range bind {
		out[k] = v
	}
	return out
}

func restore(bind map[string]logic.Expr, save map[string]logic.Expr) {
	for k := range bind {
		if _, ok := save[k]; !ok {
			delete(bind, k)
		}
	}
	for k, v := range save {
		bind[k] = v
	}
}
