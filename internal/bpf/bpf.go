// Package bpf implements the BSD Packet Filter baseline of §3.1: the
// classic BPF virtual machine (McCanne & Jacobson, USENIX '93) — an
// accumulator machine with per-instruction dispatch and per-access
// bounds checks — together with its static validator ("a simple static
// check ... that all instruction codes are valid and all branches are
// forward and within code limits") and an interpreter.
//
// The interpreter can run in two modes: plain (wall-clock benchmarks)
// and cycle-accounted, where each virtual instruction is charged the
// cost a switch-threaded C interpreter of the era pays on the modeled
// 175-MHz Alpha (see CostModel).
package bpf

import (
	"encoding/binary"
	"fmt"
)

// Instruction class, size, mode, op and source constants — the classic
// BPF encoding.
const (
	ClsLD   = 0x00
	ClsLDX  = 0x01
	ClsST   = 0x02
	ClsSTX  = 0x03
	ClsALU  = 0x04
	ClsJMP  = 0x05
	ClsRET  = 0x06
	ClsMISC = 0x07

	SizeW = 0x00
	SizeH = 0x08
	SizeB = 0x10

	ModeIMM = 0x00
	ModeABS = 0x20
	ModeIND = 0x40
	ModeMEM = 0x60
	ModeLEN = 0x80
	ModeMSH = 0xa0

	AluAdd = 0x00
	AluSub = 0x10
	AluMul = 0x20
	AluDiv = 0x30
	AluOr  = 0x40
	AluAnd = 0x50
	AluLsh = 0x60
	AluRsh = 0x70
	AluNeg = 0x80

	JmpJA  = 0x00
	JmpJEQ = 0x10
	JmpJGT = 0x20
	JmpJGE = 0x30
	JmpSET = 0x40

	SrcK = 0x00
	SrcX = 0x08

	RetK = 0x00
	RetA = 0x10

	MiscTAX = 0x00
	MiscTXA = 0x80
)

// MemWords is the size of the BPF scratch memory store.
const MemWords = 16

// Insn is one BPF virtual instruction.
type Insn struct {
	Code   uint16
	Jt, Jf uint8
	K      uint32
}

// Helpers for building programs.

// Stmt builds a non-branching instruction.
func Stmt(code uint16, k uint32) Insn { return Insn{Code: code, K: k} }

// Jump builds a conditional branch with taken/not-taken displacements.
func Jump(code uint16, k uint32, jt, jf uint8) Insn {
	return Insn{Code: code, Jt: jt, Jf: jf, K: k}
}

// Validate performs the load-time static check of the BPF
// architecture: known opcodes, in-range forward branches, in-range
// scratch indexes, no division by a zero constant, and a terminating
// return.
func Validate(prog []Insn) error {
	if len(prog) == 0 {
		return fmt.Errorf("bpf: empty program")
	}
	for pc, ins := range prog {
		cls := ins.Code & 0x07
		switch cls {
		case ClsLD, ClsLDX:
			mode := ins.Code & 0xe0
			switch mode {
			case ModeIMM, ModeABS, ModeIND, ModeLEN, ModeMSH:
			case ModeMEM:
				if ins.K >= MemWords {
					return fmt.Errorf("bpf: pc %d: scratch index %d out of range", pc, ins.K)
				}
			default:
				return fmt.Errorf("bpf: pc %d: bad load mode %#x", pc, ins.Code)
			}
		case ClsST, ClsSTX:
			if ins.K >= MemWords {
				return fmt.Errorf("bpf: pc %d: scratch index %d out of range", pc, ins.K)
			}
		case ClsALU:
			op := ins.Code & 0xf0
			if op > AluNeg {
				return fmt.Errorf("bpf: pc %d: bad alu op %#x", pc, ins.Code)
			}
			if op == AluDiv && ins.Code&SrcX == 0 && ins.K == 0 {
				return fmt.Errorf("bpf: pc %d: division by zero constant", pc)
			}
		case ClsJMP:
			op := ins.Code & 0xf0
			if op > JmpSET {
				return fmt.Errorf("bpf: pc %d: bad jmp op %#x", pc, ins.Code)
			}
			if op == JmpJA {
				if int(ins.K) < 0 || pc+1+int(ins.K) >= len(prog) {
					return fmt.Errorf("bpf: pc %d: jump out of range", pc)
				}
			} else {
				if pc+1+int(ins.Jt) >= len(prog) || pc+1+int(ins.Jf) >= len(prog) {
					return fmt.Errorf("bpf: pc %d: branch out of range", pc)
				}
			}
		case ClsRET:
		case ClsMISC:
			sub := ins.Code & 0xf8
			if sub != MiscTAX && sub != MiscTXA {
				return fmt.Errorf("bpf: pc %d: bad misc op %#x", pc, ins.Code)
			}
		default:
			return fmt.Errorf("bpf: pc %d: bad class %#x", pc, ins.Code)
		}
	}
	last := prog[len(prog)-1]
	if last.Code&0x07 != ClsRET {
		return fmt.Errorf("bpf: program does not end in RET")
	}
	return nil
}

// CostModel charges simulated DEC-Alpha cycles per interpreted virtual
// instruction: a dispatch cost (fetch + switch) plus the cost of the
// operation itself, with multi-byte packet loads paying per-byte
// assembly as the OSF/1 interpreter did. Calibrated against Figure 8
// (see EXPERIMENTS.md).
type CostModel struct {
	Dispatch int // fetch + decode + switch
	LoadW    int // 4-byte load: bounds check + 4 byte loads + assembly
	LoadH    int
	LoadB    int
	ALU      int
	Jmp      int
	Ret      int
	Misc     int
	Call     int // per-packet interpreter invocation overhead
}

// DefaultCost approximates the OSF/1 kernel BPF interpreter.
var DefaultCost = CostModel{
	Dispatch: 25,
	LoadW:    14,
	LoadH:    10,
	LoadB:    6,
	ALU:      2,
	Jmp:      4,
	Ret:      4,
	Misc:     2,
	Call:     35,
}

// Run interprets prog over pkt, returning the filter's accept value
// (non-zero = accept) — the plain, wall-clock-benchmark variant.
func Run(prog []Insn, pkt []byte) uint32 {
	res, _ := run(prog, pkt, nil)
	return res
}

// RunCycles interprets prog over pkt charging the cost model; it
// returns the accept value and the simulated cycle count.
func RunCycles(prog []Insn, pkt []byte, cm *CostModel) (uint32, int64) {
	return run(prog, pkt, cm)
}

func run(prog []Insn, pkt []byte, cm *CostModel) (uint32, int64) {
	var a, x uint32
	var mem [MemWords]uint32
	var cycles int64
	if cm != nil {
		cycles = int64(cm.Call)
	}
	charge := func(c int) {
		if cm != nil {
			cycles += int64(cm.Dispatch + c)
		}
	}

	for pc := 0; pc < len(prog); pc++ {
		ins := prog[pc]
		cls := ins.Code & 0x07
		switch cls {
		case ClsLD:
			switch ins.Code & 0xe0 {
			case ModeIMM:
				charge(cm0(cm).ALU)
				a = ins.K
			case ModeLEN:
				charge(cm0(cm).ALU)
				a = uint32(len(pkt))
			case ModeMEM:
				charge(cm0(cm).ALU)
				a = mem[ins.K]
			case ModeABS, ModeIND:
				off := int64(ins.K)
				if ins.Code&0xe0 == ModeIND {
					off += int64(x)
				}
				switch ins.Code & 0x18 {
				case SizeW:
					charge(cm0(cm).LoadW)
					if off < 0 || off+4 > int64(len(pkt)) {
						return 0, cycles // out of range: drop (BPF semantics)
					}
					a = binary.BigEndian.Uint32(pkt[off:])
				case SizeH:
					charge(cm0(cm).LoadH)
					if off < 0 || off+2 > int64(len(pkt)) {
						return 0, cycles
					}
					a = uint32(binary.BigEndian.Uint16(pkt[off:]))
				case SizeB:
					charge(cm0(cm).LoadB)
					if off < 0 || off+1 > int64(len(pkt)) {
						return 0, cycles
					}
					a = uint32(pkt[off])
				}
			}
		case ClsLDX:
			switch ins.Code & 0xe0 {
			case ModeIMM:
				charge(cm0(cm).ALU)
				x = ins.K
			case ModeLEN:
				charge(cm0(cm).ALU)
				x = uint32(len(pkt))
			case ModeMEM:
				charge(cm0(cm).ALU)
				x = mem[ins.K]
			case ModeMSH:
				charge(cm0(cm).LoadB + cm0(cm).ALU)
				off := int64(ins.K)
				if off < 0 || off+1 > int64(len(pkt)) {
					return 0, cycles
				}
				x = uint32(pkt[off]&0x0f) * 4
			}
		case ClsST:
			charge(cm0(cm).ALU)
			mem[ins.K] = a
		case ClsSTX:
			charge(cm0(cm).ALU)
			mem[ins.K] = x
		case ClsALU:
			charge(cm0(cm).ALU)
			src := ins.K
			if ins.Code&SrcX != 0 {
				src = x
			}
			switch ins.Code & 0xf0 {
			case AluAdd:
				a += src
			case AluSub:
				a -= src
			case AluMul:
				a *= src
			case AluDiv:
				if src == 0 {
					return 0, cycles
				}
				a /= src
			case AluOr:
				a |= src
			case AluAnd:
				a &= src
			case AluLsh:
				a <<= src & 31
			case AluRsh:
				a >>= src & 31
			case AluNeg:
				a = -a
			}
		case ClsJMP:
			charge(cm0(cm).Jmp)
			src := ins.K
			if ins.Code&SrcX != 0 {
				src = x
			}
			var taken bool
			switch ins.Code & 0xf0 {
			case JmpJA:
				pc += int(ins.K)
				continue
			case JmpJEQ:
				taken = a == src
			case JmpJGT:
				taken = a > src
			case JmpJGE:
				taken = a >= src
			case JmpSET:
				taken = a&src != 0
			}
			if taken {
				pc += int(ins.Jt)
			} else {
				pc += int(ins.Jf)
			}
		case ClsRET:
			charge(cm0(cm).Ret)
			if ins.Code&0x18 == RetA {
				return a, cycles
			}
			return ins.K, cycles
		case ClsMISC:
			charge(cm0(cm).Misc)
			if ins.Code&0xf8 == MiscTAX {
				x = a
			} else {
				a = x
			}
		}
	}
	return 0, cycles
}

var zeroCost CostModel

func cm0(cm *CostModel) *CostModel {
	if cm == nil {
		return &zeroCost
	}
	return cm
}
