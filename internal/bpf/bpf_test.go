package bpf

import (
	"encoding/binary"
	"testing"
)

func pkt(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestLoadSizes(t *testing.T) {
	p := pkt(64)
	cases := []struct {
		prog []Insn
		want uint32
	}{
		{[]Insn{Stmt(ClsLD|SizeB|ModeABS, 5), Stmt(ClsRET|RetA, 0)}, 5},
		{[]Insn{Stmt(ClsLD|SizeH|ModeABS, 4), Stmt(ClsRET|RetA, 0)},
			uint32(binary.BigEndian.Uint16(p[4:]))},
		{[]Insn{Stmt(ClsLD|SizeW|ModeABS, 8), Stmt(ClsRET|RetA, 0)},
			binary.BigEndian.Uint32(p[8:])},
		{[]Insn{Stmt(ClsLD|ModeLEN, 0), Stmt(ClsRET|RetA, 0)}, 64},
		{[]Insn{Stmt(ClsLD|ModeIMM, 77), Stmt(ClsRET|RetA, 0)}, 77},
	}
	for i, c := range cases {
		if err := Validate(c.prog); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := Run(c.prog, p); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestOutOfRangeLoadRejectsPacket(t *testing.T) {
	p := pkt(16)
	prog := []Insn{
		Stmt(ClsLD|SizeW|ModeABS, 14), // 14+4 > 16
		Stmt(ClsRET|RetK, 1),
	}
	if got := Run(prog, p); got != 0 {
		t.Fatalf("out-of-range load returned %d, want 0 (drop)", got)
	}
}

func TestIndirectAndMSH(t *testing.T) {
	p := pkt(64)
	p[14] = 0x46 // IHL 6 -> X = 24
	prog := []Insn{
		Stmt(ClsLDX|SizeB|ModeMSH, 14),
		Stmt(ClsLD|SizeB|ModeIND, 2), // p[24+2]
		Stmt(ClsRET|RetA, 0),
	}
	if got := Run(prog, p); got != uint32(p[26]) {
		t.Fatalf("got %d, want %d", got, p[26])
	}
}

func TestALUOps(t *testing.T) {
	run1 := func(code uint16, a0, k uint32) uint32 {
		prog := []Insn{
			Stmt(ClsLD|ModeIMM, a0),
			Stmt(code, k),
			Stmt(ClsRET|RetA, 0),
		}
		return Run(prog, pkt(64))
	}
	cases := []struct {
		code    uint16
		a, k, w uint32
	}{
		{ClsALU | AluAdd | SrcK, 3, 4, 7},
		{ClsALU | AluSub | SrcK, 9, 4, 5},
		{ClsALU | AluMul | SrcK, 3, 5, 15},
		{ClsALU | AluDiv | SrcK, 20, 4, 5},
		{ClsALU | AluOr | SrcK, 0xf0, 0x0f, 0xff},
		{ClsALU | AluAnd | SrcK, 0xff, 0x0f, 0x0f},
		{ClsALU | AluLsh | SrcK, 1, 4, 16},
		{ClsALU | AluRsh | SrcK, 16, 4, 1},
		{ClsALU | AluNeg | SrcK, 1, 0, 0xffffffff},
	}
	for i, c := range cases {
		if got := run1(c.code, c.a, c.k); got != c.w {
			t.Errorf("case %d: got %#x, want %#x", i, got, c.w)
		}
	}
}

func TestScratchMemory(t *testing.T) {
	prog := []Insn{
		Stmt(ClsLD|ModeIMM, 42),
		Stmt(ClsST, 3),
		Stmt(ClsLD|ModeIMM, 0),
		Stmt(ClsLD|ModeMEM, 3),
		Stmt(ClsRET|RetA, 0),
	}
	if err := Validate(prog); err != nil {
		t.Fatal(err)
	}
	if got := Run(prog, pkt(64)); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestJumps(t *testing.T) {
	prog := []Insn{
		Stmt(ClsLD|SizeB|ModeABS, 0),
		Jump(ClsJMP|JmpJEQ|SrcK, 0, 1, 0),
		Stmt(ClsRET|RetK, 7), // not taken path
		Stmt(ClsRET|RetK, 9), // taken path
	}
	p := pkt(64)
	p[0] = 0
	if got := Run(prog, p); got != 9 {
		t.Fatalf("taken: got %d", got)
	}
	p[0] = 1
	if got := Run(prog, p); got != 7 {
		t.Fatalf("not taken: got %d", got)
	}
}

func TestMiscTXA(t *testing.T) {
	prog := []Insn{
		Stmt(ClsLDX|ModeIMM, 5),
		Stmt(ClsMISC|MiscTXA, 0),
		Stmt(ClsRET|RetA, 0),
	}
	if got := Run(prog, pkt(64)); got != 5 {
		t.Fatalf("TXA: got %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog []Insn
	}{
		{"empty", nil},
		{"no ret", []Insn{Stmt(ClsLD|ModeIMM, 0)}},
		{"branch out of range", []Insn{
			Jump(ClsJMP|JmpJEQ|SrcK, 0, 10, 0), Stmt(ClsRET|RetK, 0)}},
		{"ja out of range", []Insn{
			Stmt(ClsJMP|JmpJA, 5), Stmt(ClsRET|RetK, 0)}},
		{"scratch out of range", []Insn{
			Stmt(ClsST, 99), Stmt(ClsRET|RetK, 0)}},
		{"div by zero const", []Insn{
			Stmt(ClsALU|AluDiv|SrcK, 0), Stmt(ClsRET|RetK, 0)}},
		{"bad mode", []Insn{
			Stmt(ClsLD|0xe0, 0), Stmt(ClsRET|RetK, 0)}},
	}
	for _, c := range cases {
		if err := Validate(c.prog); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunCyclesChargesDispatch(t *testing.T) {
	prog := []Insn{Stmt(ClsRET|RetK, 1)}
	_, cycles := RunCycles(prog, pkt(64), &DefaultCost)
	want := int64(DefaultCost.Call + DefaultCost.Dispatch + DefaultCost.Ret)
	if cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
	// Plain Run charges nothing.
	if got, c := RunCycles(prog, pkt(64), nil); got != 1 || c != 0 {
		t.Fatalf("nil cost model: got %d cycles %d", got, c)
	}
}

func TestDivByZeroRegisterDrops(t *testing.T) {
	prog := []Insn{
		Stmt(ClsLDX|ModeIMM, 0),
		Stmt(ClsLD|ModeIMM, 10),
		Stmt(ClsALU|AluDiv|SrcX, 0),
		Stmt(ClsRET|RetK, 1),
	}
	if err := Validate(prog); err != nil {
		t.Fatal(err)
	}
	if got := Run(prog, pkt(64)); got != 0 {
		t.Fatalf("div by zero X returned %d, want 0", got)
	}
}

func TestJumpOverAccept(t *testing.T) {
	// JA skips the accept.
	prog := []Insn{
		Stmt(ClsJMP|JmpJA, 1),
		Stmt(ClsRET|RetK, 1),
		Stmt(ClsRET|RetK, 0),
	}
	if err := Validate(prog); err != nil {
		t.Fatal(err)
	}
	if got := Run(prog, pkt(64)); got != 0 {
		t.Fatalf("got %d", got)
	}
}
