package logic

import (
	"math/rand"
	"testing"
)

// Model checking of the normalizer over expressions with memory terms:
// the sel/upd folding (including the distinct-address rule backing the
// semaphore postcondition) must preserve meaning under every concrete
// store.

// randMemExpr generates word-sorted expressions over sel/upd chains.
// Addresses are drawn from a small aligned pool plus base+offset forms
// so the definitelyDistinct folding actually fires.
func randMemExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return C(uint64(8 * r.Intn(6)))
		case 1:
			return V("r0")
		default:
			return V("r1")
		}
	}
	switch r.Intn(5) {
	case 0, 1:
		return SelE(randMem(r, depth-1), randAddr(r))
	default:
		ops := []BinOp{OpAdd, OpSub, OpAnd, OpOr, OpXor}
		return Bin{ops[r.Intn(len(ops))], randMemExpr(r, depth-1), randMemExpr(r, depth-1)}
	}
}

// randMem generates a memory-sorted expression (rm under upd chains).
func randMem(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return V("rm")
	}
	return UpdE(randMem(r, depth-1), randAddr(r), randMemExpr(r, depth-1))
}

// randAddr produces addresses of the shapes the normalizer reasons
// about: constants, bases, and base+constant.
func randAddr(r *rand.Rand) Expr {
	switch r.Intn(4) {
	case 0:
		return C(uint64(8 * r.Intn(4)))
	case 1:
		return V("r0")
	case 2:
		return V("r1")
	default:
		return Add(V("r0"), C(uint64(8*r.Intn(4))))
	}
}

func randMemEnv(r *rand.Rand) *MemEnv {
	mem := map[uint64]uint64{}
	for i := 0; i < 8; i++ {
		mem[uint64(8*i)] = r.Uint64()
		mem[r.Uint64()&^7] = r.Uint64()
	}
	return &MemEnv{
		Words: map[string]uint64{
			// Aligned bases make base+offset collisions with the
			// constant pool possible, exercising both folding branches.
			"r0": uint64(8 * r.Intn(6)),
			"r1": r.Uint64(),
		},
		Mems: map[string]map[uint64]uint64{"rm": mem},
	}
}

func TestNormExprPreservesMeaningWithMemory(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 5000; trial++ {
		e := randMemExpr(r, 4)
		env := randMemEnv(r)
		v1, ok1 := EvalExprMem(e, env)
		if !ok1 {
			t.Fatalf("unevaluable expression generated: %s", e)
		}
		n := NormExpr(e)
		v2, ok2 := EvalExprMem(n, env)
		if !ok2 {
			t.Fatalf("normalized form unevaluable: %s -> %s", e, n)
		}
		if v1 != v2 {
			t.Fatalf("NormExpr changed meaning under memory:\n  in:  %s = %d\n  out: %s = %d\n  env: %+v",
				e, v1, n, v2, env.Words)
		}
	}
}

func TestSelUpdFoldingExamples(t *testing.T) {
	rm := V("rm")
	r0 := V("r0")
	cases := []struct {
		in   Expr
		want Expr
	}{
		// Exact match: sel(upd(m,a,v),a) = v.
		{SelE(UpdE(rm, r0, C(7)), r0), C(7)},
		// Distinct constant offsets from the same base skip the update.
		{SelE(UpdE(rm, Add(r0, C(8)), C(7)), r0), SelE(rm, r0)},
		{SelE(UpdE(rm, r0, C(7)), Add(r0, C(16))), SelE(rm, Add(r0, C(16)))},
		// Two updates, inner one matches.
		{
			SelE(UpdE(UpdE(rm, r0, C(1)), Add(r0, C(8)), C(2)), r0),
			C(1),
		},
		// Unknown relation (different bases): no folding.
		{
			SelE(UpdE(rm, V("r1"), C(7)), r0),
			SelE(UpdE(rm, V("r1"), C(7)), r0),
		},
		// Distinct constants.
		{SelE(UpdE(rm, C(8), C(7)), C(16)), SelE(rm, C(16))},
	}
	for _, c := range cases {
		got := NormExpr(c.in)
		if !ExprEqual(got, c.want) {
			t.Errorf("NormExpr(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestEvalPredMem(t *testing.T) {
	env := &MemEnv{
		Words: map[string]uint64{"r0": 8},
		Mems:  map[string]map[uint64]uint64{"rm": {8: 5}},
	}
	p := Eq(SelE(UpdE(V("rm"), V("r0"), C(0)), V("r0")), C(0))
	v, ok := EvalPredMem(p, env)
	if !ok || !v {
		t.Fatalf("EvalPredMem = %v/%v", v, ok)
	}
	// rd() atoms are not evaluable.
	if _, ok := EvalPredMem(RdP(V("r0")), env); ok {
		t.Fatal("rd evaluated")
	}
}
