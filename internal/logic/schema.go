package logic

// Schema is an axiom schema of a proof system: named parameters
// (conventionally "$a", "$b", … — names no machine program can
// mention), premises, and a conclusion, the latter two given as
// predicates over the parameters. The core rule set lives in
// internal/prover; policies may publish additional schemas
// (policy.Policy.Axioms), realizing the paper's workflow in which the
// prover "learns new axioms about arithmetic" that are "remembered for
// future sessions" — here, remembered by being part of the published
// policy, so producer and consumer agree on them by construction.
type Schema struct {
	Name    string
	Params  []string
	Prems   []Pred
	Concl   Pred
	Comment string
}

// Instantiate substitutes args for the schema's parameters in p.
func (s *Schema) Instantiate(p Pred, args []Expr) Pred {
	for i, param := range s.Params {
		p = Subst(p, param, args[i])
	}
	return p
}
