package logic

import (
	"math/rand"
	"testing"
)

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Expr
	}{
		{"42", C(42)},
		{"0x2A", C(42)},
		{"-8", CI(-8)},
		{"r0", V("r0")},
		{"(r1 + 8)", Add(V("r1"), C(8))},
		{"r1 + 8 - r2", Sub(Add(V("r1"), C(8)), V("r2"))},
		{"r0 & 7", And2(V("r0"), C(7))},
		{"r0 | r1 ^ r2", Or2(V("r0"), Xor2(V("r1"), V("r2")))},
		{"r0 << 3", Shl(V("r0"), C(3))},
		{"sel(rm, r0)", SelE(V("rm"), V("r0"))},
		{"upd(rm, r0, 5)", UpdE(V("rm"), V("r0"), C(5))},
		{"cmpult(r4, r2)", Bin{OpCmpUlt, V("r4"), V("r2")}},
		{"(r0 + 1) & 7", And2(Add(V("r0"), C(1)), C(7))},
	}
	for _, c := range cases {
		got, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if !ExprEqual(got, c.want) {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseExprShiftBinding(t *testing.T) {
	// (r0 >> 46) & 60: shifts bind tighter than '&'.
	got, err := ParseExpr("r0 >> 46 & 60")
	if err != nil {
		t.Fatal(err)
	}
	want := And2(Shr(V("r0"), C(46)), C(60))
	if !ExprEqual(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestParsePredBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Pred
	}{
		{"true", True},
		{"false", False},
		{"rd(r0)", RdP(V("r0"))},
		{"wr((r3 + 8))", WrP(Add(V("r3"), C(8)))},
		{"r0 = 5", Eq(V("r0"), C(5))},
		{"r0 <> 0", Ne(V("r0"), C(0))},
		{"r0 != 0", Ne(V("r0"), C(0))},
		{"r0 < r2", Ult(V("r0"), V("r2"))},
		{"r0 <= r2", Ule(V("r0"), V("r2"))},
		{"r0 <s r2", Slt(V("r0"), V("r2"))},
		{"r0 <=s r2", Sle(V("r0"), V("r2"))},
		{"rd(r0) /\\ wr(r1)", And{RdP(V("r0")), WrP(V("r1"))}},
		{"rd(r0) \\/ wr(r1)", Or{RdP(V("r0")), WrP(V("r1"))}},
		{"r0 = 0 => rd(r1)", Imp{Eq(V("r0"), C(0)), RdP(V("r1"))}},
		{"ALL i. rd(r1 + i)", All("i", RdP(Add(V("r1"), V("i"))))},
		{
			"ALL i. (i < r2 /\\ (i & 7) = 0) => rd((r1 + i))",
			All("i", Implies(
				And{Ult(V("i"), V("r2")), Eq(And2(V("i"), C(7)), C(0))},
				RdP(Add(V("r1"), V("i"))))),
		},
		{"sel(rm, r0) <> 0 => wr(r0 + 8)",
			Implies(Ne(SelE(V("rm"), V("r0")), C(0)), WrP(Add(V("r0"), C(8))))},
		{"(rd(r0))", RdP(V("r0"))},
		{"cmpult(r4, r2) <> 0", Ne(Bin{OpCmpUlt, V("r4"), V("r2")}, C(0))},
	}
	for _, c := range cases {
		got, err := ParsePred(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if !PredEqual(got, c.want) {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "rd(", "rd(r0", "r0 <", "r0 5", "ALL . rd(r0)",
		"ALL i rd(r0)", "rd(r0) /\\", "sel(rm)", "upd(rm, r0)",
		"r0 = 5 trailing", "((r0) = 1", "-r0",
	}
	for _, src := range bad {
		if _, err := ParsePred(src); err == nil {
			t.Errorf("%q: parsed successfully", src)
		}
	}
}

// TestStringParseRoundTripPred is the headline property: the parser
// accepts exactly what the printers produce.
func TestStringParseRoundTripPred(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4000; trial++ {
		p := randPred(r, 3)
		got, err := ParsePred(p.String())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !PredEqual(got, p) {
			t.Fatalf("round trip changed predicate:\n  in:  %s\n  out: %s", p, got)
		}
	}
}

func TestStringParseRoundTripExpr(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for trial := 0; trial < 4000; trial++ {
		e := randExpr(r, 4)
		got, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if !ExprEqual(got, e) {
			t.Fatalf("round trip changed expression:\n  in:  %s\n  out: %s", e, got)
		}
	}
}

func TestStringParseRoundTripQuantified(t *testing.T) {
	// randPred does not generate quantifiers or memory terms; cover
	// them explicitly.
	preds := []Pred{
		All("i", All("j", Implies(
			And{Ult(V("i"), V("r2")), Ult(V("j"), C(16))},
			Ne(Add(V("r1"), V("i")), Add(V("r3"), V("j")))))),
		Implies(Ne(SelE(V("rm"), V("r0")), C(0)),
			WrP(Add(V("r0"), C(8)))),
		Eq(SelE(UpdE(V("rm"), V("r0"), C(7)), V("r0")), C(7)),
	}
	for _, p := range preds {
		got, err := ParsePred(p.String())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !PredEqual(got, p) {
			t.Fatalf("round trip changed predicate:\n  in:  %s\n  out: %s", p, got)
		}
	}
}

func TestMustParsePredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePred did not panic")
		}
	}()
	MustParsePred("((")
}
