package logic

import (
	"fmt"
	"sort"
)

// CmpOp identifies an atomic comparison predicate between machine words.
type CmpOp uint8

// Comparison predicates. Unsigned orderings are the ones the packet
// filter policy uses; the signed ordering supports BGE/BLT branches.
const (
	CmpEq  CmpOp = iota // equality
	CmpNe               // disequality
	CmpUlt              // unsigned less-than
	CmpUle              // unsigned less-or-equal
	CmpSlt              // signed less-than
	CmpSle              // signed less-or-equal
)

var cmpOpNames = [...]string{
	CmpEq: "=", CmpNe: "<>", CmpUlt: "<", CmpUle: "<=", CmpSlt: "<s", CmpSle: "<=s",
}

// String returns the conventional spelling of the comparison.
func (op CmpOp) String() string {
	if int(op) < len(cmpOpNames) {
		return cmpOpNames[op]
	}
	return fmt.Sprintf("cmpop(%d)", uint8(op))
}

// Eval applies the comparison to two concrete machine words.
func (op CmpOp) Eval(a, b uint64) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpUlt:
		return a < b
	case CmpUle:
		return a <= b
	case CmpSlt:
		return int64(a) < int64(b)
	case CmpSle:
		return int64(a) <= int64(b)
	}
	panic(fmt.Sprintf("logic: unknown cmpop %d", op))
}

// NegateCmp returns the atomic comparison logically equivalent to the
// negation of c. For the orderings this swaps operands:
// ¬(a <u b) ⇔ (b ≤u a).
func NegateCmp(c Cmp) Cmp {
	switch c.Op {
	case CmpEq:
		return Cmp{CmpNe, c.L, c.R}
	case CmpNe:
		return Cmp{CmpEq, c.L, c.R}
	case CmpUlt:
		return Cmp{CmpUle, c.R, c.L}
	case CmpUle:
		return Cmp{CmpUlt, c.R, c.L}
	case CmpSlt:
		return Cmp{CmpSle, c.R, c.L}
	case CmpSle:
		return Cmp{CmpSlt, c.R, c.L}
	}
	panic(fmt.Sprintf("logic: unknown cmpop %d", c.Op))
}

// Pred is a first-order predicate over machine states.
type Pred interface {
	isPred()
	// String renders the predicate in a human-readable syntax.
	String() string
}

// TruePred is the always-true predicate (the paper's postcondition for
// every packet filter).
type TruePred struct{}

// FalsePred is the always-false predicate.
type FalsePred struct{}

// Cmp is an atomic comparison between two word expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Rd asserts that the 64-bit word at the given address may be safely
// read (which on the Alpha implies 8-byte alignment).
type Rd struct{ Addr Expr }

// Wr asserts that the 64-bit word at the given address may be safely
// read or written.
type Wr struct{ Addr Expr }

// And is conjunction.
type And struct{ L, R Pred }

// Or is disjunction.
type Or struct{ L, R Pred }

// Imp is implication.
type Imp struct{ L, R Pred }

// Forall is universal quantification over a machine word.
type Forall struct {
	Var  string
	Body Pred
}

func (TruePred) isPred()  {}
func (FalsePred) isPred() {}
func (Cmp) isPred()       {}
func (Rd) isPred()        {}
func (Wr) isPred()        {}
func (And) isPred()       {}
func (Or) isPred()        {}
func (Imp) isPred()       {}
func (Forall) isPred()    {}

func (TruePred) String() string  { return "true" }
func (FalsePred) String() string { return "false" }
func (c Cmp) String() string     { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }
func (r Rd) String() string      { return fmt.Sprintf("rd(%s)", r.Addr) }
func (w Wr) String() string      { return fmt.Sprintf("wr(%s)", w.Addr) }
func (a And) String() string     { return fmt.Sprintf("(%s /\\ %s)", a.L, a.R) }
func (o Or) String() string      { return fmt.Sprintf("(%s \\/ %s)", o.L, o.R) }
func (i Imp) String() string     { return fmt.Sprintf("(%s => %s)", i.L, i.R) }
func (f Forall) String() string  { return fmt.Sprintf("(ALL %s. %s)", f.Var, f.Body) }

// Convenience constructors.

// True is the always-true predicate.
var True Pred = TruePred{}

// False is the always-false predicate.
var False Pred = FalsePred{}

// Eq returns l = r.
func Eq(l, r Expr) Pred { return Cmp{CmpEq, l, r} }

// Ne returns l ≠ r.
func Ne(l, r Expr) Pred { return Cmp{CmpNe, l, r} }

// Ult returns l <u r.
func Ult(l, r Expr) Pred { return Cmp{CmpUlt, l, r} }

// Ule returns l ≤u r.
func Ule(l, r Expr) Pred { return Cmp{CmpUle, l, r} }

// Slt returns l <s r (signed).
func Slt(l, r Expr) Pred { return Cmp{CmpSlt, l, r} }

// Sle returns l ≤s r (signed).
func Sle(l, r Expr) Pred { return Cmp{CmpSle, l, r} }

// RdP returns rd(addr).
func RdP(addr Expr) Pred { return Rd{addr} }

// WrP returns wr(addr).
func WrP(addr Expr) Pred { return Wr{addr} }

// Conj returns the right-nested conjunction of the given predicates
// (True for the empty list).
func Conj(ps ...Pred) Pred {
	if len(ps) == 0 {
		return True
	}
	p := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		p = And{ps[i], p}
	}
	return p
}

// Implies returns l ⇒ r.
func Implies(l, r Pred) Pred { return Imp{l, r} }

// All returns ∀v. body.
func All(v string, body Pred) Pred { return Forall{v, body} }

// AllOf quantifies body over each variable in vs, left to right.
func AllOf(vs []string, body Pred) Pred {
	for i := len(vs) - 1; i >= 0; i-- {
		body = Forall{vs[i], body}
	}
	return body
}

// PredEqual reports structural equality of two predicates (including
// bound-variable names; use AlphaEqual for equality up to renaming).
func PredEqual(a, b Pred) bool {
	switch a := a.(type) {
	case TruePred:
		_, ok := b.(TruePred)
		return ok
	case FalsePred:
		_, ok := b.(FalsePred)
		return ok
	case Cmp:
		b, ok := b.(Cmp)
		return ok && a.Op == b.Op && ExprEqual(a.L, b.L) && ExprEqual(a.R, b.R)
	case Rd:
		b, ok := b.(Rd)
		return ok && ExprEqual(a.Addr, b.Addr)
	case Wr:
		b, ok := b.(Wr)
		return ok && ExprEqual(a.Addr, b.Addr)
	case And:
		b, ok := b.(And)
		return ok && PredEqual(a.L, b.L) && PredEqual(a.R, b.R)
	case Or:
		b, ok := b.(Or)
		return ok && PredEqual(a.L, b.L) && PredEqual(a.R, b.R)
	case Imp:
		b, ok := b.(Imp)
		return ok && PredEqual(a.L, b.L) && PredEqual(a.R, b.R)
	case Forall:
		b, ok := b.(Forall)
		return ok && a.Var == b.Var && PredEqual(a.Body, b.Body)
	case nil:
		return b == nil
	}
	panic(fmt.Sprintf("logic: unknown pred %T", a))
}

// AlphaEqual reports equality of two predicates up to consistent
// renaming of bound variables.
func AlphaEqual(a, b Pred) bool { return alphaEq(a, b, nil, nil, 0) }

func alphaEq(a, b Pred, la, lb map[string]int, depth int) bool {
	switch a := a.(type) {
	case TruePred:
		_, ok := b.(TruePred)
		return ok
	case FalsePred:
		_, ok := b.(FalsePred)
		return ok
	case Cmp:
		b, ok := b.(Cmp)
		return ok && a.Op == b.Op && alphaEqExpr(a.L, b.L, la, lb) && alphaEqExpr(a.R, b.R, la, lb)
	case Rd:
		b, ok := b.(Rd)
		return ok && alphaEqExpr(a.Addr, b.Addr, la, lb)
	case Wr:
		b, ok := b.(Wr)
		return ok && alphaEqExpr(a.Addr, b.Addr, la, lb)
	case And:
		b, ok := b.(And)
		return ok && alphaEq(a.L, b.L, la, lb, depth) && alphaEq(a.R, b.R, la, lb, depth)
	case Or:
		b, ok := b.(Or)
		return ok && alphaEq(a.L, b.L, la, lb, depth) && alphaEq(a.R, b.R, la, lb, depth)
	case Imp:
		b, ok := b.(Imp)
		return ok && alphaEq(a.L, b.L, la, lb, depth) && alphaEq(a.R, b.R, la, lb, depth)
	case Forall:
		b, ok := b.(Forall)
		if !ok {
			return false
		}
		la2 := extendLevels(la, a.Var, depth)
		lb2 := extendLevels(lb, b.Var, depth)
		return alphaEq(a.Body, b.Body, la2, lb2, depth+1)
	}
	panic(fmt.Sprintf("logic: unknown pred %T", a))
}

func extendLevels(m map[string]int, name string, level int) map[string]int {
	out := make(map[string]int, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out[name] = level
	return out
}

func alphaEqExpr(a, b Expr, la, lb map[string]int) bool {
	switch a := a.(type) {
	case Const:
		b, ok := b.(Const)
		return ok && a.Val == b.Val
	case Var:
		b, ok := b.(Var)
		if !ok {
			return false
		}
		da, boundA := la[a.Name]
		db, boundB := lb[b.Name]
		if boundA != boundB {
			return false
		}
		if boundA {
			return da == db
		}
		return a.Name == b.Name
	case Bin:
		b, ok := b.(Bin)
		return ok && a.Op == b.Op && alphaEqExpr(a.L, b.L, la, lb) && alphaEqExpr(a.R, b.R, la, lb)
	case Sel:
		b, ok := b.(Sel)
		return ok && alphaEqExpr(a.Mem, b.Mem, la, lb) && alphaEqExpr(a.Addr, b.Addr, la, lb)
	case Upd:
		b, ok := b.(Upd)
		return ok && alphaEqExpr(a.Mem, b.Mem, la, lb) && alphaEqExpr(a.Addr, b.Addr, la, lb) &&
			alphaEqExpr(a.Val, b.Val, la, lb)
	}
	panic(fmt.Sprintf("logic: unknown expr %T", a))
}

// Subst replaces every free occurrence of the variable named v in p with
// repl, renaming bound variables as needed to avoid capture.
func Subst(p Pred, v string, repl Expr) Pred {
	replVars := map[string]bool{}
	ExprVars(repl, replVars)
	return subst(p, v, repl, replVars)
}

func subst(p Pred, v string, repl Expr, replVars map[string]bool) Pred {
	switch p := p.(type) {
	case TruePred, FalsePred:
		return p
	case Cmp:
		return Cmp{p.Op, SubstExpr(p.L, v, repl), SubstExpr(p.R, v, repl)}
	case Rd:
		return Rd{SubstExpr(p.Addr, v, repl)}
	case Wr:
		return Wr{SubstExpr(p.Addr, v, repl)}
	case And:
		return And{subst(p.L, v, repl, replVars), subst(p.R, v, repl, replVars)}
	case Or:
		return Or{subst(p.L, v, repl, replVars), subst(p.R, v, repl, replVars)}
	case Imp:
		return Imp{subst(p.L, v, repl, replVars), subst(p.R, v, repl, replVars)}
	case Forall:
		if p.Var == v {
			return p // v is shadowed; nothing free to replace
		}
		if replVars[p.Var] {
			// Capture: rename the bound variable first.
			free := FreeVars(p.Body)
			fresh := freshName(p.Var, func(n string) bool {
				return replVars[n] || free[n] || n == v
			})
			body := subst(p.Body, p.Var, Var{fresh}, map[string]bool{fresh: true})
			return Forall{fresh, subst(body, v, repl, replVars)}
		}
		return Forall{p.Var, subst(p.Body, v, repl, replVars)}
	}
	panic(fmt.Sprintf("logic: unknown pred %T", p))
}

func freshName(base string, taken func(string) bool) string {
	for i := 1; ; i++ {
		n := fmt.Sprintf("%s'%d", base, i)
		if !taken(n) {
			return n
		}
	}
}

// FreeVars returns the set of free variable names in p.
func FreeVars(p Pred) map[string]bool {
	out := map[string]bool{}
	freeVars(p, map[string]bool{}, out)
	return out
}

func freeVars(p Pred, bound, out map[string]bool) {
	collect := func(e Expr) {
		all := map[string]bool{}
		ExprVars(e, all)
		for n := range all {
			if !bound[n] {
				out[n] = true
			}
		}
	}
	switch p := p.(type) {
	case TruePred, FalsePred:
	case Cmp:
		collect(p.L)
		collect(p.R)
	case Rd:
		collect(p.Addr)
	case Wr:
		collect(p.Addr)
	case And:
		freeVars(p.L, bound, out)
		freeVars(p.R, bound, out)
	case Or:
		freeVars(p.L, bound, out)
		freeVars(p.R, bound, out)
	case Imp:
		freeVars(p.L, bound, out)
		freeVars(p.R, bound, out)
	case Forall:
		inner := make(map[string]bool, len(bound)+1)
		for k := range bound {
			inner[k] = true
		}
		inner[p.Var] = true
		freeVars(p.Body, inner, out)
	default:
		panic(fmt.Sprintf("logic: unknown pred %T", p))
	}
}

// SortedFreeVars returns the free variables of p in lexicographic order.
func SortedFreeVars(p Pred) []string {
	m := FreeVars(p)
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EvalPred evaluates a closed, memory-free predicate under env. It
// fails (ok == false) on quantifiers, rd/wr atoms, or sel/upd terms —
// these are not ground-decidable.
func EvalPred(p Pred, env map[string]uint64) (val, ok bool) {
	switch p := p.(type) {
	case TruePred:
		return true, true
	case FalsePred:
		return false, true
	case Cmp:
		l, ok := EvalExpr(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalExpr(p.R, env)
		if !ok {
			return false, false
		}
		return p.Op.Eval(l, r), true
	case And:
		l, ok := EvalPred(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPred(p.R, env)
		if !ok {
			return false, false
		}
		return l && r, true
	case Or:
		l, ok := EvalPred(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPred(p.R, env)
		if !ok {
			return false, false
		}
		return l || r, true
	case Imp:
		l, ok := EvalPred(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPred(p.R, env)
		if !ok {
			return false, false
		}
		return !l || r, true
	case Rd, Wr, Forall:
		return false, false
	}
	panic(fmt.Sprintf("logic: unknown pred %T", p))
}

// PredSize returns the number of AST nodes in p.
func PredSize(p Pred) int {
	switch p := p.(type) {
	case TruePred, FalsePred:
		return 1
	case Cmp:
		return 1 + exprSize(p.L) + exprSize(p.R)
	case Rd:
		return 1 + exprSize(p.Addr)
	case Wr:
		return 1 + exprSize(p.Addr)
	case And:
		return 1 + PredSize(p.L) + PredSize(p.R)
	case Or:
		return 1 + PredSize(p.L) + PredSize(p.R)
	case Imp:
		return 1 + PredSize(p.L) + PredSize(p.R)
	case Forall:
		return 1 + PredSize(p.Body)
	}
	panic(fmt.Sprintf("logic: unknown pred %T", p))
}

// Conjuncts flattens nested conjunctions into a list (dropping True).
func Conjuncts(p Pred) []Pred {
	var out []Pred
	var walk func(Pred)
	walk = func(q Pred) {
		switch q := q.(type) {
		case And:
			walk(q.L)
			walk(q.R)
		case TruePred:
		default:
			out = append(out, q)
		}
	}
	walk(p)
	return out
}

// Pretty renders p on multiple lines with indentation, for debugging
// large safety predicates.
func Pretty(p Pred) string {
	switch p := p.(type) {
	case And:
		return "(" + indent(Pretty(p.L), " ") + "\n /\\\n" + indent(Pretty(p.R), " ") + ")"
	case Imp:
		return "(" + indent(Pretty(p.L), " ") + "\n =>\n" + indent(Pretty(p.R), " ") + ")"
	case Forall:
		return fmt.Sprintf("ALL %s.\n%s", p.Var, indent(Pretty(p.Body), "  "))
	default:
		return p.String()
	}
}
