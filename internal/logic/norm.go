package logic

import (
	"fmt"
	"sort"
)

// This file implements the trusted normalizer shared by the producer and
// the consumer (see DESIGN.md). Normalization performs constant folding
// in two's-complement arithmetic, flattens ⊕/⊖ chains into a canonical
// "sum of terms plus constant" form, and applies a handful of
// word-algebra identities. Because the code consumer recomputes the
// verification condition with this same normalizer, safety proofs match
// hypotheses syntactically and never need to justify these steps — they
// play the role of the paper's built-in "two's-complement integer
// arithmetic" extension of the predicate calculus.

// NormExpr returns the canonical form of e.
func NormExpr(e Expr) Expr {
	switch e := e.(type) {
	case Const, Var:
		return e
	case Bin:
		l := NormExpr(e.L)
		r := NormExpr(e.R)
		lc, lIsC := l.(Const)
		rc, rIsC := r.(Const)
		if lIsC && rIsC {
			return Const{e.Op.Eval(lc.Val, rc.Val)}
		}
		// Canonical orientation for the commutative bit operations:
		// constant operand on the right.
		if lIsC && !rIsC && (e.Op == OpAnd || e.Op == OpOr || e.Op == OpXor) {
			l, r = r, l
			lc, rc = rc, lc
			lIsC, rIsC = rIsC, lIsC
		}
		_ = lc
		switch e.Op {
		case OpAdd, OpSub:
			return normSum(Bin{e.Op, l, r})
		case OpAnd:
			if rIsC && rc.Val == 0 {
				return Const{0}
			}
			if rIsC && rc.Val == ^uint64(0) {
				return l
			}
			// Combine nested constant masks: (x & c1) & c2 = x & (c1&c2).
			if rIsC {
				if lb, ok := l.(Bin); ok && lb.Op == OpAnd {
					if ic, ok := lb.R.(Const); ok {
						return NormExpr(Bin{OpAnd, lb.L, Const{ic.Val & rc.Val}})
					}
				}
				// (x << c) & m = 0 when every set bit of m lies below
				// bit c (the low c bits of a left shift are zero).
				if lb, ok := l.(Bin); ok && lb.Op == OpShl {
					if sc, ok := lb.R.(Const); ok && sc.Val&63 != 0 && rc.Val>>(sc.Val&63) == 0 {
						return Const{0}
					}
				}
			}
			return Bin{OpAnd, l, r}
		case OpOr, OpXor:
			if rIsC && rc.Val == 0 {
				return l
			}
			return Bin{e.Op, l, r}
		case OpShl, OpShr:
			if rIsC && rc.Val&63 == 0 {
				return l
			}
			// Combine nested constant shifts in the same direction.
			if rIsC {
				if lb, ok := l.(Bin); ok && lb.Op == e.Op {
					if ic, ok := lb.R.(Const); ok {
						total := (ic.Val & 63) + (rc.Val & 63)
						if total < 64 {
							return Bin{e.Op, lb.L, Const{total}}
						}
						return Const{0}
					}
				}
			}
			return Bin{e.Op, l, r}
		default:
			return Bin{e.Op, l, r}
		}
	case Sel:
		mem := NormExpr(e.Mem)
		addr := NormExpr(e.Addr)
		// sel(upd(m, a, v), b): yields v when a and b are syntactically
		// identical after normalization, and skips the update entirely
		// when the two addresses provably differ (same base, different
		// constant offset) — McCarthy's axioms, folded by the trusted
		// normalizer.
		for {
			u, ok := mem.(Upd)
			if !ok {
				break
			}
			if ExprEqual(u.Addr, addr) {
				return u.Val
			}
			if !definitelyDistinct(u.Addr, addr) {
				break
			}
			mem = u.Mem
		}
		return Sel{mem, addr}
	case Upd:
		return Upd{NormExpr(e.Mem), NormExpr(e.Addr), NormExpr(e.Val)}
	}
	panic(fmt.Sprintf("logic: unknown expr %T", e))
}

// normSum flattens an ⊕/⊖ tree into a sorted sum of non-constant terms
// plus a folded constant offset. Terms that are not themselves ⊕/⊖
// nodes are treated as opaque.
func normSum(e Expr) Expr {
	var terms []Expr
	var offset uint64
	var walk func(Expr, bool)
	walk = func(x Expr, negate bool) {
		switch x := x.(type) {
		case Const:
			if negate {
				offset -= x.Val
			} else {
				offset += x.Val
			}
		case Bin:
			if x.Op == OpAdd {
				walk(x.L, negate)
				walk(x.R, negate)
				return
			}
			if x.Op == OpSub {
				walk(x.L, negate)
				walk(x.R, !negate)
				return
			}
			appendTerm(&terms, x, negate)
		default:
			appendTerm(&terms, x, negate)
		}
	}
	walk(e, false)

	// Cancel syntactically equal positive/negative term pairs
	// (the paper's e1 ⊕ e2 ⊖ e2 = e1, valid because every value is
	// already a machine word in our representation).
	terms = cancelTerms(terms)

	// Deterministic order for the positive terms, negatives afterwards.
	sort.SliceStable(terms, func(i, j int) bool {
		ni, nj := isNeg(terms[i]), isNeg(terms[j])
		if ni != nj {
			return !ni
		}
		return terms[i].String() < terms[j].String()
	})

	var out Expr
	for _, t := range terms {
		n, neg := stripNeg(t)
		switch {
		case out == nil && neg:
			out = Bin{OpSub, Const{0}, n}
		case out == nil:
			out = n
		case neg:
			out = Bin{OpSub, out, n}
		default:
			out = Bin{OpAdd, out, n}
		}
	}
	if out == nil {
		return Const{offset}
	}
	if offset != 0 {
		out = Bin{OpAdd, out, Const{offset}}
	}
	return out
}

// negTerm marks a negated opaque term inside normSum's worklist. It is
// never exposed outside this file.
type negTerm struct{ X Expr }

func (negTerm) isExpr()          {}
func (n negTerm) String() string { return "(- " + n.X.String() + ")" }

func appendTerm(terms *[]Expr, x Expr, negate bool) {
	if negate {
		*terms = append(*terms, negTerm{x})
	} else {
		*terms = append(*terms, x)
	}
}

func isNeg(e Expr) bool { _, ok := e.(negTerm); return ok }

func stripNeg(e Expr) (Expr, bool) {
	if n, ok := e.(negTerm); ok {
		return n.X, true
	}
	return e, false
}

func cancelTerms(terms []Expr) []Expr {
	out := terms[:0:0]
	used := make([]bool, len(terms))
	for i, t := range terms {
		if used[i] {
			continue
		}
		ti, negI := stripNeg(t)
		cancelled := false
		for j := i + 1; j < len(terms); j++ {
			if used[j] {
				continue
			}
			tj, negJ := stripNeg(terms[j])
			if negI != negJ && ExprEqual(ti, tj) {
				used[i], used[j] = true, true
				cancelled = true
				break
			}
		}
		if !cancelled {
			out = append(out, t)
		}
	}
	return out
}

// definitelyDistinct reports whether two normalized address
// expressions denote different machine words for every variable
// assignment: they decompose as the same base plus different constant
// offsets (wraparound preserves disequality: b⊕c1 = b⊕c2 iff c1 = c2).
func definitelyDistinct(a, b Expr) bool {
	baseOff := func(e Expr) (Expr, uint64) {
		if bin, ok := e.(Bin); ok && bin.Op == OpAdd {
			if c, ok := bin.R.(Const); ok {
				return bin.L, c.Val
			}
		}
		if c, ok := e.(Const); ok {
			return nil, c.Val
		}
		return e, 0
	}
	ab, ao := baseOff(a)
	bb, bo := baseOff(b)
	if ab == nil && bb == nil {
		return ao != bo
	}
	if ab == nil || bb == nil {
		return false
	}
	return ExprEqual(ab, bb) && ao != bo
}

// NormPred returns the canonical form of p: all expressions normalized,
// ground atoms decided, and trivial connectives collapsed.
func NormPred(p Pred) Pred {
	switch p := p.(type) {
	case TruePred, FalsePred:
		return p
	case Cmp:
		l := NormExpr(p.L)
		r := NormExpr(p.R)
		if lc, ok := l.(Const); ok {
			if rc, ok := r.(Const); ok {
				if p.Op.Eval(lc.Val, rc.Val) {
					return True
				}
				return False
			}
		}
		// Canonical orientation for the symmetric atoms: constant on
		// the right.
		if p.Op == CmpEq || p.Op == CmpNe {
			if _, ok := l.(Const); ok {
				l, r = r, l
			}
		}
		// x ≤u y with x = 0 is vacuously true.
		if lc, ok := l.(Const); ok && lc.Val == 0 && p.Op == CmpUle {
			return True
		}
		if ExprEqual(l, r) {
			switch p.Op {
			case CmpEq, CmpUle, CmpSle:
				return True
			case CmpNe, CmpUlt, CmpSlt:
				return False
			}
		}
		return Cmp{p.Op, l, r}
	case Rd:
		return Rd{NormExpr(p.Addr)}
	case Wr:
		return Wr{NormExpr(p.Addr)}
	case And:
		l := NormPred(p.L)
		r := NormPred(p.R)
		switch {
		case PredEqual(l, True):
			return r
		case PredEqual(r, True):
			return l
		case PredEqual(l, False) || PredEqual(r, False):
			return False
		}
		return And{l, r}
	case Or:
		l := NormPred(p.L)
		r := NormPred(p.R)
		switch {
		case PredEqual(l, False):
			return r
		case PredEqual(r, False):
			return l
		case PredEqual(l, True) || PredEqual(r, True):
			return True
		}
		return Or{l, r}
	case Imp:
		l := NormPred(p.L)
		r := NormPred(p.R)
		switch {
		case PredEqual(l, True):
			return r
		case PredEqual(l, False):
			return True
		case PredEqual(r, True):
			return True
		}
		return Imp{l, r}
	case Forall:
		body := NormPred(p.Body)
		if PredEqual(body, True) {
			return True
		}
		if PredEqual(body, False) {
			return False // machine words are a non-empty domain
		}
		return Forall{p.Var, body}
	}
	panic(fmt.Sprintf("logic: unknown pred %T", p))
}
