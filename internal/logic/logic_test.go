package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// --- generators for property tests -----------------------------------

var testVarNames = []string{"r0", "r1", "r2", "i"}

// randExpr produces a random memory-free expression of bounded depth
// over testVarNames.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			// Bias toward small constants: offsets like these dominate
			// real safety predicates.
			if r.Intn(2) == 0 {
				return Const{uint64(r.Intn(128))}
			}
			return Const{r.Uint64()}
		}
		return Var{testVarNames[r.Intn(len(testVarNames))]}
	}
	op := BinOp(r.Intn(int(OpCmpSlt) + 1))
	return Bin{op, randExpr(r, depth-1), randExpr(r, depth-1)}
}

func randEnv(r *rand.Rand) map[string]uint64 {
	env := map[string]uint64{}
	for _, n := range testVarNames {
		env[n] = r.Uint64()
	}
	return env
}

func randPred(r *rand.Rand, depth int) Pred {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return True
		case 1:
			return False
		default:
			return Cmp{CmpOp(r.Intn(int(CmpSle) + 1)), randExpr(r, 2), randExpr(r, 2)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return And{randPred(r, depth-1), randPred(r, depth-1)}
	case 1:
		return Or{randPred(r, depth-1), randPred(r, depth-1)}
	default:
		return Imp{randPred(r, depth-1), randPred(r, depth-1)}
	}
}

// --- unit tests -------------------------------------------------------

func TestBinOpEval(t *testing.T) {
	cases := []struct {
		op      BinOp
		a, b, w uint64
	}{
		{OpAdd, ^uint64(0), 1, 0}, // wraparound
		{OpAdd, 3, 4, 7},
		{OpSub, 0, 1, ^uint64(0)},
		{OpMul, 1 << 63, 2, 0},
		{OpAnd, 0xff00, 0x0ff0, 0x0f00},
		{OpOr, 0xf0, 0x0f, 0xff},
		{OpXor, 0xff, 0x0f, 0xf0},
		{OpShl, 1, 63, 1 << 63},
		{OpShl, 1, 64, 1}, // shift counts are mod 64 (Alpha semantics)
		{OpShr, 1 << 63, 63, 1},
		{OpCmpEq, 5, 5, 1},
		{OpCmpEq, 5, 6, 0},
		{OpCmpUlt, 5, 6, 1},
		{OpCmpUlt, ^uint64(0), 0, 0},
		{OpCmpUle, 6, 6, 1},
		{OpCmpSlt, ^uint64(0), 0, 1}, // -1 <s 0
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.w {
			t.Errorf("%v.Eval(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestCmpOpEval(t *testing.T) {
	if !CmpSlt.Eval(^uint64(0), 0) {
		t.Error("-1 <s 0 should hold")
	}
	if CmpUlt.Eval(^uint64(0), 0) {
		t.Error("max <u 0 should not hold")
	}
	if !CmpNe.Eval(1, 2) || CmpNe.Eval(2, 2) {
		t.Error("CmpNe misbehaves")
	}
}

func TestNegateCmp(t *testing.T) {
	f := func(op8 uint8, a, b uint64) bool {
		op := CmpOp(op8 % 6)
		c := Cmp{op, Const{a}, Const{b}}
		n := NegateCmp(c)
		env := map[string]uint64{}
		v1, ok1 := EvalPred(c, env)
		v2, ok2 := EvalPred(n, env)
		return ok1 && ok2 && v1 == !v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstString(t *testing.T) {
	if got := (Const{8}).String(); got != "8" {
		t.Errorf("Const{8} = %q", got)
	}
	if got := CI(-8).String(); got != "-8" {
		t.Errorf("CI(-8) = %q", got)
	}
}

func TestConjAndConjuncts(t *testing.T) {
	p := Conj(Eq(V("r0"), C(1)), RdP(V("r1")), WrP(V("r2")))
	cs := Conjuncts(p)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	if Conj() != True {
		t.Error("empty Conj should be True")
	}
	single := Conj(RdP(V("r0")))
	if !PredEqual(single, RdP(V("r0"))) {
		t.Error("singleton Conj should be identity")
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// p = ∀i. i ≠ r0;  substituting r0 := i must rename the binder.
	p := All("i", Ne(V("i"), V("r0")))
	q := Subst(p, "r0", V("i"))
	fa, ok := q.(Forall)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if fa.Var == "i" {
		t.Fatalf("binder not renamed: %s", q)
	}
	body := fa.Body.(Cmp)
	if !ExprEqual(body.L, V(fa.Var)) || !ExprEqual(body.R, V("i")) {
		t.Fatalf("wrong body after capture-avoiding subst: %s", q)
	}
}

func TestSubstShadowing(t *testing.T) {
	// Substituting for a shadowed variable must be a no-op inside the
	// binder.
	p := All("i", Eq(V("i"), C(0)))
	q := Subst(p, "i", C(7))
	if !PredEqual(p, q) {
		t.Fatalf("shadowed subst changed predicate: %s", q)
	}
}

func TestFreeVars(t *testing.T) {
	p := All("i", Implies(Ult(V("i"), V("r2")), RdP(Add(V("r1"), V("i")))))
	fv := FreeVars(p)
	if fv["i"] {
		t.Error("bound variable reported free")
	}
	if !fv["r1"] || !fv["r2"] {
		t.Errorf("missing free vars: %v", fv)
	}
	sorted := SortedFreeVars(p)
	if len(sorted) != 2 || sorted[0] != "r1" || sorted[1] != "r2" {
		t.Errorf("SortedFreeVars = %v", sorted)
	}
}

func TestAlphaEqual(t *testing.T) {
	p := All("i", RdP(Add(V("r1"), V("i"))))
	q := All("j", RdP(Add(V("r1"), V("j"))))
	if !AlphaEqual(p, q) {
		t.Error("alpha-equivalent predicates not recognized")
	}
	r := All("j", RdP(Add(V("r2"), V("j"))))
	if AlphaEqual(p, r) {
		t.Error("different predicates reported alpha-equal")
	}
	// Nested binders with the same name.
	p2 := All("i", All("i", Eq(V("i"), C(0))))
	q2 := All("x", All("y", Eq(V("y"), C(0))))
	if !AlphaEqual(p2, q2) {
		t.Error("shadowed binders not handled")
	}
	q3 := All("x", All("y", Eq(V("x"), C(0))))
	if AlphaEqual(p2, q3) {
		t.Error("wrong binder accepted")
	}
}

func TestNormExprBasics(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Add(C(3), C(4)), C(7)},
		{Add(V("r0"), C(0)), V("r0")},
		{Sub(Add(V("r0"), C(8)), C(8)), V("r0")},
		{Add(Add(V("r0"), C(8)), CI(-8)), V("r0")},
		{Sub(Add(V("r0"), V("r1")), V("r1")), V("r0")},
		{And2(V("r0"), C(0)), C(0)},
		{And2(And2(V("r0"), C(0xff)), C(0x0f)), And2(V("r0"), C(0x0f))},
		{Shr(Shr(V("r0"), C(16)), C(30)), Shr(V("r0"), C(46))},
		{Shl(V("r0"), C(0)), V("r0")},
		{Or2(C(0), V("r0")), V("r0")},
		{SelE(UpdE(V("rm"), V("r0"), C(5)), V("r0")), C(5)},
		{Add(C(5), V("r0")), Add(V("r0"), C(5))},
	}
	for _, c := range cases {
		got := NormExpr(c.in)
		if !ExprEqual(got, c.want) {
			t.Errorf("NormExpr(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestNormExprPaperExample(t *testing.T) {
	// The §2.2 resource-access program reads at (r0 ⊕ 8) ⊕ (-8); the
	// paper proves r0 = r0⊕8⊖8 with an explicit arithmetic rule. Our
	// trusted normalizer folds it away.
	e := Add(Add(V("r0"), C(8)), CI(-8))
	if !ExprEqual(NormExpr(e), V("r0")) {
		t.Fatalf("NormExpr((r0+8)-8) = %s", NormExpr(e))
	}
}

func TestNormPredBasics(t *testing.T) {
	cases := []struct {
		in   Pred
		want Pred
	}{
		{Eq(C(3), C(3)), True},
		{Eq(C(3), C(4)), False},
		{And{True, RdP(V("r0"))}, RdP(V("r0"))},
		{And{RdP(V("r0")), False}, False},
		{Or{False, RdP(V("r0"))}, RdP(V("r0"))},
		{Imp{False, RdP(V("r0"))}, True},
		{Imp{RdP(V("r0")), True}, True},
		{All("i", True), True},
		{Ule(C(0), V("i")), True},
		{Ult(C(0), V("i")), Ult(C(0), V("i"))},
		{Eq(C(4), V("r0")), Eq(V("r0"), C(4))},
		{Ult(V("r0"), V("r0")), False},
		{Ule(V("r0"), V("r0")), True},
	}
	for _, c := range cases {
		got := NormPred(c.in)
		if !PredEqual(got, c.want) {
			t.Errorf("NormPred(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// --- property tests ---------------------------------------------------

func TestNormExprPreservesMeaning(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		e := randExpr(r, 4)
		env := randEnv(r)
		v1, ok1 := EvalExpr(e, env)
		v2, ok2 := EvalExpr(NormExpr(e), env)
		if !ok1 || !ok2 {
			t.Fatalf("memory-free expr failed to evaluate: %s", e)
		}
		if v1 != v2 {
			t.Fatalf("NormExpr changed meaning: %s -> %s (%d vs %d)",
				e, NormExpr(e), v1, v2)
		}
	}
}

func TestNormExprIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		e := randExpr(r, 4)
		n1 := NormExpr(e)
		n2 := NormExpr(n1)
		if !ExprEqual(n1, n2) {
			t.Fatalf("NormExpr not idempotent on %s:\n  1: %s\n  2: %s", e, n1, n2)
		}
	}
}

func TestNormPredPreservesMeaning(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		p := randPred(r, 3)
		env := randEnv(r)
		v1, ok1 := EvalPred(p, env)
		v2, ok2 := EvalPred(NormPred(p), env)
		if !ok1 || !ok2 {
			t.Fatalf("pred failed to evaluate: %s", p)
		}
		if v1 != v2 {
			t.Fatalf("NormPred changed meaning: %s -> %s", p, NormPred(p))
		}
	}
}

func TestNormPredIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3000; trial++ {
		p := randPred(r, 3)
		n1 := NormPred(p)
		n2 := NormPred(n1)
		if !PredEqual(n1, n2) {
			t.Fatalf("NormPred not idempotent on %s:\n  1: %s\n  2: %s", p, n1, n2)
		}
	}
}

func TestSubstExprSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		e := randExpr(r, 3)
		repl := randExpr(r, 2)
		env := randEnv(r)
		rv, _ := EvalExpr(repl, env)
		env2 := map[string]uint64{}
		for k, v := range env {
			env2[k] = v
		}
		env2["r0"] = rv
		v1, _ := EvalExpr(SubstExpr(e, "r0", repl), env)
		v2, _ := EvalExpr(e, env2)
		if v1 != v2 {
			t.Fatalf("SubstExpr wrong on %s [r0 := %s]", e, repl)
		}
	}
}

func TestExprEqualReflexiveAndSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 1000; trial++ {
		a := randExpr(r, 3)
		b := randExpr(r, 3)
		if !ExprEqual(a, a) {
			t.Fatalf("ExprEqual not reflexive on %s", a)
		}
		if ExprEqual(a, b) != ExprEqual(b, a) {
			t.Fatalf("ExprEqual not symmetric on %s, %s", a, b)
		}
	}
}

func TestPredSizePositive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		p := randPred(r, 3)
		if PredSize(p) <= 0 {
			t.Fatalf("PredSize(%s) <= 0", p)
		}
	}
}

func TestEvalPredNonGround(t *testing.T) {
	if _, ok := EvalPred(RdP(V("r0")), map[string]uint64{"r0": 1}); ok {
		t.Error("rd() must not be ground-decidable")
	}
	if _, ok := EvalPred(All("i", True), nil); ok {
		t.Error("quantifiers must not be ground-decidable")
	}
	if _, ok := EvalExpr(SelE(V("rm"), C(0)), map[string]uint64{"rm": 0}); ok {
		t.Error("sel() must not be ground-evaluable")
	}
}

func TestPrettyRuns(t *testing.T) {
	p := AllOf([]string{"r0", "rm"},
		Implies(Conj(RdP(V("r0")), Ne(SelE(V("rm"), V("r0")), C(0))), WrP(Add(V("r0"), C(8)))))
	s := Pretty(p)
	if len(s) == 0 {
		t.Fatal("empty pretty print")
	}
}
