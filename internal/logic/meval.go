package logic

import "fmt"

// MemEnv is a concrete interpretation for expressions involving the
// memory sort: word variables map to values, memory variables map to
// functional stores. It exists to model-check the trusted normalizer —
// including its sel/upd folding — against brute-force evaluation.
type MemEnv struct {
	Words map[string]uint64
	Mems  map[string]map[uint64]uint64
}

// value is either a machine word or a store.
type value struct {
	word uint64
	mem  map[uint64]uint64 // nil for word values
}

// EvalExprMem evaluates an expression that may mention sel/upd under a
// concrete memory environment. Word-sorted expressions return their
// value; memory-sorted expressions return ok=false (callers compare
// words).
func EvalExprMem(e Expr, env *MemEnv) (uint64, bool) {
	v, err := evalValue(e, env)
	if err != nil || v.mem != nil {
		return 0, false
	}
	return v.word, true
}

func evalValue(e Expr, env *MemEnv) (value, error) {
	switch e := e.(type) {
	case Const:
		return value{word: e.Val}, nil
	case Var:
		if m, ok := env.Mems[e.Name]; ok {
			return value{mem: m}, nil
		}
		if w, ok := env.Words[e.Name]; ok {
			return value{word: w}, nil
		}
		return value{}, fmt.Errorf("logic: unbound variable %q", e.Name)
	case Bin:
		l, err := evalValue(e.L, env)
		if err != nil {
			return value{}, err
		}
		r, err := evalValue(e.R, env)
		if err != nil {
			return value{}, err
		}
		if l.mem != nil || r.mem != nil {
			return value{}, fmt.Errorf("logic: arithmetic on memory sort")
		}
		return value{word: e.Op.Eval(l.word, r.word)}, nil
	case Sel:
		m, err := evalValue(e.Mem, env)
		if err != nil {
			return value{}, err
		}
		a, err := evalValue(e.Addr, env)
		if err != nil {
			return value{}, err
		}
		if m.mem == nil || a.mem != nil {
			return value{}, fmt.Errorf("logic: ill-sorted sel")
		}
		return value{word: m.mem[a.word]}, nil
	case Upd:
		m, err := evalValue(e.Mem, env)
		if err != nil {
			return value{}, err
		}
		a, err := evalValue(e.Addr, env)
		if err != nil {
			return value{}, err
		}
		v, err := evalValue(e.Val, env)
		if err != nil {
			return value{}, err
		}
		if m.mem == nil || a.mem != nil || v.mem != nil {
			return value{}, fmt.Errorf("logic: ill-sorted upd")
		}
		out := make(map[uint64]uint64, len(m.mem)+1)
		for k, w := range m.mem {
			out[k] = w
		}
		out[a.word] = v.word
		return value{mem: out}, nil
	}
	return value{}, fmt.Errorf("logic: unknown expr %T", e)
}

// EvalPredMem evaluates a quantifier-free, rd/wr-free predicate under
// a concrete memory environment.
func EvalPredMem(p Pred, env *MemEnv) (bool, bool) {
	switch p := p.(type) {
	case TruePred:
		return true, true
	case FalsePred:
		return false, true
	case Cmp:
		l, ok := EvalExprMem(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalExprMem(p.R, env)
		if !ok {
			return false, false
		}
		return p.Op.Eval(l, r), true
	case And:
		l, ok := EvalPredMem(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPredMem(p.R, env)
		if !ok {
			return false, false
		}
		return l && r, true
	case Or:
		l, ok := EvalPredMem(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPredMem(p.R, env)
		if !ok {
			return false, false
		}
		return l || r, true
	case Imp:
		l, ok := EvalPredMem(p.L, env)
		if !ok {
			return false, false
		}
		r, ok := EvalPredMem(p.R, env)
		if !ok {
			return false, false
		}
		return !l || r, true
	default:
		return false, false
	}
}
