package logic

import "testing"

// Native Go fuzz targets (run with `go test -fuzz=FuzzParsePred`; under
// plain `go test` the seed corpus doubles as a robustness regression
// suite). The parser faces user-written policy files and -inv flags,
// so it must never panic, and anything it accepts must round-trip
// through the printer.

func FuzzParsePred(f *testing.F) {
	seeds := []string{
		"true", "rd(r0)", "r0 = 5", "ALL i. rd(r1 + i)",
		"(64 <= r2 /\\ (ALL i. (i < r2 /\\ (i & 7) = 0) => rd(r1 + i)))",
		"sel(rm, r0) <> 0 => wr(r0 + 8)",
		"cmpult(r4, r2) <> 0", "a \\/ b", "((", "rd(", "ALL . x", "#!$",
		"r0 <s -1 \\/ r0 <=s 0x10", "upd(rm, r0, 5) = rm",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePred(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip through the printer.
		back, err := ParsePred(p.String())
		if err != nil {
			t.Fatalf("printed form does not re-parse: %s: %v", p, err)
		}
		if !PredEqual(p, back) {
			t.Fatalf("print/parse round trip changed predicate:\n in:  %s\n out: %s", p, back)
		}
		// Normalization must not panic on parsed predicates either.
		_ = NormPred(p)
	})
}

func FuzzParseExpr(f *testing.F) {
	for _, s := range []string{
		"42", "r0 + 8", "(r0 >> 46) & 60", "sel(rm, r0)", "-8",
		"cmpeq(r1, 0x0608)", "((", "1 +",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		back, err := ParseExpr(e.String())
		if err != nil || !ExprEqual(e, back) {
			t.Fatalf("round trip failed for %s", e)
		}
		_ = NormExpr(e)
	})
}
