// Package logic implements the first-order logic in which PCC safety
// predicates are stated: expressions over 64-bit two's-complement machine
// words (including the sel/upd memory terms of Necula & Lee's abstract
// machine) and predicates built from equality, unsigned and signed
// orderings, the rd/wr safety atoms, and the usual connectives and
// universal quantifier.
//
// All expressions denote values in [0, 2^64), and every arithmetic
// operator is the "circled" two's-complement operator of the paper:
// Add is e1 ⊕ e2 = (e1 + e2) mod 2^64, and so on. The paper's side
// condition "ri mod 2^64 = ri" is therefore an invariant of the
// representation rather than a proof obligation; see DESIGN.md
// ("trusted normalizer").
package logic

import (
	"fmt"
	"strings"
)

// BinOp identifies a binary operator on 64-bit machine words.
type BinOp uint8

// Binary operators. The Cmp* operators are the Alpha compare
// instructions viewed as expressions: they yield 1 when the comparison
// holds and 0 otherwise.
const (
	OpAdd    BinOp = iota // two's-complement addition (⊕)
	OpSub                 // two's-complement subtraction (⊖)
	OpMul                 // two's-complement multiplication
	OpAnd                 // bitwise and
	OpOr                  // bitwise or
	OpXor                 // bitwise xor
	OpShl                 // logical shift left (shift amount mod 64)
	OpShr                 // logical shift right (shift amount mod 64)
	OpCmpEq               // 1 if equal, else 0
	OpCmpUlt              // 1 if unsigned less-than, else 0
	OpCmpUle              // 1 if unsigned less-or-equal, else 0
	OpCmpSlt              // 1 if signed less-than, else 0
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpAnd: "&", OpOr: "|", OpXor: "^",
	OpShl: "<<", OpShr: ">>",
	OpCmpEq: "cmpeq", OpCmpUlt: "cmpult", OpCmpUle: "cmpule", OpCmpSlt: "cmpslt",
}

// String returns the conventional spelling of the operator.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("binop(%d)", uint8(op))
}

// isCompare reports whether the operator is one of the 0/1-valued
// comparison operators.
func (op BinOp) isCompare() bool {
	switch op {
	case OpCmpEq, OpCmpUlt, OpCmpUle, OpCmpSlt:
		return true
	}
	return false
}

// Eval applies the operator to two concrete machine words.
func (op BinOp) Eval(a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpCmpEq:
		return b2i(a == b)
	case OpCmpUlt:
		return b2i(a < b)
	case OpCmpUle:
		return b2i(a <= b)
	case OpCmpSlt:
		return b2i(int64(a) < int64(b))
	}
	panic(fmt.Sprintf("logic: unknown binop %d", op))
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Expr is a first-order expression denoting a 64-bit machine word
// (or, for terms of sort "memory", a memory state; the two sorts are
// kept apart by construction, as in the paper's rm pseudo-register).
type Expr interface {
	isExpr()
	// String renders the expression in a fully parenthesized
	// human-readable syntax.
	String() string
}

// Const is an integer literal in [0, 2^64).
type Const struct{ Val uint64 }

// Var is a named variable: a machine register (r0..r10), the memory
// pseudo-register rm, or a logical variable bound by a quantifier.
type Var struct{ Name string }

// Bin applies a binary operator to two word-sorted expressions.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Sel is sel(mem, addr): the 64-bit word at address addr in memory
// state mem.
type Sel struct{ Mem, Addr Expr }

// Upd is upd(mem, addr, val): the memory state obtained from mem by
// storing val at addr.
type Upd struct{ Mem, Addr, Val Expr }

func (Const) isExpr() {}
func (Var) isExpr()   {}
func (Bin) isExpr()   {}
func (Sel) isExpr()   {}
func (Upd) isExpr()   {}

func (c Const) String() string {
	if c.Val >= 1<<63 {
		// Render small negative two's-complement constants negatively
		// for readability (e.g. -8 rather than 18446744073709551608).
		if neg := -c.Val; neg <= 1<<16 {
			return fmt.Sprintf("-%d", neg)
		}
		return fmt.Sprintf("%#x", c.Val)
	}
	return fmt.Sprintf("%d", c.Val)
}

func (v Var) String() string { return v.Name }

func (b Bin) String() string {
	if b.Op.isCompare() {
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.L, b.R)
	}
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (s Sel) String() string { return fmt.Sprintf("sel(%s, %s)", s.Mem, s.Addr) }

func (u Upd) String() string {
	return fmt.Sprintf("upd(%s, %s, %s)", u.Mem, u.Addr, u.Val)
}

// Convenience constructors.

// C returns the constant expression with the given value.
func C(v uint64) Expr { return Const{v} }

// CI returns the constant expression for a (possibly negative) signed
// value, encoded in two's complement.
func CI(v int64) Expr { return Const{uint64(v)} }

// V returns the variable with the given name.
func V(name string) Expr { return Var{name} }

// Add returns l ⊕ r.
func Add(l, r Expr) Expr { return Bin{OpAdd, l, r} }

// Sub returns l ⊖ r.
func Sub(l, r Expr) Expr { return Bin{OpSub, l, r} }

// And2 returns the bitwise and of l and r.
func And2(l, r Expr) Expr { return Bin{OpAnd, l, r} }

// Or2 returns the bitwise or of l and r.
func Or2(l, r Expr) Expr { return Bin{OpOr, l, r} }

// Xor2 returns the bitwise xor of l and r.
func Xor2(l, r Expr) Expr { return Bin{OpXor, l, r} }

// Shl returns l shifted left by r bits.
func Shl(l, r Expr) Expr { return Bin{OpShl, l, r} }

// Shr returns l shifted right (logically) by r bits.
func Shr(l, r Expr) Expr { return Bin{OpShr, l, r} }

// SelE returns sel(mem, addr).
func SelE(mem, addr Expr) Expr { return Sel{mem, addr} }

// UpdE returns upd(mem, addr, val).
func UpdE(mem, addr, val Expr) Expr { return Upd{mem, addr, val} }

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case Const:
		b, ok := b.(Const)
		return ok && a.Val == b.Val
	case Var:
		b, ok := b.(Var)
		return ok && a.Name == b.Name
	case Bin:
		b, ok := b.(Bin)
		return ok && a.Op == b.Op && ExprEqual(a.L, b.L) && ExprEqual(a.R, b.R)
	case Sel:
		b, ok := b.(Sel)
		return ok && ExprEqual(a.Mem, b.Mem) && ExprEqual(a.Addr, b.Addr)
	case Upd:
		b, ok := b.(Upd)
		return ok && ExprEqual(a.Mem, b.Mem) && ExprEqual(a.Addr, b.Addr) && ExprEqual(a.Val, b.Val)
	case nil:
		return b == nil
	}
	panic(fmt.Sprintf("logic: unknown expr %T", a))
}

// SubstExpr replaces every free occurrence of the variable named v in e
// with repl. Expressions have no binders, so no capture is possible here.
func SubstExpr(e Expr, v string, repl Expr) Expr {
	switch e := e.(type) {
	case Const:
		return e
	case Var:
		if e.Name == v {
			return repl
		}
		return e
	case Bin:
		return Bin{e.Op, SubstExpr(e.L, v, repl), SubstExpr(e.R, v, repl)}
	case Sel:
		return Sel{SubstExpr(e.Mem, v, repl), SubstExpr(e.Addr, v, repl)}
	case Upd:
		return Upd{SubstExpr(e.Mem, v, repl), SubstExpr(e.Addr, v, repl), SubstExpr(e.Val, v, repl)}
	}
	panic(fmt.Sprintf("logic: unknown expr %T", e))
}

// ExprVars adds the names of all variables occurring in e to set.
func ExprVars(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case Const:
	case Var:
		set[e.Name] = true
	case Bin:
		ExprVars(e.L, set)
		ExprVars(e.R, set)
	case Sel:
		ExprVars(e.Mem, set)
		ExprVars(e.Addr, set)
	case Upd:
		ExprVars(e.Mem, set)
		ExprVars(e.Addr, set)
		ExprVars(e.Val, set)
	default:
		panic(fmt.Sprintf("logic: unknown expr %T", e))
	}
}

// EvalExpr evaluates a closed, memory-free expression. env supplies
// values for variables; evaluation fails (ok == false) if the expression
// mentions a variable absent from env or contains sel/upd terms.
func EvalExpr(e Expr, env map[string]uint64) (val uint64, ok bool) {
	switch e := e.(type) {
	case Const:
		return e.Val, true
	case Var:
		v, ok := env[e.Name]
		return v, ok
	case Bin:
		l, ok := EvalExpr(e.L, env)
		if !ok {
			return 0, false
		}
		r, ok := EvalExpr(e.R, env)
		if !ok {
			return 0, false
		}
		return e.Op.Eval(l, r), true
	case Sel, Upd:
		return 0, false
	}
	panic(fmt.Sprintf("logic: unknown expr %T", e))
}

// exprSize returns the number of AST nodes in e (used for bounds in the
// prover and for size accounting in tests).
func exprSize(e Expr) int {
	switch e := e.(type) {
	case Const, Var:
		return 1
	case Bin:
		return 1 + exprSize(e.L) + exprSize(e.R)
	case Sel:
		return 1 + exprSize(e.Mem) + exprSize(e.Addr)
	case Upd:
		return 1 + exprSize(e.Mem) + exprSize(e.Addr) + exprSize(e.Val)
	}
	panic(fmt.Sprintf("logic: unknown expr %T", e))
}

// ExprSize returns the number of AST nodes in e.
func ExprSize(e Expr) int { return exprSize(e) }

// indent is a shared helper for multi-line pretty printers.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
