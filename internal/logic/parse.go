package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements a parser for the textual predicate syntax
// produced by the String methods, so that safety policies and loop
// invariants can be written in files and passed to the command-line
// tools. The grammar (loosest binding first):
//
//	pred  ::= 'ALL' ident '.' pred
//	        | or-pred [ '=>' pred ]                    (right assoc)
//	or    ::= and-pred { '\/' and-pred }
//	and   ::= atom { '/\' atom }
//	atom  ::= 'true' | 'false'
//	        | 'rd' '(' expr ')' | 'wr' '(' expr ')'
//	        | '(' pred ')'
//	        | expr cmp expr
//	cmp   ::= '=' | '<>' | '!=' | '<=s' | '<s' | '<=' | '<'
//	expr  ::= bitor  { ('+'|'-') ... }   with C-like precedence:
//	          '|' < '^' < '&' < ('<<'|'>>') < ('+'|'-') < primary
//	prim  ::= number | ident | '-' prim | '(' expr ')'
//	        | 'sel' '(' expr ',' expr ')'
//	        | 'upd' '(' expr ',' expr ',' expr ')'
//	        | ('cmpeq'|'cmpult'|'cmpule'|'cmpslt') '(' expr ',' expr ')'
//
// Numbers may be decimal, hex (0x…), or negative (two's complement).
// ParsePred(p.String()) returns a predicate equal to p (a property the
// tests enforce).

// ParseError reports a syntax error with its byte offset.
type ParseError struct {
	Off int
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("logic: parse at %d: %s", e.Off, e.Msg) }

type parser struct {
	src string
	pos int
}

// ParsePred parses a predicate.
func ParsePred(src string) (Pred, error) {
	p := &parser{src: src}
	pred, err := p.pred()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return pred, nil
}

// ParseExpr parses an expression.
func ParseExpr(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParsePred is ParsePred for statically known-good sources.
func MustParsePred(src string) Pred {
	p, err := ParsePred(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{p.pos, fmt.Sprintf(format, args...)}
}

func (p *parser) ws() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

// lit consumes the exact literal s (after whitespace).
func (p *parser) lit(s string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// keyword consumes s only when not followed by an identifier character.
func (p *parser) keyword(s string) bool {
	p.ws()
	rest := p.src[p.pos:]
	if !strings.HasPrefix(rest, s) {
		return false
	}
	if len(rest) > len(s) && isIdentChar(rune(rest[len(s)])) {
		return false
	}
	p.pos += len(s)
	return true
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '\'' ||
		c == '!' || c == '$' || c == '^'
}

func (p *parser) ident() (string, bool) {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}

func (p *parser) number() (uint64, bool, error) {
	p.ws()
	start := p.pos
	if p.pos >= len(p.src) || p.src[p.pos] < '0' || p.src[p.pos] > '9' {
		return 0, false, nil
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
			c == 'x' || c == 'X' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, false, nil
	}
	v, err := strconv.ParseUint(p.src[start:p.pos], 0, 64)
	if err != nil {
		p.pos = start
		return 0, false, p.errf("bad number %q", p.src[start:p.pos])
	}
	return v, true, nil
}

// --- predicates --------------------------------------------------------

func (p *parser) pred() (Pred, error) {
	if p.keyword("ALL") || p.keyword("forall") {
		name, ok := p.ident()
		if !ok {
			return nil, p.errf("expected variable after ALL")
		}
		if !p.lit(".") {
			return nil, p.errf("expected '.' after ALL %s", name)
		}
		body, err := p.pred()
		if err != nil {
			return nil, err
		}
		return Forall{name, body}, nil
	}
	l, err := p.orPred()
	if err != nil {
		return nil, err
	}
	if p.lit("=>") {
		r, err := p.pred()
		if err != nil {
			return nil, err
		}
		return Imp{l, r}, nil
	}
	return l, nil
}

func (p *parser) orPred() (Pred, error) {
	l, err := p.andPred()
	if err != nil {
		return nil, err
	}
	for p.lit("\\/") {
		r, err := p.andPred()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *parser) andPred() (Pred, error) {
	l, err := p.atomPred()
	if err != nil {
		return nil, err
	}
	for p.lit("/\\") {
		r, err := p.atomPred()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *parser) atomPred() (Pred, error) {
	switch {
	case p.keyword("true"):
		return True, nil
	case p.keyword("false"):
		return False, nil
	case p.keyword("rd"):
		e, err := p.parenExpr1()
		if err != nil {
			return nil, err
		}
		return Rd{e}, nil
	case p.keyword("wr"):
		e, err := p.parenExpr1()
		if err != nil {
			return nil, err
		}
		return Wr{e}, nil
	}

	// '(' could open a parenthesized predicate or an expression; try
	// the predicate first and backtrack.
	if save := p.pos; p.lit("(") {
		if inner, err := p.pred(); err == nil && p.lit(")") {
			// Could still be the left operand of a comparison if the
			// "predicate" was really an expression — but expressions
			// and predicates are syntactically disjoint here except
			// for this parenthesized case; peek for a comparison
			// operator.
			if op, ok := p.peekCmp(); ok && isExprPred(inner) {
				p.pos = save
				_ = op
			} else {
				return inner, nil
			}
		} else {
			p.pos = save
		}
	}

	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	op, ok := p.cmpOp()
	if !ok {
		return nil, p.errf("expected comparison operator")
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Cmp{op, l, r}, nil
}

// isExprPred reports whether a parsed "predicate" could only have been
// an expression misread (never true: expressions are not predicates in
// this grammar), kept for clarity of the backtracking above.
func isExprPred(Pred) bool { return false }

func (p *parser) peekCmp() (CmpOp, bool) {
	save := p.pos
	op, ok := p.cmpOp()
	p.pos = save
	return op, ok
}

func (p *parser) cmpOp() (CmpOp, bool) {
	switch {
	case p.lit("<>"), p.lit("!="):
		return CmpNe, true
	case p.lit("<=s"):
		return CmpSle, true
	case p.lit("<s"):
		return CmpSlt, true
	case p.lit("<="):
		return CmpUle, true
	case p.lit("<"):
		return CmpUlt, true
	case p.lit("="):
		return CmpEq, true
	}
	return 0, false
}

// --- expressions --------------------------------------------------------

func (p *parser) expr() (Expr, error) { return p.binLevel(0) }

// Precedence levels, loosest first.
var exprLevels = [][]struct {
	tok string
	op  BinOp
}{
	{{"|", OpOr}},
	{{"^", OpXor}},
	{{"&", OpAnd}},
	{{"<<", OpShl}, {">>", OpShr}},
	{{"+", OpAdd}, {"-", OpSub}},
	{{"*", OpMul}},
}

func (p *parser) binLevel(level int) (Expr, error) {
	if level == len(exprLevels) {
		return p.primary()
	}
	l, err := p.binLevel(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range exprLevels[level] {
			p.ws()
			// '<' of a comparison must not be eaten by '<<'.
			if cand.tok == "<<" && strings.HasPrefix(p.src[p.pos:], "<=") {
				continue
			}
			if p.lit(cand.tok) {
				r, err := p.binLevel(level + 1)
				if err != nil {
					return nil, err
				}
				l = Bin{cand.op, l, r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

var cmpExprNames = map[string]BinOp{
	"cmpeq": OpCmpEq, "cmpult": OpCmpUlt, "cmpule": OpCmpUle, "cmpslt": OpCmpSlt,
}

func (p *parser) primary() (Expr, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of input")
	}

	// Negative literal (two's complement).
	if p.src[p.pos] == '-' {
		p.pos++
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		c, ok := e.(Const)
		if !ok {
			return nil, p.errf("'-' only applies to numeric literals")
		}
		return Const{-c.Val}, nil
	}

	if v, ok, err := p.number(); err != nil {
		return nil, err
	} else if ok {
		return Const{v}, nil
	}

	if p.lit("(") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.lit(")") {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	}

	name, ok := p.ident()
	if !ok {
		return nil, p.errf("expected expression")
	}
	switch name {
	case "sel":
		args, err := p.args(2)
		if err != nil {
			return nil, err
		}
		return Sel{args[0], args[1]}, nil
	case "upd":
		args, err := p.args(3)
		if err != nil {
			return nil, err
		}
		return Upd{args[0], args[1], args[2]}, nil
	}
	if op, isCmp := cmpExprNames[name]; isCmp {
		args, err := p.args(2)
		if err != nil {
			return nil, err
		}
		return Bin{op, args[0], args[1]}, nil
	}
	return Var{name}, nil
}

func (p *parser) parenExpr1() (Expr, error) {
	args, err := p.args(1)
	if err != nil {
		return nil, err
	}
	return args[0], nil
}

func (p *parser) args(n int) ([]Expr, error) {
	if !p.lit("(") {
		return nil, p.errf("expected '('")
	}
	out := make([]Expr, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && !p.lit(",") {
			return nil, p.errf("expected ','")
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if !p.lit(")") {
		return nil, p.errf("expected ')'")
	}
	return out, nil
}
