// Structured audit trail. Every security-relevant kernel decision —
// policy negotiation, filter/handler install or rejection, proof-cache
// eviction, uninstall — is recorded through a log/slog.Logger with
// enough context to reconstruct the decision from the log alone: the
// policy's content digest, the binary's SHA-256 and size, the VC size
// and LF check steps, the per-stage validation durations, the static
// WCET, and — when a proof fails to check — the first failing LF
// subterm the checker rejected.
//
// Like the telemetry recorder, the sink hangs off an atomic pointer
// and every hook tolerates the disabled state, so a kernel without an
// audit log pays one atomic load per decision and nothing on the
// dispatch path (dispatch is deliberately not audited: millions of
// packets per second belong in metrics, not logs).
package kernel

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"log/slog"
	"time"

	pcc "repro"
	"repro/internal/lf"
	"repro/internal/policy"
)

// auditor wraps the configured logger. A nil *auditor is the disabled
// state.
type auditor struct {
	log *slog.Logger
}

// SetAuditLog attaches a structured audit logger to the kernel (nil
// detaches). The swap is atomic and safe while installs are in
// flight.
func (k *Kernel) SetAuditLog(l *slog.Logger) {
	if l == nil {
		k.audit.Store(nil)
		return
	}
	k.audit.Store(&auditor{log: l})
}

// AuditLog returns the attached audit logger, or nil.
func (k *Kernel) AuditLog() *slog.Logger {
	a := k.audit.Load()
	if a == nil {
		return nil
	}
	return a.log
}

// validationAudit carries the forensic context of one validation
// attempt from the lock-free validation stage to the commit section,
// where the final verdict is known and the install record is written.
type validationAudit struct {
	event      uint64 // correlation EventID shared with spans and flight events
	owner      string
	kind       string // "filter" or "handler"
	binSHA     string // hex SHA-256 of the binary bytes
	binBytes   int
	policyName string
	policyDig  string // hex SHA-256 content digest of the policy
	cacheHit   bool
	stats      *pcc.ValidationStats // nil on cache hit or parse-level failure
	started    time.Time
}

// newValidationAudit starts an audit record for one install attempt.
// Returns nil when auditing is disabled, and every later hook
// tolerates that.
func (a *auditor) newValidationAudit(kind, owner string, binary []byte, eid uint64) *validationAudit {
	if a == nil {
		return nil
	}
	sum := sha256.Sum256(binary)
	return &validationAudit{
		event:    eid,
		owner:    owner,
		kind:     kind,
		binSHA:   hex.EncodeToString(sum[:]),
		binBytes: len(binary),
		started:  time.Now(),
	}
}

// setPolicy records which policy the verdict was reached under.
func (va *validationAudit) setPolicy(pol *policy.Policy) {
	if va == nil || pol == nil {
		return
	}
	dig := pol.Digest()
	va.policyName = pol.Name
	va.policyDig = hex.EncodeToString(dig[:])
}

// setStats attaches the stage breakdown of a full (non-cached)
// validation.
func (va *validationAudit) setStats(st *pcc.ValidationStats) {
	if va == nil {
		return
	}
	va.stats = st
}

// setCacheHit marks the attempt as served from the proof cache.
func (va *validationAudit) setCacheHit() {
	if va == nil {
		return
	}
	va.cacheHit = true
}

// install writes the final install record: one line per decision,
// Info for installs, Warn for rejections.
func (a *auditor) install(va *validationAudit, slot *cacheSlot, err error) {
	if a == nil || va == nil {
		return
	}
	cache := "miss"
	if va.cacheHit {
		cache = "hit"
	}
	attrs := []any{
		slog.String("event", "install"),
		slog.Uint64("event_id", va.event),
		slog.String("kind", va.kind),
		slog.String("owner", va.owner),
		slog.String("policy", va.policyName),
		slog.String("policy_digest", va.policyDig),
		slog.String("binary_sha256", va.binSHA),
		slog.Int("binary_bytes", va.binBytes),
		slog.String("cache", cache),
		slog.Duration("decision_time", time.Since(va.started)),
	}
	if st := va.stats; st != nil {
		attrs = append(attrs,
			slog.Int("vc_nodes", st.VCNodes),
			slog.Int("check_steps", st.CheckSteps),
			slog.Int64("parse_us", st.Parse.Microseconds()),
			slog.Int64("lfsig_us", st.SigCheck.Microseconds()),
			slog.Int64("vcgen_us", st.VCGen.Microseconds()),
			slog.Int64("lfcheck_us", st.Check.Microseconds()),
		)
	}
	if slot != nil && slot.wcetErr == nil {
		attrs = append(attrs, slog.Int64("wcet_cycles", slot.wcet))
	}
	if err == nil {
		attrs = append(attrs, slog.String("verdict", "installed"))
		a.log.Info("pcc install", attrs...)
		return
	}
	attrs = append(attrs,
		slog.String("verdict", "rejected"),
		slog.String("reject_reason", installRejectReason(err)),
		slog.String("error", err.Error()),
	)
	// On a proof-check failure, surface the first failing LF subterm:
	// the exact point in the proof the checker rejected.
	var te *lf.TypeError
	if errors.As(err, &te) && te.Subterm != "" {
		attrs = append(attrs, slog.String("lf_failing_subterm", te.Subterm))
	}
	// On a contained panic, surface the stage and the panic value —
	// the forensic trail for a crash-grade bug an adversarial blob
	// found in the validator.
	var pe *pcc.PanicError
	if errors.As(err, &pe) {
		attrs = append(attrs,
			slog.String("panic_stage", pe.Stage),
			slog.String("panic_value", pe.Value),
		)
	}
	a.log.Warn("pcc install", attrs...)
}

// quarantine records the start (or extension) of a producer embargo.
func (a *auditor) quarantine(qe *QuarantineError, eid uint64) {
	if a == nil {
		return
	}
	a.log.Warn("pcc quarantine",
		slog.String("event", "quarantine"),
		slog.Uint64("event_id", eid),
		slog.String("owner", qe.Owner),
		slog.Time("until", qe.Until),
		slog.Int("strikes", qe.Strikes),
	)
}

// configChange records an operator changing the kernel's posture:
// backend, profiling, validation limits, quarantine policy. The old
// and new values make the log a self-contained timeline of what the
// kernel was running with at any moment.
func (a *auditor) configChange(setting, oldVal, newVal string, eid uint64) {
	if a == nil {
		return
	}
	a.log.Info("pcc config",
		slog.String("event", "config"),
		slog.Uint64("event_id", eid),
		slog.String("setting", setting),
		slog.String("old", oldVal),
		slog.String("new", newVal),
	)
}

// negotiate records a §4 policy-negotiation verdict.
func (a *auditor) negotiate(pol *policy.Policy, eid uint64, err error) {
	if a == nil {
		return
	}
	dig := pol.Digest()
	attrs := []any{
		slog.String("event", "negotiate"),
		slog.Uint64("event_id", eid),
		slog.String("policy", pol.Name),
		slog.String("policy_digest", hex.EncodeToString(dig[:])),
	}
	if err == nil {
		a.log.Info("pcc negotiate", append(attrs, slog.String("verdict", "accepted"))...)
		return
	}
	a.log.Warn("pcc negotiate", append(attrs,
		slog.String("verdict", "rejected"), slog.String("error", err.Error()))...)
}

// evict records proof-cache evictions caused by one install.
func (a *auditor) evict(n int64, eid uint64) {
	if a == nil || n == 0 {
		return
	}
	a.log.Info("pcc cache evict", slog.String("event", "evict"),
		slog.Uint64("event_id", eid), slog.Int64("entries", n))
}

// uninstall records a filter removal.
func (a *auditor) uninstall(owner string, eid uint64) {
	if a == nil {
		return
	}
	a.log.Info("pcc uninstall", slog.String("event", "uninstall"),
		slog.Uint64("event_id", eid), slog.String("owner", owner))
}

// storeError records a durability-store failure outside the install
// path (install-path append failures land in the install record with
// reject_reason=store).
func (a *auditor) storeError(op, owner string, err error, eid uint64) {
	if a == nil {
		return
	}
	a.log.Error("pcc store",
		slog.String("event", "store_error"),
		slog.Uint64("event_id", eid),
		slog.String("op", op),
		slog.String("owner", owner),
		slog.String("error", err.Error()),
	)
}

// recoverySkip records one journal record recovery could not restore:
// either the frame itself was corrupt (owner unknown, seq possibly
// unknown) or the record decoded but its binary no longer proves safe.
// The companion install record (reject_reason=recovery) carries the
// full validation forensics; this line is the recovery-scoped summary
// an operator greps for after a crash.
func (a *auditor) recoverySkip(seq uint64, owner string, err error, eid uint64) {
	if a == nil {
		return
	}
	a.log.Warn("pcc recovery",
		slog.String("event", "recovery_skip"),
		slog.Uint64("event_id", eid),
		slog.Uint64("seq", seq),
		slog.String("owner", owner),
		slog.String("error", err.Error()),
	)
}

// recovered records the boot-time recovery summary.
func (a *auditor) recovered(dir string, restored, skipped, stale int, torn bool, eid uint64) {
	if a == nil {
		return
	}
	a.log.Info("pcc recovery",
		slog.String("event", "recovered"),
		slog.Uint64("event_id", eid),
		slog.String("dir", dir),
		slog.Int("restored", restored),
		slog.Int("skipped", skipped),
		slog.Int("stale", stale),
		slog.Bool("torn_tail", torn),
	)
}

// breaker records a circuit-breaker state transition for one filter:
// open (demoted to interpreter), halfopen (compiled on probation),
// close (re-admitted), or escalate (uninstalled after MaxTrips).
func (a *auditor) breaker(transition, owner string, trips int, detail string, eid uint64) {
	if a == nil {
		return
	}
	a.log.Warn("pcc breaker",
		slog.String("event", "breaker_"+transition),
		slog.Uint64("event_id", eid),
		slog.String("owner", owner),
		slog.Int("trips", trips),
		slog.String("detail", detail),
	)
}
