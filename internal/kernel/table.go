// The immutable filter-table snapshot. The kernel's installed-filter
// set is published as a filterTable behind an atomic.Pointer: readers
// load it once and iterate with no lock; writers — install commits,
// uninstalls, backend and profiling retrofits — build a modified copy
// under the writer mutex, store the new pointer, and retire the old
// snapshot through the epoch domain (epoch.go). Everything reachable
// from a published table is immutable, with two deliberate
// exceptions: the sharded counters (written with atomic adds) and the
// filterProfile accumulators (atomic merges).
package kernel

import (
	"sort"

	"repro/internal/machine"
)

// tableSlot is one installed filter in a snapshot, pre-sorted by
// owner so both dispatch paths emit accept lists in sorted order
// without a per-call sort. c hoists the filter's compiled form (nil
// when absent) and lite its liveness verdict out of the per-(packet,
// filter) loop.
type tableSlot struct {
	owner string
	f     *installed
	c     *machine.Compiled
	// lite: install-time liveness proved the filter reads only the
	// preset registers, so the cheap between-runs resetLite suffices.
	lite bool
}

// filterTable is one immutable snapshot of the installed-filter set.
type filterTable struct {
	// gen increments on every publication; deliveries can use it to
	// tell whether two loads saw the same snapshot.
	gen uint64
	// slots, sorted by owner; index maps owner -> slot position.
	slots []tableSlot
	index map[string]int
	// accepts carries the persistent per-owner accept counters —
	// including owners whose filter was uninstalled — from snapshot to
	// snapshot, so Accepts stays lock-free too.
	accepts map[string]*ownerCounter
}

func newFilterTable() *filterTable {
	return &filterTable{
		gen:     1,
		index:   map[string]int{},
		accepts: map[string]*ownerCounter{},
	}
}

// makeSlot derives the dispatch-ready slot for an installed filter.
func makeSlot(owner string, f *installed) tableSlot {
	c := f.compiled
	return tableSlot{
		owner: owner,
		f:     f,
		c:     c,
		lite:  c != nil && c.LiveInRegs()&^presetRegs == 0,
	}
}

// clone copies the snapshot's structure (slots, index, accepts map);
// the installed filters themselves are shared with the original.
func (t *filterTable) clone() *filterTable {
	nt := &filterTable{
		gen:     t.gen + 1,
		slots:   append([]tableSlot(nil), t.slots...),
		index:   make(map[string]int, len(t.index)+1),
		accepts: make(map[string]*ownerCounter, len(t.accepts)+1),
	}
	for o, i := range t.index {
		nt.index[o] = i
	}
	for o, c := range t.accepts {
		nt.accepts[o] = c
	}
	return nt
}

// reindex rebuilds the owner index after slot positions changed.
func (t *filterTable) reindex() {
	t.index = make(map[string]int, len(t.slots))
	for i, sl := range t.slots {
		t.index[sl.owner] = i
	}
}

// withFilter returns a copy of the snapshot with owner's filter set
// (replacing any existing one), keeping slots sorted. f.accepts must
// already be wired to the owner's persistent counter; the copy's
// accepts map is updated to match.
func (t *filterTable) withFilter(owner string, f *installed) *filterTable {
	nt := t.clone()
	nt.accepts[owner] = f.accepts
	sl := makeSlot(owner, f)
	if i, ok := nt.index[owner]; ok {
		nt.slots[i] = sl
		return nt
	}
	pos := sort.Search(len(nt.slots), func(i int) bool { return nt.slots[i].owner >= owner })
	nt.slots = append(nt.slots, tableSlot{})
	copy(nt.slots[pos+1:], nt.slots[pos:])
	nt.slots[pos] = sl
	nt.reindex()
	return nt
}

// withoutFilter returns a copy of the snapshot with owner's filter
// removed (the persistent accept counter stays). The removed filter,
// if any, is returned for retirement.
func (t *filterTable) withoutFilter(owner string) (*filterTable, *installed) {
	i, ok := t.index[owner]
	if !ok {
		return t, nil
	}
	removed := t.slots[i].f
	nt := t.clone()
	nt.slots = append(nt.slots[:i], nt.slots[i+1:]...)
	nt.reindex()
	return nt, removed
}

// mapped returns a copy of the snapshot with every installed filter
// passed through xf; xf returns its argument unchanged to keep a
// filter, or a replacement (sharing the persistent counter). The
// replaced originals are returned for retirement. When xf changes
// nothing, the original snapshot is returned with no copy.
func (t *filterTable) mapped(xf func(owner string, f *installed) *installed) (*filterTable, []*installed) {
	var nt *filterTable
	var replaced []*installed
	for i := range t.slots {
		owner, f := t.slots[i].owner, t.slots[i].f
		nf := xf(owner, f)
		if nf == f {
			continue
		}
		if nt == nil {
			nt = t.clone()
		}
		nt.slots[i] = makeSlot(owner, nf)
		replaced = append(replaced, f)
	}
	if nt == nil {
		return t, nil
	}
	return nt, replaced
}

// publishLocked stores a new snapshot and retires the old one plus any
// filters the caller unpublished. Caller holds k.mu. Retirement
// poisons the retired objects (see epoch.go): plain nil writes over
// the fields dispatch reads, so a grace-period bug is a -race report,
// not a silent wrong verdict.
func (k *Kernel) publishLocked(nt *filterTable, retired ...*installed) {
	ot := k.table.Load()
	k.table.Store(nt)
	frees := make([]func(), 0, 1+len(retired))
	frees = append(frees, func() {
		for i := range ot.slots {
			ot.slots[i] = tableSlot{}
		}
		ot.index = nil
		ot.accepts = nil
	})
	for _, f := range retired {
		f := f
		frees = append(frees, func() {
			f.ext = nil
			f.prof = nil
			f.compiled = nil
		})
	}
	k.epochs.retire(frees...)
}

// Quiesce blocks until every snapshot and filter retired by prior
// installs, uninstalls, or retrofits has been reclaimed — i.e. no
// in-flight delivery still references them. It is the fence callers
// use before asserting exact cross-counter invariants; routine
// operation never needs it (reclamation piggybacks on writers).
func (k *Kernel) Quiesce() { k.epochs.drain() }
