package kernel

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// installProfiledSet installs the four paper filters plus the looping
// IP checksum (certified with its loop invariant) into k.
func installProfiledSet(t testing.TB, k *Kernel) []string {
	t.Helper()
	bins := certAll(t)
	var owners []string
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", f)
		if err := k.InstallFilter(owner, bins[f]); err != nil {
			t.Fatal(err)
		}
		owners = append(owners, owner)
	}
	cs, err := pcc.Certify(filters.SrcChecksum, policy.PacketFilter(),
		map[string]logic.Pred{"loop": filters.ChecksumInvariant()})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("checksum", cs.Binary); err != nil {
		t.Fatal(err)
	}
	return append(owners, "checksum")
}

// TestProfiledDispatchDifferential: enabling the profiler must be
// observationally invisible — identical accept verdicts and identical
// cycle totals against an unprofiled kernel over the four paper
// filters plus the checksum loop — while attributing every dispatched
// cycle to some filter PC.
func TestProfiledDispatchDifferential(t *testing.T) {
	plain := New()
	prof := New()
	prof.SetProfiling(true)
	installProfiledSet(t, plain)
	owners := installProfiledSet(t, prof)

	if !prof.Profiling() {
		t.Fatal("SetProfiling(true) did not stick")
	}
	pkts := pktgen.Generate(300, pktgen.Config{Seed: 11})
	for _, p := range pkts {
		a1, err1 := plain.DeliverPacket(p)
		a2, err2 := prof.DeliverPacket(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(a1) != fmt.Sprint(a2) {
			t.Fatalf("verdicts diverged under profiling: %v vs %v", a1, a2)
		}
	}
	ps, us := prof.Stats(), plain.Stats()
	if ps.ExtensionCycles != us.ExtensionCycles {
		t.Fatalf("cycle totals diverged: profiled %d, unprofiled %d",
			ps.ExtensionCycles, us.ExtensionCycles)
	}

	// Exact attribution: the per-filter profiles must account for every
	// cycle the kernel charged to extensions, and every filter ran once
	// per packet.
	var attributed int64
	for _, owner := range owners {
		snap, ok := prof.FilterProfile(owner)
		if !ok {
			t.Fatalf("no profile for %q", owner)
		}
		if snap.Profile.Runs != int64(len(pkts)) {
			t.Fatalf("%q: %d runs, want %d", owner, snap.Profile.Runs, len(pkts))
		}
		if snap.TotalCycles() <= 0 {
			t.Fatalf("%q: no cycles attributed", owner)
		}
		attributed += snap.TotalCycles()
		listing := snap.AnnotatedListing()
		if !strings.Contains(listing, owner) || !strings.Contains(listing, "RET") {
			t.Fatalf("%q: implausible annotated listing:\n%s", owner, listing)
		}
	}
	if attributed != ps.ExtensionCycles {
		t.Fatalf("profiles attribute %d cycles, kernel charged %d",
			attributed, ps.ExtensionCycles)
	}

	// The unprofiled kernel must not have grown profiles.
	if snaps := plain.FilterProfiles(); len(snaps) != 0 {
		t.Fatalf("unprofiled kernel has %d profiles", len(snaps))
	}
	if _, ok := plain.FilterProfile(owners[0]); ok {
		t.Fatal("unprofiled kernel returned a profile")
	}
}

// TestProfileSurvivesToggle: counts accumulate across SetProfiling
// off/on, and deliveries with profiling off are not attributed.
func TestProfileSurvivesToggle(t *testing.T) {
	k := New()
	k.SetProfiling(true)
	installProfiledSet(t, k)
	pkts := pktgen.Generate(50, pktgen.Config{Seed: 3})
	for _, p := range pkts[:20] {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := k.FilterProfile("checksum")
	mid := snap.Profile.Runs

	k.SetProfiling(false)
	for _, p := range pkts[20:40] {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ = k.FilterProfile("checksum")
	if snap.Profile.Runs != mid {
		t.Fatalf("profiling-off deliveries were attributed: %d runs, want %d",
			snap.Profile.Runs, mid)
	}

	k.SetProfiling(true)
	for _, p := range pkts[40:] {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ = k.FilterProfile("checksum")
	if snap.Profile.Runs != mid+10 {
		t.Fatalf("counts did not survive toggle: %d runs, want %d", snap.Profile.Runs, mid+10)
	}
}

// TestProfileConcurrentDelivery exercises the profiler under
// concurrent dispatch, mid-flight SetProfiling toggles, snapshot
// reads, and pprof exports. Meaningful mainly under -race.
func TestProfileConcurrentDelivery(t *testing.T) {
	k := New()
	k.SetProfiling(true)
	installProfiledSet(t, k)
	pkts := pktgen.Generate(120, pktgen.Config{Seed: 23})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, p := range pkts {
				if (i+g)%41 == 0 {
					k.SetProfiling((i+g)%2 == 0)
				}
				if _, err := k.DeliverPacket(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			for _, s := range k.FilterProfiles() {
				_ = s.TotalCycles()
				_ = s.AnnotatedListing()
			}
			var buf bytes.Buffer
			if err := k.WriteFilterProfile(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	k.SetProfiling(true)
	// Quiesced: the accumulated attribution must be internally
	// consistent (cycles only where visits are).
	for _, s := range k.FilterProfiles() {
		for pc := range s.Profile.Cycles {
			if s.Profile.Cycles[pc] != 0 && s.Profile.Visits[pc] == 0 {
				t.Fatalf("%q pc %d: %d cycles with no visits", s.Owner, pc, s.Profile.Cycles[pc])
			}
		}
	}
}

// TestKernelPprofAttribution is the acceptance gate from the issue:
// `go tool pprof -top` over the kernel's exported profile must
// attribute >= 95% of the cycles the kernel accounted to filter PCs
// (exact attribution gives 100%).
func TestKernelPprofAttribution(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	k := New()
	k.SetProfiling(true)
	installProfiledSet(t, k)
	for _, p := range pktgen.Generate(60, pktgen.Config{Seed: 5}) {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	total := k.Stats().ExtensionCycles

	path := filepath.Join(t.TempDir(), "filters.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WriteFilterProfile(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("go", "tool", "pprof",
		"-top", "-nodecount=500", "-nodefraction=0", "-edgefraction=0",
		"-sample_index=cycles", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof failed: %v\n%s", err, out)
	}
	var flatOnPCs int64
	re := regexp.MustCompile(`^\s*(\d+)\s`)
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "@pc") {
			continue
		}
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, _ := strconv.ParseInt(m[1], 10, 64)
		flatOnPCs += v
	}
	if flatOnPCs*100 < total*95 {
		t.Errorf("pprof -top attributes %d of %d cycles to filter PCs (want >= 95%%)\n%s",
			flatOnPCs, total, out)
	}
}
