package kernel_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/chaos"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// TestBatchCtxMidFlightCancelDrains cancels a batch while validations
// are actually running (not before they start): the worker pool must
// drain cleanly — in-flight proof checks are interrupted within a
// bounded number of checker steps, queued requests short-circuit,
// every request gets a verdict, nothing is installed, no goroutines
// leak, and the books reconcile. The workload is a set of distinct
// dag-bomb blobs, each of which burns the whole step budget if left
// alone, so the cancellation provably lands mid-check.
func TestBatchCtxMidFlightCancelDrains(t *testing.T) {
	cert, err := pcc.Certify(filters.SrcFilter1, policy.PacketFilter(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := chaos.Base{Name: "f1", Binary: cert.Binary, Policy: policy.PacketFilter()}
	var bomb func(*rand.Rand, chaos.Base) []byte
	for _, m := range chaos.Mutators() {
		if m.Name == "dagbomb" {
			bomb = m.Fn
		}
	}
	if bomb == nil {
		t.Fatal("dagbomb mutator missing")
	}
	rng := rand.New(rand.NewSource(99))
	reqs := make([]kernel.InstallRequest, 16)
	for i := range reqs {
		// Distinct owners and distinct blobs: no later-wins collapsing,
		// no proof-cache hits.
		reqs[i] = kernel.InstallRequest{Owner: fmt.Sprintf("bomber-%d", i), Binary: bomb(rng, base)}
	}

	k := kernel.New()
	k.SetRecorder(telemetry.New())
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 1 << 24 // ~minutes of checking if never interrupted
	k.SetLimits(lim)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Cancel once at least one worker has picked up a validation.
		for k.Stats().Validations == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		time.Sleep(2 * time.Millisecond) // let a check get properly underway
		cancel()
	}()

	start := time.Now()
	errs := k.InstallFilterBatchCtx(ctx, reqs)
	elapsed := time.Since(start)
	// Interruption must be prompt: orders of magnitude under the
	// uninterrupted checking time (a single bomb alone would run ~4s).
	if elapsed > 3*time.Second {
		t.Fatalf("drain took %v — checker interrupt not honored", elapsed)
	}

	deadlines := 0
	for i, err := range errs {
		if err == nil {
			t.Fatalf("errs[%d]: a dag bomb installed", i)
		}
		if errors.Is(err, context.Canceled) {
			deadlines++
		} else if !errors.Is(err, pcc.ErrResourceLimit) {
			t.Fatalf("errs[%d]: unexpected class: %v", i, err)
		}
	}
	if deadlines == 0 {
		t.Fatal("no request observed the cancellation")
	}
	if n := len(k.Owners()); n != 0 {
		t.Fatalf("%d phantom installs after canceled batch", n)
	}
	st := k.Stats()
	if st.Validations != len(reqs) || st.Rejections != len(reqs) {
		t.Fatalf("books off: validations=%d rejections=%d want %d each", st.Validations, st.Rejections, len(reqs))
	}
	if got := k.Recorder().LabeledCounter(kernel.MetricRejects, "reason", "deadline").Value(); got != int64(deadlines) {
		t.Fatalf("pcc_rejects_total{reason=deadline} = %d, want %d", got, deadlines)
	}
	// The pool must be gone: no lingering validation goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before batch, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHostileOwnerLabelEscaping: owner names flow into Prometheus
// label values (per-filter accept/cycle counters); a hostile owner
// containing quotes, backslashes, and newlines must not be able to
// break out of the label position or forge exposition lines.
func TestHostileOwnerLabelEscaping(t *testing.T) {
	cert, err := pcc.Certify(filters.SrcFilter1, policy.PacketFilter(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hostile := "evil\"} 1\ninjected_metric{x=\"\\"
	k := kernel.New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	if err := k.InstallFilter(hostile, cert.Binary); err != nil {
		t.Fatal(err)
	}
	if _, err := k.DeliverPacket(pktgen.Generate(1, pktgen.Config{Seed: 7})[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "injected_metric") && strings.Contains(out, "\ninjected_metric{") {
		t.Fatalf("owner forged an exposition line:\n%s", out)
	}
	want := `filter="` + telemetry.EscapeLabelValue(hostile) + `"`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped label %q not in exposition:\n%s", want, out)
	}
	// No exposition line may contain an unescaped embedded newline: the
	// raw hostile string must appear nowhere.
	if strings.Contains(out, hostile) {
		t.Fatalf("raw hostile owner leaked into exposition:\n%s", out)
	}
}
