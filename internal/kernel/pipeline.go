// Batch installation pipeline. The paper's consumer validates one
// binary at a time; a consumer serving millions of users sees bursts
// of install requests (boot-time filter sets, fleet-wide rollouts) and
// proof checking is CPU-bound and embarrassingly parallel — each
// validation reads only the published policy and its own binary. The
// pipeline fans validations across GOMAXPROCS workers and serializes
// only the short commit sections, so a batch costs max(validation)
// instead of sum(validation) while installs stay linearizable: commits
// are applied in request order, and a dispatch observes each install
// atomically.
package kernel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// InstallRequest names one binary to install for an owner.
type InstallRequest struct {
	Owner  string
	Binary []byte
}

// InstallFilterBatch validates the requests concurrently and commits
// them in request order; errs[i] is the outcome of reqs[i], exactly
// what InstallFilter would have returned for it. When two requests
// name the same owner, the later one wins, as it would installing
// serially.
func (k *Kernel) InstallFilterBatch(reqs []InstallRequest) []error {
	return k.InstallFilterBatchCtx(context.Background(), reqs)
}

// InstallFilterBatchCtx is InstallFilterBatch under a context. When
// the context expires mid-batch, the worker pool drains cleanly: every
// not-yet-validated request short-circuits to a deadline-classed
// rejection (no proof checking), in-flight validations are interrupted
// within a bounded number of checker steps, and every request still
// flows through the commit section, so errs[i] is always populated and
// the audit log and counters reconcile (no phantom installs, one
// verdict per request).
func (k *Kernel) InstallFilterBatchCtx(ctx context.Context, reqs []InstallRequest) []error {
	n := len(reqs)
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	k.stats.batchInstalls.Add(1)

	slots := make([]*cacheSlot, n)
	vas := make([]*validationAudit, n)
	verrs := make([]error, n)
	// One correlation EventID per request, allocated by the worker that
	// picks the request up, so each install's spans, audit record, and
	// flight events share an ID even when validations interleave.
	eids := make([]uint64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				eids[i] = k.nextEvent(k.tel.Load())
				if err := ctx.Err(); err != nil {
					// Drain: account the attempt, skip the work.
					k.stats.validations.Add(1)
					vas[i] = k.audit.Load().newValidationAudit("filter", reqs[i].Owner, reqs[i].Binary, eids[i])
					verrs[i] = fmt.Errorf("kernel: install aborted: %w", err)
					continue
				}
				// Queue wait: how long the request sat before a
				// validator picked it up.
				k.stats.queueWaitNanos.Add(time.Since(start).Nanoseconds())
				slots[i], vas[i], verrs[i] = k.validateFilter(ctx, reqs[i].Owner, reqs[i].Binary, eids[i])
			}
		}()
	}
	wg.Wait()

	be := k.Backend()
	for i := range reqs {
		errs[i] = k.commitFilter(reqs[i].Owner, reqs[i].Binary, slots[i], vas[i], verrs[i], be, eids[i], true)
	}
	return errs
}

// ValidateAsync validates and installs a filter in the background,
// delivering InstallFilter's result on the returned channel. The
// channel is buffered: the caller may drop it and let the install
// complete unobserved.
func (k *Kernel) ValidateAsync(owner string, binary []byte) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- k.InstallFilter(owner, binary) }()
	return ch
}
