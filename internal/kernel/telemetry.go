// Telemetry plumbing: the kernel optionally carries a
// *telemetry.Recorder and reports every pipeline stage through it —
// spans for negotiate/validate/commit/dispatch with child spans for
// the validation sub-stages, plus outcome counters and the installed-
// filter gauge. All hooks go through the nil-safe *telem bundle so
// the uninstrumented kernel pays exactly one atomic load and a nil
// check per operation (benchmarked at zero extra allocations on the
// dispatch path).
package kernel

import (
	"time"

	pcc "repro"
	"repro/internal/telemetry"
)

// Telemetry metric names the kernel exports (the exposition page's
// contract; scripts/verify.sh greps for these).
const (
	MetricInstalled      = "pcc_install_installed_total"
	MetricRejected       = "pcc_install_rejected_total"
	MetricCacheHits      = "pcc_cache_hits_total"
	MetricCacheMisses    = "pcc_cache_misses_total"
	MetricCacheEvictions = "pcc_cache_evictions_total"
	MetricPackets        = "pcc_packets_total"
	MetricFiltersGauge   = "pcc_filters_installed"
	// Per-filter families, labeled by the installing owner (an
	// untrusted string — the exposition escapes it).
	MetricFilterAccepts = "pcc_filter_accepts_total"
	MetricFilterCycles  = "pcc_filter_cycles_total"
	// MetricFilterLatency is the per-owner dispatch-latency histogram
	// family (batch path), on the sub-µs log-scale dispatch buckets so
	// tail latency per filter is readable, not one giant first bucket.
	MetricFilterLatency = "pcc_filter_run_seconds"
	// Robustness metrics (robust.go): rejections classified by reason
	// (limit, deadline, panic, proof, quarantine, queue_full) and the
	// count of currently embargoed producers.
	MetricRejects         = "pcc_rejects_total"
	MetricQuarantineGauge = "pcc_quarantined_owners"
	// MetricBreakerState is the per-filter circuit-breaker state gauge
	// family (breaker.go): 0 closed, 1 open (demoted to interpreter),
	// 2 half-open (compiled on probation). Labeled by the owner — an
	// untrusted string the exposition escapes.
	MetricBreakerState = "pcc_breaker_state"
	// Certificate-cost value histograms (raw units, not seconds): the
	// proof's size on the wire in bytes and the generated VC's term
	// size in LF nodes, observed once per full (non-cached) successful
	// validation. This is the baseline proof-size engineering will
	// regress against.
	MetricProofBytes = "pcc_proof_bytes"
	MetricVCNodes    = "pcc_vc_nodes"
)

// certSizeBounds is the bucket ladder for the certificate-cost value
// histograms: a 1-2-5 ladder from 8 to ~1M raw units (bytes or
// nodes), wide enough for a trivial accept proof and a proof bomb on
// the same axis.
var certSizeBounds = telemetry.LogBounds(8, 1<<20)

// telem bundles a recorder with its pre-registered instruments so hot
// paths never take the recorder's registration lock. A nil *telem is
// the disabled state; every method tolerates it.
type telem struct {
	rec            *telemetry.Recorder
	installed      *telemetry.Counter
	rejected       *telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	packets        *telemetry.Counter
	filters        *telemetry.Gauge
	quarantined    *telemetry.Gauge
}

func newTelem(rec *telemetry.Recorder) *telem {
	return &telem{
		rec:            rec,
		installed:      rec.Counter(MetricInstalled),
		rejected:       rec.Counter(MetricRejected),
		cacheHits:      rec.Counter(MetricCacheHits),
		cacheMisses:    rec.Counter(MetricCacheMisses),
		cacheEvictions: rec.Counter(MetricCacheEvictions),
		packets:        rec.Counter(MetricPackets),
		filters:        rec.Gauge(MetricFiltersGauge),
		quarantined:    rec.Gauge(MetricQuarantineGauge),
	}
}

// span opens a root span for a stage, carrying the operation's
// correlation EventID (no-op Span when disabled).
func (t *telem) span(stage, detail string, eid uint64) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.rec.StartSpanEvent(stage, detail, eid)
}

// probe records the cache-probe child span and the hit/miss counter.
func (t *telem) probe(parent telemetry.Span, start time.Time, hit bool) {
	if t == nil {
		return
	}
	verdict := "miss"
	ctr := t.cacheMisses
	if hit {
		verdict = "hit"
		ctr = t.cacheHits
	}
	ctr.Inc()
	t.rec.RecordSpan(telemetry.StageCacheProbe, verdict, parent.ID(), parent.Event(), start, time.Since(start), nil)
}

// validationStages replays pcc.Validate's stage breakdown as child
// spans of the validation span. The stages ran back to back inside
// Validate, so each child starts where the previous one ended.
func (t *telem) validationStages(parent telemetry.Span, owner string, start time.Time, st *pcc.ValidationStats) {
	if t == nil {
		return
	}
	id := parent.ID()
	eid := parent.Event()
	cur := start
	for _, stage := range []struct {
		name string
		dur  time.Duration
	}{
		{telemetry.StageParse, st.Parse},
		{telemetry.StageLFSig, st.SigCheck},
		{telemetry.StageVCGen, st.VCGen},
		{telemetry.StageLFCheck, st.Check},
	} {
		t.rec.RecordSpan(stage.name, owner, id, eid, cur, stage.dur, nil)
		cur = cur.Add(stage.dur)
	}
}

// wcet records the static cost-bound analysis child span.
func (t *telem) wcet(parent telemetry.Span, owner string, start time.Time, err error) {
	if t == nil {
		return
	}
	t.rec.RecordSpan(telemetry.StageWCET, owner, parent.ID(), parent.Event(), start, time.Since(start), err)
}

// certCost records the certificate-cost value histograms for one full
// (non-cached) successful validation, with the install's EventID as
// the bucket exemplar.
func (t *telem) certCost(st *pcc.ValidationStats, eid uint64) {
	if t == nil || st == nil {
		return
	}
	t.rec.ValueHistogram(MetricProofBytes, certSizeBounds).ObserveValueEID(float64(st.ProofBytes), eid)
	t.rec.ValueHistogram(MetricVCNodes, certSizeBounds).ObserveValueEID(float64(st.VCNodes), eid)
}

// evicted bumps the eviction counter by n.
func (t *telem) evicted(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.cacheEvictions.Add(n)
}

// outcome counts one install attempt's final verdict.
func (t *telem) outcome(ok bool) {
	if t == nil {
		return
	}
	if ok {
		t.installed.Inc()
	} else {
		t.rejected.Inc()
	}
}

// reject classifies one rejection into the pcc_rejects_total family.
// The reason string is kernel-controlled vocabulary, never attacker
// bytes, but the exposition escapes label values regardless.
func (t *telem) reject(reason string) {
	if t == nil || reason == "" {
		return
	}
	t.rec.LabeledCounter(MetricRejects, "reason", reason).Inc()
}

// setBreakerState publishes one filter's breaker-state gauge (0
// closed, 1 open, 2 half-open). Transitions are rare (fault-driven),
// so the registration-lock lookup is fine here.
func (t *telem) setBreakerState(owner string, state int) {
	if t == nil {
		return
	}
	t.rec.LabeledGauge(MetricBreakerState, "filter", owner).Set(int64(state))
}

// setQuarantined publishes the embargoed-producer count gauge.
func (t *telem) setQuarantined(n int) {
	if t == nil {
		return
	}
	t.quarantined.Set(int64(n))
}

// packet counts one delivered packet.
func (t *telem) packet() {
	if t == nil {
		return
	}
	t.packets.Inc()
}

// packetBatch counts a whole delivered batch in one add.
func (t *telem) packetBatch(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.packets.Add(n)
}

// filterRun attributes one filter execution: cycles always, plus the
// per-filter accept counter when the filter matched. Registration is
// amortized — after the first packet both lookups are read-locked map
// hits with no allocation.
func (t *telem) filterRun(owner string, cycles int64, accepted bool) {
	if t == nil {
		return
	}
	t.rec.LabeledCounter(MetricFilterCycles, "filter", owner).Add(cycles)
	if accepted {
		t.rec.LabeledCounter(MetricFilterAccepts, "filter", owner).Inc()
	}
}

// filterHist returns the per-owner dispatch-latency histogram, nil
// when telemetry is off. Batch dispatch looks it up once per filter
// per batch and observes per run with no further locking.
func (t *telem) filterHist(owner string) *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.rec.LabeledHistogram(MetricFilterLatency, "filter", owner, telemetry.DispatchLatencyBounds)
}

// filterRunBatch attributes a whole batch of one filter's executions:
// two labeled-counter lookups per filter per batch instead of per
// packet.
func (t *telem) filterRunBatch(owner string, cycles, accepts int64) {
	if t == nil {
		return
	}
	if cycles != 0 {
		t.rec.LabeledCounter(MetricFilterCycles, "filter", owner).Add(cycles)
	}
	if accepts != 0 {
		t.rec.LabeledCounter(MetricFilterAccepts, "filter", owner).Add(accepts)
	}
}

// setFilters publishes the installed-filter count gauge.
func (t *telem) setFilters(n int) {
	if t == nil {
		return
	}
	t.filters.Set(int64(n))
}

// SetRecorder attaches a telemetry recorder to the kernel (nil
// detaches). The swap is atomic, so it is safe while installs and
// deliveries are in flight; operations observe either the old or the
// new recorder. With no recorder attached the instrumented paths cost
// one atomic load + nil check and allocate nothing.
func (k *Kernel) SetRecorder(rec *telemetry.Recorder) {
	if rec == nil {
		k.tel.Store(nil)
		return
	}
	k.tel.Store(newTelem(rec))
}

// Recorder returns the attached telemetry recorder, or nil.
func (k *Kernel) Recorder() *telemetry.Recorder {
	t := k.tel.Load()
	if t == nil {
		return nil
	}
	return t.rec
}
