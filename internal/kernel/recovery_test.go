package kernel

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestStoreJournalsCommits: with a store attached, every acked
// install, uninstall, and backend retrofit is on disk — the exact
// binary bytes, in commit order — before the call returns.
func TestStoreJournalsCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bins := certAll(t)
	k := New()
	k.SetStore(s)

	if err := k.InstallFilter("alice", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("bob", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}
	if err := k.UninstallFilter("alice"); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}

	recs, _ := store.ReplayDir(dir)
	if len(recs) != 4 {
		t.Fatalf("journal holds %d records, want 4", len(recs))
	}
	wantKinds := []store.Kind{store.KindInstall, store.KindInstall, store.KindUninstall, store.KindRetrofit}
	wantOwners := []string{"alice", "bob", "alice", "backend"}
	for i, r := range recs {
		if r.Kind != wantKinds[i] || r.Owner != wantOwners[i] {
			t.Fatalf("record %d = %s/%q, want %s/%q", i, r.Kind, r.Owner, wantKinds[i], wantOwners[i])
		}
	}
	if !bytes.Equal(recs[1].Binary, bins[filters.Filter2]) {
		t.Fatal("journaled binary differs from the installed bytes")
	}
	if string(recs[3].Binary) != "compiled" {
		t.Fatalf("retrofit record carries %q, want \"compiled\"", recs[3].Binary)
	}
}

// TestRecoverRestoresVerdictEquivalent: a kernel recovered from the
// journal of a crashed one — no Close, the fsynced bytes are all that
// survives — must dispatch verdict-identically, honor uninstalls, and
// come back on the journaled backend.
func TestRecoverRestoresVerdictEquivalent(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	ka := New()
	ka.SetStore(s)
	for f, bin := range bins {
		if err := ka.InstallFilter(fmt.Sprintf("f-%d", f), bin); err != nil {
			t.Fatal(err)
		}
	}
	if err := ka.UninstallFilter(fmt.Sprintf("f-%d", filters.Filter3)); err != nil {
		t.Fatal(err)
	}
	if err := ka.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	// Crash: the Store goroutine-local handle is simply abandoned.

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	kb := New()
	rep, err := kb.Recover(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(bins) - 1; rep.Restored != want || len(rep.Skipped) != 0 {
		t.Fatalf("recovery restored %d (skipped %d), want %d/0", rep.Restored, len(rep.Skipped), want)
	}
	if kb.Backend() != BackendCompiled {
		t.Fatalf("recovered backend %v, want compiled", kb.Backend())
	}
	if fmt.Sprint(kb.Owners()) != fmt.Sprint(ka.Owners()) {
		t.Fatalf("owners diverged: %v vs %v", kb.Owners(), ka.Owners())
	}
	for _, p := range pktgen.Generate(200, pktgen.Config{Seed: 9}) {
		va, err1 := ka.DeliverPacket(p)
		vb, err2 := kb.DeliverPacket(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(va) != fmt.Sprint(vb) {
			t.Fatalf("verdicts diverged after recovery: %v vs %v", va, vb)
		}
	}

	// The recovered kernel's store is attached: new installs journal.
	if err := kb.InstallFilter("post-crash", bins[filters.Filter3]); err != nil {
		t.Fatal(err)
	}
	recs, _ := store.ReplayDir(dir)
	last := recs[len(recs)-1]
	if last.Kind != store.KindInstall || last.Owner != "post-crash" {
		t.Fatalf("post-recovery install not journaled: %+v", last)
	}
}

// TestRecoverRejectsTamperedProof is the PR's acceptance gate: flip
// one bit in a journaled record's proof section — recomputing the CRC,
// so the framing layer vouches for the corruption — and recovery must
// reject that record through the real LF checker while restoring the
// untouched ones. The rejection must be fully observable: audit
// records, a recovery_skip flight event, and the
// pcc_rejects_total{reason="recovery"} counter, all joined on one
// EventID across all three streams.
func TestRecoverRejectsTamperedProof(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	ka := New()
	ka.SetStore(s)
	if err := ka.InstallFilter("victim", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := ka.InstallFilter("bystander", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}

	// Hostile disk: one bit of the first record's proof flips at rest.
	tampered, err := store.TamperBinaryByte(dir, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tampered != "victim" {
		t.Fatalf("tampered record belongs to %q, want victim", tampered)
	}

	kb := New()
	rec := telemetry.New()
	fr := telemetry.NewFlightRecorder(64)
	ring := telemetry.NewAuditRing(0)
	kb.SetRecorder(rec)
	kb.SetFlightRecorder(fr)
	kb.SetAuditLog(slog.New(ring.Handler(nil)))
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := kb.Recover(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || len(rep.Skipped) != 1 {
		t.Fatalf("restored %d / skipped %d, want 1/1", rep.Restored, len(rep.Skipped))
	}
	skip := rep.Skipped[0]
	if skip.Owner != "victim" {
		t.Fatalf("skipped owner %q, want victim", skip.Owner)
	}
	var re *RecoveryError
	if !errors.As(skip.Err, &re) {
		t.Fatalf("skip error %v is not a *RecoveryError", skip.Err)
	}
	if got := fmt.Sprint(kb.Owners()); got != "[bystander]" {
		t.Fatalf("owners after recovery = %s, want [bystander]", got)
	}

	// The rejection is counted under reason=recovery.
	snap := rec.Snapshot(false)
	if snap.Labeled[MetricRejects]["recovery"] == 0 {
		t.Fatalf("pcc_rejects_total{reason=recovery} not incremented: %+v", snap.Labeled)
	}

	// One EventID joins the three streams: the recovery_skip flight
	// event, the audit records (the install rejection and the recovery
	// summary line), and the validate span of the re-check that failed.
	var eid uint64
	for _, e := range fr.Events() {
		if e.Kind == telemetry.FlightRecoverySkip && e.Owner == "victim" {
			eid = e.Event
		}
	}
	if eid == 0 {
		t.Fatalf("no recovery_skip flight event for victim: %+v", fr.Events())
	}
	var auditSkip, auditInstall bool
	for _, r := range ring.Records() {
		if r.Event != eid {
			continue
		}
		switch r.Kind {
		case "recovery_skip":
			auditSkip = true
		case "install":
			if r.Attrs["reject_reason"] == "recovery" {
				auditInstall = true
			}
		}
	}
	if !auditSkip || !auditInstall {
		t.Fatalf("audit records for event %d incomplete (skip=%v install=%v):\n%+v",
			eid, auditSkip, auditInstall, ring.Records())
	}
	var spanJoined bool
	for _, e := range rec.Trace().Events() {
		if e.Event == eid && e.Stage == telemetry.StageValidate {
			spanJoined = true
		}
	}
	if !spanJoined {
		t.Fatalf("no validate span carries event %d", eid)
	}
}

// TestRecoverySkipDoesNotQuarantine: a record that fails re-validation
// during Recover means the journal's copy rotted, not that its owner
// ever submitted an unsound binary — so with quarantine configured
// (pccmon configures it before attaching the store), the skip must not
// add strikes, and the owner's post-recovery reinstall of the genuine
// binary must go straight through.
func TestRecoverySkipDoesNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	ka := New()
	ka.SetStore(s)
	if err := ka.InstallFilter("victim", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := store.TamperBinaryByte(dir, 0, 10); err != nil {
		t.Fatal(err)
	}

	kb := New()
	// Threshold 1: a single strike would embargo immediately.
	kb.SetQuarantine(QuarantineConfig{Threshold: 1, Base: time.Minute})
	s2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := kb.Recover(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 0 || len(rep.Skipped) != 1 {
		t.Fatalf("restored %d / skipped %d, want 0/1", rep.Restored, len(rep.Skipped))
	}
	if _, embargoed := kb.Quarantined()["victim"]; embargoed {
		t.Fatal("recovery skip embargoed the innocent owner")
	}
	if err := kb.InstallFilter("victim", bins[filters.Filter1]); err != nil {
		t.Fatalf("post-recovery reinstall blocked: %v", err)
	}
}

// TestRecoverSkipsCorruptFrame: a frame whose CRC no longer matches is
// skipped at the framing layer — audited and flight-recorded under the
// recovery EventID — without disturbing the surrounding records, and
// without touching the install/rejection counters (no install attempt
// was made for bytes that never decoded).
func TestRecoverSkipsCorruptFrame(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	ka := New()
	ka.SetStore(s)
	if err := ka.InstallFilter("a", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := ka.InstallFilter("b", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit WITHOUT fixing the CRC: framing-level corruption.
	jpath := filepath.Join(dir, store.JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := store.ScanJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("journal has %d frames, want 2", len(frames))
	}
	data[frames[0].PayloadOff+20] ^= 0x01
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	kb := New()
	fr := telemetry.NewFlightRecorder(16)
	kb.SetFlightRecorder(fr)
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := kb.Recover(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || len(rep.Skipped) != 1 {
		t.Fatalf("restored %d / skipped %d, want 1/1", rep.Restored, len(rep.Skipped))
	}
	var ce *store.CorruptRecordError
	if !errors.As(rep.Skipped[0].Err, &ce) {
		t.Fatalf("skip error %v is not a *store.CorruptRecordError", rep.Skipped[0].Err)
	}
	var flagged bool
	for _, e := range fr.Events() {
		if e.Kind == telemetry.FlightRecoverySkip {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("corrupt frame left no recovery_skip flight event")
	}
	st := kb.Stats()
	if st.Validations != st.Rejections+1 {
		t.Fatalf("accounting skew after framing skip: validations=%d rejections=%d",
			st.Validations, st.Rejections)
	}
}

// TestStoreAppendFailureRejectsInstall: when the journal cannot take
// the record, the install is REJECTED — the kernel never acks an
// install the disk does not hold — with reason "store", and the filter
// table is unchanged.
func TestStoreAppendFailureRejectsInstall(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	k := New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	k.SetStore(s)
	s.Close() // the disk goes away

	err = k.InstallFilter("alice", bins[filters.Filter1])
	if err == nil {
		t.Fatal("install acked with a dead journal")
	}
	var se *StoreError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StoreError", err)
	}
	if len(k.Owners()) != 0 {
		t.Fatalf("filter published despite journal failure: %v", k.Owners())
	}
	if rec.Snapshot(false).Labeled[MetricRejects]["store"] == 0 {
		t.Fatal("store rejection not counted under reason=store")
	}
	// An uninstall against the dead journal must also refuse (and leave
	// nothing to refuse here — but the error path must not panic).
	if err := k.UninstallFilter("alice"); err != nil {
		t.Fatalf("uninstall of absent filter errored: %v", err)
	}
}

// TestRecoveryAtScale is the crash-consistency suite's volume test
// (run under -race in CI): 200 filters installed through the batch
// pipeline with a store attached, a crash that tears the journal
// mid-append, recovery into a fresh kernel — which must be
// verdict-equivalent to the pre-crash kernel over a packet sweep and
// reconcile its install accounting exactly after a quiesce.
func TestRecoveryAtScale(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{NoSync: true}) // fsync×200 is test time, not coverage
	if err != nil {
		t.Fatal(err)
	}
	bins := certAll(t)
	all := make([][]byte, 0, len(bins))
	for _, f := range filters.All {
		all = append(all, bins[f])
	}
	const n = 200
	reqs := make([]InstallRequest, n)
	for i := range reqs {
		reqs[i] = InstallRequest{Owner: fmt.Sprintf("o-%03d", i), Binary: all[i%len(all)]}
	}
	ka := New()
	ka.SetStore(s)
	for i, err := range ka.InstallFilterBatch(reqs) {
		if err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	// Crash mid-append of record 201: a frame header promising more
	// bytes than the file holds.
	jf, err := os.OpenFile(filepath.Join(dir, store.JournalName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [13]byte
	binary.LittleEndian.PutUint32(torn[0:4], 300) // length the tail doesn't have
	if _, err := jf.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	// The tear is real on disk; Open heals it (truncating to the last
	// frame boundary) so recovery proper replays a clean journal.
	if _, rr := store.ReplayDir(dir); rr.TornTail == nil {
		t.Fatal("torn tail not visible on the raw journal")
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	kb := New()
	rep, err := kb.Recover(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != n || len(rep.Skipped) != 0 {
		t.Fatalf("restored %d / skipped %d, want %d/0", rep.Restored, len(rep.Skipped), n)
	}

	pkts := pktgen.Generate(100, pktgen.Config{Seed: 41})
	raw := make([][]byte, len(pkts))
	for i := range pkts {
		raw[i] = pkts[i].Data
	}
	va, err1 := ka.DeliverPackets(raw)
	vb, err2 := kb.DeliverPackets(raw)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fmt.Sprint(va) != fmt.Sprint(vb) {
		t.Fatal("batch verdicts diverged after recovery at scale")
	}

	kb.Quiesce()
	st := kb.Stats()
	if st.Validations != n || st.Rejections != 0 {
		t.Fatalf("recovered kernel accounting: validations=%d rejections=%d, want %d/0",
			st.Validations, st.Rejections, n)
	}
	if st.Packets != len(pkts) {
		t.Fatalf("recovered kernel saw %d packets, want %d", st.Packets, len(pkts))
	}
}

// TestTenantAttachStore: the registry wiring — per-tenant store
// directories, recovery at attach, journaling after, closed cleanly.
func TestTenantAttachStore(t *testing.T) {
	base := t.TempDir()
	bins := certAll(t)

	reg := NewRegistry()
	ta, err := reg.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AttachStores(context.Background(), base, store.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := ta.Kernel.InstallFilter("a1", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := reg.CloseStores(); err != nil {
		t.Fatal(err)
	}

	// Reboot: a fresh registry over the same directory recovers.
	reg2 := NewRegistry()
	tb, err := reg2.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	reps, err := reg2.AttachStores(context.Background(), base, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reps["alpha"].Restored != 1 {
		t.Fatalf("tenant recovery restored %d, want 1", reps["alpha"].Restored)
	}
	if got := fmt.Sprint(tb.Kernel.Owners()); got != "[a1]" {
		t.Fatalf("tenant owners after reboot = %s", got)
	}
	if err := reg2.CloseStores(); err != nil {
		t.Fatal(err)
	}
}
