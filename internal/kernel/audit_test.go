package kernel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/policy"
)

// auditRecords parses a JSON-handler slog buffer into one map per
// line.
func auditRecords(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("audit line is not JSON: %v\n%s", err, line)
		}
		recs = append(recs, m)
	}
	return recs
}

func findRecord(recs []map[string]any, want map[string]any) map[string]any {
outer:
	for _, r := range recs {
		for k, v := range want {
			if fmt.Sprint(r[k]) != fmt.Sprint(v) {
				continue outer
			}
		}
		return r
	}
	return nil
}

// TestAuditTrail drives one of every decision through a kernel with a
// JSON audit logger attached and checks that each record carries
// enough context to reconstruct the decision: policy digest, binary
// SHA-256, VC size, per-stage durations, WCET, and the verdict.
func TestAuditTrail(t *testing.T) {
	var buf bytes.Buffer
	k := New()
	k.SetAuditLog(slog.New(slog.NewJSONHandler(&buf, nil)))
	if k.AuditLog() == nil {
		t.Fatal("AuditLog lost the attached logger")
	}

	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter1, pol, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := k.NegotiateFilterPolicy(pol); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("good", cert.Binary); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("warm", cert.Binary); err != nil { // cache hit
		t.Fatal(err)
	}
	if err := k.InstallFilter("junk", []byte("not a pcc binary")); err == nil {
		t.Fatal("garbage installed")
	}
	k.UninstallFilter("good")

	recs := auditRecords(t, &buf)

	neg := findRecord(recs, map[string]any{"event": "negotiate"})
	if neg == nil {
		t.Fatalf("no negotiate record in %d records", len(recs))
	}
	if neg["verdict"] != "accepted" || len(fmt.Sprint(neg["policy_digest"])) != 64 {
		t.Fatalf("bad negotiate record: %v", neg)
	}

	inst := findRecord(recs, map[string]any{"event": "install", "owner": "good"})
	if inst == nil {
		t.Fatal("no install record for owner good")
	}
	if inst["verdict"] != "installed" || inst["kind"] != "filter" || inst["cache"] != "miss" {
		t.Fatalf("bad install record: %v", inst)
	}
	if len(fmt.Sprint(inst["policy_digest"])) != 64 || len(fmt.Sprint(inst["binary_sha256"])) != 64 {
		t.Fatalf("install record missing digests: %v", inst)
	}
	if n, ok := inst["vc_nodes"].(float64); !ok || n <= 0 {
		t.Fatalf("install record missing vc_nodes: %v", inst)
	}
	if n, ok := inst["check_steps"].(float64); !ok || n <= 0 {
		t.Fatalf("install record missing check_steps: %v", inst)
	}
	for _, stage := range []string{"parse_us", "lfsig_us", "vcgen_us", "lfcheck_us"} {
		if _, ok := inst[stage]; !ok {
			t.Fatalf("install record missing stage duration %s: %v", stage, inst)
		}
	}
	if w, ok := inst["wcet_cycles"].(float64); !ok || w <= 0 {
		t.Fatalf("install record missing wcet_cycles: %v", inst)
	}

	warm := findRecord(recs, map[string]any{"event": "install", "owner": "warm"})
	if warm == nil || warm["cache"] != "hit" || warm["verdict"] != "installed" {
		t.Fatalf("bad cache-hit record: %v", warm)
	}
	if _, hasStats := warm["vc_nodes"]; hasStats {
		t.Fatalf("cache-hit record carries validation stats: %v", warm)
	}

	rej := findRecord(recs, map[string]any{"event": "install", "owner": "junk"})
	if rej == nil || rej["verdict"] != "rejected" || rej["error"] == nil {
		t.Fatalf("bad rejection record: %v", rej)
	}

	if un := findRecord(recs, map[string]any{"event": "uninstall", "owner": "good"}); un == nil {
		t.Fatal("no uninstall record")
	}
}

// TestAuditFailingSubterm: a proof that fails LF typechecking must
// yield a rejection record naming the first failing LF subterm, the
// forensic hook the issue asks for.
func TestAuditFailingSubterm(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter1, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	k := New()
	k.SetAuditLog(slog.New(slog.NewJSONHandler(&buf, nil)))

	// Flip single bytes across the proof region until one produces a
	// proof-level (LF) failure; different offsets fail at different
	// layers (parse vs. typecheck), so scan a range.
	found := false
	for off := cert.Layout.ProofOff; off < len(cert.Binary) && !found; off++ {
		tampered := bytes.Clone(cert.Binary)
		tampered[off] ^= 0x55
		owner := fmt.Sprintf("evil-%d", off)
		if err := k.InstallFilter(owner, tampered); err == nil {
			t.Fatalf("tampered proof at offset %d installed", off)
		}
		for _, r := range auditRecords(t, &buf) {
			if r["owner"] == owner && r["lf_failing_subterm"] != nil &&
				fmt.Sprint(r["lf_failing_subterm"]) != "" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no rejection record carried lf_failing_subterm")
	}
}

// TestAuditHandlerInstall: §5.2 handler installs are audited with
// kind "handler".
func TestAuditHandlerInstall(t *testing.T) {
	cert, err := pcc.Certify(`
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
L1:     RET
	`, pcc.ResourceAccessPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	k := New()
	k.SetAuditLog(slog.New(slog.NewJSONHandler(&buf, nil)))
	k.CreateTable(7, 1, 2)
	if err := k.InstallHandler(7, cert.Binary); err != nil {
		t.Fatal(err)
	}
	rec := findRecord(auditRecords(t, &buf), map[string]any{"event": "install", "kind": "handler"})
	if rec == nil {
		t.Fatal("no handler install record")
	}
	if rec["owner"] != "pid-7" || rec["verdict"] != "installed" {
		t.Fatalf("bad handler record: %v", rec)
	}
}

// TestAuditDisabledZeroOverhead: with no logger attached every hook
// must be inert (nil auditor, nil validationAudit).
func TestAuditDisabledZeroOverhead(t *testing.T) {
	k := New()
	if k.AuditLog() != nil {
		t.Fatal("fresh kernel has an audit logger")
	}
	var a *auditor
	va := a.newValidationAudit("filter", "x", nil, 5)
	if va != nil {
		t.Fatal("disabled auditor produced a record")
	}
	// All hooks must tolerate nil receivers without panicking.
	va.setPolicy(policy.PacketFilter())
	va.setStats(nil)
	va.setCacheHit()
	a.install(va, nil, nil)
	a.evict(3, 7)
	a.uninstall("x", 8)
}
