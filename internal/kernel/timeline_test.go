package kernel

import (
	"fmt"
	"log/slog"
	"sync"
	"testing"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// TestTimelineCrossTenantIsolation churns installs, rejections, and
// dispatch through two registry tenants concurrently (run under
// -race), then asserts each tenant's timeline is hermetic: tenant a's
// streams never contain tenant b's EventIDs or owners, and the two
// tenants' EventID ranges are disjoint (per-tenant seeded bases).
func TestTimelineCrossTenantIsolation(t *testing.T) {
	reg := NewRegistry()
	type tenantState struct {
		tn     *Tenant
		owners map[string]bool
	}
	mk := func(name string) *tenantState {
		tn, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		// Wire the audit ring the way serve does, so install decisions
		// land in the queryable stream.
		tn.Kernel.SetAuditLog(slog.New(tn.Audit.Handler(nil)))
		tn.Kernel.SetQuarantine(QuarantineConfig{Threshold: 2})
		return &tenantState{tn: tn, owners: map[string]bool{}}
	}
	a, b := mk("a"), mk("b")

	cert, err := pcc.Certify(filters.Source(filters.Filter1), a.tn.Kernel.FilterPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pkts := pktgen.Generate(64, pktgen.Config{Seed: 7})
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}

	var wg sync.WaitGroup
	for _, ts := range []*tenantState{a, b} {
		for i := 0; i < 8; i++ {
			owner := fmt.Sprintf("%s-owner-%d", ts.tn.Name, i)
			ts.owners[owner] = true
		}
		wg.Add(1)
		go func(ts *tenantState) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for owner := range ts.owners {
					if err := ts.tn.Kernel.InstallFilter(owner, cert.Binary); err != nil {
						t.Errorf("install %s: %v", owner, err)
					}
					// A garbage install exercises the reject path too.
					_ = ts.tn.Kernel.InstallFilter(owner+"-bad", []byte("garbage"))
				}
				if _, err := ts.tn.Kernel.DeliverPackets(raw); err != nil {
					t.Errorf("deliver: %v", err)
				}
			}
		}(ts)
	}
	wg.Wait()

	timeline := func(ts *tenantState) telemetry.Timeline {
		return telemetry.BuildTimeline(ts.tn.Rec, ts.tn.Audit, ts.tn.Flight, telemetry.TimelineQuery{})
	}
	events := func(tl telemetry.Timeline) map[uint64]bool {
		ids := map[uint64]bool{}
		for _, s := range tl.Spans {
			if s.Event.Event != 0 {
				ids[s.Event.Event] = true
			}
		}
		for _, r := range tl.Audit {
			if r.Event != 0 {
				ids[r.Event] = true
			}
		}
		for _, e := range tl.Flight {
			if e.Event != 0 {
				ids[e.Event] = true
			}
		}
		return ids
	}
	tla, tlb := timeline(a), timeline(b)
	ida, idb := events(tla), events(tlb)
	if len(ida) == 0 || len(idb) == 0 {
		t.Fatalf("timelines must carry EventIDs: a=%d b=%d", len(ida), len(idb))
	}
	for id := range ida {
		if idb[id] {
			t.Fatalf("EventID %d appears in both tenants' timelines", id)
		}
	}

	foreign := func(name string, tl telemetry.Timeline, other map[string]bool) {
		for _, s := range tl.Spans {
			if other[s.Detail] {
				t.Fatalf("tenant %s timeline leaked span for foreign owner %q", name, s.Detail)
			}
		}
		for _, r := range tl.Audit {
			if other[r.Owner] {
				t.Fatalf("tenant %s timeline leaked audit record for foreign owner %q", name, r.Owner)
			}
		}
		for _, e := range tl.Flight {
			if other[e.Owner] {
				t.Fatalf("tenant %s timeline leaked flight event for foreign owner %q", name, e.Owner)
			}
		}
	}
	foreign("a", tla, b.owners)
	foreign("b", tlb, a.owners)

	// The per-tenant seeded bases keep the ranges disjoint by
	// construction; verify the seeds actually differ.
	if eventBase("a") == eventBase("b") {
		t.Fatal("tenant event bases must differ")
	}
}
