package kernel

import (
	"fmt"
	"io"
	"sync"
	"testing"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

const handlerSrc = `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
`

// TestKernelStressRace hammers one kernel from >= 8 goroutines mixing
// every public entry point — installs (serial, batch, async),
// uninstalls, packet dispatch, handler invocation, and all the
// introspection calls — and must be clean under `go test -race`. It
// is the pipeline's memory-safety gate: the RWMutex split plus atomic
// accounting must never trade linearizability for throughput. The
// whole workload runs with a live telemetry recorder attached (and
// concurrently scraped), so the lock-free span/metric paths are under
// the same gate; after quiescing, the telemetry totals must agree
// exactly with the kernel's own counters — no lost events beyond the
// ring buffer's explicit drop accounting.
func TestKernelStressRace(t *testing.T) {
	bins := certAll(t)
	k := New()
	rec := telemetry.NewWith(telemetry.Options{TraceCapacity: 512})
	k.SetRecorder(rec)
	handlerCert, err := pcc.Certify(handlerSrc, k.ResourcePolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pkts := pktgen.Generate(40, pktgen.Config{Seed: 99})
	garbage := []byte("untrusted garbage")

	const iters = 25
	var wg sync.WaitGroup
	errCh := make(chan error, 128)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// 2 serial installers: install/uninstall churn on private owners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := fmt.Sprintf("serial-%d", g)
			f := filters.All[g%len(filters.All)]
			for i := 0; i < iters; i++ {
				if err := k.InstallFilter(owner, bins[f]); err != nil {
					fail("install %s: %v", owner, err)
					return
				}
				if err := k.InstallFilter(owner, garbage); err == nil {
					fail("garbage accepted for %s", owner)
					return
				}
				k.UninstallFilter(owner)
			}
		}(g)
	}
	// 1 batch installer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := []InstallRequest{
			{"batch-1", bins[filters.Filter1]},
			{"batch-bad", garbage},
			{"batch-3", bins[filters.Filter3]},
		}
		for i := 0; i < iters; i++ {
			errs := k.InstallFilterBatch(reqs)
			if errs[0] != nil || errs[1] == nil || errs[2] != nil {
				fail("batch verdicts: %v", errs)
				return
			}
		}
	}()
	// 1 async installer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := <-k.ValidateAsync("async", bins[filters.Filter2]); err != nil {
				fail("async install: %v", err)
				return
			}
			k.UninstallFilter("async")
		}
	}()
	// 2 packet dispatchers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, p := range pkts {
					if _, err := k.DeliverPacket(p); err != nil {
						fail("deliver: %v", err)
						return
					}
				}
			}
		}()
	}
	// 1 resource-handler worker on its own pid space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			pid := 1000 + i
			k.CreateTable(pid, 1, uint64(i))
			if err := k.InstallHandler(pid, handlerCert.Binary); err != nil {
				fail("handler install: %v", err)
				return
			}
			if err := k.InvokeHandler(pid); err != nil {
				fail("handler invoke: %v", err)
				return
			}
			if _, data, ok := k.Table(pid); !ok || data != uint64(i)+1 {
				fail("table pid %d: data=%d ok=%v", pid, data, ok)
				return
			}
		}
	}()
	// 2 introspection readers, doubling as telemetry scrapers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*4; i++ {
				k.Owners()
				k.Accepts()
				st := k.Stats()
				if st.Rejections > st.Validations {
					fail("impossible stats: %+v", st)
					return
				}
				if i%8 == 0 {
					if err := rec.WritePrometheus(io.Discard); err != nil {
						fail("scrape: %v", err)
						return
					}
					rec.Trace().Events()
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := k.Stats()
	// serial pairs + batch trio + async + handler installs
	wantValidations := 2*2*iters + 3*iters + iters + iters
	if st.Validations != wantValidations {
		t.Errorf("validations = %d, want %d", st.Validations, wantValidations)
	}
	if st.Rejections != 2*iters+iters { // garbage per serial iter + per batch
		t.Errorf("rejections = %d, want %d", st.Rejections, 3*iters)
	}
	if st.Packets != 2*iters*len(pkts) {
		t.Errorf("packets = %d, want %d", st.Packets, 2*iters*len(pkts))
	}

	// Telemetry must agree exactly with the kernel accounting once
	// quiesced: every install attempt produced one validate-histogram
	// observation and one outcome count, every delivery one dispatch
	// observation, and every span exactly one trace append (lost only
	// to explicit ring drops).
	get := func(name string) int64 { return rec.Counter(name).Value() }
	if n := rec.StageHistogram(telemetry.StageValidate).Count(); n != int64(st.Validations) {
		t.Errorf("validate histogram = %d, validations = %d", n, st.Validations)
	}
	if n := rec.StageHistogram(telemetry.StageDispatch).Count(); n != int64(st.Packets) {
		t.Errorf("dispatch histogram = %d, packets = %d", n, st.Packets)
	}
	if got := get(MetricInstalled) + get(MetricRejected); got != int64(st.Validations) {
		t.Errorf("outcome counters = %d, validations = %d", got, st.Validations)
	}
	if got := get(MetricRejected); got != int64(st.Rejections) {
		t.Errorf("rejected counter = %d, rejections = %d", got, st.Rejections)
	}
	if got := get(MetricCacheHits); got != int64(st.CacheHits) {
		t.Errorf("cache-hit counter = %d, stats = %d", got, st.CacheHits)
	}
	if got := get(MetricCacheMisses); got != int64(st.CacheMisses) {
		t.Errorf("cache-miss counter = %d, stats = %d", got, st.CacheMisses)
	}
	if got := get(MetricPackets); got != int64(st.Packets) {
		t.Errorf("packet counter = %d, stats = %d", got, st.Packets)
	}
	var histTotal int64
	for _, stage := range telemetry.Stages {
		histTotal += rec.StageHistogram(stage).Count()
	}
	tr := rec.Trace()
	if histTotal != tr.Appended() {
		t.Errorf("stage histogram totals = %d, spans appended = %d", histTotal, tr.Appended())
	}
	if int64(len(tr.Events()))+tr.Dropped() != tr.Appended() {
		t.Errorf("ring (%d) + dropped (%d) != appended (%d)",
			len(tr.Events()), tr.Dropped(), tr.Appended())
	}
}

// BenchmarkDeliverDuringValidate is the regression gate for the lock
// split: dispatch latency while a cold validation is in flight. Before
// the pipeline, DeliverPacket contended on the same mutex as
// validation and each delivery could stall for a full multi-millisecond
// proof check; now it waits at most for the short commit section.
func BenchmarkDeliverDuringValidate(b *testing.B) {
	bins := certAll(b)
	// Cache disabled so the background installer really validates
	// every time, like a stream of never-before-seen binaries.
	k := NewWithCacheSize(0)
	if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
		b.Fatal(err)
	}
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0]

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := k.InstallFilter("churn", bins[filters.Filter3]); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DeliverPacket(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkDeliverNoValidate is the baseline for
// BenchmarkDeliverDuringValidate: the same dispatch with no install
// churn. Comparable ns/op between the two is the "no latency spike"
// evidence.
func BenchmarkDeliverNoValidate(b *testing.B) {
	bins := certAll(b)
	k := New()
	if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
		b.Fatal(err)
	}
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DeliverPacket(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstallColdWarm measures the proof cache: ns per install
// with validation memoized versus re-proved every time.
func BenchmarkInstallColdWarm(b *testing.B) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter4, pol, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		k := NewWithCacheSize(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := k.InstallFilter("f", cert.Binary); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		k := New()
		if err := k.InstallFilter("f", cert.Binary); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := k.InstallFilter("f", cert.Binary); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInstallFilterBatch compares serial and worker-pool
// installation of the four paper filters, all-cold (the wall-clock
// speedup tracks GOMAXPROCS; on one core the two are equal up to
// scheduling noise).
func BenchmarkInstallFilterBatch(b *testing.B) {
	bins := certAll(b)
	var reqs []InstallRequest
	for _, f := range filters.All {
		reqs = append(reqs, InstallRequest{f.String(), bins[f]})
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := NewWithCacheSize(0)
			for _, r := range reqs {
				if err := k.InstallFilter(r.Owner, r.Binary); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := NewWithCacheSize(0)
			for _, err := range k.InstallFilterBatch(reqs) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
