// Multi-tenant kernel registry. One process can host several isolated
// kernels — one per tenant — each with its own filter table, sharded
// statistics, telemetry recorder, and dispatch flight recorder.
// Isolation is structural: tenants share no counters and no filter
// table, so one tenant's install churn, quarantine state, or traffic
// mix cannot perturb another's metrics or verdicts. The registry is
// only a name→tenant directory; the hot path never touches it —
// callers resolve a tenant once and dispatch against its kernel
// directly, on that kernel's lock-free snapshot path.
package kernel

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// Tenant is one isolated kernel with its observability surfaces
// attached. The fields are wired together at Create time (the recorder
// and flight recorder are already attached to the kernel) and never
// reassigned, so they may be read without holding the registry lock.
// Audit is the tenant's queryable audit-record ring; callers wiring
// their own audit logger should tee through Audit.Handler so
// /debug/timeline keeps seeing install decisions.
type Tenant struct {
	Name   string
	Kernel *Kernel
	Rec    *telemetry.Recorder
	Flight *telemetry.FlightRecorder
	Audit  *telemetry.AuditRing
	// Store is the tenant's durability journal, non-nil only after
	// AttachStore. Set during boot wiring, before the tenant serves
	// traffic, so like the other fields it is read without the registry
	// lock.
	Store *store.Store
}

// AttachStore opens (creating if absent) the tenant's durable filter
// store in dir, runs verified recovery on the tenant's kernel —
// re-validating every journaled binary through the full proof-checking
// pipeline — and leaves the store attached for write-ahead duty. Part
// of boot wiring: call before the tenant serves traffic. The returned
// report says what restored and what was skipped; the error return is
// environmental (unreadable directory, canceled context) only.
func (t *Tenant) AttachStore(ctx context.Context, dir string, opt store.Options) (*RecoveryReport, error) {
	s, err := store.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	rep, err := t.Kernel.Recover(ctx, s)
	if err != nil {
		s.Close()
		return rep, err
	}
	t.Store = s
	return rep, nil
}

// CloseStore closes the tenant's store, if any. The closed store stays
// attached to the kernel on purpose: a straggler install racing
// shutdown fails its journal append (store.ErrClosed) and is rejected
// rather than acked without durability — detaching instead would
// silently downgrade late installs to ephemeral. Belongs in shutdown,
// after the last in-flight install has committed.
func (t *Tenant) CloseStore() error {
	s := t.Store
	if s == nil {
		return nil
	}
	t.Store = nil
	return s.Close()
}

// eventBase derives the tenant's EventID starting point from its name:
// a 20-bit FNV-1a hash shifted above the low 32 bits. IDs from
// different tenants land in disjoint ranges (until a tenant performs
// 2^32 operations), so a leaked or logged EventID identifies its
// tenant, and every ID stays below 2^53 — exact in JSON numbers.
func eventBase(name string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return uint64(h.Sum32()&0xFFFFF) << 32
}

// Registry is a concurrency-safe directory of tenants. The lock guards
// only the directory map — never dispatch, which goes straight at a
// resolved Tenant's kernel.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty tenant directory.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Create boots a fresh kernel for name with a telemetry recorder and
// flight recorder attached, and registers it. The tenant comes up on
// the interpreter backend with no filters; callers configure backend,
// budget, and quarantine posture on t.Kernel before installing.
func (r *Registry) Create(name string) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("tenant name must be non-empty")
	}
	t := &Tenant{
		Name:   name,
		Kernel: New(),
		// Windowed recorder: registry tenants serve live endpoints, so
		// they get recent rates and windowed quantiles, not just
		// since-boot cumulatives.
		Rec:    telemetry.NewWith(telemetry.Options{Window: &telemetry.WindowOptions{}}),
		Flight: telemetry.NewFlightRecorder(0),
		Audit:  telemetry.NewAuditRing(0),
	}
	t.Kernel.SetRecorder(t.Rec)
	t.Kernel.SetFlightRecorder(t.Flight)
	t.Kernel.SeedEventBase(eventBase(name))
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[name]; dup {
		return nil, fmt.Errorf("tenant %q already exists", name)
	}
	r.tenants[name] = t
	return t, nil
}

// Get resolves a tenant by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Remove unregisters a tenant and quiesces its kernel so every
// retired filter-table snapshot is reclaimed. Reports whether the
// tenant existed. In-flight dispatches against the removed tenant's
// kernel finish normally — removal only drops the directory entry.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	t, ok := r.tenants[name]
	delete(r.tenants, name)
	r.mu.Unlock()
	if ok {
		t.Kernel.Quiesce()
	}
	return ok
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AttachStores attaches one durable store per registered tenant, each
// in its own subdirectory base/<tenant>, recovering each tenant's
// kernel from its journal. Returns the per-tenant recovery reports; a
// failure on one tenant aborts (stores already attached stay
// attached, so a retry is safe).
func (r *Registry) AttachStores(ctx context.Context, base string, opt store.Options) (map[string]*RecoveryReport, error) {
	reports := make(map[string]*RecoveryReport)
	for _, t := range r.Tenants() {
		if t.Store != nil {
			continue
		}
		rep, err := t.AttachStore(ctx, filepath.Join(base, t.Name), opt)
		if err != nil {
			return reports, fmt.Errorf("tenant %q: %w", t.Name, err)
		}
		reports[t.Name] = rep
	}
	return reports, nil
}

// CloseStores closes every tenant's store (shutdown path).
func (r *Registry) CloseStores() error {
	var first error
	for _, t := range r.Tenants() {
		if err := t.CloseStore(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Tenants returns the registered tenants sorted by name.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	return ts
}
