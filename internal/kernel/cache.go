// Proof cache: content-addressed memoization of successful
// validations. The paper's Figure 9 argument is that proof checking is
// a one-time cost; at consumer scale the same extension binary is
// installed over and over (many users shipping the same filter), so
// the kernel memoizes Validate by SHA-256 of (binary bytes, policy
// fingerprint) — see pcc.ValidationKey — and a re-install of an
// already-verified extension skips VC generation and LF checking
// entirely.
//
// Only *successful* validations are cached: a rejected binary is never
// remembered, so tampered or truncated blobs re-validate (and re-fail)
// every time and cannot poison the cache. Because the policy
// fingerprint is part of the key, an entry cached under one policy is
// invisible to validation under any other.
package kernel

import (
	"container/list"
	"sync"

	pcc "repro"
)

// cacheKey is pcc.ValidationKey's output: SHA-256 of binary + policy
// fingerprints.
type cacheKey [32]byte

// DefaultCacheSize is the proof-cache capacity (entries) of kernels
// built with New.
const DefaultCacheSize = 256

// proofCache is a thread-safe LRU of validated extensions. Its lock is
// held only for map/list maintenance — never across a validation — so
// the validation stage of the pipeline stays effectively lock-free.
type proofCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions int64
}

type cacheSlot struct {
	key cacheKey
	ext *pcc.Extension
	// wcet is the static worst-case cost bound, memoized on the first
	// budget check (-1 = not yet computed).
	wcet int64
}

func newProofCache(max int) *proofCache {
	return &proofCache{
		max:     max,
		entries: map[cacheKey]*list.Element{},
		order:   list.New(),
	}
}

// get returns the cached slot for key, counting a hit or a miss.
func (c *proofCache) get(key cacheKey) *cacheSlot {
	if c == nil || c.max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot)
}

// put records a successful validation, evicting the least recently
// used entry when over capacity.
func (c *proofCache) put(key cacheKey, ext *pcc.Extension) *cacheSlot {
	slot := &cacheSlot{key: key, ext: ext, wcet: -1}
	if c == nil || c.max <= 0 {
		return slot
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheSlot)
	}
	c.entries[key] = c.order.PushFront(slot)
	for c.order.Len() > c.max {
		back := c.order.Back()
		delete(c.entries, back.Value.(*cacheSlot).key)
		c.order.Remove(back)
		c.evictions++
	}
	return slot
}

// setWCET memoizes the budget-check bound on a slot.
func (c *proofCache) setWCET(slot *cacheSlot, bound int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	slot.wcet = bound
}

// getWCET reads a slot's memoized bound under the cache lock.
func (c *proofCache) getWCET(slot *cacheSlot) int64 {
	if c == nil {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return slot.wcet
}

// counters snapshots the accounting.
func (c *proofCache) counters() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// len reports the live entry count (tests).
func (c *proofCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
