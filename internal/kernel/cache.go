// Proof cache: content-addressed memoization of successful
// validations. The paper's Figure 9 argument is that proof checking is
// a one-time cost; at consumer scale the same extension binary is
// installed over and over (many users shipping the same filter), so
// the kernel memoizes Validate by SHA-256 of (binary bytes, policy
// content digest) — see pcc.ValidationKey — and a re-install of an
// already-verified extension skips VC generation and LF checking
// entirely.
//
// Only *successful* validations are cached: a rejected binary is never
// remembered, so tampered or truncated blobs re-validate (and re-fail)
// every time and cannot poison the cache. Because the policy's full
// SHA-256 content digest is part of the key (a truncated fingerprint
// would admit engineered cross-policy collisions), an entry cached
// under one policy is invisible to validation under any other.
package kernel

import (
	"container/list"
	"sync"

	pcc "repro"
	"repro/internal/machine"
)

// cacheKey is pcc.ValidationKey's output: SHA-256 of binary + policy
// fingerprints.
type cacheKey [32]byte

// DefaultCacheSize is the proof-cache capacity (entries) of kernels
// built with New.
const DefaultCacheSize = 256

// proofCache is a thread-safe LRU of validated extensions. Its lock is
// held only for map/list maintenance — never across a validation — so
// the validation stage of the pipeline stays effectively lock-free.
type proofCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions int64
}

// cacheSlot is one validated extension plus everything derived purely
// from it. Slots are immutable after construction (newCacheSlot in
// kernel.go) — the threaded-code form below is the one lazily derived
// field, write-once behind its sync.Once — so readers need no lock.
type cacheSlot struct {
	key cacheKey
	ext *pcc.Extension
	// wcet is the static worst-case cost bound of ext.Prog, computed
	// lock-free at validation time; wcetErr records why no bound
	// exists (e.g. a loop), in which case budgeted installs reject.
	wcet    int64
	wcetErr error
	// compiled is the memoized threaded-code translation of ext.Prog,
	// built on the first BackendCompiled install that commits this
	// slot (compiledForm in backend.go). Cache hits reuse it, so a
	// re-install compiles as rarely as it proof-checks.
	compileOnce sync.Once
	compiled    *machine.Compiled
	compileErr  error
}

func newProofCache(max int) *proofCache {
	return &proofCache{
		max:     max,
		entries: map[cacheKey]*list.Element{},
		order:   list.New(),
	}
}

// lookup returns the cached slot for key, or nil. It does no hit/miss
// accounting: an install attempt may probe several candidate policies,
// and the kernel records at most one hit or one miss per attempt
// (recordHit/recordMiss), so the hit rate reflects installs, not
// probes.
func (c *proofCache) lookup(key cacheKey) *cacheSlot {
	if c == nil || c.max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot)
}

// recordHit counts one install attempt served from the cache.
func (c *proofCache) recordHit() {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
}

// recordMiss counts one install attempt that found no cached candidate.
func (c *proofCache) recordMiss() {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
}

// put records a successful validation, evicting the least recently
// used entries when over capacity; evicted reports how many (so the
// caller can feed telemetry without re-taking the cache lock).
func (c *proofCache) put(slot *cacheSlot) (kept *cacheSlot, evicted int64) {
	if c == nil || c.max <= 0 {
		return slot, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[slot.key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheSlot), 0
	}
	c.entries[slot.key] = c.order.PushFront(slot)
	for c.order.Len() > c.max {
		back := c.order.Back()
		delete(c.entries, back.Value.(*cacheSlot).key)
		c.order.Remove(back)
		c.evictions++
		evicted++
	}
	return slot, evicted
}

// counters snapshots the accounting.
func (c *proofCache) counters() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// len reports the live entry count (tests).
func (c *proofCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
