package kernel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// TestKernelTelemetryPipeline drives a full install/dispatch lifecycle
// with a recorder attached and checks that every layer of the
// telemetry story lines up: outcome counters, cache counters, the
// span tree (validate with cacheprobe/parse/lfsig/vcgen/lfcheck/wcet
// children), stage histograms, and the exposition page.
func TestKernelTelemetryPipeline(t *testing.T) {
	bins := certAll(t)
	k := New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	if k.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	// Two cold installs, one warm re-install, one rejection.
	if err := k.InstallFilter("alice", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("bob", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("alice", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("mallory", []byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	for _, p := range pktgen.Generate(10, pktgen.Config{Seed: 7}) {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}
	k.UninstallFilter("bob")

	get := func(name string) int64 { return rec.Counter(name).Value() }
	if got := get(MetricInstalled); got != 3 {
		t.Errorf("installed counter = %d, want 3", got)
	}
	if got := get(MetricRejected); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	if got := get(MetricCacheHits); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := get(MetricCacheMisses); got != 3 {
		t.Errorf("cache misses = %d, want 3 (2 cold + 1 rejected)", got)
	}
	if got := get(MetricPackets); got != 10 {
		t.Errorf("packets counter = %d, want 10", got)
	}
	if got := rec.Gauge(MetricFiltersGauge).Value(); got != 1 {
		t.Errorf("filters gauge = %d, want 1 after uninstall", got)
	}

	// Telemetry agrees with the kernel's own accounting.
	st := k.Stats()
	if int64(st.CacheHits) != get(MetricCacheHits) || int64(st.CacheMisses) != get(MetricCacheMisses) {
		t.Errorf("cache counters diverge: stats=%+v", st)
	}
	if int64(st.Packets) != get(MetricPackets) {
		t.Errorf("packet counters diverge: %d vs %d", st.Packets, get(MetricPackets))
	}

	// Span tree: each cold validate span has the full child set.
	events := rec.Trace().Events()
	children := map[uint64][]string{}
	validates := map[uint64]string{}
	for _, e := range events {
		if e.Stage == telemetry.StageValidate {
			validates[e.ID] = e.Detail
		}
		if e.Parent != 0 {
			children[e.Parent] = append(children[e.Parent], e.Stage)
		}
	}
	if len(validates) != 4 {
		t.Fatalf("validate spans = %d, want 4", len(validates))
	}
	coldChildren := 0
	for id, owner := range validates {
		kids := strings.Join(children[id], ",")
		switch {
		case strings.Contains(kids, telemetry.StageVCGen):
			coldChildren++
			for _, want := range []string{
				telemetry.StageCacheProbe, telemetry.StageParse, telemetry.StageLFSig,
				telemetry.StageVCGen, telemetry.StageLFCheck, telemetry.StageWCET,
			} {
				if !strings.Contains(kids, want) {
					t.Errorf("cold validate %q missing child %s (has %s)", owner, want, kids)
				}
			}
		case !strings.Contains(kids, telemetry.StageCacheProbe):
			t.Errorf("validate %q has no cacheprobe child (has %s)", owner, kids)
		}
	}
	if coldChildren != 2 {
		t.Errorf("cold validations with stage children = %d, want 2", coldChildren)
	}

	// Stage histograms: dispatch observed once per delivery, commit
	// once per committed install, validate once per attempt.
	if got := rec.StageHistogram(telemetry.StageDispatch).Count(); got != 10 {
		t.Errorf("dispatch histogram = %d, want 10", got)
	}
	if got := rec.StageHistogram(telemetry.StageCommit).Count(); got != 3 {
		t.Errorf("commit histogram = %d, want 3", got)
	}
	if got := rec.StageHistogram(telemetry.StageValidate).Count(); got != 4 {
		t.Errorf("validate histogram = %d, want 4", got)
	}

	// The exposition page carries the whole contract.
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		MetricInstalled, MetricRejected, MetricCacheHits, MetricCacheMisses,
		MetricCacheEvictions, MetricPackets, MetricFiltersGauge,
		"pcc_stage_vcgen_seconds_count", "pcc_stage_lfcheck_seconds_count",
		"pcc_stage_wcet_seconds_count", "pcc_stage_commit_seconds_count",
		"pcc_stage_dispatch_seconds_count",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTelemetryEvictionCounter fills a tiny cache past capacity and
// checks evictions reach both Stats and the telemetry counter.
func TestTelemetryEvictionCounter(t *testing.T) {
	bins := certAll(t)
	k := NewWithCacheSize(1)
	rec := telemetry.New()
	k.SetRecorder(rec)
	for _, f := range filters.All {
		if err := k.InstallFilter(f.String(), bins[f]); err != nil {
			t.Fatal(err)
		}
	}
	st := k.Stats()
	if st.CacheEvictions == 0 {
		t.Fatal("expected evictions with cache size 1")
	}
	if got := rec.Counter(MetricCacheEvictions).Value(); got != int64(st.CacheEvictions) {
		t.Errorf("telemetry evictions = %d, stats = %d", got, st.CacheEvictions)
	}
}

// TestTelemetryNegotiateSpan checks policy negotiation is traced.
func TestTelemetryNegotiateSpan(t *testing.T) {
	k := New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	weaker := policy.PacketFilter()
	weaker.Name = "negotiated/v1"
	if err := k.NegotiateFilterPolicy(weaker); err != nil {
		t.Fatal(err)
	}
	events := rec.Trace().Events()
	if len(events) != 1 || events[0].Stage != telemetry.StageNegotiate || events[0].Detail != "negotiated/v1" {
		t.Fatalf("negotiate trace = %+v", events)
	}
	if rec.StageHistogram(telemetry.StageNegotiate).Count() != 1 {
		t.Error("negotiate histogram not observed")
	}
}

// TestNilRecorderZeroAllocDispatch is the nil-path gate: with no
// recorder attached, DeliverPacket must not allocate at all — the
// pooled delivery state plus the disabled telemetry hooks leave
// nothing on the heap per packet.
func TestNilRecorderZeroAllocDispatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts, distorting allocation counts")
	}
	bins := certAll(t)
	k := New()
	if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
		t.Fatal(err)
	}
	// Find a packet Filter4 rejects, so the accepted slice stays nil
	// and the measurement isolates the delivery machinery itself.
	var pkt pktgen.Packet
	found := false
	for _, p := range pktgen.Generate(200, pktgen.Config{Seed: 11}) {
		owners, err := k.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) == 0 {
			pkt, found = p, true
			break
		}
	}
	if !found {
		t.Skip("no rejected packet in trace")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := k.DeliverPacket(pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("nil-recorder DeliverPacket allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPooledStateMatchesFresh cross-checks the pooled delivery path
// against freshly allocated states: same verdicts for every filter
// over a mixed trace, including scratch-using filters back to back
// (the pool must not leak scratch contents between filters).
func TestPooledStateMatchesFresh(t *testing.T) {
	bins := certAll(t)
	k := New()
	for _, f := range filters.All {
		if err := k.InstallFilter(f.String(), bins[f]); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pktgen.Generate(500, pktgen.Config{Seed: 3}) {
		got, err := k.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: run each filter on a fresh state.
		var want []string
		tb := k.table.Load()
		for i := range tb.slots {
			owner, f := tb.slots[i].owner, tb.slots[i].f
			res, err := f.ext.Run(k.packetState(p), 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ret != 0 {
				want = append(want, owner)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("packet %d: pooled verdicts %v, fresh %v", i, got, want)
		}
		seen := map[string]bool{}
		for _, o := range got {
			seen[o] = true
		}
		for _, o := range want {
			if !seen[o] {
				t.Fatalf("packet %d: pooled verdicts %v, fresh %v", i, got, want)
			}
		}
	}
}

// BenchmarkDeliverPacketState is the before/after evidence for the
// delivery-state pool: "fresh" builds a new memory image per filter
// per packet (the pre-pool behaviour), "pooled" is the shipping
// DeliverPacket path.
func BenchmarkDeliverPacketState(b *testing.B) {
	bins := certAll(b)
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0]

	b.Run("fresh", func(b *testing.B) {
		k := New()
		if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb := k.table.Load()
			for si := range tb.slots {
				res, err := tb.slots[si].f.ext.Run(k.packetState(pkt), 1<<20)
				if err != nil {
					b.Fatalf("%s: %v", tb.slots[si].owner, err)
				}
				_ = res
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		k := New()
		if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.DeliverPacket(pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeliverWithRecorder quantifies the live-recorder dispatch
// overhead against the nil-recorder path on the same kernel.
func BenchmarkDeliverWithRecorder(b *testing.B) {
	bins := certAll(b)
	pkt := pktgen.Generate(1, pktgen.Config{Seed: 5})[0]
	k := New()
	if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
		b.Fatal(err)
	}
	b.Run("nil", func(b *testing.B) {
		k.SetRecorder(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.DeliverPacket(pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		k.SetRecorder(telemetry.New())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.DeliverPacket(pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestPerFilterLabeledCounters: dispatch with a recorder attached
// feeds the per-filter labeled families, the counts agree with the
// kernel's own accounting, and a hostile owner name (quotes,
// backslash, newline) still yields a parseable exposition page.
func TestPerFilterLabeledCounters(t *testing.T) {
	bins := certAll(t)
	k := New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	hostile := "evil\"name\\with\nnewline"
	if err := k.InstallFilter(hostile, bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("plain", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}
	for _, p := range pktgen.Generate(200, pktgen.Config{Seed: 9}) {
		if _, err := k.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
	}

	snap := rec.Snapshot(false)
	accepts := k.Accepts()
	for owner, want := range accepts {
		if got := snap.Labeled[MetricFilterAccepts][owner]; got != int64(want) {
			t.Errorf("%q: labeled accepts %d, kernel says %d", owner, got, want)
		}
	}
	var cycles int64
	for _, c := range snap.Labeled[MetricFilterCycles] {
		cycles += c
	}
	if cycles != k.Stats().ExtensionCycles {
		t.Errorf("labeled cycles %d, kernel charged %d", cycles, k.Stats().ExtensionCycles)
	}

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.Contains(page, `{filter="evil\"name\\with\nnewline"}`) {
		t.Fatalf("hostile owner not escaped on the exposition page:\n%s", page)
	}
	for _, ln := range strings.Split(page, "\n") {
		if strings.ContainsRune(ln, '\r') {
			t.Fatalf("raw control character leaked into exposition line %q", ln)
		}
	}
}
