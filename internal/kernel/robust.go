// Adversarial-hardening layer: the knobs a kernel operator turns when
// the install interface is exposed to genuinely hostile producers.
//
// Three mechanisms compose here, all disabled or unbounded by default
// so the paper-faithful kernel is unchanged until an operator opts in:
//
//   - Validation budgets (SetLimits): every install validates under a
//     pcc.Limits, so proof bombs die as typed "limit" rejections
//     instead of exhausting the consumer (docs/ROBUSTNESS.md).
//   - Admission control (SetAdmissionLimit): a bounded count of
//     concurrent validations; excess installs shed immediately with a
//     typed *QueueFullError carrying a retry hint, rather than piling
//     up CPU-bound proof checks without bound.
//   - Producer quarantine (SetQuarantine): owners whose installs are
//     rejected repeatedly are embargoed with exponential backoff, so a
//     producer spraying garbage binaries cannot monopolize the
//     validator. Embargoed-owner count is exported as a gauge.
//
// Every rejection, whatever the mechanism, flows through commitFilter:
// it lands in the audit log with a reject_reason attribute and in the
// pcc_rejects_total{reason} counter family, and Validations ==
// installs + rejections still holds at rest.
package kernel

import (
	"context"
	"errors"
	"fmt"
	"time"

	pcc "repro"
	"repro/internal/telemetry"
)

// SetLimits configures the resource budgets every subsequent
// validation runs under. The zero Limits value means "no budget on any
// axis"; an unset kernel validates under pcc.DefaultLimits.
func (k *Kernel) SetLimits(lim pcc.Limits) {
	old := k.Limits()
	k.limits.Store(&lim)
	k.configChange("limits", fmt.Sprintf("%+v", old), fmt.Sprintf("%+v", lim))
}

// Limits returns the configured validation budgets (DefaultLimits when
// never set).
func (k *Kernel) Limits() pcc.Limits {
	if l := k.limits.Load(); l != nil {
		return *l
	}
	return pcc.DefaultLimits()
}

// admissionRetryAfter is the retry hint a shed install carries: long
// enough for an in-flight proof check to finish, short enough that a
// well-behaved producer retries promptly.
const admissionRetryAfter = 10 * time.Millisecond

// QueueFullError reports an install shed by admission control: the
// kernel refused to even start validating because Limit validations
// were already in flight. The caller should retry after RetryAfter.
type QueueFullError struct {
	Limit      int
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("kernel: admission queue full (%d validations in flight); retry after %s",
		e.Limit, e.RetryAfter)
}

// admitGate is a semaphore bounding concurrent validations.
type admitGate struct {
	slots chan struct{}
	limit int
}

func (g *admitGate) tryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *admitGate) release() { <-g.slots }

// SetAdmissionLimit bounds the number of concurrently admitted install
// validations; further InstallFilterCtx calls shed immediately with a
// *QueueFullError instead of queueing unbounded CPU-bound work. n <= 0
// removes the bound (the default). The swap is atomic; in-flight
// installs drain against the gate they were admitted under.
func (k *Kernel) SetAdmissionLimit(n int) {
	if n <= 0 {
		k.admit.Store(nil)
		return
	}
	k.admit.Store(&admitGate{slots: make(chan struct{}, n), limit: n})
}

// QuarantineConfig tunes producer quarantine. Threshold consecutive
// rejections embargo the owner for Base, doubling per further strike
// up to Max. Threshold <= 0 disables quarantine (the default).
type QuarantineConfig struct {
	Threshold int
	Base      time.Duration
	Max       time.Duration
}

// backoff returns the embargo length after the given strike count.
func (c *QuarantineConfig) backoff(strikes int) time.Duration {
	d := c.Base
	if d <= 0 {
		d = time.Second
	}
	for i := c.Threshold; i < strikes; i++ {
		d *= 2
		if c.Max > 0 && d >= c.Max {
			return c.Max
		}
	}
	if c.Max > 0 && d > c.Max {
		d = c.Max
	}
	return d
}

// QuarantineError reports an install refused because its owner is
// under embargo.
type QuarantineError struct {
	Owner   string
	Until   time.Time
	Strikes int
}

// Error implements the error interface.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("kernel: owner %q quarantined until %s after %d consecutive rejections",
		e.Owner, e.Until.Format(time.RFC3339Nano), e.Strikes)
}

// quarState is one owner's strike record.
type quarState struct {
	strikes int
	until   time.Time
}

// SetQuarantine configures producer quarantine; a Threshold <= 0
// disables it and clears all strike records.
func (k *Kernel) SetQuarantine(cfg QuarantineConfig) {
	oldCfg := "disabled"
	if old := k.quarCfg.Load(); old != nil {
		oldCfg = fmt.Sprintf("%+v", *old)
	}
	if cfg.Threshold <= 0 {
		k.quarCfg.Store(nil)
		k.quarMu.Lock()
		k.quar = nil
		k.quarMu.Unlock()
		k.tel.Load().setQuarantined(0)
		k.configChange("quarantine", oldCfg, "disabled")
		return
	}
	k.quarCfg.Store(&cfg)
	k.configChange("quarantine", oldCfg, fmt.Sprintf("%+v", cfg))
	// Publish the gauge immediately (normally zero) so a scrape sees
	// the series as soon as quarantine is enabled, not after the first
	// embargo.
	k.quarMu.Lock()
	n := k.embargoedLocked(time.Now())
	k.quarMu.Unlock()
	k.tel.Load().setQuarantined(n)
}

// Quarantined returns the currently embargoed owners and when each
// embargo lifts.
func (k *Kernel) Quarantined() map[string]time.Time {
	now := time.Now()
	k.quarMu.Lock()
	defer k.quarMu.Unlock()
	out := map[string]time.Time{}
	for o, st := range k.quar {
		if st.until.After(now) {
			out[o] = st.until
		}
	}
	return out
}

// embargoedLocked counts live embargoes; callers hold quarMu.
func (k *Kernel) embargoedLocked(now time.Time) int {
	n := 0
	for _, st := range k.quar {
		if st.until.After(now) {
			n++
		}
	}
	return n
}

// quarantineCheck is the validation-stage gate: a live embargo rejects
// the install before any byte of the binary is examined.
func (k *Kernel) quarantineCheck(owner string) error {
	cfg := k.quarCfg.Load()
	if cfg == nil {
		return nil
	}
	now := time.Now()
	k.quarMu.Lock()
	defer k.quarMu.Unlock()
	st := k.quar[owner]
	if st == nil || !st.until.After(now) {
		return nil
	}
	return &QuarantineError{Owner: owner, Until: st.until, Strikes: st.strikes}
}

// noteRejection records a strike against the owner. Rejections the
// owner's binary did not cause — an embargo already in force, a full
// admission queue, a journal-append failure, a replayed record failing
// re-validation during Recover — do not count, or a single embargo
// would extend itself forever (and a sick or bit-rotted disk would
// embargo innocent producers: a recovery skip means the journal's copy
// rotted, not that the owner ever submitted an unsound binary, and a
// strike here would block their post-recovery reinstall).
func (k *Kernel) noteRejection(owner, reason string, eid uint64) {
	cfg := k.quarCfg.Load()
	if cfg == nil || reason == "quarantine" || reason == "queue_full" ||
		reason == "store" || reason == "recovery" {
		return
	}
	now := time.Now()
	var embargo *QuarantineError
	k.quarMu.Lock()
	if k.quar == nil {
		k.quar = map[string]*quarState{}
	}
	st := k.quar[owner]
	if st == nil {
		st = &quarState{}
		k.quar[owner] = st
	}
	st.strikes++
	if st.strikes >= cfg.Threshold {
		st.until = now.Add(cfg.backoff(st.strikes))
		embargo = &QuarantineError{Owner: owner, Until: st.until, Strikes: st.strikes}
	}
	n := k.embargoedLocked(now)
	k.quarMu.Unlock()
	k.tel.Load().setQuarantined(n)
	if embargo != nil {
		k.audit.Load().quarantine(embargo, eid)
		k.flight(telemetry.FlightQuarantine, owner,
			fmt.Sprintf("strikes=%d until=%s", embargo.Strikes, embargo.Until.Format(time.RFC3339Nano)), eid)
	}
}

// noteSuccess clears the owner's strike record: quarantine punishes
// consecutive failures only.
func (k *Kernel) noteSuccess(owner string) {
	if k.quarCfg.Load() == nil {
		return
	}
	k.quarMu.Lock()
	delete(k.quar, owner)
	n := k.embargoedLocked(time.Now())
	k.quarMu.Unlock()
	k.tel.Load().setQuarantined(n)
}

// installRejectReason extends pcc.RejectReason with the kernel's own
// rejection classes. The vocabulary is the label set of
// pcc_rejects_total: limit, deadline, panic, proof, quarantine,
// queue_full, recovery, store. Recovery is checked first: a replayed
// record that fails validation wraps the underlying proof error, and
// the boot-time bucket is the one operators alert on.
func installRejectReason(err error) string {
	var re *RecoveryError
	if errors.As(err, &re) {
		return "recovery"
	}
	var se *StoreError
	if errors.As(err, &se) {
		return "store"
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		return "quarantine"
	}
	var fe *QueueFullError
	if errors.As(err, &fe) {
		return "queue_full"
	}
	return pcc.RejectReason(err)
}

// InstallFilterCtx is InstallFilter under a context and the kernel's
// configured admission control: an expired or canceled context rejects
// without running the proof checker (mid-check cancellation is honored
// within a bounded number of inference steps), and when an admission
// limit is set, an install arriving with all slots busy sheds
// immediately with a *QueueFullError. Both outcomes are ordinary
// rejections: audited, counted, and classified by reason.
func (k *Kernel) InstallFilterCtx(ctx context.Context, owner string, binary []byte) error {
	eid := k.nextEvent(k.tel.Load())
	if gate := k.admit.Load(); gate != nil {
		if !gate.tryAcquire() {
			k.stats.validations.Add(1)
			va := k.audit.Load().newValidationAudit("filter", owner, binary, eid)
			return k.commitFilter(owner, binary, nil, va,
				&QueueFullError{Limit: gate.limit, RetryAfter: admissionRetryAfter}, k.Backend(), eid, true)
		}
		defer gate.release()
	}
	slot, va, err := k.validateFilter(ctx, owner, binary, eid)
	return k.commitFilter(owner, binary, slot, va, err, k.Backend(), eid, true)
}
