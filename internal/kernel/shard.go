// Sharded hot-path counters. With dispatch lock-free (epoch.go,
// table.go), the next scaling wall is the counters every delivery
// bumps: a single atomic.Int64 for packets, cycles, and per-owner
// accepts turns into one cache line ping-ponging between every
// dispatching core. Each counter therefore becomes an array of padded
// per-shard slots: a dispatch environment is assigned a shard at
// creation (round-robin, and sync.Pool's per-P caching gives
// environments natural processor affinity), increments touch only that
// shard's line, and scrapes sum the shards.
//
// Aggregation contract: every increment lands in exactly one shard
// slot with an atomic add, so a scrape-time sum loses nothing — not
// across concurrent deliveries, and not across a filter-table swap
// (the counters live outside the swapped snapshot; see Stats for the
// documented semantics). Each slot is monotonically non-decreasing, so
// successive sums are monotone even while deliveries are in flight.
package kernel

import (
	"runtime"
	"sync/atomic"
)

// dispatchShard is one shard of the kernel-wide delivery counters:
// packets delivered and simulated cycles spent inside extensions.
// Padded to a cache line so adjacent shards never false-share.
type dispatchShard struct {
	packets atomic.Int64
	cycles  atomic.Int64
	_       [cacheLine - 16]byte
}

// numShards picks the shard count for this process: a power of two
// (so environment assignment is a mask) comfortably above GOMAXPROCS,
// keeping shards uncontended even when goroutines outnumber
// processors. Bounded so per-owner counters stay small.
func numShards() int {
	want := 4 * runtime.GOMAXPROCS(0)
	if want < 8 {
		want = 8
	}
	if want > 256 {
		want = 256
	}
	n := 1
	for n < want {
		n <<= 1
	}
	return n
}

// padInt64 is a cache-line-padded atomic counter slot.
type padInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ownerCounter is a sharded per-owner accept counter. Like the old
// single atomic it persists across uninstall/reinstall: the filter
// table's accepts map (table.go) carries it from snapshot to snapshot.
type ownerCounter struct {
	shards []padInt64
}

func newOwnerCounter(n int) *ownerCounter {
	return &ownerCounter{shards: make([]padInt64, n)}
}

// add folds n accepts into the given shard.
func (c *ownerCounter) add(shard int, n int64) { c.shards[shard].v.Add(n) }

// total sums the shards; monotone across calls (shards only grow).
func (c *ownerCounter) total() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}
