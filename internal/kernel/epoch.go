// Epoch-based reclamation for the lock-free dispatch path. The kernel
// publishes its filter table as an immutable snapshot behind an
// atomic.Pointer (table.go); writers replace the pointer and must not
// free the old snapshot — or the compiled programs it references —
// while a dispatch that loaded it is still running. This file is the
// grace-period machinery that makes the "free" side safe without ever
// making the reader side wait.
//
// Readers pin: they advertise the current global epoch in a reader
// record (one atomic store), load the table, dispatch, and store zero
// to unpin. Writers retire: they bump the global epoch, tag the
// retired objects with it, and free an object only once every reader
// record is either quiescent or pinned at an epoch >= the object's —
// such a reader pinned after the bump, and the table swap is ordered
// before the bump, so it cannot hold the retired snapshot.
//
// The correctness argument leans on Go's sequentially consistent
// atomics. Writer order: store new table, then Add the epoch, then
// scan the reader records. Reader order: store the epoch into its
// record, then load the table. If the writer's scan observes a record
// as zero, the reader's record store is later than the scan in the
// total order, so its table load is later than the table store and
// sees the new snapshot; if the scan observes an epoch >= the retire
// epoch, the reader loaded the global counter after the bump, which is
// after the swap. Either way the retired snapshot is unreachable from
// that reader. A record observed at an older epoch blocks reclamation
// (conservatively — the pin may predate the swap), which is the only
// case that defers a free.
//
// Freed objects are POISONED, not merely dropped: the retirement
// callbacks write nil over exactly the fields dispatch reads (the
// table's slots, an installed filter's compiled program). The writes
// are deliberately plain, so if the grace period is ever wrong the
// race detector — which the full test suite runs under — flags the
// poison write racing the dispatch read instead of the bug surfacing
// as a once-a-month wrong verdict.
package kernel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed cache-line size for padding out the shared
// slots concurrent dispatchers write (reader records, counter shards).
// 64 bytes covers amd64 and most arm64 parts; on 128-byte-line hosts
// two slots share a line, which costs throughput, never correctness.
const cacheLine = 64

// epochRecord is one reader's pin slot. Zero means quiescent; nonzero
// is the global epoch the reader observed when it pinned. Records are
// claimed by CAS, so any goroutine — a pooled dispatch environment or
// a metrics scrape — can pin without registration. Padded so two
// concurrently pinning readers never share a cache line.
type epochRecord struct {
	e atomic.Uint64
	_ [cacheLine - 8]byte
}

// unpin marks the record quiescent and releases the claim.
func (r *epochRecord) unpin() { r.e.Store(0) }

// retiredItem is one object awaiting its grace period: free runs once
// no reader can still hold a snapshot that references the object.
type retiredItem struct {
	epoch uint64
	free  func()
}

// epochs is the reclamation domain: a global epoch counter, a
// grow-only set of reader records, and the retired list. The mutex
// serializes writers (retire, reclaim, record growth); readers only
// CAS records and never take it, except to grow the record set when
// every record is simultaneously claimed.
type epochs struct {
	global atomic.Uint64
	recs   atomic.Pointer[[]*epochRecord]

	mu      sync.Mutex
	retired []retiredItem
}

// initialEpochRecords sizes the starting record set; pin grows it
// (doubling) in the rare case more goroutines dispatch simultaneously
// than there are records.
const initialEpochRecords = 16

func newEpochs() *epochs {
	e := &epochs{}
	e.global.Store(1) // epoch 0 is reserved for "quiescent"
	recs := make([]*epochRecord, initialEpochRecords)
	for i := range recs {
		recs[i] = new(epochRecord)
	}
	e.recs.Store(&recs)
	return e
}

// pin claims a reader record and advertises the current global epoch
// in it. hint spreads concurrent readers across the record set so the
// first probe usually succeeds; any hint value is valid. The caller
// must unpin the returned record when done with the snapshot.
func (e *epochs) pin(hint int) *epochRecord {
	for {
		recs := *e.recs.Load()
		n := len(recs)
		for i := 0; i < n; i++ {
			r := recs[(hint+i)%n]
			if r.e.Load() == 0 && r.e.CompareAndSwap(0, e.global.Load()) {
				return r
			}
		}
		e.grow(n)
	}
}

// grow doubles the record set if it still has the observed size (a
// concurrent grower may have beaten us, in which case pin just
// rescans). Records are never removed: a stale slice held by a
// concurrent pin scan stays a valid prefix of the new one.
func (e *epochs) grow(seen int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.recs.Load()
	if len(cur) != seen {
		return
	}
	next := make([]*epochRecord, 2*len(cur))
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new(epochRecord)
	}
	e.recs.Store(&next)
}

// retire queues free callbacks for objects a writer just unpublished,
// tagged with a freshly bumped epoch, then attempts reclamation. The
// swap that unpublished the objects must happen before this call.
func (e *epochs) retire(frees ...func()) {
	if len(frees) == 0 {
		return
	}
	e.mu.Lock()
	ep := e.global.Add(1)
	for _, fn := range frees {
		e.retired = append(e.retired, retiredItem{epoch: ep, free: fn})
	}
	e.mu.Unlock()
	e.reclaim()
}

// reclaim frees every retired item whose grace period has elapsed: all
// reader records are quiescent or pinned at an epoch >= the item's.
func (e *epochs) reclaim() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.retired) == 0 {
		return
	}
	// Oldest pinned epoch; MaxUint64 when every record is quiescent.
	oldest := uint64(math.MaxUint64)
	for _, r := range *e.recs.Load() {
		if v := r.e.Load(); v != 0 && v < oldest {
			oldest = v
		}
	}
	kept := e.retired[:0]
	for _, it := range e.retired {
		if it.epoch <= oldest {
			it.free()
		} else {
			kept = append(kept, it)
		}
	}
	// Drop freed closures from the tail so they are collectible.
	tail := e.retired[len(kept):]
	for i := range tail {
		tail[i] = retiredItem{}
	}
	e.retired = kept
}

// drain blocks until every retired object has been freed, yielding to
// let in-flight readers unpin. Writers keep retiring concurrently, so
// under sustained churn this waits for a momentarily empty list — the
// callers (tests, operators reconciling exact counters) quiesce their
// own load first.
func (e *epochs) drain() {
	for {
		e.reclaim()
		e.mu.Lock()
		n := len(e.retired)
		e.mu.Unlock()
		if n == 0 {
			return
		}
		runtime.Gosched()
	}
}
