package kernel

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// certAll certifies the four paper filters once per test binary run
// (certification is producer-side and pure; sharing it keeps the test
// suite fast without coupling test cases).
func certAll(t testing.TB) map[filters.Filter][]byte {
	t.Helper()
	pol := policy.PacketFilter()
	out := map[filters.Filter][]byte{}
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[f] = cert.Binary
	}
	return out
}

// TestSerialVsBatchDifferential is the differential harness: for every
// paper filter (plus a garbage blob and a cross-policy binary), the
// serial InstallFilter path and the concurrent InstallFilterBatch path
// must make identical accept/reject decisions, produce identical
// Validations/Rejections accounting, and dispatch identically — and a
// second install of the same binaries must be pure cache hits with
// unchanged extension behavior.
func TestSerialVsBatchDifferential(t *testing.T) {
	bins := certAll(t)
	crossPolicy, err := pcc.Certify(`
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
L1:     RET
	`, pcc.ResourceAccessPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []InstallRequest
	for _, f := range filters.All {
		reqs = append(reqs, InstallRequest{fmt.Sprintf("proc-%d", f), bins[f]})
	}
	reqs = append(reqs,
		InstallRequest{"garbage", []byte("not a pcc binary")},
		InstallRequest{"cross", crossPolicy.Binary},
	)

	serial := New()
	var serialErrs []error
	for _, r := range reqs {
		serialErrs = append(serialErrs, serial.InstallFilter(r.Owner, r.Binary))
	}
	batch := New()
	batchErrs := batch.InstallFilterBatch(reqs)

	for i := range reqs {
		if (serialErrs[i] == nil) != (batchErrs[i] == nil) {
			t.Fatalf("request %q: serial err=%v, batch err=%v",
				reqs[i].Owner, serialErrs[i], batchErrs[i])
		}
	}
	ss, bs := serial.Stats(), batch.Stats()
	if ss.Validations != bs.Validations || ss.Rejections != bs.Rejections {
		t.Fatalf("accounting diverged: serial %d/%d, batch %d/%d",
			ss.Validations, ss.Rejections, bs.Validations, bs.Rejections)
	}
	if got, want := fmt.Sprint(batch.Owners()), fmt.Sprint(serial.Owners()); got != want {
		t.Fatalf("owners diverged: %s vs %s", got, want)
	}

	pkts := pktgen.Generate(500, pktgen.Config{Seed: 7})
	for _, p := range pkts {
		a1, err1 := serial.DeliverPacket(p)
		a2, err2 := batch.DeliverPacket(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(a1) != fmt.Sprint(a2) {
			t.Fatalf("dispatch diverged: %v vs %v", a1, a2)
		}
		for _, f := range filters.All {
			want := filters.Reference(f, p.Data)
			got := false
			for _, o := range a2 {
				if o == fmt.Sprintf("proc-%d", f) {
					got = true
				}
			}
			if got != want {
				t.Fatalf("%v: accept=%v, reference=%v", f, got, want)
			}
		}
	}
	if got, want := fmt.Sprint(batch.Accepts()), fmt.Sprint(serial.Accepts()); got != want {
		t.Fatalf("accepts diverged: %s vs %s", got, want)
	}

	// Re-installing the same binaries must be pure cache hits...
	preHits := batch.Stats().CacheHits
	for _, errs := range [][]error{batch.InstallFilterBatch(reqs[:4])} {
		for i, err := range errs {
			if err != nil {
				t.Fatalf("warm re-install %d failed: %v", i, err)
			}
		}
	}
	if got := batch.Stats().CacheHits - preHits; got != 4 {
		t.Fatalf("warm batch produced %d cache hits, want 4", got)
	}
	// ...with identical extension behavior.
	for _, p := range pkts[:100] {
		a1, _ := serial.DeliverPacket(p)
		a2, err := batch.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a1) != fmt.Sprint(a2) {
			t.Fatalf("post-warm dispatch diverged: %v vs %v", a1, a2)
		}
	}
}

// TestCacheNotPoisoned: tampered proofs, truncated blobs, and
// rejected binaries must never enter the cache — each re-presentation
// re-validates and re-fails — and a cached entry must never be
// returned for a different policy.
func TestCacheNotPoisoned(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter1, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := New()

	tampered := bytes.Clone(cert.Binary)
	tampered[cert.Layout.ProofOff+2] ^= 0x55
	truncated := bytes.Clone(cert.Binary[:len(cert.Binary)/2])

	for round := 0; round < 2; round++ {
		if err := k.InstallFilter("evil", tampered); err == nil {
			t.Fatalf("round %d: tampered proof installed", round)
		}
		if err := k.InstallFilter("evil", truncated); err == nil {
			t.Fatalf("round %d: truncated binary installed", round)
		}
	}
	st := k.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("rejected binaries produced %d cache hits — cache poisoned", st.CacheHits)
	}
	if st.Rejections != 4 || k.cache.len() != 0 {
		t.Fatalf("rejections=%d cacheEntries=%d, want 4 and 0", st.Rejections, k.cache.len())
	}

	// The genuine binary validates (miss) then hits.
	if err := k.InstallFilter("good", cert.Binary); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("good", cert.Binary); err != nil {
		t.Fatal(err)
	}
	if st := k.Stats(); st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}

	// A cached packet-filter entry is invisible under another policy:
	// the same bytes presented as a resource handler must be rejected,
	// without touching the cached entry.
	if err := k.InstallHandler(9, cert.Binary); err == nil {
		t.Fatal("filter binary accepted as a resource handler")
	}
	if st := k.Stats(); st.CacheHits != 1 {
		t.Fatalf("cross-policy lookup hit the cache: %d hits", st.CacheHits)
	}
}

// TestValidationKeySeparation pins the cache-key contract: any change
// to the binary or to the policy's semantic content (even under the
// same name) changes the key.
func TestValidationKeySeparation(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter1, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := pcc.ValidationKey(cert.Binary, pol)

	tampered := bytes.Clone(cert.Binary)
	tampered[len(tampered)-1] ^= 1
	if pcc.ValidationKey(tampered, pol) == base {
		t.Fatal("tampered binary has the same validation key")
	}

	weaker := policy.PacketFilter()
	weaker.Post = pol.Pre // same name, different contract
	if pcc.ValidationKey(cert.Binary, weaker) == base {
		t.Fatal("semantically different policy has the same validation key")
	}
	if pcc.ValidationKey(cert.Binary, policy.PacketFilter()) != base {
		t.Fatal("validation key is not deterministic")
	}
	if pcc.ValidationKey(cert.Binary, policy.ResourceAccess()) == base {
		t.Fatal("distinct policies share a validation key")
	}
}

// TestCacheEviction: the LRU bound holds and evicted entries simply
// re-validate.
func TestCacheEviction(t *testing.T) {
	bins := certAll(t)
	k := NewWithCacheSize(2)
	for _, f := range filters.All {
		if err := k.InstallFilter(f.String(), bins[f]); err != nil {
			t.Fatal(err)
		}
	}
	if n := k.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	st := k.Stats()
	if st.CacheEvictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.CacheEvictions)
	}
	// The most recent two hit; an evicted one re-validates as a miss.
	preMisses := st.CacheMisses
	if err := k.InstallFilter("again", bins[filters.Filter4]); err != nil {
		t.Fatal(err)
	}
	if st := k.Stats(); st.CacheHits == 0 {
		t.Fatal("recently used entry missed")
	}
	if err := k.InstallFilter("cold", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if st := k.Stats(); st.CacheMisses != preMisses+1 {
		t.Fatalf("evicted entry did not re-validate: misses %d -> %d",
			preMisses, st.CacheMisses)
	}
}

// TestWarmInstallSpeedup is the acceptance gate: a warm-cache
// re-install of an already-verified filter must be at least 10x
// faster than its cold validation. (In practice the gap is three
// orders of magnitude — a SHA-256 and a map lookup versus VC
// generation plus LF proof checking.)
func TestWarmInstallSpeedup(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter3, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := New()
	start := time.Now()
	if err := k.InstallFilter("cold", cert.Binary); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	warm := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start = time.Now()
		if err := k.InstallFilter("warm", cert.Binary); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	if st := k.Stats(); st.CacheHits != 5 {
		t.Fatalf("cache hits = %d, want 5", st.CacheHits)
	}
	if cold < 10*warm {
		t.Fatalf("warm install is only %.1fx faster than cold (%v vs %v), want >= 10x",
			float64(cold)/float64(warm), cold, warm)
	}
	t.Logf("cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}

// TestValidateAsync: the async install path reports the same verdicts
// as the serial one.
func TestValidateAsync(t *testing.T) {
	bins := certAll(t)
	k := New()
	okCh := k.ValidateAsync("a", bins[filters.Filter1])
	badCh := k.ValidateAsync("b", []byte("garbage"))
	if err := <-okCh; err != nil {
		t.Fatal(err)
	}
	if err := <-badCh; err == nil {
		t.Fatal("garbage installed asynchronously")
	}
	if got := k.Owners(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("owners = %v", got)
	}
}

// TestBatchDuplicateOwners: later requests for the same owner win,
// matching serial semantics.
func TestBatchDuplicateOwners(t *testing.T) {
	bins := certAll(t)
	k := New()
	errs := k.InstallFilterBatch([]InstallRequest{
		{"dup", bins[filters.Filter1]},
		{"dup", bins[filters.Filter2]},
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Filter 2 rejects a non-128.2.42 IP packet that Filter 1 accepts.
	pkt := pktgen.Packet{Data: make([]byte, 64)}
	pkt.Data[12], pkt.Data[13] = 0x08, 0x00
	accepted, err := k.DeliverPacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(accepted) != 0 {
		t.Fatalf("accepted=%v: first request won, want last", accepted)
	}
}

// TestNegotiatedCacheAccounting covers the install path with a
// negotiated policy present: exactly one cache miss is recorded per
// install attempt (not one per candidate policy probed), a warm
// re-install that hits on the negotiated candidate records one hit and
// no extra misses, and the cached negotiated-policy entry is invisible
// to the resource-handler path — a producer cannot launder a filter
// binary into a handler through the shared cache.
func TestNegotiatedCacheAccounting(t *testing.T) {
	k := New()
	weak := policy.PacketFilter()
	weak.Name = "producer/v1"
	if err := k.NegotiateFilterPolicy(weak); err != nil {
		t.Fatal(err)
	}
	cert, err := pcc.Certify(filters.SrcFilter1, weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("p", cert.Binary); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("cold install with 2 candidate policies: hits=%d misses=%d, want 0/1",
			st.CacheHits, st.CacheMisses)
	}
	if err := k.InstallFilter("q", cert.Binary); err != nil {
		t.Fatal(err)
	}
	st = k.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("warm install on negotiated candidate: hits=%d misses=%d, want 1/1",
			st.CacheHits, st.CacheMisses)
	}
	// The same bytes presented as a resource handler must re-validate
	// (its own single miss) and be rejected without touching the cache.
	if err := k.InstallHandler(7, cert.Binary); err == nil {
		t.Fatal("negotiated filter binary accepted as a resource handler")
	}
	st = k.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("cross-policy handler attempt: hits=%d misses=%d, want 1/2",
			st.CacheHits, st.CacheMisses)
	}
}

// TestWCETComputedAtValidation: the static cost bound is derived in
// the lock-free validation stage and memoized on the slot, so the
// commit section under the write lock only compares it to the budget —
// WCET analysis never stalls dispatch.
func TestWCETComputedAtValidation(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcFilter1, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := New() // no budget configured, yet the bound is precomputed
	slot, _, verr := k.validateFilter(context.Background(), "fits", cert.Binary, 0)
	if verr != nil {
		t.Fatal(verr)
	}
	if slot.wcetErr != nil || slot.wcet <= 0 {
		t.Fatalf("wcet not precomputed at validation: wcet=%d err=%v", slot.wcet, slot.wcetErr)
	}
	k.SetCycleBudget(CycleBudget(slot.wcet))
	if err := k.commitFilter("fits", cert.Binary, slot, nil, nil, BackendInterp, 0, true); err != nil {
		t.Fatalf("filter at exactly the budget rejected: %v", err)
	}
	k.SetCycleBudget(CycleBudget(slot.wcet - 1))
	if err := k.commitFilter("over", cert.Binary, slot, nil, nil, BackendInterp, 0, true); err == nil {
		t.Fatal("over-budget filter committed")
	}
}
