// Durability and verified recovery. The kernel can attach an
// internal/store write-ahead journal (SetStore): once attached, every
// install, uninstall, and backend retrofit is journaled — fsynced —
// inside the commit section before it becomes visible, so an acked
// operation survives a crash at any instant.
//
// Recovery (Recover) inverts the arrow, and this is where the paper's
// thesis bites: the disk is just another untrusted code producer. The
// journal's checksums classify corruption — a torn tail, a flipped
// length word — but they never vouch for content; a record that frames
// perfectly may still carry a bit-rotted (or maliciously rewritten)
// proof. So recovery re-runs every replayed binary through the full
// validation pipeline — parse, VC generation, LF proof check, WCET —
// exactly as if a hostile process had just submitted it. A record that
// no longer proves safe is skipped with a typed *RecoveryError,
// audited, flight-recorded, and counted under
// pcc_rejects_total{reason="recovery"}; the rest of the set restores.
// The kernel that finishes Recover holds only extensions whose safety
// proofs checked NOW, not at some point in the past.
package kernel

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// retrofitBackend is the owner key under which backend retrofits are
// journaled (KindRetrofit records are keyed by setting name, not by a
// producer).
const retrofitBackend = "backend"

// StoreError reports a durability-store failure during a journaled
// kernel operation. On the install path it surfaces as a rejection
// with reason "store": the filter was valid, but the kernel refused to
// ack an install the disk does not hold.
type StoreError struct {
	Op  string // "append", "close", ...
	Err error
}

// Error implements the error interface.
func (e *StoreError) Error() string { return fmt.Sprintf("kernel: store %s failed: %v", e.Op, e.Err) }

// Unwrap exposes the underlying store error.
func (e *StoreError) Unwrap() error { return e.Err }

// RecoveryError reports a journaled record that failed re-validation
// during Recover: the frame was intact (checksummed), but the binary
// inside no longer proves safe against the published policy. It wraps
// the validation verdict, so errors.As still reaches the typed
// pcc/lf errors underneath and the audit record carries the failing
// LF subterm.
type RecoveryError struct {
	Seq uint64
	Err error
}

// Error implements the error interface.
func (e *RecoveryError) Error() string {
	return fmt.Sprintf("kernel: journal record seq=%d failed re-validation: %v", e.Seq, e.Err)
}

// Unwrap exposes the validation verdict.
func (e *RecoveryError) Unwrap() error { return e.Err }

// SetStore attaches a durability store to the kernel (nil detaches).
// From the attach on, installs ack only after their journal record is
// on disk. Attaching does NOT replay the store — use Recover for a
// boot-time restore, which attaches the store itself after replaying
// it. The caller keeps ownership of the store's lifetime (Close).
func (k *Kernel) SetStore(s *store.Store) {
	old := "detached"
	if k.wal.Load() != nil {
		old = "attached"
	}
	k.wal.Store(s)
	nv := "detached"
	if s != nil {
		nv = "attached:" + s.Dir()
	}
	k.configChange("store", old, nv)
}

// Store returns the attached durability store, or nil.
func (k *Kernel) Store() *store.Store { return k.wal.Load() }

// RecoverySkip is one journal record Recover could not restore.
type RecoverySkip struct {
	Seq   uint64 // 0 when the frame was too corrupt to carry a sequence
	Owner string // "" when the frame did not decode
	Err   error
}

// RecoveryReport summarizes one Recover run.
type RecoveryReport struct {
	// Restored counts filters re-validated and re-installed.
	Restored int
	// Skipped lists every record that did not restore: corrupt frames
	// (from the replay layer) and intact frames whose binaries failed
	// re-validation (typed *RecoveryError inside).
	Skipped []RecoverySkip
	// Stale counts records superseded by the snapshot (evidence of a
	// crash between compaction's rename and the journal truncate —
	// harmless, the snapshot wins).
	Stale int
	// TornTail reports whether the journal ended mid-record (a crash
	// during an append; everything before the tear restored normally).
	TornTail bool
	// RecordNanos holds per-record restore latencies (validation +
	// commit) in replay order, the raw series behind the recovery
	// benchmark's p99.
	RecordNanos []int64
	// Duration is the wall-clock cost of the whole Recover call.
	Duration time.Duration
}

// Recover replays the store into the kernel and then attaches it. The
// journal is read through the checksummed replay layer (corrupt and
// out-of-order frames are skipped, a torn tail truncates the replay),
// folded to the live set — last install per owner wins, uninstalls
// erase, the last backend retrofit is re-applied first — and every
// surviving binary is re-validated through the full PCC pipeline
// before it is re-installed. No journal writes happen during replay
// (the records being replayed are already on disk); the store attaches
// for write-ahead duty only once replay finishes, so Recover composes
// with an empty directory as "cold boot".
//
// The skip policy is deliberate: recovery restores what still proves
// safe and drops the rest, rather than refusing to boot. A kernel that
// halts on one rotten record is a denial-of-service amplifier; a
// kernel that silently accepts it is unsound. Every skip is audited,
// flight-recorded (recovery_skip), and counted, so a partial restore
// is loud. The error return is reserved for environmental failure
// (unreadable journal, canceled context) — individual record verdicts
// never fail the call.
func (k *Kernel) Recover(ctx context.Context, s *store.Store) (*RecoveryReport, error) {
	start := time.Now()
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	span := tel.span(telemetry.StageRecover, s.Dir(), eid)
	rep := &RecoveryReport{}

	recs, rr, err := s.Replay()
	if err != nil {
		err = fmt.Errorf("kernel: recovery replay: %w", err)
		span.End(err)
		return nil, err
	}
	rep.Stale = rr.Stale
	rep.TornTail = rr.TornTail != nil
	aud := k.audit.Load()
	// Framing-level skips: the record never decoded, so there is no
	// binary to judge and no install attempt to account — these are
	// audited and flight-recorded under the recovery EventID but do not
	// touch the Validations/Rejections counters.
	for _, serr := range rr.Skipped {
		tel.reject("recovery")
		aud.recoverySkip(0, "", serr, eid)
		k.flight(telemetry.FlightRecoverySkip, "", serr.Error(), eid)
		rep.Skipped = append(rep.Skipped, RecoverySkip{Err: serr})
	}

	// Fold to the live set: last install per owner wins, uninstalls
	// erase, the last backend retrofit is what the kernel was running.
	live := map[string]store.Record{}
	var backendRec *store.Record
	for i := range recs {
		r := recs[i]
		switch r.Kind {
		case store.KindInstall:
			live[r.Owner] = r
		case store.KindUninstall:
			delete(live, r.Owner)
		case store.KindRetrofit:
			if r.Owner == retrofitBackend {
				backendRec = &recs[i]
			}
		}
	}
	if backendRec != nil {
		b, perr := ParseBackend(string(backendRec.Binary))
		if perr == nil {
			perr = k.SetBackend(b)
		}
		if perr != nil {
			serr := &RecoveryError{Seq: backendRec.Seq, Err: perr}
			tel.reject("recovery")
			aud.recoverySkip(backendRec.Seq, retrofitBackend, serr, eid)
			k.flight(telemetry.FlightRecoverySkip, retrofitBackend, serr.Error(), eid)
			rep.Skipped = append(rep.Skipped, RecoverySkip{Seq: backendRec.Seq, Owner: retrofitBackend, Err: serr})
		}
	}

	ordered := make([]store.Record, 0, len(live))
	for _, r := range live {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })

	be := k.Backend()
	for _, r := range ordered {
		if cerr := ctx.Err(); cerr != nil {
			span.End(cerr)
			return rep, fmt.Errorf("kernel: recovery aborted: %w", cerr)
		}
		// Each record's restore is its own install attempt with its own
		// EventID: the validate span tree, the audit install record, and
		// any recovery_skip flight event all join on it.
		reid := k.nextEvent(tel)
		t0 := time.Now()
		slot, va, verr := k.validateFilter(ctx, r.Owner, r.Binary, reid)
		if verr != nil {
			verr = &RecoveryError{Seq: r.Seq, Err: verr}
		}
		ierr := k.commitFilter(r.Owner, r.Binary, slot, va, verr, be, reid, false)
		rep.RecordNanos = append(rep.RecordNanos, time.Since(t0).Nanoseconds())
		if ierr != nil {
			aud.recoverySkip(r.Seq, r.Owner, ierr, reid)
			k.flight(telemetry.FlightRecoverySkip, r.Owner, ierr.Error(), reid)
			rep.Skipped = append(rep.Skipped, RecoverySkip{Seq: r.Seq, Owner: r.Owner, Err: ierr})
			continue
		}
		rep.Restored++
	}

	// Only now does the store go live for write-ahead duty: replayed
	// records were already durable, and attaching earlier would have
	// re-journaled every restore.
	k.wal.Store(s)
	rep.Duration = time.Since(start)
	aud.recovered(s.Dir(), rep.Restored, len(rep.Skipped), rep.Stale, rep.TornTail, eid)
	span.End(nil)
	return rep, nil
}
