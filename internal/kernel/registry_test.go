package kernel

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/filters"
	"repro/internal/pktgen"
)

// TestRegistryTenantIsolation is the exact per-tenant reconciliation
// check: two tenants with different filter sets and different traffic
// must account for exactly their own packets, accepts, and telemetry —
// nothing leaks across the boundary in either direction.
func TestRegistryTenantIsolation(t *testing.T) {
	reg := NewRegistry()
	alpha, err := reg.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := reg.Create("beta")
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha.Kernel.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}

	install := func(k *Kernel, owner string, f filters.Filter) {
		t.Helper()
		if err := k.InstallFilter(owner, certFilter(t, k, f)); err != nil {
			t.Fatal(err)
		}
	}
	install(alpha.Kernel, "a-ip", filters.Filter1)
	install(alpha.Kernel, "a-web", filters.Filter4)
	install(beta.Kernel, "b-net", filters.Filter2)

	const nAlpha, nBeta = 500, 300
	pktsA := pktgen.Generate(nAlpha, pktgen.Config{Seed: 1})
	pktsB := pktgen.Generate(nBeta, pktgen.Config{Seed: 2})
	wantA := map[string]int{}
	for _, p := range pktsA {
		if _, err := alpha.Kernel.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
		if filters.Reference(filters.Filter1, p.Data) {
			wantA["a-ip"]++
		}
		if filters.Reference(filters.Filter4, p.Data) {
			wantA["a-web"]++
		}
	}
	wantB := 0
	for _, p := range pktsB {
		if _, err := beta.Kernel.DeliverPacket(p); err != nil {
			t.Fatal(err)
		}
		if filters.Reference(filters.Filter2, p.Data) {
			wantB++
		}
	}

	if got := alpha.Kernel.Stats().Packets; got != nAlpha {
		t.Errorf("alpha packets = %d, want %d", got, nAlpha)
	}
	if got := beta.Kernel.Stats().Packets; got != nBeta {
		t.Errorf("beta packets = %d, want %d", got, nBeta)
	}
	accA, accB := alpha.Kernel.Accepts(), beta.Kernel.Accepts()
	for owner, want := range wantA {
		if accA[owner] != want {
			t.Errorf("alpha accepts[%s] = %d, want %d", owner, accA[owner], want)
		}
	}
	if accB["b-net"] != wantB {
		t.Errorf("beta accepts[b-net] = %d, want %d", accB["b-net"], wantB)
	}
	for _, owner := range []string{"a-ip", "a-web"} {
		if _, leak := accB[owner]; leak {
			t.Errorf("alpha owner %s leaked into beta's accept counters", owner)
		}
	}
	if _, leak := accA["b-net"]; leak {
		t.Error("beta owner leaked into alpha's accept counters")
	}

	// The telemetry recorders are per-tenant too: each exposition page
	// carries exactly its own packet total and only its own owners.
	page := func(tn *Tenant) string {
		var buf bytes.Buffer
		if err := tn.Rec.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	pa, pb := page(alpha), page(beta)
	if !strings.Contains(pa, fmt.Sprintf("%s %d", MetricPackets, nAlpha)) {
		t.Errorf("alpha exposition missing %s %d", MetricPackets, nAlpha)
	}
	if !strings.Contains(pb, fmt.Sprintf("%s %d", MetricPackets, nBeta)) {
		t.Errorf("beta exposition missing %s %d", MetricPackets, nBeta)
	}
	if strings.Contains(pb, "a-ip") || strings.Contains(pa, "b-net") {
		t.Error("per-owner metric families leaked across tenants")
	}
}

// TestRegistryDirectory covers the directory surface: create, dup
// rejection, lookup, sorted listing, and removal.
func TestRegistryDirectory(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := reg.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Create("alpha"); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := reg.Create(""); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if got := fmt.Sprint(reg.Names()); got != "[alpha mid zeta]" {
		t.Fatalf("Names() = %s, want sorted [alpha mid zeta]", got)
	}
	ts := reg.Tenants()
	if len(ts) != 3 || ts[0].Name != "alpha" || ts[2].Name != "zeta" {
		t.Fatalf("Tenants() order wrong: %v", ts)
	}
	tn, ok := reg.Get("mid")
	if !ok || tn.Name != "mid" || tn.Kernel == nil || tn.Rec == nil || tn.Flight == nil {
		t.Fatalf("Get(mid) = %+v, %v", tn, ok)
	}
	if !reg.Remove("mid") {
		t.Fatal("Remove(mid) reported missing")
	}
	if reg.Remove("mid") {
		t.Fatal("second Remove(mid) reported present")
	}
	if _, ok := reg.Get("mid"); ok {
		t.Fatal("removed tenant still resolvable")
	}
}

// TestRegistryConcurrentTenants drives several tenants from concurrent
// goroutines — dispatch, installs, and directory churn all at once —
// and reconciles each tenant's packet totals exactly afterwards.
func TestRegistryConcurrentTenants(t *testing.T) {
	reg := NewRegistry()
	const tenants, rounds = 4, 50
	bins := certAll(t)
	raw := allIPPackets(16, 9)

	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn, err := reg.Create(fmt.Sprintf("tenant-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			if err := tn.Kernel.InstallFilter("f", bins[filters.Filter1]); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				if _, err := tn.Kernel.DeliverPackets(raw); err != nil {
					t.Error(err)
					return
				}
				// Directory reads while others create/dispatch.
				reg.Names()
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, tn := range reg.Tenants() {
		if got, want := tn.Kernel.Stats().Packets, rounds*len(raw); got != want {
			t.Errorf("%s: packets = %d, want %d", tn.Name, got, want)
		}
	}
}
