// Tests for the lock-free dispatch path: snapshot atomicity under
// install/uninstall/retrofit churn, epoch grace-period reclamation
// (including the poison-on-free tripwire), the zero-locks-on-dispatch
// guarantee via the runtime mutex profiler, and the aggregated-on-
// scrape Stats contract. The churn tests are meaningful mainly under
// -race: retired snapshots and filters are poisoned with plain writes
// after their grace period, so a reclamation bug shows up as a race
// report, not a flaky verdict.
package kernel

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/pktgen"
)

// allIPPackets generates a trace Filter 1 accepts in full (every frame
// IPv4), so a filter installed from it is an accept-all oracle: a
// batch that consulted it shows it on every row or on none.
func allIPPackets(n int, seed uint64) [][]byte {
	pkts := pktgen.Generate(n, pktgen.Config{Seed: seed, IPPerMille: 1000})
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}
	return raw
}

func retiredLen(k *Kernel) int {
	k.epochs.mu.Lock()
	defer k.epochs.mu.Unlock()
	return len(k.epochs.retired)
}

// TestTornSnapshotUnderChurn hammers compiled-backend batch dispatch
// against concurrent install/uninstall of an accept-all filter plus
// backend and profiling retrofits. Every batch must observe exactly
// one snapshot: the churned owner appears on every row of a batch or
// on none — a mixed batch means dispatch saw a half-committed table.
func TestTornSnapshotUnderChurn(t *testing.T) {
	bins := certAll(t)
	k := New()
	if err := k.InstallFilter("stable-2", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("stable-4", bins[filters.Filter4]); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	raw := allIPPackets(48, 11)

	stop := make(chan struct{})
	var churns atomic.Int64
	var churner sync.WaitGroup
	churner.Add(1)
	go func() {
		defer churner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := k.InstallFilter("churn", bins[filters.Filter1]); err != nil {
				t.Error(err)
				return
			}
			if i%7 == 0 {
				// Retrofits replace every installed filter copy-on-write:
				// more snapshots published, more objects retired.
				if err := k.SetBackend(BackendInterp); err != nil {
					t.Error(err)
					return
				}
				if err := k.SetBackend(BackendCompiled); err != nil {
					t.Error(err)
					return
				}
			}
			if i%11 == 0 {
				k.SetProfiling(true)
				k.SetProfiling(false)
			}
			k.UninstallFilter("churn")
			churns.Add(1)
		}
	}()

	const workers, rounds = 4, 250
	var torn atomic.Int64
	var disp sync.WaitGroup
	for w := 0; w < workers; w++ {
		disp.Add(1)
		go func() {
			defer disp.Done()
			for r := 0; r < rounds; r++ {
				rows, err := k.DeliverPackets(raw)
				if err != nil {
					t.Error(err)
					return
				}
				saw := 0
				for _, row := range rows {
					for _, o := range row {
						if o == "churn" {
							saw++
							break
						}
					}
				}
				if saw != 0 && saw != len(rows) {
					torn.Add(1)
					t.Errorf("torn snapshot: churned owner on %d of %d rows of one batch", saw, len(rows))
					return
				}
				// Single-packet dispatch rides the same snapshot path.
				if _, err := k.DeliverPacket(pktgen.Packet{Data: raw[r%len(raw)]}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	disp.Wait()
	close(stop)
	churner.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if churns.Load() == 0 {
		t.Fatal("churner never completed an install/uninstall cycle")
	}

	// Quiesced, every retired snapshot must have been reclaimed.
	k.Quiesce()
	if n := retiredLen(k); n != 0 {
		t.Fatalf("%d retired objects left after Quiesce", n)
	}
	// And the surviving table must still produce reference verdicts.
	rows, err := k.DeliverPackets(raw)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]filters.Filter{
		"stable-2": filters.Filter2,
		"stable-4": filters.Filter4,
		"churn":    filters.Filter1,
	}
	tb := k.table.Load()
	for pi, row := range rows {
		got := map[string]bool{}
		for _, o := range row {
			got[o] = true
		}
		for i := range tb.slots {
			o := tb.slots[i].owner
			if want := filters.Reference(ref[o], raw[pi]); got[o] != want {
				t.Fatalf("packet %d owner %s: accept=%v, reference %v", pi, o, got[o], want)
			}
		}
	}
}

// TestEpochGraceDefersPoison pins a reader epoch by hand and checks
// the reclamation contract directly: a retired snapshot stays intact
// (unpoisoned) while an older-epoch reader is pinned, and is poisoned
// promptly once the reader unpins.
func TestEpochGraceDefersPoison(t *testing.T) {
	bins := certAll(t)
	k := New()
	if err := k.InstallFilter("a", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	old := k.table.Load()
	removed := old.slots[old.index["a"]].f

	rec := k.epochs.pin(0) // a dispatch that loaded `old` and is still running
	k.UninstallFilter("a")
	if n := retiredLen(k); n == 0 {
		t.Fatal("uninstall retired nothing while a reader was pinned")
	}
	k.epochs.reclaim()
	if old.index == nil || old.slots[0].f == nil {
		t.Fatal("retired snapshot poisoned while a reader could still hold it")
	}
	if removed.ext == nil {
		t.Fatal("retired filter poisoned while a reader could still hold it")
	}

	rec.unpin()
	k.Quiesce()
	if n := retiredLen(k); n != 0 {
		t.Fatalf("%d retired objects left after the reader unpinned", n)
	}
	if old.index != nil || old.accepts != nil || old.slots[0].f != nil {
		t.Fatal("reclaimed snapshot not poisoned")
	}
	if removed.ext != nil || removed.compiled != nil {
		t.Fatal("reclaimed filter not poisoned")
	}
	// With no readers pinned, retirement reclaims inline.
	if err := k.InstallFilter("b", bins[filters.Filter2]); err != nil {
		t.Fatal(err)
	}
	if n := retiredLen(k); n != 0 {
		t.Fatalf("quiescent install left %d retired objects", n)
	}
}

// TestDispatchAcquiresNoLocks is the zero-locks gate: with the runtime
// mutex profiler at full rate and installs churning the control plane,
// the dispatch path must contribute no contention samples — there is
// no mutex on it to contend. A deliberately contended control mutex
// proves the profiler is recording.
func TestDispatchAcquiresNoLocks(t *testing.T) {
	oldRate := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(oldRate)

	// Positive control: one guaranteed contended unlock in this frame,
	// so an empty profile can't pass the gate vacuously.
	var m sync.Mutex
	m.Lock()
	released := make(chan struct{})
	go func() {
		m.Lock()
		m.Unlock()
		close(released)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Unlock()
	<-released

	bins := certAll(t)
	k := New()
	for _, f := range filters.All {
		if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), bins[f]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	raw := allIPPackets(32, 7)

	stop := make(chan struct{})
	var churner sync.WaitGroup
	for c := 0; c < 2; c++ {
		churner.Add(1)
		go func(c int) {
			defer churner.Done()
			owner := fmt.Sprintf("churn-%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := k.InstallFilter(owner, bins[filters.Filter1]); err != nil {
					t.Error(err)
					return
				}
				k.UninstallFilter(owner)
			}
		}(c)
	}
	var disp sync.WaitGroup
	for w := 0; w < 8; w++ {
		disp.Add(1)
		go func() {
			defer disp.Done()
			for r := 0; r < 150; r++ {
				if _, err := k.DeliverPackets(raw); err != nil {
					t.Error(err)
					return
				}
				if _, err := k.DeliverPacket(pktgen.Packet{Data: raw[0]}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	disp.Wait()
	close(stop)
	churner.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	if !strings.Contains(prof, "TestDispatchAcquiresNoLocks") {
		t.Fatal("mutex profiler recorded nothing — the positive control is missing, gate is vacuous")
	}
	for _, frame := range []string{"DeliverPacket", "DeliverPackets"} {
		if strings.Contains(prof, frame) {
			t.Errorf("mutex contention sample inside %s — dispatch path acquired a lock:\n%s", frame, prof)
		}
	}
}

// TestStatsAggregatedOnScrape pins the documented Stats/Accepts
// contract under table churn: concurrent scrapes observe monotonically
// non-decreasing counters while snapshots swap underneath, and once
// quiesced the totals reconcile exactly — no increment lost across any
// swap.
func TestStatsAggregatedOnScrape(t *testing.T) {
	bins := certAll(t)
	k := New()
	if err := k.InstallFilter("stable-1", bins[filters.Filter1]); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("stable-4", bins[filters.Filter4]); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	raw := allIPPackets(32, 5)

	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() { // table-swap pressure
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := k.InstallFilter("churn", bins[filters.Filter2]); err != nil {
				t.Error(err)
				return
			}
			k.UninstallFilter("churn")
		}
	}()
	bg.Add(1)
	go func() { // monotonicity scraper
		defer bg.Done()
		var lastPkts, lastAcc int
		var lastCyc int64
		for {
			st := k.Stats()
			if st.Packets < lastPkts {
				t.Errorf("Stats().Packets regressed: %d -> %d", lastPkts, st.Packets)
				return
			}
			if st.ExtensionCycles < lastCyc {
				t.Errorf("Stats().ExtensionCycles regressed: %d -> %d", lastCyc, st.ExtensionCycles)
				return
			}
			acc := k.Accepts()["stable-1"]
			if acc < lastAcc {
				t.Errorf("Accepts regressed: %d -> %d", lastAcc, acc)
				return
			}
			lastPkts, lastCyc, lastAcc = st.Packets, st.ExtensionCycles, acc
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	const workers, rounds = 4, 200
	var stable1 atomic.Int64 // accepts the dispatchers were told about
	var disp sync.WaitGroup
	for w := 0; w < workers; w++ {
		disp.Add(1)
		go func() {
			defer disp.Done()
			for r := 0; r < rounds; r++ {
				rows, err := k.DeliverPackets(raw)
				if err != nil {
					t.Error(err)
					return
				}
				var n int64
				for _, row := range rows {
					for _, o := range row {
						if o == "stable-1" {
							n++
						}
					}
				}
				stable1.Add(n)
			}
		}()
	}
	disp.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	k.Quiesce()
	st := k.Stats()
	wantPkts := workers * rounds * len(raw)
	if st.Packets != wantPkts {
		t.Fatalf("Stats().Packets = %d, want %d (increments lost across table swaps)", st.Packets, wantPkts)
	}
	if got := k.Accepts()["stable-1"]; int64(got) != stable1.Load() {
		t.Fatalf("Accepts[stable-1] = %d, verdicts delivered %d", got, stable1.Load())
	}
	// The accept-all filter accepted every packet of every batch.
	if stable1.Load() != int64(wantPkts) {
		t.Fatalf("accept-all filter accepted %d of %d packets", stable1.Load(), wantPkts)
	}
}

// BenchmarkDeliverPacketsParallel measures batch-dispatch throughput
// at 1/2/4/8 goroutines over one shared kernel — the microbenchmark
// behind the dispatch_scaling section of paperbench (internal/bench).
// On a multi-core host the lock-free snapshot path scales with
// goroutines; on a single-core host the figure of merit is that added
// goroutines cost nothing (no lock convoy to collapse into).
func BenchmarkDeliverPacketsParallel(b *testing.B) {
	bins := certAll(b)
	raw := allIPPackets(256, 3)
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			k := New()
			for _, f := range filters.All {
				if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), bins[f]); err != nil {
					b.Fatal(err)
				}
			}
			if err := k.SetBackend(BackendCompiled); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := k.DeliverPackets(raw); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(len(raw))/secs, "pkts/s")
			}
		})
	}
}
