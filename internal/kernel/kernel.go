// Package kernel simulates the code consumer of Figure 1 as a running
// system: a SPIN-style extensible kernel that publishes safety
// policies, validates and installs PCC binaries from untrusted
// processes, and dispatches events — network packets to installed
// filters, resource-table invocations to installed handlers — all with
// zero run-time checking of the extensions.
//
// It is the glue the paper's two services (§2 resource access, §3
// packet filtering) would live in, and exists so the examples and
// tests can exercise realistic install/dispatch/uninstall lifecycles,
// including the accounting (validation cost, per-extension cycles)
// that Figure 9 is about.
package kernel

import (
	"fmt"
	"sort"
	"sync"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// Stats aggregates kernel accounting.
type Stats struct {
	// Validations and Rejections count install attempts.
	Validations int
	Rejections  int
	// ValidationCycles converts validation wall-clock to modeled
	// cycles at the 175-MHz clock, so startup and per-packet costs are
	// in one currency (how Figure 9 plots them).
	ValidationMicros float64
	// Packets delivered and per-owner accepts.
	Packets int
	// ExtensionCycles is total simulated time spent inside extensions.
	ExtensionCycles int64
}

// Kernel is a simulated extensible kernel.
type Kernel struct {
	mu sync.Mutex

	filterPolicy   *policy.Policy
	resourcePolicy *policy.Policy

	filters    map[string]*pcc.Extension // owner -> installed packet filter
	accepts    map[string]int
	handlers   map[int]*pcc.Extension // pid -> resource-access handler
	tables     map[int]*machine.Region
	budget     CycleBudget
	negotiated map[string]*policy.Policy

	stats Stats
}

// New creates a kernel publishing the standard policies.
func New() *Kernel {
	return &Kernel{
		filterPolicy:   policy.PacketFilter(),
		resourcePolicy: policy.ResourceAccess(),
		filters:        map[string]*pcc.Extension{},
		accepts:        map[string]int{},
		handlers:       map[int]*pcc.Extension{},
		tables:         map[int]*machine.Region{},
	}
}

// FilterPolicy returns the published packet-filter policy (Figure 1:
// the consumer "defines and publicizes a safety policy").
func (k *Kernel) FilterPolicy() *policy.Policy { return k.filterPolicy }

// ResourcePolicy returns the published resource-access policy.
func (k *Kernel) ResourcePolicy() *policy.Policy { return k.resourcePolicy }

// CycleBudget is the per-packet worst-case cycle budget the kernel
// enforces at install time (the §2.1 "control over resource usage"
// policy dimension). Zero disables the check.
type CycleBudget int64

// SetCycleBudget configures the per-packet budget for subsequently
// installed filters.
func (k *Kernel) SetCycleBudget(b CycleBudget) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.budget = b
}

// NegotiateFilterPolicy implements the §4 protocol at the kernel
// boundary: a producer proposes a policy; the kernel accepts it —
// and from then on validates binaries naming it — only after proving
// that its own packet-filter guarantees cover the proposal.
func (k *Kernel) NegotiateFilterPolicy(proposed *policy.Policy) error {
	k.mu.Lock()
	base := k.filterPolicy
	k.mu.Unlock()
	if err := pcc.NegotiatePolicy(base, proposed); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.negotiated == nil {
		k.negotiated = map[string]*policy.Policy{}
	}
	k.negotiated[proposed.Name] = proposed
	return nil
}

// InstallFilter validates a PCC binary against the packet-filter
// policy and installs it for the owner. Invalid binaries — and, when a
// cycle budget is configured, binaries whose static worst-case cost
// exceeds it — are rejected and counted.
func (k *Kernel) InstallFilter(owner string, binary []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.stats.Validations++
	ext, stats, err := pcc.Validate(binary, k.filterPolicy)
	if err != nil {
		// Fall back to any negotiated policy the binary names.
		ext, stats, err = k.validateNegotiated(binary)
	}
	if err != nil {
		k.stats.Rejections++
		return fmt.Errorf("kernel: filter for %q rejected: %w", owner, err)
	}
	if k.budget > 0 {
		wcet, err := machine.DEC21064.MaxCost(ext.Prog)
		if err != nil {
			k.stats.Rejections++
			return fmt.Errorf("kernel: filter for %q has no static cost bound: %w", owner, err)
		}
		if wcet > int64(k.budget) {
			k.stats.Rejections++
			return fmt.Errorf("kernel: filter for %q exceeds the cycle budget: %d > %d",
				owner, wcet, k.budget)
		}
	}
	k.stats.ValidationMicros += float64(stats.Time.Microseconds())
	k.filters[owner] = ext
	return nil
}

// validateNegotiated tries the negotiated policies (k.mu held).
func (k *Kernel) validateNegotiated(binary []byte) (*pcc.Extension, *pcc.ValidationStats, error) {
	var lastErr error = fmt.Errorf("kernel: no negotiated policy matches")
	for _, pol := range k.negotiated {
		ext, stats, err := pcc.Validate(binary, pol)
		if err == nil {
			return ext, stats, nil
		}
		lastErr = err
	}
	return nil, nil, lastErr
}

// UninstallFilter removes an owner's filter.
func (k *Kernel) UninstallFilter(owner string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.filters, owner)
}

// Owners lists owners with installed filters, sorted.
func (k *Kernel) Owners() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.filters))
	for o := range k.filters {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// DeliverPacket runs every installed filter over the packet (with no
// run-time checks — they are validated) and returns the owners that
// accepted it.
func (k *Kernel) DeliverPacket(pkt pktgen.Packet) ([]string, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.stats.Packets++
	var accepted []string
	for owner, ext := range k.filters {
		state := k.packetState(pkt)
		res, err := machine.Interp(ext.Prog, state, machine.Unchecked, &machine.DEC21064, 1<<20)
		if err != nil {
			// A validated extension cannot fault when the kernel meets
			// the precondition; if it does, the kernel is broken.
			return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", owner, err)
		}
		k.stats.ExtensionCycles += res.Cycles
		if res.Ret != 0 {
			accepted = append(accepted, owner)
			k.accepts[owner]++
		}
	}
	sort.Strings(accepted)
	return accepted, nil
}

// packetState builds the precondition-satisfying machine state for one
// delivery. (A real kernel reuses buffers; allocation noise is not
// part of the modeled cycle costs.)
func (k *Kernel) packetState(pkt pktgen.Packet) *machine.State {
	mem := machine.NewMemory()
	pr := machine.NewRegion("packet", 0x10000, len(pkt.Data), false)
	pr.SetBytes(pkt.Data)
	mem.MustAddRegion(pr)
	mem.MustAddRegion(machine.NewRegion("scratch", 0x20000, policy.ScratchLen, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = 0x10000
	s.R[policy.RegLen] = uint64(len(pkt.Data))
	s.R[policy.RegScratch] = 0x20000
	return s
}

// Accepts returns the per-owner accept counters.
func (k *Kernel) Accepts() map[string]int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[string]int, len(k.accepts))
	for o, n := range k.accepts {
		out[o] = n
	}
	return out
}

// CreateTable creates the §2 {tag, data} entry for a process.
func (k *Kernel) CreateTable(pid int, tag, data uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	base := uint64(0x40000 + pid*16)
	r := machine.NewRegion(fmt.Sprintf("table-%d", pid), base, 16, true)
	r.SetWord(0, tag)
	r.SetWord(8, data)
	k.tables[pid] = r
}

// InstallHandler validates and installs a resource-access handler for
// a process.
func (k *Kernel) InstallHandler(pid int, binary []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.stats.Validations++
	ext, stats, err := pcc.Validate(binary, k.resourcePolicy)
	if err != nil {
		k.stats.Rejections++
		return fmt.Errorf("kernel: handler for pid %d rejected: %w", pid, err)
	}
	k.stats.ValidationMicros += float64(stats.Time.Microseconds())
	k.handlers[pid] = ext
	return nil
}

// InvokeHandler runs a process's installed handler on its own table
// entry, per the §2 calling convention (entry address in r0).
func (k *Kernel) InvokeHandler(pid int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ext, ok := k.handlers[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no handler", pid)
	}
	table, ok := k.tables[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no table entry", pid)
	}
	mem := machine.NewMemory()
	mem.MustAddRegion(table)
	s := &machine.State{Mem: mem}
	s.R[0] = table.Base
	res, err := machine.Interp(ext.Prog, s, machine.Unchecked, &machine.DEC21064, 10000)
	if err != nil {
		return fmt.Errorf("kernel: validated handler for pid %d faulted: %w", pid, err)
	}
	k.stats.ExtensionCycles += res.Cycles
	return nil
}

// Table returns a process's {tag, data} entry.
func (k *Kernel) Table(pid int) (tag, data uint64, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	r, found := k.tables[pid]
	if !found {
		return 0, 0, false
	}
	return r.Word(0), r.Word(8), true
}

// Stats returns a copy of the kernel accounting.
func (k *Kernel) Stats() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.stats
}
