// Package kernel simulates the code consumer of Figure 1 as a running
// system: a SPIN-style extensible kernel that publishes safety
// policies, validates and installs PCC binaries from untrusted
// processes, and dispatches events — network packets to installed
// filters, resource-table invocations to installed handlers — all with
// zero run-time checking of the extensions.
//
// It is the glue the paper's two services (§2 resource access, §3
// packet filtering) would live in, and exists so the examples and
// tests can exercise realistic install/dispatch/uninstall lifecycles,
// including the accounting (validation cost, per-extension cycles)
// that Figure 9 is about.
//
// Installation is a two-stage pipeline (pipeline.go): an expensive
// validation stage that runs lock-free (memoized by the proof cache,
// cache.go) and a short commit section under the kernel lock. Dispatch
// takes the lock in read mode, so packet delivery proceeds in parallel
// with other deliveries and is never blocked behind a proof check.
package kernel

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// Stats is an approximate, lock-free snapshot of the kernel
// accounting (see the Stats method for the exact contract): each field
// is read atomically, but the snapshot as a whole is not a consistent
// cut while installs or deliveries are in flight. For exact
// cross-counter invariants, quiesce the kernel first; for stage-level
// latency attribution, attach a telemetry.Recorder (SetRecorder)
// instead of polling Stats.
type Stats struct {
	// Validations and Rejections count install attempts.
	Validations int
	Rejections  int
	// ValidationMicros is wall-clock spent in actual proof checking
	// (cache hits contribute nothing — that is the point), so startup
	// and per-packet costs are in one currency (how Figure 9 plots
	// them).
	ValidationMicros float64
	// Packets delivered and per-owner accepts.
	Packets int
	// ExtensionCycles is total simulated time spent inside extensions.
	ExtensionCycles int64

	// Proof-cache accounting: a hit means an install skipped VC
	// generation and LF checking entirely.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
	// BatchInstalls counts InstallFilterBatch calls; QueueWaitMicros is
	// the cumulative time batch requests waited for a validator worker.
	BatchInstalls   int
	QueueWaitMicros float64
}

// counters is the lock-free backing store for Stats (cache counters
// live in the proofCache).
type counters struct {
	validations     atomic.Int64
	rejections      atomic.Int64
	validationNanos atomic.Int64
	packets         atomic.Int64
	extensionCycles atomic.Int64
	batchInstalls   atomic.Int64
	queueWaitNanos  atomic.Int64
}

// installed is one live packet filter. The accepts counter is shared
// with the kernel's persistent per-owner table so dispatch can bump it
// under the read lock. prof is the cycle-attribution accumulator,
// non-nil only once profiling has been enabled (profile.go).
type installed struct {
	ext     *pcc.Extension
	accepts *atomic.Int64
	prof    *filterProfile
}

// Kernel is a simulated extensible kernel.
type Kernel struct {
	// mu guards the installation tables below. Writers (install
	// commits, uninstalls, negotiation) hold it briefly; dispatch and
	// introspection take it in read mode. Validation itself never
	// holds it.
	mu sync.RWMutex

	filterPolicy   *policy.Policy
	resourcePolicy *policy.Policy
	// Cache keyers memoize the policy-side fingerprints, so keying a
	// binary costs one SHA-256 over its bytes.
	filterKeyer   *pcc.Keyer
	resourceKeyer *pcc.Keyer

	filters          map[string]*installed
	accepts          map[string]*atomic.Int64 // persists across uninstall
	handlers         map[int]*pcc.Extension   // pid -> resource-access handler
	tables           map[int]*machine.Region
	budget           CycleBudget
	negotiated       map[string]*policy.Policy
	negotiatedKeyers map[string]*pcc.Keyer

	cache *proofCache
	stats counters

	// tel is the optional telemetry sink (telemetry.go); nil means
	// every instrumentation point is a no-op costing one atomic load.
	tel atomic.Pointer[telem]
	// audit is the optional structured audit sink (audit.go).
	audit atomic.Pointer[auditor]
	// profiling selects the profiled dispatch path (profile.go).
	profiling atomic.Bool
	// Adversarial-hardening configuration (robust.go): validation
	// resource budgets, admission gate, and producer quarantine. All
	// nil/disabled by default.
	limits  atomic.Pointer[pcc.Limits]
	admit   atomic.Pointer[admitGate]
	quarCfg atomic.Pointer[QuarantineConfig]
	quarMu  sync.Mutex
	quar    map[string]*quarState
	// statePool recycles packet-delivery machine states so dispatch
	// does not allocate a fresh memory image per packet per filter.
	statePool sync.Pool
}

// New creates a kernel publishing the standard policies, with a proof
// cache of DefaultCacheSize entries.
func New() *Kernel { return NewWithCacheSize(DefaultCacheSize) }

// NewWithCacheSize creates a kernel whose proof cache holds up to size
// validated extensions; size <= 0 disables memoization (every install
// re-validates), which the latency benchmarks use to model an
// all-cold workload.
func NewWithCacheSize(size int) *Kernel {
	k := &Kernel{
		filterPolicy:   policy.PacketFilter(),
		resourcePolicy: policy.ResourceAccess(),
		filters:        map[string]*installed{},
		accepts:        map[string]*atomic.Int64{},
		handlers:       map[int]*pcc.Extension{},
		tables:         map[int]*machine.Region{},
		cache:          newProofCache(size),
	}
	k.filterKeyer = pcc.NewKeyer(k.filterPolicy)
	k.resourceKeyer = pcc.NewKeyer(k.resourcePolicy)
	k.statePool.New = func() any { return newPacketEnv() }
	return k
}

// FilterPolicy returns the published packet-filter policy (Figure 1:
// the consumer "defines and publicizes a safety policy").
func (k *Kernel) FilterPolicy() *policy.Policy { return k.filterPolicy }

// ResourcePolicy returns the published resource-access policy.
func (k *Kernel) ResourcePolicy() *policy.Policy { return k.resourcePolicy }

// CycleBudget is the per-packet worst-case cycle budget the kernel
// enforces at install time (the §2.1 "control over resource usage"
// policy dimension). Zero disables the check.
type CycleBudget int64

// SetCycleBudget configures the per-packet budget for subsequently
// installed filters.
func (k *Kernel) SetCycleBudget(b CycleBudget) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.budget = b
}

// NegotiateFilterPolicy implements the §4 protocol at the kernel
// boundary: a producer proposes a policy; the kernel accepts it —
// and from then on validates binaries naming it — only after proving
// that its own packet-filter guarantees cover the proposal.
func (k *Kernel) NegotiateFilterPolicy(proposed *policy.Policy) error {
	span := k.tel.Load().span(telemetry.StageNegotiate, proposed.Name)
	aud := k.audit.Load()
	k.mu.RLock()
	base := k.filterPolicy
	k.mu.RUnlock()
	if err := pcc.NegotiatePolicy(base, proposed); err != nil {
		aud.negotiate(proposed, err)
		span.End(err)
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.negotiated == nil {
		k.negotiated = map[string]*policy.Policy{}
		k.negotiatedKeyers = map[string]*pcc.Keyer{}
	}
	k.negotiated[proposed.Name] = proposed
	k.negotiatedKeyers[proposed.Name] = pcc.NewKeyer(proposed)
	aud.negotiate(proposed, nil)
	span.End(nil)
	return nil
}

// InstallFilter validates a PCC binary against the packet-filter
// policy and installs it for the owner. Invalid binaries — and, when a
// cycle budget is configured, binaries whose static worst-case cost
// exceeds it — are rejected and counted. Validation runs without the
// kernel lock (and is skipped entirely on a proof-cache hit); only the
// final commit of the validated extension is serialized.
func (k *Kernel) InstallFilter(owner string, binary []byte) error {
	return k.InstallFilterCtx(context.Background(), owner, binary)
}

// newCacheSlot derives everything an install commit will need from a
// freshly validated extension — today the static worst-case cost
// bound — so the commit section never does per-extension analysis
// under the kernel write lock. Slots are immutable once built. The
// WCET pass runs inside a recover fence: it analyzes untrusted code,
// and a panic there must reject the one binary, not crash the kernel.
func newCacheSlot(key cacheKey, ext *pcc.Extension) *cacheSlot {
	slot := &cacheSlot{key: key, ext: ext}
	if perr := pcc.Fence("wcet", func() error {
		slot.wcet, slot.wcetErr = machine.DEC21064.MaxCost(ext.Prog)
		return nil
	}); perr != nil {
		slot.wcetErr = perr
	}
	return slot
}

// validateFilter is the lock-free validation stage: proof-cache
// lookup, then full PCC validation against the published packet-filter
// policy with fallback to any negotiated policy the binary names. At
// most one cache hit or miss is recorded per install attempt, however
// many candidate policies are probed. With a recorder attached, the
// attempt is traced as a validate span with cacheprobe /
// parse / lfsig / vcgen / lfcheck / wcet children; with an audit log
// attached, the forensic context of the attempt rides along to the
// commit in the returned validationAudit (nil when auditing is off).
func (k *Kernel) validateFilter(ctx context.Context, owner string, binary []byte) (*cacheSlot, *validationAudit, error) {
	k.stats.validations.Add(1)
	tel := k.tel.Load()
	span := tel.span(telemetry.StageValidate, owner)
	va := k.audit.Load().newValidationAudit("filter", owner, binary)
	// An expired context or a live embargo rejects before any byte of
	// the binary is examined — in particular before the cache probe, so
	// a canceled install cannot be served (and committed) from a hit.
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("kernel: install aborted: %w", err)
		span.End(err)
		return nil, va, err
	}
	if qerr := k.quarantineCheck(owner); qerr != nil {
		span.End(qerr)
		return nil, va, qerr
	}
	type candidate struct {
		pol *policy.Policy
		key cacheKey
	}
	k.mu.RLock()
	cands := make([]candidate, 0, 1+len(k.negotiated))
	cands = append(cands, candidate{k.filterPolicy, k.filterKeyer.Key(binary)})
	for name, p := range k.negotiated {
		cands = append(cands, candidate{p, k.negotiatedKeyers[name].Key(binary)})
	}
	k.mu.RUnlock()
	va.setPolicy(cands[0].pol)

	probeStart := time.Now()
	for _, c := range cands {
		if slot := k.cache.lookup(c.key); slot != nil {
			k.cache.recordHit()
			va.setCacheHit()
			va.setPolicy(c.pol)
			tel.probe(span, probeStart, true)
			span.End(nil)
			return slot, va, nil
		}
	}
	k.cache.recordMiss()
	tel.probe(span, probeStart, false)

	lastErr := fmt.Errorf("kernel: no policy matches")
	for i, c := range cands {
		valStart := time.Now()
		ext, stats, err := pcc.ValidateCtx(ctx, binary, c.pol, k.limits.Load())
		if err != nil {
			if i == 0 {
				lastErr = err // the published policy's verdict leads
			}
			continue
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		tel.validationStages(span, owner, valStart, stats)
		va.setPolicy(c.pol)
		va.setStats(stats)
		wcetStart := time.Now()
		slot := newCacheSlot(c.key, ext)
		tel.wcet(span, owner, wcetStart, slot.wcetErr)
		slot, evicted := k.cache.put(slot)
		tel.evicted(evicted)
		k.audit.Load().evict(evicted)
		span.End(nil)
		return slot, va, nil
	}
	span.End(lastErr)
	return nil, va, lastErr
}

// commitFilter is the short serial section of an install: budget
// comparison (the WCET itself was computed lock-free at validation
// time) and table update. The final verdict — including budget
// rejections — is written to the audit log here, so every install
// attempt produces exactly one install record.
func (k *Kernel) commitFilter(owner string, slot *cacheSlot, va *validationAudit, verr error) error {
	tel := k.tel.Load()
	if verr != nil {
		k.stats.rejections.Add(1)
		reason := installRejectReason(verr)
		tel.outcome(false)
		tel.reject(reason)
		k.noteRejection(owner, reason)
		err := fmt.Errorf("kernel: filter for %q rejected: %w", owner, verr)
		k.audit.Load().install(va, slot, err)
		return err
	}
	span := tel.span(telemetry.StageCommit, owner)
	err := func() error {
		k.mu.Lock()
		defer k.mu.Unlock()
		if k.budget > 0 {
			if slot.wcetErr != nil {
				return fmt.Errorf("kernel: filter for %q has no static cost bound: %w", owner, slot.wcetErr)
			}
			if slot.wcet > int64(k.budget) {
				// A typed resource-limit error, so the rejection lands in
				// the "limit" reason bucket alongside the validation-time
				// budgets.
				return fmt.Errorf("kernel: filter for %q exceeds the cycle budget: %w", owner,
					&pcc.ResourceLimitError{Axis: "cycle_budget", Actual: slot.wcet, Max: int64(k.budget)})
			}
		}
		ctr := k.accepts[owner]
		if ctr == nil {
			ctr = new(atomic.Int64)
			k.accepts[owner] = ctr
		}
		ins := &installed{ext: slot.ext, accepts: ctr}
		if k.profiling.Load() {
			ins.prof = newFilterProfile(slot.ext.Prog)
		}
		k.filters[owner] = ins
		tel.setFilters(len(k.filters))
		return nil
	}()
	if err != nil {
		k.stats.rejections.Add(1)
		tel.reject(installRejectReason(err))
		k.noteRejection(owner, installRejectReason(err))
	} else {
		k.noteSuccess(owner)
	}
	tel.outcome(err == nil)
	k.audit.Load().install(va, slot, err)
	span.End(err)
	return err
}

// UninstallFilter removes an owner's filter.
func (k *Kernel) UninstallFilter(owner string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, had := k.filters[owner]; had {
		k.audit.Load().uninstall(owner)
	}
	delete(k.filters, owner)
	k.tel.Load().setFilters(len(k.filters))
}

// Owners lists owners with installed filters, sorted.
func (k *Kernel) Owners() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, 0, len(k.filters))
	for o := range k.filters {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// packetBase/scratchBase lay out the per-delivery address space; a
// pooled packet region may grow up to the gap between them
// (maxPooledPacket) without overlapping scratch.
const (
	packetBase      = 0x10000
	scratchBase     = 0x20000
	maxPooledPacket = scratchBase - packetBase
)

// packetEnv is a reusable delivery environment: one memory image
// (packet + scratch regions) and one machine state, recycled through
// the kernel's statePool so dispatch allocates nothing per packet.
type packetEnv struct {
	state   machine.State
	pkt     *machine.Region
	scratch *machine.Region
}

func newPacketEnv() *packetEnv {
	mem := machine.NewMemory()
	pkt := machine.NewRegion("packet", packetBase, 2048, false)
	scratch := machine.NewRegion("scratch", scratchBase, policy.ScratchLen, true)
	mem.MustAddRegion(pkt)
	mem.MustAddRegion(scratch)
	return &packetEnv{state: machine.State{Mem: mem}, pkt: pkt, scratch: scratch}
}

// reset re-establishes the packet-filter precondition between filters:
// zeroed registers and scratch (each filter must observe the same
// fresh state a dedicated allocation would have given it — scratch
// contents must not leak between filters), packet pointer/length in
// the convention registers. The packet region itself is read-only to
// the extension and is loaded once per delivery, not per filter.
func (e *packetEnv) reset(pktLen int) {
	for i := range e.state.R {
		e.state.R[i] = 0
	}
	e.state.PC = 0
	e.scratch.SetBytes(nil) // zero the whole scratch region
	e.state.R[policy.RegPacket] = packetBase
	e.state.R[policy.RegLen] = uint64(pktLen)
	e.state.R[policy.RegScratch] = scratchBase
}

// DeliverPacket runs every installed filter over the packet (with no
// run-time checks — they are validated) and returns the owners that
// accepted it. It holds the kernel lock only in read mode, so
// deliveries proceed concurrently with each other and wait at most for
// an install's short commit section — never for a validation. The
// delivery machine state comes from a sync.Pool: one packet copy per
// delivery, a register/scratch wipe per filter, no allocation.
func (k *Kernel) DeliverPacket(pkt pktgen.Packet) ([]string, error) {
	tel := k.tel.Load()
	span := tel.span(telemetry.StageDispatch, "")
	env := k.statePool.Get().(*packetEnv)
	defer k.statePool.Put(env)
	usePool := len(pkt.Data) <= maxPooledPacket
	if usePool {
		env.pkt.Resize(len(pkt.Data))
		env.pkt.SetBytes(pkt.Data)
	}
	profiling := k.profiling.Load()
	k.mu.RLock()
	defer k.mu.RUnlock()
	k.stats.packets.Add(1)
	tel.packet()
	var accepted []string
	for owner, f := range k.filters {
		var state *machine.State
		if usePool {
			env.reset(len(pkt.Data))
			state = &env.state
		} else {
			state = k.packetState(pkt) // oversized packet: fall back to a fresh image
		}
		var res machine.Result
		var err error
		if profiling && f.prof != nil {
			res, err = f.prof.run(state, 1<<20)
		} else {
			res, err = machine.Interp(f.ext.Prog, state, machine.Unchecked, &machine.DEC21064, 1<<20)
		}
		if err != nil {
			// A validated extension cannot fault when the kernel meets
			// the precondition; if it does, the kernel is broken.
			span.End(err)
			return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", owner, err)
		}
		k.stats.extensionCycles.Add(res.Cycles)
		ok := res.Ret != 0
		if ok {
			accepted = append(accepted, owner)
			f.accepts.Add(1)
		}
		tel.filterRun(owner, res.Cycles, ok)
	}
	sort.Strings(accepted)
	span.End(nil)
	return accepted, nil
}

// packetState builds a freshly allocated precondition-satisfying
// machine state for one delivery: the fallback for packets too large
// for the pooled layout, and the baseline the state-pool benchmark
// (BenchmarkDeliverPacketState) measures against.
func (k *Kernel) packetState(pkt pktgen.Packet) *machine.State {
	mem := machine.NewMemory()
	pr := machine.NewRegion("packet", packetBase, len(pkt.Data), false)
	pr.SetBytes(pkt.Data)
	mem.MustAddRegion(pr)
	mem.MustAddRegion(machine.NewRegion("scratch", scratchBase, policy.ScratchLen, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = packetBase
	s.R[policy.RegLen] = uint64(len(pkt.Data))
	s.R[policy.RegScratch] = scratchBase
	return s
}

// Accepts returns the per-owner accept counters.
func (k *Kernel) Accepts() map[string]int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make(map[string]int, len(k.accepts))
	for o, n := range k.accepts {
		out[o] = int(n.Load())
	}
	return out
}

// CreateTable creates the §2 {tag, data} entry for a process.
func (k *Kernel) CreateTable(pid int, tag, data uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	base := uint64(0x40000 + pid*16)
	r := machine.NewRegion(fmt.Sprintf("table-%d", pid), base, 16, true)
	r.SetWord(0, tag)
	r.SetWord(8, data)
	k.tables[pid] = r
}

// InstallHandler validates and installs a resource-access handler for
// a process. Like InstallFilter, validation runs lock-free, is
// memoized by the proof cache, and is traced when a recorder is
// attached.
func (k *Kernel) InstallHandler(pid int, binary []byte) error {
	k.stats.validations.Add(1)
	tel := k.tel.Load()
	var owner string
	if tel != nil || k.audit.Load() != nil {
		owner = fmt.Sprintf("pid-%d", pid)
	}
	span := tel.span(telemetry.StageValidate, owner)
	va := k.audit.Load().newValidationAudit("handler", owner, binary)
	va.setPolicy(k.resourcePolicy)
	key := k.resourceKeyer.Key(binary)
	probeStart := time.Now()
	slot := k.cache.lookup(key)
	if slot != nil {
		k.cache.recordHit()
		va.setCacheHit()
		tel.probe(span, probeStart, true)
	} else {
		k.cache.recordMiss()
		tel.probe(span, probeStart, false)
		valStart := time.Now()
		ext, stats, err := pcc.ValidateCtx(context.Background(), binary, k.resourcePolicy, k.limits.Load())
		if err != nil {
			k.stats.rejections.Add(1)
			tel.outcome(false)
			tel.reject(pcc.RejectReason(err))
			span.End(err)
			werr := fmt.Errorf("kernel: handler for pid %d rejected: %w", pid, err)
			k.audit.Load().install(va, nil, werr)
			return werr
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		tel.validationStages(span, owner, valStart, stats)
		va.setStats(stats)
		wcetStart := time.Now()
		fresh := newCacheSlot(key, ext)
		tel.wcet(span, owner, wcetStart, fresh.wcetErr)
		var evicted int64
		slot, evicted = k.cache.put(fresh)
		tel.evicted(evicted)
		k.audit.Load().evict(evicted)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.handlers[pid] = slot.ext
	tel.outcome(true)
	k.audit.Load().install(va, slot, nil)
	span.End(nil)
	return nil
}

// InvokeHandler runs a process's installed handler on its own table
// entry, per the §2 calling convention (entry address in r0). It holds
// the write lock: handlers mutate their table entry in place.
func (k *Kernel) InvokeHandler(pid int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ext, ok := k.handlers[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no handler", pid)
	}
	table, ok := k.tables[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no table entry", pid)
	}
	mem := machine.NewMemory()
	mem.MustAddRegion(table)
	s := &machine.State{Mem: mem}
	s.R[0] = table.Base
	res, err := machine.Interp(ext.Prog, s, machine.Unchecked, &machine.DEC21064, 10000)
	if err != nil {
		return fmt.Errorf("kernel: validated handler for pid %d faulted: %w", pid, err)
	}
	k.stats.extensionCycles.Add(res.Cycles)
	return nil
}

// Table returns a process's {tag, data} entry.
func (k *Kernel) Table(pid int) (tag, data uint64, ok bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	r, found := k.tables[pid]
	if !found {
		return 0, 0, false
	}
	return r.Word(0), r.Word(8), true
}

// Stats returns a snapshot of the kernel accounting. Each counter is
// read atomically, but the snapshot as a whole takes no global lock:
// while installs are in flight, counters that move together at rest
// may be momentarily inconsistent (e.g. a Validation counted whose
// hit, miss, or rejection is not yet recorded). Callers wanting exact
// cross-counter invariants must quiesce the kernel first, as the tests
// do; monitoring readers should treat the snapshot as approximate.
func (k *Kernel) Stats() Stats {
	hits, misses, evictions := k.cache.counters()
	return Stats{
		Validations:      int(k.stats.validations.Load()),
		Rejections:       int(k.stats.rejections.Load()),
		ValidationMicros: float64(k.stats.validationNanos.Load()) / float64(time.Microsecond),
		Packets:          int(k.stats.packets.Load()),
		ExtensionCycles:  k.stats.extensionCycles.Load(),
		CacheHits:        int(hits),
		CacheMisses:      int(misses),
		CacheEvictions:   int(evictions),
		BatchInstalls:    int(k.stats.batchInstalls.Load()),
		QueueWaitMicros:  float64(k.stats.queueWaitNanos.Load()) / float64(time.Microsecond),
	}
}
