// Package kernel simulates the code consumer of Figure 1 as a running
// system: a SPIN-style extensible kernel that publishes safety
// policies, validates and installs PCC binaries from untrusted
// processes, and dispatches events — network packets to installed
// filters, resource-table invocations to installed handlers — all with
// zero run-time checking of the extensions.
//
// It is the glue the paper's two services (§2 resource access, §3
// packet filtering) would live in, and exists so the examples and
// tests can exercise realistic install/dispatch/uninstall lifecycles,
// including the accounting (validation cost, per-extension cycles)
// that Figure 9 is about.
//
// Installation is a two-stage pipeline (pipeline.go): an expensive
// validation stage that runs lock-free (memoized by the proof cache,
// cache.go) and a short commit section under the kernel's writer
// mutex. Dispatch takes NO lock at all: the installed-filter set is
// published as an immutable snapshot behind an atomic pointer
// (table.go), deliveries pin an epoch and load it once (epoch.go),
// and the hot counters are sharded per dispatch environment
// (shard.go) — so packet delivery never waits, not even for an
// install's commit section. See DESIGN.md, "Concurrency model".
package kernel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Stats is an approximate, lock-free snapshot of the kernel
// accounting (see the Stats method for the exact contract): each field
// is aggregated from atomic counters at scrape time, but the snapshot
// as a whole is not a consistent cut while installs or deliveries are
// in flight. For exact cross-counter invariants, quiesce the kernel
// first; for stage-level latency attribution, attach a
// telemetry.Recorder (SetRecorder) instead of polling Stats.
type Stats struct {
	// Validations and Rejections count install attempts.
	Validations int
	Rejections  int
	// ValidationMicros is wall-clock spent in actual proof checking
	// (cache hits contribute nothing — that is the point), so startup
	// and per-packet costs are in one currency (how Figure 9 plots
	// them).
	ValidationMicros float64
	// Packets delivered and per-owner accepts.
	Packets int
	// ExtensionCycles is total simulated time spent inside extensions.
	ExtensionCycles int64

	// Proof-cache accounting: a hit means an install skipped VC
	// generation and LF checking entirely.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
	// BatchInstalls counts InstallFilterBatch calls; QueueWaitMicros is
	// the cumulative time batch requests waited for a validator worker.
	BatchInstalls   int
	QueueWaitMicros float64
}

// counters is the lock-free backing store for Stats (cache counters
// live in the proofCache). The install-side counters are single
// atomics — installs are not the hot path; the dispatch-side packet
// and cycle counters are sharded per dispatch environment (shard.go)
// and summed at scrape time.
type counters struct {
	validations     atomic.Int64
	rejections      atomic.Int64
	validationNanos atomic.Int64
	batchInstalls   atomic.Int64
	queueWaitNanos  atomic.Int64
	shards          []dispatchShard
}

// packets sums the sharded delivery counter.
func (c *counters) packets() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].packets.Load()
	}
	return sum
}

// extensionCycles sums the sharded cycle counter.
func (c *counters) extensionCycles() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].cycles.Load()
	}
	return sum
}

// installed is one live packet filter. Immutable once published in a
// filterTable snapshot: retrofits (SetBackend, SetProfiling) replace
// the struct rather than mutating it, and the replaced one is retired
// through the epoch domain. The accepts counter is shared with the
// snapshot's persistent per-owner table so accounting survives
// uninstall/reinstall. prof is the cycle-attribution accumulator,
// non-nil only once profiling has been enabled (profile.go). compiled
// is the threaded-code form, non-nil only when the filter was
// installed under (or retrofitted to) BackendCompiled (backend.go).
type installed struct {
	ext      *pcc.Extension
	accepts  *ownerCounter
	prof     *filterProfile
	compiled *machine.Compiled
}

// Kernel is a simulated extensible kernel.
type Kernel struct {
	// mu guards the control plane: filter-table publication (writers
	// serialize their copy-on-write builds), handler/table maps,
	// budget, and negotiation. Dispatch NEVER takes it — deliveries
	// read the table snapshot lock-free. Validation never holds it
	// either.
	mu sync.RWMutex

	filterPolicy   *policy.Policy
	resourcePolicy *policy.Policy
	// Cache keyers memoize the policy-side fingerprints, so keying a
	// binary costs one SHA-256 over its bytes.
	filterKeyer   *pcc.Keyer
	resourceKeyer *pcc.Keyer

	// table is the published installed-filter snapshot (table.go);
	// epochs is the grace-period domain that defers freeing retired
	// snapshots and filters past in-flight deliveries (epoch.go).
	table  atomic.Pointer[filterTable]
	epochs *epochs

	handlers         map[int]*pcc.Extension // pid -> resource-access handler
	tables           map[int]*machine.Region
	budget           CycleBudget
	negotiated       map[string]*policy.Policy
	negotiatedKeyers map[string]*pcc.Keyer

	cache *proofCache
	stats counters
	// envSeq assigns counter shards to dispatch environments
	// round-robin; shardMask is len(stats.shards)-1.
	envSeq    atomic.Uint32
	shardMask uint32

	// events allocates the kernel's correlation EventIDs: one per
	// negotiate, install attempt, handler install, uninstall, config
	// change, packet delivery, and dispatch batch. Spans, audit
	// records, and flight events produced by the same operation all
	// carry the same EventID, which is what /debug/timeline joins on.
	// Tenant-scoped: a Registry seeds each kernel with a disjoint base
	// (SeedEventBase) so IDs identify their tenant.
	events atomic.Uint64
	// tel is the optional telemetry sink (telemetry.go); nil means
	// every instrumentation point is a no-op costing one atomic load.
	tel atomic.Pointer[telem]
	// audit is the optional structured audit sink (audit.go).
	audit atomic.Pointer[auditor]
	// flightRec is the optional dispatch flight recorder: a lock-free
	// ring of the last N anomalies (faults, fuel exhaustion, oversize
	// fallbacks, backend fallbacks, quarantine trips, config changes).
	// nil means anomalies cost one atomic load each.
	flightRec atomic.Pointer[telemetry.FlightRecorder]
	// profiling selects the profiled dispatch path (profile.go).
	profiling atomic.Bool
	// backend is the default execution backend (backend.go), read on
	// install commits; dispatch never consults it — each filter slot
	// carries its own compiled form or not.
	backend atomic.Int32
	// Adversarial-hardening configuration (robust.go): validation
	// resource budgets, admission gate, and producer quarantine. All
	// nil/disabled by default.
	limits  atomic.Pointer[pcc.Limits]
	admit   atomic.Pointer[admitGate]
	quarCfg atomic.Pointer[QuarantineConfig]
	quarMu  sync.Mutex
	quar    map[string]*quarState
	// wal is the optional durability store (store.go in this package;
	// the on-disk format lives in internal/store). When attached,
	// install/uninstall/retrofit commits journal through it before they
	// publish — an acked install is on disk. nil (the default) keeps the
	// kernel purely in-memory.
	wal atomic.Pointer[store.Store]
	// brk is the optional dispatch circuit-breaker supervisor
	// (breaker.go): per-filter fault accounting that demotes a
	// repeatedly faulting compiled filter to the interpreter and
	// re-admits it only after backoff. brkArmed is the hot-path gate:
	// dispatch consults the breaker only while it is nonzero.
	brkCfg   atomic.Pointer[BreakerConfig]
	brkMu    sync.Mutex
	brk      map[string]*breakerState
	brkArmed atomic.Int64
	// statePool recycles packet-delivery machine states so dispatch
	// does not allocate a fresh memory image per packet per filter.
	statePool sync.Pool
}

// New creates a kernel publishing the standard policies, with a proof
// cache of DefaultCacheSize entries.
func New() *Kernel { return NewWithCacheSize(DefaultCacheSize) }

// NewWithCacheSize creates a kernel whose proof cache holds up to size
// validated extensions; size <= 0 disables memoization (every install
// re-validates), which the latency benchmarks use to model an
// all-cold workload.
func NewWithCacheSize(size int) *Kernel {
	k := &Kernel{
		filterPolicy:   policy.PacketFilter(),
		resourcePolicy: policy.ResourceAccess(),
		handlers:       map[int]*pcc.Extension{},
		tables:         map[int]*machine.Region{},
		cache:          newProofCache(size),
		epochs:         newEpochs(),
	}
	k.table.Store(newFilterTable())
	n := numShards()
	k.stats.shards = make([]dispatchShard, n)
	k.shardMask = uint32(n - 1)
	k.filterKeyer = pcc.NewKeyer(k.filterPolicy)
	k.resourceKeyer = pcc.NewKeyer(k.resourcePolicy)
	k.statePool.New = func() any {
		e := newPacketEnv()
		e.shard = k.envSeq.Add(1) & k.shardMask
		return e
	}
	return k
}

// nextEvent allocates the correlation EventID for one kernel
// operation, or 0 when no observer — telemetry recorder, audit sink,
// or flight recorder — is attached, so the unobserved path pays the
// loads it already paid and no shared-counter write. tel is the
// already-loaded telemetry bundle (callers on instrumented paths load
// it first).
func (k *Kernel) nextEvent(tel *telem) uint64 {
	if tel == nil && k.audit.Load() == nil && k.flightRec.Load() == nil {
		return 0
	}
	return k.events.Add(1)
}

// SeedEventBase sets the starting point of the kernel's EventID
// counter. A multi-tenant registry seeds each kernel with a disjoint
// base so an EventID identifies its tenant; call before the kernel
// observes traffic.
func (k *Kernel) SeedEventBase(base uint64) { k.events.Store(base) }

// FilterPolicy returns the published packet-filter policy (Figure 1:
// the consumer "defines and publicizes a safety policy").
func (k *Kernel) FilterPolicy() *policy.Policy { return k.filterPolicy }

// ResourcePolicy returns the published resource-access policy.
func (k *Kernel) ResourcePolicy() *policy.Policy { return k.resourcePolicy }

// CycleBudget is the per-packet worst-case cycle budget the kernel
// enforces at install time (the §2.1 "control over resource usage"
// policy dimension). Zero disables the check.
type CycleBudget int64

// SetCycleBudget configures the per-packet budget for subsequently
// installed filters.
func (k *Kernel) SetCycleBudget(b CycleBudget) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.budget = b
}

// NegotiateFilterPolicy implements the §4 protocol at the kernel
// boundary: a producer proposes a policy; the kernel accepts it —
// and from then on validates binaries naming it — only after proving
// that its own packet-filter guarantees cover the proposal.
func (k *Kernel) NegotiateFilterPolicy(proposed *policy.Policy) error {
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	span := tel.span(telemetry.StageNegotiate, proposed.Name, eid)
	aud := k.audit.Load()
	k.mu.RLock()
	base := k.filterPolicy
	k.mu.RUnlock()
	if err := pcc.NegotiatePolicy(base, proposed); err != nil {
		aud.negotiate(proposed, eid, err)
		span.End(err)
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.negotiated == nil {
		k.negotiated = map[string]*policy.Policy{}
		k.negotiatedKeyers = map[string]*pcc.Keyer{}
	}
	k.negotiated[proposed.Name] = proposed
	k.negotiatedKeyers[proposed.Name] = pcc.NewKeyer(proposed)
	aud.negotiate(proposed, eid, nil)
	span.End(nil)
	return nil
}

// InstallFilter validates a PCC binary against the packet-filter
// policy and installs it for the owner. Invalid binaries — and, when a
// cycle budget is configured, binaries whose static worst-case cost
// exceeds it — are rejected and counted. Validation runs without the
// kernel lock (and is skipped entirely on a proof-cache hit); only the
// final commit of the validated extension is serialized.
func (k *Kernel) InstallFilter(owner string, binary []byte) error {
	return k.InstallFilterCtx(context.Background(), owner, binary)
}

// newCacheSlot derives everything an install commit will need from a
// freshly validated extension — today the static worst-case cost
// bound — so the commit section never does per-extension analysis
// under the kernel write lock. Slots are immutable once built. The
// WCET pass runs inside a recover fence: it analyzes untrusted code,
// and a panic there must reject the one binary, not crash the kernel.
func newCacheSlot(key cacheKey, ext *pcc.Extension) *cacheSlot {
	slot := &cacheSlot{key: key, ext: ext}
	if perr := pcc.Fence("wcet", func() error {
		slot.wcet, slot.wcetErr = machine.DEC21064.MaxCost(ext.Prog)
		return nil
	}); perr != nil {
		slot.wcetErr = perr
	}
	return slot
}

// validateFilter is the lock-free validation stage: proof-cache
// lookup, then full PCC validation against the published packet-filter
// policy with fallback to any negotiated policy the binary names. At
// most one cache hit or miss is recorded per install attempt, however
// many candidate policies are probed. With a recorder attached, the
// attempt is traced as a validate span with cacheprobe /
// parse / lfsig / vcgen / lfcheck / wcet children; with an audit log
// attached, the forensic context of the attempt rides along to the
// commit in the returned validationAudit (nil when auditing is off).
func (k *Kernel) validateFilter(ctx context.Context, owner string, binary []byte, eid uint64) (*cacheSlot, *validationAudit, error) {
	k.stats.validations.Add(1)
	tel := k.tel.Load()
	span := tel.span(telemetry.StageValidate, owner, eid)
	va := k.audit.Load().newValidationAudit("filter", owner, binary, eid)
	// An expired context or a live embargo rejects before any byte of
	// the binary is examined — in particular before the cache probe, so
	// a canceled install cannot be served (and committed) from a hit.
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("kernel: install aborted: %w", err)
		span.End(err)
		return nil, va, err
	}
	if qerr := k.quarantineCheck(owner); qerr != nil {
		span.End(qerr)
		return nil, va, qerr
	}
	type candidate struct {
		pol *policy.Policy
		key cacheKey
	}
	k.mu.RLock()
	cands := make([]candidate, 0, 1+len(k.negotiated))
	cands = append(cands, candidate{k.filterPolicy, k.filterKeyer.Key(binary)})
	for name, p := range k.negotiated {
		cands = append(cands, candidate{p, k.negotiatedKeyers[name].Key(binary)})
	}
	k.mu.RUnlock()
	va.setPolicy(cands[0].pol)

	probeStart := time.Now()
	for _, c := range cands {
		if slot := k.cache.lookup(c.key); slot != nil {
			k.cache.recordHit()
			va.setCacheHit()
			va.setPolicy(c.pol)
			tel.probe(span, probeStart, true)
			span.End(nil)
			return slot, va, nil
		}
	}
	k.cache.recordMiss()
	tel.probe(span, probeStart, false)

	lastErr := fmt.Errorf("kernel: no policy matches")
	for i, c := range cands {
		valStart := time.Now()
		ext, stats, err := pcc.ValidateCtx(ctx, binary, c.pol, k.limits.Load())
		if err != nil {
			if i == 0 {
				lastErr = err // the published policy's verdict leads
			}
			continue
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		tel.validationStages(span, owner, valStart, stats)
		tel.certCost(stats, eid)
		va.setPolicy(c.pol)
		va.setStats(stats)
		wcetStart := time.Now()
		slot := newCacheSlot(c.key, ext)
		tel.wcet(span, owner, wcetStart, slot.wcetErr)
		slot, evicted := k.cache.put(slot)
		tel.evicted(evicted)
		k.audit.Load().evict(evicted, eid)
		span.End(nil)
		return slot, va, nil
	}
	span.End(lastErr)
	return nil, va, lastErr
}

// commitFilter is the short serial section of an install: budget
// comparison (the WCET itself was computed lock-free at validation
// time), journal append, and table update. The final verdict —
// including budget rejections — is written to the audit log here, so
// every install attempt produces exactly one install record. Under
// BackendCompiled the threaded-code form is obtained (memoized on the
// slot) before the lock is taken, so compilation — like validation —
// never runs under the kernel write lock, and a filter that somehow
// fails to compile is rejected rather than silently interpreted.
//
// When a store is attached and journal is true, the install is
// journaled inside the commit section BEFORE the table swap: the
// write-ahead discipline. A successful return therefore implies the
// record is on disk (fsynced), and a failed append rejects the install
// — the kernel never acks an install a crash could lose. journal is
// false only on the recovery path, whose records are already in the
// journal. binary is the exact accepted blob; it is what recovery will
// re-validate, so it must be the bytes that were proof-checked, not a
// derived form.
func (k *Kernel) commitFilter(owner string, binary []byte, slot *cacheSlot, va *validationAudit, verr error, be Backend, eid uint64, journal bool) error {
	tel := k.tel.Load()
	if verr != nil {
		k.stats.rejections.Add(1)
		reason := installRejectReason(verr)
		tel.outcome(false)
		tel.reject(reason)
		k.noteRejection(owner, reason, eid)
		err := fmt.Errorf("kernel: filter for %q rejected: %w", owner, verr)
		k.audit.Load().install(va, slot, err)
		return err
	}
	var compiled *machine.Compiled
	if be == BackendCompiled {
		var cerr error
		compiled, cerr = slot.compiledForm()
		if cerr != nil {
			verr = fmt.Errorf("backend compile: %w", cerr)
			k.stats.rejections.Add(1)
			reason := installRejectReason(verr)
			tel.outcome(false)
			tel.reject(reason)
			k.noteRejection(owner, reason, eid)
			err := fmt.Errorf("kernel: filter for %q rejected: %w", owner, verr)
			k.audit.Load().install(va, slot, err)
			return err
		}
	}
	span := tel.span(telemetry.StageCommit, owner, eid)
	err := func() error {
		k.mu.Lock()
		defer k.mu.Unlock()
		if k.budget > 0 {
			if slot.wcetErr != nil {
				return fmt.Errorf("kernel: filter for %q has no static cost bound: %w", owner, slot.wcetErr)
			}
			if slot.wcet > int64(k.budget) {
				// A typed resource-limit error, so the rejection lands in
				// the "limit" reason bucket alongside the validation-time
				// budgets.
				return fmt.Errorf("kernel: filter for %q exceeds the cycle budget: %w", owner,
					&pcc.ResourceLimitError{Axis: "cycle_budget", Actual: slot.wcet, Max: int64(k.budget)})
			}
		}
		// Write-ahead: the journal append (with fsync) happens before
		// the table swap, so the install is durable before it is
		// visible. An append failure rejects the install — the caller
		// never receives an ack for a record the disk does not hold.
		if journal {
			if st := k.wal.Load(); st != nil {
				if _, jerr := st.Append(store.KindInstall, owner, binary); jerr != nil {
					return fmt.Errorf("kernel: filter for %q not journaled: %w",
						owner, &StoreError{Op: "append", Err: jerr})
				}
			}
		}
		// Copy-on-write publication: build the replacement snapshot,
		// swap the pointer, retire the old snapshot (and a replaced
		// filter) past in-flight deliveries. The persistent per-owner
		// accept counter is carried over or minted here.
		t := k.table.Load()
		ctr := t.accepts[owner]
		if ctr == nil {
			ctr = newOwnerCounter(len(k.stats.shards))
		}
		ins := &installed{ext: slot.ext, accepts: ctr, compiled: compiled}
		if k.profiling.Load() {
			ins.prof = newFilterProfile(slot.ext.Prog)
		}
		nt := t.withFilter(owner, ins)
		var retired []*installed
		if i, ok := t.index[owner]; ok {
			retired = append(retired, t.slots[i].f)
		}
		k.publishLocked(nt, retired...)
		tel.setFilters(len(nt.slots))
		return nil
	}()
	if err != nil {
		k.stats.rejections.Add(1)
		tel.reject(installRejectReason(err))
		k.noteRejection(owner, installRejectReason(err), eid)
	} else {
		k.noteSuccess(owner)
		// A fresh install is a fresh binary: its breaker history, if
		// any, belongs to the replaced filter.
		k.breakerForget(owner)
	}
	tel.outcome(err == nil)
	k.audit.Load().install(va, slot, err)
	span.End(err)
	return err
}

// UninstallFilter removes an owner's filter. The removed filter and
// the superseded snapshot are retired, not freed: an in-flight
// delivery that loaded the old snapshot finishes against it. With a
// store attached the removal is journaled before it is published, same
// write-ahead discipline as installs; a failed append aborts the
// uninstall (the filter stays installed) so the disk never disagrees
// with an acked removal.
func (k *Kernel) UninstallFilter(owner string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table.Load()
	nt, removed := t.withoutFilter(owner)
	if removed == nil {
		return nil
	}
	eid := k.nextEvent(k.tel.Load())
	if st := k.wal.Load(); st != nil {
		if _, jerr := st.Append(store.KindUninstall, owner, nil); jerr != nil {
			serr := &StoreError{Op: "append", Err: jerr}
			k.audit.Load().storeError("uninstall", owner, serr, eid)
			return fmt.Errorf("kernel: uninstall of %q not journaled: %w", owner, serr)
		}
	}
	k.audit.Load().uninstall(owner, eid)
	k.publishLocked(nt, removed)
	k.tel.Load().setFilters(len(nt.slots))
	return nil
}

// Owners lists owners with installed filters, sorted. Lock-free: it
// reads the published snapshot, whose slots are already sorted.
func (k *Kernel) Owners() []string {
	rec := k.epochs.pin(0)
	defer rec.unpin()
	t := k.table.Load()
	out := make([]string, len(t.slots))
	for i := range t.slots {
		out[i] = t.slots[i].owner
	}
	return out
}

// packetBase/scratchBase lay out the per-delivery address space; a
// pooled packet region may grow up to the gap between them
// (maxPooledPacket) without overlapping scratch.
const (
	packetBase      = 0x10000
	scratchBase     = 0x20000
	maxPooledPacket = scratchBase - packetBase
)

// dispatchFuel is the per-filter step budget on the dispatch path. A
// validated filter never gets near it; it is the kernel's last-resort
// bound should validation ever be wrong about termination.
const dispatchFuel = 1 << 20

// packetEnv is a reusable delivery environment: one memory image
// (packet + scratch regions) and one machine state, recycled through
// the kernel's statePool so dispatch allocates nothing per packet.
// dirtyScratch tracks whether the last run could have written the
// scratch region: compiled filters report store-freedom statically
// (machine.Compiled.WritesMemory), and a store-free run lets the next
// reset skip the scratch wipe.
type packetEnv struct {
	state        machine.State
	pkt          *machine.Region
	tail         *machine.Region
	scratch      *machine.Region
	dirtyScratch bool
	// pktBuf is the environment's own packet backing storage, used
	// when the packet must be copied in (single-packet dispatch).
	// Vectorized dispatch instead aliases the packet region straight
	// onto the caller's buffer (see setPacketAlias), with the tail
	// region covering an unaligned final word.
	pktBuf []byte
	// tailSrc, when non-nil, is the aliased packet whose unaligned
	// final word has not been copied into the tail region yet. The
	// copy is deferred until a filter actually touches the tail (see
	// materializeTail): filters read packet headers, so eagerly
	// copying the last few bytes would drag the packet's final cache
	// line in from memory on every delivery for bytes almost never
	// read.
	tailSrc []byte
	// shard is the environment's assigned slot in the kernel's sharded
	// dispatch counters (shard.go), fixed at creation. sync.Pool's
	// per-P caching gives the assignment natural processor affinity.
	shard uint32
	// Pooled per-batch scratch for DeliverPackets (owner offsets,
	// accepting-slot indices, and per-filter accumulators parallel to
	// the snapshot's slots), so a batch allocates only its result.
	offs    []int32
	aidx    []uint16
	cycles  []int64
	accepts []int64
	runs    []int64
	bps     []*machine.BlockProfile
	hists   []*telemetry.Histogram
}

func newPacketEnv() *packetEnv {
	mem := machine.NewMemory()
	pkt := machine.NewRegion("packet", packetBase, 2048, false)
	// The tail region is empty (matching nothing) except during
	// zero-copy dispatch of a packet whose length is not a multiple
	// of 8; an empty region never overlaps anything.
	tail := machine.NewRegion("packet-tail", packetBase, 0, false)
	scratch := machine.NewRegion("scratch", scratchBase, policy.ScratchLen, true)
	mem.MustAddRegion(pkt)
	mem.MustAddRegion(tail)
	mem.MustAddRegion(scratch)
	e := &packetEnv{state: machine.State{Mem: mem}, pkt: pkt, tail: tail, scratch: scratch}
	e.pktBuf = pkt.Bytes()
	return e
}

// setPacketCopy loads the packet into the environment's own backing
// storage (copy + zero padding to a whole word), the reference layout
// for pooled dispatch. It always re-aliases the packet region onto the
// owned buffer, undoing any zero-copy alias a previous batch left.
func (e *packetEnv) setPacketCopy(data []byte) {
	padded := (len(data) + 7) &^ 7
	if cap(e.pktBuf) < padded {
		e.pktBuf = make([]byte, padded)
	}
	buf := e.pktBuf[:padded]
	n := copy(buf, data)
	for i := n; i < padded; i++ {
		buf[i] = 0
	}
	e.pkt.AliasBytes(buf)
	e.tail.Resize(0)
	e.tailSrc = nil
}

// releasePacket drops any zero-copy alias so a pooled environment
// never pins a caller's packet buffer while idle in the pool.
func (e *packetEnv) releasePacket() {
	e.pkt.AliasBytes(e.pktBuf[:0])
	e.tail.Resize(0)
	e.tailSrc = nil
}

// setPacketAlias maps the packet region directly onto the caller's
// buffer — no copy — leaving only an unaligned final word (at most 7
// bytes plus zero padding) to copy into the tail region. The visible
// address space is byte-identical to setPacketCopy: same words at the
// same addresses, zero padding to the word boundary, unmapped beyond.
// The caller's buffer must stay unmodified for the duration of the
// run; the packet and tail regions are read-only, so validated filters
// cannot write through the alias.
func (e *packetEnv) setPacketAlias(data []byte) {
	floor := len(data) &^ 7
	e.pkt.AliasBytes(data[:floor])
	e.tail.Base = uint64(packetBase) + uint64(floor)
	e.tail.Clear()
	if len(data)-floor > 0 {
		e.tailSrc = data
	} else {
		e.tailSrc = nil
	}
}

// materializeTail copies the pending unaligned final word into the
// tail region, making the address space byte-identical to
// setPacketCopy. Called when a filter faults on the tail word (see
// tailFault); after it runs, the retried filter — and every later
// filter on the same packet — sees the mapped, zero-padded tail.
func (e *packetEnv) materializeTail() {
	src := e.tailSrc
	floor := len(src) &^ 7
	e.tail.Resize(len(src) - floor)
	// At most 7 bytes plus zero padding into the region's one word: an
	// explicit byte loop beats the general SetBytes (memmove + bounds
	// machinery) on the profiled dispatch path, where every unaligned
	// packet materializes its tail eagerly.
	dst := e.tail.Bytes()
	tb := src[floor:]
	i := 0
	for ; i < len(tb); i++ {
		dst[i] = tb[i]
	}
	for ; i < len(dst); i++ {
		dst[i] = 0
	}
	e.tailSrc = nil
}

// tailFault reports whether err is a fault that only happened because
// the tail word has not been materialized yet: an unmapped-address
// fault inside the tail region's one-word window while a copy is
// pending. Every other fault — unaligned access anywhere, any access
// past the padded length, a write that would hit the read-only tail —
// produces the same error the eager-copy layout would have.
func (e *packetEnv) tailFault(err error) bool {
	if e.tailSrc == nil {
		return false
	}
	var mf *machine.MemFault
	if !errors.As(err, &mf) {
		return false
	}
	return mf.Kind == machine.FaultUnmapped && mf.Addr >= e.tail.Base && mf.Addr < e.tail.Base+8
}

// reset re-establishes the packet-filter precondition between filters:
// zeroed registers, packet pointer/length in the convention registers.
// Scratch hygiene is the caller's half of the contract: dispatch loops
// check dirtyScratch and call wipeScratch before each reset, so each
// filter observes the same fresh state a dedicated allocation would
// have given it (scratch contents must not leak between filters).
// Keeping that branch out of reset leaves it inside the inlining
// budget of the dispatch loops. The packet region itself is read-only
// to the extension and is loaded once per delivery, not per filter.
func (e *packetEnv) reset(pktLen int) {
	e.state.R = [alpha.NumRegs]uint64{
		policy.RegPacket:  packetBase,
		policy.RegLen:     uint64(pktLen),
		policy.RegScratch: scratchBase,
	}
	e.state.PC = 0
}

// presetRegs is the register set reset establishes with non-stale
// values: the zeroed return register and the three convention
// registers. A filter whose LiveInRegs set is inside presetRegs
// provably cannot observe any other register, so dispatch may use
// resetLite for it.
const presetRegs = 1<<0 | 1<<policy.RegPacket | 1<<policy.RegLen | 1<<policy.RegScratch

// resetLite is reset for filters proven (by install-time liveness
// analysis, machine.Compiled.LiveInRegs) to read only the preset
// registers before writing anything else: it skips the full register
// wipe, writing just the four presets. Observable behavior is
// identical to reset for such filters — the skipped registers' stale
// values are provably dead. Like reset, it relies on the caller for
// the dirty-scratch wipe.
func (e *packetEnv) resetLite(pktLen int) {
	e.state.R[0] = 0
	e.state.R[policy.RegPacket] = packetBase
	e.state.R[policy.RegLen] = uint64(pktLen)
	e.state.R[policy.RegScratch] = scratchBase
	e.state.PC = 0
}

// wipeScratch zeroes the scratch region, out of line so the common
// clean-scratch reset stays small enough to inline into the dispatch
// loops.
func (e *packetEnv) wipeScratch() {
	e.scratch.SetBytes(nil) // zero the whole scratch region
	e.dirtyScratch = false
}

// DeliverPacket runs every installed filter over the packet (with no
// run-time checks — they are validated) and returns the owners that
// accepted it. The dispatch path acquires NO lock: it pins an epoch,
// loads the published filter snapshot once, and iterates its
// pre-sorted slots — so the accept list comes out sorted with no
// per-call sort, deliveries proceed concurrently with each other AND
// with install commits, and a concurrently retired filter stays alive
// until this delivery unpins. The delivery machine state comes from a
// sync.Pool: one packet copy per delivery, a register/scratch wipe
// per filter, no allocation.
func (k *Kernel) DeliverPacket(pkt pktgen.Packet) ([]string, error) {
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	span := tel.span(telemetry.StageDispatch, "", eid)
	supervised := k.brkArmed.Load() != 0
	if supervised {
		k.breakerTick(eid)
	}
	env := k.statePool.Get().(*packetEnv)
	defer k.statePool.Put(env)
	usePool := len(pkt.Data) <= maxPooledPacket
	if usePool {
		env.setPacketCopy(pkt.Data)
	} else {
		k.flight(telemetry.FlightOversizePacket, "", fmt.Sprintf("len=%d", len(pkt.Data)), eid)
	}
	profiling := k.profiling.Load()
	rec := k.epochs.pin(int(env.shard))
	defer rec.unpin()
	t := k.table.Load()
	sh := &k.stats.shards[env.shard]
	sh.packets.Add(1)
	tel.packet()
	var accepted []string
	var cycles int64
	for i := range t.slots {
		owner, f := t.slots[i].owner, t.slots[i].f
		var state *machine.State
		if usePool {
			if env.dirtyScratch {
				env.wipeScratch()
			}
			env.reset(len(pkt.Data))
			state = &env.state
		} else {
			state = k.packetState(pkt) // oversized packet: fall back to a fresh image
		}
		res, wrote, err := runInstalled(f, state, profiling)
		if usePool && wrote {
			env.dirtyScratch = true
		}
		if err != nil {
			// A validated extension cannot fault when the kernel meets
			// the precondition; if it does, the kernel is broken.
			sh.cycles.Add(cycles)
			kind := dispatchFaultKind(err)
			k.flight(kind, owner, err.Error(), eid)
			k.breakerFault(owner, kind, eid)
			span.End(err)
			return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", owner, err)
		}
		cycles += res.Cycles
		ok := res.Ret != 0
		if ok {
			accepted = append(accepted, owner)
			f.accepts.add(int(env.shard), 1)
		}
		if supervised {
			k.breakerClean(owner, eid)
		}
		tel.filterRun(owner, res.Cycles, ok)
	}
	sh.cycles.Add(cycles)
	span.End(nil)
	return accepted, nil
}

// packetState builds a freshly allocated precondition-satisfying
// machine state for one delivery: the fallback for packets too large
// for the pooled layout, and the baseline the state-pool benchmark
// (BenchmarkDeliverPacketState) measures against.
func (k *Kernel) packetState(pkt pktgen.Packet) *machine.State {
	mem := machine.NewMemory()
	pr := machine.NewRegion("packet", packetBase, len(pkt.Data), false)
	pr.SetBytes(pkt.Data)
	mem.MustAddRegion(pr)
	// An oversized packet spills past the pooled layout's scratch base;
	// relocate scratch above the packet end. Filters reach scratch only
	// through R[RegScratch], so its absolute base is free to move.
	sb := uint64(scratchBase)
	if end := uint64(packetBase) + uint64(len(pkt.Data)); end > sb {
		sb = (end + 7) &^ 7
	}
	mem.MustAddRegion(machine.NewRegion("scratch", sb, policy.ScratchLen, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = packetBase
	s.R[policy.RegLen] = uint64(len(pkt.Data))
	s.R[policy.RegScratch] = sb
	return s
}

// Accepts returns the per-owner accept counters (including owners
// whose filter has since been uninstalled). Lock-free: it reads the
// published snapshot's persistent counter table and sums each
// counter's shards; every count is attributed to exactly one shard,
// so nothing is lost across concurrent deliveries or table swaps.
func (k *Kernel) Accepts() map[string]int {
	rec := k.epochs.pin(0)
	defer rec.unpin()
	t := k.table.Load()
	out := make(map[string]int, len(t.accepts))
	for o, c := range t.accepts {
		out[o] = int(c.total())
	}
	return out
}

// CreateTable creates the §2 {tag, data} entry for a process.
func (k *Kernel) CreateTable(pid int, tag, data uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	base := uint64(0x40000 + pid*16)
	r := machine.NewRegion(fmt.Sprintf("table-%d", pid), base, 16, true)
	r.SetWord(0, tag)
	r.SetWord(8, data)
	k.tables[pid] = r
}

// InstallHandler validates and installs a resource-access handler for
// a process. Like InstallFilter, validation runs lock-free, is
// memoized by the proof cache, and is traced when a recorder is
// attached.
func (k *Kernel) InstallHandler(pid int, binary []byte) error {
	k.stats.validations.Add(1)
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	var owner string
	if tel != nil || k.audit.Load() != nil {
		owner = fmt.Sprintf("pid-%d", pid)
	}
	span := tel.span(telemetry.StageValidate, owner, eid)
	va := k.audit.Load().newValidationAudit("handler", owner, binary, eid)
	va.setPolicy(k.resourcePolicy)
	key := k.resourceKeyer.Key(binary)
	probeStart := time.Now()
	slot := k.cache.lookup(key)
	if slot != nil {
		k.cache.recordHit()
		va.setCacheHit()
		tel.probe(span, probeStart, true)
	} else {
		k.cache.recordMiss()
		tel.probe(span, probeStart, false)
		valStart := time.Now()
		ext, stats, err := pcc.ValidateCtx(context.Background(), binary, k.resourcePolicy, k.limits.Load())
		if err != nil {
			k.stats.rejections.Add(1)
			tel.outcome(false)
			tel.reject(pcc.RejectReason(err))
			span.End(err)
			werr := fmt.Errorf("kernel: handler for pid %d rejected: %w", pid, err)
			k.audit.Load().install(va, nil, werr)
			return werr
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		tel.validationStages(span, owner, valStart, stats)
		tel.certCost(stats, eid)
		va.setStats(stats)
		wcetStart := time.Now()
		fresh := newCacheSlot(key, ext)
		tel.wcet(span, owner, wcetStart, fresh.wcetErr)
		var evicted int64
		slot, evicted = k.cache.put(fresh)
		tel.evicted(evicted)
		k.audit.Load().evict(evicted, eid)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.handlers[pid] = slot.ext
	tel.outcome(true)
	k.audit.Load().install(va, slot, nil)
	span.End(nil)
	return nil
}

// InvokeHandler runs a process's installed handler on its own table
// entry, per the §2 calling convention (entry address in r0). It holds
// the write lock: handlers mutate their table entry in place.
func (k *Kernel) InvokeHandler(pid int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ext, ok := k.handlers[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no handler", pid)
	}
	table, ok := k.tables[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no table entry", pid)
	}
	mem := machine.NewMemory()
	mem.MustAddRegion(table)
	s := &machine.State{Mem: mem}
	s.R[0] = table.Base
	res, err := machine.Interp(ext.Prog, s, machine.Unchecked, &machine.DEC21064, 10000)
	if err != nil {
		return fmt.Errorf("kernel: validated handler for pid %d faulted: %w", pid, err)
	}
	// Handlers run under the write lock (cold path); shard 0 is fine.
	k.stats.shards[0].cycles.Add(res.Cycles)
	return nil
}

// Table returns a process's {tag, data} entry.
func (k *Kernel) Table(pid int) (tag, data uint64, ok bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	r, found := k.tables[pid]
	if !found {
		return 0, 0, false
	}
	return r.Word(0), r.Word(8), true
}

// Stats returns a snapshot of the kernel accounting, aggregated on
// scrape: the hot dispatch counters (Packets, ExtensionCycles, and
// the per-owner accepts behind Accepts) are sharded per dispatch
// environment and summed here, so a delivery's increment costs one
// uncontended atomic add and a scrape costs one pass over the shards.
// The aggregation contract: every increment lands in exactly one
// shard, so no increment is ever lost — in particular not across a
// filter-table swap, since the shards live outside the swapped
// snapshot — and each counter is monotone across successive calls
// (each shard is non-decreasing, so the sum is). The snapshot as a
// whole still takes no lock: while installs or deliveries are in
// flight, counters that move together at rest may be momentarily
// inconsistent (e.g. a Validation counted whose hit, miss, or
// rejection is not yet recorded; a Packet counted whose cycles are
// not). Callers wanting exact cross-counter invariants must quiesce
// the kernel first, as the tests do; monitoring readers should treat
// the snapshot as approximate but never regressing.
func (k *Kernel) Stats() Stats {
	hits, misses, evictions := k.cache.counters()
	return Stats{
		Validations:      int(k.stats.validations.Load()),
		Rejections:       int(k.stats.rejections.Load()),
		ValidationMicros: float64(k.stats.validationNanos.Load()) / float64(time.Microsecond),
		Packets:          int(k.stats.packets()),
		ExtensionCycles:  k.stats.extensionCycles(),
		CacheHits:        int(hits),
		CacheMisses:      int(misses),
		CacheEvictions:   int(evictions),
		BatchInstalls:    int(k.stats.batchInstalls.Load()),
		QueueWaitMicros:  float64(k.stats.queueWaitNanos.Load()) / float64(time.Microsecond),
	}
}
