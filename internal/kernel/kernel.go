// Package kernel simulates the code consumer of Figure 1 as a running
// system: a SPIN-style extensible kernel that publishes safety
// policies, validates and installs PCC binaries from untrusted
// processes, and dispatches events — network packets to installed
// filters, resource-table invocations to installed handlers — all with
// zero run-time checking of the extensions.
//
// It is the glue the paper's two services (§2 resource access, §3
// packet filtering) would live in, and exists so the examples and
// tests can exercise realistic install/dispatch/uninstall lifecycles,
// including the accounting (validation cost, per-extension cycles)
// that Figure 9 is about.
//
// Installation is a two-stage pipeline (pipeline.go): an expensive
// validation stage that runs lock-free (memoized by the proof cache,
// cache.go) and a short commit section under the kernel lock. Dispatch
// takes the lock in read mode, so packet delivery proceeds in parallel
// with other deliveries and is never blocked behind a proof check.
package kernel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// Stats aggregates kernel accounting.
type Stats struct {
	// Validations and Rejections count install attempts.
	Validations int
	Rejections  int
	// ValidationMicros is wall-clock spent in actual proof checking
	// (cache hits contribute nothing — that is the point), so startup
	// and per-packet costs are in one currency (how Figure 9 plots
	// them).
	ValidationMicros float64
	// Packets delivered and per-owner accepts.
	Packets int
	// ExtensionCycles is total simulated time spent inside extensions.
	ExtensionCycles int64

	// Proof-cache accounting: a hit means an install skipped VC
	// generation and LF checking entirely.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
	// BatchInstalls counts InstallFilterBatch calls; QueueWaitMicros is
	// the cumulative time batch requests waited for a validator worker.
	BatchInstalls   int
	QueueWaitMicros float64
}

// counters is the lock-free backing store for Stats (cache counters
// live in the proofCache).
type counters struct {
	validations     atomic.Int64
	rejections      atomic.Int64
	validationNanos atomic.Int64
	packets         atomic.Int64
	extensionCycles atomic.Int64
	batchInstalls   atomic.Int64
	queueWaitNanos  atomic.Int64
}

// installed is one live packet filter. The accepts counter is shared
// with the kernel's persistent per-owner table so dispatch can bump it
// under the read lock.
type installed struct {
	ext     *pcc.Extension
	accepts *atomic.Int64
}

// Kernel is a simulated extensible kernel.
type Kernel struct {
	// mu guards the installation tables below. Writers (install
	// commits, uninstalls, negotiation) hold it briefly; dispatch and
	// introspection take it in read mode. Validation itself never
	// holds it.
	mu sync.RWMutex

	filterPolicy   *policy.Policy
	resourcePolicy *policy.Policy
	// Cache keyers memoize the policy-side fingerprints, so keying a
	// binary costs one SHA-256 over its bytes.
	filterKeyer   *pcc.Keyer
	resourceKeyer *pcc.Keyer

	filters          map[string]*installed
	accepts          map[string]*atomic.Int64 // persists across uninstall
	handlers         map[int]*pcc.Extension   // pid -> resource-access handler
	tables           map[int]*machine.Region
	budget           CycleBudget
	negotiated       map[string]*policy.Policy
	negotiatedKeyers map[string]*pcc.Keyer

	cache *proofCache
	stats counters
}

// New creates a kernel publishing the standard policies, with a proof
// cache of DefaultCacheSize entries.
func New() *Kernel { return NewWithCacheSize(DefaultCacheSize) }

// NewWithCacheSize creates a kernel whose proof cache holds up to size
// validated extensions; size <= 0 disables memoization (every install
// re-validates), which the latency benchmarks use to model an
// all-cold workload.
func NewWithCacheSize(size int) *Kernel {
	k := &Kernel{
		filterPolicy:   policy.PacketFilter(),
		resourcePolicy: policy.ResourceAccess(),
		filters:        map[string]*installed{},
		accepts:        map[string]*atomic.Int64{},
		handlers:       map[int]*pcc.Extension{},
		tables:         map[int]*machine.Region{},
		cache:          newProofCache(size),
	}
	k.filterKeyer = pcc.NewKeyer(k.filterPolicy)
	k.resourceKeyer = pcc.NewKeyer(k.resourcePolicy)
	return k
}

// FilterPolicy returns the published packet-filter policy (Figure 1:
// the consumer "defines and publicizes a safety policy").
func (k *Kernel) FilterPolicy() *policy.Policy { return k.filterPolicy }

// ResourcePolicy returns the published resource-access policy.
func (k *Kernel) ResourcePolicy() *policy.Policy { return k.resourcePolicy }

// CycleBudget is the per-packet worst-case cycle budget the kernel
// enforces at install time (the §2.1 "control over resource usage"
// policy dimension). Zero disables the check.
type CycleBudget int64

// SetCycleBudget configures the per-packet budget for subsequently
// installed filters.
func (k *Kernel) SetCycleBudget(b CycleBudget) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.budget = b
}

// NegotiateFilterPolicy implements the §4 protocol at the kernel
// boundary: a producer proposes a policy; the kernel accepts it —
// and from then on validates binaries naming it — only after proving
// that its own packet-filter guarantees cover the proposal.
func (k *Kernel) NegotiateFilterPolicy(proposed *policy.Policy) error {
	k.mu.RLock()
	base := k.filterPolicy
	k.mu.RUnlock()
	if err := pcc.NegotiatePolicy(base, proposed); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.negotiated == nil {
		k.negotiated = map[string]*policy.Policy{}
		k.negotiatedKeyers = map[string]*pcc.Keyer{}
	}
	k.negotiated[proposed.Name] = proposed
	k.negotiatedKeyers[proposed.Name] = pcc.NewKeyer(proposed)
	return nil
}

// InstallFilter validates a PCC binary against the packet-filter
// policy and installs it for the owner. Invalid binaries — and, when a
// cycle budget is configured, binaries whose static worst-case cost
// exceeds it — are rejected and counted. Validation runs without the
// kernel lock (and is skipped entirely on a proof-cache hit); only the
// final commit of the validated extension is serialized.
func (k *Kernel) InstallFilter(owner string, binary []byte) error {
	slot, err := k.validateFilter(binary)
	return k.commitFilter(owner, slot, err)
}

// newCacheSlot derives everything an install commit will need from a
// freshly validated extension — today the static worst-case cost
// bound — so the commit section never does per-extension analysis
// under the kernel write lock. Slots are immutable once built.
func newCacheSlot(key cacheKey, ext *pcc.Extension) *cacheSlot {
	slot := &cacheSlot{key: key, ext: ext}
	slot.wcet, slot.wcetErr = machine.DEC21064.MaxCost(ext.Prog)
	return slot
}

// validateFilter is the lock-free validation stage: proof-cache
// lookup, then full PCC validation against the published packet-filter
// policy with fallback to any negotiated policy the binary names. At
// most one cache hit or miss is recorded per install attempt, however
// many candidate policies are probed.
func (k *Kernel) validateFilter(binary []byte) (*cacheSlot, error) {
	k.stats.validations.Add(1)
	type candidate struct {
		pol *policy.Policy
		key cacheKey
	}
	k.mu.RLock()
	cands := make([]candidate, 0, 1+len(k.negotiated))
	cands = append(cands, candidate{k.filterPolicy, k.filterKeyer.Key(binary)})
	for name, p := range k.negotiated {
		cands = append(cands, candidate{p, k.negotiatedKeyers[name].Key(binary)})
	}
	k.mu.RUnlock()

	for _, c := range cands {
		if slot := k.cache.lookup(c.key); slot != nil {
			k.cache.recordHit()
			return slot, nil
		}
	}
	k.cache.recordMiss()

	lastErr := fmt.Errorf("kernel: no policy matches")
	for i, c := range cands {
		ext, stats, err := pcc.Validate(binary, c.pol)
		if err != nil {
			if i == 0 {
				lastErr = err // the published policy's verdict leads
			}
			continue
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		return k.cache.put(newCacheSlot(c.key, ext)), nil
	}
	return nil, lastErr
}

// commitFilter is the short serial section of an install: budget
// comparison (the WCET itself was computed lock-free at validation
// time) and table update.
func (k *Kernel) commitFilter(owner string, slot *cacheSlot, verr error) error {
	if verr != nil {
		k.stats.rejections.Add(1)
		return fmt.Errorf("kernel: filter for %q rejected: %w", owner, verr)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.budget > 0 {
		if slot.wcetErr != nil {
			k.stats.rejections.Add(1)
			return fmt.Errorf("kernel: filter for %q has no static cost bound: %w", owner, slot.wcetErr)
		}
		if slot.wcet > int64(k.budget) {
			k.stats.rejections.Add(1)
			return fmt.Errorf("kernel: filter for %q exceeds the cycle budget: %d > %d",
				owner, slot.wcet, k.budget)
		}
	}
	ctr := k.accepts[owner]
	if ctr == nil {
		ctr = new(atomic.Int64)
		k.accepts[owner] = ctr
	}
	k.filters[owner] = &installed{ext: slot.ext, accepts: ctr}
	return nil
}

// UninstallFilter removes an owner's filter.
func (k *Kernel) UninstallFilter(owner string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.filters, owner)
}

// Owners lists owners with installed filters, sorted.
func (k *Kernel) Owners() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, 0, len(k.filters))
	for o := range k.filters {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// DeliverPacket runs every installed filter over the packet (with no
// run-time checks — they are validated) and returns the owners that
// accepted it. It holds the kernel lock only in read mode, so
// deliveries proceed concurrently with each other and wait at most for
// an install's short commit section — never for a validation.
func (k *Kernel) DeliverPacket(pkt pktgen.Packet) ([]string, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	k.stats.packets.Add(1)
	var accepted []string
	for owner, f := range k.filters {
		state := k.packetState(pkt)
		res, err := machine.Interp(f.ext.Prog, state, machine.Unchecked, &machine.DEC21064, 1<<20)
		if err != nil {
			// A validated extension cannot fault when the kernel meets
			// the precondition; if it does, the kernel is broken.
			return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", owner, err)
		}
		k.stats.extensionCycles.Add(res.Cycles)
		if res.Ret != 0 {
			accepted = append(accepted, owner)
			f.accepts.Add(1)
		}
	}
	sort.Strings(accepted)
	return accepted, nil
}

// packetState builds the precondition-satisfying machine state for one
// delivery. (A real kernel reuses buffers; allocation noise is not
// part of the modeled cycle costs.)
func (k *Kernel) packetState(pkt pktgen.Packet) *machine.State {
	mem := machine.NewMemory()
	pr := machine.NewRegion("packet", 0x10000, len(pkt.Data), false)
	pr.SetBytes(pkt.Data)
	mem.MustAddRegion(pr)
	mem.MustAddRegion(machine.NewRegion("scratch", 0x20000, policy.ScratchLen, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = 0x10000
	s.R[policy.RegLen] = uint64(len(pkt.Data))
	s.R[policy.RegScratch] = 0x20000
	return s
}

// Accepts returns the per-owner accept counters.
func (k *Kernel) Accepts() map[string]int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make(map[string]int, len(k.accepts))
	for o, n := range k.accepts {
		out[o] = int(n.Load())
	}
	return out
}

// CreateTable creates the §2 {tag, data} entry for a process.
func (k *Kernel) CreateTable(pid int, tag, data uint64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	base := uint64(0x40000 + pid*16)
	r := machine.NewRegion(fmt.Sprintf("table-%d", pid), base, 16, true)
	r.SetWord(0, tag)
	r.SetWord(8, data)
	k.tables[pid] = r
}

// InstallHandler validates and installs a resource-access handler for
// a process. Like InstallFilter, validation runs lock-free and is
// memoized by the proof cache.
func (k *Kernel) InstallHandler(pid int, binary []byte) error {
	k.stats.validations.Add(1)
	key := k.resourceKeyer.Key(binary)
	slot := k.cache.lookup(key)
	if slot != nil {
		k.cache.recordHit()
	} else {
		k.cache.recordMiss()
		ext, stats, err := pcc.Validate(binary, k.resourcePolicy)
		if err != nil {
			k.stats.rejections.Add(1)
			return fmt.Errorf("kernel: handler for pid %d rejected: %w", pid, err)
		}
		k.stats.validationNanos.Add(stats.Time.Nanoseconds())
		slot = k.cache.put(newCacheSlot(key, ext))
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.handlers[pid] = slot.ext
	return nil
}

// InvokeHandler runs a process's installed handler on its own table
// entry, per the §2 calling convention (entry address in r0). It holds
// the write lock: handlers mutate their table entry in place.
func (k *Kernel) InvokeHandler(pid int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ext, ok := k.handlers[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no handler", pid)
	}
	table, ok := k.tables[pid]
	if !ok {
		return fmt.Errorf("kernel: pid %d has no table entry", pid)
	}
	mem := machine.NewMemory()
	mem.MustAddRegion(table)
	s := &machine.State{Mem: mem}
	s.R[0] = table.Base
	res, err := machine.Interp(ext.Prog, s, machine.Unchecked, &machine.DEC21064, 10000)
	if err != nil {
		return fmt.Errorf("kernel: validated handler for pid %d faulted: %w", pid, err)
	}
	k.stats.extensionCycles.Add(res.Cycles)
	return nil
}

// Table returns a process's {tag, data} entry.
func (k *Kernel) Table(pid int) (tag, data uint64, ok bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	r, found := k.tables[pid]
	if !found {
		return 0, 0, false
	}
	return r.Word(0), r.Word(8), true
}

// Stats returns a snapshot of the kernel accounting. Each counter is
// read atomically, but the snapshot as a whole takes no global lock:
// while installs are in flight, counters that move together at rest
// may be momentarily inconsistent (e.g. a Validation counted whose
// hit, miss, or rejection is not yet recorded). Callers wanting exact
// cross-counter invariants must quiesce the kernel first, as the tests
// do; monitoring readers should treat the snapshot as approximate.
func (k *Kernel) Stats() Stats {
	hits, misses, evictions := k.cache.counters()
	return Stats{
		Validations:      int(k.stats.validations.Load()),
		Rejections:       int(k.stats.rejections.Load()),
		ValidationMicros: float64(k.stats.validationNanos.Load()) / float64(time.Microsecond),
		Packets:          int(k.stats.packets.Load()),
		ExtensionCycles:  k.stats.extensionCycles.Load(),
		CacheHits:        int(hits),
		CacheMisses:      int(misses),
		CacheEvictions:   int(evictions),
		BatchInstalls:    int(k.stats.batchInstalls.Load()),
		QueueWaitMicros:  float64(k.stats.queueWaitNanos.Load()) / float64(time.Microsecond),
	}
}
