package kernel

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// TestProfiledCompiledKernelDifferential is the tentpole gate at the
// kernel layer: with profiling on, the compiled backend must produce
// the exact verdicts, cycle totals, and per-PC attribution of the
// profiled interpreter — over both the single-packet and the
// vectorized dispatch paths — because profiling no longer reroutes
// compiled dispatch to the interpreter.
func TestProfiledCompiledKernelDifferential(t *testing.T) {
	ki := New() // profiled interpreter (the reference)
	kc := New() // profiled threaded code
	ki.SetProfiling(true)
	kc.SetProfiling(true)
	installProfiledSet(t, ki)
	owners := installProfiledSet(t, kc)
	if err := kc.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	for _, o := range owners {
		tb := kc.table.Load()
		compiled := tb.slots[tb.index[o]].c != nil
		if !compiled {
			t.Fatalf("%q lost its compiled form under profiling", o)
		}
	}

	pkts := pktgen.Generate(400, pktgen.Config{Seed: 77})
	for _, p := range pkts[:200] {
		a1, err1 := ki.DeliverPacket(p)
		a2, err2 := kc.DeliverPacket(p)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fmt.Sprint(a1) != fmt.Sprint(a2) {
			t.Fatalf("verdicts diverged: interp %v, compiled %v", a1, a2)
		}
	}
	raw := make([][]byte, 0, 200)
	for _, p := range pkts[200:] {
		raw = append(raw, p.Data)
	}
	b1, err1 := ki.DeliverPackets(raw)
	b2, err2 := kc.DeliverPackets(raw)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if fmt.Sprint(b1) != fmt.Sprint(b2) {
		t.Fatal("batch verdicts diverged between profiled backends")
	}

	si, sc := ki.Stats(), kc.Stats()
	if si.ExtensionCycles != sc.ExtensionCycles {
		t.Fatalf("cycle totals diverged: interp %d, compiled %d",
			si.ExtensionCycles, sc.ExtensionCycles)
	}
	var attributed int64
	for _, o := range owners {
		pi, ok1 := ki.FilterProfile(o)
		pc, ok2 := kc.FilterProfile(o)
		if !ok1 || !ok2 {
			t.Fatalf("missing profile for %q", o)
		}
		if !reflect.DeepEqual(pi.Profile, pc.Profile) {
			t.Fatalf("%q: per-PC attribution diverged between backends\ninterp:\n%s\ncompiled:\n%s",
				o, pi.AnnotatedListing(), pc.AnnotatedListing())
		}
		if pc.Profile.Runs != int64(len(pkts)) {
			t.Fatalf("%q: %d runs, want %d", o, pc.Profile.Runs, len(pkts))
		}
		attributed += pc.TotalCycles()
	}
	if attributed != sc.ExtensionCycles {
		t.Fatalf("compiled profiles attribute %d cycles, kernel charged %d",
			attributed, sc.ExtensionCycles)
	}
}

// TestObservabilityStressReconciles hammers the full observability
// stack — compiled-backend profiled batch dispatch concurrent with
// metrics scrapes, pprof exports, profile snapshots, and flight-
// recorder reads — then quiesces and reconciles every counter exactly
// against Stats. Meaningful mainly under -race.
func TestObservabilityStressReconciles(t *testing.T) {
	k := New()
	rec := telemetry.New()
	fr := telemetry.NewFlightRecorder(64)
	k.SetRecorder(rec)
	k.SetFlightRecorder(fr)
	owners := installProfiledSet(t, k)
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	k.SetProfiling(true)

	pkts := pktgen.Generate(64, pktgen.Config{Seed: 9})
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}
	const workers, rounds = 4, 25

	var scrape, work sync.WaitGroup
	stop := make(chan struct{})
	scrape.Add(1)
	go func() { // concurrent scraper of every surface
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := rec.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if err := k.WriteFilterProfile(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if err := fr.WriteJSON(io.Discard); err != nil {
				t.Error(err)
				return
			}
			for _, s := range k.FilterProfiles() {
				_ = s.TotalCycles()
			}
			_ = rec.Snapshot(true)
		}
	}()
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func() {
			defer work.Done()
			for r := 0; r < rounds; r++ {
				if _, err := k.DeliverPackets(raw); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	work.Wait()
	close(stop)
	scrape.Wait()
	if t.Failed() {
		t.FailNow()
	}

	wantPkts := int64(workers * rounds * len(raw))
	st := k.Stats()
	if int64(st.Packets) != wantPkts {
		t.Fatalf("Packets = %d, want %d", st.Packets, wantPkts)
	}
	var attributed int64
	for _, o := range owners {
		snap, ok := k.FilterProfile(o)
		if !ok {
			t.Fatalf("no profile for %q", o)
		}
		if snap.Profile.Runs != wantPkts {
			t.Fatalf("%q: %d profiled runs, want %d", o, snap.Profile.Runs, wantPkts)
		}
		attributed += snap.TotalCycles()
	}
	if attributed != st.ExtensionCycles {
		t.Fatalf("profiles attribute %d cycles, kernel charged %d", attributed, st.ExtensionCycles)
	}

	snap := rec.Snapshot(false)
	if got := snap.Counters[MetricPackets]; got != wantPkts {
		t.Fatalf("%s = %d, want %d", MetricPackets, got, wantPkts)
	}
	var telCycles int64
	for _, v := range snap.Labeled[MetricFilterCycles] {
		telCycles += v
	}
	if telCycles != st.ExtensionCycles {
		t.Fatalf("telemetry cycle counters sum to %d, kernel charged %d", telCycles, st.ExtensionCycles)
	}
	fam := snap.LabeledHistograms[MetricFilterLatency]
	if len(fam) != len(owners) {
		t.Fatalf("latency family has %d owners, want %d", len(fam), len(owners))
	}
	for owner, h := range fam {
		if h.Count != wantPkts {
			t.Fatalf("latency histogram for %q observed %d runs, want %d", owner, h.Count, wantPkts)
		}
	}
}

// TestConfigChangeEvents: every kernel posture change must land in
// both the audit log (event=config with old/new values) and the
// flight recorder's timeline.
func TestConfigChangeEvents(t *testing.T) {
	k := New()
	var buf bytes.Buffer
	k.SetAuditLog(slog.New(slog.NewJSONHandler(&buf, nil)))
	fr := telemetry.NewFlightRecorder(32)
	k.SetFlightRecorder(fr)

	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	k.SetProfiling(true)
	k.SetLimits(pcc.DefaultLimits())
	k.SetQuarantine(QuarantineConfig{Threshold: 2, Base: time.Minute})
	k.SetQuarantine(QuarantineConfig{}) // back off

	evs := fr.Events()
	if len(evs) != 5 {
		t.Fatalf("flight recorder holds %d events, want 5 config changes: %+v", len(evs), evs)
	}
	var details []string
	for _, e := range evs {
		if e.Kind != telemetry.FlightConfigChange {
			t.Fatalf("unexpected event kind %q: %+v", e.Kind, e)
		}
		details = append(details, e.Detail)
	}
	joined := strings.Join(details, "\n")
	for _, want := range []string{
		"backend: interp -> compiled",
		"profiling: false -> true",
		"limits: ",
		"quarantine: disabled -> {Threshold:2",
		"-> disabled",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("flight timeline missing %q:\n%s", want, joined)
		}
	}

	log := buf.String()
	if got := strings.Count(log, `"event":"config"`); got != 5 {
		t.Fatalf("audit log has %d config events, want 5:\n%s", got, log)
	}
	for _, want := range []string{
		`"setting":"backend"`, `"old":"interp"`, `"new":"compiled"`,
		`"setting":"profiling"`, `"setting":"limits"`, `"setting":"quarantine"`,
	} {
		if !strings.Contains(log, want) {
			t.Errorf("audit log missing %s:\n%s", want, log)
		}
	}
}

// injectFilter publishes a program into the dispatch snapshot
// directly, bypassing validation — the only way to make dispatch
// fault, which validated filters cannot. It goes through the same
// copy-on-write publication as a real commit.
func injectFilter(k *Kernel, owner, src string) {
	prog := alpha.MustAssemble(src).Prog
	k.mu.Lock()
	defer k.mu.Unlock()
	ctr := newOwnerCounter(len(k.stats.shards))
	ins := &installed{ext: &pcc.Extension{Prog: prog}, accepts: ctr}
	k.publishLocked(k.table.Load().withFilter(owner, ins))
}

// TestFlightRecorderDispatchAnomalies: oversize fallbacks, memory
// faults, and fuel exhaustion on the dispatch path must each leave a
// flight event with the owner's identity, on both dispatch paths.
func TestFlightRecorderDispatchAnomalies(t *testing.T) {
	kindsOf := func(fr *telemetry.FlightRecorder) map[string]string {
		m := map[string]string{} // kind -> owner
		for _, e := range fr.Events() {
			m[e.Kind] = e.Owner
		}
		return m
	}

	t.Run("oversize", func(t *testing.T) {
		k := New()
		fr := telemetry.NewFlightRecorder(8)
		k.SetFlightRecorder(fr)
		installProfiledSet(t, k)
		big := make([]byte, maxPooledPacket+64)
		big[12], big[13] = 0x08, 0x00 // ethertype IP, so filters decode it
		if _, err := k.DeliverPacket(pktgen.Packet{Data: big}); err != nil {
			t.Fatal(err)
		}
		if _, err := k.DeliverPackets([][]byte{big}); err != nil {
			t.Fatal(err)
		}
		if got := fr.Appended(); got != 2 {
			t.Fatalf("oversize fallbacks recorded %d events, want 2", got)
		}
		if kinds := kindsOf(fr); len(kinds) != 1 || kinds[telemetry.FlightOversizePacket] != "" {
			t.Fatalf("unexpected events: %+v", fr.Events())
		}
	})

	t.Run("memory_fault", func(t *testing.T) {
		k := New()
		fr := telemetry.NewFlightRecorder(8)
		k.SetFlightRecorder(fr)
		injectFilter(k, "wild", "LDQ r0, 0(r4)\nRET") // r4 = 0: unmapped load
		p := pktgen.Generate(1, pktgen.Config{Seed: 1})[0]
		if _, err := k.DeliverPacket(p); err == nil {
			t.Fatal("wild load did not fault")
		}
		if _, err := k.DeliverPackets([][]byte{p.Data}); err == nil {
			t.Fatal("wild load did not fault on the batch path")
		}
		kinds := kindsOf(fr)
		if kinds[telemetry.FlightMemoryFault] != "wild" || fr.Appended() != 2 {
			t.Fatalf("memory fault not recorded with owner: %+v", fr.Events())
		}
	})

	t.Run("fuel_exhausted", func(t *testing.T) {
		k := New()
		fr := telemetry.NewFlightRecorder(8)
		k.SetFlightRecorder(fr)
		injectFilter(k, "spinner", "loop: BR loop")
		p := pktgen.Generate(1, pktgen.Config{Seed: 2})[0]
		if _, err := k.DeliverPacket(p); err == nil {
			t.Fatal("runaway loop did not exhaust fuel")
		}
		kinds := kindsOf(fr)
		if kinds[telemetry.FlightFuelExhausted] != "spinner" {
			t.Fatalf("fuel exhaustion not recorded with owner: %+v", fr.Events())
		}
	})
}

// TestBatchZeroAllocWithObservabilityOff pins the off switch: with no
// recorder, no flight recorder, and profiling off, the batch dispatch
// path must not allocate beyond its result rows — the new
// instrumentation must cost nothing when disabled.
func TestBatchZeroAllocWithObservabilityOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts, distorting allocation counts")
	}
	bins := certAll(t)
	k := New()
	if err := k.InstallFilter("hot", bins[filters.Filter4]); err != nil {
		t.Fatal(err)
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	// A batch whose packets are all rejected keeps the result rows nil:
	// only the two result headers remain.
	var raw [][]byte
	for _, p := range pktgen.Generate(300, pktgen.Config{Seed: 11}) {
		owners, err := k.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) == 0 {
			raw = append(raw, p.Data)
			if len(raw) == 16 {
				break
			}
		}
	}
	if len(raw) < 16 {
		t.Skip("not enough rejected packets in trace")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := k.DeliverPackets(raw); err != nil {
			t.Fatal(err)
		}
	})
	// DeliverPackets allocates its result slices (names + rows); with
	// every packet rejected that is two allocations.
	if allocs > 2 {
		t.Errorf("observability-off DeliverPackets allocates %.1f objects/op, want <= 2", allocs)
	}
}
