// Self-healing dispatch supervision: a per-filter circuit breaker.
//
// A validated filter cannot fault when the kernel meets its
// precondition — that is the paper's contract — so a dispatch-path
// fault (memory fault, fuel exhaustion) means something outside the
// proof's model is wrong: a kernel bug, cosmic-ray corruption of the
// compiled form, a miscompile. The breaker's premise is that the
// threaded-code translation is the component the proof does NOT cover
// (the interpreter is the verified reference semantics), so a filter
// that keeps faulting is demoted from compiled to interpreted
// execution rather than taking the whole dispatch path down.
//
// Per-filter state machine (the pcc_breaker_state gauge):
//
//	closed (0)    normal dispatch. Threshold faults trip the breaker
//	              (a validated filter faulting at all is anomalous, so
//	              closed-state faults accumulate rather than decaying):
//	              the filter's compiled form is unpublished
//	              (COW table rewrite; in-flight deliveries finish on the
//	              snapshot they pinned) and the state goes to
//	open (1)      interpreter-only, for a backoff interval that doubles
//	              per trip (Base, capped at Max). When it expires, the
//	              next delivery promotes the saved compiled form back
//	              on probation:
//	half-open (2) compiled again; Threshold consecutive clean deliveries
//	              close the breaker, one fault re-opens it with the
//	              longer backoff.
//
// A filter that trips MaxTrips times has exhausted the "blame the
// compiled form" hypothesis — the faults follow the filter, not the
// backend — so the breaker escalates: the filter is uninstalled and
// its owner embargoed under the kernel's quarantine config (when one
// is set). An escalation whose uninstall cannot be journaled (sick
// disk, store closed mid-shutdown) leaves the filter installed, so the
// breaker holds open — demoted, armed, still probing — and retries the
// escalation on the next probation fault. Every transition is audited,
// flight-recorded
// (breaker_open / breaker_halfopen / breaker_close), and published on
// the pcc_breaker_state gauge, all joined on the EventID of the
// delivery that drove the transition.
//
// Cost model: the unconfigured kernel pays nothing. A configured but
// untripped kernel pays one atomic load per delivery (brkArmed). Only
// while some breaker is open or half-open does dispatch consult the
// supervisor's mutex — and by then the hot path is already degraded.
package kernel

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// BreakerConfig tunes the dispatch circuit breaker. Threshold
// consecutive faults open a filter's breaker for Base, doubling per
// trip up to Max; Threshold consecutive clean deliveries in half-open
// close it. MaxTrips > 0 escalates the filter to uninstall (plus
// owner quarantine, when configured) on its MaxTrips'th trip; 0 never
// escalates. Threshold <= 0 disables the breaker entirely (the
// default).
type BreakerConfig struct {
	Threshold int
	Base      time.Duration
	Max       time.Duration
	MaxTrips  int
}

// backoff returns the open interval after the given trip count.
func (c *BreakerConfig) backoff(trips int) time.Duration {
	d := c.Base
	if d <= 0 {
		d = time.Second
	}
	for i := 1; i < trips; i++ {
		d *= 2
		if c.Max > 0 && d >= c.Max {
			return c.Max
		}
	}
	if c.Max > 0 && d > c.Max {
		d = c.Max
	}
	return d
}

// Breaker states, the values of the pcc_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// breakerState is one filter's supervision record. Guarded by brkMu.
type breakerState struct {
	state  int
	faults int       // accumulated closed-state faults (never decay; see package comment)
	clean  int       // consecutive clean deliveries in half-open
	trips  int       // lifetime opens
	until  time.Time // open: when the half-open probe is allowed
	// armed mirrors whether this record contributes to k.brkArmed, so
	// arm/disarm stays balanced across every path (open, close,
	// escalate, forget, disable).
	armed bool
	// compiled is the demoted threaded-code form, saved across the
	// open interval so re-admission does not recompile. The object is
	// immutable and safe to hold: retirement poisons only the retired
	// installed struct's fields, never the Compiled it pointed to.
	compiled *machine.Compiled
}

// SetBreaker configures dispatch supervision. A Threshold <= 0
// disables it: every demoted filter is promoted back to its compiled
// form and all state is dropped.
func (k *Kernel) SetBreaker(cfg BreakerConfig) {
	oldCfg := "disabled"
	if old := k.brkCfg.Load(); old != nil {
		oldCfg = fmt.Sprintf("%+v", *old)
	}
	if cfg.Threshold <= 0 {
		k.brkCfg.Store(nil)
		k.brkMu.Lock()
		for owner, st := range k.brk {
			if st.compiled != nil {
				k.promoteCompiled(owner, st.compiled)
			}
			if st.armed {
				k.brkArmed.Add(-1)
			}
			k.tel.Load().setBreakerState(owner, breakerClosed)
		}
		k.brk = nil
		k.brkMu.Unlock()
		k.configChange("breaker", oldCfg, "disabled")
		return
	}
	k.brkCfg.Store(&cfg)
	k.configChange("breaker", oldCfg, fmt.Sprintf("%+v", cfg))
}

// Breakers reports the current per-filter breaker states (only filters
// the supervisor has ever touched appear).
func (k *Kernel) Breakers() map[string]int {
	k.brkMu.Lock()
	defer k.brkMu.Unlock()
	out := make(map[string]int, len(k.brk))
	for o, st := range k.brk {
		out[o] = st.state
	}
	return out
}

// demoteCompiled unpublishes owner's compiled form (COW rewrite) and
// returns it for safekeeping. Takes k.mu; callers hold brkMu (lock
// order: brkMu before k.mu, everywhere).
func (k *Kernel) demoteCompiled(owner string) *machine.Compiled {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table.Load()
	i, ok := t.index[owner]
	if !ok || t.slots[i].c == nil {
		return nil
	}
	saved := t.slots[i].c
	nt, replaced := t.mapped(func(o string, f *installed) *installed {
		if o != owner || f.compiled == nil {
			return f
		}
		nf := *f
		nf.compiled = nil
		return &nf
	})
	if nt != t {
		k.publishLocked(nt, replaced...)
	}
	return saved
}

// promoteCompiled re-attaches a saved compiled form to owner's filter.
// A filter that was uninstalled or reinstalled while open keeps its
// current form — the saved pointer would belong to a stale binary.
func (k *Kernel) promoteCompiled(owner string, c *machine.Compiled) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table.Load()
	i, ok := t.index[owner]
	if !ok || t.slots[i].c != nil {
		return
	}
	nt, replaced := t.mapped(func(o string, f *installed) *installed {
		if o != owner || f.compiled != nil {
			return f
		}
		nf := *f
		nf.compiled = c
		return &nf
	})
	if nt != t {
		k.publishLocked(nt, replaced...)
	}
}

// breakerFault is the dispatch-path hook: one filter faulted during a
// delivery. Only faults the proof's model can't explain away as kernel
// misuse count — memory faults and fuel exhaustion — and only when a
// breaker is configured. Called without k.mu held.
func (k *Kernel) breakerFault(owner, kind string, eid uint64) {
	cfg := k.brkCfg.Load()
	if cfg == nil {
		return
	}
	if kind != telemetry.FlightMemoryFault && kind != telemetry.FlightFuelExhausted {
		return
	}
	var escalate bool
	k.brkMu.Lock()
	if k.brk == nil {
		k.brk = map[string]*breakerState{}
	}
	st := k.brk[owner]
	if st == nil {
		st = &breakerState{}
		k.brk[owner] = st
	}
	switch st.state {
	case breakerClosed:
		st.faults++
		if st.faults >= cfg.Threshold {
			st.trips++
			if cfg.MaxTrips > 0 && st.trips >= cfg.MaxTrips {
				escalate = true
				break
			}
			k.openBreaker(owner, st, cfg, eid)
		}
	case breakerHalfOpen:
		// One fault on probation re-opens with the longer backoff.
		st.trips++
		if cfg.MaxTrips > 0 && st.trips >= cfg.MaxTrips {
			escalate = true
			break
		}
		k.openBreaker(owner, st, cfg, eid)
	case breakerOpen:
		// Already demoted; an interpreter fault just restarts the
		// backoff clock at the current trip count.
		st.until = time.Now().Add(cfg.backoff(st.trips))
	}
	if escalate {
		// Tentatively parked open (so a racing fault lands in the
		// breakerOpen case instead of re-escalating); escalateBreaker
		// resolves the terminal state once the uninstall's journal
		// outcome is known.
		st.state = breakerOpen
		st.until = time.Time{}
	}
	trips := st.trips
	k.brkMu.Unlock()
	if escalate {
		k.escalateBreaker(owner, trips, eid)
	}
}

// openBreaker demotes owner and starts the backoff clock. Caller holds
// brkMu.
func (k *Kernel) openBreaker(owner string, st *breakerState, cfg *BreakerConfig, eid uint64) {
	if c := k.demoteCompiled(owner); c != nil {
		st.compiled = c
	}
	st.state = breakerOpen
	st.faults = 0
	st.clean = 0
	d := cfg.backoff(st.trips)
	st.until = time.Now().Add(d)
	if !st.armed {
		st.armed = true
		k.brkArmed.Add(1)
	}
	detail := fmt.Sprintf("trips=%d backoff=%s", st.trips, d)
	k.tel.Load().setBreakerState(owner, breakerOpen)
	k.audit.Load().breaker("open", owner, st.trips, detail, eid)
	k.flight(telemetry.FlightBreakerOpen, owner, detail, eid)
}

// escalateBreaker retires a filter whose faults survived MaxTrips
// demotion cycles: uninstall (journaled and audited like any other)
// plus an owner embargo under the quarantine config, when one is set.
// The uninstall can fail — a journal append against a sick or closed
// store aborts it, and the filter stays installed — and then the
// breaker must NOT stand down: the compiled form is demoted (the
// closed-state escalation path never went through openBreaker) and the
// record stays open and armed, so ticking, probation, and
// re-escalation continue until an uninstall finally commits. Only a
// committed uninstall is recorded as an escalation; a store failure is
// audited as such, and the owner is not embargoed for a disk's
// misbehavior. Called without brkMu held — UninstallFilter takes k.mu
// and the embargo takes quarMu.
func (k *Kernel) escalateBreaker(owner string, trips int, eid uint64) {
	if uerr := k.UninstallFilter(owner); uerr != nil {
		k.brkMu.Lock()
		if st := k.brk[owner]; st != nil {
			if c := k.demoteCompiled(owner); c != nil {
				st.compiled = c
			}
			st.state = breakerOpen
			st.faults = 0
			st.clean = 0
			if cfg := k.brkCfg.Load(); cfg != nil {
				st.until = time.Now().Add(cfg.backoff(st.trips))
			}
			if !st.armed {
				st.armed = true
				k.brkArmed.Add(1)
			}
		}
		k.brkMu.Unlock()
		detail := fmt.Sprintf("trips=%d: uninstall failed, filter still installed, breaker held open: %v",
			trips, uerr)
		k.tel.Load().setBreakerState(owner, breakerOpen)
		k.audit.Load().breaker("escalate_failed", owner, trips, detail, eid)
		k.flight(telemetry.FlightBreakerOpen, owner, detail, eid)
		return
	}
	// The filter is gone (journaled and audited by the uninstall); the
	// supervision record becomes terminal: open, disarmed, never probing
	// again.
	k.brkMu.Lock()
	if st := k.brk[owner]; st != nil {
		st.state = breakerOpen
		st.compiled = nil
		st.until = time.Time{}
		if st.armed {
			st.armed = false
			k.brkArmed.Add(-1)
		}
	}
	k.brkMu.Unlock()
	detail := fmt.Sprintf("trips=%d: uninstalled", trips)
	k.audit.Load().breaker("escalate", owner, trips, detail, eid)
	k.flight(telemetry.FlightBreakerOpen, owner, detail, eid)
	k.tel.Load().setBreakerState(owner, breakerOpen)
	if qcfg := k.quarCfg.Load(); qcfg != nil {
		now := time.Now()
		k.quarMu.Lock()
		if k.quar == nil {
			k.quar = map[string]*quarState{}
		}
		qs := k.quar[owner]
		if qs == nil {
			qs = &quarState{}
			k.quar[owner] = qs
		}
		qs.strikes += qcfg.Threshold
		qs.until = now.Add(qcfg.backoff(qs.strikes))
		qe := &QuarantineError{Owner: owner, Until: qs.until, Strikes: qs.strikes}
		n := k.embargoedLocked(now)
		k.quarMu.Unlock()
		k.tel.Load().setQuarantined(n)
		k.audit.Load().quarantine(qe, eid)
		k.flight(telemetry.FlightQuarantine, owner,
			fmt.Sprintf("breaker escalation: strikes=%d until=%s", qe.Strikes, qe.Until.Format(time.RFC3339Nano)), eid)
	}
}

// breakerTick runs at the delivery preamble while any breaker is
// armed: every open breaker whose backoff has expired is promoted to
// half-open — compiled form back on probation — before the delivery
// loads its snapshot.
func (k *Kernel) breakerTick(eid uint64) {
	cfg := k.brkCfg.Load()
	if cfg == nil {
		return
	}
	now := time.Now()
	k.brkMu.Lock()
	for owner, st := range k.brk {
		if st.state != breakerOpen || st.until.IsZero() || now.Before(st.until) {
			continue
		}
		if st.compiled != nil {
			k.promoteCompiled(owner, st.compiled)
		}
		st.state = breakerHalfOpen
		st.clean = 0
		st.faults = 0
		detail := fmt.Sprintf("trips=%d: compiled on probation", st.trips)
		k.tel.Load().setBreakerState(owner, breakerHalfOpen)
		k.audit.Load().breaker("halfopen", owner, st.trips, detail, eid)
		k.flight(telemetry.FlightBreakerHalfOpen, owner, detail, eid)
	}
	k.brkMu.Unlock()
}

// breakerClean is the dispatch-path hook for a fault-free run (or
// batch of runs) of one filter: half-open breakers count it toward
// closing. Closed-state faults are deliberately NOT reset here — they
// accumulate until Threshold, as the package comment promises — both
// because a validated filter faulting at all is anomalous, and because
// this hook only runs while some breaker is armed, so any closed-state
// decay would depend on whether an unrelated filter happens to be
// open. Called only while armed.
func (k *Kernel) breakerClean(owner string, eid uint64) {
	cfg := k.brkCfg.Load()
	if cfg == nil {
		return
	}
	k.brkMu.Lock()
	st := k.brk[owner]
	if st == nil {
		k.brkMu.Unlock()
		return
	}
	switch st.state {
	case breakerHalfOpen:
		st.clean++
		if st.clean >= cfg.Threshold {
			st.state = breakerClosed
			st.faults = 0
			st.clean = 0
			st.compiled = nil // the live table holds it again
			if st.armed {
				st.armed = false
				k.brkArmed.Add(-1)
			}
			detail := fmt.Sprintf("trips=%d: re-admitted", st.trips)
			k.tel.Load().setBreakerState(owner, breakerClosed)
			k.audit.Load().breaker("close", owner, st.trips, detail, eid)
			k.flight(telemetry.FlightBreakerClose, owner, detail, eid)
		}
	}
	k.brkMu.Unlock()
}

// breakerForget drops owner's supervision record (fresh install: new
// binary, new history). Called after a successful install commit,
// without k.mu held.
func (k *Kernel) breakerForget(owner string) {
	if k.brkCfg.Load() == nil {
		return
	}
	k.brkMu.Lock()
	if st := k.brk[owner]; st != nil {
		if st.armed {
			k.brkArmed.Add(-1)
		}
		if st.state != breakerClosed {
			k.tel.Load().setBreakerState(owner, breakerClosed)
		}
		delete(k.brk, owner)
	}
	k.brkMu.Unlock()
}
