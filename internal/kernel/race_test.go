//go:build race

package kernel

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions skip under -race: the detector makes
// sync.Pool drop Puts at random, so pooled paths allocate.
const raceEnabled = true
