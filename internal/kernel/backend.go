// Execution-backend selection. The kernel can run validated filters
// on either of two backends with identical observable behavior:
//
//   - BackendInterp: the reference interpreter (machine.Interp).
//   - BackendCompiled: threaded code (machine.Compile), built once per
//     validated binary at install time — after the proof check — and
//     memoized on the proof-cache slot, so a fleet re-installing one
//     binary compiles it once the same way it proof-checks it once.
//
// Both backends carry per-PC cycle attribution (profile.go): the
// interpreter through machine.InterpProfiled, threaded code through
// machine.Compiled.RunProfiled, with bit-identical attribution — so
// enabling profiling never changes which backend dispatches. The
// interpreter stays authoritative: the differential suites compare
// against it, and disabling the compiled backend is a one-call
// rollback (SetBackend retrofits every installed filter in either
// direction).
package kernel

import (
	"context"
	"fmt"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/store"
)

// Backend selects how dispatch executes validated filters.
type Backend int32

// The available execution backends.
const (
	// BackendInterp dispatches through the reference interpreter.
	BackendInterp Backend = iota
	// BackendCompiled dispatches through install-time-compiled
	// threaded code.
	BackendCompiled
)

// String returns the flag-friendly backend name.
func (b Backend) String() string {
	switch b {
	case BackendInterp:
		return "interp"
	case BackendCompiled:
		return "compiled"
	}
	return fmt.Sprintf("backend(%d)", int32(b))
}

// ParseBackend converts a flag value to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "interp", "interpreter":
		return BackendInterp, nil
	case "compiled", "compile":
		return BackendCompiled, nil
	}
	return 0, fmt.Errorf("kernel: unknown backend %q (want interp or compiled)", s)
}

// compiledForm returns the slot's memoized threaded-code translation,
// compiling on first use. Compilation analyzes untrusted (though
// validated) code, so it runs inside a recover fence like the WCET
// pass: a panic rejects the one binary, never crashes the kernel.
func (s *cacheSlot) compiledForm() (*machine.Compiled, error) {
	s.compileOnce.Do(func() {
		if perr := pcc.Fence("compile", func() error {
			s.compiled, s.compileErr = machine.Compile(s.ext.Prog, &machine.DEC21064)
			return nil
		}); perr != nil {
			s.compileErr = perr
		}
	})
	return s.compiled, s.compileErr
}

// Backend returns the kernel's current default execution backend.
func (k *Kernel) Backend() Backend { return Backend(k.backend.Load()) }

// SetBackend switches the default backend for future installs AND
// retrofits every installed filter: switching to BackendCompiled
// compiles each installed program (an error on any filter aborts the
// switch with nothing changed); switching to BackendInterp drops the
// compiled forms, an immediate rollback path. Installed filters are
// immutable once published, so the retrofit is copy-on-write: each
// changed filter is replaced by a clone sharing its accept counter
// and profile accumulator, the new snapshot is published atomically,
// and the replaced originals are retired past in-flight deliveries —
// a dispatch in flight finishes entirely on the backend it started
// with.
func (k *Kernel) SetBackend(b Backend) error {
	if b != BackendInterp && b != BackendCompiled {
		return fmt.Errorf("kernel: unknown backend %d", b)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	old := Backend(k.backend.Load())
	t := k.table.Load()
	var nt *filterTable
	var replaced []*installed
	if b == BackendCompiled {
		// Two passes so a compile failure aborts with nothing changed.
		fresh := make(map[string]*machine.Compiled, len(t.slots))
		for i := range t.slots {
			owner, f := t.slots[i].owner, t.slots[i].f
			if f.compiled != nil {
				continue
			}
			var c *machine.Compiled
			var cerr error
			if perr := pcc.Fence("compile", func() error {
				c, cerr = machine.Compile(f.ext.Prog, &machine.DEC21064)
				return nil
			}); perr != nil {
				cerr = perr
			}
			if cerr != nil {
				return fmt.Errorf("kernel: compiling filter for %q: %w", owner, cerr)
			}
			fresh[owner] = c
		}
		nt, replaced = t.mapped(func(owner string, f *installed) *installed {
			c, ok := fresh[owner]
			if !ok {
				return f
			}
			nf := *f
			nf.compiled = c
			return &nf
		})
	} else {
		nt, replaced = t.mapped(func(owner string, f *installed) *installed {
			if f.compiled == nil {
				return f
			}
			nf := *f
			nf.compiled = nil
			return &nf
		})
	}
	if nt != t {
		k.publishLocked(nt, replaced...)
	}
	k.backend.Store(int32(b))
	// Journal the retrofit so recovery re-applies the backend choice
	// before it re-installs filters. The switch itself already happened;
	// an append failure is reported (audited) but does not undo it — the
	// backend is a performance choice, not a safety property, so the
	// worst a lost record costs is a post-recovery interpreter.
	if st := k.wal.Load(); st != nil {
		if _, jerr := st.Append(store.KindRetrofit, retrofitBackend, []byte(b.String())); jerr != nil {
			k.audit.Load().storeError("retrofit", retrofitBackend, &StoreError{Op: "append", Err: jerr}, 0)
		}
	}
	k.configChange("backend", old.String(), b.String())
	return nil
}

// InstallFilterWithBackend is InstallFilterCtx with an explicit
// per-install backend choice that overrides the kernel default for
// this one filter.
func (k *Kernel) InstallFilterWithBackend(ctx context.Context, owner string, binary []byte, b Backend) error {
	if b != BackendInterp && b != BackendCompiled {
		return fmt.Errorf("kernel: unknown backend %d", b)
	}
	eid := k.nextEvent(k.tel.Load())
	if gate := k.admit.Load(); gate != nil {
		if !gate.tryAcquire() {
			k.stats.validations.Add(1)
			va := k.audit.Load().newValidationAudit("filter", owner, binary, eid)
			return k.commitFilter(owner, binary, nil, va,
				&QueueFullError{Limit: gate.limit, RetryAfter: admissionRetryAfter}, b, eid, true)
		}
		defer gate.release()
	}
	slot, va, err := k.validateFilter(ctx, owner, binary, eid)
	return k.commitFilter(owner, binary, slot, va, err, b, eid, true)
}

// runInstalled executes one installed filter on a prepared state with
// the dispatch budget. The filter's own backend decides how it runs —
// threaded code when a compiled form is attached, the interpreter
// otherwise — and profiling layers attribution onto whichever backend
// the filter has, never rerouting it. wrote reports whether the run may
// have written scratch memory (threaded code knows statically; the
// interpreter paths conservatively report true), which lets pooled
// dispatch skip the next scratch wipe.
func runInstalled(f *installed, state *machine.State, profiling bool) (res machine.Result, wrote bool, err error) {
	if profiling && f.prof != nil {
		if c := f.compiled; c != nil {
			res, err = f.prof.runCompiled(c, state, dispatchFuel)
			return res, c.WritesMemory(), err
		}
		res, err = f.prof.run(state, dispatchFuel)
		return res, true, err
	}
	if c := f.compiled; c != nil {
		res, err = c.Run(state, machine.Unchecked, dispatchFuel)
		return res, c.WritesMemory(), err
	}
	res, err = machine.Interp(f.ext.Prog, state, machine.Unchecked, &machine.DEC21064, dispatchFuel)
	return res, true, err
}
