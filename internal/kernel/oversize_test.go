package kernel

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/filters"
	"repro/internal/pktgen"
)

// oversizePackets builds packets straddling the pooled-dispatch
// boundary: real header bytes from pktgen up front, payload padding
// pushing the total length to just below, exactly at, and past
// maxPooledPacket. The oversized ones force dispatch onto the
// allocate-per-packet fallback (packetState) instead of the pooled
// environment.
func oversizePackets(t *testing.T) []pktgen.Packet {
	t.Helper()
	base := pktgen.Generate(6, pktgen.Config{Seed: 23})
	sizes := []int{
		maxPooledPacket - 1,
		maxPooledPacket,
		maxPooledPacket + 1,
		maxPooledPacket + 4096,
	}
	var out []pktgen.Packet
	for _, p := range base {
		for _, sz := range sizes {
			data := make([]byte, sz)
			copy(data, p.Data)
			out = append(out, pktgen.Packet{Data: data})
		}
	}
	return out
}

// TestOversizedPacketDispatch pushes >maxPooledPacket packets through
// single-packet dispatch on both backends and checks the fallback path
// produces exactly the verdicts the reference semantics (and therefore
// the pooled path, which the backend-differential tests pin to the
// same oracle) require.
func TestOversizedPacketDispatch(t *testing.T) {
	for _, be := range []Backend{BackendInterp, BackendCompiled} {
		t.Run(be.String(), func(t *testing.T) {
			k := New()
			if err := k.SetBackend(be); err != nil {
				t.Fatal(err)
			}
			installPaperFilters(t, k)
			for i, p := range oversizePackets(t) {
				acc, err := k.DeliverPacket(p)
				if err != nil {
					t.Fatalf("packet %d (len %d): %v", i, len(p.Data), err)
				}
				if err := checkVerdicts(p.Data, acc); err != nil {
					t.Fatalf("packet %d (len %d): %v", i, len(p.Data), err)
				}
			}
		})
	}
}

// TestOversizedPacketBatchDispatch interleaves pooled and oversized
// packets in one DeliverPackets vector on both backends; the batch
// path must switch per packet between the pooled environment and the
// fallback and still agree with per-packet dispatch on a fresh kernel.
func TestOversizedPacketBatchDispatch(t *testing.T) {
	for _, be := range []Backend{BackendInterp, BackendCompiled} {
		t.Run(be.String(), func(t *testing.T) {
			big := oversizePackets(t)
			small := pktgen.Generate(len(big), pktgen.Config{Seed: 29})
			var raw [][]byte
			for i := range big {
				// Interleave: pooled, oversized, pooled, ... so the
				// shared env is reused immediately after each fallback.
				raw = append(raw, small[i].Data, big[i].Data)
			}

			kb, ks := New(), New()
			for _, k := range []*Kernel{kb, ks} {
				if err := k.SetBackend(be); err != nil {
					t.Fatal(err)
				}
				installPaperFilters(t, k)
			}
			batch, err := kb.DeliverPackets(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(raw) {
				t.Fatalf("batch returned %d verdicts for %d packets", len(batch), len(raw))
			}
			for i, data := range raw {
				single, err := ks.DeliverPacket(pktgen.Packet{Data: data})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(single, batch[i]) {
					t.Fatalf("packet %d (len %d): single=%v batch=%v", i, len(data), single, batch[i])
				}
				if err := checkVerdicts(data, batch[i]); err != nil {
					t.Fatalf("packet %d (len %d): %v", i, len(data), err)
				}
			}
			sb, ss := kb.Stats(), ks.Stats()
			if sb.Packets != ss.Packets || sb.ExtensionCycles != ss.ExtensionCycles {
				t.Fatalf("stats diverge: batch=%+v single=%+v", sb, ss)
			}
		})
	}
}

// TestOversizedVerdictMatchesPooledTwin delivers an oversized packet
// and a pooled twin holding the same header bytes; the paper filters
// look only at headers, so both must carry identical verdicts — the
// direct "fallback path equals pooled path" comparison.
func TestOversizedVerdictMatchesPooledTwin(t *testing.T) {
	k := New()
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	installPaperFilters(t, k)
	for i, p := range pktgen.Generate(50, pktgen.Config{Seed: 31}) {
		big := make([]byte, maxPooledPacket+512)
		copy(big, p.Data)
		pooled := make([]byte, len(p.Data))
		copy(pooled, p.Data)

		accBig, err := k.DeliverPacket(pktgen.Packet{Data: big})
		if err != nil {
			t.Fatal(err)
		}
		accPooled, err := k.DeliverPacket(pktgen.Packet{Data: pooled})
		if err != nil {
			t.Fatal(err)
		}
		// Filters that gate on packet length could legitimately
		// diverge; the paper corpus does not, so any difference here is
		// a fallback-path bug.
		for _, f := range filters.All {
			owner := fmt.Sprintf("proc-%d", f)
			if filters.Reference(f, big) != filters.Reference(f, pooled) {
				continue // length-sensitive verdict: skip the twin check
			}
			if containsOwner(accBig, owner) != containsOwner(accPooled, owner) {
				t.Fatalf("packet %d owner %s: oversized=%v pooled=%v", i, owner, accBig, accPooled)
			}
		}
	}
}

func containsOwner(acc []string, owner string) bool {
	for _, o := range acc {
		if o == owner {
			return true
		}
	}
	return false
}
